#!/bin/sh
# Pre-merge gate: everything must build (libraries, executables, examples,
# docs) and the whole test suite must pass.  Run from the repo root:
#
#     bin/check.sh
#
# CI and local development use the same gate; a change is mergeable only
# when this script exits 0.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "check: OK"
