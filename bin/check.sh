#!/bin/sh
# Pre-merge gate: everything must build (libraries, executables, examples,
# docs) and the whole test suite must pass.  Run from the repo root:
#
#     bin/check.sh
#
# CI and local development use the same gate; a change is mergeable only
# when this script exits 0.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== telemetry smoke test =="
# The table subcommand must produce a parseable metrics document with the
# versioned schema tag and at least one phase/counter, and a trace file
# with one JSON object per line.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec bin/scanatpg.exe -- table 6 --circuits s27 --verbose \
  --metrics "$tmpdir/metrics.json" --trace "$tmpdir/trace.jsonl" \
  > "$tmpdir/table.out" 2>&1
if command -v jq > /dev/null 2>&1; then
  jq -e '.schema == "scanatpg-metrics/1"' "$tmpdir/metrics.json" > /dev/null
  jq -e '.phases.generate >= 0' "$tmpdir/metrics.json" > /dev/null
  jq -e '.counters["omit.trials"] >= 1' "$tmpdir/metrics.json" > /dev/null
  jq -es 'length >= 1 and all(.[]; .stop_ns >= .start_ns)' \
    "$tmpdir/trace.jsonl" > /dev/null
else
  grep -q '"scanatpg-metrics/1"' "$tmpdir/metrics.json"
  grep -q '"start_ns"' "$tmpdir/trace.jsonl"
fi
grep -q 'omission:' "$tmpdir/table.out"

echo "check: OK"
