#!/bin/sh
# Pre-merge gate: everything must build (libraries, executables, examples,
# docs) and the whole test suite must pass.  Run from the repo root:
#
#     bin/check.sh [--quick] [--chaos]
#
# CI and local development use the same gate; a change is mergeable only
# when this script exits 0.  --quick stops after the build, the test suite
# and the telemetry smoke test (the cheap subset CI runs per matrix leg);
# the full gate adds the degraded-run, kill-and-resume and speculative-
# compaction smoke tests.  --chaos builds and then soaks the daemon under
# deterministic fault injection (seed pinned via CHAOS_SEED, default 42):
# every request must end in exactly one typed outcome, the daemon must
# survive and drain cleanly, and a retried batch must be byte-identical
# to an uninterrupted one.  The flags compose: --quick --chaos runs the
# quick subset AND the chaos soak, and a failure in either fails the gate
# (an earlier version exited 0 after the soak without ever running the
# quick subset).
#
# Set CHECK_ARTIFACTS to a directory to keep the metrics/trace documents
# the smoke tests produce (CI uploads them as build artifacts).
set -eu
cd "$(dirname "$0")/.."

quick=0
chaos=0
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    --chaos) chaos=1 ;;
    *)
      echo "check.sh: unknown argument '$arg' (expected --quick and/or --chaos)" >&2
      exit 2
      ;;
  esac
done

fail() {
  echo "check: FAILED: $*" >&2
  exit 1
}

# Every assertion below parses the versioned JSON telemetry; there is no
# point limping along without jq and silently skipping them.
command -v jq > /dev/null 2>&1 \
  || fail "jq is required (apt-get install jq / brew install jq)"

# QCheck property tests draw a fresh random seed per run unless pinned;
# an unlucky draw can send a generator into a pathological case and hang
# the gate for an hour.  Pin it (overridable) so the gate is reproducible
# — the properties still explore new seeds in interactive `dune runtest`.
: "${QCHECK_SEED:=1}"
export QCHECK_SEED

tmpdir=$(mktemp -d)
keep_artifacts() {
  if [ -n "${CHECK_ARTIFACTS:-}" ]; then
    mkdir -p "$CHECK_ARTIFACTS"
    cp -f "$tmpdir"/*.json "$tmpdir"/*.jsonl "$tmpdir"/*.txt \
      "$CHECK_ARTIFACTS"/ 2>/dev/null || true
    # The bench gates drop their records in the repo root; keep them with
    # the rest of the run's telemetry when present.
    cp -f BENCH_5.json BENCH_6.json "$CHECK_ARTIFACTS"/ 2>/dev/null || true
  fi
}
trap 'keep_artifacts; rm -rf "$tmpdir"' EXIT

echo "== dune build @all =="
dune build @all || fail "dune build @all"

run_chaos_soak() {
  scanatpg_bin=./_build/default/bin/scanatpg.exe
  [ -x "$scanatpg_bin" ] || fail "missing $scanatpg_bin (dune build @all ran?)"
  : "${CHAOS_SEED:=42}"
  : "${CHAOS_REQUESTS:=200}"

  echo "== chaos soak (seed $CHAOS_SEED, $CHAOS_REQUESTS requests) =="
  # Daemon with every injection site armed; the retrying batch client
  # drives the workload through injected worker crashes, compile
  # failures, queue delays and killed response writes.  The contract:
  # the daemon never dies, every request ends in exactly one typed
  # outcome (no "lost"), and SIGTERM still drains to exit 0.
  chaos_spec="seed=${CHAOS_SEED};worker=crash@0.03;cache.compile=error@0.05"
  chaos_spec="${chaos_spec};queue=delay:1@0.2;writer=error@0.01"
  : > "$tmpdir/chaos-requests.jsonl"
  i=0
  while [ "$i" -lt "$CHAOS_REQUESTS" ]; do
    i=$((i + 1))
    case $((i % 3)) in
      0) printf '{"op":"generate","circuit":"s298","seed":%d}\n' "$i" ;;
      1) printf '{"op":"generate","circuit":"s27","seed":%d}\n' "$i" ;;
      2) printf '{"op":"table","circuit":"s27"}\n' ;;
    esac >> "$tmpdir/chaos-requests.jsonl"
  done
  "$scanatpg_bin" serve --socket "$tmpdir/chaos.sock" --quiet \
    --server-jobs 2 --chaos "$chaos_spec" \
    --access-log "$tmpdir/chaos-access.jsonl" \
    --metrics "$tmpdir/chaos-metrics.json" &
  serve_pid=$!
  i=0
  while [ ! -S "$tmpdir/chaos.sock" ] && [ "$i" -lt 50 ]; do
    i=$((i + 1)); sleep 0.1
  done
  [ -S "$tmpdir/chaos.sock" ] || fail "chaos daemon socket never appeared"
  rc=0
  "$scanatpg_bin" batch --socket "$tmpdir/chaos.sock" \
    --retries 6 --backoff-ms 50 \
    "$tmpdir/chaos-requests.jsonl" -o "$tmpdir/chaos-responses.jsonl" \
    2> /dev/null || rc=$?
  # injected faults surface as typed failures, so batch may exit 1
  [ "$rc" -eq 0 ] || [ "$rc" -eq 1 ] || [ "$rc" -eq 3 ] \
    || fail "chaos batch exited $rc (expected 0, 1 or 3)"
  kill -0 "$serve_pid" 2> /dev/null \
    || fail "daemon died during the chaos soak"
  jq -es --argjson n "$CHAOS_REQUESTS" \
    'length == $n and all(.[];
       .status == "ok" or .status == "degraded" or .status == "error"
       or .status == "overloaded" or .status == "internal_error")' \
    "$tmpdir/chaos-responses.jsonl" > /dev/null \
    || fail "not every request ended in exactly one typed outcome"
  kill -TERM "$serve_pid"
  wait "$serve_pid" || fail "chaos daemon exited non-zero after SIGTERM"
  jq -e '.counters["server.internal_error"] >= 1' \
    "$tmpdir/chaos-metrics.json" > /dev/null \
    || fail "soak injected no faults (server.internal_error == 0)"
  jq -es --argjson n "$CHAOS_REQUESTS" \
    'length >= $n and all(.[]; has("id") and has("op") and has("status"))' \
    "$tmpdir/chaos-access.jsonl" > /dev/null \
    || fail "chaos access log not well-formed"

  echo "== chaos retry byte-identity =="
  # A single injected connection kill at the response writer: the
  # retrying client must reconnect, replay only the unanswered requests,
  # and produce bytes identical to an uninterrupted run.
  cat > "$tmpdir/retry-requests.jsonl" <<'EOF'
{"op":"generate","circuit":"s27","seed":7}
{"op":"generate","circuit":"s298","seed":5}
{"op":"table","circuit":"s27"}
{"op":"generate","circuit":"s27","seed":9}
EOF
  run_retry_daemon() {
    sock=$1; out=$2; chaos_opt=$3; retry_opts=$4
    if [ -n "$chaos_opt" ]; then
      "$scanatpg_bin" serve --socket "$sock" --quiet --chaos "$chaos_opt" &
    else
      "$scanatpg_bin" serve --socket "$sock" --quiet &
    fi
    pid=$!
    i=0
    while [ ! -S "$sock" ] && [ "$i" -lt 50 ]; do
      i=$((i + 1)); sleep 0.1
    done
    [ -S "$sock" ] || fail "retry daemon socket never appeared"
    # shellcheck disable=SC2086
    "$scanatpg_bin" batch --socket "$sock" $retry_opts \
      "$tmpdir/retry-requests.jsonl" -o "$out" 2> /dev/null \
      || fail "retry batch against $sock"
    kill -TERM "$pid"
    wait "$pid" || fail "retry daemon exited non-zero"
  }
  run_retry_daemon "$tmpdir/clean.sock" "$tmpdir/clean-responses.jsonl" "" ""
  run_retry_daemon "$tmpdir/faulty.sock" "$tmpdir/retried-responses.jsonl" \
    "seed=${CHAOS_SEED};writer=error#1" "--retries 4 --backoff-ms 50"
  diff "$tmpdir/clean-responses.jsonl" "$tmpdir/retried-responses.jsonl" \
    || fail "retried batch differs from the uninterrupted run"
}

wait_for_socket() {
  i=0
  while [ ! -S "$1" ] && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
  done
  [ -S "$1" ] || fail "$2 socket never appeared"
}

run_fleet_smoke() {
  scanatpg_bin=./_build/default/bin/scanatpg.exe
  [ -x "$scanatpg_bin" ] || fail "missing $scanatpg_bin (dune build @all ran?)"
  : "${CHAOS_SEED:=42}"

  echo "== fleet smoke (router over 2 shards, injected shard crash) =="
  # The armed failpoint SIGKILLs the dispatch target's shard process
  # exactly once; the router must restart it, redeliver the lost
  # request, and keep every client outcome typed — the crash is
  # invisible to the client.
  cat > "$tmpdir/fleet-requests.jsonl" <<'EOF'
{"op":"generate","circuit":"s27","seed":7}
{"op":"generate","circuit":"s208","seed":5}
{"op":"table","circuit":"s27"}
{"op":"generate","circuit":"s27","seed":9}
{"op":"generate","circuit":"s27","seed":7}
{"op":"table","circuit":"s27"}
EOF
  "$scanatpg_bin" router --socket "$tmpdir/fleet.sock" --shards 2 --quiet \
    --chaos "seed=${CHAOS_SEED};shard=crash#1" \
    --metrics "$tmpdir/fleet-metrics.json" &
  router_pid=$!
  wait_for_socket "$tmpdir/fleet.sock" "fleet router"
  "$scanatpg_bin" batch --socket "$tmpdir/fleet.sock" \
    "$tmpdir/fleet-requests.jsonl" -o "$tmpdir/fleet-responses.jsonl" \
    2> /dev/null || fail "batch through the router"
  kill -0 "$router_pid" 2> /dev/null \
    || fail "router died during the fleet smoke"
  jq -es 'length == 6 and all(.[]; .status == "ok")' \
    "$tmpdir/fleet-responses.jsonl" > /dev/null \
    || fail "a routed request did not end in a typed ok outcome"

  # Open-loop load harness, two rates: a sustainable one (no losses) and
  # a deliberate overload — admission control must still hand every
  # arrival a typed response (lost == 0), it just types the excess as
  # overloaded.  Both reports are kept as CI artifacts.
  printf '%s\n' '{"op":"generate","circuit":"s27","seed":7}' \
    '{"op":"table","circuit":"s27"}' > "$tmpdir/fleet-templates.jsonl"
  "$scanatpg_bin" batch --socket "$tmpdir/fleet.sock" \
    --rate 20 --duration 2 --seed "$CHAOS_SEED" \
    --report "$tmpdir/fleet-load-report.json" \
    "$tmpdir/fleet-templates.jsonl" 2> /dev/null \
    || fail "load harness at 20 rps"
  jq -e '.schema == "scanatpg-load/1" and .lost == 0 and .completed >= 1' \
    "$tmpdir/fleet-load-report.json" > /dev/null \
    || fail "load-harness report not well-formed (or lost requests)"
  "$scanatpg_bin" batch --socket "$tmpdir/fleet.sock" \
    --rate 300 --duration 1 --seed "$CHAOS_SEED" \
    --report "$tmpdir/fleet-overload-report.json" \
    "$tmpdir/fleet-templates.jsonl" 2> /dev/null \
    || fail "load harness at 300 rps (overload)"
  jq -e '.lost == 0' "$tmpdir/fleet-overload-report.json" > /dev/null \
    || fail "overload dropped a request without a typed response"

  # Fleet-wide top: aggregate line plus one row per target.
  "$scanatpg_bin" top --socket "$tmpdir/fleet.sock" \
    --socket "$tmpdir/fleet.sock.shard0" \
    --socket "$tmpdir/fleet.sock.shard1" \
    --count 1 > "$tmpdir/fleet-top.txt" 2> /dev/null \
    || fail "fleet-wide top"
  grep -q '^fleet ' "$tmpdir/fleet-top.txt" \
    || fail "top did not render the aggregate fleet line"
  [ "$(wc -l < "$tmpdir/fleet-top.txt")" -eq 4 ] \
    || fail "top did not render one row per target"

  # Clean fanned-out drain: SIGTERM must collect both shard processes,
  # unlink every socket, and exit 0.
  kill -TERM "$router_pid"
  wait "$router_pid" || fail "router exited non-zero after SIGTERM"
  [ ! -S "$tmpdir/fleet.sock" ] || fail "router socket not unlinked"
  [ ! -S "$tmpdir/fleet.sock.shard0" ] && [ ! -S "$tmpdir/fleet.sock.shard1" ] \
    || fail "shard sockets not unlinked after the fanned-out drain"
  jq -e '.counters["router.shard_kills"] >= 1
         and .counters["router.shard_restarts"] >= 1' \
    "$tmpdir/fleet-metrics.json" > /dev/null \
    || fail "injected shard crash never fired (or no restart)"
  pgrep -f "scanatpg.exe serve --socket $tmpdir/fleet.sock" > /dev/null 2>&1 \
    && fail "a shard process outlived the router" || true
}

run_fleet_soak() {
  scanatpg_bin=./_build/default/bin/scanatpg.exe
  : "${CHAOS_SEED:=42}"
  : "${FLEET_REQUESTS:=60}"

  echo "== fleet chaos soak (seed $CHAOS_SEED, $FLEET_REQUESTS requests) =="
  # Router over 2 shards with random shard kills and client-write faults
  # armed.  A retrying batch drives a two-circuit mix (s27 and s208 hash
  # to different shards, so both supervision paths see traffic).  The
  # contract mirrors the daemon soak: the router never dies, every
  # request ends in exactly one typed outcome, SIGTERM drains to 0.
  : > "$tmpdir/fsoak-requests.jsonl"
  i=0
  while [ "$i" -lt "$FLEET_REQUESTS" ]; do
    i=$((i + 1))
    case $((i % 3)) in
      0) printf '{"op":"generate","circuit":"s208","seed":%d}\n' "$i" ;;
      1) printf '{"op":"generate","circuit":"s27","seed":%d}\n' "$i" ;;
      2) printf '{"op":"table","circuit":"s27"}\n' ;;
    esac >> "$tmpdir/fsoak-requests.jsonl"
  done
  "$scanatpg_bin" router --socket "$tmpdir/fsoak.sock" --shards 2 --quiet \
    --chaos "seed=${CHAOS_SEED};shard=crash@0.05;writer=error@0.02" \
    --metrics "$tmpdir/fsoak-metrics.json" &
  router_pid=$!
  wait_for_socket "$tmpdir/fsoak.sock" "fleet soak router"
  rc=0
  "$scanatpg_bin" batch --socket "$tmpdir/fsoak.sock" \
    --retries 6 --backoff-ms 50 \
    "$tmpdir/fsoak-requests.jsonl" -o "$tmpdir/fsoak-responses.jsonl" \
    2> /dev/null || rc=$?
  [ "$rc" -eq 0 ] || [ "$rc" -eq 1 ] || [ "$rc" -eq 3 ] \
    || fail "fleet soak batch exited $rc (expected 0, 1 or 3)"
  kill -0 "$router_pid" 2> /dev/null \
    || fail "router died during the fleet soak"
  jq -es --argjson n "$FLEET_REQUESTS" \
    'length == $n and all(.[];
       .status == "ok" or .status == "degraded" or .status == "error"
       or .status == "overloaded" or .status == "internal_error")' \
    "$tmpdir/fsoak-responses.jsonl" > /dev/null \
    || fail "not every routed request ended in exactly one typed outcome"
  kill -TERM "$router_pid"
  wait "$router_pid" || fail "router exited non-zero after the soak SIGTERM"
  jq -e '.counters["router.shard_kills"] >= 1' \
    "$tmpdir/fsoak-metrics.json" > /dev/null \
    || fail "fleet soak injected no shard kills"

  echo "== routed retry byte-identity (mid-stream shard restart) =="
  # Satellite of the retried-vs-clean diff: same requests, but through a
  # router whose shard dies mid-stream AND whose first client write is
  # faulted.  The batch client reconnects to the ROUTER (the only
  # address it knows), replays the unanswered tail, and the bytes must
  # match a clean routed run — and the clean routed run must match the
  # clean direct-daemon run, proving the router is a transparent proxy.
  run_retry_router() {
    sock=$1; out=$2; chaos_opt=$3; retry_opts=$4
    if [ -n "$chaos_opt" ]; then
      "$scanatpg_bin" router --socket "$sock" --shards 2 --quiet \
        --chaos "$chaos_opt" &
    else
      "$scanatpg_bin" router --socket "$sock" --shards 2 --quiet &
    fi
    pid=$!
    wait_for_socket "$sock" "retry router"
    # shellcheck disable=SC2086
    "$scanatpg_bin" batch --socket "$sock" $retry_opts \
      "$tmpdir/retry-requests.jsonl" -o "$out" 2> /dev/null \
      || fail "retry batch against routed $sock"
    kill -TERM "$pid"
    wait "$pid" || fail "retry router exited non-zero"
  }
  run_retry_router "$tmpdir/clean-routed.sock" \
    "$tmpdir/clean-routed-responses.jsonl" "" ""
  run_retry_router "$tmpdir/faulty-routed.sock" \
    "$tmpdir/retried-routed-responses.jsonl" \
    "seed=${CHAOS_SEED};shard=crash#1;writer=error#1" \
    "--retries 4 --backoff-ms 50"
  diff "$tmpdir/clean-routed-responses.jsonl" \
    "$tmpdir/retried-routed-responses.jsonl" \
    || fail "routed retried batch differs from the clean routed run"
  diff "$tmpdir/clean-responses.jsonl" \
    "$tmpdir/clean-routed-responses.jsonl" \
    || fail "routed responses differ from the direct-daemon run"
}

if [ "$chaos" -eq 1 ] && [ "$quick" -eq 0 ]; then
  run_chaos_soak
  run_fleet_smoke
  run_fleet_soak
  echo "check: OK (chaos)"
  exit 0
fi

echo "== dune runtest =="
dune runtest || fail "dune runtest"

echo "== telemetry smoke test =="
# The table subcommand must produce a parseable metrics document with the
# versioned schema tag and at least one phase/counter, and a trace file
# with one JSON object per line.
dune exec bin/scanatpg.exe -- table 6 --circuits s27 --verbose \
  --metrics "$tmpdir/metrics.json" --trace "$tmpdir/trace.jsonl" \
  > "$tmpdir/table.out" 2>&1 \
  || fail "table 6 s27 exited non-zero (see $tmpdir/table.out)"
jq -e '.schema == "scanatpg-metrics/1"' "$tmpdir/metrics.json" > /dev/null \
  || fail "metrics schema tag"
jq -e '.phases.generate >= 0' "$tmpdir/metrics.json" > /dev/null \
  || fail "metrics generate phase"
jq -e '.counters["omit.trials"] >= 1' "$tmpdir/metrics.json" > /dev/null \
  || fail "metrics omit.trials counter"
jq -es 'length >= 1 and all(.[]; .stop_ns >= .start_ns)' \
  "$tmpdir/trace.jsonl" > /dev/null || fail "trace spans well-formed"
grep -q 'omission:' "$tmpdir/table.out" || fail "verbose omission summary"

if [ "$quick" -eq 1 ]; then
  if [ "$chaos" -eq 1 ]; then
    run_chaos_soak
    echo "check: OK (quick+chaos)"
  else
    echo "check: OK (quick)"
  fi
  exit 0
fi

echo "== degraded-run smoke test =="
# A tiny deadline must terminate promptly with the documented degraded
# exit code (3) and still leave a well-formed metrics document that names
# the phase where the budget tripped.
rc=0
dune exec bin/scanatpg.exe -- run s298 --deadline 0.05 \
  --metrics "$tmpdir/degraded.json" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || fail "expected exit 3 (degraded), got $rc"
jq -e '.schema == "scanatpg-metrics/1"' "$tmpdir/degraded.json" > /dev/null \
  || fail "degraded metrics schema tag"
jq -e '.counters | keys | map(select(startswith("budget.tripped."))) | length == 1' \
  "$tmpdir/degraded.json" > /dev/null || fail "budget.tripped.<phase> counter"

echo "== kill-and-resume smoke test =="
# Halt right after the generate phase (induced crash, exit 4), resume from
# the checkpoint, and demand bit-identical table rows and jobs-invariant
# counters versus an uninterrupted run — even at different --jobs and
# --compact-jobs.
rc=0
dune exec bin/scanatpg.exe -- run s27 --checkpoint "$tmpdir/ck" \
  --halt-after generate > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 4 ] || fail "expected exit 4 (halted), got $rc"
dune exec bin/scanatpg.exe -- run s27 --checkpoint "$tmpdir/ck" --resume \
  --jobs 3 --compact-jobs 3 --metrics "$tmpdir/resumed.json" \
  > "$tmpdir/resumed.out" 2>/dev/null || fail "resumed run exited non-zero"
dune exec bin/scanatpg.exe -- run s27 \
  --metrics "$tmpdir/uninterrupted.json" > "$tmpdir/uninterrupted.out" \
  2>/dev/null || fail "uninterrupted run exited non-zero"
diff "$tmpdir/resumed.out" "$tmpdir/uninterrupted.out" \
  || fail "resumed stdout differs from uninterrupted run"
# Every counter except the speculative-dispatch and adaptive-width
# accounting (which by design reflect --compact-jobs and the dispatch
# schedule) must match bit for bit.
jq -S '.counters | with_entries(select(.key
         | startswith("compaction.speculative.")
           or startswith("compaction.adaptive.") | not))' \
  "$tmpdir/resumed.json" > "$tmpdir/resumed.counters" \
  || fail "jq on resumed metrics"
jq -S '.counters | with_entries(select(.key
         | startswith("compaction.speculative.")
           or startswith("compaction.adaptive.") | not))' \
  "$tmpdir/uninterrupted.json" > "$tmpdir/uninterrupted.counters" \
  || fail "jq on uninterrupted metrics"
diff "$tmpdir/resumed.counters" "$tmpdir/uninterrupted.counters" \
  || fail "resumed counters differ from uninterrupted run"

echo "== speculative-compaction smoke test =="
# Static compaction must produce byte-identical sequences and identical
# jobs-invariant counters at --compact-jobs 1 vs 3, and must actually
# dispatch speculative trials at 3.
dune exec bin/scanatpg.exe -- generate s298 --no-compact \
  -o "$tmpdir/seq.txt" > /dev/null 2>&1 || fail "generate s298 --no-compact"
dune exec bin/scanatpg.exe -- compact s298 "$tmpdir/seq.txt" \
  -o "$tmpdir/compact1.txt" --metrics "$tmpdir/compact1.json" \
  > "$tmpdir/compact1.out" 2>&1 || fail "compact at --compact-jobs 1"
dune exec bin/scanatpg.exe -- compact s298 "$tmpdir/seq.txt" --compact-jobs 3 \
  -o "$tmpdir/compact3.txt" --metrics "$tmpdir/compact3.json" \
  > "$tmpdir/compact3.out" 2>&1 || fail "compact at --compact-jobs 3"
diff "$tmpdir/compact1.txt" "$tmpdir/compact3.txt" \
  || fail "compacted sequences differ between --compact-jobs 1 and 3"
jq -S '.counters | with_entries(select(.key
         | startswith("compaction.speculative.")
           or startswith("compaction.adaptive.") | not))' \
  "$tmpdir/compact1.json" > "$tmpdir/compact1.counters" \
  || fail "jq on compact-jobs-1 metrics"
jq -S '.counters | with_entries(select(.key
         | startswith("compaction.speculative.")
           or startswith("compaction.adaptive.") | not))' \
  "$tmpdir/compact3.json" > "$tmpdir/compact3.counters" \
  || fail "jq on compact-jobs-3 metrics"
diff "$tmpdir/compact1.counters" "$tmpdir/compact3.counters" \
  || fail "compaction counters differ between --compact-jobs 1 and 3"
jq -e '.counters["compaction.speculative.dispatched"] >= 1' \
  "$tmpdir/compact3.json" > /dev/null \
  || fail "no speculative trials dispatched at --compact-jobs 3"
jq -e '.counters["compaction.speculative.dispatched"] ==
       .counters["compaction.speculative.committed"]
       + .counters["compaction.speculative.discarded"]' \
  "$tmpdir/compact3.json" > /dev/null \
  || fail "speculative dispatch accounting does not balance"
jq -e '.counters | has("compaction.adaptive.shrinks")
       and has("compaction.adaptive.trials_saved")
       and has("compaction.adaptive.arena_reuses")' \
  "$tmpdir/compact3.json" > /dev/null \
  || fail "adaptive-width telemetry missing at --compact-jobs 3"

echo "== serve-mode smoke test =="
# Daemon on a temp socket; pipeline generate (twice, so the second is a
# warm-cache hit) + stats + shutdown through the batch client.  Demand
# clean exits on both sides, server.accepted == requests sent, exactly one
# cache hit, and identical generate payloads (modulo id) cold vs warm.
scanatpg_bin=./_build/default/bin/scanatpg.exe
[ -x "$scanatpg_bin" ] || fail "missing $scanatpg_bin (dune build @all ran?)"
cat > "$tmpdir/requests.jsonl" <<'EOF'
{"op":"generate","circuit":"s27","seed":7}
{"op":"generate","circuit":"s27","seed":7}
{"op":"stats"}
{"op":"shutdown"}
EOF
"$scanatpg_bin" serve --socket "$tmpdir/serve.sock" --quiet \
  --metrics "$tmpdir/serve-metrics.json" &
serve_pid=$!
i=0
while [ ! -S "$tmpdir/serve.sock" ] && [ "$i" -lt 50 ]; do
  i=$((i + 1)); sleep 0.1
done
[ -S "$tmpdir/serve.sock" ] || fail "daemon socket never appeared"
"$scanatpg_bin" batch --socket "$tmpdir/serve.sock" \
  "$tmpdir/requests.jsonl" -o "$tmpdir/responses.jsonl" 2> /dev/null \
  || fail "batch against daemon"
wait "$serve_pid" || fail "daemon exited non-zero after a shutdown request"
[ "$(wc -l < "$tmpdir/responses.jsonl")" -eq 4 ] \
  || fail "expected 4 responses"
jq -es 'all(.[]; .status == "ok")' "$tmpdir/responses.jsonl" > /dev/null \
  || fail "non-ok response in batch replay"
jq -e '.counters["server.accepted"] == 4' "$tmpdir/serve-metrics.json" \
  > /dev/null || fail "server.accepted != requests sent"
jq -e '.counters["server.cache_hit"] == 1
       and .counters["server.cache_miss"] == 1' \
  "$tmpdir/serve-metrics.json" > /dev/null \
  || fail "expected one cache miss then one cache hit"
warm1=$(sed -n 1p "$tmpdir/responses.jsonl" | jq -cS 'del(.id)')
warm2=$(sed -n 2p "$tmpdir/responses.jsonl" | jq -cS 'del(.id)')
[ "$warm1" = "$warm2" ] \
  || fail "warm-cache generate payload differs from the cold one"

echo "== serve-drain smoke test =="
# SIGTERM with a short grace: in-flight work is budget-tripped to typed
# degraded responses, the daemon still exits 0, and the access log holds
# one well-formed JSON line per request.
cat > "$tmpdir/drain-requests.jsonl" <<'EOF'
{"op":"table","circuit":"s344"}
{"op":"table","circuit":"s298"}
EOF
"$scanatpg_bin" serve --socket "$tmpdir/drain.sock" --quiet \
  --drain-grace 0.2 --access-log "$tmpdir/access.jsonl" &
serve_pid=$!
i=0
while [ ! -S "$tmpdir/drain.sock" ] && [ "$i" -lt 50 ]; do
  i=$((i + 1)); sleep 0.1
done
[ -S "$tmpdir/drain.sock" ] || fail "drain daemon socket never appeared"
"$scanatpg_bin" batch --socket "$tmpdir/drain.sock" \
  "$tmpdir/drain-requests.jsonl" -o "$tmpdir/drain-responses.jsonl" \
  2> /dev/null &
batch_pid=$!
sleep 0.5
kill -TERM "$serve_pid"
wait "$serve_pid" || fail "daemon exited non-zero after SIGTERM"
rc=0
wait "$batch_pid" || rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ] \
  || fail "batch during drain exited $rc (expected 0 or 3)"
jq -es 'all(.[]; .status == "ok" or .status == "degraded")' \
  "$tmpdir/drain-responses.jsonl" > /dev/null \
  || fail "drain left a response that is neither ok nor degraded"
jq -es 'length == 2 and all(.[]; has("id") and has("op") and has("status"))' \
  "$tmpdir/access.jsonl" > /dev/null \
  || fail "access log not well-formed after drain"

echo "== observability smoke test =="
# Daemon with the full observability plane on: Chrome trace export, a
# zero slow threshold (every compute request logs its span tree) and the
# enriched access log.  While it is up, the Prometheus exposition must
# pass a line lint; after drain the trace must be a Perfetto-loadable
# trace-event array.
cat > "$tmpdir/obs-requests.jsonl" <<'EOF'
{"op":"generate","circuit":"s27","seed":7}
EOF
"$scanatpg_bin" serve --socket "$tmpdir/obs.sock" --quiet \
  --trace "$tmpdir/trace-chrome.json" --trace-format chrome --slow-ms 0 \
  --access-log "$tmpdir/obs-access.jsonl" &
serve_pid=$!
i=0
while [ ! -S "$tmpdir/obs.sock" ] && [ "$i" -lt 50 ]; do
  i=$((i + 1)); sleep 0.1
done
[ -S "$tmpdir/obs.sock" ] || fail "obs daemon socket never appeared"
"$scanatpg_bin" batch --socket "$tmpdir/obs.sock" \
  "$tmpdir/obs-requests.jsonl" -o "$tmpdir/obs-responses.jsonl" \
  2> /dev/null || fail "batch against obs daemon"
"$scanatpg_bin" stats --socket "$tmpdir/obs.sock" --prom \
  > "$tmpdir/stats-prom.txt" 2> /dev/null || fail "scanatpg stats --prom"
# Prometheus text lint: every line is a bare name{labels} value sample.
if grep -Evq '^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$' "$tmpdir/stats-prom.txt"; then
  fail "prometheus exposition has a malformed line"
fi
grep -q '^scanatpg_hist{name="server\.e2e_ns",quantile="0\.99"} ' \
  "$tmpdir/stats-prom.txt" || fail "prometheus e2e p99 sample missing"
printf '{"op":"shutdown"}\n' > "$tmpdir/obs-shutdown.jsonl"
"$scanatpg_bin" batch --socket "$tmpdir/obs.sock" \
  "$tmpdir/obs-shutdown.jsonl" 2> /dev/null || fail "obs daemon shutdown"
wait "$serve_pid" || fail "obs daemon exited non-zero after shutdown"
jq -e 'type == "array" and length >= 1
       and all(.[]; .ph == "X" and has("ts") and has("dur") and has("name"))' \
  "$tmpdir/trace-chrome.json" > /dev/null \
  || fail "chrome trace is not a well-formed trace-event array"
jq -es 'any(.[]; .op == "generate" and has("spans") and has("trace_id")
            and has("queue_wait_ns") and has("service_ns"))' \
  "$tmpdir/obs-access.jsonl" > /dev/null \
  || fail "slow request did not log an enriched line with its span tree"

run_fleet_smoke

echo "check: OK"
