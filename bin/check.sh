#!/bin/sh
# Pre-merge gate: everything must build (libraries, executables, examples,
# docs) and the whole test suite must pass.  Run from the repo root:
#
#     bin/check.sh
#
# CI and local development use the same gate; a change is mergeable only
# when this script exits 0.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== telemetry smoke test =="
# The table subcommand must produce a parseable metrics document with the
# versioned schema tag and at least one phase/counter, and a trace file
# with one JSON object per line.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec bin/scanatpg.exe -- table 6 --circuits s27 --verbose \
  --metrics "$tmpdir/metrics.json" --trace "$tmpdir/trace.jsonl" \
  > "$tmpdir/table.out" 2>&1
if command -v jq > /dev/null 2>&1; then
  jq -e '.schema == "scanatpg-metrics/1"' "$tmpdir/metrics.json" > /dev/null
  jq -e '.phases.generate >= 0' "$tmpdir/metrics.json" > /dev/null
  jq -e '.counters["omit.trials"] >= 1' "$tmpdir/metrics.json" > /dev/null
  jq -es 'length >= 1 and all(.[]; .stop_ns >= .start_ns)' \
    "$tmpdir/trace.jsonl" > /dev/null
else
  grep -q '"scanatpg-metrics/1"' "$tmpdir/metrics.json"
  grep -q '"start_ns"' "$tmpdir/trace.jsonl"
fi
grep -q 'omission:' "$tmpdir/table.out"

echo "== degraded-run smoke test =="
# A tiny deadline must terminate promptly with the documented degraded
# exit code (3) and still leave a well-formed metrics document that names
# the phase where the budget tripped.
rc=0
dune exec bin/scanatpg.exe -- run s298 --deadline 0.05 \
  --metrics "$tmpdir/degraded.json" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || { echo "expected exit 3 (degraded), got $rc"; exit 1; }
if command -v jq > /dev/null 2>&1; then
  jq -e '.schema == "scanatpg-metrics/1"' "$tmpdir/degraded.json" > /dev/null
  jq -e '.counters | keys | map(select(startswith("budget.tripped."))) | length == 1' \
    "$tmpdir/degraded.json" > /dev/null
else
  grep -q '"budget.tripped.' "$tmpdir/degraded.json"
fi

echo "== kill-and-resume smoke test =="
# Halt right after the generate phase (induced crash, exit 4), resume from
# the checkpoint, and demand bit-identical table rows and jobs-invariant
# counters versus an uninterrupted run — even at a different --jobs.
rc=0
dune exec bin/scanatpg.exe -- run s27 --checkpoint "$tmpdir/ck" \
  --halt-after generate > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 4 ] || { echo "expected exit 4 (halted), got $rc"; exit 1; }
dune exec bin/scanatpg.exe -- run s27 --checkpoint "$tmpdir/ck" --resume \
  --jobs 3 --metrics "$tmpdir/resumed.json" > "$tmpdir/resumed.out" 2>/dev/null
dune exec bin/scanatpg.exe -- run s27 \
  --metrics "$tmpdir/uninterrupted.json" > "$tmpdir/uninterrupted.out" 2>/dev/null
diff "$tmpdir/resumed.out" "$tmpdir/uninterrupted.out"
if command -v jq > /dev/null 2>&1; then
  jq -S '.counters' "$tmpdir/resumed.json" > "$tmpdir/resumed.counters"
  jq -S '.counters' "$tmpdir/uninterrupted.json" > "$tmpdir/uninterrupted.counters"
  diff "$tmpdir/resumed.counters" "$tmpdir/uninterrupted.counters"
fi

echo "check: OK"
