#!/bin/sh
# Bench-regression guard: compare the per-kernel wall times of a fresh
# BENCH_5.json (schema scanatpg-bench/5, written by
# `bench/main.exe --multicore-gate`) against the committed baseline and
# fail when any kernel drifted more than BENCH_TOLERANCE_PCT percent
# (default 25) in either direction — a slowdown is a regression, an
# unexplained speedup usually means the kernel stopped doing the work.
#
#     bin/bench_guard.sh BASELINE.json CURRENT.json
#
# A per-kernel delta table is written to $GITHUB_STEP_SUMMARY when CI
# provides one (and always to bench-guard-summary.md next to CURRENT).
#
# Enforcement is armed only when the baseline was recorded on a machine
# shaped like this one: baseline .cores must equal current .cores.  On a
# mismatch the same table is reported but nothing fails, with an
# explicit note to refresh the baseline from a real CI bench artifact
# (see EXPERIMENTS.md).  A baseline with "provisional": true is likewise
# report-only regardless of shape.
set -eu

baseline=${1:?usage: bin/bench_guard.sh BASELINE.json CURRENT.json}
current=${2:?usage: bin/bench_guard.sh BASELINE.json CURRENT.json}
: "${BENCH_TOLERANCE_PCT:=25}"

fail() {
  echo "bench_guard: FAILED: $*" >&2
  exit 1
}

command -v jq > /dev/null 2>&1 \
  || fail "jq is required (apt-get install jq / brew install jq)"
[ -f "$baseline" ] || fail "missing baseline $baseline"
[ -f "$current" ] || fail "missing current $current"
jq -e '.schema == "scanatpg-bench/5"' "$baseline" > /dev/null \
  || fail "$baseline is not schema scanatpg-bench/5"
jq -e '.schema == "scanatpg-bench/5"' "$current" > /dev/null \
  || fail "$current is not schema scanatpg-bench/5"

# One "name value" line per kernel timing, keyed so baseline and current
# rows join by name.
kernels() {
  jq -r '
    (.compaction[] | (
      "omission_sequential_s/\(.circuit) \(.omission_sequential_s)",
      "omission_speculative_s/\(.circuit) \(.omission_speculative_s)",
      "restoration_sequential_s/\(.circuit) \(.restoration_sequential_s)",
      "restoration_speculative_s/\(.circuit) \(.restoration_speculative_s)")),
    (.server[] | (
      "server_cold_ms/\(.circuit) \(.cold_ms)",
      "server_warm_ms/\(.circuit) \(.warm_ms)"))' "$1"
}

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
kernels "$baseline" | sort > "$tmpdir/base.txt"
kernels "$current" | sort > "$tmpdir/cur.txt"

provisional=0
jq -e '.provisional == true' "$baseline" > /dev/null 2>&1 && provisional=1
base_cores=$(jq -r '.cores // 0' "$baseline")
cur_cores=$(jq -r '.cores // 0' "$current")
cores_match=0
[ "$base_cores" = "$cur_cores" ] && cores_match=1

summary="$(dirname "$current")/bench-guard-summary.md"
guard_rc=0
join "$tmpdir/base.txt" "$tmpdir/cur.txt" \
  | awk -v tol="$BENCH_TOLERANCE_PCT" -v provisional="$provisional" \
        -v cores_match="$cores_match" \
        -v base_cores="$base_cores" -v cur_cores="$cur_cores" '
    BEGIN {
      print "### Bench kernel drift vs baseline (tolerance +/-" tol "%)"
      print ""
      enforced = (!provisional && cores_match)
      if (provisional) {
        print "> baseline is **provisional**:" \
              " reporting only, not enforced"
        print ""
      } else if (!cores_match) {
        printf "> baseline cores (%s) != current cores (%s):" \
               " reporting only, not enforced —" \
               " refresh the baseline from a CI bench artifact" \
               " (see EXPERIMENTS.md)\n", base_cores, cur_cores
        print ""
      }
      print "| kernel | baseline | current | delta | verdict |"
      print "|---|---:|---:|---:|---|"
      breaches = 0
    }
    {
      name = $1; base = $2 + 0; cur = $3 + 0
      if (base <= 0) { delta = 0 } else { delta = (cur - base) / base * 100 }
      verdict = "ok"
      if (delta > tol || delta < -tol) { verdict = "BREACH"; breaches++ }
      printf "| %s | %.4f | %.4f | %+.1f%% | %s |\n", \
        name, base, cur, delta, verdict
    }
    END {
      print ""
      if (breaches > 0)
        printf "%d kernel(s) outside +/-%s%%\n", breaches, tol
      else
        print "all kernels within tolerance"
      exit (enforced && breaches > 0 ? 1 : 0)
    }' > "$summary" || guard_rc=$?

cat "$summary"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  cat "$summary" >> "$GITHUB_STEP_SUMMARY"
fi

# Kernels present on one side only are a schema/coverage drift the join
# above silently drops; surface them (new kernels are fine once the
# baseline is refreshed, vanished ones never are).
vanished=$(join -v 1 "$tmpdir/base.txt" "$tmpdir/cur.txt" | awk '{print $1}')
[ -z "$vanished" ] || fail "kernel(s) in baseline but not in current: $vanished"

[ "$guard_rc" -eq 0 ] || fail "kernel drift exceeded +/-${BENCH_TOLERANCE_PCT}%"
echo "bench_guard: OK"
