(* scanatpg — command-line front-end.

   Subcommands:
     info       structural summary and fault statistics of a circuit
     export     write a catalog circuit as a .bench file
     generate   run the unified flow (Section 2), optionally compact,
                write the sequence to a file
     compact    compact an existing sequence file
     table      regenerate the paper's Table 5/6/7 rows for chosen circuits
     run        full pipeline for one circuit with deadlines, checkpoints
                and resume (DESIGN.md #8)
     diagnose   rank fault candidates against an observed failing response
     serve      ATPG service daemon over a Unix socket (DESIGN.md #11)
     batch      pipeline a JSONL request file to a running daemon
     stats      fetch a daemon's live metrics (JSON or Prometheus text)
     top        watch a daemon: rps, latency percentiles, cache hit rate

   Circuits are named from the built-in catalog ("s27", "s298", ..., "b11")
   or given as a path to a .bench file.

   Exit codes: 0 success; 1 internal error; 2 malformed input (parse
   errors, unknown circuits, corrupt checkpoints); 3 degraded run (a
   --deadline / --max-backtracks budget tripped); 4 stopped at a
   --halt-after phase boundary; 124/125 are cmdliner's usage/term
   errors. *)

open Cmdliner

let load_circuit ?(scale = Circuits.Profiles.Quick) spec =
  if Sys.file_exists spec && Filename.check_suffix spec ".bench" then
    Netlist.Bench_format.parse_file spec
  else Circuits.Catalog.circuit ~scale spec

(* ---------------------------------------------------------------- args *)

let circuit_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"CIRCUIT" ~doc:"Catalog name (e.g. s298) or .bench file path.")

let scale_arg =
  let conv_scale =
    Arg.enum [ ("quick", Circuits.Profiles.Quick); ("full", Circuits.Profiles.Full) ]
  in
  Arg.(
    value & opt conv_scale Circuits.Profiles.Quick
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Synthetic benchmark scale: $(b,quick) or $(b,full).")

let seed_arg =
  Arg.(
    value & opt int64 0x00C0FFEE5EEDL
    & info [ "seed" ] ~docv:"SEED" ~doc:"Root seed for all random streams.")

let chains_arg =
  Arg.(
    value & opt int 1
    & info [ "chains" ] ~docv:"N" ~doc:"Number of scan chains to insert.")

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the result to $(docv).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Fault-simulation parallelism (OCaml domains). Results are \
              identical at any value; see DESIGN.md \xc2\xa76.")

let compact_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "compact-jobs" ] ~docv:"N"
        ~doc:"Static-compaction parallelism: speculative trial evaluation \
              across OCaml domains in omission rounds and restoration \
              waves. Results are identical at any value; see DESIGN.md \
              \xc2\xa710.")

let no_adaptive_arg =
  Arg.(
    value & flag
    & info [ "no-adaptive-width" ]
        ~doc:"Disable the adaptive speculation-width controller: omission \
              rounds dispatch the full $(b,--compact-jobs) width every \
              round instead of tracking the observed acceptance rate. \
              Results are identical either way; see DESIGN.md \xc2\xa714.")

let metrics_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write counters and per-phase timings as JSON \
              (schema scanatpg-metrics/1) to $(docv).")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write phase spans to $(docv) (format chosen by \
              $(b,--trace-format)).")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:"Span format for $(b,--trace): $(b,jsonl) (one span object \
              per line) or $(b,chrome) (Chrome trace-event JSON, loadable \
              in Perfetto or chrome://tracing).")

(* ------------------------------------------------------------- helpers *)

let write_sequence path seq =
  let b = Buffer.create 4096 in
  Array.iter
    (fun v ->
      Buffer.add_string b (Logicsim.Vectors.to_string v);
      Buffer.add_char b '\n')
    seq;
  Obs.Fileio.write_string path (Buffer.contents b)

let read_sequence path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let acc = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" then acc := Logicsim.Vectors.parse line :: !acc
         done
       with End_of_file -> ());
      Array.of_list (List.rev !acc))

let setup_scan ~chains ~seed ~jobs ?(compact_jobs = 1) ?(adaptive = true)
    ?(observe = false) circuit =
  let scan = Scanins.Scan.insert ~chains circuit in
  let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
  let cfg =
    Core.Config.with_compact_adaptive adaptive
      (Core.Config.with_compact_jobs compact_jobs
         (Core.Config.with_sim_jobs jobs
            { (Core.Config.for_circuit circuit) with
              Core.Config.chains; seed; observe }))
  in
  scan, model, cfg

let compact_seq cfg model seq targets ~metrics ~trace =
  let spec = Compaction.Spec.make () in
  let adaptive = Compaction.Spec.make_adaptive () in
  let restored, targets_r =
    Obs.Metrics.timed metrics ~trace "restore" (fun () ->
        let restored =
          Compaction.Restoration.run ~jobs:cfg.Core.Config.compact_jobs ~spec
            ~adaptive model seq targets
        in
        let targets_r =
          Compaction.Target.compute model restored
            ~fault_ids:targets.Compaction.Target.fault_ids
        in
        restored, targets_r)
  in
  let result =
    Obs.Metrics.timed metrics ~trace "omit" (fun () ->
        Compaction.Omission.run ~metrics ~trace ~spec ~adaptive model restored
          targets_r cfg.Core.Config.omission)
  in
  Compaction.Spec.record spec (Obs.Metrics.counters metrics);
  Compaction.Spec.record_adaptive adaptive (Obs.Metrics.counters metrics);
  result

let omission_summary (o : Compaction.Omission.stats) =
  Printf.sprintf "omission: %d trials, %d accepted, %d rejected, %d vectors removed in %d passes"
    o.Compaction.Omission.trials o.Compaction.Omission.accepted
    o.Compaction.Omission.rejected o.Compaction.Omission.removed_vectors
    o.Compaction.Omission.passes

(* Run [f] with a metrics document and a tracer (live only when a --trace
   file was requested) and write the requested files afterwards.  The
   confirmations go to stderr so machine-readable stdout (CSV, .bench)
   stays clean.  The files are written even when [f] raises (e.g. a
   --halt-after stop), so partial runs still leave well-formed
   observability output behind. *)
let with_obs ~metrics_path ~trace_path ?(trace_format = `Jsonl) f =
  let metrics = Obs.Metrics.create () in
  let trace =
    match trace_path with
    | None -> Obs.Trace.null
    | Some _ -> Obs.Trace.create ()
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun p ->
          Obs.Metrics.write_file metrics p;
          Printf.eprintf "wrote %s\n" p)
        metrics_path;
      Option.iter
        (fun p ->
          (match trace_format with
           | `Jsonl -> Obs.Trace.write_jsonl trace p
           | `Chrome -> Obs.Trace.write_chrome trace p);
          Printf.eprintf "wrote %s\n" p)
        trace_path)
    (fun () -> f metrics trace)

(* ---------------------------------------------------------------- info *)

let info_cmd =
  let run spec scale metrics_path trace_path trace_format =
    with_obs ~metrics_path ~trace_path ~trace_format (fun metrics trace ->
        let c =
          Obs.Metrics.timed metrics ~trace "load" (fun () ->
              load_circuit ~scale spec)
        in
        Format.printf "%a@." Netlist.Circuit.pp_summary c;
        Format.printf "%a@." Netlist.Stats.pp (Netlist.Stats.of_circuit c);
        if Netlist.Circuit.dff_count c > 0 then begin
          let scan, model =
            Obs.Metrics.timed metrics ~trace "model-build" (fun () ->
                let scan = Scanins.Scan.insert c in
                scan, Faultmodel.Model.build scan.Scanins.Scan.circuit)
          in
          Format.printf "scan version: %a@." Netlist.Circuit.pp_summary
            scan.Scanins.Scan.circuit;
          Format.printf "faults: %d collapsed (universe %d)@."
            (Faultmodel.Model.fault_count model)
            model.Faultmodel.Model.universe_size
        end);
    0
  in
  Cmd.v (Cmd.info "info" ~doc:"Show circuit structure and fault statistics.")
    Term.(
      const run $ circuit_arg $ scale_arg $ metrics_arg $ trace_arg
      $ trace_format_arg)

(* -------------------------------------------------------------- export *)

let export_cmd =
  let run spec scale out metrics_path trace_path trace_format =
    with_obs ~metrics_path ~trace_path ~trace_format (fun metrics trace ->
        let c =
          Obs.Metrics.timed metrics ~trace "load" (fun () ->
              load_circuit ~scale spec)
        in
        Obs.Metrics.timed metrics ~trace "export" (fun () ->
            match out with
            | Some path ->
              Netlist.Bench_format.write_file path c;
              Printf.printf "wrote %s\n" path
            | None -> print_string (Netlist.Bench_format.to_string c)));
    0
  in
  Cmd.v (Cmd.info "export" ~doc:"Write a catalog circuit in .bench format.")
    Term.(
      const run $ circuit_arg $ scale_arg $ out_arg $ metrics_arg $ trace_arg
      $ trace_format_arg)

(* ------------------------------------------------------------ generate *)

let generate_cmd =
  let no_compact =
    Arg.(value & flag & info [ "no-compact" ] ~doc:"Skip static compaction.")
  in
  let tester_arg =
    Arg.(
      value & opt (some string) None
      & info [ "tester" ] ~docv:"FILE"
          ~doc:"Also write a tester program (stimulus + expected responses).")
  in
  let observe =
    Arg.(
      value & flag
      & info [ "observe" ]
          ~doc:"Also count good-machine toggle / switching activity \
                (reported via --metrics).")
  in
  let run spec scale seed chains jobs compact_jobs no_adaptive no_compact out
      tester observe metrics_path trace_path trace_format =
    with_obs ~metrics_path ~trace_path ~trace_format (fun metrics trace ->
        let c = load_circuit ~scale spec in
        let scan, model, cfg =
          setup_scan ~chains ~seed ~jobs ~compact_jobs
            ~adaptive:(not no_adaptive) ~observe c
        in
        let sk = Atpg.Scan_knowledge.create scan in
        let flow =
          Obs.Metrics.timed metrics ~trace "generate" (fun () ->
              Core.Flow.generate ~metrics cfg sk model)
        in
        Printf.printf
          "coverage %.2f%% (%d/%d targeted, %d proven redundant excluded)\n"
          (Core.Flow.coverage flow) flow.Core.Flow.detected
          flow.Core.Flow.targeted flow.Core.Flow.pruned_redundant;
        Printf.printf
          "  by random %d, by ATPG %d, by scan drain %d, by scan load %d\n"
          flow.Core.Flow.by_random flow.Core.Flow.by_atpg flow.Core.Flow.by_drain
          flow.Core.Flow.by_justify;
        let seq = flow.Core.Flow.sequence in
        Printf.printf "sequence: %d vectors (%d scan)\n" (Array.length seq)
          (Core.Pipeline.scan_count scan seq);
        let final =
          if no_compact then seq
          else begin
            let compacted, _, ostats =
              compact_seq cfg model seq flow.Core.Flow.targets ~metrics ~trace
            in
            Printf.printf "compacted: %d vectors (%d scan)\n"
              (Array.length compacted)
              (Core.Pipeline.scan_count scan compacted);
            Printf.printf "  %s\n" (omission_summary ostats);
            compacted
          end
        in
        Option.iter
          (fun path ->
            write_sequence path final;
            Printf.printf "wrote %s\n" path)
          out;
        Option.iter
          (fun path ->
            let program = Core.Tester.build scan.Scanins.Scan.circuit final in
            Core.Tester.write_file path program;
            Printf.printf "wrote %s (%d cycles, %d observing)\n" path
              (Array.length final)
              (Core.Tester.observing_cycles program))
          tester);
    0
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate (and compact) a unified test sequence for a circuit.")
    Term.(
      const run $ circuit_arg $ scale_arg $ seed_arg $ chains_arg $ jobs_arg
      $ compact_jobs_arg $ no_adaptive_arg $ no_compact $ out_arg $ tester_arg
      $ observe $ metrics_arg $ trace_arg $ trace_format_arg)

(* ------------------------------------------------------------- compact *)

let compact_cmd =
  let seq_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SEQFILE" ~doc:"Sequence file (one 01x vector per line).")
  in
  let run spec scale seed chains jobs compact_jobs no_adaptive seqfile out
      metrics_path trace_path trace_format =
    with_obs ~metrics_path ~trace_path ~trace_format (fun metrics trace ->
        let c = load_circuit ~scale spec in
        let scan, model, cfg =
          setup_scan ~chains ~seed ~jobs ~compact_jobs
            ~adaptive:(not no_adaptive) c
        in
        let seq = read_sequence seqfile in
        let nf = Faultmodel.Model.fault_count model in
        let targets =
          Obs.Metrics.timed metrics ~trace "target-compute" (fun () ->
              Compaction.Target.compute model seq
                ~fault_ids:(Array.init nf Fun.id))
        in
        Printf.printf "sequence detects %d/%d faults\n"
          (Compaction.Target.count targets) nf;
        let compacted, _, ostats = compact_seq cfg model seq targets ~metrics ~trace in
        Printf.printf "%d -> %d vectors (scan %d -> %d)\n" (Array.length seq)
          (Array.length compacted)
          (Core.Pipeline.scan_count scan seq)
          (Core.Pipeline.scan_count scan compacted);
        Printf.printf "%s\n" (omission_summary ostats);
        Option.iter
          (fun path ->
            write_sequence path compacted;
            Printf.printf "wrote %s\n" path)
          out);
    0
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Statically compact a test sequence (restoration, then omission).")
    Term.(
      const run $ circuit_arg $ scale_arg $ seed_arg $ chains_arg $ jobs_arg
      $ compact_jobs_arg $ no_adaptive_arg $ seq_arg $ out_arg $ metrics_arg
      $ trace_arg $ trace_format_arg)

(* --------------------------------------------------------------- table *)

let table_cmd =
  let which_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("5", `T5); ("6", `T6); ("7", `T7) ])) None
      & info [] ~docv:"TABLE" ~doc:"Which paper table: 5, 6 or 7.")
  in
  let circuits_arg =
    Arg.(
      value
      & opt (list string) [ "s27"; "s298"; "s344"; "b01"; "b02" ]
      & info [ "circuits" ] ~docv:"NAMES" ~doc:"Comma-separated circuit names.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of the text table.")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Also print per-circuit runtime and compaction statistics.")
  in
  let observe_arg =
    Arg.(
      value & flag
      & info [ "observe" ]
          ~doc:"Also count good-machine toggle / switching activity \
                (reported via --metrics).")
  in
  let run which names scale csv jobs compact_jobs no_adaptive verbose observe
      metrics_path trace_path trace_format =
    with_obs ~metrics_path ~trace_path ~trace_format (fun metrics trace ->
        let results =
          List.map
            (fun n ->
              let c = Circuits.Catalog.circuit ~scale n in
              let config =
                Core.Config.with_compact_adaptive (not no_adaptive)
                  (Core.Config.with_compact_jobs compact_jobs
                     (Core.Config.with_sim_jobs jobs
                        { (Core.Config.for_circuit c) with
                          Core.Config.observe }))
              in
              Core.Pipeline.run ~scale ~config ~metrics ~trace n)
            names
        in
        let pick text_fn csv_fn rows = if csv then csv_fn rows else text_fn rows in
        (match which with
         | `T5 ->
           print_string
             (pick Core.Report.table5 Core.Report.table5_csv
                (List.map (fun r -> r.Core.Pipeline.row5) results))
         | `T6 ->
           print_string
             (pick Core.Report.table6 Core.Report.table6_csv
                (List.map (fun r -> r.Core.Pipeline.row6) results))
         | `T7 ->
           print_string
             (pick Core.Report.table7 Core.Report.table7_csv
                (List.filter_map (fun r -> r.Core.Pipeline.row7) results)));
        if verbose then
          List.iter
            (fun r ->
              Printf.printf "%s: %.2fs; %s\n" r.Core.Pipeline.circuit
                r.Core.Pipeline.runtime_s
                (omission_summary r.Core.Pipeline.omit_stats))
            results);
    0
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate rows of the paper's Tables 5-7.")
    Term.(
      const run $ which_arg $ circuits_arg $ scale_arg $ csv_arg $ jobs_arg
      $ compact_jobs_arg $ no_adaptive_arg $ verbose_arg $ observe_arg
      $ metrics_arg $ trace_arg $ trace_format_arg)

(* ----------------------------------------------------------------- run *)

let run_cmd =
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget for the whole run. When it expires every \
                phase winds down at its next safe point; the run exits with \
                code 3 and degraded (but sound) results.")
  in
  let backtracks_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-backtracks" ] ~docv:"N"
          ~doc:"Global PODEM backtrack budget — a deterministic alternative \
                to $(b,--deadline) with the same degradation behaviour.")
  in
  let checkpoint_arg =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Atomically replace $(docv) with a resumable snapshot after \
                every pipeline phase and every $(b,--every) committed \
                subsequences during generation.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Resume from the $(b,--checkpoint) file instead of starting \
                over. Table rows and jobs-invariant counters are \
                bit-identical to an uninterrupted run.")
  in
  let every_arg =
    Arg.(
      value & opt int 25
      & info [ "every" ] ~docv:"K"
          ~doc:"Checkpoint cadence inside the generate phase (committed \
                subsequences between snapshots).")
  in
  let halt_arg =
    let phase =
      Arg.enum
        [ ("generate", "generate"); ("compact", "compact");
          ("extra-detect", "extra-detect"); ("baseline", "baseline") ]
    in
    Arg.(
      value & opt (some phase) None
      & info [ "halt-after" ] ~docv:"PHASE"
          ~doc:"Stop with exit code 4 right after $(docv) has checkpointed \
                — an induced crash for resume testing.")
  in
  let observe_arg =
    Arg.(
      value & flag
      & info [ "observe" ]
          ~doc:"Also count good-machine toggle / switching activity \
                (reported via --metrics).")
  in
  let run spec scale seed chains jobs compact_jobs no_adaptive observe deadline
      backtracks checkpoint resume every halt_after metrics_path trace_path
      trace_format =
    with_obs ~metrics_path ~trace_path ~trace_format (fun metrics trace ->
        let c = Circuits.Catalog.circuit ~scale spec in
        let config =
          Core.Config.with_compact_adaptive (not no_adaptive)
            (Core.Config.with_compact_jobs compact_jobs
               (Core.Config.with_sim_jobs jobs
                  { (Core.Config.for_circuit c) with
                    Core.Config.chains; seed; observe }))
        in
        let budget =
          match deadline, backtracks with
          | None, None -> Obs.Budget.unlimited
          | deadline_s, max_backtracks ->
            Obs.Budget.create ?deadline_s ?max_backtracks ()
        in
        let resume_file =
          if not resume then None
          else
            match checkpoint with
            | None ->
              raise
                (Core.Checkpoint.Corrupt "--resume requires --checkpoint FILE")
            | Some path -> Some (Core.Checkpoint.load path)
        in
        let r =
          Core.Pipeline.run ~scale ~config ~metrics ~trace ~budget ?checkpoint
            ?resume:resume_file ~checkpoint_every:every ?halt_after spec
        in
        print_string (Core.Report.table5 [ r.Core.Pipeline.row5 ]);
        print_string (Core.Report.table6 [ r.Core.Pipeline.row6 ]);
        Option.iter
          (fun row -> print_string (Core.Report.table7 [ row ]))
          r.Core.Pipeline.row7;
        if r.Core.Pipeline.degraded then begin
          (match Obs.Budget.tripped budget with
           | Some reason ->
             Printf.eprintf "scanatpg: budget exhausted (%s); results degraded\n"
               (Obs.Budget.reason_to_string reason)
           | None -> Printf.eprintf "scanatpg: results degraded\n");
          3
        end
        else 0)
  in
  let exits =
    Cmd.Exit.info 3
      ~doc:"the $(b,--deadline) / $(b,--max-backtracks) budget tripped and \
            the results are degraded."
    :: Cmd.Exit.info 4
         ~doc:"the run stopped at the requested $(b,--halt-after) phase \
               boundary (its checkpoint was written)."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "run" ~exits
       ~doc:"Run the full pipeline for one catalog circuit with optional \
             deadline, checkpointing and resume (see DESIGN.md, Resilience).")
    Term.(
      const run $ circuit_arg $ scale_arg $ seed_arg $ chains_arg $ jobs_arg
      $ compact_jobs_arg $ no_adaptive_arg $ observe_arg $ deadline_arg
      $ backtracks_arg $ checkpoint_arg $ resume_arg $ every_arg $ halt_arg
      $ metrics_arg $ trace_arg $ trace_format_arg)

(* ------------------------------------------------------------ diagnose *)

let diagnose_cmd =
  let seq_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SEQFILE" ~doc:"Sequence file (one 01x vector per line).")
  in
  let inject_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "inject" ] ~docv:"FAULT"
          ~doc:"Collapsed fault id whose faulty response plays the observed \
                failing device (a synthetic tester log).")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K" ~doc:"Show the $(docv) best-ranked candidates.")
  in
  let run spec scale chains seqfile inject top metrics_path trace_path
      trace_format =
    with_obs ~metrics_path ~trace_path ~trace_format (fun metrics trace ->
        let c = load_circuit ~scale spec in
        let _scan, model, _cfg = setup_scan ~chains ~seed:0L ~jobs:1 c in
        let seq = read_sequence seqfile in
        let nf = Faultmodel.Model.fault_count model in
        if inject < 0 || inject >= nf then
          invalid_arg
            (Printf.sprintf "--inject %d out of range (collapsed faults: 0..%d)"
               inject (nf - 1));
        let observed =
          Obs.Metrics.timed metrics ~trace "observe-sim" (fun () ->
              Core.Diagnose.response model ~fault:inject seq)
        in
        let ranking =
          Obs.Metrics.timed metrics ~trace "diagnose" (fun () ->
              Core.Diagnose.run model seq ~observed ())
        in
        let perfect = Core.Diagnose.perfect ranking in
        Printf.printf
          "%d candidates ranked; %d explain the observation exactly\n"
          (List.length ranking) (List.length perfect);
        List.iteri
          (fun i cand ->
            if i < top then
              Printf.printf "%2d. fault %d: matched %d, missed %d, extra %d%s\n"
                (i + 1) cand.Core.Diagnose.fault cand.Core.Diagnose.matched
                cand.Core.Diagnose.missed cand.Core.Diagnose.extra
                (if cand.Core.Diagnose.fault = inject then "  <- injected"
                 else ""))
          ranking);
    0
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Rank stuck-at fault candidates against an observed failing \
             response (cause-effect diagnosis).")
    Term.(
      const run $ circuit_arg $ scale_arg $ chains_arg $ seq_arg $ inject_arg
      $ top_arg $ metrics_arg $ trace_arg $ trace_format_arg)

(* --------------------------------------------------------------- serve *)

let socket_arg =
  Arg.(
    value & opt string "scanatpg.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on / connect to.")

let tcp_arg =
  Arg.(
    value & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Use TCP instead of the Unix socket (opt-in; e.g. \
              127.0.0.1:7227).")

let parse_addr socket tcp =
  match tcp with
  | None -> Server.Daemon.Unix_sock socket
  | Some spec -> (
    match String.rindex_opt spec ':' with
    | None ->
      invalid_arg (Printf.sprintf "--tcp %s: expected HOST:PORT" spec)
    | Some i ->
      let host = String.sub spec 0 i in
      let port_s = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match int_of_string_opt port_s with
      | Some port when port > 0 && port < 65536 -> Server.Daemon.Tcp (host, port)
      | _ -> invalid_arg (Printf.sprintf "--tcp %s: bad port %s" spec port_s)))

let serve_cmd =
  let server_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "server-jobs" ] ~docv:"N"
          ~doc:"Worker domains executing requests concurrently. Response \
                payloads are identical at any value; see DESIGN.md \xc2\xa711.")
  in
  let trial_pool_arg =
    Arg.(
      value & opt int 0
      & info [ "trial-pool" ] ~docv:"N"
          ~doc:"Share one daemon-wide pool of $(docv) domains across every \
                request's speculative compaction trials instead of spawning \
                per-round islands. Response payloads are identical at any \
                value; 0 (the default) keeps per-round spawning. See \
                DESIGN.md \xc2\xa714.")
  in
  let queue_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Admission bound: requests beyond $(docv) waiting are \
                answered with a typed $(b,overloaded) response instead of \
                queueing unboundedly.")
  in
  let cache_arg =
    Arg.(
      value & opt int 8
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Compiled circuits (parse + levelize + fault collapse + \
                SCOAP) kept resident, evicted least-recently-used.")
  in
  let access_arg =
    Arg.(
      value & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:"Write one JSON line per request (id, op, circuit, status, \
                cache, trace_id, queue_wait_ns, service_ns, bytes in/out) \
                to $(docv), flushed per line so $(b,tail -f) follows a \
                live daemon.")
  in
  let slow_arg =
    Arg.(
      value & opt (some int) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:"Slow-request log: a request whose end-to-end latency \
                exceeds $(docv) milliseconds dumps its full span tree \
                into its access-log line.")
  in
  let grace_arg =
    Arg.(
      value & opt float 5.0
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:"On shutdown, let in-flight work run for $(docv) seconds \
                before tripping its budgets (degraded but sound responses).")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Suppress lifecycle messages on stderr.")
  in
  let idle_arg =
    Arg.(
      value & opt float 0.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close a connection with no traffic and nothing in flight \
                after $(docv) seconds (counter \
                $(b,server.conn_idle_closed)). 0 (the default) keeps idle \
                connections forever.")
  in
  let read_deadline_arg =
    Arg.(
      value & opt float 30.0
      & info [ "read-deadline" ] ~docv:"SECONDS"
          ~doc:"A started request frame must complete within $(docv) \
                seconds or the connection is cut (slowloris defence; \
                counters $(b,server.bad_request), \
                $(b,server.conn_aborted)). 0 disables.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Per-connection in-flight cap: a pipelining client with \
                $(docv) unanswered compute requests gets typed \
                $(b,overloaded) rejections, so one connection cannot claim \
                the whole queue.")
  in
  let chaos_arg =
    Arg.(
      value & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:"Arm deterministic fault-injection sites, e.g. \
                $(b,seed=42;worker=crash@0.03;cache.compile=error#1). \
                Sites: accept, queue, worker, cache.compile, writer; \
                actions error, crash, delay:<ms>, with optional @prob and \
                #max-fires. Reconfigure at runtime with the $(b,chaos) op; \
                $(b,off) clears. See DESIGN.md \xc2\xa713.")
  in
  let run socket tcp jobs trial_pool queue cache scale access grace
      metrics_path trace_path trace_format slow_ms idle read_deadline
      max_inflight chaos quiet =
    Server.Daemon.run
      {
        Server.Daemon.addr = parse_addr socket tcp;
        jobs;
        trial_pool = max 0 trial_pool;
        queue_depth = queue;
        cache_capacity = cache;
        default_scale = scale;
        access_log = access;
        metrics_path;
        trace_path;
        trace_format =
          (match trace_format with
           | `Jsonl -> Server.Daemon.Jsonl
           | `Chrome -> Server.Daemon.Chrome);
        slow_ms;
        drain_grace_s = grace;
        idle_timeout_s = (if idle > 0.0 then Some idle else None);
        read_deadline_s =
          (if read_deadline > 0.0 then Some read_deadline else None);
        max_inflight;
        chaos;
        install_signals = true;
        verbose = not quiet;
      }
  in
  let exits =
    Cmd.Exit.info 0
      ~doc:"after a clean drain (SIGTERM, SIGINT or a $(b,shutdown) request)."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:"Run the ATPG service daemon: length-prefixed JSON requests over \
             a Unix-domain socket (or $(b,--tcp)), with circuit caching, \
             admission control, graceful drain and per-request tracing \
             (DESIGN.md \xc2\xa711-\xc2\xa712).")
    Term.(
      const run $ socket_arg $ tcp_arg $ server_jobs_arg $ trial_pool_arg
      $ queue_arg $ cache_arg $ scale_arg $ access_arg $ grace_arg
      $ metrics_arg $ trace_arg $ trace_format_arg $ slow_arg $ idle_arg
      $ read_deadline_arg $ max_inflight_arg $ chaos_arg $ quiet_arg)

(* -------------------------------------------------------------- router *)

let router_cmd =
  let shards_arg =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N"
          ~doc:"Backend daemons to spawn and route across. Shard choice \
                hashes the request's circuit content, so a circuit's \
                requests pin to one shard and keep its compiled-circuit \
                cache hot.")
  in
  let result_cache_arg =
    Arg.(
      value & opt int 256
      & info [ "result-cache" ] ~docv:"N"
          ~doc:"Response payloads memoized by request content, evicted \
                least-recently-used. Valid by the determinism contract: a \
                cached response is byte-identical to a computed one. 0 \
                disables.")
  in
  let shard_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "server-jobs" ] ~docv:"N"
          ~doc:"Worker domains per shard (passed through to each shard's \
                $(b,serve)).")
  in
  let trial_pool_arg =
    Arg.(
      value & opt int 0
      & info [ "trial-pool" ] ~docv:"N"
          ~doc:"Per-shard speculative-trial pool size (passed through).")
  in
  let cache_arg =
    Arg.(
      value & opt int 8
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Per-shard compiled-circuit LRU capacity (passed through).")
  in
  let grace_arg =
    Arg.(
      value & opt float 5.0
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:"On shutdown, let routed requests run down for $(docv) \
                seconds before answering the stragglers with typed errors \
                and fanning the shutdown out to the shards.")
  in
  let chaos_arg =
    Arg.(
      value & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:"Arm the router's fault-injection sites, e.g. \
                $(b,seed=42;shard=crash#1;writer=error\\@0.02). Site \
                $(b,shard) kills the dispatch target's process; \
                $(b,writer) faults a client response write. Reconfigure at \
                runtime with the $(b,chaos) op.")
  in
  let shard_chaos_arg =
    Arg.(
      value & opt (some string) None
      & info [ "shard-chaos" ] ~docv:"SPEC"
          ~doc:"Failpoint spec passed to every shard's $(b,serve --chaos) \
                (daemon sites: accept, queue, worker, cache.compile, \
                writer).")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Suppress lifecycle messages on stderr.")
  in
  let run socket tcp shards result_cache jobs trial_pool cache_capacity grace
      chaos shard_chaos metrics_path quiet =
    let addr = parse_addr socket tcp in
    (* Each shard is this very binary re-exec'ed as `serve` on its own
       socket, so the router supervises real OS processes and an injected
       shard crash is a genuine SIGKILL. *)
    let exe = Sys.executable_name in
    let argv_of _idx shard_socket =
      let base =
        [ exe; "serve"; "--socket"; shard_socket; "--quiet";
          "--server-jobs"; string_of_int jobs;
          "--trial-pool"; string_of_int trial_pool;
          "--cache-capacity"; string_of_int cache_capacity ]
      in
      let argv =
        match shard_chaos with
        | None -> base
        | Some spec -> base @ [ "--chaos"; spec ]
      in
      Array.of_list argv
    in
    let cfg =
      Fleet.Router.default_config addr ~shards
        ~launcher:(Fleet.Shard.Exec argv_of)
    in
    Fleet.Router.run
      {
        cfg with
        Fleet.Router.result_cache_capacity = result_cache;
        drain_grace_s = grace;
        chaos;
        metrics_path;
        verbose = not quiet;
      }
  in
  let exits =
    Cmd.Exit.info 0
      ~doc:"after a clean drain: shards shut down and collected."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "router" ~exits
       ~doc:"Run a sharding front end: spawn and supervise $(b,--shards) \
             backend daemons, route each request to a shard by hashing its \
             circuit content, and answer repeated requests from a \
             content-addressed result cache (DESIGN.md \xc2\xa715). Speaks \
             the same wire protocol as $(b,serve), so $(b,batch), \
             $(b,stats) and $(b,top) point at it unchanged.")
    Term.(
      const run $ socket_arg $ tcp_arg $ shards_arg $ result_cache_arg
      $ shard_jobs_arg $ trial_pool_arg $ cache_arg $ grace_arg $ chaos_arg
      $ shard_chaos_arg $ metrics_arg $ quiet_arg)

(* --------------------------------------------------------------- batch *)

let batch_cmd =
  let input_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUESTS"
          ~doc:"JSONL file: one request object per line (ids assigned \
                sequentially when absent).")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Survive dropped connections: reconnect and replay only the \
                still-unanswered requests, up to $(docv) extra attempts. \
                Safe because compute payloads are pure functions of their \
                requests — a retried batch is byte-identical to an \
                uninterrupted one.")
  in
  let backoff_arg =
    Arg.(
      value & opt int 100
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base delay before the first retry, doubling per attempt \
                with deterministic jitter.")
  in
  let rate_arg =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Load-harness mode: replay the input as request templates \
                at an open-loop $(docv) arrivals per second for \
                $(b,--duration) seconds, and report latency percentiles \
                instead of writing responses. The sender never waits on \
                the server, so overload shows up in the measured tail.")
  in
  let duration_arg =
    Arg.(
      value & opt float 10.0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Length of the load-harness schedule (with $(b,--rate)).")
  in
  let load_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed for the deterministic template-per-arrival draw (with \
                $(b,--rate)); the same seed replays the same mix.")
  in
  let report_arg =
    Arg.(
      value & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write the load-harness report (schema \
                $(b,scanatpg-load/1)) as JSON to $(docv).")
  in
  let read_templates input =
    let ic =
      try open_in input
      with Sys_error msg -> failwith (Printf.sprintf "scanatpg batch: %s" msg)
    in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line ->
            go (if String.trim line = "" then acc else line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let run socket tcp input out retries backoff_ms rate duration seed report =
    let addr = parse_addr socket tcp in
    match rate with
    | Some rate ->
      let r =
        Fleet.Loadgen.run ~addr ~templates:(read_templates input) ~rate
          ~duration_s:duration ~seed ()
      in
      Fleet.Loadgen.print_report r;
      (match report with
      | None -> ()
      | Some path ->
        Obs.Fileio.write_string path
          (Obs.Json.to_string (Fleet.Loadgen.report_json r) ^ "\n"));
      if r.Fleet.Loadgen.lost > 0 then 1 else 0
    | None ->
      let outcomes =
        Server.Client.run_batch ~addr ~input ?output:out ~retries ~backoff_ms
          ()
      in
      let count s =
        List.length
          (List.filter (fun o -> o.Server.Client.status = s) outcomes)
      in
      let total = List.length outcomes in
      let ok = count "ok" and degraded = count "degraded" in
      let failed = total - ok - degraded in
      Printf.eprintf
        "scanatpg batch: %d request(s): %d ok, %d degraded, %d failed\n%!"
        total ok degraded failed;
      if failed > 0 then 1 else if degraded > 0 then 3 else 0
  in
  let exits =
    Cmd.Exit.info 3 ~doc:"every response arrived but some were degraded."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "batch" ~exits
       ~doc:"Pipeline a JSONL file of requests to a running daemon, collect \
             the responses by id, and write them in request order; or, with \
             $(b,--rate), replay the file as an open-loop load schedule and \
             report latency percentiles.")
    Term.(
      const run $ socket_arg $ tcp_arg $ input_arg $ out_arg $ retries_arg
      $ backoff_arg $ rate_arg $ duration_arg $ load_seed_arg $ report_arg)

(* --------------------------------------------------------------- stats *)

let fetch_stats conn ~prom =
  let req =
    if prom then "{\"id\": 1, \"op\": \"stats\", \"format\": \"prometheus\"}"
    else "{\"id\": 1, \"op\": \"stats\"}"
  in
  Server.Client.call conn req

let stats_cmd =
  let prom_arg =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:"Print the Prometheus text exposition instead of the JSON \
                document.")
  in
  let run socket tcp prom =
    let conn = Server.Client.connect (parse_addr socket tcp) in
    Fun.protect
      ~finally:(fun () -> Server.Client.close conn)
      (fun () ->
        let resp = fetch_stats conn ~prom in
        if prom then begin
          match
            Option.bind
              (Obs.Json.member "text" (Obs.Json.parse resp))
              Obs.Json.get_str
          with
          | Some text ->
            print_string text;
            0
          | None ->
            Printf.eprintf "scanatpg stats: unexpected response: %s\n" resp;
            1
        end
        else begin
          print_string resp;
          print_newline ();
          0
        end)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Fetch a running daemon's live metrics: counters, phase \
             timings, latency histograms with percentiles — as JSON or \
             ($(b,--prom)) Prometheus text exposition.")
    Term.(const run $ socket_arg $ tcp_arg $ prom_arg)

(* ----------------------------------------------------------------- top *)

(* A terse terminal dashboard over the stats op: rps from the counter
   delta between polls, percentiles from the cumulative latency
   histograms.  One refreshing line on a tty, one line per poll when
   piped. *)
let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval"; "n" ] ~docv:"SECONDS"
          ~doc:"Seconds between polls.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop after $(docv) polls (0 = run until interrupted or the \
                daemon drains).")
  in
  let jfield obj name j =
    Option.bind (Obs.Json.member obj j) (Obs.Json.member name)
  in
  let counter j name =
    match Option.bind (jfield "counters" name j) Obs.Json.get_int with
    | Some v -> v
    | None -> 0
  in
  let pct j hist p =
    match
      Option.bind
        (Option.bind (jfield "histograms" hist j) (Obs.Json.member p))
        Obs.Json.get_int
    with
    | Some v -> v
    | None -> 0
  in
  let ms ns = Printf.sprintf "%.1fms" (float_of_int ns /. 1e6) in
  let render j ~rps =
    let hit = counter j "server.cache_hit" in
    let miss = counter j "server.cache_miss" in
    let cache =
      if hit + miss = 0 then "-"
      else Printf.sprintf "%.1f%%" (100. *. float_of_int hit /. float_of_int (hit + miss))
    in
    Printf.sprintf
      "rps %6.1f | inflight %d | e2e p50 %s p95 %s p99 %s | queue p95 %s | \
       cache %s | reqs %d"
      rps
      (counter j "server.inflight")
      (ms (pct j "server.e2e_ns" "p50"))
      (ms (pct j "server.e2e_ns" "p95"))
      (ms (pct j "server.e2e_ns" "p99"))
      (ms (pct j "server.queue_wait_ns" "p95"))
      cache
      (counter j "server.accepted")
  in
  let single_loop conn interval count tty =
    let rec loop i prev =
      match fetch_stats conn ~prom:false with
      | exception (Failure _ | Unix.Unix_error _) ->
        (* The daemon drained mid-watch: not an error for a monitor. *)
        if tty then print_newline ();
        Printf.eprintf "scanatpg top: daemon went away\n";
        0
      | resp ->
        let j = Obs.Json.parse resp in
        let now = Unix.gettimeofday () in
        let accepted = counter j "server.accepted" in
        let rps =
          match prev with
          | Some (pa, pt) when now > pt ->
            float_of_int (accepted - pa) /. (now -. pt)
          | _ -> 0.0
        in
        if tty then Printf.printf "\r\027[2K%s%!" (render j ~rps)
        else Printf.printf "%s\n%!" (render j ~rps);
        if count > 0 && i + 1 >= count then begin
          if tty then print_newline ();
          0
        end
        else begin
          Unix.sleepf interval;
          loop (i + 1) (Some (accepted, now))
        end
    in
    loop 0 None
  in
  (* Fleet mode (several --socket targets, e.g. a router plus its
     shards): one aggregate line — rps summed across targets, p99 the
     worst target's — then a row per target.  A target that is down
     (shard mid-restart) renders as such and is retried next poll
     instead of ending the watch. *)
  let multi_loop addrs interval count tty =
    let label = function
      | Server.Daemon.Unix_sock p -> p
      | Server.Daemon.Tcp (h, p) -> Printf.sprintf "%s:%d" h p
    in
    let width =
      List.fold_left (fun w a -> max w (String.length (label a))) 0 addrs
    in
    let targets =
      Array.of_list
        (List.map (fun a -> a, ref None, ref None (* conn, prev *)) addrs)
    in
    let poll (addr, conn, _) =
      (match !conn with
      | None -> (
        try conn := Some (Server.Client.connect addr) with _ -> ())
      | Some _ -> ());
      match !conn with
      | None -> None
      | Some c -> (
        match fetch_stats c ~prom:false with
        | exception _ ->
          (try Server.Client.close c with _ -> ());
          conn := None;
          None
        | resp -> ( try Some (Obs.Json.parse resp) with _ -> None))
    in
    let finally () =
      Array.iter
        (fun (_, conn, _) ->
          match !conn with
          | Some c -> ( try Server.Client.close c with _ -> ())
          | None -> ())
        targets
    in
    Fun.protect ~finally (fun () ->
        let nlines = Array.length targets + 1 in
        let rec loop i first =
          let now = Unix.gettimeofday () in
          let rows =
            Array.map
              (fun ((addr, _, prev) as t) ->
                match poll t with
                | None ->
                  prev := None;
                  label addr, None, 0.0
                | Some j ->
                  let accepted = counter j "server.accepted" in
                  let rps =
                    match !prev with
                    | Some (pa, pt) when now > pt ->
                      float_of_int (accepted - pa) /. (now -. pt)
                    | _ -> 0.0
                  in
                  prev := Some (accepted, now);
                  label addr, Some j, rps)
              targets
          in
          let up = ref 0
          and rps_sum = ref 0.0
          and inflight = ref 0
          and p99_max = ref 0
          and hit = ref 0
          and miss = ref 0
          and rhit = ref 0
          and rmiss = ref 0 in
          Array.iter
            (fun (_, j, rps) ->
              match j with
              | None -> ()
              | Some j ->
                incr up;
                rps_sum := !rps_sum +. rps;
                inflight := !inflight + counter j "server.inflight";
                p99_max := max !p99_max (pct j "server.e2e_ns" "p99");
                hit := !hit + counter j "server.cache_hit";
                miss := !miss + counter j "server.cache_miss";
                rhit := !rhit + counter j "server.result_hit";
                rmiss := !rmiss + counter j "server.result_miss")
            rows;
          let ratio h m =
            if h + m = 0 then "-"
            else
              Printf.sprintf "%.1f%%"
                (100. *. float_of_int h /. float_of_int (h + m))
          in
          let agg =
            Printf.sprintf
              "%-*s rps %6.1f | inflight %d | worst p99 %s | cache %s | \
               results %s | up %d/%d"
              width "fleet" !rps_sum !inflight (ms !p99_max)
              (ratio !hit !miss) (ratio !rhit !rmiss) !up
              (Array.length targets)
          in
          if tty && not first then Printf.printf "\027[%dA" nlines;
          let put line =
            if tty then Printf.printf "\r\027[2K%s\n" line
            else Printf.printf "%s\n" line
          in
          put agg;
          Array.iter
            (fun (lbl, j, rps) ->
              match j with
              | None -> put (Printf.sprintf "%-*s down" width lbl)
              | Some j ->
                put (Printf.sprintf "%-*s %s" width lbl (render j ~rps)))
            rows;
          print_string "";
          flush stdout;
          if count > 0 && i + 1 >= count then 0
          else begin
            Unix.sleepf interval;
            loop (i + 1) false
          end
        in
        loop 0 true)
  in
  let run sockets tcp interval count =
    let addrs =
      let socks =
        if sockets = [] && tcp = None then [ "scanatpg.sock" ] else sockets
      in
      List.map (fun s -> Server.Daemon.Unix_sock s) socks
      @ (match tcp with None -> [] | Some _ -> [ parse_addr "" tcp ])
    in
    let tty = Unix.isatty Unix.stdout in
    match addrs with
    | [ addr ] ->
      let conn = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close conn)
        (fun () -> single_loop conn interval count tty)
    | addrs -> multi_loop addrs interval count tty
  in
  let sockets_arg =
    Arg.(
      value & opt_all string []
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket to watch; repeat to watch a fleet (a \
                router and/or its shards) with an aggregate line plus a \
                per-target row.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Watch one or more running daemons: requests per second, \
             in-flight count, queue-wait and end-to-end latency \
             percentiles, cache hit rate — refreshed every \
             $(b,--interval) seconds. Several $(b,--socket) targets \
             aggregate into a fleet-wide line plus per-shard rows.")
    Term.(const run $ sockets_arg $ tcp_arg $ interval_arg $ count_arg)

(* ---------------------------------------------------------------- main *)

let () =
  let doc =
    "Test generation and compaction for scan circuits without the \
     scan/functional distinction (Pomeranz & Reddy, DATE 2003)."
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"on an internal error."
    :: Cmd.Exit.info 2
         ~doc:"on malformed input: .bench parse errors, unknown circuit \
               names, unreadable sequence files, corrupt or mismatched \
               checkpoints."
    :: Cmd.Exit.info 3 ~doc:"on a degraded run (resource budget tripped)."
    :: Cmd.Exit.info 4 ~doc:"on a $(b,--halt-after) stop."
    :: Cmd.Exit.defaults
  in
  let code =
    try
      Cmd.eval' ~catch:false
        (Cmd.group
           (Cmd.info "scanatpg" ~version:"1.0.0" ~doc ~exits)
           [ info_cmd; export_cmd; generate_cmd; compact_cmd; table_cmd;
             run_cmd; diagnose_cmd; serve_cmd; router_cmd; batch_cmd;
             stats_cmd; top_cmd ])
    with
    | Netlist.Bench_format.Parse_error { line; col; token; message } ->
      Printf.eprintf "scanatpg: parse error at line %d, column %d (%S): %s\n"
        line col token message;
      2
    | Core.Checkpoint.Corrupt msg ->
      Printf.eprintf "scanatpg: checkpoint error: %s\n" msg;
      2
    | Core.Pipeline.Halted phase ->
      Printf.eprintf "scanatpg: halted after the %s phase (checkpoint written)\n"
        phase;
      4
    | Not_found ->
      Printf.eprintf "scanatpg: unknown circuit (not in the catalog)\n";
      2
    | Sys_error msg ->
      Printf.eprintf "scanatpg: %s\n" msg;
      2
    | Netlist.Circuit.Invalid_circuit msg ->
      Printf.eprintf "scanatpg: invalid circuit: %s\n" msg;
      2
    | Invalid_argument msg ->
      Printf.eprintf "scanatpg: %s\n" msg;
      2
    | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "scanatpg: %s: %s%s\n" fn (Unix.error_message e)
        (if arg = "" then "" else " (" ^ arg ^ ")");
      2
    | Failure msg ->
      Printf.eprintf "%s\n" msg;
      2
    | e ->
      Printf.eprintf "scanatpg: internal error: %s\n" (Printexc.to_string e);
      1
  in
  exit code
