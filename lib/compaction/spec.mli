(** Speculative-evaluation machinery shared by omission and restoration.

    Both compaction procedures speculate: they evaluate several trial
    outcomes concurrently against a frozen session snapshot and then
    commit the results left to right, so the committed trace is exactly
    the one a sequential run would have produced.  This module provides
    the pieces that machinery needs — a deterministic parallel [map]
    over trial indices, an optional shared worker {!Pool} the map can
    draw domains from instead of spawning its own, and the telemetry
    counters that account for every dispatched speculation. *)

(** Accounting of speculative work.  [dispatched] counts evaluations
    beyond the first of each round/wave (the ones that are speculative);
    every dispatched evaluation is eventually either [committed] (its
    assumed context turned out exact, or it survived revalidation — the
    latter also counts into [revalidated]) or [discarded].  The invariant
    [dispatched = committed + discarded] holds after every round. *)
type counters = {
  mutable dispatched : int;
  mutable committed : int;
  mutable discarded : int;
  mutable revalidated : int;
}

val make : unit -> counters

(** [record c counters] adds [c] into the observability counter set under
    [compaction.speculative.{dispatched,committed,discarded,revalidated}]. *)
val record : counters -> Obs.Counters.t -> unit

(** Accounting of the cost-cutting heuristics wrapped around
    speculation: omission width-controller [shrinks]/[widens] and the
    speculative trials a narrowed width avoided dispatching
    ([trials_saved]), snapshot captures served from an arena
    ([arena_reuses]), and restoration revalidations skipped because the
    keep mask was unchanged since the wave froze ([replay_skipped]).
    Like [compaction.speculative.*], these reflect the actual dispatch
    schedule, so they are the documented exception to the
    jobs-invariant-counters contract. *)
type adaptive = {
  mutable shrinks : int;
  mutable widens : int;
  mutable trials_saved : int;
  mutable arena_reuses : int;
  mutable replay_skipped : int;
}

val make_adaptive : unit -> adaptive

(** [record_adaptive a counters] adds [a] under
    [compaction.adaptive.{shrinks,widens,trials_saved,arena_reuses,
    replay_skipped}]. *)
val record_adaptive : adaptive -> Obs.Counters.t -> unit

(** A shared pool of worker domains for trial evaluation.  A daemon
    creates one pool and threads it through every request's compaction,
    so independent pipelined requests overlap their speculative trials
    on a fixed domain set instead of each spawning per-round islands.

    Submissions cannot deadlock regardless of pool capacity: the
    submitting domain runs the first slot itself and steals its own
    still-unclaimed slots back while waiting, so it makes progress even
    when every worker is busy with other requests.  Results are written
    by slot index, making them independent of pool size and scheduling. *)
module Pool : sig
  type t

  (** [create ~size] spawns [size] (at least 1) worker domains. *)
  val create : size:int -> t

  val size : t -> int

  (** Drain and join every worker.  Submitting to a shut-down pool
      raises [Invalid_argument]. *)
  val shutdown : t -> unit

  (** [run t n f] evaluates [f 0 .. f (n-1)] on the pool and returns the
      results in index order; re-raises the first slot error after all
      slots finish. *)
  val run : t -> int -> (int -> 'a) -> 'a array
end

(** [map ~jobs n f] evaluates [f 0 .. f (n-1)] and returns the results in
    index order.  Indices are dealt round-robin across [jobs] domains
    (index [k] runs on domain [k mod jobs]; domain 0 is the calling
    domain), so [f] must be thread-safe for concurrent calls on distinct
    indices — in practice, pure up to thread-confined scratch state.
    Results are independent of [jobs] whenever each [f k] is
    deterministic.  If any call raises, every domain is joined before the
    first error (calling domain first, then spawn order) is re-raised.
    With [pool] (and [jobs > 1]), evaluation slots are claimed from the
    shared pool instead of spawning fresh domains; results are identical
    either way. *)
val map : ?pool:Pool.t -> jobs:int -> int -> (int -> 'a) -> 'a array
