(** Speculative-evaluation machinery shared by omission and restoration.

    Both compaction procedures speculate: they evaluate several trial
    outcomes concurrently against a frozen session snapshot and then
    commit the results left to right, so the committed trace is exactly
    the one a sequential run would have produced.  This module provides
    the two pieces that machinery needs — a deterministic parallel [map]
    over trial indices, and the telemetry counters that account for
    every dispatched speculation. *)

(** Accounting of speculative work.  [dispatched] counts evaluations
    beyond the first of each round/wave (the ones that are speculative);
    every dispatched evaluation is eventually either [committed] (its
    assumed context turned out exact, or it survived revalidation — the
    latter also counts into [revalidated]) or [discarded].  The invariant
    [dispatched = committed + discarded] holds after every round. *)
type counters = {
  mutable dispatched : int;
  mutable committed : int;
  mutable discarded : int;
  mutable revalidated : int;
}

val make : unit -> counters

(** [record c counters] adds [c] into the observability counter set under
    [compaction.speculative.{dispatched,committed,discarded,revalidated}]. *)
val record : counters -> Obs.Counters.t -> unit

(** [map ~jobs n f] evaluates [f 0 .. f (n-1)] and returns the results in
    index order.  Indices are dealt round-robin across [jobs] domains
    (index [k] runs on domain [k mod jobs]; domain 0 is the calling
    domain), so [f] must be thread-safe for concurrent calls on distinct
    indices — in practice, pure up to thread-confined scratch state.
    Results are independent of [jobs] whenever each [f k] is
    deterministic.  If any call raises, every domain is joined before the
    first error (calling domain first, then spawn order) is re-raised. *)
val map : jobs:int -> int -> (int -> 'a) -> 'a array
