module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim
module View = Logicsim.Vectors.View

(* Zero-copy view of [seq]'s vectors selected by [keep], optionally limited
   to positions <= [limit] — every probe used to materialize this
   selection. *)
let subsequence ?limit seq keep = View.masked ?limit seq keep

(* Faults are processed in batches of one simulator word, in order of
   decreasing detection time.  A batch is first simulated together over the
   current restored subsequence (one group — this replaces per-fault
   checks); each member still undetected then restores vectors backwards
   from its original detection time, a small chunk at a time, until a
   single-fault simulation over the restored prefix detects it.  Restoring
   the entire prefix up to the detection time reproduces the original
   simulation, which guarantees termination. *)
let batch_width = 62
let restore_chunk = 4

type stats = {
  mutable restored : int;
  mutable probes : int;
  mutable batch_sims : int;
}

let make_stats () = { restored = 0; probes = 0; batch_sims = 0 }

let run ?stats ?(budget = Obs.Budget.unlimited) model seq (targets : Target.t) =
  let count f =
    match stats with
    | None -> ()
    | Some s -> f s
  in
  let len = Array.length seq in
  let n = Target.count targets in
  let keep = Array.make len false in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      compare
        (targets.Target.det_times.(b), targets.Target.fault_ids.(b))
        (targets.Target.det_times.(a), targets.Target.fault_ids.(a)))
    order;
  let detected = Array.make n false in
  let simulate_members ks =
    (* One parallel run of the still-undetected members over the current
       subsequence; marks detections.  Skipped once the budget trips:
       unmarked faults fall through to the cheap full-prefix restore. *)
    let pending = List.filter (fun k -> not detected.(k)) ks in
    if pending <> [] && Obs.Budget.check budget then begin
      let ids =
        Array.of_list (List.map (fun k -> targets.Target.fault_ids.(k)) pending)
      in
      count (fun s -> s.batch_sims <- s.batch_sims + 1);
      let times =
        Faultsim.detection_times_view model ~fault_ids:ids (subsequence seq keep)
      in
      List.iteri
        (fun i k -> if times.(i) >= 0 then detected.(k) <- true)
        pending
    end
  in
  let restore_for k =
    let fid = targets.Target.fault_ids.(k) in
    let dt = targets.Target.det_times.(k) in
    let q = ref dt in
    let finished = ref false in
    while not !finished do
      (* Degraded mode: once the budget trips, stop probing and restore the
         whole remaining prefix [0..q] in one step.  That reproduces the
         original simulation up to [dt], so the fault is still detected —
         the result stays sound, merely less compact. *)
      if Obs.Budget.expired budget then begin
        while !q >= 0 do
          if not keep.(!q) then begin
            keep.(!q) <- true;
            count (fun s -> s.restored <- s.restored + 1)
          end;
          decr q
        done
      end;
      (* Restore up to [restore_chunk] fresh vectors walking backwards. *)
      let added = ref 0 in
      while !added < restore_chunk && !q >= 0 do
        if not keep.(!q) then begin
          keep.(!q) <- true;
          count (fun s -> s.restored <- s.restored + 1);
          incr added
        end;
        decr q
      done;
      if !added = 0 then
        (* The whole prefix [0..dt] is restored: the original simulation is
           reproduced, so the fault is detected. *)
        finished := true
      else begin
        count (fun s -> s.probes <- s.probes + 1);
        match
          Faultsim.detects_single_view model ~fault:fid
            (subsequence ~limit:dt seq keep)
        with
        | Some _ -> finished := true
        | None -> ()
      end
    done;
    detected.(k) <- true
  in
  let idx = ref 0 in
  while !idx < n do
    (* Collect the next batch of still-unprocessed faults. *)
    let batch = ref [] in
    while !idx < n && List.length !batch < batch_width do
      let k = order.(!idx) in
      if not detected.(k) then batch := k :: !batch;
      incr idx
    done;
    let batch = List.rev !batch in
    simulate_members batch;
    List.iter
      (fun k ->
        if not detected.(k) then begin
          restore_for k;
          (* Fresh vectors typically detect other batch members too. *)
          simulate_members batch
        end)
      batch
  done;
  View.to_seq (subsequence seq keep)
