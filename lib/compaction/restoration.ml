module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim
module View = Logicsim.Vectors.View

(* Zero-copy view of [seq]'s vectors selected by [keep], optionally limited
   to positions <= [limit] — every probe used to materialize this
   selection. *)
let subsequence ?limit seq keep = View.masked ?limit seq keep

(* Faults are processed in batches of one simulator word, in order of
   decreasing detection time.  A batch is first simulated together over the
   current restored subsequence (one group — this replaces per-fault
   checks); members still undetected then run their backward restore
   searches in waves of [wave_width]: every wave member's search is
   evaluated as a pure function of a frozen copy of the selection, the
   evaluations run concurrently across [jobs] domains, and the results are
   committed in wave order.  The first member's frozen context is exact;
   a later member's restore set is revalidated with one single-fault
   simulation over the live selection plus that set (detection is not
   monotone under added vectors, so this check is required), falling back
   to a fresh sequential search when it fails.  The wave structure — and
   with it the final selection and every counter — is fixed independently
   of [jobs]; [jobs] only decides how many evaluations run concurrently.

   Within a search, vectors are restored backwards from the fault's
   original detection time a small chunk at a time, until a single-fault
   simulation over the restored prefix detects the fault.  Restoring the
   entire prefix up to the detection time reproduces the original
   simulation, which guarantees termination. *)
let batch_width = 62
let restore_chunk = 4
let wave_width = 4

type stats = {
  mutable restored : int;
  mutable probes : int;
  mutable batch_sims : int;
}

let make_stats () = { restored = 0; probes = 0; batch_sims = 0 }

let run ?stats ?(budget = Obs.Budget.unlimited) ?(jobs = 1) ?spec ?adaptive
    ?pool model seq (targets : Target.t) =
  let spec =
    match spec with
    | Some s -> s
    | None -> Spec.make ()
  in
  let adaptive =
    match adaptive with
    | Some a -> a
    | None -> Spec.make_adaptive ()
  in
  let count f =
    match stats with
    | None -> ()
    | Some s -> f s
  in
  let len = Array.length seq in
  let n = Target.count targets in
  let keep = Array.make len false in
  (* Generation counter of the keep mask: bumped whenever a commit
     actually sets a bit.  Bits are only ever set, never cleared, so an
     unchanged generation proves the live selection still equals a
     wave's frozen copy — a speculative result frozen at that generation
     is exact and needs no revalidation simulation. *)
  let keep_gen = ref 0 in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      compare
        (targets.Target.det_times.(b), targets.Target.fault_ids.(b))
        (targets.Target.det_times.(a), targets.Target.fault_ids.(a)))
    order;
  let detected = Array.make n false in
  let simulate_members ks =
    (* One parallel run of the still-undetected members over the current
       subsequence; marks detections.  Skipped once the budget trips:
       unmarked faults fall through to the cheap full-prefix restore. *)
    let pending = List.filter (fun k -> not detected.(k)) ks in
    if pending <> [] && Obs.Budget.check budget then begin
      let ids =
        Array.of_list (List.map (fun k -> targets.Target.fault_ids.(k)) pending)
      in
      count (fun s -> s.batch_sims <- s.batch_sims + 1);
      let times =
        Faultsim.detection_times_view ~jobs model ~fault_ids:ids
          (subsequence seq keep)
      in
      List.iteri
        (fun i k -> if times.(i) >= 0 then detected.(k) <- true)
        pending
    end
  in
  (* Evaluate member [k]'s restore search against a frozen copy of the
     selection.  Pure up to its private copy: returns the fresh positions
     it would restore (and its probe count) without touching shared
     state — safe to run concurrently for a whole wave. *)
  let restore_set keep0 k =
    let fid = targets.Target.fault_ids.(k) in
    let dt = targets.Target.det_times.(k) in
    let keep = Array.copy keep0 in
    let fresh = ref [] in
    let probes = ref 0 in
    let q = ref dt in
    let finished = ref false in
    while not !finished do
      (* Degraded mode: once the budget trips, stop probing and restore the
         whole remaining prefix [0..q] in one step.  That reproduces the
         original simulation up to [dt], so the fault is still detected —
         the result stays sound, merely less compact. *)
      if Obs.Budget.expired budget then begin
        while !q >= 0 do
          if not keep.(!q) then begin
            keep.(!q) <- true;
            fresh := !q :: !fresh
          end;
          decr q
        done
      end;
      (* Restore up to [restore_chunk] fresh vectors walking backwards. *)
      let added = ref 0 in
      while !added < restore_chunk && !q >= 0 do
        if not keep.(!q) then begin
          keep.(!q) <- true;
          fresh := !q :: !fresh;
          incr added
        end;
        decr q
      done;
      if !added = 0 then
        (* The whole prefix [0..dt] is restored: the original simulation is
           reproduced, so the fault is detected. *)
        finished := true
      else begin
        incr probes;
        match
          Faultsim.detects_single_view model ~fault:fid
            (subsequence ~limit:dt seq keep)
        with
        | Some _ -> finished := true
        | None -> ()
      end
    done;
    (List.rev !fresh, !probes)
  in
  let apply fresh =
    List.iter
      (fun p ->
        if not keep.(p) then begin
          keep.(p) <- true;
          incr keep_gen;
          count (fun s -> s.restored <- s.restored + 1)
        end)
      fresh
  in
  (* Is member [k]'s terminating probe still exact?  Its search verified
     detection over (keep0 \xe2\x88\xaa fresh) limited to [dt]; the live selection
     limited to [dt] is (keep \xe2\x88\xaa fresh).  Bits are set-only, so the two
     differ exactly where a position at or below [dt] was restored since
     the wave froze and is not one the member restores itself — if no
     such position exists, the probe's selection IS the live one and the
     revalidation replay proves nothing it did not already prove. *)
  let probe_still_exact keep0 fresh k =
    let dt = targets.Target.det_times.(k) in
    let in_fresh = Hashtbl.create 16 in
    List.iter (fun p -> Hashtbl.replace in_fresh p ()) fresh;
    let ok = ref true in
    let p = ref 0 in
    while !ok && !p <= dt do
      if keep.(!p) && (not keep0.(!p)) && not (Hashtbl.mem in_fresh !p) then
        ok := false;
      incr p
    done;
    !ok
  in
  (* Does the live selection plus [fresh] still detect member [k]?  One
     single-fault simulation — the cheap revalidation of a speculative
     result whose frozen context went stale. *)
  let revalidate fresh k =
    let fid = targets.Target.fault_ids.(k) in
    let dt = targets.Target.det_times.(k) in
    let trial = Array.copy keep in
    List.iter (fun p -> trial.(p) <- true) fresh;
    count (fun s -> s.probes <- s.probes + 1);
    Faultsim.detects_single_view model ~fault:fid
      (subsequence ~limit:dt seq trial)
    <> None
  in
  let idx = ref 0 in
  while !idx < n do
    (* Collect the next batch of still-unprocessed faults. *)
    let batch = ref [] in
    while !idx < n && List.length !batch < batch_width do
      let k = order.(!idx) in
      if not detected.(k) then batch := k :: !batch;
      incr idx
    done;
    let batch = List.rev !batch in
    simulate_members batch;
    let pending () = List.filter (fun k -> not detected.(k)) batch in
    let rec waves () =
      match pending () with
      | [] -> ()
      | ks ->
        let wave = Array.of_list (List.filteri (fun i _ -> i < wave_width) ks) in
        let w = Array.length wave in
        let keep0 = Array.copy keep in
        let gen0 = !keep_gen in
        let results =
          Spec.map ?pool ~jobs w (fun j -> restore_set keep0 wave.(j))
        in
        if w > 1 then spec.Spec.dispatched <- spec.Spec.dispatched + (w - 1);
        Array.iteri
          (fun m k ->
            let fresh, probes = results.(m) in
            count (fun s -> s.probes <- s.probes + probes);
            if m = 0 then begin
              (* The first member's frozen selection was the live one. *)
              apply fresh;
              detected.(k) <- true;
              (* Fresh vectors typically detect other batch members too. *)
              simulate_members batch
            end
            else if detected.(k) then
              (* A previous commit's vectors already detect it; its
                 speculative search went unused. *)
              spec.Spec.discarded <- spec.Spec.discarded + 1
            else if Obs.Budget.expired budget then begin
              (* Degraded: [fresh] is the whole prefix [0..dt], which is
                 sound against any selection — commit without probing. *)
              spec.Spec.committed <- spec.Spec.committed + 1;
              apply fresh;
              detected.(k) <- true
            end
            else if !keep_gen = gen0 || probe_still_exact keep0 fresh k then
            begin
              (* The keep mask is unchanged since the wave froze (equal
                 generations — the cheap test) or unchanged below this
                 member's detection time (the positions that matter):
                 the member's frozen context is still exact and its own
                 terminating probe already verified detection — skip the
                 revalidation replay. *)
              spec.Spec.committed <- spec.Spec.committed + 1;
              adaptive.Spec.replay_skipped <-
                adaptive.Spec.replay_skipped + 1;
              apply fresh;
              detected.(k) <- true;
              simulate_members batch
            end
            else if revalidate fresh k then begin
              spec.Spec.committed <- spec.Spec.committed + 1;
              spec.Spec.revalidated <- spec.Spec.revalidated + 1;
              apply fresh;
              detected.(k) <- true;
              simulate_members batch
            end
            else begin
              (* Stale beyond repair: discard and search again against the
                 live selection. *)
              spec.Spec.discarded <- spec.Spec.discarded + 1;
              let fresh, probes = restore_set keep k in
              count (fun s -> s.probes <- s.probes + probes);
              apply fresh;
              detected.(k) <- true;
              simulate_members batch
            end)
          wave;
        waves ()
    in
    waves ()
  done;
  View.to_seq (subsequence seq keep)
