(** Compaction targets: the set of faults a sequence must keep detecting,
    with their first-detection times.

    Both static compaction procedures preserve exactly the detection of
    these faults; any additional faults a compacted sequence happens to
    detect are a bonus (the paper's "ext det" column). *)

type t = {
  fault_ids : int array;  (** detected faults, in fault-id order *)
  det_times : int array;  (** aligned first-detection frame indices *)
}

(** [compute model seq ~fault_ids] simulates [seq] from power-up and keeps
    the faults of [fault_ids] that it detects.  [jobs] is the simulation
    parallelism (see [Faultsim.create]). *)
val compute :
  ?jobs:int ->
  Faultmodel.Model.t ->
  Logicsim.Vectors.t ->
  fault_ids:int array ->
  t

val count : t -> int

(** [detected_by model seq t] — does [seq] still detect every target? *)
val detected_by : Faultmodel.Model.t -> Logicsim.Vectors.t -> t -> bool
