module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim

type t = {
  fault_ids : int array;
  det_times : int array;
}

let compute ?jobs model seq ~fault_ids =
  let times = Faultsim.detection_times ?jobs model ~fault_ids seq in
  let kept = ref [] in
  Array.iteri
    (fun i fid -> if times.(i) >= 0 then kept := (fid, times.(i)) :: !kept)
    fault_ids;
  let kept = Array.of_list (List.rev !kept) in
  { fault_ids = Array.map fst kept; det_times = Array.map snd kept }

let count t = Array.length t.fault_ids

let detected_by model seq t =
  let times = Faultsim.detection_times model ~fault_ids:t.fault_ids seq in
  Array.for_all (fun tm -> tm >= 0) times
