type counters = {
  mutable dispatched : int;
  mutable committed : int;
  mutable discarded : int;
  mutable revalidated : int;
}

let make () = { dispatched = 0; committed = 0; discarded = 0; revalidated = 0 }

let record c counters =
  Obs.Counters.add counters "compaction.speculative.dispatched" c.dispatched;
  Obs.Counters.add counters "compaction.speculative.committed" c.committed;
  Obs.Counters.add counters "compaction.speculative.discarded" c.discarded;
  Obs.Counters.add counters "compaction.speculative.revalidated" c.revalidated

type adaptive = {
  mutable shrinks : int;
  mutable widens : int;
  mutable trials_saved : int;
  mutable arena_reuses : int;
  mutable replay_skipped : int;
}

let make_adaptive () =
  { shrinks = 0; widens = 0; trials_saved = 0; arena_reuses = 0;
    replay_skipped = 0 }

let record_adaptive a counters =
  Obs.Counters.add counters "compaction.adaptive.shrinks" a.shrinks;
  Obs.Counters.add counters "compaction.adaptive.widens" a.widens;
  Obs.Counters.add counters "compaction.adaptive.trials_saved" a.trials_saved;
  Obs.Counters.add counters "compaction.adaptive.arena_reuses" a.arena_reuses;
  Obs.Counters.add counters "compaction.adaptive.replay_skipped"
    a.replay_skipped

(* ------------------------------------------------------------ trial pool *)

(* A daemon-wide pool of worker domains that trial evaluations from every
   in-flight request share, replacing the per-call spawn/join islands.
   One mutex guards the whole pool; trials run for milliseconds, so the
   lock is never contended on the hot path.

   Deadlock freedom does not depend on pool capacity: the submitting
   domain runs slot 0 itself and then steals its own still-unclaimed
   slots back from the queue while waiting, so a submission completes
   even when every pool worker is busy with other requests.  Results are
   written into per-submission slots by index, which makes the output
   independent of pool size, scheduling, or how many submissions are in
   flight. *)
module Pool = struct
  (* One speculative round submitted to the pool.  [f] is hidden behind
     a closure writing its own result slot, so the queue is untyped. *)
  type sub = {
    id : int;
    run_slot : int -> unit;
    total : int;
    mutable next : int;  (* next unclaimed slot *)
    mutable finished : int;
    mutable err : exn option;
  }

  type t = {
    m : Mutex.t;
    work : Condition.t;  (* workers: a submission may have claimable slots *)
    done_ : Condition.t;  (* submitters: a slot finished *)
    mutable queue : sub list;  (* submissions with unclaimed slots, FIFO *)
    mutable shutdown : bool;
    mutable next_id : int;
    size : int;
    mutable workers : unit Domain.t array;
  }

  let size t = t.size

  (* Claim one slot of [sub]; caller holds the lock. *)
  let claim t sub =
    let k = sub.next in
    sub.next <- sub.next + 1;
    if sub.next >= sub.total then
      t.queue <- List.filter (fun s -> s.id <> sub.id) t.queue;
    k

  let finish t sub k =
    (match sub.run_slot k with
     | () -> ()
     | exception e ->
       Mutex.lock t.m;
       if sub.err = None then sub.err <- Some e;
       Mutex.unlock t.m);
    Mutex.lock t.m;
    sub.finished <- sub.finished + 1;
    if sub.finished >= sub.total then Condition.broadcast t.done_;
    Mutex.unlock t.m

  let worker_loop t =
    let continue_ = ref true in
    while !continue_ do
      Mutex.lock t.m;
      while t.queue = [] && not t.shutdown do
        Condition.wait t.work t.m
      done;
      if t.shutdown && t.queue = [] then begin
        Mutex.unlock t.m;
        continue_ := false
      end
      else begin
        let sub = List.hd t.queue in
        let k = claim t sub in
        Mutex.unlock t.m;
        finish t sub k
      end
    done

  let create ~size =
    let size = max 1 size in
    let t =
      { m = Mutex.create ();
        work = Condition.create ();
        done_ = Condition.create ();
        queue = [];
        shutdown = false;
        next_id = 0;
        size;
        workers = [||] }
    in
    t.workers <- Array.init size (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t

  let shutdown t =
    Mutex.lock t.m;
    t.shutdown <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers

  (* Evaluate [f 0 .. f (n-1)] on the pool; the calling domain runs slot
     0 and self-steals the rest of its own submission while waiting. *)
  let run t n f =
    let results = Array.make n None in
    let sub =
      Mutex.lock t.m;
      if t.shutdown then begin
        Mutex.unlock t.m;
        invalid_arg "Spec.Pool.run: pool is shut down"
      end;
      let id = t.next_id in
      t.next_id <- id + 1;
      let sub =
        { id;
          run_slot = (fun k -> results.(k) <- Some (f k));
          total = n;
          (* Slot 0 is pre-claimed for the submitting domain: the round's
             first trial always starts immediately. *)
          next = 1;
          finished = 0;
          err = None }
      in
      if n > 1 then begin
        t.queue <- t.queue @ [ sub ];
        Condition.broadcast t.work
      end;
      Mutex.unlock t.m;
      sub
    in
    finish t sub 0;
    let continue_ = ref true in
    while !continue_ do
      Mutex.lock t.m;
      if sub.next < sub.total then begin
        let k = claim t sub in
        Mutex.unlock t.m;
        finish t sub k
      end
      else begin
        while sub.finished < sub.total do
          Condition.wait t.done_ t.m
        done;
        Mutex.unlock t.m;
        continue_ := false
      end
    done;
    (match sub.err with
     | Some e -> raise e
     | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false)
      results
end

(* Round-robin deal, like the fault simulator's group scheduling: index k
   runs on domain (k mod jobs).  Writes land in disjoint array slots, so
   no synchronization is needed; the join is the only barrier.  With a
   [pool], slots are claimed from the shared worker set instead of
   spawning per-call domains — results are identical either way. *)
let map ?pool ~jobs n f =
  let jobs = max 1 (min jobs n) in
  match pool with
  | Some p when jobs > 1 && n > 1 -> Pool.run p n f
  | _ ->
    let results = Array.make n None in
    let run w =
      let k = ref w in
      while !k < n do
        results.(!k) <- Some (f !k);
        k := !k + jobs
      done
    in
    if jobs = 1 then run 0
    else begin
      let guarded w = match run w with () -> Ok () | exception e -> Error e in
      let workers =
        Array.init (jobs - 1) (fun i ->
            Domain.spawn (fun () -> guarded (i + 1)))
      in
      let mine = guarded 0 in
      let theirs = Array.map Domain.join workers in
      let first =
        Array.fold_left
          (fun acc r ->
            match acc with
            | Error _ -> acc
            | Ok () -> r)
          mine theirs
      in
      match first with
      | Ok () -> ()
      | Error e -> raise e
    end;
    Array.map
      (function
        | Some v -> v
        | None -> assert false)
      results
