type counters = {
  mutable dispatched : int;
  mutable committed : int;
  mutable discarded : int;
  mutable revalidated : int;
}

let make () = { dispatched = 0; committed = 0; discarded = 0; revalidated = 0 }

let record c counters =
  Obs.Counters.add counters "compaction.speculative.dispatched" c.dispatched;
  Obs.Counters.add counters "compaction.speculative.committed" c.committed;
  Obs.Counters.add counters "compaction.speculative.discarded" c.discarded;
  Obs.Counters.add counters "compaction.speculative.revalidated" c.revalidated

(* Round-robin deal, like the fault simulator's group scheduling: index k
   runs on domain (k mod jobs).  Writes land in disjoint array slots, so
   no synchronization is needed; the join is the only barrier. *)
let map ~jobs n f =
  let jobs = max 1 (min jobs n) in
  let results = Array.make n None in
  let run w =
    let k = ref w in
    while !k < n do
      results.(!k) <- Some (f !k);
      k := !k + jobs
    done
  in
  if jobs = 1 then run 0
  else begin
    let guarded w = match run w with () -> Ok () | exception e -> Error e in
    let workers =
      Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> guarded (i + 1)))
    in
    let mine = guarded 0 in
    let theirs = Array.map Domain.join workers in
    let first =
      Array.fold_left
        (fun acc r ->
          match acc with
          | Error _ -> acc
          | Ok () -> r)
        mine theirs
    in
    match first with
    | Ok () -> ()
    | Error e -> raise e
  end;
  Array.map
    (function
      | Some v -> v
      | None -> assert false)
    results
