(** Vector-restoration static compaction ([23], ICCD-97).

    Starting from an empty selection, faults are processed in order of
    decreasing first-detection time; whenever the restored subsequence does
    not yet detect the current fault, vectors are restored one by one,
    walking backwards from the fault's detection time, until it does.
    Vectors never restored are dropped.  Because the procedure treats the
    sequence as an ordinary non-scan test sequence, it freely drops
    [scan_sel = 1] cycles — turning complete scan operations into limited
    ones.

    Restore searches run speculatively in fixed-width waves: each wave
    member's backward search is evaluated as a pure function of a frozen
    copy of the selection, the evaluations run concurrently across [jobs]
    domains, and results are committed in wave order with a one-simulation
    revalidation for members whose frozen context went stale (see DESIGN.md
    §10).  The wave structure does not depend on [jobs], so the restored
    subsequence and every counter are bit-identical at any [jobs]
    setting. *)

(** Work telemetry, accumulated across {!run} calls that were handed the
    same record: vectors restored into the selection, single-fault probe
    simulations (search probes and revalidations), and whole-batch
    parallel simulations. *)
type stats = {
  mutable restored : int;
  mutable probes : int;
  mutable batch_sims : int;
}

val make_stats : unit -> stats

(** [run model seq targets] returns the restored subsequence (original
    vector order; a subset of [seq]'s vectors).  The result is guaranteed to
    detect every target.  [stats], when given, accumulates the run's work
    counters; [spec] accumulates the speculative-dispatch counters;
    [adaptive] accumulates [replay_skipped] — wave members committed
    without a revalidation simulation because the keep mask did not move
    at or below their detection time since their frozen copy was taken
    (bits are set-only, so the member's terminating probe simulated
    exactly the live selection and already verified detection);
    [pool] draws wave-evaluation domains
    from a shared {!Spec.Pool}; [jobs] (default 1) bounds the domains
    used for wave evaluation and batch simulation without affecting any
    result.

    When [budget] trips mid-run the procedure degrades gracefully: probing
    stops and every unfinished fault restores its whole prefix [[0..dt]],
    which reproduces the original simulation.  The output is then less
    compact but still detects every target. *)
val run :
  ?stats:stats ->
  ?budget:Obs.Budget.t ->
  ?jobs:int ->
  ?spec:Spec.counters ->
  ?adaptive:Spec.adaptive ->
  ?pool:Spec.Pool.t ->
  Faultmodel.Model.t -> Logicsim.Vectors.t -> Target.t -> Logicsim.Vectors.t
