module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim
module View = Logicsim.Vectors.View

type config = {
  max_passes : int;
  max_trials : int option;
  window : int;
  horizon : int;
  jobs : int;
}

let default_config =
  { max_passes = 5; max_trials = None; window = 48; horizon = 128; jobs = 1 }

type stats = {
  trials : int;
  accepted : int;
  rejected : int;
  removed_vectors : int;
  passes : int;
  removed_per_pass : int array;
}

(* One left-to-right pass trying to omit [chunk] consecutive vectors per
   trial.  [det] maps target index -> detection time in the current
   sequence; updated in place on acceptance.  The main session holds every
   target's state just before the trial position, so a trial only
   re-simulates the faults whose detection could be affected — those
   detected at or after the trial position — over the suffix.  Probing with
   the faults sorted by detection time clusters each simulator word around
   one region of the suffix, letting groups retire early. *)
let one_pass model (targets : Target.t) config ~chunk seq det trial_budget
    obudget =
  let n = Target.count targets in
  let seq = ref seq in
  let changed = ref false in
  let trials = ref 0 and accepted = ref 0 and removed = ref 0 in
  let i = ref 0 in
  let session = ref (Faultsim.create model ~fault_ids:targets.Target.fault_ids) in
  (* Verify a trial by simulating the suffix in chunks.  Each target must
     re-detect within [horizon] frames of where it used to be detected;
     failing that, the trial is rejected without simulating the remainder —
     this bounds the cost of both rejections and (with the fault words
     clustered by detection time) acceptances.  [base] is the absolute
     position the suffix starts at in the trial sequence; [old_base] is the
     old absolute position of the suffix's first vector. *)
  let probe subset ~base ~old_base suffix =
    let ids = Array.map (fun k -> targets.Target.fault_ids.(k)) subset in
    let s =
      Faultsim.create
        ~good_state:(Faultsim.good_state !session)
        ~faulty_states:(Faultsim.faulty_state !session)
        ~jobs:config.jobs model ~fault_ids:ids
    in
    let len = View.length suffix in
    let chunk = 64 in
    let pos = ref 0 in
    let ptr = ref 0 in
    let ok = ref true in
    while !ok && !pos < len && Faultsim.detected_count s < Array.length ids do
      let n = min chunk (len - !pos) in
      Faultsim.advance_view s (View.slice suffix !pos n);
      pos := !pos + n;
      (* Every fault whose old detection lies >= horizon frames behind the
         simulated front must have re-detected by now. *)
      let threshold = old_base + !pos - config.horizon in
      while
        !ok && !ptr < Array.length subset
        && det.(subset.(!ptr)) <= threshold
      do
        if Faultsim.detection_time s ids.(!ptr) = None then ok := false
        else incr ptr
      done
    done;
    if !ok && Faultsim.detected_count s = Array.length ids then
      Some
        (Array.map
           (fun fid ->
             match Faultsim.detection_time s fid with
             | Some t -> base + t
             | None -> assert false)
           ids)
    else None
  in
  let budget_left () =
    (match trial_budget with
     | Some b -> !b > 0
     | None -> true)
    (* A tripped time/backtrack budget ends the pass at the next trial
       boundary; the sequence built so far is valid as it stands. *)
    && Obs.Budget.check obudget
  in
  while !i < Array.length !seq && budget_left () do
    let len = Array.length !seq in
    let c = min chunk (len - !i) in
    let subset = ref [] in
    for k = n - 1 downto 0 do
      if det.(k) >= !i then subset := k :: !subset
    done;
    let subset = Array.of_list !subset in
    (* Faults detected soonest after [i] first: likeliest to break, and the
       resulting word grouping clusters detection times. *)
    Array.sort (fun a b -> compare det.(a) det.(b)) subset;
    (* The suffix is a zero-copy window: a trial no longer costs an
       O(length) slice before the first simulated frame. *)
    let suffix = View.slice (View.of_seq !seq) (!i + c) (len - !i - c) in
    let base = !i and old_base = !i + c in
    let accept =
      if Array.length subset = 0 then Some [||]
      else begin
        let quick =
          if Array.length subset > 2 * config.window then begin
            let w = Array.sub subset 0 config.window in
            probe w ~base ~old_base suffix <> None
          end
          else true
        in
        if not quick then None else probe subset ~base ~old_base suffix
      end
    in
    incr trials;
    (match accept with
     | Some new_times ->
       changed := true;
       incr accepted;
       removed := !removed + c;
       seq := Array.append (Array.sub !seq 0 !i) (View.to_seq suffix);
       Array.iteri (fun j k -> det.(k) <- new_times.(j)) subset
     | None ->
       (* Keep the first vector of the window and retry from the next
          position (a failed multi-vector chunk may still be partially
          removable; the later chunk-1 pass handles the fine grain). *)
       Faultsim.advance !session [| (!seq).(!i) |];
       incr i);
    (match trial_budget with
     | Some b -> decr b
     | None -> ())
  done;
  !seq, !changed, (!trials, !accepted, !removed)

let run ?(budget = Obs.Budget.unlimited) model seq (targets : Target.t) config =
  let n = Target.count targets in
  let det = Array.copy targets.Target.det_times in
  let trial_budget = Option.map ref config.max_trials in
  let budget_left () =
    (match trial_budget with
     | Some b -> !b > 0
     | None -> true)
    && Obs.Budget.check budget
  in
  (* Coarse-to-fine schedule: large chunks remove whole useless regions in
     one verification; the trailing single-vector passes polish until a
     fixpoint or the pass budget. *)
  let schedule =
    let coarse = [ 16; 4 ] in
    let fine = List.init (max 1 (config.max_passes - List.length coarse)) (fun _ -> 1) in
    coarse @ fine
  in
  let seq = ref seq in
  let continue_ = ref true in
  let trials = ref 0 and accepted = ref 0 in
  let per_pass = ref [] in
  List.iter
    (fun chunk ->
      if !continue_ && budget_left () then begin
        let seq', changed, (t, a, r) =
          one_pass model targets config ~chunk !seq det trial_budget budget
        in
        seq := seq';
        trials := !trials + t;
        accepted := !accepted + a;
        per_pass := r :: !per_pass;
        (* Stop early only once the fine passes make no progress. *)
        if chunk = 1 && not changed then continue_ := false
      end)
    schedule;
  let removed_per_pass = Array.of_list (List.rev !per_pass) in
  let stats =
    { trials = !trials;
      accepted = !accepted;
      rejected = !trials - !accepted;
      removed_vectors = Array.fold_left ( + ) 0 removed_per_pass;
      passes = Array.length removed_per_pass;
      removed_per_pass }
  in
  ( !seq,
    { Target.fault_ids = Array.copy targets.Target.fault_ids;
      det_times = Array.init n (fun k -> det.(k)) },
    stats )
