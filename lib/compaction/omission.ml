module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim
module View = Logicsim.Vectors.View

type config = {
  max_passes : int;
  max_trials : int option;
  window : int;
  horizon : int;
  jobs : int;
  adaptive : bool;
}

let default_config =
  { max_passes = 5; max_trials = None; window = 48; horizon = 128; jobs = 1;
    adaptive = true }

type stats = {
  trials : int;
  accepted : int;
  rejected : int;
  removed_vectors : int;
  passes : int;
  removed_per_pass : int array;
}

(* One left-to-right pass trying to omit [chunk] consecutive vectors per
   trial.  [det] maps target index -> detection time in the current
   sequence; updated in place on acceptance.  The main session holds every
   target's state just before the current round's base position, so a
   trial only re-simulates the faults whose detection could be affected —
   those detected at or after the trial position — over the suffix.
   Probing with the faults sorted by detection time clusters each
   simulator word around one region of the suffix, letting groups retire
   early.

   Speculation: a round at base [i] dispatches [width = min (jobs,
   remaining)] trials at positions [i .. i+width-1] across worker domains,
   each probing against one shared snapshot of the main session.  The
   trial at [i+j] assumes trials [i .. i+j-1] were all rejected, which it
   reproduces exactly by replaying those vectors from the snapshot — so
   committing results left to right up to (and including) the first
   acceptance replays the sequential trace verbatim.  Results beyond the
   first acceptance assumed a sequence that no longer exists and are
   discarded.  The committed trace — and with it the sequence, the [det]
   array and the trials/accepted/removed counters — is therefore
   bit-identical at any [jobs].

   Adaptive width: positions are probed in increasing order and each is
   committed exactly once (rejections advance past it, an acceptance
   restarts at it against the shortened sequence), so the committed
   trial sequence is the same for ANY per-round width trajectory — the
   width only decides how many trials are precomputed speculatively.
   The controller exploits that freedom: an acceptance at slot [j]
   proves the trials beyond [j] were wasted, so the width shrinks to
   [j + 1]; a streak of fully-rejected rounds means speculation is
   paying again, so it doubles back up to [config.jobs].  Turning the
   controller off (or varying [jobs]) changes only dispatch-schedule
   telemetry ([compaction.speculative.*] / [compaction.adaptive.*]). *)
let one_pass ?pool model (targets : Target.t) config ~chunk ~spec ~adaptive
    seq det trial_budget obudget =
  let n = Target.count targets in
  let seq = ref seq in
  let changed = ref false in
  let trials = ref 0 and accepted = ref 0 and removed = ref 0 in
  let i = ref 0 in
  let session =
    Faultsim.create ~jobs:config.jobs model ~fault_ids:targets.Target.fault_ids
  in
  (* One arena per pass: each round's capture recycles the previous
     round's packed buffers (the [Spec.map] join guarantees no probe
     still reads them). *)
  let arena = Faultsim.arena () in
  (* Width controller state: the current speculation cap and the length
     of the ongoing fully-rejected-round streak. *)
  let cur_width = ref config.jobs in
  let reject_streak = ref 0 in
  let budget_left () =
    (match trial_budget with
     | Some b -> !b > 0
     | None -> true)
    (* A tripped time/backtrack budget ends the pass at the next round
       boundary; the sequence built so far is valid as it stands. *)
    && Obs.Budget.check obudget
  in
  while !i < Array.length !seq && budget_left () do
    let len = Array.length !seq in
    let base = !i in
    let width_full =
      let w = max 1 (min config.jobs (len - base)) in
      match trial_budget with
      | Some b -> max 1 (min w !b)
      | None -> w
    in
    let width =
      if config.adaptive then max 1 (min width_full !cur_width)
      else width_full
    in
    adaptive.Spec.trials_saved <-
      adaptive.Spec.trials_saved + (width_full - width);
    (* One snapshot serves every trial of the round: each trial's fault
       subset is contained in the faults still detected at or after
       [base], and replaying kept vectors from the snapshot is exact. *)
    let snap_ids = ref [] in
    for k = n - 1 downto 0 do
      if det.(k) >= base then
        snap_ids := targets.Target.fault_ids.(k) :: !snap_ids
    done;
    let snap =
      Faultsim.snapshot ~arena ~fault_ids:(Array.of_list !snap_ids) session
    in
    let whole = View.of_seq !seq in
    (* Workers own one trial each, so their probe sessions stay
       single-domain; the sequential path keeps fanning a lone probe out
       across the configured domains. *)
    let session_jobs = if width > 1 then 1 else config.jobs in
    (* Verify the trial removing [c] vectors at [p] by replaying the kept
       prefix [base..p-1] (detection-free: every probed fault has
       [det >= p]) and then simulating the suffix in steps.  Each target
       must re-detect within [horizon] frames of where it used to be
       detected; failing that, the trial is rejected without simulating
       the remainder — this bounds the cost of both rejections and (with
       the fault words clustered by detection time) acceptances. *)
    let trial j =
      let p = base + j in
      let c = min chunk (len - p) in
      let subset = ref [] in
      for k = n - 1 downto 0 do
        if det.(k) >= p then subset := k :: !subset
      done;
      let subset = Array.of_list !subset in
      (* Faults detected soonest after [p] first: likeliest to break, and
         the resulting word grouping clusters detection times. *)
      Array.sort (fun a b -> compare det.(a) det.(b)) subset;
      let old_base = p + c in
      let probe sub =
        let ids = Array.map (fun k -> targets.Target.fault_ids.(k)) sub in
        let s = Faultsim.of_snapshot ~jobs:session_jobs snap ~fault_ids:ids in
        if p > base then
          Faultsim.advance_view s (View.slice whole base (p - base));
        (* The suffix is a zero-copy window: a trial never materializes
           the candidate sequence. *)
        let suffix = View.slice whole old_base (len - old_base) in
        let slen = View.length suffix in
        let step = 64 in
        let pos = ref 0 in
        let ptr = ref 0 in
        let ok = ref true in
        while
          !ok && !pos < slen && Faultsim.detected_count s < Array.length ids
        do
          let m = min step (slen - !pos) in
          Faultsim.advance_view s (View.slice suffix !pos m);
          pos := !pos + m;
          (* Every fault whose old detection lies >= horizon frames behind
             the simulated front must have re-detected by now. *)
          let threshold = old_base + !pos - config.horizon in
          while
            !ok && !ptr < Array.length sub && det.(sub.(!ptr)) <= threshold
          do
            if Faultsim.detection_time s ids.(!ptr) = None then ok := false
            else incr ptr
          done
        done;
        if !ok && Faultsim.detected_count s = Array.length ids then
          Some
            (Array.map
               (fun fid ->
                 (* Probe time counts from [base]; kept-prefix frames were
                    detection-free, so [base + t] is the detection's
                    position in the shortened sequence. *)
                 match Faultsim.detection_time s fid with
                 | Some t -> base + t
                 | None -> assert false)
               ids)
        else None
      in
      let accept =
        if Array.length subset = 0 then Some [||]
        else begin
          let quick =
            if Array.length subset > 2 * config.window then
              probe (Array.sub subset 0 config.window) <> None
            else true
          in
          if not quick then None else probe subset
        end
      in
      (subset, c, accept)
    in
    let results = Spec.map ?pool ~jobs:width width trial in
    if width > 1 then
      spec.Spec.dispatched <- spec.Spec.dispatched + (width - 1);
    (* Commit left to right; the first acceptance wins the round. *)
    let j = ref 0 in
    let committed_accept = ref false in
    while (not !committed_accept) && !j < width do
      let subset, c, accept = results.(!j) in
      let p = base + !j in
      incr trials;
      (match trial_budget with
       | Some b -> decr b
       | None -> ());
      if !j > 0 then spec.Spec.committed <- spec.Spec.committed + 1;
      (match accept with
       | Some new_times ->
         committed_accept := true;
         changed := true;
         incr accepted;
         removed := !removed + c;
         (* Catch the main session up over the kept prefix the accepted
            trial assumed, then cut the sequence at [p]; the next round
            retries at [p] against the shortened sequence. *)
         if p > base then
           Faultsim.advance_view session (View.slice whole base (p - base));
         let suffix = View.slice whole (p + c) (len - p - c) in
         seq := Array.append (Array.sub !seq 0 p) (View.to_seq suffix);
         Array.iteri (fun idx k -> det.(k) <- new_times.(idx)) subset;
         i := p
       | None -> incr j)
    done;
    if !committed_accept then begin
      spec.Spec.discarded <- spec.Spec.discarded + (width - !j - 1);
      (* An acceptance at slot [j] wasted the [width - j - 1] trials
         beyond it: narrow the next rounds to what this one used. *)
      reject_streak := 0;
      if config.adaptive && !j + 1 < width then begin
        cur_width := !j + 1;
        adaptive.Spec.shrinks <- adaptive.Spec.shrinks + 1
      end
    end
    else begin
      (* Whole round rejected: keep all [width] vectors and move on. *)
      Faultsim.advance_view session (View.slice whole base width);
      i := base + width;
      (* Every speculative trial was consumed; two such rounds in a row
         mean speculation pays again, so widen back toward the cap. *)
      incr reject_streak;
      if config.adaptive && !reject_streak >= 2 && !cur_width < config.jobs
      then begin
        cur_width := min config.jobs (2 * !cur_width);
        adaptive.Spec.widens <- adaptive.Spec.widens + 1;
        reject_streak := 0
      end
    end
  done;
  adaptive.Spec.arena_reuses <-
    adaptive.Spec.arena_reuses + Faultsim.arena_hits arena;
  !seq, !changed, (!trials, !accepted, !removed)

let run ?(budget = Obs.Budget.unlimited) ?metrics ?trace ?spec ?adaptive ?pool
    model seq (targets : Target.t) config =
  let spec =
    match spec with
    | Some s -> s
    | None -> Spec.make ()
  in
  let adaptive =
    match adaptive with
    | Some a -> a
    | None -> Spec.make_adaptive ()
  in
  let n = Target.count targets in
  let det = Array.copy targets.Target.det_times in
  let trial_budget = Option.map ref config.max_trials in
  let budget_left () =
    (match trial_budget with
     | Some b -> !b > 0
     | None -> true)
    && Obs.Budget.check budget
  in
  (* Coarse-to-fine schedule: large chunks remove whole useless regions in
     one verification; the trailing single-vector passes polish until a
     fixpoint or the pass budget. *)
  let schedule =
    let coarse = [ 16; 4 ] in
    let fine =
      List.init (max 1 (config.max_passes - List.length coarse)) (fun _ -> 1)
    in
    coarse @ fine
  in
  let seq = ref seq in
  let continue_ = ref true in
  let trials = ref 0 and accepted = ref 0 in
  let per_pass = ref [] in
  let pass_idx = ref 0 in
  List.iter
    (fun chunk ->
      if !continue_ && budget_left () then begin
        incr pass_idx;
        let timed f =
          match metrics with
          | None -> f ()
          | Some m ->
            Obs.Metrics.timed m ?trace
              (Printf.sprintf "omit.pass%d" !pass_idx)
              f
        in
        let seq', changed, (t, a, r) =
          timed (fun () ->
              one_pass ?pool model targets config ~chunk ~spec ~adaptive !seq
                det trial_budget budget)
        in
        seq := seq';
        trials := !trials + t;
        accepted := !accepted + a;
        per_pass := r :: !per_pass;
        (* Stop early only once the fine passes make no progress. *)
        if chunk = 1 && not changed then continue_ := false
      end)
    schedule;
  let removed_per_pass = Array.of_list (List.rev !per_pass) in
  let stats =
    { trials = !trials;
      accepted = !accepted;
      rejected = !trials - !accepted;
      removed_vectors = Array.fold_left ( + ) 0 removed_per_pass;
      passes = Array.length removed_per_pass;
      removed_per_pass }
  in
  ( !seq,
    { Target.fault_ids = Array.copy targets.Target.fault_ids;
      det_times = Array.init n (fun k -> det.(k)) },
    stats )
