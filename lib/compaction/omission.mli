(** Vector-omission static compaction ([22], DAC-96).

    Every vector is tried for removal, left to right; a removal is accepted
    when every target fault is still detected by the shortened sequence.
    Passes repeat until a fixpoint (or the pass budget).  Like restoration,
    the procedure sees scan shift cycles as ordinary vectors, so it shortens
    scan operations wherever the fault coverage allows.

    The implementation keeps a live fault-simulation session positioned just
    before the trial vector, so each trial only re-simulates the faults
    whose detection could be affected (those detected at or after the trial
    position) over the suffix, with a small-window pre-check that rejects
    most failing trials cheaply.

    With [jobs > 1] trials are evaluated speculatively: each round
    dispatches the next [jobs] candidate positions to worker domains, every
    worker probing against one shared {!Logicsim.Faultsim.snapshot} of the
    main session, and results are committed left to right — the leftmost
    acceptance wins, results beyond it are discarded (see DESIGN.md §10).
    The committed trace replays the sequential one verbatim, so the final
    sequence, detection times and {!stats} are bit-identical at any [jobs]
    setting; only the [compaction.speculative.*] counters reflect the
    actual dispatch.

    With [adaptive] widths enabled (the default), the per-round
    speculation width follows the observed acceptance pattern — an
    acceptance at slot [j] shrinks the next rounds to width [j + 1],
    and a streak of fully-rejected rounds doubles it back toward
    [jobs].  Because positions are committed exactly once and in order
    regardless of how many trials were precomputed, the sequence,
    detection times and {!stats} are bit-identical at ANY width
    trajectory; only the dispatch-schedule counters
    ([compaction.speculative.*] and [compaction.adaptive.*]) differ.
    Snapshot buffers are arena-reused across rounds, and a shared
    {!Spec.Pool} can supply the trial domains instead of per-round
    spawns. *)

type config = {
  max_passes : int;  (** passes over the sequence (fixpoint cut-off) *)
  max_trials : int option;  (** overall trial budget, [None] = unlimited *)
  window : int;  (** size of the cheap pre-check fault window *)
  horizon : int;
  (** a trial is rejected unless every affected fault re-detects within
      this many frames of its previous detection point — conservative, but
      it bounds each trial's simulation cost *)
  jobs : int;
  (** compaction parallelism, end to end: the number of speculative
      trials dispatched per round, the main replay session's simulation
      domains, and (on the sequential path) the domains of each probe
      session.  Results are schedule-independent. *)
  adaptive : bool;
  (** let the width controller shrink/re-widen the speculation width
      with the observed acceptance rate (default [true]); affects only
      dispatch-schedule counters, never results *)
}

val default_config : config

(** Outcome telemetry of one {!run}: omission trials attempted, accepted
    and rejected, total vectors removed, passes executed, and the removal
    count of each pass in order. *)
type stats = {
  trials : int;
  accepted : int;
  rejected : int;
  removed_vectors : int;
  passes : int;
  removed_per_pass : int array;
}

(** [run model seq targets config] returns the compacted sequence together
    with the targets' detection times in it and the run's trial
    statistics.  [budget] (default {!Obs.Budget.unlimited}) is polled at
    every round boundary: a trip ends the run with the best sequence found
    so far, which is always a valid test for every target.  [metrics]
    (with optional [trace]) records one [omit.pass<n>] span per executed
    pass; [spec], when given, accumulates the speculative-dispatch
    counters (see {!Spec.counters}); [adaptive] accumulates the width
    controller / arena-reuse counters (see {!Spec.adaptive}); [pool]
    supplies trial-evaluation domains from a shared {!Spec.Pool}
    instead of per-round spawns. *)
val run :
  ?budget:Obs.Budget.t ->
  ?metrics:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?spec:Spec.counters ->
  ?adaptive:Spec.adaptive ->
  ?pool:Spec.Pool.t ->
  Faultmodel.Model.t ->
  Logicsim.Vectors.t ->
  Target.t ->
  config ->
  Logicsim.Vectors.t * Target.t * stats
