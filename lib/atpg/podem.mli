(** PODEM over bounded time-frame expansion.

    The engine unrolls the (elaborated) circuit for [depth] frames and runs
    a two-machine (good / faulty) three-valued simulation as its implication
    procedure; the fault is injected in every frame.  Decision variables are
    the primary inputs of every frame and — in free-initial-state mode — the
    frame-0 present-state variables.  Objectives alternate between fault
    activation and D-frontier extension; backtrace walks X-valued paths,
    crossing a flip-flop into the previous frame.

    The result's [vectors] are trimmed at the first frame whose primary
    outputs expose the fault; unassigned positions are [X] and may be filled
    freely without losing the detection. *)

type outcome =
  | Detected of {
      vectors : Logicsim.Vectors.t;  (** one vector per frame, may contain [X] *)
      required_state : Netlist.Logic.t array option;
      (** frame-0 state demanded by the test, only in free-initial-state
          mode ([X] = don't-care) *)
    }
  | Latched of {
      vectors : Logicsim.Vectors.t;
      required_state : Netlist.Logic.t array option;
      dff : int;  (** flip-flop index now holding the fault effect *)
    }
    (** only with [~observe_ffs:true]: the effect was latched into a
        flip-flop after the last vector — a scan-out drain completes the
        test (Section 2 of the paper) *)
  | Aborted  (** backtrack budget exhausted *)
  | Exhausted  (** search space exhausted at this depth — no test exists *)

type start =
  | From_state of {
      good : Netlist.Logic.t array;
      faulty : Netlist.Logic.t array;
    }
    (** continue a running test sequence: frame-0 state is fixed *)
  | Free_state
    (** scan-based mode: frame-0 state is controllable (decision variables)
        and is reported as [required_state] *)

(** Search-effort telemetry, accumulated across {!run} calls that were
    handed the same record: solver invocations, decision-variable
    assignments, and backtracks (decision flips). *)
type stats = {
  mutable calls : int;
  mutable decisions : int;
  mutable backtracks : int;
}

val make_stats : unit -> stats

(** [run model ~fault ~depth ~start ~backtrack_limit ?fixed_inputs ()]
    attempts to detect [fault] (an index into [model.faults]) within [depth]
    frames.  [fixed_inputs] pins chosen primary inputs (by input position)
    to a constant in every frame — used by the baseline to hold
    [scan_sel = 0].  With [observe_ffs] (default [false]) the search also
    succeeds when the fault effect is latched into a flip-flop after the
    last frame, reporting {!Latched}.  [stats], when given, accumulates the
    call's search effort.  [budget], when limited, is polled at every
    decision step (a safe point) and charged the call's backtracks; a
    tripped budget ends the call with {!Aborted}. *)
val run :
  Faultmodel.Model.t ->
  fault:int ->
  depth:int ->
  start:start ->
  backtrack_limit:int ->
  ?fixed_inputs:(int * Netlist.Logic.t) list ->
  ?observe_ffs:bool ->
  ?stats:stats ->
  ?budget:Obs.Budget.t ->
  unit ->
  outcome
