module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Logic = Netlist.Logic
module Levelize = Netlist.Levelize
module Model = Faultmodel.Model

type outcome =
  | Detected of {
      vectors : Logicsim.Vectors.t;
      required_state : Logic.t array option;
    }
  | Latched of {
      vectors : Logicsim.Vectors.t;
      required_state : Logic.t array option;
      dff : int;
    }
  | Aborted
  | Exhausted

type start =
  | From_state of {
      good : Logic.t array;
      faulty : Logic.t array;
    }
  | Free_state

type stats = {
  mutable calls : int;
  mutable decisions : int;
  mutable backtracks : int;
}

let make_stats () = { calls = 0; decisions = 0; backtracks = 0 }

type engine = {
  circuit : Circuit.t;
  order : int array;
  level : int array;
  scoap : Netlist.Scoap.t;
  inputs : int array;
  outputs : int array;
  dffs : int array;
  dff_fanin : int array;
  depth : int;
  fault_node : int;
  stuck : Logic.t;
  free_state : bool;
  good0 : Logic.t array;  (* meaningful when not free_state *)
  faulty0 : Logic.t array;
  asg_pi : Logic.t array array;  (* depth x inputs: decision values *)
  asg_ppi : Logic.t array;  (* dffs: frame-0 state decisions (free mode) *)
  gval : Logic.t array array;  (* depth x nodes *)
  fval : Logic.t array array;
  input_index : int array;  (* node id -> input position, -1 *)
  dff_index : int array;  (* node id -> dff position, -1 *)
  mutable dirty : int;  (* lowest frame whose values are stale *)
}

(* Incremental implication: frames before [e.dirty] are unchanged since the
   last call (assignments only touch their own frame and propagate forward
   through the flip-flops), so only [dirty..depth-1] are re-evaluated. *)
let simulate e =
  for fr = e.dirty to e.depth - 1 do
    let g = e.gval.(fr) and f = e.fval.(fr) in
    Array.iteri
      (fun i id ->
        g.(id) <- e.asg_pi.(fr).(i);
        f.(id) <- e.asg_pi.(fr).(i))
      e.inputs;
    Array.iteri
      (fun k id ->
        if fr = 0 then
          if e.free_state then begin
            g.(id) <- e.asg_ppi.(k);
            f.(id) <- e.asg_ppi.(k)
          end
          else begin
            g.(id) <- e.good0.(k);
            f.(id) <- e.faulty0.(k)
          end
        else begin
          g.(id) <- e.gval.(fr - 1).(e.dff_fanin.(k));
          f.(id) <- e.fval.(fr - 1).(e.dff_fanin.(k))
        end)
      e.dffs;
    f.(e.fault_node) <- e.stuck;
    (* If the fault sits on a source it was just forced; combinational nodes
       are forced right after their evaluation below. *)
    Array.iter
      (fun nd ->
        g.(nd) <- Logicsim.Goodsim.eval_node e.circuit g nd;
        f.(nd) <-
          (if nd = e.fault_node then e.stuck
           else Logicsim.Goodsim.eval_node e.circuit f nd))
      e.order
  done;
  e.dirty <- e.depth

let d_at e fr nd =
  let g = e.gval.(fr).(nd) and f = e.fval.(fr).(nd) in
  Logic.is_binary g && Logic.is_binary f && not (Logic.equal g f)

type success =
  | At_po of int  (* frame *)
  | At_ff of int * int  (* frame, dff index *)

(* Earliest frame exposing the fault: on a primary output, or — when
   flip-flops count as observation points — latched into a flip-flop at the
   end of the frame. *)
let find_success e ~observe_ffs =
  let rec frames fr =
    if fr >= e.depth then None
    else if Array.exists (fun po -> d_at e fr po) e.outputs then Some (At_po fr)
    else if observe_ffs then begin
      let rec ffs k =
        if k >= Array.length e.dff_fanin then frames (fr + 1)
        else if d_at e fr e.dff_fanin.(k) then Some (At_ff (fr, k))
        else ffs (k + 1)
      in
      ffs 0
    end
    else frames (fr + 1)
  in
  frames 0

(* One pass over all frames: does a fault effect exist anywhere, and which
   gates form the D-frontier?  A D can only live at the fault node, at a
   combinational gate, or latched in a flip-flop. *)
let analyze e =
  let has_d = ref false in
  let cands = ref [] in
  for fr = 0 to e.depth - 1 do
    if d_at e fr e.fault_node then has_d := true;
    Array.iter (fun ff -> if d_at e fr ff then has_d := true) e.dffs;
    Array.iter
      (fun nd ->
        if d_at e fr nd then has_d := true
        else if
          (Logic.equal e.gval.(fr).(nd) Logic.X
           || Logic.equal e.fval.(fr).(nd) Logic.X)
          && Array.exists (fun f -> d_at e fr f) (Circuit.node e.circuit nd).Circuit.fanins
        then cands := (fr, nd) :: !cands)
      e.order
  done;
  !has_d, !cands

(* Activation objectives: make the good machine show the complement of the
   stuck value at the fault node — one candidate per frame where the value
   is still unknown, earliest first.  Later frames matter: with a fixed
   initial state the earliest frame's value may be unjustifiable while a
   deeper frame is reachable through the primary inputs (e.g. by shifting
   the scan chain). *)
let activation_objectives e =
  let want = Logic.bnot e.stuck in
  let acc = ref [] in
  for fr = e.depth - 1 downto 0 do
    if Logic.equal e.gval.(fr).(e.fault_node) Logic.X then
      acc := (fr, e.fault_node, want) :: !acc
  done;
  !acc

(* Objective for extending the D-frontier through gate [nd] at frame [fr]:
   set an unknown side input so the latched fault effect passes through. *)
let gate_objective e fr nd =
  let fanins = (Circuit.node e.circuit nd).Circuit.fanins in
  let g = e.gval.(fr) in
  match (Circuit.node e.circuit nd).Circuit.kind with
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
    let c =
      match Gate.controlling (Circuit.node e.circuit nd).Circuit.kind with
      | Some Logic.Zero -> Logic.Zero
      | Some Logic.One -> Logic.One
      | Some Logic.X | None -> assert false
    in
    (* Easiest non-controlling side input first (SCOAP-guided). *)
    let want = Logic.bnot c in
    let want_b = Logic.equal want Logic.One in
    let pick = ref None and best = ref max_int in
    Array.iter
      (fun f ->
        if (not (d_at e fr f)) && Logic.equal g.(f) Logic.X then begin
          let cost = Netlist.Scoap.cc e.scoap ~n:f ~v:want_b in
          if cost < !best then begin
            best := cost;
            pick := Some (fr, f, want)
          end
        end)
      fanins;
    !pick
  | Gate.Xor | Gate.Xnor ->
    let pick = ref None and best = ref max_int in
    Array.iter
      (fun f ->
        if (not (d_at e fr f)) && Logic.equal g.(f) Logic.X then begin
          let c0 = Netlist.Scoap.cc e.scoap ~n:f ~v:false in
          let c1 = Netlist.Scoap.cc e.scoap ~n:f ~v:true in
          let v = if c0 <= c1 then Logic.Zero else Logic.One in
          if min c0 c1 < !best then begin
            best := min c0 c1;
            pick := Some (fr, f, v)
          end
        end)
      fanins;
    !pick
  | Gate.Mux ->
    let s = fanins.(0) and a = fanins.(1) and b = fanins.(2) in
    if d_at e fr s then begin
      (* Select-line fault effect: the data inputs must differ. *)
      if Logic.equal g.(a) Logic.X then
        Some (fr, a, if Logic.is_binary g.(b) then Logic.bnot g.(b) else Logic.Zero)
      else if Logic.equal g.(b) Logic.X then
        Some (fr, b, if Logic.is_binary g.(a) then Logic.bnot g.(a) else Logic.One)
      else None
    end
    else if d_at e fr a then
      if Logic.equal g.(s) Logic.X then Some (fr, s, Logic.Zero) else None
    else if d_at e fr b then
      if Logic.equal g.(s) Logic.X then Some (fr, s, Logic.One) else None
    else None
  | Gate.Buf | Gate.Not | Gate.Input | Gate.Dff -> None

(* All candidate objectives for the current state: with a fault effect
   alive, the D-frontier gates sorted most-observable first (SCOAP [co],
   structural level and later frames breaking ties); otherwise the
   activation candidates.  The solver tries them in order until one
   backtraces to a decision variable. *)
let objectives e =
  let has_d, cands = analyze e in
  if not has_d then activation_objectives e
  else begin
    let scored =
      List.sort
        (fun (fr1, n1) (fr2, n2) ->
          compare
            (e.scoap.Netlist.Scoap.co.(n1), e.level.(n2), fr2)
            (e.scoap.Netlist.Scoap.co.(n2), e.level.(n1), fr1))
        cands
    in
    List.filter_map (fun (fr, nd) -> gate_objective e fr nd) scored
  end

(* Walk X-valued paths from the objective back to an unassigned decision
   variable.  Returns [(frame, var, value)] where [var] is an input position
   or, in free-state mode, [ninputs + dff position] at frame 0.

   Unlike textbook combinational backtrace, a path here can dead-end — the
   fixed frame-0 state blocks every route through a frame-0 flip-flop — so
   each gate keeps an ordered list of candidate fanins (SCOAP-guided:
   easiest first when one controlling value suffices, hardest first when
   every input matters) and the walk backtracks across them.  Failures are
   memoized per (frame, node, value), bounding the search linearly in the
   unrolled circuit. *)
let backtrace e (fr0, nd0, v0) =
  let ninputs = Array.length e.inputs in
  let failed = Hashtbl.create 64 in
  let rec go fr nd v =
    if not (Logic.equal e.gval.(fr).(nd) Logic.X) then None
    else if Hashtbl.mem failed (fr, nd, v) then None
    else begin
      match attempt fr nd v with
      | Some _ as r -> r
      | None ->
        Hashtbl.add failed (fr, nd, v) ();
        None
    end
  and first_of candidates =
    List.fold_left
      (fun acc (fr, nd, v) ->
        match acc with
        | Some _ -> acc
        | None -> go fr nd v)
      None candidates
  and attempt fr nd v =
    let node = Circuit.node e.circuit nd in
    let fanins = node.Circuit.fanins in
    let g = e.gval.(fr) in
    match node.Circuit.kind with
    | Gate.Input -> Some (fr, e.input_index.(nd), v)
    | Gate.Dff ->
      if fr > 0 then go (fr - 1) e.dff_fanin.(e.dff_index.(nd)) v
      else if e.free_state then Some (0, ninputs + e.dff_index.(nd), v)
      else None
    | Gate.Buf -> go fr fanins.(0) v
    | Gate.Not -> go fr fanins.(0) (Logic.bnot v)
    | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
      let kind = node.Circuit.kind in
      let c =
        match Gate.controlling kind with
        | Some Logic.Zero -> Logic.Zero
        | Some Logic.One -> Logic.One
        | Some Logic.X | None -> assert false
      in
      let core = if Gate.inversion kind then Logic.bnot v else v in
      let cb = Logic.equal c Logic.One in
      let x_inputs want_b =
        let xs = ref [] in
        Array.iter
          (fun f ->
            if Logic.equal g.(f) Logic.X then
              xs := (Netlist.Scoap.cc e.scoap ~n:f ~v:want_b, f) :: !xs)
          fanins;
        List.sort compare (List.rev !xs)
      in
      if Logic.equal core c then
        (* One controlling input suffices: easiest first, fall through the
           alternatives on dead ends. *)
        first_of (List.map (fun (_, f) -> (fr, f, c)) (x_inputs cb))
      else begin
        (* Every input must be non-controlling: any dead-ended input kills
          the gate, so only path choice varies — hardest first. *)
        if Array.exists (fun f -> Logic.equal g.(f) c) fanins then None
        else
          first_of
            (List.map (fun (_, f) -> (fr, f, Logic.bnot c))
               (List.rev (x_inputs (not cb))))
      end
    | Gate.Xor | Gate.Xnor ->
      let core = if Gate.inversion node.Circuit.kind then Logic.bnot v else v in
      let acc = ref Logic.Zero in
      let xs = ref [] in
      Array.iter
        (fun f ->
          if Logic.equal g.(f) Logic.X then begin
            let cost =
              min (Netlist.Scoap.cc e.scoap ~n:f ~v:false)
                (Netlist.Scoap.cc e.scoap ~n:f ~v:true)
            in
            xs := (cost, f) :: !xs
          end
          else acc := Logic.bxor !acc g.(f))
        fanins;
      (* Other unknown inputs are approximated as 0; simulation and the
         solver's backtracking correct any optimism. *)
      let needed = Logic.bxor core !acc in
      first_of
        (List.map (fun (_, f) -> (fr, f, needed)) (List.sort compare (List.rev !xs)))
    | Gate.Mux ->
      let s = fanins.(0) and a = fanins.(1) and b = fanins.(2) in
      (match g.(s) with
       | Logic.Zero -> go fr a v
       | Logic.One -> go fr b v
       | Logic.X ->
         let cands =
           (if Logic.equal g.(a) v then [ (fr, s, Logic.Zero) ] else [])
           @ (if Logic.equal g.(b) v then [ (fr, s, Logic.One) ] else [])
           @ (if Logic.equal g.(a) Logic.X then [ (fr, a, v) ] else [])
           @ (if Logic.equal g.(b) Logic.X then [ (fr, b, v) ] else [])
         in
         first_of cands)
  in
  go fr0 nd0 v0

let set_var e fr var v =
  let ninputs = Array.length e.inputs in
  if var < ninputs then e.asg_pi.(fr).(var) <- v else e.asg_ppi.(var - ninputs) <- v;
  if fr < e.dirty then e.dirty <- fr

let run model ~fault ~depth ~start ~backtrack_limit ?(fixed_inputs = [])
    ?(observe_ffs = false) ?stats ?(budget = Obs.Budget.unlimited) () =
  let c = model.Model.circuit in
  let nodes = Circuit.node_count c in
  let inputs = Circuit.inputs c in
  let dffs = Circuit.dffs c in
  let ninputs = Array.length inputs and nff = Array.length dffs in
  let input_index = Array.make nodes (-1) in
  Array.iteri (fun i id -> input_index.(id) <- i) inputs;
  let dff_index = Array.make nodes (-1) in
  Array.iteri (fun k id -> dff_index.(id) <- k) dffs;
  let free_state, good0, faulty0 =
    match start with
    | Free_state -> true, Array.make nff Logic.X, Array.make nff Logic.X
    | From_state { good; faulty } -> false, good, faulty
  in
  let e =
    {
      circuit = c;
      order = model.Model.levelize.Levelize.order;
      level = model.Model.levelize.Levelize.level;
      scoap = model.Model.scoap;
      inputs;
      outputs = Circuit.outputs c;
      dffs;
      dff_fanin = Array.map (fun ff -> (Circuit.node c ff).Circuit.fanins.(0)) dffs;
      depth;
      fault_node = model.Model.fault_node.(fault);
      stuck = Logic.of_bool model.Model.fault_stuck.(fault);
      free_state;
      good0;
      faulty0;
      asg_pi = Array.init depth (fun _ -> Array.make ninputs Logic.X);
      asg_ppi = Array.make nff Logic.X;
      gval = Array.init depth (fun _ -> Array.make nodes Logic.X);
      fval = Array.init depth (fun _ -> Array.make nodes Logic.X);
      input_index;
      dff_index;
      dirty = 0;
    }
  in
  List.iter
    (fun (pos, v) ->
      for fr = 0 to depth - 1 do
        e.asg_pi.(fr).(pos) <- v
      done)
    fixed_inputs;
  simulate e;
  let decisions = Stack.create () in
  let ndecisions = ref 0 in
  let backtracks = ref 0 in
  let max_steps = 50 * (depth * ninputs + nff + 1) * (backtrack_limit + 1) in
  let steps = ref 0 in
  let success s =
    let fr =
      match s with
      | At_po fr -> fr
      | At_ff (fr, _) -> fr
    in
    let vectors = Array.init (fr + 1) (fun i -> Array.copy e.asg_pi.(i)) in
    let required_state = if free_state then Some (Array.copy e.asg_ppi) else None in
    match s with
    | At_po _ -> Detected { vectors; required_state }
    | At_ff (_, dff) -> Latched { vectors; required_state; dff }
  in
  (* Undo decisions until one can be flipped; [true] when the search should
     continue, [false] when the space is exhausted. *)
  let rec backtrack () =
    if Stack.is_empty decisions then false
    else begin
      let fr, var, v, flipped = Stack.pop decisions in
      if flipped then begin
        set_var e fr var Logic.X;
        backtrack ()
      end
      else begin
        let v' = Logic.bnot v in
        set_var e fr var v';
        Stack.push (fr, var, v', true) decisions;
        incr backtracks;
        simulate e;
        true
      end
    end
  in
  (* Every decision step is a safe point: on a tripped budget the search
     abandons the fault exactly as if its backtrack budget ran out. *)
  let rec solve () =
    incr steps;
    if
      !backtracks > backtrack_limit || !steps > max_steps
      || not (Obs.Budget.check budget)
    then Aborted
    else
      match find_success e ~observe_ffs with
      | Some s -> success s
      | None ->
        (* Try each candidate objective until one backtraces to an
           unassigned decision variable. *)
        let rec try_objectives = function
          | [] -> if backtrack () then solve () else Exhausted
          | obj :: rest ->
            (match backtrace e obj with
             | None -> try_objectives rest
             | Some (fr, var, v) ->
               Stack.push (fr, var, v, false) decisions;
               incr ndecisions;
               set_var e fr var v;
               simulate e;
               solve ())
        in
        try_objectives (objectives e)
  in
  let outcome = solve () in
  Obs.Budget.add_backtracks budget !backtracks;
  (match stats with
   | None -> ()
   | Some s ->
     s.calls <- s.calls + 1;
     s.decisions <- s.decisions + !ndecisions;
     s.backtracks <- s.backtracks + !backtracks);
  outcome
