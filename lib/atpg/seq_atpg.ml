module Levelize = Netlist.Levelize
module Model = Faultmodel.Model

type config = {
  depths : int list;
  backtrack_limit : int;
}

let default_config = { depths = [ 1; 2; 3; 5; 8 ]; backtrack_limit = 120 }

let config_for c =
  let lv = Levelize.of_circuit c in
  let deep = 8 + (lv.Levelize.depth / 8) in
  { default_config with depths = [ 1; 2; 3; 5; deep ] }

let note_abort = function
  | None -> ()
  | Some r -> r := true

let search model cfg ~fault ~start ~observe_ffs ~fixed_inputs ?stats
    ?(budget = Obs.Budget.unlimited) ?aborted () =
  let rec go = function
    | [] -> None
    | depth :: rest ->
      (match
         Podem.run model ~fault ~depth ~start ~backtrack_limit:cfg.backtrack_limit
           ~fixed_inputs ~observe_ffs ?stats ~budget ()
       with
       | Podem.Detected { vectors; required_state } -> Some (`Detected (vectors, required_state))
       | Podem.Latched { vectors; required_state; dff } ->
         Some (`Latched (vectors, required_state, dff))
       | Podem.Aborted ->
         note_abort aborted;
         if Obs.Budget.check budget then go rest else None
       | Podem.Exhausted -> go rest)
  in
  go cfg.depths

let detect model cfg ~fault ~good ~faulty ?stats ?budget ?aborted () =
  match
    search model cfg ~fault
      ~start:(Podem.From_state { good; faulty })
      ~observe_ffs:false ~fixed_inputs:[] ?stats ?budget ?aborted ()
  with
  | Some (`Detected (vectors, _)) -> Some vectors
  | Some (`Latched _) -> None
  | None -> None

let detect_latch model cfg ~fault ~good ~faulty ?stats ?budget ?aborted () =
  match
    search model cfg ~fault
      ~start:(Podem.From_state { good; faulty })
      ~observe_ffs:true ~fixed_inputs:[] ?stats ?budget ?aborted ()
  with
  | Some (`Detected (vectors, _)) -> Some (`Detected vectors)
  | Some (`Latched (vectors, _, dff)) -> Some (`Latched (vectors, dff))
  | None -> None

let detect_free model cfg ~fault ?(fixed_inputs = []) ?stats ?budget ?aborted () =
  match
    search model cfg ~fault ~start:Podem.Free_state ~observe_ffs:false
      ~fixed_inputs ?stats ?budget ?aborted ()
  with
  | Some (`Detected (vectors, Some state)) -> Some (state, vectors)
  | Some (`Detected (_, None)) | Some (`Latched _) | None -> None
