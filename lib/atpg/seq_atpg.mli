(** Sequential test generation driver.

    Iterative-deepening front-end over {!Podem}: a fault is attempted at
    each depth of [config.depths] in turn with a per-depth backtrack budget.
    [detect] continues a running sequence from a known state; [detect_free]
    is the scan-based ("second approach") mode with a controllable initial
    state; [detect_latch] accepts latching the fault effect into a flip-flop
    as success — the hook for the paper's Section-2 functional knowledge.

    All entry points accept a cooperative [budget] (default
    {!Obs.Budget.unlimited}), polled inside every PODEM call and between
    depths: a tripped budget ends the fault's attempt immediately.
    [aborted], when given, is set to [true] if any depth's search ran out
    of backtracks or budget — the caller's signal that the fault is worth
    re-queuing with an escalated limit rather than hopeless. *)

type config = {
  depths : int list;  (** frame counts tried in order, e.g. [\[1;2;3;5;8\]] *)
  backtrack_limit : int;  (** per (fault, depth) PODEM budget *)
}

val default_config : config

(** A config whose deepest attempt grows with the circuit ([2 + depth/8]
    extra frames), for state machines needing longer justification runs. *)
val config_for : Netlist.Circuit.t -> config

(** [detect model cfg ~fault ~good ~faulty] searches for a subsequence
    detecting [fault] at a primary output when started from the given
    good/faulty machine states.  Vectors may contain [X]. *)
val detect :
  Faultmodel.Model.t ->
  config ->
  fault:int ->
  good:Netlist.Logic.t array ->
  faulty:Netlist.Logic.t array ->
  ?stats:Podem.stats ->
  ?budget:Obs.Budget.t ->
  ?aborted:bool ref ->
  unit ->
  Logicsim.Vectors.t option

(** Like {!detect} but also succeeds when the fault effect gets latched into
    a flip-flop; returns the flip-flop index alongside the vectors. *)
val detect_latch :
  Faultmodel.Model.t ->
  config ->
  fault:int ->
  good:Netlist.Logic.t array ->
  faulty:Netlist.Logic.t array ->
  ?stats:Podem.stats ->
  ?budget:Obs.Budget.t ->
  ?aborted:bool ref ->
  unit ->
  [ `Detected of Logicsim.Vectors.t | `Latched of Logicsim.Vectors.t * int ] option

(** [detect_free model cfg ~fault ~fixed_inputs] searches with a free
    initial state, returning the required state ([X] = don't-care) and the
    vectors. *)
val detect_free :
  Faultmodel.Model.t ->
  config ->
  fault:int ->
  ?fixed_inputs:(int * Netlist.Logic.t) list ->
  ?stats:Podem.stats ->
  ?budget:Obs.Budget.t ->
  ?aborted:bool ref ->
  unit ->
  (Netlist.Logic.t array * Logicsim.Vectors.t) option
