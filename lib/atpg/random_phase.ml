module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim

type config = {
  burst : int;
  give_up : int;
  max_vectors : int;
  sel_one_percent : int;
}

let default_config =
  { burst = 32; give_up = 3; max_vectors = 1024; sel_one_percent = 25 }

let biased_vector cfg ~width ~scan_sel_position rng =
  let v = Logicsim.Vectors.random rng ~width in
  v.(scan_sel_position) <-
    Logic.of_bool (Prng.Rng.int rng 100 < cfg.sel_one_percent);
  v

let run ?(record = fun _ -> ()) ?(budget = Obs.Budget.unlimited) session model
    ~scan_sel_position ~rng cfg =
  let width = Circuit.input_count model.Model.circuit in
  let accepted = ref [] in
  let accepted_count = ref 0 in
  let fruitless = ref 0 in
  while
    !fruitless < cfg.give_up && !accepted_count < cfg.max_vectors
    && Obs.Budget.check budget
  do
    let burst =
      Array.init cfg.burst (fun _ -> biased_vector cfg ~width ~scan_sel_position rng)
    in
    let targets = Faultsim.undetected session in
    if Array.length targets = 0 then fruitless := cfg.give_up
    else begin
      (* Fork a probe from the live session; keep the burst only if it buys
         new detections. *)
      let probe =
        Faultsim.create
          ~good_state:(Faultsim.good_state session)
          ~faulty_states:(Faultsim.faulty_state session)
          model ~fault_ids:targets
      in
      Faultsim.advance probe burst;
      if Faultsim.detected_count probe > 0 then begin
        Faultsim.advance session burst;
        record burst;
        accepted := burst :: !accepted;
        accepted_count := !accepted_count + cfg.burst;
        fruitless := 0
      end
      else incr fruitless
    end
  done;
  Array.concat (List.rev !accepted)
