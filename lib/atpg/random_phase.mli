(** Randomized detection phase.

    Before deterministic ATPG, bursts of biased random vectors knock out the
    easy faults cheaply.  Each burst is first evaluated on a probe session
    forked from the running one; only bursts that detect at least one new
    fault are kept, so the phase cannot bloat the sequence with useless
    vectors.  The phase stops after [give_up] consecutive fruitless bursts
    or once [max_vectors] accepted vectors. *)

type config = {
  burst : int;  (** vectors per burst *)
  give_up : int;  (** consecutive fruitless bursts tolerated *)
  max_vectors : int;
  sel_one_percent : int;  (** probability (in %) that a vector shifts the chain *)
}

val default_config : config

(** [run session model ~scan_sel_position ~rng cfg] extends [session] with
    the accepted vectors and returns them.  [record] is called with each
    accepted burst right after it is advanced into [session] — checkpointing
    uses it to capture the exact advance-call boundaries, which the replay
    must reproduce for counter-identical resume.  [budget] is polled before
    every burst; a tripped budget ends the phase with what was accepted. *)
val run :
  ?record:(Logicsim.Vectors.t -> unit) ->
  ?budget:Obs.Budget.t ->
  Logicsim.Faultsim.t ->
  Faultmodel.Model.t ->
  scan_sel_position:int ->
  rng:Prng.Rng.t ->
  config ->
  Logicsim.Vectors.t
