module Json = Obs.Json

(* ------------------------------------------------------------ framing *)

let max_frame_default = 16 * 1024 * 1024

exception Frame_too_large of { announced : int; max : int }

type decoder = {
  max_frame : int;
  buf : Buffer.t;  (* reassembly buffer; consumed from the front *)
  mutable start : int;  (* offset of the next unread byte in [buf] *)
}

let decoder ?(max_frame = max_frame_default) () =
  { max_frame; buf = Buffer.create 4096; start = 0 }

let feed d bytes off len = Buffer.add_subbytes d.buf bytes off len

let available d = Buffer.length d.buf - d.start

let pending = available

(* Drop consumed bytes once they dominate the buffer, so a long-lived
   connection does not grow its buffer forever. *)
let compact_buf d =
  if d.start > 65536 && d.start > Buffer.length d.buf / 2 then begin
    let rest = Buffer.sub d.buf d.start (available d) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.start <- 0
  end

let peek_len d =
  let b i = Char.code (Buffer.nth d.buf (d.start + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let next d =
  if available d < 4 then None
  else begin
    let len = peek_len d in
    if len > d.max_frame then
      raise (Frame_too_large { announced = len; max = d.max_frame });
    if available d < 4 + len then None
    else begin
      let payload = Buffer.sub d.buf (d.start + 4) len in
      d.start <- d.start + 4 + len;
      compact_buf d;
      Some payload
    end
  end

let encode_frame payload =
  let len = String.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 b 4 len;
  Bytes.unsafe_to_string b

(* Short writes and EINTR are ordinary events on a socket (a signal
   lands, the peer drains slowly); both loop until the frame is fully
   on the wire. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    match Unix.write fd b !written (n - !written) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | k -> written := !written + k
  done

let write_frame fd payload = write_all fd (encode_frame payload)

(* Reads exact byte counts (header, then payload) so no bytes past the
   frame are ever consumed — with an internal scratch buffer, a second
   frame arriving in the same segment would be silently dropped between
   calls.  EINTR restarts the read: an interrupted syscall is not a
   protocol event. *)
let read_frame ?(max_frame = max_frame_default) fd =
  let rec fill b off len =
    if len = 0 then true
    else
      match Unix.read fd b off len with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill b off len
      | 0 -> false
      | n -> fill b (off + n) (len - n)
  in
  let hdr = Bytes.create 4 in
  let rec read_hdr () =
    match Unix.read fd hdr 0 4 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_hdr ()
    | n -> n
  in
  match read_hdr () with
  | 0 -> None
  | n ->
    if not (fill hdr n (4 - n)) then failwith "connection closed mid-frame";
    let b i = Char.code (Bytes.get hdr i) in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > max_frame then
      raise (Frame_too_large { announced = len; max = max_frame });
    let body = Bytes.create len in
    if not (fill body 0 len) then failwith "connection closed mid-frame";
    Some (Bytes.unsafe_to_string body)

(* ----------------------------------------------------------- requests *)

exception Bad_request of string

type circuit_src =
  | Catalog of string
  | Bench of string

type compute = {
  src : circuit_src;
  scale : Circuits.Profiles.scale;
  seed : int64;
  chains : int;
  sim_jobs : int;
  compact_jobs : int;
  deadline_s : float option;
  max_backtracks : int option;
}

type op =
  | Ping
  | Stats of { prom : bool }
  | Shutdown
  | Chaos of { spec : string option }
  | Generate of {
      c : compute;
      compact : bool;
      return_sequence : bool;
    }
  | Compact of {
      c : compute;
      sequence : string list;
    }
  | Table of { c : compute }

type request = {
  id : int;
  op : op;
}

let op_name = function
  | Ping -> "ping"
  | Stats _ -> "stats"
  | Shutdown -> "shutdown"
  | Chaos _ -> "chaos"
  | Generate _ -> "generate"
  | Compact _ -> "compact"
  | Table _ -> "table"

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

let field_int j name default =
  match Json.member name j with
  | None -> default
  | Some v -> (
    match Json.get_int v with
    | Some i -> i
    | None -> bad "field %S must be an integer" name)

let field_bool j name default =
  match Json.member name j with
  | None -> default
  | Some v -> (
    match Json.get_bool v with
    | Some b -> b
    | None -> bad "field %S must be a boolean" name)

let field_float_opt j name =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.get_float v with
    | Some f when Float.is_finite f -> Some f
    | _ -> bad "field %S must be a finite number" name)

let field_int_opt j name =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.get_int v with
    | Some i -> Some i
    | None -> bad "field %S must be an integer" name)

let compute_of_json j =
  let src =
    match Json.member "circuit" j, Json.member "bench" j with
    | Some v, None -> (
      match Json.get_str v with
      | Some name -> Catalog name
      | None -> bad "field \"circuit\" must be a string")
    | None, Some v -> (
      match Json.get_str v with
      | Some text -> Bench text
      | None -> bad "field \"bench\" must be a string")
    | Some _, Some _ -> bad "give either \"circuit\" or \"bench\", not both"
    | None, None -> bad "missing \"circuit\" name or inline \"bench\" text"
  in
  let scale =
    match Json.member "scale" j with
    | None -> Circuits.Profiles.Quick
    | Some (Json.Str "quick") -> Circuits.Profiles.Quick
    | Some (Json.Str "full") -> Circuits.Profiles.Full
    | Some _ -> bad "field \"scale\" must be \"quick\" or \"full\""
  in
  {
    src;
    scale;
    seed = Int64.of_int (field_int j "seed" 0xC0FFEE5EED);
    chains = field_int j "chains" 1;
    sim_jobs = max 1 (field_int j "sim_jobs" 1);
    compact_jobs = max 1 (field_int j "compact_jobs" 1);
    deadline_s = field_float_opt j "deadline_s";
    max_backtracks = field_int_opt j "max_backtracks";
  }

let request_of_string payload =
  let j =
    try Json.parse payload with
    | Json.Parse_error { pos; message } ->
      bad "invalid JSON at byte %d: %s" pos message
  in
  let id = field_int j "id" 0 in
  let op =
    match Json.member "op" j with
    | None -> bad "missing \"op\""
    | Some v -> (
      match Json.get_str v with
      | None -> bad "field \"op\" must be a string"
      | Some "ping" -> Ping
      | Some "stats" ->
        let prom =
          match Json.member "format" j with
          | None | Some (Json.Str "json") -> false
          | Some (Json.Str "prometheus") -> true
          | Some _ -> bad "field \"format\" must be \"json\" or \"prometheus\""
        in
        Stats { prom }
      | Some "shutdown" -> Shutdown
      | Some "chaos" ->
        let spec =
          match Json.member "spec" j with
          | None | Some Json.Null -> None
          | Some v -> (
            match Json.get_str v with
            | Some s -> Some s
            | None -> bad "field \"spec\" must be a string")
        in
        Chaos { spec }
      | Some "generate" ->
        Generate
          {
            c = compute_of_json j;
            compact = field_bool j "compact" true;
            return_sequence = field_bool j "sequence" true;
          }
      | Some "compact" ->
        let sequence =
          match Json.member "vectors" j with
          | None -> bad "compact needs a \"vectors\" array of 01x strings"
          | Some v -> (
            match Json.get_arr v with
            | None -> bad "field \"vectors\" must be an array"
            | Some xs ->
              List.map
                (fun x ->
                  match Json.get_str x with
                  | Some s -> s
                  | None -> bad "\"vectors\" entries must be strings")
                xs)
        in
        Compact { c = compute_of_json j; sequence }
      | Some "table" -> Table { c = compute_of_json j }
      | Some other -> bad "unknown op %S" other)
  in
  { id; op }

(* ----------------------------------------------- canonical rendering *)

(* Re-render a parsed request as the canonical wire form: [id] first,
   [op] second, every compute field explicit (parser defaults applied),
   object keys in a fixed order.  The rendering round-trips:
   [request_of_string (canonical_of_request r)] parses to [r] (with the
   given id), which is what lets the router forward the canonical form
   to a shard in place of the client's original bytes.

   [drop_jobs] omits [sim_jobs]/[compact_jobs] — the two knobs the PR 5
   purity contract proves payload-invisible — so two requests differing
   only in parallelism share one result-cache key. *)
let compute_fields ?(drop_jobs = false) (c : compute) =
  (match c.src with
   | Catalog name -> [ "circuit", Json.Str name ]
   | Bench text -> [ "bench", Json.Str text ])
  @ [
      ( "scale",
        Json.Str
          (match c.scale with
           | Circuits.Profiles.Quick -> "quick"
           | Circuits.Profiles.Full -> "full") );
      "seed", Json.Int (Int64.to_int c.seed);
      "chains", Json.Int c.chains;
    ]
  @ (if drop_jobs then []
     else
       [ "sim_jobs", Json.Int c.sim_jobs;
         "compact_jobs", Json.Int c.compact_jobs ])
  @ (match c.deadline_s with
     | None -> []
     | Some d -> [ "deadline_s", Json.Float d ])
  @ (match c.max_backtracks with
     | None -> []
     | Some n -> [ "max_backtracks", Json.Int n ])

let canonical_of_request ?(id = 0) ?drop_jobs (req : request) =
  let base = [ "id", Json.Int id; "op", Json.Str (op_name req.op) ] in
  let rest =
    match req.op with
    | Ping | Shutdown -> []
    | Stats { prom } ->
      [ "format", Json.Str (if prom then "prometheus" else "json") ]
    | Chaos { spec } -> (
      match spec with None -> [] | Some s -> [ "spec", Json.Str s ])
    | Generate { c; compact; return_sequence } ->
      compute_fields ?drop_jobs c
      @ [ "compact", Json.Bool compact; "sequence", Json.Bool return_sequence ]
    | Compact { c; sequence } ->
      compute_fields ?drop_jobs c
      @ [ "vectors", Json.Arr (List.map (fun v -> Json.Str v) sequence) ]
    | Table { c } -> compute_fields ?drop_jobs c
  in
  Json.to_string (Json.Obj (base @ rest))

(* ---------------------------------------------------------- responses *)

let error_response ~id kind message =
  Json.to_string
    (Json.Obj
       [ "id", Json.Int id; "status", Json.Str kind;
         "error", Json.Str message ])
