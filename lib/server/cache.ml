type compiled = {
  circuit : Netlist.Circuit.t;
  scan : Scanins.Scan.t;
  model : Faultmodel.Model.t;
  sk : Atpg.Scan_knowledge.t;
}

type entry = {
  key : string;
  hash : int64;
  compiled : compiled;
}

type t = {
  capacity : int;
  mu : Mutex.t;
  mutable entries : entry list;  (* most recently used first *)
}

let create ~capacity = { capacity = max 1 capacity; mu = Mutex.create (); entries = [] }

let capacity t = t.capacity

let length t =
  Mutex.lock t.mu;
  let n = List.length t.entries in
  Mutex.unlock t.mu;
  n

let fnv1a64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let key_of src ~scale ~chains =
  let scale_tag =
    match scale with
    | Circuits.Profiles.Quick -> "quick"
    | Circuits.Profiles.Full -> "full"
  in
  match src with
  | Protocol.Catalog name ->
    Printf.sprintf "catalog/%s/%s/chains=%d" name scale_tag chains
  | Protocol.Bench text ->
    (* Content addressing: the key embeds the netlist text itself, so the
       hash covers every byte; the scale tag is irrelevant for explicit
       netlists. *)
    Printf.sprintf "bench/chains=%d\x00%s" chains text

let find_or_compile t ~key ~compile =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      match List.find_opt (fun e -> e.key = key) t.entries with
      | Some e ->
        (* bump to front *)
        t.entries <- e :: List.filter (fun e' -> e' != e) t.entries;
        e, `Hit
      | None ->
        let compiled = compile () in
        let e = { key; hash = fnv1a64 key; compiled } in
        let kept =
          if List.length t.entries >= t.capacity then
            List.filteri (fun i _ -> i < t.capacity - 1) t.entries
          else t.entries
        in
        t.entries <- e :: kept;
        e, `Miss)
