(** Request execution against the shared circuit cache.

    One service instance is shared by every worker domain of a daemon.
    [execute] is safe to call concurrently: each request computes on its
    own metrics document (and its own fault-simulation sessions — the
    cached model is immutable after compile), and only the final merge
    into the shared metrics document takes the service lock.

    Determinism contract (mirrors the repo-wide convention, DESIGN.md
    §10): a compute response payload ([generate], [compact], [table],
    [ping]) is a pure function of the request — it carries no wall-clock
    readings, no cache-hit flags and no jobs-dependent counters (the
    [compaction.speculative.*] and [compaction.adaptive.*] families are
    filtered out), so replaying the same request yields byte-identical
    payloads at any [--server-jobs], any [--trial-pool] size, and across
    daemon restarts.  [stats] is the deliberate exception: it snapshots
    live server state and is excluded from byte-identity comparisons. *)

type t

(** [failpoint] (default {!Obs.Failpoint.null}) is the registry consulted
    by the [cache.compile] injection site and reconfigured by the [chaos]
    op; the daemon passes its live registry here. *)
val create :
  ?cache_capacity:int ->
  ?default_scale:Circuits.Profiles.scale ->
  ?failpoint:Obs.Failpoint.t ->
  unit ->
  t

val cache : t -> Cache.t

(** Per-request accounting of one {!execute} call, for the access log. *)
type meta = {
  status : string;  (** ok | degraded | error | internal_error *)
  op : string;
  circuit : string;  (** circuit name, or ["-"] for admin ops *)
  cache : string;  (** hit | miss | - *)
}

(** [execute t ~budget ?trace req] runs the request to completion and
    returns the response payload.  Never raises — malformed circuits,
    parse errors and internal failures all map to typed error payloads
    (unexpected exceptions to status [internal_error]) — with one
    deliberate exception: an injected {!Obs.Failpoint.Crashed} escapes,
    modelling a worker death for the daemon's containment layer.
    [trace] (default {!Obs.Trace.null}) receives the request's phase
    spans ([generate], [compact], the [flow.*] stages, …); the daemon
    passes a per-request collector here and folds it into its global one
    afterwards.  Trace spans never influence the response payload.
    [pool], when given, is the daemon-wide {!Compaction.Spec.Pool}
    supplying compaction's speculative trial domains — shared safely by
    concurrent [execute] calls, with byte-identical results. *)
val execute :
  ?pool:Compaction.Spec.Pool.t ->
  t -> budget:Obs.Budget.t -> ?trace:Obs.Trace.t -> Protocol.request ->
  string * meta

(** [bump t name n] adds to a shared server counter (thread-safe) — the
    daemon's [server.accepted] / [server.rejected] / [server.inflight]
    accounting. *)
val bump : t -> string -> int -> unit

(** [observe t name v] records one observation into the shared metrics
    histogram [name] (thread-safe) — the daemon's queue-wait / service /
    end-to-end latency accounting. *)
val observe : t -> string -> int -> unit

(** Snapshot of the shared metrics document (thread-safe copy). *)
val metrics_snapshot : t -> Obs.Metrics.t
