type conn = { fd : Unix.file_descr }

let sockaddr_of_addr = function
  | Daemon.Unix_sock path -> Unix.ADDR_UNIX path
  | Daemon.Tcp (host, port) ->
    Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let connect addr =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let domain =
    match addr with
    | Daemon.Unix_sock _ -> Unix.PF_UNIX
    | Daemon.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of_addr addr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()
let fd conn = conn.fd

let call conn payload =
  Protocol.write_frame conn.fd payload;
  match Protocol.read_frame conn.fd with
  | Some resp -> resp
  | None -> failwith "scanatpg batch: daemon closed the connection"

type outcome = {
  id : int;
  status : string;
  payload : string option;
}

let read_lines path =
  let ic =
    try open_in path
    with Sys_error msg -> failwith (Printf.sprintf "scanatpg batch: %s" msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line ->
          let acc = if String.trim line = "" then acc else line :: acc in
          go acc
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Normalise one input line into (id, payload): parse, keep an explicit
   integer id, otherwise stamp the 1-based line position. *)
let prepare idx line =
  let doc =
    try Obs.Json.parse line
    with Obs.Json.Parse_error { pos; message } ->
      failwith
        (Printf.sprintf "scanatpg batch: request %d: parse error at %d: %s"
           (idx + 1) pos message)
  in
  match doc with
  | Obs.Json.Obj fields -> (
    match Obs.Json.member "id" doc with
    | Some (Obs.Json.Int id) -> (id, Obs.Json.to_string doc)
    | _ ->
      let id = idx + 1 in
      let doc = Obs.Json.Obj (("id", Obs.Json.Int id) :: fields) in
      (id, Obs.Json.to_string doc))
  | _ ->
    failwith
      (Printf.sprintf "scanatpg batch: request %d is not a JSON object"
         (idx + 1))

let status_of_payload payload =
  match Obs.Json.parse payload with
  | exception Obs.Json.Parse_error _ -> "error"
  | doc -> (
    match Option.bind (Obs.Json.member "status" doc) Obs.Json.get_str with
    | Some s -> s
    | None -> "error")

let id_of_payload payload =
  match Obs.Json.parse payload with
  | exception Obs.Json.Parse_error _ -> None
  | doc -> Option.bind (Obs.Json.member "id" doc) Obs.Json.get_int

(* Deterministic backoff jitter: a fixed integer hash of the attempt
   number, so a retry schedule is reproducible run to run (no
   wall-clock or PRNG input). *)
let jitter_ms attempt = attempt * 0x9E3779B1 land 0x3F

(* One connection's worth of work: pipeline [todo], collect whatever
   responses come back into [got].  A reader domain collects while we
   are still writing, so a full socket buffer in either direction can
   never deadlock the pipeline.  Both sides absorb connection failure —
   a died connection just leaves requests unanswered for the caller's
   retry loop to replay. *)
let run_attempt conn todo got gmu =
  let expected = List.length todo in
  let reader =
    Domain.spawn (fun () ->
        let rec go n =
          if n >= expected then ()
          else
            match Protocol.read_frame conn.fd with
            | exception _ -> ()
            | None -> ()
            | Some payload ->
              (match id_of_payload payload with
              | Some id ->
                Mutex.lock gmu;
                Hashtbl.replace got id payload;
                Mutex.unlock gmu
              | None -> ());
              go (n + 1)
        in
        go 0)
  in
  (try
     List.iter (fun (_, payload) -> Protocol.write_frame conn.fd payload) todo;
     Unix.shutdown conn.fd Unix.SHUTDOWN_SEND
   with _ -> ());
  Domain.join reader

let run_batch ~addr ~input ?output ?(retries = 0) ?(backoff_ms = 100) () =
  let requests = List.mapi prepare (read_lines input) in
  let got = Hashtbl.create 64 in
  let gmu = Mutex.create () in
  let missing () =
    List.filter (fun (id, _) -> not (Hashtbl.mem got id)) requests
  in
  (* Reconnect-and-replay of unanswered requests only: a request that
     already has a response — any typed status, errors included — is
     final and never resent.  Replay is safe because compute payloads
     are pure functions of their requests (DESIGN.md §10), so a
     duplicate execution returns byte-identical bytes. *)
  let attempt = ref 0 in
  let finished = ref false in
  while not !finished do
    let todo = missing () in
    if todo = [] || !attempt > retries then finished := true
    else begin
      if !attempt > 0 then begin
        let scale = 1 lsl min (!attempt - 1) 16 in
        Unix.sleepf
          (float_of_int ((backoff_ms * scale) + jitter_ms !attempt) /. 1000.0)
      end;
      (match connect addr with
      | exception e when !attempt = 0 ->
        (* Nothing was ever sent: connection refusal is the caller's
           problem, not a retryable transport fault. *)
        raise e
      | exception _ -> ()
      | conn ->
        Fun.protect
          ~finally:(fun () -> close conn)
          (fun () -> run_attempt conn todo got gmu));
      incr attempt
    end
  done;
  let outcomes =
    List.map
      (fun (id, _) ->
        match Hashtbl.find_opt got id with
        | Some payload ->
          { id; status = status_of_payload payload; payload = Some payload }
        | None -> { id; status = "lost"; payload = None })
      requests
  in
  let rendered =
    String.concat ""
      (List.map
         (fun o ->
           match o.payload with
           | Some p -> p ^ "\n"
           | None ->
             Protocol.error_response ~id:o.id "lost"
               "no response before the daemon hung up"
             ^ "\n")
         outcomes)
  in
  (match output with
  | Some path -> Obs.Fileio.write_string path rendered
  | None -> print_string rendered);
  outcomes
