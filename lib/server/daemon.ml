type addr =
  | Unix_sock of string
  | Tcp of string * int

type config = {
  addr : addr;
  jobs : int;
  queue_depth : int;
  cache_capacity : int;
  default_scale : Circuits.Profiles.scale;
  access_log : string option;
  metrics_path : string option;
  drain_grace_s : float;
  install_signals : bool;
  verbose : bool;
}

let default_config addr =
  {
    addr;
    jobs = 1;
    queue_depth = 16;
    cache_capacity = 8;
    default_scale = Circuits.Profiles.Quick;
    access_log = None;
    metrics_path = None;
    drain_grace_s = 5.0;
    install_signals = true;
    verbose = false;
  }

(* Per-connection state.  [dec] and [eof] belong to the accept loop alone;
   [inflight] and [closed] are shared with workers and guarded by [wmu],
   which also serialises response writes so frames never interleave. *)
type conn = {
  fd : Unix.file_descr;
  peer : string;
  dec : Protocol.decoder;
  wmu : Mutex.t;
  mutable inflight : int;
  mutable eof : bool;
  mutable closed : bool;
}

type job = {
  conn : conn;
  req : Protocol.request;
  budget : Obs.Budget.t;
}

type state = {
  cfg : config;
  svc : Service.t;
  qmu : Mutex.t;
  qcv : Condition.t;
  queue : (int * job) Queue.t;  (* guarded by qmu *)
  mutable draining : bool;  (* guarded by qmu *)
  active : (int, Obs.Budget.t) Hashtbl.t;  (* guarded by qmu *)
  mutable serial : int;  (* guarded by qmu *)
  unfinished : int Atomic.t;
  drain_flag : bool Atomic.t;
  logmu : Mutex.t;
  log : Buffer.t;
}

let say st fmt =
  Printf.ksprintf
    (fun s -> if st.cfg.verbose then Printf.eprintf "scanatpg serve: %s\n%!" s)
    fmt

let log_line st ~id ~peer (meta : Service.meta) =
  let line =
    Obs.Json.to_string
      (Obs.Json.Obj
         [
           ("id", Obs.Json.Int id);
           ("op", Obs.Json.Str meta.Service.op);
           ("circuit", Obs.Json.Str meta.Service.circuit);
           ("status", Obs.Json.Str meta.Service.status);
           ("cache", Obs.Json.Str meta.Service.cache);
           ("peer", Obs.Json.Str peer);
         ])
  in
  Mutex.lock st.logmu;
  Buffer.add_string st.log line;
  Buffer.add_char st.log '\n';
  Mutex.unlock st.logmu

let close_conn_locked conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Write one response frame; a dead peer (EPIPE, reset, send timeout)
   poisons the connection but never the daemon. *)
let send _st conn payload =
  Mutex.lock conn.wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmu)
    (fun () ->
      if not conn.closed then
        try Protocol.write_frame conn.fd payload
        with _ -> close_conn_locked conn)

(* One compute response fully delivered (or its connection is gone). *)
let finish_one st serial conn =
  Mutex.lock st.qmu;
  Hashtbl.remove st.active serial;
  Mutex.unlock st.qmu;
  Service.bump st.svc "server.inflight" (-1);
  Mutex.lock conn.wmu;
  conn.inflight <- conn.inflight - 1;
  if conn.eof && conn.inflight = 0 then close_conn_locked conn;
  Mutex.unlock conn.wmu;
  ignore (Atomic.fetch_and_add st.unfinished (-1))

let worker st =
  let rec loop () =
    Mutex.lock st.qmu;
    while Queue.is_empty st.queue && not st.draining do
      Condition.wait st.qcv st.qmu
    done;
    if Queue.is_empty st.queue then Mutex.unlock st.qmu
    else begin
      let serial, job = Queue.pop st.queue in
      Mutex.unlock st.qmu;
      let payload, meta = Service.execute st.svc ~budget:job.budget job.req in
      send st job.conn payload;
      log_line st ~id:job.req.Protocol.id ~peer:job.conn.peer meta;
      finish_one st serial job.conn;
      loop ()
    end
  in
  loop ()

let compute_of_op = function
  | Protocol.Generate { c; _ } | Protocol.Compact { c; _ } | Protocol.Table { c }
    ->
    Some c
  | Protocol.Ping | Protocol.Stats | Protocol.Shutdown -> None

let circuit_label (c : Protocol.compute) =
  match c.Protocol.src with
  | Protocol.Catalog name -> name
  | Protocol.Bench _ -> "bench"

let request_drain st =
  Mutex.lock st.qmu;
  st.draining <- true;
  Condition.broadcast st.qcv;
  Mutex.unlock st.qmu;
  Atomic.set st.drain_flag true

(* A malformed request must still be answered under the sender's id
   whenever the payload parses as a JSON object with an integer [id] —
   otherwise a pipelining client cannot correlate the failure and
   reports the request as lost. *)
let salvage_id payload =
  match Obs.Json.parse payload with
  | exception Obs.Json.Parse_error _ -> 0
  | j -> (
    match Option.bind (Obs.Json.member "id" j) Obs.Json.get_int with
    | Some id -> id
    | None -> 0)

let handle_payload st conn payload =
  match Protocol.request_of_string payload with
  | exception Protocol.Bad_request msg ->
    let id = salvage_id payload in
    Service.bump st.svc "server.bad_request" 1;
    send st conn (Protocol.error_response ~id "error" msg);
    log_line st ~id ~peer:conn.peer
      { Service.status = "error"; op = "?"; circuit = "-"; cache = "-" }
  | req -> (
    match compute_of_op req.Protocol.op with
    | None ->
      (* Admin ops answer inline: they must stay responsive while every
         worker is busy, and shutdown must not queue behind the very work
         it is asked to drain. *)
      Service.bump st.svc "server.accepted" 1;
      let resp, meta =
        Service.execute st.svc ~budget:(Obs.Budget.create ()) req
      in
      send st conn resp;
      log_line st ~id:req.Protocol.id ~peer:conn.peer meta;
      if req.Protocol.op = Protocol.Shutdown then begin
        say st "shutdown requested by %s" conn.peer;
        request_drain st
      end
    | Some c ->
      Mutex.lock st.qmu;
      let reject reason =
        Mutex.unlock st.qmu;
        Service.bump st.svc "server.rejected" 1;
        send st conn (Protocol.error_response ~id:req.Protocol.id "overloaded" reason);
        log_line st ~id:req.Protocol.id ~peer:conn.peer
          {
            Service.status = "overloaded";
            op = Protocol.op_name req.Protocol.op;
            circuit = circuit_label c;
            cache = "-";
          }
      in
      if st.draining then reject "daemon is draining"
      else if Queue.length st.queue >= st.cfg.queue_depth then
        reject "request queue is full"
      else begin
        let budget =
          Obs.Budget.create ?deadline_s:c.Protocol.deadline_s
            ?max_backtracks:c.Protocol.max_backtracks ()
        in
        let serial = st.serial in
        st.serial <- serial + 1;
        Hashtbl.replace st.active serial budget;
        ignore (Atomic.fetch_and_add st.unfinished 1);
        Queue.push (serial, { conn; req; budget }) st.queue;
        Mutex.unlock st.qmu;
        Service.bump st.svc "server.accepted" 1;
        Service.bump st.svc "server.inflight" 1;
        Mutex.lock conn.wmu;
        conn.inflight <- conn.inflight + 1;
        Mutex.unlock conn.wmu;
        Condition.signal st.qcv
      end)

let mark_eof st conn =
  conn.eof <- true;
  Mutex.lock conn.wmu;
  if conn.inflight = 0 then close_conn_locked conn;
  Mutex.unlock conn.wmu;
  ignore st

let handle_readable st conn buf =
  let n =
    try Unix.read conn.fd buf 0 (Bytes.length buf) with
    | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      -1
  in
  if n = 0 then mark_eof st conn
  else if n > 0 then begin
    Protocol.feed conn.dec buf 0 n;
    let rec frames () =
      match Protocol.next conn.dec with
      | exception Protocol.Frame_too_large { announced; max } ->
        (* The stream cannot be resynchronised past a bogus length
           prefix; answer with a typed error, then hang up. *)
        Service.bump st.svc "server.bad_request" 1;
        send st conn
          (Protocol.error_response ~id:0 "error"
             (Printf.sprintf "frame of %d bytes exceeds maximum %d" announced
                max));
        Mutex.lock conn.wmu;
        close_conn_locked conn;
        Mutex.unlock conn.wmu
      | Some payload ->
        handle_payload st conn payload;
        frames ()
      | None -> ()
    in
    frames ()
  end

let listen_socket = function
  | Unix_sock path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.listen fd 64;
    fd

let peer_of_sockaddr = function
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let addr_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let conn_alive conn =
  Mutex.lock conn.wmu;
  let alive = not conn.closed in
  Mutex.unlock conn.wmu;
  alive

let drain st conns listen_fd workers =
  Mutex.lock st.qmu;
  st.draining <- true;
  Condition.broadcast st.qcv;
  Mutex.unlock st.qmu;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  say st "draining: %d request(s) in flight, grace %.1fs"
    (Atomic.get st.unfinished) st.cfg.drain_grace_s;
  let deadline = Unix.gettimeofday () +. st.cfg.drain_grace_s in
  let tripped = ref false in
  while Atomic.get st.unfinished > 0 do
    if (not !tripped) && Unix.gettimeofday () >= deadline then begin
      tripped := true;
      Mutex.lock st.qmu;
      let n = Hashtbl.length st.active in
      Hashtbl.iter (fun _ b -> Obs.Budget.trip b Obs.Budget.Deadline) st.active;
      Mutex.unlock st.qmu;
      say st "grace elapsed: tripped %d in-flight budget(s)" n
    end;
    Unix.sleepf 0.02
  done;
  List.iter Domain.join workers;
  List.iter
    (fun conn ->
      Mutex.lock conn.wmu;
      close_conn_locked conn;
      Mutex.unlock conn.wmu)
    conns;
  (match st.cfg.access_log with
  | None -> ()
  | Some path ->
    Mutex.lock st.logmu;
    let contents = Buffer.contents st.log in
    Mutex.unlock st.logmu;
    Obs.Fileio.write_string path contents);
  (match st.cfg.metrics_path with
  | None -> ()
  | Some path -> Obs.Metrics.write_file (Service.metrics_snapshot st.svc) path);
  (match st.cfg.addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  say st "drained";
  0

let run cfg =
  let st =
    {
      cfg;
      svc =
        Service.create ~cache_capacity:cfg.cache_capacity
          ~default_scale:cfg.default_scale ();
      qmu = Mutex.create ();
      qcv = Condition.create ();
      queue = Queue.create ();
      draining = false;
      active = Hashtbl.create 16;
      serial = 0;
      unfinished = Atomic.make 0;
      drain_flag = Atomic.make false;
      logmu = Mutex.create ();
      log = Buffer.create 4096;
    }
  in
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  if cfg.install_signals then begin
    let h = Sys.Signal_handle (fun _ -> Atomic.set st.drain_flag true) in
    ignore (Sys.signal Sys.sigterm h);
    ignore (Sys.signal Sys.sigint h)
  end;
  let listen_fd = listen_socket cfg.addr in
  let workers = List.init cfg.jobs (fun _ -> Domain.spawn (fun () -> worker st)) in
  say st "listening on %s (%d worker%s, queue depth %d)"
    (addr_to_string cfg.addr) cfg.jobs
    (if cfg.jobs = 1 then "" else "s")
    cfg.queue_depth;
  let buf = Bytes.create 65536 in
  let rec loop conns =
    if Atomic.get st.drain_flag then conns
    else begin
      let conns = List.filter conn_alive conns in
      let rfds =
        List.filter_map (fun c -> if c.eof then None else Some c.fd) conns
      in
      match Unix.select (listen_fd :: rfds) [] [] 0.1 with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) ->
        loop conns
      | ready, _, _ ->
        let conns =
          if List.mem listen_fd ready then (
            match Unix.accept listen_fd with
            | exception Unix.Unix_error _ -> conns
            | fd, sa ->
              (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.0
               with Unix.Unix_error _ -> ());
              let conn =
                {
                  fd;
                  peer = peer_of_sockaddr sa;
                  dec = Protocol.decoder ();
                  wmu = Mutex.create ();
                  inflight = 0;
                  eof = false;
                  closed = false;
                }
              in
              say st "connection from %s" conn.peer;
              conn :: conns)
          else conns
        in
        List.iter
          (fun c ->
            if (not c.eof) && List.mem c.fd ready then handle_readable st c buf)
          conns;
        loop conns
    end
  in
  let conns = loop [] in
  drain st conns listen_fd workers
