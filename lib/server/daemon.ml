type addr =
  | Unix_sock of string
  | Tcp of string * int

type trace_format =
  | Jsonl
  | Chrome

type config = {
  addr : addr;
  jobs : int;
  trial_pool : int;
  queue_depth : int;
  cache_capacity : int;
  default_scale : Circuits.Profiles.scale;
  access_log : string option;
  metrics_path : string option;
  trace_path : string option;
  trace_format : trace_format;
  slow_ms : int option;
  drain_grace_s : float;
  idle_timeout_s : float option;
  read_deadline_s : float option;
  max_inflight : int;
  chaos : string option;
  install_signals : bool;
  verbose : bool;
}

let default_config addr =
  {
    addr;
    jobs = 1;
    trial_pool = 0;
    queue_depth = 16;
    cache_capacity = 8;
    default_scale = Circuits.Profiles.Quick;
    access_log = None;
    metrics_path = None;
    trace_path = None;
    trace_format = Jsonl;
    slow_ms = None;
    drain_grace_s = 5.0;
    idle_timeout_s = None;
    read_deadline_s = Some 30.0;
    max_inflight = 64;
    chaos = None;
    install_signals = true;
    verbose = false;
  }

(* Per-connection state.  [dec], [eof], [last_ns] and [partial_ns] belong
   to the accept loop alone; [inflight] and [closed] are shared with
   workers and guarded by [wmu], which also serialises response writes so
   frames never interleave. *)
type conn = {
  fd : Unix.file_descr;
  cid : int;  (* connection serial, for trace ids *)
  peer : string;
  dec : Protocol.decoder;
  wmu : Mutex.t;
  mutable reqs : int;  (* accept loop only: requests seen on this conn *)
  mutable inflight : int;
  mutable eof : bool;
  mutable closed : bool;
  mutable last_ns : int;  (* last byte received (idle-timeout clock) *)
  mutable partial_ns : int;  (* first byte of an incomplete frame, or 0 *)
}

type job = {
  conn : conn;
  req : Protocol.request;
  budget : Obs.Budget.t;
  trace_id : string;
  enq_ns : int;  (* Obs.Clock.now_ns at admission *)
  bytes_in : int;  (* request frame size (header + payload) *)
}

type state = {
  cfg : config;
  svc : Service.t;
  (* Daemon-wide speculative-trial pool ([--trial-pool]): every
     request's compaction rounds/waves draw evaluation domains from this
     one fixed set, so independent pipelined requests overlap their
     trials instead of each spawning per-round [compact_jobs] islands. *)
  pool : Compaction.Spec.Pool.t option;
  qmu : Mutex.t;
  qcv : Condition.t;
  queue : (int * job) Queue.t;  (* guarded by qmu *)
  mutable draining : bool;  (* guarded by qmu *)
  active : (int, Obs.Budget.t) Hashtbl.t;  (* guarded by qmu *)
  mutable serial : int;  (* guarded by qmu *)
  mutable next_cid : int;  (* accept loop only *)
  unfinished : int Atomic.t;
  drain_flag : bool Atomic.t;
  logmu : Mutex.t;
  log : out_channel option;  (* line-buffered; writes guarded by logmu *)
  trmu : Mutex.t;
  trace : Obs.Trace.t;  (* global collector; merges guarded by trmu *)
  fp : Obs.Failpoint.t;  (* chaos sites; reconfigurable via the chaos op *)
}

let say st fmt =
  Printf.ksprintf
    (fun s -> if st.cfg.verbose then Printf.eprintf "scanatpg serve: %s\n%!" s)
    fmt

(* One access-log line per request, written and flushed immediately so
   [tail -f] follows a live daemon.  The log is the one CLI-written file
   that bypasses {!Obs.Fileio}'s atomic temp+rename: a log that only
   appears at drain is useless for watching a server.  A slow request
   ([--slow-ms]) carries its full span tree in a [spans] field. *)
let log_line st ~id ~peer ~trace_id ?(queue_wait_ns = 0) ?(service_ns = 0)
    ?(bytes_in = 0) ?(bytes_out = 0) ?spans (meta : Service.meta) =
  match st.log with
  | None -> ()
  | Some oc ->
    let line =
      Obs.Json.to_string
        (Obs.Json.Obj
           ([
              ("id", Obs.Json.Int id);
              ("op", Obs.Json.Str meta.Service.op);
              ("circuit", Obs.Json.Str meta.Service.circuit);
              ("status", Obs.Json.Str meta.Service.status);
              ("cache", Obs.Json.Str meta.Service.cache);
              ("peer", Obs.Json.Str peer);
              ("trace_id", Obs.Json.Str trace_id);
              ("queue_wait_ns", Obs.Json.Int queue_wait_ns);
              ("service_ns", Obs.Json.Int service_ns);
              ("bytes_in", Obs.Json.Int bytes_in);
              ("bytes_out", Obs.Json.Int bytes_out);
            ]
           @ match spans with None -> [] | Some s -> [ ("spans", s) ]))
    in
    Mutex.lock st.logmu;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock st.logmu

let close_conn_locked conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Write one response frame; a dead peer (EPIPE, reset, send timeout) or
   an injected [writer] fault poisons the connection but never the
   daemon.  Every abort is counted under [server.conn_aborted] so the
   loss is visible without relying on writer-side EPIPE handling. *)
let send st conn payload =
  Mutex.lock conn.wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmu)
    (fun () ->
      if not conn.closed then
        try
          Obs.Failpoint.hit st.fp "writer";
          Protocol.write_frame conn.fd payload
        with _ ->
          Service.bump st.svc "server.conn_aborted" 1;
          close_conn_locked conn)

(* One compute response fully delivered (or its connection is gone). *)
let finish_one st serial conn =
  Mutex.lock st.qmu;
  Hashtbl.remove st.active serial;
  Mutex.unlock st.qmu;
  Service.bump st.svc "server.inflight" (-1);
  Mutex.lock conn.wmu;
  conn.inflight <- conn.inflight - 1;
  if conn.eof && conn.inflight = 0 then close_conn_locked conn;
  Mutex.unlock conn.wmu;
  ignore (Atomic.fetch_and_add st.unfinished (-1))

(* One compute job: latency accounting and per-request tracing around
   {!Service.execute}.  The per-request collector is single-domain (this
   worker alone touches it); it folds into the daemon's global collector
   under [trmu] once the response is on the wire — the same
   merge-at-phase-boundary discipline the counter records follow, so the
   traced hot path stays lock-free. *)
let run_job st serial job =
  let deq_ns = Obs.Clock.now_ns () in
  let queue_wait_ns = deq_ns - job.enq_ns in
  let rt =
    if Obs.Trace.enabled st.trace || st.cfg.slow_ms <> None then
      Obs.Trace.create ()
    else Obs.Trace.null
  in
  let payload, meta =
    Obs.Trace.with_span rt
      ~attrs:
        [ ("trace_id", job.trace_id);
          ("op", Protocol.op_name job.req.Protocol.op) ]
      "request"
      (fun () ->
        Obs.Failpoint.hit st.fp "worker";
        Service.execute ?pool:st.pool st.svc ~budget:job.budget ~trace:rt
          job.req)
  in
  let service_ns = Obs.Clock.now_ns () - deq_ns in
  send st job.conn payload;
  let e2e_ns = Obs.Clock.now_ns () - job.enq_ns in
  Service.observe st.svc "server.queue_wait_ns" queue_wait_ns;
  Service.observe st.svc "server.service_ns" service_ns;
  Service.observe st.svc ("server.service_ns." ^ meta.Service.op) service_ns;
  Service.observe st.svc "server.e2e_ns" e2e_ns;
  let slow =
    match st.cfg.slow_ms with
    | Some ms -> e2e_ns > ms * 1_000_000
    | None -> false
  in
  if slow then Service.bump st.svc "server.slow_requests" 1;
  log_line st ~id:job.req.Protocol.id ~peer:job.conn.peer
    ~trace_id:job.trace_id ~queue_wait_ns ~service_ns ~bytes_in:job.bytes_in
    ~bytes_out:(String.length payload + 4)
    ?spans:
      (if slow && Obs.Trace.enabled rt then Some (Obs.Trace.tree_json rt)
       else None)
    meta;
  if Obs.Trace.enabled st.trace then begin
    Mutex.lock st.trmu;
    Obs.Trace.merge_into ~src:rt ~dst:st.trace ();
    Mutex.unlock st.trmu
  end;
  finish_one st serial job.conn

(* Crash containment: an exception escaping a job — an injected crash, a
   bug in {!Service.execute}'s error mapping, a failed trace merge —
   becomes a typed [internal_error] response and a restarted worker
   loop, never a dead domain that would starve the queue and hang the
   drain.  The request's accounting is settled exactly once either way. *)
let contain st serial job e =
  let msg =
    match e with
    | Obs.Failpoint.Crashed site ->
      Printf.sprintf "worker crashed (injected at %s)" site
    | Obs.Failpoint.Injected site ->
      Printf.sprintf "injected fault at %s" site
    | e -> Printf.sprintf "worker crashed: %s" (Printexc.to_string e)
  in
  (match e with
  | Obs.Failpoint.Injected _ -> ()
  | _ -> Service.bump st.svc "server.worker_restarts" 1);
  Service.bump st.svc "server.internal_error" 1;
  send st job.conn
    (Protocol.error_response ~id:job.req.Protocol.id "internal_error" msg);
  log_line st ~id:job.req.Protocol.id ~peer:job.conn.peer
    ~trace_id:job.trace_id ~bytes_in:job.bytes_in
    {
      Service.status = "internal_error";
      op = Protocol.op_name job.req.Protocol.op;
      circuit = "-";
      cache = "-";
    };
  finish_one st serial job.conn

let worker st =
  let rec loop () =
    Mutex.lock st.qmu;
    while Queue.is_empty st.queue && not st.draining do
      Condition.wait st.qcv st.qmu
    done;
    if Queue.is_empty st.queue then Mutex.unlock st.qmu
    else begin
      let serial, job = Queue.pop st.queue in
      Mutex.unlock st.qmu;
      (try run_job st serial job with e -> contain st serial job e);
      loop ()
    end
  in
  loop ()

let compute_of_op = function
  | Protocol.Generate { c; _ } | Protocol.Compact { c; _ } | Protocol.Table { c }
    ->
    Some c
  | Protocol.Ping | Protocol.Stats _ | Protocol.Shutdown | Protocol.Chaos _ ->
    None

let circuit_label (c : Protocol.compute) =
  match c.Protocol.src with
  | Protocol.Catalog name -> name
  | Protocol.Bench _ -> "bench"

let request_drain st =
  Mutex.lock st.qmu;
  st.draining <- true;
  Condition.broadcast st.qcv;
  Mutex.unlock st.qmu;
  Atomic.set st.drain_flag true

(* A malformed request must still be answered under the sender's id
   whenever the payload parses as a JSON object with an integer [id] —
   otherwise a pipelining client cannot correlate the failure and
   reports the request as lost. *)
let salvage_id payload =
  match Obs.Json.parse payload with
  | exception Obs.Json.Parse_error _ -> 0
  | j -> (
    match Option.bind (Obs.Json.member "id" j) Obs.Json.get_int with
    | Some id -> id
    | None -> 0)

let handle_payload st conn payload =
  (* Trace ids are deterministic per connection: [c<cid>-r<n>] — every
     request on a connection shares the [c<cid>] prefix, and [n] counts
     requests in arrival order (the accept loop is the only writer). *)
  conn.reqs <- conn.reqs + 1;
  let trace_id = Printf.sprintf "c%d-r%d" conn.cid conn.reqs in
  let bytes_in = String.length payload + 4 in
  let enq_ns = Obs.Clock.now_ns () in
  match Protocol.request_of_string payload with
  | exception Protocol.Bad_request msg ->
    let id = salvage_id payload in
    Service.bump st.svc "server.bad_request" 1;
    let resp = Protocol.error_response ~id "error" msg in
    send st conn resp;
    log_line st ~id ~peer:conn.peer ~trace_id ~bytes_in
      ~bytes_out:(String.length resp + 4)
      { Service.status = "error"; op = "?"; circuit = "-"; cache = "-" }
  | req -> (
    match compute_of_op req.Protocol.op with
    | None ->
      (* Admin ops answer inline: they must stay responsive while every
         worker is busy, and shutdown must not queue behind the very work
         it is asked to drain.  They never wait in the queue, so their
         queue-wait is zero by construction. *)
      Service.bump st.svc "server.accepted" 1;
      let resp, meta =
        Service.execute st.svc ~budget:(Obs.Budget.create ()) req
      in
      send st conn resp;
      let service_ns = Obs.Clock.now_ns () - enq_ns in
      Service.observe st.svc "server.queue_wait_ns" 0;
      Service.observe st.svc "server.service_ns" service_ns;
      Service.observe st.svc ("server.service_ns." ^ meta.Service.op) service_ns;
      Service.observe st.svc "server.e2e_ns" service_ns;
      log_line st ~id:req.Protocol.id ~peer:conn.peer ~trace_id ~service_ns
        ~bytes_in ~bytes_out:(String.length resp + 4) meta;
      if req.Protocol.op = Protocol.Shutdown then begin
        say st "shutdown requested by %s" conn.peer;
        request_drain st
      end
    | Some c ->
      (* The queue site models a fault in the hand-off itself (admission
         raced a reconfiguration, a delayed signal, …): the request gets
         a typed [internal_error] and never reaches the queue, so its
         accounting needs no unwinding. *)
      let queue_fault =
        match Obs.Failpoint.hit st.fp "queue" with
        | () -> false
        | exception (Obs.Failpoint.Injected _ | Obs.Failpoint.Crashed _) ->
          true
      in
      if queue_fault then begin
        Service.bump st.svc "server.internal_error" 1;
        let resp =
          Protocol.error_response ~id:req.Protocol.id "internal_error"
            "injected fault at queue"
        in
        send st conn resp;
        log_line st ~id:req.Protocol.id ~peer:conn.peer ~trace_id ~bytes_in
          ~bytes_out:(String.length resp + 4)
          {
            Service.status = "internal_error";
            op = Protocol.op_name req.Protocol.op;
            circuit = circuit_label c;
            cache = "-";
          }
      end
      else begin
      let conn_inflight =
        Mutex.lock conn.wmu;
        let k = conn.inflight in
        Mutex.unlock conn.wmu;
        k
      in
      Mutex.lock st.qmu;
      let reject reason =
        Mutex.unlock st.qmu;
        Service.bump st.svc "server.rejected" 1;
        let resp =
          Protocol.error_response ~id:req.Protocol.id "overloaded" reason
        in
        send st conn resp;
        log_line st ~id:req.Protocol.id ~peer:conn.peer ~trace_id ~bytes_in
          ~bytes_out:(String.length resp + 4)
          {
            Service.status = "overloaded";
            op = Protocol.op_name req.Protocol.op;
            circuit = circuit_label c;
            cache = "-";
          }
      in
      if st.draining then reject "daemon is draining"
      else if conn_inflight >= st.cfg.max_inflight then
        (* Per-connection fairness: one pipelining client must not be
           able to claim the whole queue. *)
        reject "connection in-flight cap reached"
      else if Queue.length st.queue >= st.cfg.queue_depth then
        reject "request queue is full"
      else begin
        let budget =
          Obs.Budget.create ?deadline_s:c.Protocol.deadline_s
            ?max_backtracks:c.Protocol.max_backtracks ()
        in
        let serial = st.serial in
        st.serial <- serial + 1;
        Hashtbl.replace st.active serial budget;
        ignore (Atomic.fetch_and_add st.unfinished 1);
        Queue.push (serial, { conn; req; budget; trace_id; enq_ns; bytes_in })
          st.queue;
        Mutex.unlock st.qmu;
        Service.bump st.svc "server.accepted" 1;
        Service.bump st.svc "server.inflight" 1;
        Mutex.lock conn.wmu;
        conn.inflight <- conn.inflight + 1;
        Mutex.unlock conn.wmu;
        Condition.signal st.qcv
      end
      end)

let mark_eof st conn =
  conn.eof <- true;
  if Protocol.pending conn.dec > 0 then begin
    (* The peer hung up mid-frame: the buffered prefix can never become
       a request, so the loss is accounted rather than silently dropped. *)
    Service.bump st.svc "server.bad_request" 1;
    Service.bump st.svc "server.conn_aborted" 1
  end;
  Mutex.lock conn.wmu;
  if conn.inflight = 0 then close_conn_locked conn;
  Mutex.unlock conn.wmu

let handle_readable st conn buf =
  let n =
    try Unix.read conn.fd buf 0 (Bytes.length buf) with
    | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      -1
  in
  if n = 0 then mark_eof st conn
  else if n > 0 then begin
    conn.last_ns <- Obs.Clock.now_ns ();
    Protocol.feed conn.dec buf 0 n;
    let rec frames () =
      match Protocol.next conn.dec with
      | exception Protocol.Frame_too_large { announced; max } ->
        (* The stream cannot be resynchronised past a bogus length
           prefix; answer with a typed error (best effort — the sender
           may already be gone), then hang up. *)
        Service.bump st.svc "server.bad_request" 1;
        Service.bump st.svc "server.conn_aborted" 1;
        send st conn
          (Protocol.error_response ~id:0 "error"
             (Printf.sprintf "frame of %d bytes exceeds maximum %d" announced
                max));
        Mutex.lock conn.wmu;
        close_conn_locked conn;
        Mutex.unlock conn.wmu
      | Some payload ->
        handle_payload st conn payload;
        frames ()
      | None -> ()
    in
    frames ();
    (* Track how long an incomplete frame has been pending, for the
       read-deadline sweep (slowloris defence): [partial_ns] stamps the
       first byte of the current partial frame and clears once it
       completes. *)
    if Protocol.pending conn.dec > 0 then begin
      if conn.partial_ns = 0 then conn.partial_ns <- conn.last_ns
    end
    else conn.partial_ns <- 0
  end

(* Both listener and accepted fds are close-on-exec: a worker that
   shells out (or a future exec-based helper) must not hold the service
   port open past the daemon's own lifetime. *)
let listen_socket = function
  | Unix_sock path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.listen fd 64;
    fd

let peer_of_sockaddr = function
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let addr_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let conn_alive conn =
  Mutex.lock conn.wmu;
  let alive = not conn.closed in
  Mutex.unlock conn.wmu;
  alive

let drain st conns listen_fd workers =
  Mutex.lock st.qmu;
  st.draining <- true;
  Condition.broadcast st.qcv;
  Mutex.unlock st.qmu;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  say st "draining: %d request(s) in flight, grace %.1fs"
    (Atomic.get st.unfinished) st.cfg.drain_grace_s;
  let deadline = Unix.gettimeofday () +. st.cfg.drain_grace_s in
  let tripped = ref false in
  while Atomic.get st.unfinished > 0 do
    if (not !tripped) && Unix.gettimeofday () >= deadline then begin
      tripped := true;
      Mutex.lock st.qmu;
      let n = Hashtbl.length st.active in
      Hashtbl.iter (fun _ b -> Obs.Budget.trip b Obs.Budget.Deadline) st.active;
      Mutex.unlock st.qmu;
      say st "grace elapsed: tripped %d in-flight budget(s)" n
    end;
    Unix.sleepf 0.02
  done;
  List.iter Domain.join workers;
  List.iter
    (fun conn ->
      Mutex.lock conn.wmu;
      close_conn_locked conn;
      Mutex.unlock conn.wmu)
    conns;
  (match st.log with
  | None -> ()
  | Some oc ->
    Mutex.lock st.logmu;
    (try close_out oc with Sys_error _ -> ());
    Mutex.unlock st.logmu);
  (match st.cfg.metrics_path with
  | None -> ()
  | Some path -> Obs.Metrics.write_file (Service.metrics_snapshot st.svc) path);
  (match st.cfg.trace_path with
  | None -> ()
  | Some path -> (
    match st.cfg.trace_format with
    | Jsonl -> Obs.Trace.write_jsonl st.trace path
    | Chrome -> Obs.Trace.write_chrome st.trace path));
  (match st.cfg.addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  say st "drained";
  0

let run cfg =
  (* The daemon always carries a live registry — an empty one costs one
     atomic load per site — so the [chaos] op can arm sites at runtime
     even when the daemon started without [--chaos]. *)
  let fp = Obs.Failpoint.create () in
  (match cfg.chaos with
  | None -> ()
  | Some spec -> Obs.Failpoint.configure fp spec);
  let st =
    {
      cfg;
      svc =
        Service.create ~cache_capacity:cfg.cache_capacity
          ~default_scale:cfg.default_scale ~failpoint:fp ();
      pool =
        (if cfg.trial_pool > 0 then
           Some (Compaction.Spec.Pool.create ~size:cfg.trial_pool)
         else None);
      qmu = Mutex.create ();
      qcv = Condition.create ();
      queue = Queue.create ();
      draining = false;
      active = Hashtbl.create 16;
      serial = 0;
      next_cid = 0;
      unfinished = Atomic.make 0;
      drain_flag = Atomic.make false;
      logmu = Mutex.create ();
      log = Option.map open_out cfg.access_log;
      trmu = Mutex.create ();
      trace =
        (match cfg.trace_path with
         | Some _ -> Obs.Trace.create ()
         | None -> Obs.Trace.null);
      fp;
    }
  in
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  if cfg.install_signals then begin
    let h = Sys.Signal_handle (fun _ -> Atomic.set st.drain_flag true) in
    ignore (Sys.signal Sys.sigterm h);
    ignore (Sys.signal Sys.sigint h)
  end;
  let listen_fd = listen_socket cfg.addr in
  let workers = List.init cfg.jobs (fun _ -> Domain.spawn (fun () -> worker st)) in
  say st "listening on %s (%d worker%s, queue depth %d)"
    (addr_to_string cfg.addr) cfg.jobs
    (if cfg.jobs = 1 then "" else "s")
    cfg.queue_depth;
  let buf = Bytes.create 65536 in
  let rec loop conns =
    if Atomic.get st.drain_flag then conns
    else begin
      let conns = List.filter conn_alive conns in
      let rfds =
        List.filter_map (fun c -> if c.eof then None else Some c.fd) conns
      in
      match Unix.select (listen_fd :: rfds) [] [] 0.1 with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) ->
        loop conns
      | ready, _, _ ->
        let conns =
          if List.mem listen_fd ready then (
            match Unix.accept ~cloexec:true listen_fd with
            | exception Unix.Unix_error _ -> conns
            | fd, sa -> (
              match Obs.Failpoint.hit st.fp "accept" with
              | exception (Obs.Failpoint.Injected _ | Obs.Failpoint.Crashed _)
                ->
                (* An injected accept failure drops the connection on
                   the floor — to the peer it looks like a reset, which
                   is exactly what the retrying client must survive. *)
                Service.bump st.svc "server.conn_aborted" 1;
                (try Unix.close fd with Unix.Unix_error _ -> ());
                conns
              | () ->
                (match sa with
                | Unix.ADDR_INET _ -> (
                  try Unix.setsockopt fd Unix.SO_KEEPALIVE true
                  with Unix.Unix_error _ -> ())
                | Unix.ADDR_UNIX _ -> ());
                (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.0
                 with Unix.Unix_error _ -> ());
                st.next_cid <- st.next_cid + 1;
                let conn =
                  {
                    fd;
                    cid = st.next_cid;
                    peer = peer_of_sockaddr sa;
                    dec = Protocol.decoder ();
                    wmu = Mutex.create ();
                    reqs = 0;
                    inflight = 0;
                    eof = false;
                    closed = false;
                    last_ns = Obs.Clock.now_ns ();
                    partial_ns = 0;
                  }
                in
                say st "connection from %s" conn.peer;
                conn :: conns))
          else conns
        in
        List.iter
          (fun c ->
            if (not c.eof) && List.mem c.fd ready then handle_readable st c buf)
          conns;
        (* Deadline sweep, once per select tick (so granularity is the
           select timeout, 100ms): a connection stuck mid-frame past the
           read deadline is a slowloris and is cut; a connection with no
           traffic, no partial frame and nothing in flight past the idle
           timeout is reclaimed.  Reads of [closed]/[inflight] here are
           benignly racy — a miss is caught on the next tick. *)
        let now = Obs.Clock.now_ns () in
        List.iter
          (fun c ->
            if (not c.eof) && not c.closed then begin
              (match st.cfg.read_deadline_s with
              | Some d
                when c.partial_ns > 0
                     && now - c.partial_ns > int_of_float (d *. 1e9) ->
                Service.bump st.svc "server.bad_request" 1;
                Service.bump st.svc "server.conn_aborted" 1;
                say st "read deadline (%.1fs) exceeded by %s, closing" d c.peer;
                Mutex.lock c.wmu;
                close_conn_locked c;
                Mutex.unlock c.wmu
              | _ -> ());
              match st.cfg.idle_timeout_s with
              | Some d
                when (not c.closed)
                     && c.partial_ns = 0 && c.inflight = 0
                     && now - c.last_ns > int_of_float (d *. 1e9) ->
                Service.bump st.svc "server.conn_idle_closed" 1;
                say st "idle timeout (%.1fs) for %s, closing" d c.peer;
                Mutex.lock c.wmu;
                close_conn_locked c;
                Mutex.unlock c.wmu
              | _ -> ()
            end)
          conns;
        loop conns
    end
  in
  let conns = loop [] in
  let code = drain st conns listen_fd workers in
  (* Workers are joined by [drain], so no submission can still be in
     flight when the pool winds down. *)
  (match st.pool with
   | Some p -> Compaction.Spec.Pool.shutdown p
   | None -> ());
  code
