(** Wire protocol of the ATPG service daemon (DESIGN.md §11).

    Frames are length-prefixed: a 4-byte big-endian unsigned payload
    length followed by exactly that many bytes of UTF-8 JSON.  One frame
    carries one request or one response.  Responses reference their
    request's [id]; the daemon may answer out of order (workers finish
    when they finish), so clients must correlate by id, never by arrival
    position.

    The {!decoder} is a pure incremental byte-stream reassembler: feed it
    whatever chunks [read(2)] produced — one byte at a time, a frame and
    a half, three frames at once — and pull complete frames out.  That
    keeps the framing testable without sockets and makes short/split
    reads a non-event. *)

(** {1 Framing} *)

(** Hard ceiling a decoder enforces on the announced payload length
    (16 MiB) — a corrupt or hostile length prefix must not make the
    daemon allocate unboundedly. *)
val max_frame_default : int

exception Frame_too_large of { announced : int; max : int }

type decoder

val decoder : ?max_frame:int -> unit -> decoder

(** [feed d buf off len] appends bytes into the reassembly buffer. *)
val feed : decoder -> bytes -> int -> int -> unit

(** [next d] pops the next complete frame payload, or [None] when more
    bytes are needed.
    @raise Frame_too_large as soon as an oversized length prefix is seen
    (before any payload is buffered). *)
val next : decoder -> string option

(** Bytes buffered beyond the last complete frame.  Non-zero after the
    peer hangs up means it died mid-frame — the daemon counts that under
    [server.bad_request] / [server.conn_aborted]. *)
val pending : decoder -> int

(** [encode_frame payload] is the prefix + payload, ready to write. *)
val encode_frame : string -> string

(** Blocking helpers over a file descriptor (used by client and tests;
    the daemon feeds its decoders from the select loop instead).
    [read_frame] reads exact byte counts — it never consumes bytes past
    the frame it returns — and returns [None] on a clean EOF at a frame
    boundary.  Both sides restart on EINTR and loop over short
    reads/writes, so signals and slow peers are not protocol events. *)
val write_frame : Unix.file_descr -> string -> unit

val read_frame : ?max_frame:int -> Unix.file_descr -> string option

(** {1 Requests} *)

exception Bad_request of string

type circuit_src =
  | Catalog of string  (** a catalog name, e.g. ["s298"] *)
  | Bench of string  (** inline [.bench] netlist text (content-addressed) *)

(** Common compute parameters; defaults mirror the CLI. *)
type compute = {
  src : circuit_src;
  scale : Circuits.Profiles.scale;
  seed : int64;
  chains : int;
  sim_jobs : int;
  compact_jobs : int;
  deadline_s : float option;
  max_backtracks : int option;
}

type op =
  | Ping
  | Stats of { prom : bool }
      (** [prom] (request field ["format": "prometheus"]) asks for the
          Prometheus text exposition instead of the JSON document *)
  | Shutdown
  | Chaos of { spec : string option }
      (** reconfigure the daemon's fault-injection sites at runtime
          ({!Obs.Failpoint} spec grammar; [None] queries, ["off"]
          clears); answered inline like the other admin ops *)
  | Generate of {
      c : compute;
      compact : bool;
      return_sequence : bool;
    }
  | Compact of {
      c : compute;
      sequence : string list;  (** one 01x vector per entry *)
    }
  | Table of { c : compute }

type request = {
  id : int;
  op : op;
}

val op_name : op -> string

(** Parse one request payload.
    @raise Bad_request on JSON errors, unknown ops or missing fields. *)
val request_of_string : string -> request

(** [canonical_of_request ?id ?drop_jobs req] re-renders a parsed
    request in the canonical wire form: [id] first, [op] second, every
    compute field explicit with the parser's defaults applied, keys in a
    fixed order.  The rendering round-trips —
    [request_of_string (canonical_of_request ~id req)] parses back to
    [req] under [id] — so a router may forward the canonical form to a
    backend in place of the client's original bytes.

    [drop_jobs] additionally omits [sim_jobs]/[compact_jobs], the two
    knobs the determinism contract (DESIGN.md §11) proves
    payload-invisible; with it the rendering is a valid content-address
    for whole-response memoization: requests differing only in
    parallelism share one key. *)
val canonical_of_request : ?id:int -> ?drop_jobs:bool -> request -> string

(** {1 Responses} *)

(** [error_response ~id kind message] renders the typed error payload
    [{"id":id,"status":kind,"error":message}]; [kind] is ["error"],
    ["overloaded"] or ["internal_error"]. *)
val error_response : id:int -> string -> string -> string
