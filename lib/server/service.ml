module Json = Obs.Json
module Config = Core.Config
module Flow = Core.Flow

type t = {
  cache : Cache.t;
  default_scale : Circuits.Profiles.scale;
  mu : Mutex.t;  (* guards [metrics] *)
  metrics : Obs.Metrics.t;
  fp : Obs.Failpoint.t;
}

type meta = {
  status : string;
  op : string;
  circuit : string;
  cache : string;
}

let create ?(cache_capacity = 8) ?(default_scale = Circuits.Profiles.Quick)
    ?(failpoint = Obs.Failpoint.null) () =
  {
    cache = Cache.create ~capacity:cache_capacity;
    default_scale;
    mu = Mutex.create ();
    metrics = Obs.Metrics.create ();
    fp = failpoint;
  }

let cache (t : t) = t.cache

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let bump t name n =
  with_lock t (fun () -> Obs.Counters.add (Obs.Metrics.counters t.metrics) name n)

let observe t name v =
  with_lock t (fun () -> Obs.Metrics.observe t.metrics name v)

let metrics_snapshot t =
  with_lock t (fun () ->
      let copy = Obs.Metrics.create () in
      Obs.Metrics.merge_into ~src:t.metrics ~dst:copy;
      copy)

(* --------------------------------------------------------- compile step *)

let compile_src src =
  let circuit =
    match src with
    | Protocol.Catalog name -> fun scale -> Circuits.Catalog.circuit ~scale name
    | Protocol.Bench text ->
      fun _ -> Netlist.Bench_format.parse_string ~name:"request" text
  in
  circuit

let lookup (t : t) (c : Protocol.compute) =
  let key = Cache.key_of c.Protocol.src ~scale:c.Protocol.scale ~chains:c.Protocol.chains in
  let entry, outcome =
    Cache.find_or_compile t.cache ~key ~compile:(fun () ->
        (* An injected compile failure propagates out of the cache and
           leaves it unchanged: the next identical request recompiles. *)
        Obs.Failpoint.hit t.fp "cache.compile";
        let t0 = Obs.Clock.now_ns () in
        let circuit = compile_src c.Protocol.src c.Protocol.scale in
        let scan = Scanins.Scan.insert ~chains:c.Protocol.chains circuit in
        let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
        let sk = Atpg.Scan_knowledge.create scan in
        with_lock t (fun () ->
            Obs.Metrics.add_phase t.metrics "server.compile"
              (Obs.Clock.to_s (Obs.Clock.elapsed_ns t0)));
        { Cache.circuit; scan; model; sk })
  in
  bump t
    (match outcome with `Hit -> "server.cache_hit" | `Miss -> "server.cache_miss")
    1;
  entry, outcome

let config_for entry (c : Protocol.compute) =
  Config.with_compact_jobs c.Protocol.compact_jobs
    (Config.with_sim_jobs c.Protocol.sim_jobs
       { (Config.for_circuit entry.Cache.circuit) with
         Config.chains = c.Protocol.chains;
         seed = c.Protocol.seed })

(* --------------------------------------------------- response assembly *)

(* Dispatch-schedule telemetry — the speculative counters (PR 4) and the
   adaptive width/arena/replay-skip counters — legitimately varies with
   [compact_jobs], the width trajectory, and pool scheduling; keeping
   both families out of response payloads is what makes them
   byte-identical at any parallelism. *)
let jobs_dependent_counter name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  has_prefix "compaction.speculative." || has_prefix "compaction.adaptive."

let response_counters rm =
  Json.Obj
    (List.filter_map
       (fun (name, v) ->
         if jobs_dependent_counter name then None
         else Some (name, Json.Int v))
       (Obs.Counters.to_alist (Obs.Metrics.counters rm)))

let sequence_json seq =
  Json.Arr
    (Array.to_list
       (Array.map (fun v -> Json.Str (Logicsim.Vectors.to_string v)) seq))

let status_of budget =
  match Obs.Budget.tripped budget with
  | Some _ -> "degraded"
  | None -> "ok"

let scan_count scan seq = Core.Pipeline.scan_count scan seq

let omission_json (o : Compaction.Omission.stats) =
  Json.Obj
    [ "trials", Json.Int o.Compaction.Omission.trials;
      "accepted", Json.Int o.Compaction.Omission.accepted;
      "rejected", Json.Int o.Compaction.Omission.rejected;
      "removed_vectors", Json.Int o.Compaction.Omission.removed_vectors;
      "passes", Json.Int o.Compaction.Omission.passes ]

(* Restoration + omission with the pipeline's adaptive trial budget.
   [pool], when given, is the daemon-wide trial pool: speculative
   rounds/waves of every in-flight request draw domains from it instead
   of spawning per-request islands. *)
let compact_sequence ?pool ~budget ~rm cfg model seq targets =
  let spec = Compaction.Spec.make () in
  let adaptive = Compaction.Spec.make_adaptive () in
  let restored =
    Compaction.Restoration.run ~budget ~jobs:cfg.Config.compact_jobs ~spec
      ~adaptive ?pool model seq targets
  in
  let targets_r =
    Compaction.Target.compute ~jobs:cfg.Config.sim_jobs model restored
      ~fault_ids:targets.Compaction.Target.fault_ids
  in
  let omission =
    match cfg.Config.omission.Compaction.Omission.max_trials with
    | Some _ -> cfg.Config.omission
    | None ->
      { cfg.Config.omission with
        Compaction.Omission.max_trials =
          Some ((4 * Array.length restored) + 2000) }
  in
  let omitted, _, ostats =
    Compaction.Omission.run ~budget ~metrics:rm ~spec ~adaptive ?pool model
      restored targets_r omission
  in
  Compaction.Spec.record spec (Obs.Metrics.counters rm);
  Compaction.Spec.record_adaptive adaptive (Obs.Metrics.counters rm);
  omitted, ostats

(* ----------------------------------------------------------- handlers *)

let exec_generate ?pool t ~budget ~trace ~id c ~compact ~return_sequence =
  let entry, outcome = lookup t c in
  let compiled = entry.Cache.compiled in
  let rm = Obs.Metrics.create () in
  let cfg = config_for compiled c in
  let flow =
    Obs.Metrics.timed rm ~trace "generate" (fun () ->
        Flow.generate ~metrics:rm ~budget ~trace cfg compiled.Cache.sk
          compiled.Cache.model)
  in
  let seq = flow.Flow.sequence in
  let final, ostats =
    if compact && not (Obs.Budget.expired budget) then begin
      let omitted, ostats =
        Obs.Metrics.timed rm ~trace "compact" (fun () ->
            compact_sequence ?pool ~budget ~rm cfg compiled.Cache.model seq
              flow.Flow.targets)
      in
      omitted, Some ostats
    end
    else seq, None
  in
  let status = status_of budget in
  let scan = compiled.Cache.scan in
  let fields =
    [ "id", Json.Int id; "op", Json.Str "generate"; "status", Json.Str status;
      "circuit", Json.Str (Netlist.Circuit.name compiled.Cache.circuit);
      "cache_key", Json.Str (Printf.sprintf "%016Lx" entry.Cache.hash);
      "targeted", Json.Int flow.Flow.targeted;
      "detected", Json.Int flow.Flow.detected;
      "coverage", Json.Float (Flow.coverage flow);
      "by_random", Json.Int flow.Flow.by_random;
      "by_atpg", Json.Int flow.Flow.by_atpg;
      "by_drain", Json.Int flow.Flow.by_drain;
      "by_justify", Json.Int flow.Flow.by_justify;
      "generated_vectors", Json.Int (Array.length seq);
      "vectors", Json.Int (Array.length final);
      "scan_vectors", Json.Int (scan_count scan final) ]
    @ (match ostats with
       | Some o -> [ "omission", omission_json o ]
       | None -> [])
    @ (if return_sequence then [ "sequence", sequence_json final ] else [])
    @ [ "counters", response_counters rm ]
  in
  with_lock t (fun () -> Obs.Metrics.merge_into ~src:rm ~dst:t.metrics);
  ( Json.to_string (Json.Obj fields),
    {
      status;
      op = "generate";
      circuit = Netlist.Circuit.name compiled.Cache.circuit;
      cache = (match outcome with `Hit -> "hit" | `Miss -> "miss");
    } )

let exec_compact ?pool t ~budget ~trace ~id c sequence =
  let entry, outcome = lookup t c in
  let compiled = entry.Cache.compiled in
  let scan = compiled.Cache.scan in
  let model = compiled.Cache.model in
  let width = Netlist.Circuit.input_count scan.Scanins.Scan.circuit in
  let seq =
    Array.of_list
      (List.map
         (fun line ->
           let v = Logicsim.Vectors.parse line in
           if Array.length v <> width then
             raise
               (Protocol.Bad_request
                  (Printf.sprintf
                     "vector width %d does not match circuit inputs (%d)"
                     (Array.length v) width));
           v)
         sequence)
  in
  if Array.length seq = 0 then
    raise (Protocol.Bad_request "empty \"vectors\" array");
  let rm = Obs.Metrics.create () in
  let cfg = config_for compiled c in
  let nf = Faultmodel.Model.fault_count model in
  let targets =
    Obs.Metrics.timed rm ~trace "target-compute" (fun () ->
        Compaction.Target.compute ~jobs:cfg.Config.sim_jobs model seq
          ~fault_ids:(Array.init nf Fun.id))
  in
  let omitted, ostats =
    Obs.Metrics.timed rm ~trace "compact" (fun () ->
        compact_sequence ?pool ~budget ~rm cfg model seq targets)
  in
  let status = status_of budget in
  let fields =
    [ "id", Json.Int id; "op", Json.Str "compact"; "status", Json.Str status;
      "circuit", Json.Str (Netlist.Circuit.name compiled.Cache.circuit);
      "cache_key", Json.Str (Printf.sprintf "%016Lx" entry.Cache.hash);
      "detects", Json.Int (Compaction.Target.count targets);
      "faults", Json.Int nf;
      "vectors_in", Json.Int (Array.length seq);
      "vectors_out", Json.Int (Array.length omitted);
      "scan_vectors_in", Json.Int (scan_count scan seq);
      "scan_vectors_out", Json.Int (scan_count scan omitted);
      "omission", omission_json ostats;
      "sequence", sequence_json omitted;
      "counters", response_counters rm ]
  in
  with_lock t (fun () -> Obs.Metrics.merge_into ~src:rm ~dst:t.metrics);
  ( Json.to_string (Json.Obj fields),
    {
      status;
      op = "compact";
      circuit = Netlist.Circuit.name compiled.Cache.circuit;
      cache = (match outcome with `Hit -> "hit" | `Miss -> "miss");
    } )

let lengths_json (l : Core.Pipeline.lengths) =
  Json.Obj
    [ "total", Json.Int l.Core.Pipeline.total;
      "scan", Json.Int l.Core.Pipeline.scan ]

let exec_table ?pool t ~budget ~trace ~id (c : Protocol.compute) =
  let name =
    match c.Protocol.src with
    | Protocol.Catalog name -> name
    | Protocol.Bench _ ->
      raise
        (Protocol.Bad_request
           "table runs the paper pipeline on catalog circuits only")
  in
  let circuit = Circuits.Catalog.circuit ~scale:c.Protocol.scale name in
  let cfg =
    Config.with_compact_jobs c.Protocol.compact_jobs
      (Config.with_sim_jobs c.Protocol.sim_jobs
         { (Config.for_circuit circuit) with
           Config.chains = c.Protocol.chains;
           seed = c.Protocol.seed })
  in
  let rm = Obs.Metrics.create () in
  let r =
    Core.Pipeline.run ?pool ~scale:c.Protocol.scale ~config:cfg ~metrics:rm
      ~trace ~budget name
  in
  let row5 = r.Core.Pipeline.row5 in
  let row6 = r.Core.Pipeline.row6 in
  let status = if r.Core.Pipeline.degraded then "degraded" else "ok" in
  let fields =
    [ "id", Json.Int id; "op", Json.Str "table"; "status", Json.Str status;
      "circuit", Json.Str name;
      ( "row5",
        Json.Obj
          [ "inp", Json.Int row5.Core.Pipeline.inp;
            "stvr", Json.Int row5.Core.Pipeline.stvr;
            "faults", Json.Int row5.Core.Pipeline.faults;
            "detected", Json.Int row5.Core.Pipeline.detected;
            "fcov", Json.Float row5.Core.Pipeline.fcov;
            "funct", Json.Int row5.Core.Pipeline.funct ] );
      ( "row6",
        Json.Obj
          [ "test_len", lengths_json row6.Core.Pipeline.test_len;
            "restor_len", lengths_json row6.Core.Pipeline.restor_len;
            "omit_len", lengths_json row6.Core.Pipeline.omit_len;
            "ext_det", Json.Int row6.Core.Pipeline.ext_det;
            "baseline_cycles", Json.Int row6.Core.Pipeline.baseline_cycles ] ) ]
    @ (match r.Core.Pipeline.row7 with
       | None -> []
       | Some row7 ->
         [ ( "row7",
             Json.Obj
               [ "test_len", lengths_json row7.Core.Pipeline.test_len;
                 "restor_len", lengths_json row7.Core.Pipeline.restor_len;
                 "omit_len", lengths_json row7.Core.Pipeline.omit_len;
                 "baseline_cycles",
                 Json.Int row7.Core.Pipeline.baseline_cycles ] ) ])
    @ [ "counters", response_counters rm ]
  in
  with_lock t (fun () -> Obs.Metrics.merge_into ~src:rm ~dst:t.metrics);
  Json.to_string (Json.Obj fields), { status; op = "table"; circuit = name; cache = "-" }

let exec_stats (t : t) ~id ~prom =
  let m = metrics_snapshot t in
  let payload =
    if prom then
      Json.to_string
        (Json.Obj
           [ "id", Json.Int id; "op", Json.Str "stats"; "status", Json.Str "ok";
             "format", Json.Str "prometheus";
             "text", Json.Str (Obs.Metrics.to_prometheus m) ])
    else begin
      let counters =
        Json.Obj
          (List.map
             (fun (name, v) -> name, Json.Int v)
             (Obs.Counters.to_alist (Obs.Metrics.counters m)))
      in
      let phases =
        Json.Obj
          (List.map (fun (name, s) -> name, Json.Float s) (Obs.Metrics.phases m))
      in
      let histograms =
        Json.Obj
          (List.map
             (fun (name, h) ->
               ( name,
                 Json.Obj
                   [ "count", Json.Int (Obs.Hist.count h);
                     "sum", Json.Int (Obs.Hist.sum h);
                     "p50", Json.Int (Obs.Hist.percentile h 0.50);
                     "p90", Json.Int (Obs.Hist.percentile h 0.90);
                     "p95", Json.Int (Obs.Hist.percentile h 0.95);
                     "p99", Json.Int (Obs.Hist.percentile h 0.99) ] ))
             (Obs.Metrics.hists m))
      in
      Json.to_string
        (Json.Obj
           [ "id", Json.Int id; "op", Json.Str "stats"; "status", Json.Str "ok";
             "counters", counters; "phases", phases; "histograms", histograms;
             ( "cache",
               Json.Obj
                 [ "entries", Json.Int (Cache.length t.cache);
                   "capacity", Json.Int (Cache.capacity t.cache) ] ) ])
    end
  in
  payload, { status = "ok"; op = "stats"; circuit = "-"; cache = "-" }

let execute ?pool t ~budget ?(trace = Obs.Trace.null) (req : Protocol.request) =
  let id = req.Protocol.id in
  try
    match req.Protocol.op with
    | Protocol.Ping ->
      ( Json.to_string
          (Json.Obj
             [ "id", Json.Int id; "op", Json.Str "ping";
               "status", Json.Str "ok" ]),
        { status = "ok"; op = "ping"; circuit = "-"; cache = "-" } )
    | Protocol.Stats { prom } -> exec_stats t ~id ~prom
    | Protocol.Chaos { spec } ->
      (match spec with
      | None -> ()
      | Some s -> (
        try Obs.Failpoint.configure t.fp s
        with Invalid_argument msg -> raise (Protocol.Bad_request msg)));
      ( Json.to_string
          (Json.Obj
             [ "id", Json.Int id; "op", Json.Str "chaos";
               "status", Json.Str "ok";
               "active", Json.Str (Obs.Failpoint.describe t.fp);
               ( "fires",
                 Json.Obj
                   (List.map
                      (fun (n, k) -> n, Json.Int k)
                      (Obs.Failpoint.fires t.fp)) ) ]),
        { status = "ok"; op = "chaos"; circuit = "-"; cache = "-" } )
    | Protocol.Shutdown ->
      ( Json.to_string
          (Json.Obj
             [ "id", Json.Int id; "op", Json.Str "shutdown";
               "status", Json.Str "ok" ]),
        { status = "ok"; op = "shutdown"; circuit = "-"; cache = "-" } )
    | Protocol.Generate { c; compact; return_sequence } ->
      exec_generate ?pool t ~budget ~trace ~id c ~compact ~return_sequence
    | Protocol.Compact { c; sequence } ->
      exec_compact ?pool t ~budget ~trace ~id c sequence
    | Protocol.Table { c } -> exec_table ?pool t ~budget ~trace ~id c
  with
  | Protocol.Bad_request msg ->
    bump t "server.bad_request" 1;
    ( Protocol.error_response ~id "error" msg,
      { status = "error"; op = Protocol.op_name req.Protocol.op; circuit = "-";
        cache = "-" } )
  | Netlist.Bench_format.Parse_error { line; col; token; message } ->
    bump t "server.bad_request" 1;
    ( Protocol.error_response ~id "error"
        (Printf.sprintf "parse error at line %d, column %d (%s): %s" line col
           token message),
      { status = "error"; op = Protocol.op_name req.Protocol.op; circuit = "-";
        cache = "-" } )
  | Netlist.Circuit.Invalid_circuit msg ->
    bump t "server.bad_request" 1;
    ( Protocol.error_response ~id "error" ("invalid circuit: " ^ msg),
      { status = "error"; op = Protocol.op_name req.Protocol.op; circuit = "-";
        cache = "-" } )
  | Not_found ->
    bump t "server.bad_request" 1;
    ( Protocol.error_response ~id "error" "unknown circuit (not in the catalog)",
      { status = "error"; op = Protocol.op_name req.Protocol.op; circuit = "-";
        cache = "-" } )
  | Invalid_argument msg ->
    bump t "server.bad_request" 1;
    ( Protocol.error_response ~id "error" msg,
      { status = "error"; op = Protocol.op_name req.Protocol.op; circuit = "-";
        cache = "-" } )
  | Obs.Failpoint.Injected site ->
    bump t "server.internal_error" 1;
    ( Protocol.error_response ~id "internal_error"
        ("injected fault at " ^ site),
      { status = "internal_error"; op = Protocol.op_name req.Protocol.op;
        circuit = "-"; cache = "-" } )
  | Obs.Failpoint.Crashed _ as e ->
    (* An injected crash models the worker dying mid-request: it must
       escape to the daemon's containment layer, not degrade into a
       polite typed reply here. *)
    raise e
  | e ->
    bump t "server.internal_error" 1;
    ( Protocol.error_response ~id "internal_error"
        ("internal error: " ^ Printexc.to_string e),
      { status = "internal_error"; op = Protocol.op_name req.Protocol.op;
        circuit = "-"; cache = "-" } )
