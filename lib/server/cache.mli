(** Content-addressed LRU cache of compiled circuits.

    Parsing a netlist, inserting the scan chain, elaborating the fault
    model (levelization, fault collapsing, SCOAP) is the fixed cost every
    ATPG request pays before any real work starts; for a service it is
    pure setup that depends only on the netlist text and the chain count.
    The cache keys that setup by an FNV-1a 64 hash of a canonical key
    string — for inline netlists the raw [.bench] text (content
    addressing: byte-identical text hits regardless of file name), for
    catalog circuits the name/scale pair — plus the chain count, and
    keeps the [capacity] most recently used compiled entries resident.

    Thread safety: a single internal mutex guards the LRU list {e and}
    stays held across a miss's compile callback.  Concurrent requests for
    the same new circuit therefore compile it exactly once (the loser of
    the race hits), at the price of serializing compiles of distinct new
    circuits — the right trade for a cache whose hit path is the whole
    point. *)

type compiled = {
  circuit : Netlist.Circuit.t;  (** the original (pre-scan) circuit *)
  scan : Scanins.Scan.t;
  model : Faultmodel.Model.t;
  (** of [scan.circuit]: levelized, collapsed fault list, SCOAP *)
  sk : Atpg.Scan_knowledge.t;
}

type entry = {
  key : string;
  hash : int64;  (** FNV-1a 64 of [key] *)
  compiled : compiled;
}

type t

val create : capacity:int -> t
val capacity : t -> int

(** Resident entry count (for the [stats] response). *)
val length : t -> int

val fnv1a64 : string -> int64

(** Canonical cache key of a request's circuit source. *)
val key_of :
  Protocol.circuit_src -> scale:Circuits.Profiles.scale -> chains:int -> string

(** [find_or_compile t ~key ~compile] returns the resident entry for
    [key] ([`Hit]) or runs [compile], inserts the result (evicting the
    least recently used entry beyond capacity) and returns it ([`Miss]).
    Exceptions from [compile] (parse errors, invalid netlists) propagate
    and leave the cache unchanged. *)
val find_or_compile :
  t -> key:string -> compile:(unit -> compiled) -> entry * [ `Hit | `Miss ]
