(** Blocking client for the service daemon, and the `scanatpg batch`
    runner built on top of it. *)

type conn

val connect : Daemon.addr -> conn
val close : conn -> unit

(** The raw descriptor, for callers that pipeline frames themselves
    (e.g. the bench harness) via {!Protocol.write_frame} /
    {!Protocol.read_frame}. *)
val fd : conn -> Unix.file_descr

(** [call conn payload] sends one request frame and blocks for one
    response frame.  Raises [Failure] if the daemon hangs up first. *)
val call : conn -> string -> string

(** Outcome of one batch request, in input-file order. *)
type outcome = {
  id : int;
  status : string;
      (** ok | degraded | error | overloaded | internal_error | lost *)
  payload : string option;  (** [None] when no response was ever seen *)
}

(** [run_batch ~addr ~input ()] pipelines every JSONL line of [input] as
    a request frame (assigning sequential ids to lines that lack one),
    collects responses by id, and writes the response payloads in request
    order — one per line — to [output] (through {!Obs.Fileio}) or stdout.

    [retries] (default 0) makes the batch idempotently survive dropped
    connections: after a transport failure the client reconnects and
    replays only the still-unanswered requests, up to [retries] extra
    attempts, backing off exponentially from [backoff_ms] (default 100)
    with deterministic jitter.  A request that already has a typed
    response is final and never resent; replay is safe because compute
    payloads are pure functions of their requests (DESIGN.md §10), so a
    retried batch is byte-identical to an uninterrupted one.  A refused
    initial connection still raises — nothing was ever sent.

    Returns the outcomes in request order.  A response never delivered
    (daemon drained away mid-batch, retries exhausted) reports status
    ["lost"].
    @raise Failure when [input] is unreadable or a line is not a JSON
    object. *)
val run_batch :
  addr:Daemon.addr ->
  input:string ->
  ?output:string ->
  ?retries:int ->
  ?backoff_ms:int ->
  unit ->
  outcome list
