(** The `scanatpg serve` daemon (DESIGN.md §11).

    One accept/read loop on the calling domain multiplexes every client
    connection with [select]; [jobs] worker domains execute compute
    requests from a bounded queue.  Admission control is strict: when the
    queue is full a request is answered immediately with a typed
    [overloaded] payload instead of queueing unboundedly.  Admin requests
    ([ping], [stats], [shutdown], [chaos]) are answered inline by the
    accept loop — they stay responsive while every worker is busy.

    Hardening (DESIGN.md §13): worker domains contain crashes — an
    exception escaping a job becomes a typed [internal_error] response
    plus a [server.worker_restarts] bump and the worker loops on, never
    a dead domain starving the queue.  A dead or injected-faulty
    response write poisons only its connection ([server.conn_aborted]).
    Connections are swept for read-deadline (mid-frame stall, slowloris)
    and idle-timeout breaches each select tick, and a per-connection
    in-flight cap keeps one pipelining client from monopolising the
    queue.  Fault-injection sites ([accept], [queue], [worker],
    [cache.compile], [writer]) are compiled in permanently and armed via
    [--chaos] or the [chaos] op — unarmed they cost one atomic load.

    Graceful drain (SIGTERM, SIGINT or a [shutdown] request): the
    listening socket closes, no further requests are admitted, queued and
    in-flight work runs to completion — and is budget-tripped once
    [drain_grace_s] elapses, so every admitted request is answered with
    its result or a typed [degraded] response, never cut off mid-frame.
    After the workers join, final metrics and the request trace are
    written through {!Obs.Fileio} and [run] returns 0.

    Observability plane (DESIGN.md §12): every request gets a
    deterministic trace id ([c<cid>-r<n>], stable per connection); when
    [trace_path] or [slow_ms] is set, workers record per-request span
    trees ([request] → [generate]/[compact] → [flow.*]) into
    single-domain collectors folded into a global one at completion.
    Queue-wait, service, end-to-end and per-op latencies feed shared
    power-of-two histograms, exposed with percentiles by the [stats] op
    (JSON or Prometheus text).  The access log streams one enriched line
    per request ([trace_id], [queue_wait_ns], [service_ns], [bytes_in],
    [bytes_out], [cache]) and is flushed per line so [tail -f] follows a
    live daemon — the one deliberate exception to the {!Obs.Fileio}
    atomic-write convention.  All of this is timing-derived and stays
    out of compute response payloads, which remain byte-deterministic. *)

type addr =
  | Unix_sock of string  (** path of a Unix-domain socket (created) *)
  | Tcp of string * int  (** opt-in TCP, e.g. ("127.0.0.1", 7227) *)

type trace_format =
  | Jsonl  (** one span object per line (the CLI's [--trace] format) *)
  | Chrome  (** Chrome trace-event array, loadable in Perfetto *)

type config = {
  addr : addr;
  jobs : int;  (** worker domains executing compute requests *)
  trial_pool : int;
      (** size of the daemon-wide speculative-trial pool shared by every
          request's compaction rounds/waves ([--trial-pool]); 0
          (default) keeps the per-request spawn-per-round behaviour.
          Results are byte-identical either way — the pool only changes
          which domains evaluate the trials. *)
  queue_depth : int;  (** admission bound on waiting requests *)
  cache_capacity : int;  (** compiled circuits kept resident *)
  default_scale : Circuits.Profiles.scale;
  access_log : string option;
      (** JSONL, one line per request, flushed per line (tail-able) *)
  metrics_path : string option;  (** final metrics document, at drain *)
  trace_path : string option;  (** merged request spans, at drain *)
  trace_format : trace_format;
  slow_ms : int option;
      (** requests over this end-to-end threshold log their span tree *)
  drain_grace_s : float;  (** seconds before a drain trips in-flight budgets *)
  idle_timeout_s : float option;
      (** close a connection with no traffic, no partial frame and no
          in-flight requests after this long (counted under
          [server.conn_idle_closed]); [None] (default) keeps idle
          connections forever *)
  read_deadline_s : float option;
      (** slowloris defence: a started frame must complete within this
          deadline or the connection is cut (counted under
          [server.bad_request] and [server.conn_aborted]); default 30s,
          [None] disables *)
  max_inflight : int;
      (** per-connection in-flight cap — a pipelining client exceeding
          it gets a typed [overloaded] rejection, so one connection
          cannot claim the whole queue (default 64) *)
  chaos : string option;
      (** initial {!Obs.Failpoint} spec ([--chaos]); sites [accept],
          [queue], [worker], [cache.compile], [writer].  The registry is
          always live and reconfigurable at runtime via the [chaos] op;
          @raise Invalid_argument from [run] on a malformed spec *)
  install_signals : bool;  (** SIGTERM/SIGINT → drain (off in tests) *)
  verbose : bool;  (** lifecycle messages on stderr *)
}

val default_config : addr -> config

(** [run config] serves until drained; returns the process exit code
    (0 after a clean drain).  Blocks the calling domain. *)
val run : config -> int
