(** The `scanatpg serve` daemon (DESIGN.md §11).

    One accept/read loop on the calling domain multiplexes every client
    connection with [select]; [jobs] worker domains execute compute
    requests from a bounded queue.  Admission control is strict: when the
    queue is full a request is answered immediately with a typed
    [overloaded] payload instead of queueing unboundedly.  Admin requests
    ([ping], [stats], [shutdown]) are answered inline by the accept loop
    — they stay responsive while every worker is busy.

    Graceful drain (SIGTERM, SIGINT or a [shutdown] request): the
    listening socket closes, no further requests are admitted, queued and
    in-flight work runs to completion — and is budget-tripped once
    [drain_grace_s] elapses, so every admitted request is answered with
    its result or a typed [degraded] response, never cut off mid-frame.
    After the workers join, the access log and final metrics are flushed
    through {!Obs.Fileio} and [run] returns 0. *)

type addr =
  | Unix_sock of string  (** path of a Unix-domain socket (created) *)
  | Tcp of string * int  (** opt-in TCP, e.g. ("127.0.0.1", 7227) *)

type config = {
  addr : addr;
  jobs : int;  (** worker domains executing compute requests *)
  queue_depth : int;  (** admission bound on waiting requests *)
  cache_capacity : int;  (** compiled circuits kept resident *)
  default_scale : Circuits.Profiles.scale;
  access_log : string option;  (** JSONL, one line per request, at drain *)
  metrics_path : string option;  (** final metrics document, at drain *)
  drain_grace_s : float;  (** seconds before a drain trips in-flight budgets *)
  install_signals : bool;  (** SIGTERM/SIGINT → drain (off in tests) *)
  verbose : bool;  (** lifecycle messages on stderr *)
}

val default_config : addr -> config

(** [run config] serves until drained; returns the process exit code
    (0 after a clean drain).  Blocks the calling domain. *)
val run : config -> int
