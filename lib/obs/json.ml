exception Non_finite of float
exception Parse_error of { pos : int; message : string }

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

let float f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    raise (Non_finite f)
  else Printf.sprintf "%.9g" f

(* 17 significant digits render every binary64 value unambiguously, so a
   [Float] leaf survives an emit/parse roundtrip bit-exactly. *)
let float_exact f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    raise (Non_finite f)
  else
    let s = Printf.sprintf "%.17g" f in
    (* keep the token a JSON number (and distinguishable from an Int) *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then s
    else s ^ ".0"

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_exact f)
    | Str s -> Buffer.add_string b (quote s)
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (quote k);
          Buffer.add_char b ':';
          go x)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ------------------------------------------------------------- parser *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error message = raise (Parse_error { pos = !pos; message }) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error (Printf.sprintf "expected %C, found %C" c c')
    | None -> error (Printf.sprintf "expected %C, found end of input" c)
  in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let utf8_add b cp =
    (* encode one Unicode scalar value *)
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> error (Printf.sprintf "invalid hex digit %C in \\u escape" c)
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' ->
        advance ();
        Buffer.contents b
      | '\\' ->
        advance ();
        (if !pos >= n then error "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'u' ->
           advance ();
           let cp = hex4 () in
           let cp =
             (* surrogate pair *)
             if cp >= 0xD800 && cp <= 0xDBFF
                && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
               else error "invalid low surrogate"
             end
             else cp
           in
           utf8_add b cp
         | c -> error (Printf.sprintf "invalid escape \\%C" c));
        go ()
      | c when Char.code c < 0x20 ->
        error "raw control character in string (must be \\u-escaped)"
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then error "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
       digits ()
     | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']' in array"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          k, v
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> error "expected ',' or '}' in object"
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage after document";
  v

(* ---------------------------------------------------------- accessors *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let get_int = function
  | Int i -> Some i
  | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_bool = function
  | Bool b -> Some b
  | _ -> None

let get_str = function
  | Str s -> Some s
  | _ -> None

let get_arr = function
  | Arr xs -> Some xs
  | _ -> None
