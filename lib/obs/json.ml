let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

let float f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "0"
  else Printf.sprintf "%.9g" f
