(* All files the CLI and bench harness write go through [write]: a crash or
   kill mid-write can never leave a truncated or corrupt file at the final
   path, because the data only appears there via an atomic rename of a
   fully-written, fsynced temporary in the same directory. *)

let write path f =
  let dir = Filename.dirname path in
  let tmp =
    Filename.temp_file ~temp_dir:dir
      ("." ^ Filename.basename path ^ ".tmp")
      ""
  in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () -> if not !ok then Sys.remove tmp)
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          f oc;
          flush oc;
          Unix.fsync (Unix.descr_of_out_channel oc));
      Sys.rename tmp path;
      ok := true)

let write_string path s = write path (fun oc -> output_string oc s)
