type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let add t name n =
  match Hashtbl.find_opt t name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t name (ref n)

let get t name =
  match Hashtbl.find_opt t name with
  | Some r -> !r
  | None -> 0

let merge_into ~src ~dst = Hashtbl.iter (fun name r -> add dst name !r) src

let to_alist t =
  let acc = Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t [] in
  List.sort compare acc
