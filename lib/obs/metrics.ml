let schema = "scanatpg-metrics/1"

type t = {
  counters : Counters.t;
  mutable phases : (string * float) list;  (* first-seen order, reversed *)
  mutable hists : (string * Hist.t) list;  (* first-seen order, reversed *)
}

let create () = { counters = Counters.create (); phases = []; hists = [] }

let counters t = t.counters

let add_phase t name s =
  let rec bump = function
    | [] -> None
    | (n, acc) :: rest when n = name -> Some ((n, acc +. s) :: rest)
    | p :: rest -> Option.map (fun r -> p :: r) (bump rest)
  in
  match bump t.phases with
  | Some ps -> t.phases <- ps
  | None -> t.phases <- (name, s) :: t.phases

let phases t = List.rev t.phases

let add_hist t name h =
  match List.assoc_opt name t.hists with
  | Some dst -> Hist.merge_into ~src:h ~dst
  | None -> t.hists <- (name, Hist.copy h) :: t.hists

let observe t name v =
  match List.assoc_opt name t.hists with
  | Some h -> Hist.observe h v
  | None ->
    let h = Hist.create () in
    Hist.observe h v;
    t.hists <- (name, h) :: t.hists

let hists t = List.rev t.hists

let merge_into ~src ~dst =
  Counters.merge_into ~src:src.counters ~dst:dst.counters;
  List.iter (fun (name, s) -> add_phase dst name s) (phases src);
  List.iter (fun (name, h) -> add_hist dst name h) (hists src)

let timed t ?(trace = Trace.null) name f =
  Trace.with_span trace name (fun () ->
      let t0 = Clock.now_ns () in
      let r = f () in
      add_phase t name (Clock.to_s (Clock.elapsed_ns t0));
      r)

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "{\n  \"schema\": %s,\n" (Json.quote schema));
  Buffer.add_string b "  \"phases\": {";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\n    %s: %s" (Json.quote name) (Json.float s)))
    (phases t);
  Buffer.add_string b "\n  },\n";
  Buffer.add_string b "  \"counters\": {";
  List.iteri
    (fun i (name, n) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf "\n    %s: %d" (Json.quote name) n))
    (Counters.to_alist t.counters);
  Buffer.add_string b "\n  },\n";
  Buffer.add_string b "  \"histograms\": {";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf
           "\n    %s: {\"count\": %d, \"sum\": %d, \"p50\": %d, \"p90\": %d, \
            \"p95\": %d, \"p99\": %d, \"buckets\": ["
           (Json.quote name) (Hist.count h) (Hist.sum h)
           (Hist.percentile h 0.50) (Hist.percentile h 0.90)
           (Hist.percentile h 0.95) (Hist.percentile h 0.99));
      List.iteri
        (fun j (upper, n) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (Printf.sprintf "[%d, %d]" upper n))
        (Hist.buckets h);
      Buffer.add_string b "]}")
    (hists t);
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

let write_file t path = Fileio.write_string path (to_json t)

(* ------------------------------------------------------- prometheus *)

(* The text exposition format recognises exactly three escapes in label
   values: backslash, double quote and newline. *)
let prom_label s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Prometheus text exposition of the whole document.  Metric names are
   fixed ([a-z_] only); the repo's dotted counter/phase/histogram names
   ride in labels, so nothing needs lossy name mangling.  No comment or
   TYPE lines: every line is a bare sample, which keeps the output
   trivially lintable (see bin/check.sh). *)
let to_prometheus t =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun (name, v) -> add "scanatpg_counter{name=\"%s\"} %d\n" (prom_label name) v)
    (Counters.to_alist t.counters);
  List.iter
    (fun (name, s) ->
      add "scanatpg_phase_seconds{phase=\"%s\"} %s\n" (prom_label name)
        (Json.float s))
    (phases t);
  List.iter
    (fun (name, h) ->
      let l = prom_label name in
      add "scanatpg_hist_count{name=\"%s\"} %d\n" l (Hist.count h);
      add "scanatpg_hist_sum{name=\"%s\"} %d\n" l (Hist.sum h);
      let cum = ref 0 in
      List.iter
        (fun (upper, n) ->
          cum := !cum + n;
          add "scanatpg_hist_bucket{name=\"%s\",le=\"%d\"} %d\n" l upper !cum)
        (Hist.buckets h);
      add "scanatpg_hist_bucket{name=\"%s\",le=\"+Inf\"} %d\n" l (Hist.count h);
      List.iter
        (fun (q, qs) ->
          add "scanatpg_hist{name=\"%s\",quantile=\"%s\"} %d\n" l qs
            (Hist.percentile h q))
        [ (0.50, "0.5"); (0.90, "0.9"); (0.95, "0.95"); (0.99, "0.99") ])
    (hists t);
  Buffer.contents b
