let schema = "scanatpg-metrics/1"

type t = {
  counters : Counters.t;
  mutable phases : (string * float) list;  (* first-seen order, reversed *)
  mutable hists : (string * Hist.t) list;  (* first-seen order, reversed *)
}

let create () = { counters = Counters.create (); phases = []; hists = [] }

let counters t = t.counters

let add_phase t name s =
  let rec bump = function
    | [] -> None
    | (n, acc) :: rest when n = name -> Some ((n, acc +. s) :: rest)
    | p :: rest -> Option.map (fun r -> p :: r) (bump rest)
  in
  match bump t.phases with
  | Some ps -> t.phases <- ps
  | None -> t.phases <- (name, s) :: t.phases

let phases t = List.rev t.phases

let add_hist t name h =
  match List.assoc_opt name t.hists with
  | Some dst -> Hist.merge_into ~src:h ~dst
  | None -> t.hists <- (name, Hist.copy h) :: t.hists

let hists t = List.rev t.hists

let merge_into ~src ~dst =
  Counters.merge_into ~src:src.counters ~dst:dst.counters;
  List.iter (fun (name, s) -> add_phase dst name s) (phases src);
  List.iter (fun (name, h) -> add_hist dst name h) (hists src)

let timed t ?(trace = Trace.null) name f =
  Trace.with_span trace name (fun () ->
      let t0 = Clock.now_ns () in
      let r = f () in
      add_phase t name (Clock.to_s (Clock.elapsed_ns t0));
      r)

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "{\n  \"schema\": %s,\n" (Json.quote schema));
  Buffer.add_string b "  \"phases\": {";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\n    %s: %s" (Json.quote name) (Json.float s)))
    (phases t);
  Buffer.add_string b "\n  },\n";
  Buffer.add_string b "  \"counters\": {";
  List.iteri
    (fun i (name, n) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf "\n    %s: %d" (Json.quote name) n))
    (Counters.to_alist t.counters);
  Buffer.add_string b "\n  },\n";
  Buffer.add_string b "  \"histograms\": {";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\n    %s: {\"count\": %d, \"sum\": %d, \"buckets\": ["
           (Json.quote name) (Hist.count h) (Hist.sum h));
      List.iteri
        (fun j (upper, n) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (Printf.sprintf "[%d, %d]" upper n))
        (Hist.buckets h);
      Buffer.add_string b "]}")
    (hists t);
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

let write_file t path = Fileio.write_string path (to_json t)
