(** Named integer counters.

    A counter set is the non-hot-path half of the telemetry story: hot
    kernels (fault simulation, PODEM) count into plain mutable record
    fields owned by one domain, and those records are folded into a
    counter set once per phase.  Counter values are therefore exact sums
    of per-worker contributions — addition is associative and commutative,
    and the engine schedules work identically at any job count (see
    DESIGN.md §7), so a merged counter set is bit-identical for
    [sim_jobs = 1] and [sim_jobs = N]. *)

type t

val create : unit -> t

(** [add t name n] adds [n] to counter [name] (created at 0). *)
val add : t -> string -> int -> unit

(** [get t name] is the current value ([0] when never added). *)
val get : t -> string -> int

(** [merge_into ~src ~dst] adds every counter of [src] into [dst]. *)
val merge_into : src:t -> dst:t -> unit

(** All counters sorted by name — the deterministic serialization order. *)
val to_alist : t -> (string * int) list
