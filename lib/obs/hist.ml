let nbuckets = 63

type t = {
  mutable count : int;
  mutable sum : int;
  counts : int array;
}

let create () = { count = 0; sum = 0; counts = Array.make nbuckets 0 }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    min !i (nbuckets - 1)
  end

let observe t v =
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1

let count t = t.count
let sum t = t.sum

let buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) <> 0 then begin
      let upper = if i = 0 then 0 else (1 lsl i) - 1 in
      acc := (upper, t.counts.(i)) :: !acc
    end
  done;
  !acc

let percentile t q =
  if t.count = 0 then 0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    let cum = ref 0 and i = ref 0 and found = ref (-1) in
    while !found < 0 && !i < nbuckets do
      cum := !cum + t.counts.(!i);
      if !cum >= rank then found := !i;
      incr i
    done;
    let b = if !found < 0 then nbuckets - 1 else !found in
    if b = 0 then 0 else (1 lsl b) - 1
  end

let merge_into ~src ~dst =
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  Array.iteri (fun i n -> dst.counts.(i) <- dst.counts.(i) + n) src.counts

let copy t = { count = t.count; sum = t.sum; counts = Array.copy t.counts }
