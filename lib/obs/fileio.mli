(** Crash-safe file writing.

    [write path f] runs [f] on an output channel for a temporary file in
    [path]'s directory, fsyncs it, and renames it over [path].  Readers
    either see the old contents or the complete new contents — never a
    truncated or interleaved file.  On any exception the temporary is
    removed and [path] is untouched.

    Every file the CLI writes (metrics, traces, checkpoints, sequences,
    tester programs, exported circuits, bench JSON) goes through here. *)

val write : string -> (out_channel -> unit) -> unit

val write_string : string -> string -> unit
