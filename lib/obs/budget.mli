(** Cooperative cancellation / deadline token.

    Every anytime phase of the pipeline (PODEM decisions, per-fault ATPG
    attempts, fault-simulation frames, restoration and omission trials)
    polls a shared budget at its safe points and winds down as soon as the
    budget has tripped, leaving a valid best-so-far result.  Two ceilings
    are supported: a wall-clock deadline (monotonic, via {!Clock}) and a
    global backtrack count.

    [check] is cheap enough for hot loops: one branch for the {!unlimited}
    token, and for limited tokens one atomic load plus a strided clock
    probe (every 64th call).  The tripped flag is an atomic, so simulation
    worker domains observe a trip without probing the clock themselves;
    once tripped, a budget stays tripped.

    A budget with only [max_backtracks] is fully deterministic — the same
    run trips at the same decision — while a wall-clock deadline is
    inherently not; resume determinism is only promised for runs whose
    budget never trips (see DESIGN.md §8). *)

type reason =
  | Deadline
  | Backtracks

type t

(** The default everywhere: [check] is [true] forever, at the cost of one
    branch. *)
val unlimited : t

(** [create ?deadline_s ?max_backtracks ()] starts the wall clock now.
    Omitted ceilings are infinite. *)
val create : ?deadline_s:float -> ?max_backtracks:int -> unit -> t

(** [false] exactly for {!unlimited}. *)
val limited : t -> bool

(** [check t] is [true] while work may continue.  Hot-loop safe. *)
val check : t -> bool

(** [not (check t)]. *)
val expired : t -> bool

(** Why the budget tripped, once it has. *)
val tripped : t -> reason option

(** Force a trip (first reason wins). *)
val trip : t -> reason -> unit

(** [add_backtracks t n] charges [n] search backtracks against the global
    ceiling, tripping the budget when it is exceeded. *)
val add_backtracks : t -> int -> unit

(** Total backtracks charged so far. *)
val backtracks : t -> int

(** Seconds until the deadline ([infinity] when none, [0.] when past). *)
val remaining_s : t -> float

val reason_to_string : reason -> string
