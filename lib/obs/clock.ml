external now_ns : unit -> int = "scanatpg_obs_now_ns" [@@noalloc]

let elapsed_ns t0 = now_ns () - t0

let to_s ns = float_of_int ns *. 1e-9
