/* Monotonic wall clock for Obs.Clock.
 *
 * CLOCK_MONOTONIC never jumps backwards and, unlike Sys.time, measures
 * wall time rather than per-process CPU time — CPU time double-counts
 * under multiple OCaml domains.  The value is returned as a tagged OCaml
 * int (no allocation): 62 bits of nanoseconds overflow after ~146 years
 * of uptime, which is enough for span arithmetic.
 */
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value scanatpg_obs_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
