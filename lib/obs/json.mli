(** Minimal JSON writing helpers shared by the trace and metrics emitters.

    The repo deliberately carries no JSON dependency; every document we
    emit is assembled from these primitives. *)

(** Escape a string's contents for inclusion inside JSON quotes. *)
val escape : string -> string

(** [quote s] is [s] escaped and wrapped in double quotes. *)
val quote : string -> string

(** Render a float as a JSON number ([nan]/[inf] map to [0], which JSON
    cannot represent). *)
val float : float -> string
