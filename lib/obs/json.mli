(** Minimal JSON reading and writing shared by the trace and metrics
    emitters and the server wire protocol.

    The repo deliberately carries no JSON dependency; every document we
    emit is assembled from these primitives, and every document we accept
    (server requests, batch replay files) is read back through {!parse}.
    The emitter and parser roundtrip: [parse (to_string v)] equals [v] for
    any value built from finite floats (QCheck-verified in [test_obs]). *)

(** Raised by {!float} and {!to_string} on NaN or infinite floats, which
    JSON cannot represent.  Telemetry documents never contain them (phase
    timers are finite by construction); a request that would smuggle one
    onto the wire is rejected with this typed error instead of silently
    emitting a placeholder. *)
exception Non_finite of float

(** Position is a 0-based byte offset into the parsed string. *)
exception Parse_error of { pos : int; message : string }

(** A parsed JSON document.  Numbers without a fraction or exponent that
    fit in an OCaml [int] parse as [Int]; everything else parses as
    [Float].  Object member order is preserved. *)
type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Escape a string's contents for inclusion inside JSON quotes: every
    control character (U+0000–U+001F) plus the quote and backslash. *)
val escape : string -> string

(** [quote s] is [s] escaped and wrapped in double quotes. *)
val quote : string -> string

(** Render a finite float as a JSON number.
    @raise Non_finite on NaN and infinities. *)
val float : float -> string

(** Compact single-line rendering (no spaces after separators).  [Float]
    leaves are printed with 17 significant digits so they roundtrip
    bit-exactly through {!parse}.
    @raise Non_finite on NaN / infinite [Float] leaves. *)
val to_string : t -> string

(** [parse s] parses exactly one JSON document (surrounding whitespace
    allowed, trailing garbage rejected).
    @raise Parse_error on malformed input. *)
val parse : string -> t

(** {2 Accessors} — total lookups for picking requests apart. *)

(** [member name v] is the value of field [name] when [v] is an object
    that has it. *)
val member : string -> t -> t option

(** [get_int], [get_float], [get_bool], [get_str] project a leaf; [Int]
    widens to float for [get_float]. *)
val get_int : t -> int option

val get_float : t -> float option
val get_bool : t -> bool option
val get_str : t -> string option
val get_arr : t -> t list option
