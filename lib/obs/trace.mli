(** Spans: named, nested wall-clock intervals.

    A tracer is either the shared {!null} sink or a live collector.  The
    null sink is the default everywhere: {!with_span} on it is a single
    flag test before calling the thunk, so instrumented code paths cost
    one predictable branch when tracing is off (verified by the
    [obs: null-sink span] bench kernel).

    Each collector is single-domain: spans are opened and closed on one
    thread only; simulation workers never touch the orchestrator's
    collector (their telemetry flows through per-worker counter records
    instead).  Cross-domain aggregation — e.g. the daemon folding a
    per-request collector into its global one — goes through
    {!merge_into} at a phase boundary, under the caller's lock, exactly
    the way counter records merge. *)

type span = {
  id : int;  (** 1-based, in opening order *)
  parent : int;  (** enclosing span id, [0] at top level *)
  name : string;
  start_ns : int;  (** {!Clock.now_ns} at open *)
  stop_ns : int;  (** {!Clock.now_ns} at close *)
  attrs : (string * string) list;
}

type t

(** The no-op sink: spans evaporate, [with_span t name f] is [f ()]. *)
val null : t

(** A live collector. *)
val create : unit -> t

val enabled : t -> bool

(** [with_span t name f] runs [f] inside a span.  The span closes (and is
    recorded) even when [f] raises. *)
val with_span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Completed spans, in completion order (children before parents). *)
val spans : t -> span list

(** [merge_into ~src ?parent ~dst ()] appends [src]'s completed spans to
    [dst], offsetting ids past [dst]'s id space and re-parenting [src]'s
    top-level spans under [parent] (default [0]: keep them top-level).
    A no-op when either collector is {!null}; [src] is left untouched.
    Deterministic: merge order alone fixes the resulting id assignment. *)
val merge_into : src:t -> ?parent:int -> dst:t -> unit -> unit

(** Completed spans as a forest of [{name, start_ns, dur_ns, attrs?,
    children?}] objects — the slow-request log's span-tree payload. *)
val tree_json : t -> Json.t

(** Chrome trace-event JSON (catapult array format, loadable in Perfetto
    or chrome://tracing): one complete ["ph": "X"] event per span with
    [ts]/[dur] in microseconds; each top-level span's subtree gets its
    own [tid] so folded concurrent requests render as separate tracks. *)
val chrome_string : t -> string

(** {!chrome_string} to a file, atomically via {!Fileio}. *)
val write_chrome : t -> string -> unit

(** One JSON object per line: [name], [start_ns], [stop_ns], [id],
    [parent], [attrs].  Written atomically via {!Fileio}. *)
val write_jsonl : t -> string -> unit
