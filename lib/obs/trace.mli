(** Spans: named, nested wall-clock intervals.

    A tracer is either the shared {!null} sink or a live collector.  The
    null sink is the default everywhere: {!with_span} on it is a single
    flag test before calling the thunk, so instrumented code paths cost
    one predictable branch when tracing is off (verified by the
    [obs: null-sink span] bench kernel).

    Tracers are single-domain: spans are opened and closed on the
    orchestrating thread only; simulation workers never touch them (their
    telemetry flows through per-worker counter records instead). *)

type span = {
  id : int;  (** 1-based, in opening order *)
  parent : int;  (** enclosing span id, [0] at top level *)
  name : string;
  start_ns : int;  (** {!Clock.now_ns} at open *)
  stop_ns : int;  (** {!Clock.now_ns} at close *)
  attrs : (string * string) list;
}

type t

(** The no-op sink: spans evaporate, [with_span t name f] is [f ()]. *)
val null : t

(** A live collector. *)
val create : unit -> t

val enabled : t -> bool

(** [with_span t name f] runs [f] inside a span.  The span closes (and is
    recorded) even when [f] raises. *)
val with_span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Completed spans, in completion order (children before parents). *)
val spans : t -> span list

(** One JSON object per line: [name], [start_ns], [stop_ns], [id],
    [parent], [attrs]. *)
val write_jsonl : t -> string -> unit
