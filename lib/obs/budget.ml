type reason =
  | Deadline
  | Backtracks

(* [tripped] is the single source of truth (0 live, 1 deadline,
   2 backtracks): workers on other domains never probe the clock themselves,
   they just read the flag.  [fuel] is a plain per-check countdown; races on
   it are benign (a domain may probe the clock a little more or less often)
   because only the atomic flag decides anything. *)
type t = {
  limited : bool;
  deadline_ns : int;  (* absolute Clock.now_ns value; max_int = none *)
  max_backtracks : int;  (* max_int = none *)
  backtracks : int Atomic.t;
  tripped_flag : int Atomic.t;
  mutable fuel : int;
}

let stride = 64

let unlimited =
  {
    limited = false;
    deadline_ns = max_int;
    max_backtracks = max_int;
    backtracks = Atomic.make 0;
    tripped_flag = Atomic.make 0;
    fuel = max_int;
  }

let create ?deadline_s ?max_backtracks () =
  let deadline_ns =
    match deadline_s with
    | None -> max_int
    | Some s -> Clock.now_ns () + int_of_float (s *. 1e9)
  in
  {
    limited = true;
    deadline_ns;
    max_backtracks = Option.value max_backtracks ~default:max_int;
    backtracks = Atomic.make 0;
    tripped_flag = Atomic.make 0;
    (* First check probes the clock immediately, so even a zero deadline
       trips on the very first safe point. *)
    fuel = 1;
  }

let limited t = t.limited

let trip t reason =
  let v =
    match reason with
    | Deadline -> 1
    | Backtracks -> 2
  in
  ignore (Atomic.compare_and_set t.tripped_flag 0 v)

let tripped t =
  match Atomic.get t.tripped_flag with
  | 1 -> Some Deadline
  | 2 -> Some Backtracks
  | _ -> None

let probe t =
  if t.deadline_ns <> max_int && Clock.now_ns () >= t.deadline_ns then
    trip t Deadline;
  Atomic.get t.tripped_flag = 0

let check t =
  (not t.limited)
  ||
  if Atomic.get t.tripped_flag <> 0 then false
  else begin
    t.fuel <- t.fuel - 1;
    if t.fuel > 0 then true
    else begin
      t.fuel <- stride;
      probe t
    end
  end

let expired t = not (check t)

let add_backtracks t n =
  if t.limited && n > 0 then begin
    let total = Atomic.fetch_and_add t.backtracks n + n in
    if total > t.max_backtracks then trip t Backtracks
  end

let backtracks t = Atomic.get t.backtracks

let remaining_s t =
  if not t.limited || t.deadline_ns = max_int then infinity
  else Float.max 0.0 (Clock.to_s (t.deadline_ns - Clock.now_ns ()))

let reason_to_string = function
  | Deadline -> "deadline"
  | Backtracks -> "backtracks"
