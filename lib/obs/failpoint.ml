(* Named, deterministically-seeded fault-injection sites.

   A failpoint registry follows the Trace.null discipline: the [null]
   registry is permanently disabled and [hit] on it is one immutable
   branch; a live registry with no sites configured costs one atomic
   load.  Only a site that is actually configured pays for a draw.

   Draws are deterministic: the [n]-th draw at site [name] hashes
   (seed, name, n) with FNV-1a 64 and fires when the hash lands under
   the site's probability.  Two registries with the same seed and spec
   fire at exactly the same draw indices, which is what makes a chaos
   soak replayable (CHAOS_SEED in CI). *)

type action =
  | Error  (* raise [Injected] at the site *)
  | Crash  (* raise [Crashed]: models a worker/domain death *)
  | Delay of int  (* sleep this many milliseconds, then continue *)

type site = {
  action : action;
  prob_ppm : int;  (* fire probability, parts per million *)
  max_fires : int;  (* [max_int] = unlimited *)
  draws : int Atomic.t;
  fired : int Atomic.t;
}

type t = {
  live : bool;
  seed : int64 Atomic.t;
  sites : (string * site) list Atomic.t;
}

exception Injected of string
exception Crashed of string

let null = { live = false; seed = Atomic.make 0L; sites = Atomic.make [] }

let create ?(seed = 0L) () =
  { live = true; seed = Atomic.make seed; sites = Atomic.make [] }

let enabled t = t.live

let active t = t.live && Atomic.get t.sites <> []

let fnv1a64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

(* ----------------------------------------------------------------- spec *)

let invalid fmt = Printf.ksprintf invalid_arg fmt

(* One entry: <site>=<base>[@prob][#count] with base one of error, crash,
   delay:<ms>; or seed=<int>; or the single word "off" clearing all. *)
let parse_action site s =
  let s, max_fires =
    match String.index_opt s '#' with
    | None -> s, max_int
    | Some i -> (
      let n = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt n with
      | Some k when k >= 0 -> String.sub s 0 i, k
      | _ -> invalid "failpoint %s: bad fire count %S" site n)
  in
  let s, prob =
    match String.index_opt s '@' with
    | None -> s, 1.0
    | Some i -> (
      let p = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt p with
      | Some f when f >= 0.0 && f <= 1.0 -> String.sub s 0 i, f
      | _ -> invalid "failpoint %s: probability %S not in [0,1]" site p)
  in
  let action =
    match s with
    | "error" -> Error
    | "crash" -> Crash
    | _ when String.length s > 6 && String.sub s 0 6 = "delay:" -> (
      let ms = String.sub s 6 (String.length s - 6) in
      match int_of_string_opt ms with
      | Some k when k >= 0 -> Delay k
      | _ -> invalid "failpoint %s: bad delay %S (milliseconds)" site ms)
    | _ ->
      invalid "failpoint %s: unknown action %S (error, crash, delay:<ms>)" site
        s
  in
  {
    action;
    prob_ppm = int_of_float (prob *. 1_000_000.0);
    max_fires;
    draws = Atomic.make 0;
    fired = Atomic.make 0;
  }

let configure t spec =
  if not t.live then
    invalid_arg "failpoints are disabled in this process (null registry)";
  let spec = String.trim spec in
  if spec = "off" || spec = "" then Atomic.set t.sites []
  else begin
    let entries =
      List.filter_map
        (fun e ->
          let e = String.trim e in
          if e = "" then None else Some e)
        (String.split_on_char ';' spec)
    in
    let sites =
      List.fold_left
        (fun acc entry ->
          match String.index_opt entry '=' with
          | None -> invalid "failpoint entry %S: expected <site>=<action>" entry
          | Some i ->
            let name = String.trim (String.sub entry 0 i) in
            let rhs =
              String.trim (String.sub entry (i + 1) (String.length entry - i - 1))
            in
            if name = "seed" then begin
              match Int64.of_string_opt rhs with
              | Some s ->
                Atomic.set t.seed s;
                acc
              | None -> invalid "failpoint seed: bad integer %S" rhs
            end
            else if name = "" then
              invalid "failpoint entry %S: empty site name" entry
            else
              (* later entries override earlier ones for the same site *)
              (name, parse_action name rhs)
              :: List.filter (fun (n, _) -> n <> name) acc)
        [] entries
    in
    Atomic.set t.sites (List.rev sites)
  end

let describe t =
  match Atomic.get t.sites with
  | [] -> "off"
  | sites ->
    String.concat ";"
      (List.map
         (fun (name, s) ->
           let base =
             match s.action with
             | Error -> "error"
             | Crash -> "crash"
             | Delay ms -> Printf.sprintf "delay:%d" ms
           in
           let prob =
             if s.prob_ppm >= 1_000_000 then ""
             else Printf.sprintf "@%g" (float_of_int s.prob_ppm /. 1_000_000.0)
           in
           let cap =
             if s.max_fires = max_int then ""
             else Printf.sprintf "#%d" s.max_fires
           in
           name ^ "=" ^ base ^ prob ^ cap)
         sites)

let fires t =
  List.map
    (fun (name, s) -> name, min (Atomic.get s.fired) s.max_fires)
    (Atomic.get t.sites)

(* ------------------------------------------------------------------ hit *)

(* Claim one of the site's remaining fires, or refuse once the cap is
   reached.  CAS loop so concurrent worker domains never over-fire. *)
let rec claim s =
  let k = Atomic.get s.fired in
  if k >= s.max_fires then false
  else if Atomic.compare_and_set s.fired k (k + 1) then true
  else claim s

let fire_draw t name s =
  let n = Atomic.fetch_and_add s.draws 1 in
  let h =
    fnv1a64 (Printf.sprintf "%Ld/%s/%d" (Atomic.get t.seed) name n)
  in
  let bucket = Int64.rem (Int64.logand h Int64.max_int) 1_000_000L in
  if bucket < Int64.of_int s.prob_ppm && claim s then
    match s.action with
    | Error -> raise (Injected name)
    | Crash -> raise (Crashed name)
    | Delay ms -> Unix.sleepf (float_of_int ms /. 1000.0)

let hit t name =
  if t.live then
    match Atomic.get t.sites with
    | [] -> ()
    | sites -> (
      match List.assoc_opt name sites with
      | None -> ()
      | Some s -> fire_draw t name s)
