(** Monotonic wall-clock timers.

    All timing reported by the pipeline, the CLI and the bench harness goes
    through this module.  The clock is [CLOCK_MONOTONIC]: it measures wall
    time (so domain-parallel phases are not double-counted the way
    [Sys.time]'s process CPU time is) and never jumps backwards (so span
    durations are always non-negative). *)

(** Nanoseconds from an arbitrary fixed origin.  Only differences are
    meaningful. *)
val now_ns : unit -> int

(** [elapsed_ns t0] is [now_ns () - t0]. *)
val elapsed_ns : int -> int

(** Nanoseconds to seconds. *)
val to_s : int -> float
