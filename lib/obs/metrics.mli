(** A metrics document: named counters, per-phase accumulated wall-clock
    seconds, and histograms, serialisable as versioned JSON
    (["scanatpg-metrics/1"]).

    Phases keep first-seen order so the JSON reads in pipeline order;
    repeated {!add_phase} calls with the same name accumulate, which is
    what lets row 7's second compaction pass fold into the same
    [restore]/[omit] phases as row 6's. *)

type t

val create : unit -> t

val counters : t -> Counters.t

(** [add_phase t name seconds] accumulates [seconds] into phase [name]. *)
val add_phase : t -> string -> float -> unit

(** Phases in first-seen order, with accumulated seconds. *)
val phases : t -> (string * float) list

(** [add_hist t name h] merges [h] into the histogram registered under
    [name] (registering a copy if absent). *)
val add_hist : t -> string -> Hist.t -> unit

(** [observe t name v] records one observation directly into the
    histogram registered under [name] (registering one if absent) — the
    service latency path, where building a throwaway {!Hist.t} per
    request just to merge it would be noise. *)
val observe : t -> string -> int -> unit

val hists : t -> (string * Hist.t) list

(** Bucket-wise / name-wise addition; deterministic in any merge order. *)
val merge_into : src:t -> dst:t -> unit

(** [timed t ?trace name f] runs [f] inside a trace span named [name]
    and accumulates its wall-clock duration into phase [name]. *)
val timed : t -> ?trace:Trace.t -> string -> (unit -> 'a) -> 'a

val to_json : t -> string

(** Prometheus text exposition: every line is a bare
    [name{labels} value] sample (no comment/TYPE lines).  Counters as
    [scanatpg_counter{name="..."}], phases as
    [scanatpg_phase_seconds{phase="..."}], histograms as
    [scanatpg_hist_count] / [_sum] / cumulative [_bucket{le="..."}]
    plus [scanatpg_hist{quantile="..."}] percentile samples
    ({!Hist.percentile} upper bounds). *)
val to_prometheus : t -> string

val write_file : t -> string -> unit
