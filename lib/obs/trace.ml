type span = {
  id : int;
  parent : int;
  name : string;
  start_ns : int;
  stop_ns : int;
  attrs : (string * string) list;
}

type t = {
  live : bool;
  mutable next_id : int;
  mutable stack : int list;  (* open span ids, innermost first *)
  mutable closed : span list;  (* completion order, reversed *)
}

let null = { live = false; next_id = 1; stack = []; closed = [] }

let create () = { live = true; next_id = 1; stack = []; closed = [] }

let enabled t = t.live

let with_span t ?(attrs = []) name f =
  if not t.live then f ()
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let parent =
      match t.stack with
      | [] -> 0
      | p :: _ -> p
    in
    t.stack <- id :: t.stack;
    let start_ns = Clock.now_ns () in
    let close () =
      let stop_ns = Clock.now_ns () in
      (match t.stack with
       | s :: rest when s = id -> t.stack <- rest
       | _ -> ());
      t.closed <- { id; parent; name; start_ns; stop_ns; attrs } :: t.closed
    in
    match f () with
    | r ->
      close ();
      r
    | exception e ->
      close ();
      raise e
  end

let spans t = List.rev t.closed

(* Fold [src]'s completed spans into [dst], the way counters merge: ids are
   offset past [dst]'s id space (so merged collectors never collide) and
   [src]'s top-level spans are re-parented under [parent] (a span id of
   [dst], or [0] to keep them top-level).  [src] is untouched.  Collectors
   stay single-domain on their hot path; cross-domain aggregation happens
   only here, at a phase boundary, under the caller's lock. *)
let merge_into ~src ?(parent = 0) ~dst () =
  if dst.live && src.live then begin
    let off = dst.next_id - 1 in
    let remap = function 0 -> parent | p -> p + off in
    List.iter
      (fun s ->
        dst.closed <-
          { s with id = s.id + off; parent = remap s.parent } :: dst.closed)
      (spans src);
    dst.next_id <- dst.next_id + src.next_id - 1
  end

(* ------------------------------------------------------------- exports *)

let children_index all =
  let by_parent = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let siblings =
        match Hashtbl.find_opt by_parent s.parent with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace by_parent s.parent (s :: siblings))
    all;
  fun p ->
    List.sort
      (fun a b -> compare a.id b.id)
      (match Hashtbl.find_opt by_parent p with Some l -> l | None -> [])

let tree_json t =
  let children = children_index (spans t) in
  let rec node s =
    let kids = children s.id in
    Json.Obj
      ([ ("name", Json.Str s.name);
         ("start_ns", Json.Int s.start_ns);
         ("dur_ns", Json.Int (s.stop_ns - s.start_ns)) ]
      @ (if s.attrs = [] then []
         else
           [ ( "attrs",
               Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.attrs) ) ])
      @
      if kids = [] then [] else [ ("children", Json.Arr (List.map node kids)) ])
  in
  Json.Arr (List.map node (children 0))

(* Chrome trace-event JSON (catapult format, Perfetto-loadable): one
   complete ("ph":"X") event per span, timestamps in microseconds.  Each
   top-level span and its subtree get their own [tid], so concurrently
   served requests folded into one collector render as separate tracks
   instead of a bogus nesting. *)
let chrome_string t =
  let all = spans t in
  let parent_of = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace parent_of s.id s.parent) all;
  let rec root id =
    match Hashtbl.find_opt parent_of id with
    | Some 0 | None -> id
    | Some p -> root p
  in
  let b = Buffer.create 1024 in
  Buffer.add_char b '[';
  List.iteri
    (fun i s ->
      Buffer.add_string b (if i > 0 then ",\n" else "\n");
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\": %s, \"cat\": \"scanatpg\", \"ph\": \"X\", \
            \"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %d, \"args\": {"
           (Json.quote s.name)
           (float_of_int s.start_ns /. 1000.)
           (float_of_int (s.stop_ns - s.start_ns) /. 1000.)
           (root s.id));
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (Json.quote k);
          Buffer.add_string b ": ";
          Buffer.add_string b (Json.quote v))
        s.attrs;
      Buffer.add_string b "}}")
    all;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let write_chrome t path = Fileio.write_string path (chrome_string t)

let span_to_json s =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"name\": %s, \"start_ns\": %d, \"stop_ns\": %d, \
                     \"id\": %d, \"parent\": %d, \"attrs\": {"
       (Json.quote s.name) s.start_ns s.stop_ns s.id s.parent);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Json.quote k);
      Buffer.add_string b ": ";
      Buffer.add_string b (Json.quote v))
    s.attrs;
  Buffer.add_string b "}}";
  Buffer.contents b

let write_jsonl t path =
  Fileio.write path (fun oc ->
      List.iter
        (fun s ->
          output_string oc (span_to_json s);
          output_char oc '\n')
        (spans t))
