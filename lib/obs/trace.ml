type span = {
  id : int;
  parent : int;
  name : string;
  start_ns : int;
  stop_ns : int;
  attrs : (string * string) list;
}

type t = {
  live : bool;
  mutable next_id : int;
  mutable stack : int list;  (* open span ids, innermost first *)
  mutable closed : span list;  (* completion order, reversed *)
}

let null = { live = false; next_id = 1; stack = []; closed = [] }

let create () = { live = true; next_id = 1; stack = []; closed = [] }

let enabled t = t.live

let with_span t ?(attrs = []) name f =
  if not t.live then f ()
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let parent =
      match t.stack with
      | [] -> 0
      | p :: _ -> p
    in
    t.stack <- id :: t.stack;
    let start_ns = Clock.now_ns () in
    let close () =
      let stop_ns = Clock.now_ns () in
      (match t.stack with
       | s :: rest when s = id -> t.stack <- rest
       | _ -> ());
      t.closed <- { id; parent; name; start_ns; stop_ns; attrs } :: t.closed
    in
    match f () with
    | r ->
      close ();
      r
    | exception e ->
      close ();
      raise e
  end

let spans t = List.rev t.closed

let span_to_json s =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"name\": %s, \"start_ns\": %d, \"stop_ns\": %d, \
                     \"id\": %d, \"parent\": %d, \"attrs\": {"
       (Json.quote s.name) s.start_ns s.stop_ns s.id s.parent);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Json.quote k);
      Buffer.add_string b ": ";
      Buffer.add_string b (Json.quote v))
    s.attrs;
  Buffer.add_string b "}}";
  Buffer.contents b

let write_jsonl t path =
  Fileio.write path (fun oc ->
      List.iter
        (fun s ->
          output_string oc (span_to_json s);
          output_char oc '\n')
        (spans t))
