(** Named, deterministically-seeded fault-injection sites (DESIGN.md §13).

    A failpoint is a place in the code that can be told, from the
    outside, to misbehave on demand: raise a typed error, simulate a
    crash, or stall.  Production code threads a registry [t] to its
    interesting failure points and calls [hit t "site.name"]; with no
    chaos configured that call is free in the {!Trace.null} sense — the
    {!null} registry costs one immutable branch, a live-but-empty
    registry one atomic load — so the hardened paths carry their
    injection sites permanently, measurement-noise free.

    Determinism: every site draws from an FNV-1a 64 stream over
    (seed, site name, draw index).  The same seed and spec fire at
    exactly the same draw indices, so a chaos soak is replayable by
    pinning the seed (CI pins [CHAOS_SEED]).

    Spec grammar (the [--chaos] flag and the [chaos] daemon op):
    semicolon-separated entries, each
    [<site>=<action>] with action one of
    [error], [crash], [delay:<ms>], optionally suffixed [@<prob>]
    (fire probability in [0,1], default 1) and/or [#<count>] (maximum
    number of fires, default unlimited) — in that order; plus
    [seed=<int>] to set the draw seed.  The whole spec ["off"] (or an
    empty string) clears every site.  Example:
    [seed=42;worker=crash@0.03;cache.compile=error#1;queue=delay:2@0.5]. *)

type action =
  | Error  (** [hit] raises {!Injected} *)
  | Crash  (** [hit] raises {!Crashed} — models a worker/domain death *)
  | Delay of int  (** [hit] sleeps this many milliseconds *)

type t

(** Raised by an [error] site; the payload is the site name. *)
exception Injected of string

(** Raised by a [crash] site; unlike {!Injected} this is meant to escape
    the request handler and exercise crash containment. *)
exception Crashed of string

(** Permanently disabled registry; [hit] is a single branch. *)
val null : t

(** A live registry with no sites configured (and so no effect) until
    {!configure} installs some. *)
val create : ?seed:int64 -> unit -> t

(** [false] exactly for {!null}. *)
val enabled : t -> bool

(** [true] when at least one site is configured. *)
val active : t -> bool

(** [configure t spec] parses [spec] (grammar above) and atomically
    replaces the installed sites; ["off"] clears them.  A [seed=] entry
    re-seeds the draw streams; otherwise the existing seed is kept.
    @raise Invalid_argument on a malformed spec, or when [t] is {!null}. *)
val configure : t -> string -> unit

(** Render the installed sites back as a canonical spec string
    (["off"] when none) — the [chaos] op's response. *)
val describe : t -> string

(** Per-site count of fires so far (capped at the site's [#count]). *)
val fires : t -> (string * int) list

(** [hit t name] performs the configured action of site [name], if any:
    no-op when the registry is disabled, the site is not configured, the
    deterministic draw misses, or the site's fire cap is exhausted.
    @raise Injected for an [error] site
    @raise Crashed for a [crash] site *)
val hit : t -> string -> unit
