(** Power-of-two-bucket histograms of non-negative integers.

    Bucket [0] counts observations [<= 0]; bucket [i >= 1] counts
    observations in [[2^(i-1), 2^i - 1]].  Bucket boundaries are fixed, so
    merging histograms (bucket-wise addition) is deterministic and
    order-independent — the same guarantee the counter sets give. *)

type t

val create : unit -> t

val observe : t -> int -> unit

(** Number of observations. *)
val count : t -> int

(** Sum of all observed values. *)
val sum : t -> int

(** Non-empty buckets as [(inclusive upper bound, count)], ascending. *)
val buckets : t -> (int * int) list

(** [percentile t q] (for [q] in [0..1], clamped) is the inclusive upper
    bound of the bucket holding the [ceil (q * count)]-th smallest
    observation — i.e. an upper estimate of the q-quantile whose error is
    at most the width of that power-of-two bucket (a factor of 2 of the
    true value for observations >= 1).  [0] when the histogram is empty. *)
val percentile : t -> float -> int

val merge_into : src:t -> dst:t -> unit

val copy : t -> t
