exception
  Parse_error of {
    line : int;
    col : int;
    token : string;
    message : string;
  }

(* 1-based column of [token]'s first occurrence in the raw (unstripped)
   source line, so reported positions survive the comment/whitespace
   stripping the parser works on.  Falls back to column 1 when the token
   cannot be located (e.g. it was synthesized by the parser). *)
let find_col raw token =
  let n = String.length raw and m = String.length token in
  if m = 0 || m > n then 1
  else begin
    let col = ref 1 in
    (try
       for i = 0 to n - m do
         if String.sub raw i m = token then begin
           col := i + 1;
           raise Exit
         end
       done
     with Exit -> ());
    !col
  end

let fail ~line ~raw ~token fmt =
  Format.kasprintf
    (fun message ->
      raise (Parse_error { line; col = find_col raw token; token; message }))
    fmt

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

(* "KIND(a, b, c)" -> (KIND, [a; b; c]) *)
let parse_call ~lineno ~raw s =
  match String.index_opt s '(' with
  | None -> fail ~line:lineno ~raw ~token:s "expected '(' in %S" s
  | Some lp ->
    if s.[String.length s - 1] <> ')' then
      fail ~line:lineno ~raw ~token:s "expected ')' in %S" s;
    let head = strip (String.sub s 0 lp) in
    let inner = String.sub s (lp + 1) (String.length s - lp - 2) in
    let args =
      if strip inner = "" then []
      else List.map strip (String.split_on_char ',' inner)
    in
    List.iter
      (fun a ->
        if a = "" then
          fail ~line:lineno ~raw ~token:s "empty argument in %S" s)
      args;
    head, args

let parse_string ~name text =
  let b = Circuit.Builder.create ~name () in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = strip (strip_comment raw) in
      if line <> "" then
        match String.index_opt line '=' with
        | Some eq ->
          let lhs = strip (String.sub line 0 eq) in
          let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
          if lhs = "" then
            fail ~line:lineno ~raw ~token:"=" "missing signal name";
          let kind_s, args = parse_call ~lineno ~raw rhs in
          (match Gate.of_string kind_s with
           | Some Gate.Input ->
             fail ~line:lineno ~raw ~token:kind_s
               "INPUT cannot appear on a gate right-hand side"
           | Some kind -> Circuit.Builder.add_gate b lhs kind args
           | None ->
             fail ~line:lineno ~raw ~token:kind_s "unknown gate kind %S" kind_s)
        | None ->
          let head, args = parse_call ~lineno ~raw line in
          (match String.uppercase_ascii head, args with
           | "INPUT", [ a ] -> Circuit.Builder.add_input b a
           | "OUTPUT", [ a ] -> Circuit.Builder.add_output b a
           | ("INPUT" | "OUTPUT"), _ ->
             fail ~line:lineno ~raw ~token:head "%s takes exactly one signal"
               head
           | _ ->
             fail ~line:lineno ~raw ~token:head
               "expected INPUT/OUTPUT declaration, got %S" head))
    lines;
  Circuit.Builder.build b

let parse_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let base = Filename.remove_extension (Filename.basename path) in
  parse_string ~name:base text

let to_string c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Circuit.name c));
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Circuit.node c i).Circuit.name))
    (Circuit.inputs c);
  Array.iter
    (fun o -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Circuit.node c o).Circuit.name))
    (Circuit.outputs c);
  let emit nd =
    let fanins =
      String.concat ", "
        (List.map (fun f -> (Circuit.node c f).Circuit.name) (Array.to_list nd.Circuit.fanins))
    in
    Buffer.add_string buf
      (Printf.sprintf "%s = %s(%s)\n" nd.Circuit.name (Gate.to_string nd.Circuit.kind) fanins)
  in
  Array.iter (fun nd ->
      match nd.Circuit.kind with
      | Gate.Dff -> emit nd
      | _ -> ())
    (Circuit.nodes c);
  Array.iter (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | _ -> emit nd)
    (Circuit.nodes c);
  Buffer.contents buf

let write_file path c = Obs.Fileio.write_string path (to_string c)
