type t = {
  order : int array;
  level : int array;
  depth : int;
  level_counts : int array;
}

let of_circuit c =
  let n = Circuit.node_count c in
  let level = Array.make n (-1) in
  let rec level_of i =
    if level.(i) >= 0 then level.(i)
    else begin
      let nd = Circuit.node c i in
      let l =
        match nd.Circuit.kind with
        | Gate.Input | Gate.Dff -> 0
        | _ ->
          1 + Array.fold_left (fun acc f -> max acc (level_of f)) (-1) nd.Circuit.fanins
      in
      level.(i) <- l;
      l
    end
  in
  let depth = ref 0 in
  for i = 0 to n - 1 do
    depth := max !depth (level_of i)
  done;
  let combinational =
    Array.of_list
      (List.filter
         (fun i ->
           match (Circuit.node c i).Circuit.kind with
           | Gate.Input | Gate.Dff -> false
           | _ -> true)
         (List.init n Fun.id))
  in
  (* Stable sort by level keeps declaration order within a level, which in
     turn keeps simulation traces reproducible across runs. *)
  let order = Array.copy combinational in
  Array.stable_sort (fun a b -> compare level.(a) level.(b)) order;
  let level_counts = Array.make (!depth + 1) 0 in
  Array.iter
    (fun i -> level_counts.(level.(i)) <- level_counts.(level.(i)) + 1)
    order;
  { order; level; depth = !depth; level_counts }

let output_level t c =
  let acc = ref 0 in
  Array.iter (fun o -> acc := max !acc t.level.(o)) (Circuit.outputs c);
  Array.iter
    (fun ff ->
      let d = (Circuit.node c ff).Circuit.fanins.(0) in
      acc := max !acc t.level.(d))
    (Circuit.dffs c);
  !acc
