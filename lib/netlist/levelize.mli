(** Levelization of the combinational core of a circuit.

    Sources ([Input] nodes and [Dff] outputs) sit at level 0; every
    combinational gate gets level [1 + max(level of fanins)].  [order] lists
    the combinational gates in a valid evaluation order (non-decreasing
    level), which the simulators and the ATPG engine replay. *)

type t = private {
  order : int array;  (** combinational gate ids in evaluation order *)
  level : int array;  (** per node id; 0 for sources *)
  depth : int;  (** maximum level *)
  level_counts : int array;
  (** per level [0..depth]: number of combinational gates at that level —
      the capacity bound an event-driven simulator needs for its per-level
      event buckets (sources sit at level 0 and are never enqueued) *)
}

val of_circuit : Circuit.t -> t

(** [output_level lv c] is the maximum level over observed nodes and DFF
    data inputs — the depth that bounds signal propagation in one frame. *)
val output_level : t -> Circuit.t -> int
