(** Reader and writer for the ISCAS-89 [.bench] netlist format, extended
    with a [MUX(sel, a, b)] primitive (used by scan insertion).

    Grammar (one item per line, [#] starts a comment):
    {v
      INPUT(name)
      OUTPUT(name)
      name = KIND(fanin1, fanin2, ...)
    v}
    [KIND] is case-insensitive; [BUFF] is accepted for [BUF]. *)

(** [line] and [col] are 1-based positions in the source text ([col] points
    into the raw line, before comment stripping); [token] is the offending
    lexeme the position refers to. *)
exception
  Parse_error of {
    line : int;
    col : int;
    token : string;
    message : string;
  }

(** [parse_string ~name s] builds a circuit from [.bench] text.
    @raise Parse_error on malformed text.
    @raise Circuit.Invalid_circuit on structurally invalid netlists. *)
val parse_string : name:string -> string -> Circuit.t

(** [parse_file path] reads and parses [path]; the circuit is named after the
    file's basename without extension. *)
val parse_file : string -> Circuit.t

(** [to_string c] renders [c] in [.bench] syntax: inputs, then outputs, then
    DFFs, then combinational gates in declaration order. *)
val to_string : Circuit.t -> string

val write_file : string -> Circuit.t -> unit
