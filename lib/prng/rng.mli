(** Deterministic pseudo-random number generation (SplitMix64).

    All randomness in the project flows through named streams derived from a
    root seed, so circuit generation, random vector fill and the bench
    harness are fully reproducible. *)

type t

val create : int64 -> t

(** [of_string seed label] derives a stream from a textual label — used to
    give every (circuit, phase) pair an independent, stable stream. *)
val of_string : int64 -> string -> t

(** [split t] derives an independent child stream, advancing [t]. *)
val split : t -> t

(** Snapshot of the stream position, for checkpointing.  [of_state
    (state t)] continues exactly where [t] stood. *)
val state : t -> int64

val of_state : int64 -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t n] draws uniformly from [\[0, n)].  @raise Invalid_argument if
    [n <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** [choose t arr] picks a uniform element.  @raise Invalid_argument on an
    empty array. *)
val choose : t -> 'a array -> 'a
