type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let of_string seed label =
  (* FNV-1a over the label folded into the seed. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    label;
  create (mix (Int64.add seed !h))

let split t = create (next t)

let state t = t.state

let of_state s = { state = s }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod n

let bool t = Int64.logand (next t) 1L = 1L

let choose t arr =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t n)
