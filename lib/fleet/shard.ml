type launcher =
  | Exec of (int -> string -> string array)
  | Inproc of (string -> int)

type kind =
  | Pid of int
  | Dom of { stopped : bool Atomic.t; dom : unit Domain.t }

type proc = {
  kind : kind;
  mutable reaped : bool;
}

let spawn launcher ~idx ~socket =
  match launcher with
  | Exec argv_of ->
    let argv = argv_of idx socket in
    if Array.length argv = 0 then invalid_arg "Shard.spawn: empty argv";
    (* A stale socket from a crashed predecessor is unlinked by the
       daemon's own listen path; nothing to clean here. *)
    let pid =
      Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
    in
    { kind = Pid pid; reaped = false }
  | Inproc main ->
    let stopped = Atomic.make false in
    let dom =
      Domain.spawn (fun () ->
          (try ignore (main socket) with _ -> ());
          Atomic.set stopped true)
    in
    { kind = Dom { stopped; dom }; reaped = false }

(* [alive] doubles as the zombie reaper for process shards: a WNOHANG
   waitpid that observes the exit also collects it, so the router's
   per-tick sweep needs no separate wait pass. *)
let alive p =
  if p.reaped then false
  else
    match p.kind with
    | Pid pid -> (
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> true
      | _ -> p.reaped <- true; false
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
        p.reaped <- true;
        false)
    | Dom { stopped; _ } -> not (Atomic.get stopped)

(* Forced stop.  A process shard dies by SIGKILL — that is the
   supervision contract under test.  A domain shard cannot be killed
   from outside, so the best effort is a shutdown frame on a throwaway
   connection: the daemon drains and the domain winds down; [alive]
   flips once it does. *)
let kill p ~socket =
  match p.kind with
  | Pid pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
  | Dom _ -> (
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
      (try
         Unix.connect fd (Unix.ADDR_UNIX socket);
         Server.Protocol.write_frame fd "{\"id\":0,\"op\":\"shutdown\"}"
       with _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ()))

(* Blocking collection at drain: join the domain / wait for the process
   so no shard outlives the router. *)
let reap p =
  if not p.reaped then begin
    (match p.kind with
    | Pid pid -> (
      try ignore (Unix.waitpid [] pid)
      with Unix.Unix_error _ -> ())
    | Dom { dom; _ } -> ( try Domain.join dom with _ -> ()));
    p.reaped <- true
  end

let pid p = match p.kind with Pid pid -> Some pid | Dom _ -> None
