(** Backend shard lifecycle: spawn, liveness, forced stop (DESIGN.md §15).

    A shard is one `scanatpg serve` daemon owned by the router.  Two
    launch modes share one supervision surface:

    - {!Exec} forks a real OS process from an argv template (the
      `scanatpg router` subcommand re-execs its own binary).  Liveness
      is a WNOHANG [waitpid] — which also reaps the zombie — and a
      forced stop is SIGKILL, so injected shard crashes exercise the
      genuine process-death path.
    - {!Inproc} runs {!Server.Daemon.run} on a fresh domain inside the
      calling process (tests and the bench harness, which must not
      depend on a binary's path).  Liveness is a completion flag; a
      domain cannot be killed from outside, so a forced stop degrades to
      a best-effort shutdown frame and the daemon's own drain.

    The router treats both identically: [alive] false → restart with
    backoff. *)

type launcher =
  | Exec of (int -> string -> string array)
      (** [argv_of idx socket]: argv for shard [idx] listening on
          [socket]; [argv.(0)] is the executable path *)
  | Inproc of (string -> int)
      (** [main socket]: a blocking daemon entry (its exit code is
          discarded), run on a spawned domain *)

type proc

val spawn : launcher -> idx:int -> socket:string -> proc

(** Liveness probe; for {!Exec} shards this also reaps an exited child. *)
val alive : proc -> bool

(** Forced stop: SIGKILL for a process shard, a best-effort shutdown
    frame to [socket] for a domain shard. *)
val kill : proc -> socket:string -> unit

(** Blocking collection ([waitpid] / [Domain.join]); idempotent. *)
val reap : proc -> unit

(** The OS pid for {!Exec} shards, [None] for {!Inproc}. *)
val pid : proc -> int option
