(** Open-loop load harness (`scanatpg batch --rate R --duration S`).

    Arrival [i] of [ceil (rate * duration)] goes on the wire at
    [t0 + i/rate] whether or not earlier responses have returned — the
    sender never self-throttles, so overload shows up in the measured
    tail instead of silently stretching the run.  The schedule is fully
    deterministic: uniform spacing, template per arrival drawn by an
    FNV-1a hash of [(seed, i)].  Latency for each request is measured
    from its {e scheduled} arrival time, charging the server for
    queueing even when the sender fell behind.

    All requests pipeline over one connection; a reader domain collects
    responses and feeds an {!Obs.Hist}, exactly like the batch client's
    pipelined attempt.  There are no retries — the harness is a
    measurement instrument, not a delivery mechanism. *)

type report = {
  offered_rps : float;
  duration_s : float;
  sent : int;  (** frames actually written (short on transport failure) *)
  completed : int;  (** responses collected *)
  lost : int;  (** [sent - completed] *)
  achieved_rps : float;
  by_status : (string * int) list;  (** response [status] tallies, sorted *)
  p50_ms : float;
  p90_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;  (** upper bound of the hottest histogram bucket *)
}

(** [run ~addr ~templates ~rate ~duration_s ~seed ()] replays the
    deterministic schedule against [addr].  [templates] are JSONL
    request lines; any [id] field is stripped and restamped per
    arrival.
    @raise Invalid_argument on a non-positive rate/duration or an empty
    template list; [Failure] on an unparsable template. *)
val run :
  addr:Server.Daemon.addr ->
  templates:string list ->
  rate:float ->
  duration_s:float ->
  seed:int ->
  unit ->
  report

(** The deterministic template draw for arrival [i]: FNV-1a over
    [(seed, i)] mod [n].  Exposed for tests. *)
val pick : seed:int -> n:int -> int -> int

(** Machine-readable report, schema [scanatpg-load/1]. *)
val report_json : report -> Obs.Json.t

(** Human-readable summary on stderr. *)
val print_report : report -> unit
