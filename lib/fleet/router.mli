(** Sharding front-end router (DESIGN.md §15).

    One single-domain select loop accepts the daemon wire protocol
    ({!Server.Protocol}), answers admin ops itself, and routes every
    compute request to one of [shards] backend daemons it spawns and
    supervises.  Shard selection hashes the request's circuit content —
    the same FNV-1a key the compiled-circuit cache uses
    ({!Server.Cache.key_of}) — so a circuit's requests pin to one shard
    and keep that shard's LRU slice hot.

    In front of dispatch sits a content-addressed result cache
    ({!Result_cache}): a repeated compute request (keyed on its
    canonical rendering, parallelism knobs excluded) is answered from
    memory, byte-identical to a computed response by the determinism
    contract.  [stats], [chaos], [ping] and [shutdown] bypass it.

    Supervision: a shard that exits, hangs past its health-probe
    timeout, or drops its connection is killed, its in-flight requests
    are requeued (redelivery is safe by purity; a bounded attempts cap
    converts a crash-looping request into a typed [internal_error]), and
    the shard is respawned with exponential backoff — reset once a
    health probe round-trips.  Health is the [stats] op over the same
    persistent per-shard connection that carries requests.

    Drain (SIGTERM, SIGINT or a [shutdown] request): the listener
    closes, in-flight requests run down inside [drain_grace_s] (typed
    [internal_error] past it), then a shutdown frame fans out to every
    shard and every shard process is collected before [run] returns.

    Failpoint sites ([Obs.Failpoint], armed via [chaos] or the chaos
    op): [shard] — kill the dispatch target's process, modelling a
    shard crash; [writer] — fault a client response write, poisoning
    that connection only. *)

type config = {
  addr : Server.Daemon.addr;  (** front-end listen address *)
  shards : int;
  shard_socket : int -> string;  (** Unix socket path of shard [i] *)
  launcher : Shard.launcher;
  result_cache_capacity : int;
  max_inflight : int;  (** per client connection, as the daemon's *)
  backlog_depth : int;
      (** queued-behind-a-down-shard bound; beyond it requests get a
          typed [overloaded] rejection *)
  dispatch_attempts : int;  (** delivery cap per request across restarts *)
  restart_backoff_ms : int;
  restart_backoff_max_ms : int;
  connect_timeout_s : float;  (** spawn-to-connectable deadline *)
  health_period_s : float;
  health_timeout_s : float;
  drain_grace_s : float;
  chaos : string option;  (** initial failpoint spec (sites above) *)
  metrics_path : string option;  (** router metrics document, at drain *)
  install_signals : bool;
  verbose : bool;
}

(** Defaults mirror the daemon's where a knob exists on both sides;
    shard sockets derive from the router address ([<path>.shard<i>]). *)
val default_config :
  Server.Daemon.addr -> shards:int -> launcher:Shard.launcher -> config

(** [run config] routes until drained; returns the process exit code
    (0 after a clean fanned-out drain).  Blocks the calling domain.
    @raise Invalid_argument on a malformed [chaos] spec. *)
val run : config -> int
