module Protocol = Server.Protocol
module Daemon = Server.Daemon
module Cache = Server.Cache
module Json = Obs.Json

type config = {
  addr : Daemon.addr;
  shards : int;
  shard_socket : int -> string;
  launcher : Shard.launcher;
  result_cache_capacity : int;
  max_inflight : int;
  backlog_depth : int;
  dispatch_attempts : int;
  restart_backoff_ms : int;
  restart_backoff_max_ms : int;
  connect_timeout_s : float;
  health_period_s : float;
  health_timeout_s : float;
  drain_grace_s : float;
  chaos : string option;
  metrics_path : string option;
  install_signals : bool;
  verbose : bool;
}

let default_config addr ~shards ~launcher =
  let base =
    match addr with
    | Daemon.Unix_sock path -> path
    | Daemon.Tcp (host, port) -> Printf.sprintf "scanatpg-%s-%d" host port
  in
  {
    addr;
    shards = max 1 shards;
    shard_socket = (fun i -> Printf.sprintf "%s.shard%d" base i);
    launcher;
    result_cache_capacity = 256;
    max_inflight = 64;
    backlog_depth = 64;
    dispatch_attempts = 3;
    restart_backoff_ms = 100;
    restart_backoff_max_ms = 5000;
    connect_timeout_s = 10.0;
    health_period_s = 2.0;
    health_timeout_s = 10.0;
    drain_grace_s = 5.0;
    chaos = None;
    metrics_path = None;
    install_signals = true;
    verbose = false;
  }

(* --------------------------------------------------------------- state *)

type cconn = {
  fd : Unix.file_descr;
  cid : int;
  dec : Protocol.decoder;
  mutable inflight : int;
  mutable eof : bool;
  mutable closed : bool;
}

type pkind =
  | Client of {
      client : cconn;
      client_id : int;
      ckey : string option;  (* result-cache key; [None] = do not insert *)
      enq_ns : int;
    }
  | Probe

type pend = {
  p_body : string;  (* canonical request under the serial id; redispatchable *)
  p_shard : int;
  p_kind : pkind;
  mutable p_attempts : int;  (* deliveries so far *)
}

type shard_state = {
  s_idx : int;
  s_socket : string;
  mutable s_proc : Shard.proc option;
  mutable s_fd : Unix.file_descr option;
  mutable s_dec : Protocol.decoder;
  s_inflight : int Queue.t;  (* serials delivered, awaiting responses *)
  s_backlog : int Queue.t;  (* serials awaiting (re)delivery *)
  mutable s_up : bool;
  mutable s_started : bool;  (* first spawn happened (restart accounting) *)
  mutable s_next_attempt : float;
  mutable s_backoff_ms : int;
  mutable s_restarts : int;
  mutable s_spawned : float;
  mutable s_probe : int option;  (* outstanding health-probe serial *)
  mutable s_probe_sent : float;
  mutable s_last_probe : float;
}

type state = {
  cfg : config;
  fp : Obs.Failpoint.t;
  metrics : Obs.Metrics.t;  (* router loop only; no locking needed *)
  rc : Result_cache.t;
  pending : (int, pend) Hashtbl.t;
  shards : shard_state array;
  mutable serial : int;
  mutable next_cid : int;
  mutable draining : bool;
  drain_flag : bool Atomic.t;
}

let say st fmt =
  Printf.ksprintf
    (fun s ->
      if st.cfg.verbose then Printf.eprintf "scanatpg router: %s\n%!" s)
    fmt

let bump st name n = Obs.Counters.add (Obs.Metrics.counters st.metrics) name n
let observe st name v = Obs.Metrics.observe st.metrics name v

(* ------------------------------------------------------- client writes *)

let close_cconn conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* One response frame to a client; a dead peer or an injected [writer]
   fault poisons that connection only (the retrying batch client
   reconnects and replays its unanswered requests). *)
let send_client st conn payload =
  if not conn.closed then
    try
      Obs.Failpoint.hit st.fp "writer";
      Protocol.write_frame conn.fd payload
    with _ ->
      bump st "router.conn_aborted" 1;
      close_cconn conn

(* One routed request fully settled (answered or its connection gone). *)
let complete st serial conn =
  Hashtbl.remove st.pending serial;
  bump st "server.inflight" (-1);
  conn.inflight <- conn.inflight - 1;
  if conn.eof && conn.inflight = 0 then close_cconn conn

(* -------------------------------------------------- shard supervision *)

let remove_serial q serial =
  let n = Queue.length q in
  for _ = 1 to n do
    let s = Queue.pop q in
    if s <> serial then Queue.push s q
  done

let give_up st serial p =
  match p.p_kind with
  | Probe -> Hashtbl.remove st.pending serial
  | Client c ->
    bump st "router.internal_error" 1;
    send_client st c.client
      (Protocol.error_response ~id:c.client_id "internal_error"
         (Printf.sprintf "shard %d unavailable after %d deliveries" p.p_shard
            p.p_attempts));
    complete st serial c.client

(* Redispatch is safe by the purity contract: a lost delivery re-executes
   the identical canonical request and yields byte-identical bytes.  The
   attempts cap stops a request that kills its shard from crash-looping
   the fleet forever. *)
let requeue st sh serial p =
  if p.p_attempts >= st.cfg.dispatch_attempts then give_up st serial p
  else begin
    if p.p_attempts > 0 then bump st "router.redispatched" 1;
    Queue.push serial sh.s_backlog
  end

let kill_proc sh =
  match sh.s_proc with
  | Some proc -> Shard.kill proc ~socket:sh.s_socket
  | None -> ()

(* The shard is gone (process death, connection EOF, write failure,
   health timeout): tear down the connection, move its in-flight serials
   back to the backlog for redelivery after restart, and schedule the
   respawn with exponential backoff. *)
let shard_down st sh reason =
  if sh.s_up || sh.s_fd <> None then
    say st "shard %d down (%s); %d in flight requeued" sh.s_idx reason
      (Queue.length sh.s_inflight);
  (match sh.s_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  sh.s_fd <- None;
  sh.s_up <- false;
  (* a half-dead shard (live process, dead connection) is killed so the
     respawn converges on one process per shard socket *)
  (match sh.s_proc with
  | Some proc when Shard.alive proc -> kill_proc sh
  | _ -> ());
  (match sh.s_probe with
  | Some serial ->
    Hashtbl.remove st.pending serial;
    remove_serial sh.s_inflight serial;
    sh.s_probe <- None
  | None -> ());
  while not (Queue.is_empty sh.s_inflight) do
    let serial = Queue.pop sh.s_inflight in
    match Hashtbl.find_opt st.pending serial with
    | Some p -> requeue st sh serial p
    | None -> ()
  done;
  let now = Unix.gettimeofday () in
  sh.s_next_attempt <- now +. (float_of_int sh.s_backoff_ms /. 1000.0);
  sh.s_backoff_ms <- min (sh.s_backoff_ms * 2) st.cfg.restart_backoff_max_ms

(* Deliver one pending serial to its shard.  The [shard] failpoint
   models an injected shard crash on the dispatch path: the target's
   process is killed outright, and the request rides the ordinary
   redispatch machinery. *)
let rec dispatch st sh serial =
  match Hashtbl.find_opt st.pending serial with
  | None -> ()
  | Some p -> (
    (match Obs.Failpoint.hit st.fp "shard" with
    | () -> ()
    | exception (Obs.Failpoint.Injected _ | Obs.Failpoint.Crashed _) ->
      bump st "router.shard_kills" 1;
      say st "injected crash of shard %d" sh.s_idx;
      kill_proc sh);
    match sh.s_fd with
    | None -> Queue.push serial sh.s_backlog
    | Some fd -> (
      p.p_attempts <- p.p_attempts + 1;
      match Protocol.write_frame fd p.p_body with
      | () ->
        Queue.push serial sh.s_inflight;
        bump st "router.dispatched" 1
      | exception _ ->
        shard_down st sh "write failed";
        requeue st sh serial p))

and flush_backlog st sh =
  while sh.s_up && not (Queue.is_empty sh.s_backlog) do
    dispatch st sh (Queue.pop sh.s_backlog)
  done

let try_restart st sh now =
  if not sh.s_up then begin
    (match sh.s_proc with
    | Some p when Shard.alive p ->
      (* spawned but not yet connectable; enforce the connect timeout *)
      if now -. sh.s_spawned > st.cfg.connect_timeout_s then begin
        say st "shard %d failed to come up in %.1fs, killing" sh.s_idx
          st.cfg.connect_timeout_s;
        kill_proc sh
      end
    | _ ->
      if now >= sh.s_next_attempt then begin
        (match sh.s_proc with Some p -> Shard.reap p | None -> ());
        if sh.s_started then begin
          sh.s_restarts <- sh.s_restarts + 1;
          bump st "router.shard_restarts" 1
        end;
        sh.s_started <- true;
        sh.s_spawned <- now;
        say st "spawning shard %d on %s" sh.s_idx sh.s_socket;
        sh.s_proc <-
          Some (Shard.spawn st.cfg.launcher ~idx:sh.s_idx ~socket:sh.s_socket)
      end);
    match sh.s_proc with
    | Some p when Shard.alive p -> (
      match Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error _ -> ()
      | fd -> (
        match Unix.connect fd (Unix.ADDR_UNIX sh.s_socket) with
        | () ->
          sh.s_fd <- Some fd;
          sh.s_dec <- Protocol.decoder ();
          sh.s_up <- true;
          sh.s_last_probe <- now;
          say st "shard %d up (%d backlogged)" sh.s_idx
            (Queue.length sh.s_backlog);
          flush_backlog st sh
        | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ())))
    | _ -> ()
  end

let issue_probe st sh now =
  let serial = st.serial in
  st.serial <- serial + 1;
  let body = Printf.sprintf "{\"id\":%d,\"op\":\"stats\"}" serial in
  Hashtbl.replace st.pending serial
    { p_body = body; p_shard = sh.s_idx; p_kind = Probe; p_attempts = 0 };
  sh.s_probe <- Some serial;
  sh.s_probe_sent <- now;
  sh.s_last_probe <- now;
  bump st "router.probes" 1;
  dispatch st sh serial

let supervise st now =
  Array.iter
    (fun sh ->
      (* a SIGKILLed / exited shard process is noticed here even when no
         read on its connection is pending *)
      (match sh.s_proc with
      | Some p when sh.s_up && not (Shard.alive p) ->
        shard_down st sh "process exited"
      | _ -> ());
      if sh.s_up then begin
        match sh.s_probe with
        | Some _ when now -. sh.s_probe_sent > st.cfg.health_timeout_s ->
          bump st "router.health_timeouts" 1;
          say st "shard %d health probe timed out" sh.s_idx;
          kill_proc sh;
          shard_down st sh "health timeout"
        | Some _ -> ()
        | None ->
          if now -. sh.s_last_probe >= st.cfg.health_period_s then
            issue_probe st sh now
      end
      else try_restart st sh now)
    st.shards

(* --------------------------------------------------- response plumbing *)

(* Responses carry ["status"] as the field right after [id]/[op] (or
   right after [id] for typed errors), so the first occurrence of the
   key names the response status — no payload string can shadow it
   earlier. *)
let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let status_is_ok suffix =
  match find_sub suffix "\"status\":\"" with
  | None -> false
  | Some i ->
    let j = i + String.length "\"status\":\"" in
    j + 3 <= String.length suffix && String.sub suffix j 3 = "ok\""

let handle_shard_frame st sh payload =
  match Result_cache.split_id payload with
  | None -> bump st "router.bad_response" 1
  | Some (serial, suffix) -> (
    remove_serial sh.s_inflight serial;
    match Hashtbl.find_opt st.pending serial with
    | None -> ()  (* settled while the shard was being restarted *)
    | Some p -> (
      match p.p_kind with
      | Probe ->
        Hashtbl.remove st.pending serial;
        sh.s_probe <- None;
        (* a healthy probe round-trip proves the shard stable: reset the
           restart backoff to its base *)
        sh.s_backoff_ms <- st.cfg.restart_backoff_ms;
        bump st "router.probes_ok" 1
      | Client c ->
        (match c.ckey with
        | Some key when status_is_ok suffix ->
          Result_cache.add st.rc ~key ~suffix
        | _ -> ());
        send_client st c.client (Result_cache.splice_id ~id:c.client_id suffix);
        observe st "server.e2e_ns" (Obs.Clock.now_ns () - c.enq_ns);
        complete st serial c.client))

let handle_shard_readable st sh buf =
  match sh.s_fd with
  | None -> ()
  | Some fd -> (
    let n =
      try Unix.read fd buf 0 (Bytes.length buf) with
      | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        -1
    in
    if n = 0 then shard_down st sh "connection closed"
    else if n > 0 then begin
      Protocol.feed sh.s_dec buf 0 n;
      let rec frames () =
        match Protocol.next sh.s_dec with
        | exception Protocol.Frame_too_large _ ->
          shard_down st sh "oversized response frame"
        | Some payload ->
          handle_shard_frame st sh payload;
          frames ()
        | None -> ()
      in
      frames ()
    end)

(* ------------------------------------------------------------ requests *)

let salvage_id payload =
  match Json.parse payload with
  | exception Json.Parse_error _ -> 0
  | j -> (
    match Option.bind (Json.member "id" j) Json.get_int with
    | Some id -> id
    | None -> 0)

let shard_of st (c : Protocol.compute) =
  (* the same FNV-1a content key the compiled-circuit cache uses, so a
     circuit's requests pin to one shard and keep its LRU slice hot *)
  let key =
    Cache.key_of c.Protocol.src ~scale:c.Protocol.scale
      ~chains:c.Protocol.chains
  in
  let h = Cache.fnv1a64 key in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int)
                  (Int64.of_int st.cfg.shards))

let shards_json st =
  Json.Arr
    (Array.to_list
       (Array.map
          (fun sh ->
            Json.Obj
              [ "shard", Json.Int sh.s_idx;
                "socket", Json.Str sh.s_socket;
                "up", Json.Bool sh.s_up;
                "restarts", Json.Int sh.s_restarts;
                "inflight", Json.Int (Queue.length sh.s_inflight);
                "backlog", Json.Int (Queue.length sh.s_backlog) ])
          st.shards))

(* The stats op answers from the router's own metrics plane (mirroring
   the daemon's document shape so `scanatpg top` works unchanged), plus
   a [result_cache] section and a per-shard supervision table.  Like the
   daemon's, the payload reports live state and is the documented
   exception to byte-determinism. *)
let stats_payload st ~id ~prom =
  let m = st.metrics in
  if prom then
    Json.to_string
      (Json.Obj
         [ "id", Json.Int id; "op", Json.Str "stats"; "status", Json.Str "ok";
           "format", Json.Str "prometheus";
           "text", Json.Str (Obs.Metrics.to_prometheus m) ])
  else begin
    let counters =
      Json.Obj
        (List.map
           (fun (name, v) -> name, Json.Int v)
           (Obs.Counters.to_alist (Obs.Metrics.counters m)))
    in
    let histograms =
      Json.Obj
        (List.map
           (fun (name, h) ->
             ( name,
               Json.Obj
                 [ "count", Json.Int (Obs.Hist.count h);
                   "sum", Json.Int (Obs.Hist.sum h);
                   "p50", Json.Int (Obs.Hist.percentile h 0.50);
                   "p90", Json.Int (Obs.Hist.percentile h 0.90);
                   "p95", Json.Int (Obs.Hist.percentile h 0.95);
                   "p99", Json.Int (Obs.Hist.percentile h 0.99) ] ))
           (Obs.Metrics.hists m))
    in
    let rs = Result_cache.stats st.rc in
    Json.to_string
      (Json.Obj
         [ "id", Json.Int id; "op", Json.Str "stats"; "status", Json.Str "ok";
           "counters", counters; "phases", Json.Obj [];
           "histograms", histograms;
           ( "result_cache",
             Json.Obj
               [ "entries", Json.Int (Result_cache.length st.rc);
                 "capacity", Json.Int (Result_cache.capacity st.rc);
                 "hits", Json.Int rs.Result_cache.hits;
                 "misses", Json.Int rs.Result_cache.misses;
                 "insertions", Json.Int rs.Result_cache.insertions;
                 "evictions", Json.Int rs.Result_cache.evictions ] );
           "shards", shards_json st ])
  end

let ok_ack ~id op =
  Json.to_string
    (Json.Obj
       [ "id", Json.Int id; "op", Json.Str op; "status", Json.Str "ok" ])

let reject st conn ~id reason =
  bump st "router.overloaded" 1;
  send_client st conn (Protocol.error_response ~id "overloaded" reason)

let admit st conn (req : Protocol.request) (c : Protocol.compute) =
  let id = req.Protocol.id in
  if st.draining then reject st conn ~id "router is draining"
  else if conn.inflight >= st.cfg.max_inflight then
    reject st conn ~id "connection in-flight cap reached"
  else begin
    let ckey = Protocol.canonical_of_request ~id:0 ~drop_jobs:true req in
    match Result_cache.find st.rc ~key:ckey with
    | Some suffix ->
      bump st "server.result_hit" 1;
      bump st "server.accepted" 1;
      let t0 = Obs.Clock.now_ns () in
      send_client st conn (Result_cache.splice_id ~id suffix);
      observe st "server.e2e_ns" (Obs.Clock.now_ns () - t0)
    | None -> (
      bump st "server.result_miss" 1;
      let idx = shard_of st c in
      let sh = st.shards.(idx) in
      if
        (not sh.s_up)
        && Queue.length sh.s_backlog >= st.cfg.backlog_depth
      then reject st conn ~id (Printf.sprintf "shard %d backlog is full" idx)
      else begin
        let serial = st.serial in
        st.serial <- serial + 1;
        let body = Protocol.canonical_of_request ~id:serial req in
        Hashtbl.replace st.pending serial
          {
            p_body = body;
            p_shard = idx;
            p_kind =
              Client
                {
                  client = conn;
                  client_id = id;
                  ckey = Some ckey;
                  enq_ns = Obs.Clock.now_ns ();
                };
            p_attempts = 0;
          };
        conn.inflight <- conn.inflight + 1;
        bump st "server.accepted" 1;
        bump st "server.inflight" 1;
        if sh.s_up then dispatch st sh serial
        else Queue.push serial sh.s_backlog
      end)
  end

let handle_payload st conn payload =
  match Protocol.request_of_string payload with
  | exception Protocol.Bad_request msg ->
    bump st "router.bad_request" 1;
    send_client st conn (Protocol.error_response ~id:(salvage_id payload) "error" msg)
  | req -> (
    let id = req.Protocol.id in
    match req.Protocol.op with
    (* Admin ops are answered by the router itself and bypass the result
       cache: ping for byte-stable liveness, stats for the router's own
       live counters, chaos to arm the router's failpoints, shutdown to
       start the fanned-out drain. *)
    | Protocol.Ping ->
      bump st "server.accepted" 1;
      send_client st conn (ok_ack ~id "ping")
    | Protocol.Stats { prom } ->
      bump st "server.accepted" 1;
      send_client st conn (stats_payload st ~id ~prom)
    | Protocol.Chaos { spec } -> (
      bump st "server.accepted" 1;
      let configured =
        match spec with
        | None -> Ok ()
        | Some s -> (
          try Ok (Obs.Failpoint.configure st.fp s)
          with Invalid_argument msg -> Error msg)
      in
      match configured with
      | Error msg ->
        bump st "router.bad_request" 1;
        send_client st conn (Protocol.error_response ~id "error" msg)
      | Ok () ->
        send_client st conn
          (Json.to_string
             (Json.Obj
                [ "id", Json.Int id; "op", Json.Str "chaos";
                  "status", Json.Str "ok";
                  "active", Json.Str (Obs.Failpoint.describe st.fp);
                  ( "fires",
                    Json.Obj
                      (List.map
                         (fun (n, k) -> n, Json.Int k)
                         (Obs.Failpoint.fires st.fp)) ) ])))
    | Protocol.Shutdown ->
      bump st "server.accepted" 1;
      send_client st conn (ok_ack ~id "shutdown");
      say st "shutdown requested";
      Atomic.set st.drain_flag true
    | Protocol.Generate { c; _ } | Protocol.Compact { c; _ }
    | Protocol.Table { c } ->
      admit st conn req c)

let handle_client_readable st conn buf =
  let n =
    try Unix.read conn.fd buf 0 (Bytes.length buf) with
    | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      -1
  in
  if n = 0 then begin
    conn.eof <- true;
    if Protocol.pending conn.dec > 0 then bump st "router.bad_request" 1;
    if conn.inflight = 0 then close_cconn conn
  end
  else if n > 0 then begin
    Protocol.feed conn.dec buf 0 n;
    let rec frames () =
      match Protocol.next conn.dec with
      | exception Protocol.Frame_too_large { announced; max } ->
        bump st "router.bad_request" 1;
        send_client st conn
          (Protocol.error_response ~id:0 "error"
             (Printf.sprintf "frame of %d bytes exceeds maximum %d" announced
                max));
        close_cconn conn
      | Some payload ->
        handle_payload st conn payload;
        frames ()
      | None -> ()
    in
    frames ()
  end

(* ----------------------------------------------------------- lifecycle *)

let listen_socket = function
  | Daemon.Unix_sock path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Daemon.Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.listen fd 64;
    fd

let client_pending st =
  Hashtbl.fold
    (fun _ p n -> match p.p_kind with Client _ -> n + 1 | Probe -> n)
    st.pending 0

(* Fanned-out drain: stop accepting, run the in-flight requests down
   (restarts included — a request backlogged behind a dead shard still
   gets its answer if the respawn beats the grace deadline), then send
   every live shard a shutdown frame and collect every shard process
   before the router itself exits. *)
let drain st conns listen_fd buf =
  st.draining <- true;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  say st "draining: %d request(s) in flight, grace %.1fs" (client_pending st)
    st.cfg.drain_grace_s;
  let deadline = Unix.gettimeofday () +. st.cfg.drain_grace_s in
  while client_pending st > 0 && Unix.gettimeofday () < deadline do
    let now = Unix.gettimeofday () in
    supervise st now;
    let sfds =
      Array.to_list st.shards
      |> List.filter_map (fun sh -> sh.s_fd)
    in
    (match Unix.select sfds [] [] 0.05 with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
    | ready, _, _ ->
      Array.iter
        (fun sh ->
          match sh.s_fd with
          | Some fd when List.mem fd ready -> handle_shard_readable st sh buf
          | _ -> ())
        st.shards)
  done;
  (* answer whatever could not be completed inside the grace window *)
  let leftovers =
    Hashtbl.fold (fun serial p acc -> (serial, p) :: acc) st.pending []
  in
  List.iter
    (fun (serial, p) ->
      match p.p_kind with
      | Probe -> Hashtbl.remove st.pending serial
      | Client c ->
        bump st "router.internal_error" 1;
        send_client st c.client
          (Protocol.error_response ~id:c.client_id "internal_error"
             "router drained before the shard answered");
        complete st serial c.client)
    leftovers;
  (* fan the shutdown out to every shard, then collect the processes *)
  Array.iter
    (fun sh ->
      (match sh.s_fd with
      | Some fd ->
        (try Protocol.write_frame fd "{\"id\":0,\"op\":\"shutdown\"}"
         with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        sh.s_fd <- None
      | None -> kill_proc sh);
      sh.s_up <- false)
    st.shards;
  Array.iter
    (fun sh ->
      match sh.s_proc with
      | None -> ()
      | Some proc ->
        let kill_at = Unix.gettimeofday () +. st.cfg.drain_grace_s in
        while Shard.alive proc && Unix.gettimeofday () < kill_at do
          Unix.sleepf 0.02
        done;
        if Shard.alive proc then Shard.kill proc ~socket:sh.s_socket;
        Shard.reap proc;
        (try Unix.unlink sh.s_socket with Unix.Unix_error _ -> ()))
    st.shards;
  List.iter close_cconn conns;
  (match st.cfg.metrics_path with
  | None -> ()
  | Some path -> Obs.Metrics.write_file st.metrics path);
  (match st.cfg.addr with
  | Daemon.Unix_sock path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | Daemon.Tcp _ -> ());
  say st "drained";
  0

let run cfg =
  let fp = Obs.Failpoint.create () in
  (match cfg.chaos with
  | None -> ()
  | Some spec -> Obs.Failpoint.configure fp spec);
  let st =
    {
      cfg;
      fp;
      metrics = Obs.Metrics.create ();
      rc = Result_cache.create ~capacity:cfg.result_cache_capacity;
      pending = Hashtbl.create 64;
      shards =
        Array.init cfg.shards (fun i ->
            {
              s_idx = i;
              s_socket = cfg.shard_socket i;
              s_proc = None;
              s_fd = None;
              s_dec = Protocol.decoder ();
              s_inflight = Queue.create ();
              s_backlog = Queue.create ();
              s_up = false;
              s_started = false;
              s_next_attempt = 0.0;
              s_backoff_ms = cfg.restart_backoff_ms;
              s_restarts = 0;
              s_spawned = 0.0;
              s_probe = None;
              s_probe_sent = 0.0;
              s_last_probe = 0.0;
            });
      serial = 0;
      next_cid = 0;
      draining = false;
      drain_flag = Atomic.make false;
    }
  in
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  if cfg.install_signals then begin
    let h = Sys.Signal_handle (fun _ -> Atomic.set st.drain_flag true) in
    ignore (Sys.signal Sys.sigterm h);
    ignore (Sys.signal Sys.sigint h)
  end;
  let listen_fd = listen_socket cfg.addr in
  say st "routing %d shard(s), result cache capacity %d" cfg.shards
    cfg.result_cache_capacity;
  let buf = Bytes.create 65536 in
  let rec loop conns =
    if Atomic.get st.drain_flag then conns
    else begin
      let conns = List.filter (fun c -> not c.closed) conns in
      supervise st (Unix.gettimeofday ());
      let cfds =
        List.filter_map (fun c -> if c.eof then None else Some c.fd) conns
      in
      let sfds =
        Array.to_list st.shards |> List.filter_map (fun sh -> sh.s_fd)
      in
      match Unix.select ((listen_fd :: cfds) @ sfds) [] [] 0.1 with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) ->
        loop conns
      | ready, _, _ ->
        let conns =
          if List.mem listen_fd ready then (
            match Unix.accept ~cloexec:true listen_fd with
            | exception Unix.Unix_error _ -> conns
            | fd, _sa ->
              (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.0
               with Unix.Unix_error _ -> ());
              st.next_cid <- st.next_cid + 1;
              let conn =
                {
                  fd;
                  cid = st.next_cid;
                  dec = Protocol.decoder ();
                  inflight = 0;
                  eof = false;
                  closed = false;
                }
              in
              say st "client connection %d" conn.cid;
              conn :: conns)
          else conns
        in
        Array.iter
          (fun sh ->
            match sh.s_fd with
            | Some fd when List.mem fd ready -> handle_shard_readable st sh buf
            | _ -> ())
          st.shards;
        List.iter
          (fun c ->
            if (not c.eof) && (not c.closed) && List.mem c.fd ready then
              handle_client_readable st c buf)
          conns;
        loop conns
    end
  in
  let conns = loop [] in
  drain st conns listen_fd buf
