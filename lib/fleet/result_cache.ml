type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

type entry = {
  key : string;
  suffix : string;
}

type t = {
  capacity : int;
  mutable entries : entry list;  (* most recently used first *)
  mutable length : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    entries = [];
    length = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = t.length

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    evictions = t.evictions;
  }

(* Responses are rendered with the [id] field first ([Service.execute]
   and [Protocol.error_response] both emit it in position one), so a
   cached payload can be stored id-free and re-addressed to any caller
   by splicing a new id into the fixed prefix.  A payload that does not
   match the shape is simply not cacheable — correctness never depends
   on the splice. *)
let id_prefix = "{\"id\":"

let split_id payload =
  let plen = String.length id_prefix in
  let n = String.length payload in
  if n <= plen || not (String.starts_with ~prefix:id_prefix payload) then None
  else begin
    let i = ref plen in
    if !i < n && payload.[!i] = '-' then incr i;
    let digits0 = !i in
    while !i < n && payload.[!i] >= '0' && payload.[!i] <= '9' do
      incr i
    done;
    if !i = digits0 then None
    else
      let id = int_of_string (String.sub payload plen (!i - plen)) in
      Some (id, String.sub payload !i (n - !i))
  end

let splice_id ~id suffix = Printf.sprintf "%s%d%s" id_prefix id suffix

let find t ~key =
  match List.find_opt (fun e -> e.key = key) t.entries with
  | Some e ->
    t.entries <- e :: List.filter (fun e' -> e' != e) t.entries;
    t.hits <- t.hits + 1;
    Some e.suffix
  | None ->
    t.misses <- t.misses + 1;
    None

let add t ~key ~suffix =
  match List.find_opt (fun e -> e.key = key) t.entries with
  | Some _ -> ()  (* a concurrent miss already filled it; keep the first *)
  | None ->
    let e = { key; suffix } in
    let kept, dropped =
      if t.length >= t.capacity then
        ( List.filteri (fun i _ -> i < t.capacity - 1) t.entries,
          t.length - (t.capacity - 1) )
      else t.entries, 0
    in
    t.entries <- e :: kept;
    t.length <- t.length - dropped + 1;
    t.insertions <- t.insertions + 1;
    t.evictions <- t.evictions + dropped

let mem t ~key = List.exists (fun e -> e.key = key) t.entries
