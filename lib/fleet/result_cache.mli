(** Content-addressed whole-response memoization (DESIGN.md §15).

    The determinism contract (DESIGN.md §11) makes compute responses
    pure functions of their canonical request — byte-identical at any
    worker count, cache state or pool configuration — so the router may
    answer a repeated request from memory without consulting a shard at
    all.  The cache maps a canonical request rendering
    ({!Server.Protocol.canonical_of_request} with [id = 0] and
    [drop_jobs], so requests differing only in parallelism share a key)
    to the response payload bytes with the [id] field stripped; a hit
    re-addresses the stored bytes to the asking request's id.

    Validity boundary: only [ok] responses to compute ops are inserted.
    [stats] reports live counters, [chaos]/[shutdown] mutate the daemon,
    [degraded] depends on how much budget was left, [overloaded] /
    [internal_error] on transient state — none are functions of the
    request alone.  The router enforces that boundary; this module just
    stores what it is given.

    Bounded LRU, single-owner (the router loop); no internal locking. *)

type t

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

val create : capacity:int -> t
val capacity : t -> int

(** Resident entry count. *)
val length : t -> int

val stats : t -> stats

(** [split_id payload] splits a response payload rendered with the [id]
    field first — [{"id":N,...}] — into [(N, suffix)] where [suffix] is
    everything after the id digits.  [None] when the payload does not
    have that shape (such a payload is simply not cacheable). *)
val split_id : string -> (int * string) option

(** [splice_id ~id suffix] is the payload [{"id":id<suffix>] — the
    inverse of {!split_id} under a new id. *)
val splice_id : id:int -> string -> string

(** [find t ~key] returns the stored suffix and bumps the entry to most
    recently used; counts a hit or a miss either way. *)
val find : t -> key:string -> string option

(** [add t ~key ~suffix] inserts (evicting least recently used beyond
    capacity).  A key already present keeps its existing suffix — by
    purity both renderings are identical anyway. *)
val add : t -> key:string -> suffix:string -> unit

(** Membership without touching hit/miss accounting or LRU order. *)
val mem : t -> key:string -> bool
