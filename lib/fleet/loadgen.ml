module Protocol = Server.Protocol
module Client = Server.Client
module Json = Obs.Json

type report = {
  offered_rps : float;
  duration_s : float;
  sent : int;
  completed : int;
  lost : int;
  achieved_rps : float;
  by_status : (string * int) list;
  p50_ms : float;
  p90_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

(* Deterministic template pick for arrival [i]: an FNV-1a draw over
   (seed, i), so the request mix replays exactly under the same seed —
   no wall-clock or PRNG state feeds the schedule. *)
let pick ~seed ~n i =
  if n = 1 then 0
  else
    let h = Server.Cache.fnv1a64 (Printf.sprintf "%d:%d" seed i) in
    Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int n))

let prepare_template idx line =
  match Json.parse line with
  | exception Json.Parse_error { pos; message } ->
    failwith
      (Printf.sprintf "scanatpg batch: template %d: parse error at %d: %s"
         (idx + 1) pos message)
  | Json.Obj fields ->
    (* ids are restamped per arrival; a template id would collide *)
    List.filter (fun (k, _) -> k <> "id") fields
  | _ ->
    failwith
      (Printf.sprintf "scanatpg batch: template %d is not a JSON object"
         (idx + 1))

let status_tally tallies payload =
  let status =
    match Json.parse payload with
    | exception Json.Parse_error _ -> "error"
    | doc -> (
      match Option.bind (Json.member "status" doc) Json.get_str with
      | Some s -> s
      | None -> "error")
  in
  let n = try Hashtbl.find tallies status with Not_found -> 0 in
  Hashtbl.replace tallies status (n + 1)

(* Open loop: arrival [i] goes on the wire at [t0 + i/rate] regardless
   of how many responses have come back — the sender never waits on the
   server, which is what makes an overload measurable instead of
   self-throttling.  Latency is measured from the scheduled arrival, so
   a send that fell behind schedule still charges the server for the
   queueing it caused.  The reader runs on its own domain, exactly like
   the batch client's pipelined attempt. *)
let run ~addr ~templates ~rate ~duration_s ~seed () =
  if rate <= 0.0 then invalid_arg "load rate must be positive";
  if duration_s <= 0.0 then invalid_arg "load duration must be positive";
  let templates = Array.of_list (List.mapi prepare_template templates) in
  let n = Array.length templates in
  if n = 0 then invalid_arg "load harness needs at least one template request";
  let total = max 1 (int_of_float (ceil (rate *. duration_s))) in
  let payload i =
    let fields = templates.(pick ~seed ~n i) in
    Json.to_string (Json.Obj (("id", Json.Int (i + 1)) :: fields))
  in
  let conn = Client.connect addr in
  (* stall guard: an idle 30s mid-collection ends the run rather than
     hanging the harness on a wedged server *)
  (try Unix.setsockopt_float (Client.fd conn) Unix.SO_RCVTIMEO 30.0
   with Unix.Unix_error _ -> ());
  let t0 = Obs.Clock.now_ns () in
  let sched i = t0 + int_of_float (float_of_int i /. rate *. 1e9) in
  let hist = Obs.Hist.create () in
  let tallies = Hashtbl.create 8 in
  let sent = Atomic.make 0 in
  let writer_done = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let rec go got =
          if Atomic.get writer_done && got >= Atomic.get sent then got
          else
            match Protocol.read_frame (Client.fd conn) with
            | exception _ -> got
            | None -> got
            | Some payload ->
              (match Result_cache.split_id payload with
              | Some (id, _) when id >= 1 && id <= total ->
                Obs.Hist.observe hist (Obs.Clock.now_ns () - sched (id - 1))
              | _ -> ());
              status_tally tallies payload;
              go (got + 1)
        in
        go 0)
  in
  (try
     for i = 0 to total - 1 do
       let now = Obs.Clock.now_ns () in
       let target = sched i in
       if target > now then
         Unix.sleepf (float_of_int (target - now) /. 1e9);
       Protocol.write_frame (Client.fd conn) (payload i);
       Atomic.incr sent
     done
   with _ -> ());
  Atomic.set writer_done true;
  (try Unix.shutdown (Client.fd conn) Unix.SHUTDOWN_SEND
   with Unix.Unix_error _ -> ());
  let completed = Domain.join reader in
  let wall_s = Obs.Clock.to_s (Obs.Clock.elapsed_ns t0) in
  Client.close conn;
  let sent = Atomic.get sent in
  let ms ns = float_of_int ns /. 1e6 in
  let pct q = ms (Obs.Hist.percentile hist q) in
  let max_ms =
    match List.rev (Obs.Hist.buckets hist) with
    | (bound, _) :: _ -> ms bound
    | [] -> 0.0
  in
  {
    offered_rps = rate;
    duration_s;
    sent;
    completed;
    lost = sent - completed;
    achieved_rps =
      (if wall_s > 0.0 then float_of_int completed /. wall_s else 0.0);
    by_status =
      List.sort compare
        (Hashtbl.fold (fun s k acc -> (s, k) :: acc) tallies []);
    p50_ms = pct 0.50;
    p90_ms = pct 0.90;
    p95_ms = pct 0.95;
    p99_ms = pct 0.99;
    max_ms;
  }

let report_json r =
  Json.Obj
    [ "schema", Json.Str "scanatpg-load/1";
      "offered_rps", Json.Float r.offered_rps;
      "duration_s", Json.Float r.duration_s;
      "sent", Json.Int r.sent;
      "completed", Json.Int r.completed;
      "lost", Json.Int r.lost;
      "achieved_rps", Json.Float r.achieved_rps;
      ( "by_status",
        Json.Obj (List.map (fun (s, n) -> s, Json.Int n) r.by_status) );
      ( "latency_ms",
        Json.Obj
          [ "p50", Json.Float r.p50_ms;
            "p90", Json.Float r.p90_ms;
            "p95", Json.Float r.p95_ms;
            "p99", Json.Float r.p99_ms;
            "max", Json.Float r.max_ms ] ) ]

let print_report r =
  Printf.eprintf
    "scanatpg load: offered %.1f rps for %.1fs: sent %d, completed %d, lost \
     %d (achieved %.1f rps)\n"
    r.offered_rps r.duration_s r.sent r.completed r.lost r.achieved_rps;
  List.iter
    (fun (s, n) -> Printf.eprintf "scanatpg load:   %-14s %d\n" s n)
    r.by_status;
  Printf.eprintf
    "scanatpg load: latency p50 %.1fms p90 %.1fms p95 %.1fms p99 %.1fms max \
     %.1fms\n%!"
    r.p50_ms r.p90_ms r.p95_ms r.p99_ms r.max_ms
