module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim
module Vectors = Logicsim.Vectors
module Scan = Scanins.Scan

type lengths = {
  total : int;
  scan : int;
}

type table5_row = {
  name : string;
  inp : int;
  stvr : int;
  faults : int;
  detected : int;
  fcov : float;
  funct : int;
}

type table6_row = {
  name : string;
  test_len : lengths;
  restor_len : lengths;
  omit_len : lengths;
  ext_det : int;
  baseline_cycles : int;
}

type table7_row = {
  name : string;
  test_len : lengths;
  restor_len : lengths;
  omit_len : lengths;
  baseline_cycles : int;
}

type result = {
  circuit : string;
  row5 : table5_row;
  row6 : table6_row;
  row7 : table7_row option;
  flow : Flow.stats;
  degraded : bool;
  runtime_s : float;
  metrics : Obs.Metrics.t;
  omit_stats : Compaction.Omission.stats;
}

exception Halted of string

let scan_count scan seq =
  Vectors.count seq ~position:(Scan.sel_position scan) ~value:Logic.One

let lengths scan seq = { total = Array.length seq; scan = scan_count scan seq }

let zero_omit_stats =
  {
    Compaction.Omission.trials = 0;
    accepted = 0;
    rejected = 0;
    removed_vectors = 0;
    passes = 0;
    removed_per_pass = [||];
  }

(* Restoration followed by omission, as in the paper's experiments.  The
   omission trial budget adapts to the restored length so that very large
   circuits stay within a laptop-scale run; the budget is far above what the
   schedule consumes on the small and medium benchmarks.

   [budget] reaches the trial loops of both procedures but deliberately not
   [Target.compute]: a frozen probe there would silently drop compaction
   targets, whereas restoration and omission degrade to a valid (merely
   longer) sequence. *)
let compact ?pool cfg model seq targets ~metrics ~trace ~rstats ~budget =
  (* Speculative-dispatch accounting for both procedures, folded into the
     metrics counters below — i.e. before any checkpoint captures them, so
     a resumed run reports the same totals as an uninterrupted one. *)
  let spec = Compaction.Spec.make () in
  let adaptive = Compaction.Spec.make_adaptive () in
  let restored, targets_r =
    Obs.Metrics.timed metrics ~trace "restore" (fun () ->
        let restored =
          Compaction.Restoration.run ~stats:rstats ~budget
            ~jobs:cfg.Config.compact_jobs ~spec ~adaptive ?pool model seq
            targets
        in
        let targets_r =
          Compaction.Target.compute ~jobs:cfg.Config.sim_jobs model restored
            ~fault_ids:targets.Compaction.Target.fault_ids
        in
        restored, targets_r)
  in
  let omission =
    match cfg.Config.omission.Compaction.Omission.max_trials with
    | Some _ -> cfg.Config.omission
    | None ->
      { cfg.Config.omission with
        Compaction.Omission.max_trials = Some ((4 * Array.length restored) + 2000) }
  in
  let omitted, _, ostats =
    Obs.Metrics.timed metrics ~trace "omit" (fun () ->
        Compaction.Omission.run ~budget ~metrics ~trace ~spec ~adaptive ?pool
          model restored targets_r omission)
  in
  let c = Obs.Metrics.counters metrics in
  Compaction.Spec.record spec c;
  Compaction.Spec.record_adaptive adaptive c;
  Obs.Counters.add c "omit.trials" ostats.Compaction.Omission.trials;
  Obs.Counters.add c "omit.accepted" ostats.Compaction.Omission.accepted;
  Obs.Counters.add c "omit.rejected" ostats.Compaction.Omission.rejected;
  Obs.Counters.add c "omit.removed_vectors"
    ostats.Compaction.Omission.removed_vectors;
  Obs.Counters.add c "omit.passes" ostats.Compaction.Omission.passes;
  restored, omitted, ostats

let run ?(scale = Circuits.Profiles.Quick) ?config ?metrics ?(trace = Obs.Trace.null)
    ?(budget = Obs.Budget.unlimited) ?checkpoint ?resume
    ?(checkpoint_every = 25) ?halt_after ?pool name =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Obs.Metrics.create ()
  in
  (* Wall clock, not [Sys.time]: CPU time both under-reports sleep/IO and
     over-reports domain-parallel phases (it sums across cores). *)
  let t0 = Obs.Clock.now_ns () in
  let rstats = Compaction.Restoration.make_stats () in
  let c = Circuits.Catalog.circuit ~scale name in
  let cfg =
    match config with
    | Some cfg -> cfg
    | None -> Config.for_circuit c
  in
  let fp =
    Checkpoint.fingerprint ~circuit:name ~scale ~seed:cfg.Config.seed
      ~chains:cfg.Config.chains
  in
  (match resume with
   | Some (f : Checkpoint.file) ->
     if f.Checkpoint.fingerprint <> fp then
       raise
         (Checkpoint.Corrupt
            (Printf.sprintf "fingerprint %S does not match this run (%S)"
               f.Checkpoint.fingerprint fp))
   | None -> ());
  let save_stage stage =
    match checkpoint with
    | None -> ()
    | Some path -> Checkpoint.save ~path ~fingerprint:fp stage
  in
  let halt phase =
    match halt_after with
    | Some p when p = phase -> raise (Halted phase)
    | _ -> ()
  in
  let cnt = Obs.Metrics.counters metrics in
  (* The first phase the budget was seen tripped in, for the
     [budget.tripped.<phase>] telemetry counter and the [degraded] flag. *)
  let tripped_in = ref None in
  let note_trip phase =
    if !tripped_in = None && Obs.Budget.expired budget then begin
      tripped_in := Some phase;
      Obs.Counters.add cnt (Printf.sprintf "budget.tripped.%s" phase) 1
    end;
    !tripped_in <> None
  in
  let scan =
    Obs.Metrics.timed metrics ~trace "scan-insert" (fun () ->
        Scan.insert ~chains:cfg.Config.chains c)
  in
  let model =
    Obs.Metrics.timed metrics ~trace "model-build" (fun () ->
        Model.build scan.Scan.circuit)
  in
  let sk = Atpg.Scan_knowledge.create scan in
  (* Phase results restored from a phase-boundary checkpoint, if any. *)
  let restored_phases =
    match resume with
    | Some { Checkpoint.stage = Checkpoint.Phased p; _ } ->
      List.iter (fun (k, v) -> Obs.Counters.add cnt k v) p.Checkpoint.p_counters;
      let r, pr, bs = p.Checkpoint.p_rstats in
      rstats.Compaction.Restoration.restored <- r;
      rstats.Compaction.Restoration.probes <- pr;
      rstats.Compaction.Restoration.batch_sims <- bs;
      Some p
    | _ -> None
  in
  let counters_snapshot () = Obs.Counters.to_alist cnt in
  let rstats_snapshot () =
    ( rstats.Compaction.Restoration.restored,
      rstats.Compaction.Restoration.probes,
      rstats.Compaction.Restoration.batch_sims )
  in
  let flow =
    match restored_phases with
    | Some p -> p.Checkpoint.p_flow
    | None ->
      let gen_resume =
        match resume with
        | Some { Checkpoint.stage = Checkpoint.Generating cur; _ } -> Some cur
        | _ -> None
      in
      let on_checkpoint cur = save_stage (Checkpoint.Generating cur) in
      let flow =
        Obs.Metrics.timed metrics ~trace "generate" (fun () ->
            Flow.generate ~metrics ~budget ~trace ?resume:gen_resume
              ~checkpoint_every:(if checkpoint = None then 0 else checkpoint_every)
              ~on_checkpoint cfg sk model)
      in
      save_stage
        (Checkpoint.Phased
           {
             Checkpoint.p_flow = flow;
             p_counters = counters_snapshot ();
             p_rstats = rstats_snapshot ();
             p_compact = None;
             p_ext_det = None;
             p_baseline = None;
           });
      flow
  in
  halt "generate";
  let seq = flow.Flow.sequence in
  let targets = flow.Flow.targets in
  let gen_tripped = note_trip "generate" in
  (* Degradation ladder: once the budget has tripped, every remaining phase
     is replaced by its cheapest sound stand-in — compaction returns the
     sequence unchanged, extra detection reports none, the baseline (and
     with it Table 7) is skipped. *)
  let restored, omitted, omit_stats =
    if gen_tripped then seq, seq, zero_omit_stats
    else begin
      match restored_phases with
      | Some { Checkpoint.p_compact = Some (r, o, s); _ } -> r, o, s
      | _ ->
        let r, o, s =
          compact ?pool cfg model seq targets ~metrics ~trace ~rstats ~budget
        in
        save_stage
          (Checkpoint.Phased
             {
               Checkpoint.p_flow = flow;
               p_counters = counters_snapshot ();
               p_rstats = rstats_snapshot ();
               p_compact = Some (r, o, s);
               p_ext_det = None;
               p_baseline = None;
             });
        r, o, s
    end
  in
  halt "compact";
  let compact_tripped = note_trip "compact" in
  (* Extra detections: previously-undetected targeted faults that the
     compacted sequence happens to catch. *)
  let ext_det =
    if compact_tripped then 0
    else begin
      match restored_phases with
      | Some { Checkpoint.p_ext_det = Some e; _ } -> e
      | _ ->
        let e =
          Obs.Metrics.timed metrics ~trace "extra-detect" (fun () ->
              if Array.length flow.Flow.undetected = 0 then 0
              else begin
                let times =
                  Faultsim.detection_times ~jobs:cfg.Config.sim_jobs model
                    ~fault_ids:flow.Flow.undetected omitted
                in
                Array.fold_left
                  (fun acc t -> if t >= 0 then acc + 1 else acc)
                  0 times
              end)
        in
        save_stage
          (Checkpoint.Phased
             {
               Checkpoint.p_flow = flow;
               p_counters = counters_snapshot ();
               p_rstats = rstats_snapshot ();
               p_compact = Some (restored, omitted, omit_stats);
               p_ext_det = Some e;
               p_baseline = None;
             });
        e
    end
  in
  halt "extra-detect";
  let ext_tripped = note_trip "extra-detect" in
  (* Baseline ([26]-style): generation + test dropping. *)
  let base_tests, baseline_cycles, base =
    if ext_tripped then
      ( [],
        0,
        { Baseline.Gen26.tests = []; detected = [||]; undetected = [||] } )
    else begin
      match restored_phases with
      | Some { Checkpoint.p_baseline = Some (bt, bc, b); _ } -> bt, bc, b
      | _ ->
        let bt, bc, b =
          Obs.Metrics.timed metrics ~trace "baseline" (fun () ->
              let base = Baseline.Gen26.generate scan model cfg.Config.atpg in
              let base_tests =
                Baseline.Compact26.run scan model
                  ~fault_ids:base.Baseline.Gen26.detected
                  base.Baseline.Gen26.tests
              in
              base_tests, Baseline.Gen26.cycles scan base_tests, base)
        in
        save_stage
          (Checkpoint.Phased
             {
               Checkpoint.p_flow = flow;
               p_counters = counters_snapshot ();
               p_rstats = rstats_snapshot ();
               p_compact = Some (restored, omitted, omit_stats);
               p_ext_det = Some ext_det;
               p_baseline = Some (bt, bc, b);
             });
        bt, bc, b
    end
  in
  halt "baseline";
  let baseline_tripped = note_trip "baseline" in
  let row5 =
    {
      name;
      inp = Circuit.input_count scan.Scan.circuit;
      stvr = Circuit.dff_count c;
      faults = flow.Flow.targeted;
      detected = flow.Flow.detected;
      fcov = Flow.coverage flow;
      funct = flow.Flow.by_drain;
    }
  in
  let row6 =
    {
      name;
      test_len = lengths scan seq;
      restor_len = lengths scan restored;
      omit_len = lengths scan omitted;
      ext_det;
      baseline_cycles;
    }
  in
  (* Table 7: translate the baseline's compacted set and compact the
     translation. *)
  let row7 =
    if base_tests = [] || baseline_tripped then None
    else begin
      let t7, targets7 =
        Obs.Metrics.timed metrics ~trace "translate" (fun () ->
            let rng = Prng.Rng.of_string cfg.Config.seed (name ^ "/translate") in
            let t7 = Translation.Translate.run scan ~tests:base_tests ~rng in
            let targets7 =
              Compaction.Target.compute ~jobs:cfg.Config.sim_jobs model t7
                ~fault_ids:base.Baseline.Gen26.detected
            in
            t7, targets7)
      in
      (* Row 7's compaction accumulates into the same restore/omit phases
         and counters as row 6's. *)
      let restored7, omitted7, _ =
        compact ?pool cfg model t7 targets7 ~metrics ~trace ~rstats ~budget
      in
      Some
        {
          name;
          test_len = lengths scan t7;
          restor_len = lengths scan restored7;
          omit_len = lengths scan omitted7;
          baseline_cycles;
        }
    end
  in
  ignore (note_trip "translate");
  Obs.Counters.add cnt "restore.vectors_restored"
    rstats.Compaction.Restoration.restored;
  Obs.Counters.add cnt "restore.probes" rstats.Compaction.Restoration.probes;
  Obs.Counters.add cnt "restore.batch_sims"
    rstats.Compaction.Restoration.batch_sims;
  { circuit = name; row5; row6; row7; flow;
    degraded = !tripped_in <> None;
    runtime_s = Obs.Clock.to_s (Obs.Clock.elapsed_ns t0);
    metrics; omit_stats }
