(** The unified test generation flow (Section 2 of the paper).

    One test sequence for [C_scan] is grown by concatenating subsequences:

    + an optional randomized phase knocks out the easy faults;
    + for every remaining fault, sequential ATPG searches forward from the
      sequence's current state;
    + if that fails, the search is repeated with flip-flops as observation
      points; on success a [scan_sel = 1] drain brings the latched effect to
      [scan_out] (the paper's functional-level knowledge of scan — these are
      the "funct" detections of Table 5);
    + if that also fails, ATPG runs once more with a free initial state and
      the required state is established by an [N_SV]-cycle scan load
      (justification through scan).

    Every appended subsequence is verified by fault simulation before being
    committed, and the whole fault list is re-simulated over it so that
    collaterally detected faults are dropped. *)

type stats = {
  sequence : Logicsim.Vectors.t;  (** the generated sequence, fully specified *)
  universe : int;  (** collapsed fault count of [C_scan] *)
  targeted : int;  (** faults targeted (universe minus proven-redundant) *)
  pruned_redundant : int;
  detected : int;
  by_random : int;
  by_atpg : int;
  by_drain : int;  (** via scan-knowledge drains — the paper's "funct" *)
  by_justify : int;  (** via scan-load justification *)
  undetected : int array;  (** targeted fault ids left undetected *)
  aborted_faults : int array;
  (** undetected faults whose search aborted on a backtrack or budget
      ceiling (or was skipped after a budget trip) — candidates for a
      re-run with more headroom, as opposed to faults proven hard *)
  targets : Compaction.Target.t;
  (** detected faults with detection times, ready for compaction *)
}

(** Mid-generation resume point (see DESIGN.md §8).  A cursor records the
    target list, the exact [Faultsim.advance] call boundaries executed so
    far, the RNG state and the counter snapshot; resuming replays the
    recorded advances with identical boundaries, which makes every
    detection time, the group repack schedule and all jobs-invariant
    telemetry counters bit-identical to the uninterrupted run.  Treat it as
    opaque; it is [Marshal]-safe (plain data, no closures). *)
type cursor = {
  c_target_ids : int array;
  c_pruned_redundant : int;
  c_next_fault : int;
  c_segments : Logicsim.Vectors.t list;
  c_rng_state : int64;
  c_by_random : int;
  c_by_atpg : int;
  c_by_drain : int;
  c_by_justify : int;
  c_aborted : int list;
  c_atpg_calls : int;
  c_atpg_decisions : int;
  c_atpg_backtracks : int;
}

(** [generate ?metrics cfg sk model] runs the flow.  [metrics], when given,
    receives the flow's search-effort and simulation counters ([atpg.*],
    [sim.*], and — with [cfg.observe] — [activity.*] plus the
    [sim.frame_toggles] histogram); every counter is independent of
    [cfg.sim_jobs].

    [budget] (default {!Obs.Budget.unlimited}) makes the flow an anytime
    procedure: on a trip the current fault attempt winds down at the next
    PODEM safe point, remaining faults are skipped (and reported in
    [aborted_faults]), and the stats describe the sequence built so far.
    When a limited budget still has headroom after the full pass, aborted
    faults are re-queued once with a 4x backtrack ceiling.

    [checkpoint_every] > 0 calls [on_checkpoint] with a {!cursor} at the
    next fault boundary after every [checkpoint_every] committed
    subsequences; [resume] continues generation from such a cursor
    (skipping the random phase and redundancy pruning, which the cursor
    already accounts for).

    [trace] (default {!Obs.Trace.null}) records one span per flow stage —
    [flow.prune], [flow.random], [flow.atpg], [flow.requeue] — nested
    under whatever span the caller has open; with [metrics] also given,
    each stage accumulates a phase of the same name. *)
val generate :
  ?metrics:Obs.Metrics.t ->
  ?budget:Obs.Budget.t ->
  ?resume:cursor ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(cursor -> unit) ->
  ?trace:Obs.Trace.t ->
  Config.t -> Atpg.Scan_knowledge.t -> Faultmodel.Model.t -> stats

(** Fault coverage in percent: [detected / targeted]. *)
val coverage : stats -> float
