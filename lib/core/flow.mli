(** The unified test generation flow (Section 2 of the paper).

    One test sequence for [C_scan] is grown by concatenating subsequences:

    + an optional randomized phase knocks out the easy faults;
    + for every remaining fault, sequential ATPG searches forward from the
      sequence's current state;
    + if that fails, the search is repeated with flip-flops as observation
      points; on success a [scan_sel = 1] drain brings the latched effect to
      [scan_out] (the paper's functional-level knowledge of scan — these are
      the "funct" detections of Table 5);
    + if that also fails, ATPG runs once more with a free initial state and
      the required state is established by an [N_SV]-cycle scan load
      (justification through scan).

    Every appended subsequence is verified by fault simulation before being
    committed, and the whole fault list is re-simulated over it so that
    collaterally detected faults are dropped. *)

type stats = {
  sequence : Logicsim.Vectors.t;  (** the generated sequence, fully specified *)
  universe : int;  (** collapsed fault count of [C_scan] *)
  targeted : int;  (** faults targeted (universe minus proven-redundant) *)
  pruned_redundant : int;
  detected : int;
  by_random : int;
  by_atpg : int;
  by_drain : int;  (** via scan-knowledge drains — the paper's "funct" *)
  by_justify : int;  (** via scan-load justification *)
  undetected : int array;  (** targeted fault ids left undetected *)
  targets : Compaction.Target.t;
  (** detected faults with detection times, ready for compaction *)
}

(** [generate ?metrics cfg sk model] runs the flow.  [metrics], when given,
    receives the flow's search-effort and simulation counters ([atpg.*],
    [sim.*], and — with [cfg.observe] — [activity.*] plus the
    [sim.frame_toggles] histogram); every counter is independent of
    [cfg.sim_jobs]. *)
val generate :
  ?metrics:Obs.Metrics.t ->
  Config.t -> Atpg.Scan_knowledge.t -> Faultmodel.Model.t -> stats

(** Fault coverage in percent: [detected / targeted]. *)
val coverage : stats -> float
