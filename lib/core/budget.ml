(* Re-export: the budget token lives in [Obs] so the lower layers (atpg,
   logicsim, compaction) can poll it without depending on [core]; this
   alias gives the pipeline's own modules the natural name. *)
include Obs.Budget
