(** Sound identification of untestable faults.

    A fault with no test under {e full state controllability and
    observability} (one time frame, free initial state, flip-flops counted
    as observation points) has no test in any operating mode of the scan
    circuit.  PODEM run to exhaustion at depth 1 in that mode is therefore a
    sound redundancy proof.  The synthetic benchmark substitutes carry a few
    percent of such faults (real ISCAS-89 circuits carry 1–2%); the pipeline
    excludes them from the targeted list so that reported coverage keeps the
    paper's shape (see DESIGN.md §3). *)

type verdict =
  | Testable
  | Redundant  (** proven: search space exhausted without a test *)
  | Unknown  (** backtrack budget hit before a proof either way *)

val classify :
  ?budget:Obs.Budget.t ->
  Faultmodel.Model.t -> fault:int -> backtrack_limit:int -> verdict

(** [partition model ~backtrack_limit] classifies the whole fault list and
    returns [(targets, proven_redundant, unknown)].  [Unknown] faults are
    kept in [targets] (they are never excluded without proof).  A tripped
    [budget] short-circuits the remaining faults to [Unknown] — degraded
    but sound, since no fault is dropped without an exhaustion proof. *)
val partition :
  ?budget:Obs.Budget.t ->
  Faultmodel.Model.t -> backtrack_limit:int -> int array * int array * int array
