module Circuit = Netlist.Circuit
module Logic = Netlist.Logic

type cycle = {
  inputs : Logic.t array;
  expected : Logic.t array;
}

type t = {
  circuit : Circuit.t;
  cycles : cycle array;
}

let build circuit seq =
  let sim = Logicsim.Goodsim.create circuit in
  let cycles =
    Array.map
      (fun vec ->
        Logicsim.Goodsim.step sim vec;
        { inputs = Array.copy vec; expected = Logicsim.Goodsim.po_values sim })
      seq
  in
  { circuit; cycles }

let observing_cycles t =
  Array.fold_left
    (fun acc cy ->
      if Array.exists Logic.is_binary cy.expected then acc + 1 else acc)
    0 t.cycles

let to_string t =
  let buf = Buffer.create 4096 in
  let name id = (Circuit.node t.circuit id).Circuit.name in
  Buffer.add_string buf
    (Printf.sprintf "# tester program for %s\n" (Circuit.name t.circuit));
  Buffer.add_string buf
    (Printf.sprintf "# inputs:  %s\n"
       (String.concat " " (List.map name (Array.to_list (Circuit.inputs t.circuit)))));
  Buffer.add_string buf
    (Printf.sprintf "# outputs: %s\n"
       (String.concat " " (List.map name (Array.to_list (Circuit.outputs t.circuit)))));
  Buffer.add_string buf "# x in the output field means: do not compare\n";
  Array.iteri
    (fun tme cy ->
      Buffer.add_string buf
        (Printf.sprintf "%5d %s | %s\n" tme
           (Logicsim.Vectors.to_string cy.inputs)
           (Logicsim.Vectors.to_string cy.expected)))
    t.cycles;
  Buffer.contents buf

let write_file path t = Obs.Fileio.write_string path (to_string t)
