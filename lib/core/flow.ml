module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim
module Vectors = Logicsim.Vectors
module Scan = Scanins.Scan

type stats = {
  sequence : Vectors.t;
  universe : int;
  targeted : int;
  pruned_redundant : int;
  detected : int;
  by_random : int;
  by_atpg : int;
  by_drain : int;
  by_justify : int;
  undetected : int array;
  aborted_faults : int array;
  targets : Compaction.Target.t;
}

(* Mid-generation resume point.  [segments] records every [Faultsim.advance]
   the main session has executed, in reverse order and with the original
   call boundaries: repack scheduling depends on each advance's frame count,
   so a resumed run replays the exact same calls and lands on a session
   whose detection times, group packing and telemetry counters are all
   bit-identical to the uninterrupted run.  Probe sessions (commit
   verification, random-phase probes) are throwaway and deterministic given
   the main session's state, so they are not recorded; the accumulated ATPG
   effort they represent is carried in the counter snapshot instead. *)
type cursor = {
  c_target_ids : int array;
  c_pruned_redundant : int;
  c_next_fault : int;  (* index into [c_target_ids] to resume at *)
  c_segments : Vectors.t list;  (* reverse chronological advance calls *)
  c_rng_state : int64;
  c_by_random : int;
  c_by_atpg : int;
  c_by_drain : int;
  c_by_justify : int;
  c_aborted : int list;
  c_atpg_calls : int;
  c_atpg_decisions : int;
  c_atpg_backtracks : int;
}

let coverage s =
  if s.targeted = 0 then 100.0
  else 100.0 *. float_of_int s.detected /. float_of_int s.targeted

(* Fold the flow's search-effort and simulation telemetry into a metrics
   document.  Only the main session is counted: probe sessions created by
   [commit]'s verification are single-job and by-construction deterministic,
   but they are throwaway and their totals add nothing a reader of the
   document can act on. *)
let record_telemetry metrics ~observe (atpg : Atpg.Podem.stats) session =
  let c = Obs.Metrics.counters metrics in
  Obs.Counters.add c "atpg.calls" atpg.Atpg.Podem.calls;
  Obs.Counters.add c "atpg.decisions" atpg.Atpg.Podem.decisions;
  Obs.Counters.add c "atpg.backtracks" atpg.Atpg.Podem.backtracks;
  let st = Faultsim.stats session in
  Obs.Counters.add c "sim.frames" st.Faultsim.frames;
  Obs.Counters.add c "sim.gframes" st.Faultsim.gframes;
  Obs.Counters.add c "sim.events" st.Faultsim.events;
  Obs.Counters.add c "sim.wakeups" st.Faultsim.wakeups;
  Obs.Counters.add c "sim.kills" st.Faultsim.kills;
  Obs.Counters.add c "sim.repacks" st.Faultsim.repacks;
  if observe then begin
    Obs.Counters.add c "activity.toggles" st.Faultsim.toggles;
    Obs.Counters.add c "activity.wsa" st.Faultsim.wsa;
    Obs.Metrics.add_hist metrics "sim.frame_toggles"
      (Faultsim.frame_toggles session)
  end

let generate ?metrics ?(budget = Obs.Budget.unlimited) ?resume
    ?(checkpoint_every = 0) ?(on_checkpoint = fun (_ : cursor) -> ())
    ?(trace = Obs.Trace.null) (cfg : Config.t) sk model =
  (* Stage timer: a span always, plus a phase when a metrics document is
     attached.  Stage names are the daemon's per-request span vocabulary. *)
  let timed name f =
    match metrics with
    | Some m -> Obs.Metrics.timed m ~trace name f
    | None -> Obs.Trace.with_span trace name f
  in
  let scan = Atpg.Scan_knowledge.scan sk in
  let universe = Model.fault_count model in
  let target_ids, pruned_redundant =
    match resume with
    | Some c -> c.c_target_ids, c.c_pruned_redundant
    | None ->
      if cfg.Config.prune_redundant then begin
        let t, r, _unknown =
          timed "flow.prune" (fun () ->
              Testability.partition ~budget model
                ~backtrack_limit:cfg.Config.redundancy_budget)
        in
        t, Array.length r
      end
      else Array.init universe Fun.id, 0
  in
  let rng =
    match resume with
    | Some c -> Prng.Rng.of_state c.c_rng_state
    | None ->
      Prng.Rng.of_string cfg.Config.seed (Circuit.name model.Model.circuit)
  in
  let session =
    Faultsim.create ~jobs:cfg.Config.sim_jobs ~observe:cfg.Config.observe
      ~budget model ~fault_ids:target_ids
  in
  let atpg_stats = Atpg.Podem.make_stats () in
  (* Every advance of the main session, newest first; [Array.concat] of the
     reversal is the generated sequence. *)
  let segments = ref [] in
  let aborted = ref [] in
  let by_random = ref 0 in
  let by_atpg = ref 0 and by_drain = ref 0 and by_justify = ref 0 in
  let commits = ref 0 in
  let append vecs =
    if Array.length vecs > 0 then begin
      Faultsim.advance session vecs;
      segments := vecs :: !segments
    end
  in
  (match resume with
   | Some c ->
     (* Replay with the recorded call boundaries; see {!cursor}. *)
     List.iter (fun seg -> Faultsim.advance session seg) (List.rev c.c_segments);
     segments := c.c_segments;
     aborted := c.c_aborted;
     by_random := c.c_by_random;
     by_atpg := c.c_by_atpg;
     by_drain := c.c_by_drain;
     by_justify := c.c_by_justify;
     atpg_stats.Atpg.Podem.calls <- c.c_atpg_calls;
     atpg_stats.Atpg.Podem.decisions <- c.c_atpg_decisions;
     atpg_stats.Atpg.Podem.backtracks <- c.c_atpg_backtracks
   | None ->
     (* Phase 1: random. *)
     (match cfg.Config.random_phase with
      | None -> ()
      | Some rp_cfg ->
        timed "flow.random" (fun () ->
            ignore
              (Atpg.Random_phase.run
                 ~record:(fun burst -> segments := burst :: !segments)
                 ~budget session model
                 ~scan_sel_position:(Scan.sel_position scan)
                 ~rng:(Prng.Rng.split rng) rp_cfg);
            by_random := Faultsim.detected_count session)));
  (* Phase 2: deterministic, one target fault at a time. *)
  let commit fid vecs counter =
    (* A candidate subsequence is committed only when simulation confirms it
       detects the target from the live states. *)
    let good = Faultsim.good_state session in
    let faulty = Faultsim.faulty_state session fid in
    match Faultsim.detects_single model ~fault:fid ~start:(good, faulty) vecs with
    | Some _ ->
      append vecs;
      incr counter;
      incr commits;
      true
    | None -> false
  in
  (* Free-initial-state searches rarely profit from deep unrolls (the scan
     load supplies the state); cap their depth list. *)
  let cap_free (c : Atpg.Seq_atpg.config) =
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    { c with Atpg.Seq_atpg.depths = take 3 c.Atpg.Seq_atpg.depths }
  in
  (* One fault's attempt ladder (forward search, drain salvage, scan-load
     justification).  A fault whose search ran out of backtracks or budget
     without a detection is recorded in [aborted]. *)
  let attempt atpg_cfg fid =
    if Faultsim.detection_time session fid = None then begin
      let ab = ref false in
      let good = Faultsim.good_state session in
      let faulty = Faultsim.faulty_state session fid in
      let found =
        if cfg.Config.use_drain then begin
          match
            Atpg.Seq_atpg.detect_latch model atpg_cfg ~fault:fid ~good ~faulty
              ~stats:atpg_stats ~budget ~aborted:ab ()
          with
          | Some (`Detected vecs) -> commit fid (Vectors.fill_x rng vecs) by_atpg
          | Some (`Latched (vecs, dff)) ->
            let vecs = Vectors.fill_x rng vecs in
            let drain = Atpg.Scan_knowledge.drain sk ~rng ~dff in
            commit fid (Array.append vecs drain) by_drain
          | None -> false
        end
        else begin
          match
            Atpg.Seq_atpg.detect model atpg_cfg ~fault:fid ~good ~faulty
              ~stats:atpg_stats ~budget ~aborted:ab ()
          with
          | Some vecs -> commit fid (Vectors.fill_x rng vecs) by_atpg
          | None -> false
        end
      in
      if (not found) && cfg.Config.use_justify then begin
        match
          Atpg.Seq_atpg.detect_free model (cap_free atpg_cfg) ~fault:fid
            ~stats:atpg_stats ~budget ~aborted:ab ()
        with
        | Some (state, vecs) ->
          let load = Atpg.Scan_knowledge.load sk ~rng ~state in
          let vecs = Vectors.fill_x rng vecs in
          ignore (commit fid (Array.append load vecs) by_justify)
        | None -> ()
      end;
      if !ab && Faultsim.detection_time session fid = None then
        aborted := fid :: !aborted
    end
  in
  let n = Array.length target_ids in
  let snapshot next_fault =
    {
      c_target_ids = target_ids;
      c_pruned_redundant = pruned_redundant;
      c_next_fault = next_fault;
      c_segments = !segments;
      c_rng_state = Prng.Rng.state rng;
      c_by_random = !by_random;
      c_by_atpg = !by_atpg;
      c_by_drain = !by_drain;
      c_by_justify = !by_justify;
      c_aborted = !aborted;
      c_atpg_calls = atpg_stats.Atpg.Podem.calls;
      c_atpg_decisions = atpg_stats.Atpg.Podem.decisions;
      c_atpg_backtracks = atpg_stats.Atpg.Podem.backtracks;
    }
  in
  let i =
    ref
      (match resume with
       | Some c -> c.c_next_fault
       | None -> 0)
  in
  timed "flow.atpg" (fun () ->
      while !i < n && Obs.Budget.check budget do
        attempt cfg.Config.atpg target_ids.(!i);
        incr i;
        if checkpoint_every > 0 && !commits >= checkpoint_every then begin
          commits := 0;
          on_checkpoint (snapshot !i)
        end
      done);
  if !i < n then begin
    (* Budget tripped: the remaining undetected faults were never attempted;
       they count as aborted so a later run with headroom can re-queue
       them. *)
    while !i < n do
      let fid = target_ids.(!i) in
      if Faultsim.detection_time session fid = None then
        aborted := fid :: !aborted;
      incr i
    done
  end
  else if Obs.Budget.limited budget && !aborted <> [] && Obs.Budget.check budget
  then begin
    (* Headroom remains after the full pass: re-queue each aborted fault
       once with an escalated backtrack ceiling.  Only limited budgets take
       this path, so the default (unlimited) flow is unchanged. *)
    let esc =
      { cfg.Config.atpg with
        Atpg.Seq_atpg.backtrack_limit =
          4 * cfg.Config.atpg.Atpg.Seq_atpg.backtrack_limit }
    in
    let queue = List.rev !aborted in
    aborted := [];
    timed "flow.requeue" (fun () ->
        List.iter
          (fun fid ->
            if Obs.Budget.check budget then attempt esc fid
            else if Faultsim.detection_time session fid = None then
              aborted := fid :: !aborted)
          queue)
  end;
  let sequence = Array.concat (List.rev !segments) in
  let targets =
    let ids = ref [] and times = ref [] in
    Array.iter
      (fun fid ->
        match Faultsim.detection_time session fid with
        | Some t ->
          ids := fid :: !ids;
          times := t :: !times
        | None -> ())
      target_ids;
    {
      Compaction.Target.fault_ids = Array.of_list (List.rev !ids);
      det_times = Array.of_list (List.rev !times);
    }
  in
  let aborted_faults = Array.of_list (List.rev !aborted) in
  (match metrics with
   | None -> ()
   | Some m ->
     record_telemetry m ~observe:cfg.Config.observe atpg_stats session;
     Obs.Counters.add (Obs.Metrics.counters m) "atpg.aborted_faults"
       (Array.length aborted_faults));
  {
    sequence;
    universe;
    targeted = Array.length target_ids;
    pruned_redundant;
    detected = Faultsim.detected_count session;
    by_random = !by_random;
    by_atpg = !by_atpg;
    by_drain = !by_drain;
    by_justify = !by_justify;
    undetected = Faultsim.undetected session;
    aborted_faults;
    targets;
  }
