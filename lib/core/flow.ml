module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim
module Vectors = Logicsim.Vectors
module Scan = Scanins.Scan

type stats = {
  sequence : Vectors.t;
  universe : int;
  targeted : int;
  pruned_redundant : int;
  detected : int;
  by_random : int;
  by_atpg : int;
  by_drain : int;
  by_justify : int;
  undetected : int array;
  targets : Compaction.Target.t;
}

let coverage s =
  if s.targeted = 0 then 100.0
  else 100.0 *. float_of_int s.detected /. float_of_int s.targeted

let generate (cfg : Config.t) sk model =
  let scan = Atpg.Scan_knowledge.scan sk in
  let universe = Model.fault_count model in
  let target_ids, redundant, _unknown =
    if cfg.Config.prune_redundant then
      Testability.partition model ~backtrack_limit:cfg.Config.redundancy_budget
    else Array.init universe Fun.id, [||], [||]
  in
  let rng = Prng.Rng.of_string cfg.Config.seed (Circuit.name model.Model.circuit) in
  let session =
    Faultsim.create ~jobs:cfg.Config.sim_jobs model ~fault_ids:target_ids
  in
  let parts = ref [] in
  let append vecs =
    if Array.length vecs > 0 then begin
      Faultsim.advance session vecs;
      parts := vecs :: !parts
    end
  in
  (* Phase 1: random. *)
  let by_random =
    match cfg.Config.random_phase with
    | None -> 0
    | Some rp_cfg ->
      let vecs =
        Atpg.Random_phase.run session model
          ~scan_sel_position:(Scan.sel_position scan)
          ~rng:(Prng.Rng.split rng) rp_cfg
      in
      parts := vecs :: !parts;
      Faultsim.detected_count session
  in
  (* Phase 2: deterministic, one target fault at a time. *)
  let by_atpg = ref 0 and by_drain = ref 0 and by_justify = ref 0 in
  let commit fid vecs counter =
    (* A candidate subsequence is committed only when simulation confirms it
       detects the target from the live states. *)
    let good = Faultsim.good_state session in
    let faulty = Faultsim.faulty_state session fid in
    match Faultsim.detects_single model ~fault:fid ~start:(good, faulty) vecs with
    | Some _ ->
      append vecs;
      incr counter;
      true
    | None -> false
  in
  (* Free-initial-state searches rarely profit from deep unrolls (the scan
     load supplies the state); cap their depth list. *)
  let free_cfg =
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    { cfg.Config.atpg with Atpg.Seq_atpg.depths = take 3 cfg.Config.atpg.Atpg.Seq_atpg.depths }
  in
  Array.iter
    (fun fid ->
      if Faultsim.detection_time session fid = None then begin
        let good = Faultsim.good_state session in
        let faulty = Faultsim.faulty_state session fid in
        (* One forward search per fault; as in the paper, a fault effect
           that only reaches a flip-flop during the attempt is salvaged
           with a scan_sel = 1 drain. *)
        let found =
          if cfg.Config.use_drain then begin
            match
              Atpg.Seq_atpg.detect_latch model cfg.Config.atpg ~fault:fid ~good ~faulty
            with
            | Some (`Detected vecs) -> commit fid (Vectors.fill_x rng vecs) by_atpg
            | Some (`Latched (vecs, dff)) ->
              let vecs = Vectors.fill_x rng vecs in
              let drain = Atpg.Scan_knowledge.drain sk ~rng ~dff in
              commit fid (Array.append vecs drain) by_drain
            | None -> false
          end
          else begin
            match Atpg.Seq_atpg.detect model cfg.Config.atpg ~fault:fid ~good ~faulty with
            | Some vecs -> commit fid (Vectors.fill_x rng vecs) by_atpg
            | None -> false
          end
        in
        if (not found) && cfg.Config.use_justify then begin
          match Atpg.Seq_atpg.detect_free model free_cfg ~fault:fid () with
          | Some (state, vecs) ->
            let load = Atpg.Scan_knowledge.load sk ~rng ~state in
            let vecs = Vectors.fill_x rng vecs in
            ignore (commit fid (Array.append load vecs) by_justify)
          | None -> ()
        end
      end)
    target_ids;
  let sequence = Array.concat (List.rev !parts) in
  let targets =
    let ids = ref [] and times = ref [] in
    Array.iter
      (fun fid ->
        match Faultsim.detection_time session fid with
        | Some t ->
          ids := fid :: !ids;
          times := t :: !times
        | None -> ())
      target_ids;
    {
      Compaction.Target.fault_ids = Array.of_list (List.rev !ids);
      det_times = Array.of_list (List.rev !times);
    }
  in
  {
    sequence;
    universe;
    targeted = Array.length target_ids;
    pruned_redundant = Array.length redundant;
    detected = Faultsim.detected_count session;
    by_random;
    by_atpg = !by_atpg;
    by_drain = !by_drain;
    by_justify = !by_justify;
    undetected = Faultsim.undetected session;
    targets;
  }
