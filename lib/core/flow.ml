module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim
module Vectors = Logicsim.Vectors
module Scan = Scanins.Scan

type stats = {
  sequence : Vectors.t;
  universe : int;
  targeted : int;
  pruned_redundant : int;
  detected : int;
  by_random : int;
  by_atpg : int;
  by_drain : int;
  by_justify : int;
  undetected : int array;
  targets : Compaction.Target.t;
}

let coverage s =
  if s.targeted = 0 then 100.0
  else 100.0 *. float_of_int s.detected /. float_of_int s.targeted

(* Fold the flow's search-effort and simulation telemetry into a metrics
   document.  Only the main session is counted: probe sessions created by
   [commit]'s verification are single-job and by-construction deterministic,
   but they are throwaway and their totals add nothing a reader of the
   document can act on. *)
let record_telemetry metrics ~observe (atpg : Atpg.Podem.stats) session =
  let c = Obs.Metrics.counters metrics in
  Obs.Counters.add c "atpg.calls" atpg.Atpg.Podem.calls;
  Obs.Counters.add c "atpg.decisions" atpg.Atpg.Podem.decisions;
  Obs.Counters.add c "atpg.backtracks" atpg.Atpg.Podem.backtracks;
  let st = Faultsim.stats session in
  Obs.Counters.add c "sim.frames" st.Faultsim.frames;
  Obs.Counters.add c "sim.gframes" st.Faultsim.gframes;
  Obs.Counters.add c "sim.events" st.Faultsim.events;
  Obs.Counters.add c "sim.wakeups" st.Faultsim.wakeups;
  Obs.Counters.add c "sim.kills" st.Faultsim.kills;
  Obs.Counters.add c "sim.repacks" st.Faultsim.repacks;
  if observe then begin
    Obs.Counters.add c "activity.toggles" st.Faultsim.toggles;
    Obs.Counters.add c "activity.wsa" st.Faultsim.wsa;
    Obs.Metrics.add_hist metrics "sim.frame_toggles"
      (Faultsim.frame_toggles session)
  end

let generate ?metrics (cfg : Config.t) sk model =
  let scan = Atpg.Scan_knowledge.scan sk in
  let universe = Model.fault_count model in
  let target_ids, redundant, _unknown =
    if cfg.Config.prune_redundant then
      Testability.partition model ~backtrack_limit:cfg.Config.redundancy_budget
    else Array.init universe Fun.id, [||], [||]
  in
  let rng = Prng.Rng.of_string cfg.Config.seed (Circuit.name model.Model.circuit) in
  let session =
    Faultsim.create ~jobs:cfg.Config.sim_jobs ~observe:cfg.Config.observe
      model ~fault_ids:target_ids
  in
  let atpg_stats = Atpg.Podem.make_stats () in
  let parts = ref [] in
  let append vecs =
    if Array.length vecs > 0 then begin
      Faultsim.advance session vecs;
      parts := vecs :: !parts
    end
  in
  (* Phase 1: random. *)
  let by_random =
    match cfg.Config.random_phase with
    | None -> 0
    | Some rp_cfg ->
      let vecs =
        Atpg.Random_phase.run session model
          ~scan_sel_position:(Scan.sel_position scan)
          ~rng:(Prng.Rng.split rng) rp_cfg
      in
      parts := vecs :: !parts;
      Faultsim.detected_count session
  in
  (* Phase 2: deterministic, one target fault at a time. *)
  let by_atpg = ref 0 and by_drain = ref 0 and by_justify = ref 0 in
  let commit fid vecs counter =
    (* A candidate subsequence is committed only when simulation confirms it
       detects the target from the live states. *)
    let good = Faultsim.good_state session in
    let faulty = Faultsim.faulty_state session fid in
    match Faultsim.detects_single model ~fault:fid ~start:(good, faulty) vecs with
    | Some _ ->
      append vecs;
      incr counter;
      true
    | None -> false
  in
  (* Free-initial-state searches rarely profit from deep unrolls (the scan
     load supplies the state); cap their depth list. *)
  let free_cfg =
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    { cfg.Config.atpg with Atpg.Seq_atpg.depths = take 3 cfg.Config.atpg.Atpg.Seq_atpg.depths }
  in
  Array.iter
    (fun fid ->
      if Faultsim.detection_time session fid = None then begin
        let good = Faultsim.good_state session in
        let faulty = Faultsim.faulty_state session fid in
        (* One forward search per fault; as in the paper, a fault effect
           that only reaches a flip-flop during the attempt is salvaged
           with a scan_sel = 1 drain. *)
        let found =
          if cfg.Config.use_drain then begin
            match
              Atpg.Seq_atpg.detect_latch model cfg.Config.atpg ~fault:fid ~good ~faulty
                ~stats:atpg_stats ()
            with
            | Some (`Detected vecs) -> commit fid (Vectors.fill_x rng vecs) by_atpg
            | Some (`Latched (vecs, dff)) ->
              let vecs = Vectors.fill_x rng vecs in
              let drain = Atpg.Scan_knowledge.drain sk ~rng ~dff in
              commit fid (Array.append vecs drain) by_drain
            | None -> false
          end
          else begin
            match
              Atpg.Seq_atpg.detect model cfg.Config.atpg ~fault:fid ~good ~faulty
                ~stats:atpg_stats ()
            with
            | Some vecs -> commit fid (Vectors.fill_x rng vecs) by_atpg
            | None -> false
          end
        in
        if (not found) && cfg.Config.use_justify then begin
          match
            Atpg.Seq_atpg.detect_free model free_cfg ~fault:fid ~stats:atpg_stats ()
          with
          | Some (state, vecs) ->
            let load = Atpg.Scan_knowledge.load sk ~rng ~state in
            let vecs = Vectors.fill_x rng vecs in
            ignore (commit fid (Array.append load vecs) by_justify)
          | None -> ()
        end
      end)
    target_ids;
  let sequence = Array.concat (List.rev !parts) in
  let targets =
    let ids = ref [] and times = ref [] in
    Array.iter
      (fun fid ->
        match Faultsim.detection_time session fid with
        | Some t ->
          ids := fid :: !ids;
          times := t :: !times
        | None -> ())
      target_ids;
    {
      Compaction.Target.fault_ids = Array.of_list (List.rev !ids);
      det_times = Array.of_list (List.rev !times);
    }
  in
  (match metrics with
   | None -> ()
   | Some m -> record_telemetry m ~observe:cfg.Config.observe atpg_stats session);
  {
    sequence;
    universe;
    targeted = Array.length target_ids;
    pruned_redundant = Array.length redundant;
    detected = Faultsim.detected_count session;
    by_random;
    by_atpg = !by_atpg;
    by_drain = !by_drain;
    by_justify = !by_justify;
    undetected = Faultsim.undetected session;
    targets;
  }
