(** Configuration of the unified generation/compaction flow. *)

type t = {
  seed : int64;  (** root of every random stream used by the flow *)
  atpg : Atpg.Seq_atpg.config;
  random_phase : Atpg.Random_phase.config option;
  (** [None] disables the randomized opening phase *)
  use_drain : bool;
  (** Section-2 functional knowledge: accept latching a fault effect into a
      flip-flop and drain it to [scan_out] with a [scan_sel = 1] run *)
  use_justify : bool;
  (** scan-in justification: tests found with a free initial state get an
      [N_SV]-cycle load prefix *)
  prune_redundant : bool;
  (** exclude faults proven combinationally untestable (full state control
      and observation) from the target list — see DESIGN.md §3 *)
  redundancy_budget : int;  (** PODEM backtracks allowed per proof *)
  omission : Compaction.Omission.config;
  chains : int;  (** scan chains inserted *)
  sim_jobs : int;
  (** domains the fault simulator may schedule fault groups across
      (default 1 = sequential; results are identical at any value) *)
  compact_jobs : int;
  (** domains static compaction may speculate trial evaluations across —
      omission rounds and restoration waves (default 1 = sequential;
      results are identical at any value, see DESIGN.md §10) *)
  observe : bool;
  (** count good-machine toggle / switching activity in the flow's main
      simulation session (default [false]; small extra per-frame cost) *)
}

val default : t

(** Default tuned to the circuit: ATPG depths grow with the combinational
    depth. *)
val for_circuit : Netlist.Circuit.t -> t

(** [with_sim_jobs n cfg] sets the simulation parallelism knob: the flow's
    main session and target bookkeeping.  Compaction parallelism is a
    separate knob — see {!with_compact_jobs}. *)
val with_sim_jobs : int -> t -> t

(** [with_compact_jobs n cfg] sets the compaction parallelism knob
    everywhere it matters: speculative omission rounds (including the main
    replay session and probe sessions, via [omission.jobs]) and
    restoration's wave evaluation. *)
val with_compact_jobs : int -> t -> t

(** [with_compact_adaptive b cfg] enables/disables omission's adaptive
    speculation-width controller ([omission.adaptive], default on).
    Results are byte-identical either way; only dispatch-schedule
    telemetry differs. *)
val with_compact_adaptive : bool -> t -> t
