(* Versioned, checksummed, atomically-written pipeline checkpoints.

   File layout (bytes):

     scanatpg-checkpoint/1\n      magic + format version
     <16 hex digits>\n            FNV-1a 64 checksum of the payload
     <payload>                    [Marshal] of a {!file} record

   The payload is plain data (arrays, lists, records — no closures or
   custom blocks), so [Marshal] round-trips it exactly; the checksum
   rejects truncated or bit-rotted files, and the magic line rejects both
   foreign files and future format revisions.  Writes go through
   {!Obs.Fileio.write} (temp file + fsync + rename), so a crash at any
   point leaves either the previous checkpoint or the new one, never a
   torn file. *)

type phased = {
  p_flow : Flow.stats;
  p_counters : (string * int) list;
  p_rstats : int * int * int;  (* restored, probes, batch_sims *)
  p_compact :
    (Logicsim.Vectors.t * Logicsim.Vectors.t * Compaction.Omission.stats)
      option;
  p_ext_det : int option;
  p_baseline : (Scanins.Scan_test.t list * int * Baseline.Gen26.result) option;
}

type stage =
  | Generating of Flow.cursor
  | Phased of phased

type file = {
  fingerprint : string;
  stage : stage;
}

exception Corrupt of string

let magic = "scanatpg-checkpoint/1"

let fingerprint ~circuit ~scale ~seed ~chains =
  let scale_s =
    match (scale : Circuits.Profiles.scale) with
    | Circuits.Profiles.Quick -> "quick"
    | Circuits.Profiles.Full -> "full"
  in
  (* [sim_jobs] is deliberately excluded: results and the jobs-invariant
     counters are identical at any job count, so a checkpoint written at
     one parallelism may be resumed at another. *)
  Printf.sprintf "%s|%s|%Ld|%d" circuit scale_s seed chains

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let stage_name = function
  | Generating _ -> "generating"
  | Phased p ->
    if p.p_baseline <> None then "baseline"
    else if p.p_ext_det <> None then "extra-detect"
    else if p.p_compact <> None then "compact"
    else "generate"

let save ~path ~fingerprint stage =
  let payload = Marshal.to_string { fingerprint; stage } [] in
  Obs.Fileio.write path (fun oc ->
      output_string oc magic;
      output_char oc '\n';
      Printf.fprintf oc "%016Lx\n" (fnv1a64 payload);
      output_string oc payload)

let load path =
  let ic =
    try open_in_bin path
    with Sys_error m -> raise (Corrupt (Printf.sprintf "cannot open: %s" m))
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let contents =
        try really_input_string ic len
        with End_of_file -> raise (Corrupt "truncated file")
      in
      let header_len = String.length magic + 1 + 16 + 1 in
      if len < header_len then raise (Corrupt "file too short");
      let magic_line = String.sub contents 0 (String.length magic) in
      if magic_line <> magic || contents.[String.length magic] <> '\n' then
        raise (Corrupt "bad magic (not a checkpoint, or a future version)");
      let sum_hex = String.sub contents (String.length magic + 1) 16 in
      if contents.[header_len - 1] <> '\n' then
        raise (Corrupt "malformed checksum line");
      let expected =
        match Int64.of_string_opt ("0x" ^ sum_hex) with
        | Some v -> v
        | None -> raise (Corrupt "malformed checksum line")
      in
      let payload = String.sub contents header_len (len - header_len) in
      if fnv1a64 payload <> expected then
        raise (Corrupt "checksum mismatch (truncated or corrupted)");
      match (Marshal.from_string payload 0 : file) with
      | f -> f
      | exception _ -> raise (Corrupt "unreadable payload"))
