type t = {
  seed : int64;
  atpg : Atpg.Seq_atpg.config;
  random_phase : Atpg.Random_phase.config option;
  use_drain : bool;
  use_justify : bool;
  prune_redundant : bool;
  redundancy_budget : int;
  omission : Compaction.Omission.config;
  chains : int;
  sim_jobs : int;
  compact_jobs : int;
  observe : bool;
}

let default =
  {
    seed = 0x00C0FFEE5EEDL;
    atpg = Atpg.Seq_atpg.default_config;
    random_phase = Some Atpg.Random_phase.default_config;
    use_drain = true;
    use_justify = true;
    prune_redundant = true;
    redundancy_budget = 3000;
    omission = Compaction.Omission.default_config;
    chains = 1;
    sim_jobs = 1;
    compact_jobs = 1;
    observe = false;
  }

let for_circuit c = { default with atpg = Atpg.Seq_atpg.config_for c }

let with_sim_jobs jobs cfg =
  let jobs = max 1 jobs in
  { cfg with sim_jobs = jobs }

let with_compact_jobs jobs cfg =
  let jobs = max 1 jobs in
  { cfg with
    compact_jobs = jobs;
    omission = { cfg.omission with Compaction.Omission.jobs } }

let with_compact_adaptive adaptive cfg =
  { cfg with omission = { cfg.omission with Compaction.Omission.adaptive } }
