(** Per-circuit experiment pipeline: everything the paper's Tables 5–7
    report for one benchmark circuit.

    The pipeline builds the circuit (exact or synthetic substitute), inserts
    the scan chain, elaborates the fault model, runs the Section-2 unified
    generation flow, compacts with restoration [23] then omission [22],
    runs the [26]-style baseline for the comparison column, and translates
    + compacts the baseline's test set for Table 7. *)

type lengths = {
  total : int;  (** sequence length = tester clock cycles *)
  scan : int;  (** vectors with [scan_sel = 1] *)
}

type table5_row = {
  name : string;
  inp : int;  (** primary inputs of [C_scan], scan inputs included *)
  stvr : int;
  faults : int;  (** targeted faults (proven-redundant excluded) *)
  detected : int;
  fcov : float;
  funct : int;  (** detections owed to scan functional knowledge (drains) *)
}

type table6_row = {
  name : string;
  test_len : lengths;
  restor_len : lengths;
  omit_len : lengths;
  ext_det : int;  (** extra faults detected after compaction *)
  baseline_cycles : int;  (** the "[26] cyc" column *)
}

type table7_row = {
  name : string;
  test_len : lengths;
  restor_len : lengths;
  omit_len : lengths;
  baseline_cycles : int;
}

type result = {
  circuit : string;
  row5 : table5_row;
  row6 : table6_row;
  row7 : table7_row option;  (** [None] when the baseline detected nothing *)
  flow : Flow.stats;
  runtime_s : float;  (** monotonic wall-clock seconds *)
  metrics : Obs.Metrics.t;
  (** per-phase wall-clock seconds ([scan-insert], [model-build],
      [generate], [restore], [omit], [extra-detect], [baseline],
      [translate]) plus the [atpg.*] / [sim.*] / [restore.*] / [omit.*]
      counters; every counter is independent of [Config.sim_jobs] *)
  omit_stats : Compaction.Omission.stats;
  (** the main flow's (row-6) omission trial statistics *)
}

(** [run ?scale ?config ?metrics ?trace name] executes the full pipeline on
    a catalog circuit.  [config] defaults to {!Config.for_circuit};
    [metrics] defaults to a fresh document (either way it is returned in
    the result); [trace] (default: the null sink) receives one span per
    phase. *)
val run :
  ?scale:Circuits.Profiles.scale ->
  ?config:Config.t ->
  ?metrics:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  string ->
  result

(** [scan_count scan seq] counts the [scan_sel = 1] vectors of a sequence. *)
val scan_count : Scanins.Scan.t -> Logicsim.Vectors.t -> int
