(** Per-circuit experiment pipeline: everything the paper's Tables 5–7
    report for one benchmark circuit.

    The pipeline builds the circuit (exact or synthetic substitute), inserts
    the scan chain, elaborates the fault model, runs the Section-2 unified
    generation flow, compacts with restoration [23] then omission [22],
    runs the [26]-style baseline for the comparison column, and translates
    + compacts the baseline's test set for Table 7. *)

type lengths = {
  total : int;  (** sequence length = tester clock cycles *)
  scan : int;  (** vectors with [scan_sel = 1] *)
}

type table5_row = {
  name : string;
  inp : int;  (** primary inputs of [C_scan], scan inputs included *)
  stvr : int;
  faults : int;  (** targeted faults (proven-redundant excluded) *)
  detected : int;
  fcov : float;
  funct : int;  (** detections owed to scan functional knowledge (drains) *)
}

type table6_row = {
  name : string;
  test_len : lengths;
  restor_len : lengths;
  omit_len : lengths;
  ext_det : int;  (** extra faults detected after compaction *)
  baseline_cycles : int;  (** the "[26] cyc" column *)
}

type table7_row = {
  name : string;
  test_len : lengths;
  restor_len : lengths;
  omit_len : lengths;
  baseline_cycles : int;
}

type result = {
  circuit : string;
  row5 : table5_row;
  row6 : table6_row;
  row7 : table7_row option;  (** [None] when the baseline detected nothing *)
  flow : Flow.stats;
  degraded : bool;
  (** the budget tripped somewhere: every phase after the trip was replaced
      by its cheapest sound stand-in (compaction returns the sequence
      unchanged, the baseline and Table 7 are skipped); the
      [budget.tripped.<phase>] counter names the phase *)
  runtime_s : float;  (** monotonic wall-clock seconds *)
  metrics : Obs.Metrics.t;
  (** per-phase wall-clock seconds ([scan-insert], [model-build],
      [generate], [restore], [omit], [extra-detect], [baseline],
      [translate]) plus the [atpg.*] / [sim.*] / [restore.*] / [omit.*]
      counters; every counter is independent of [Config.sim_jobs] *)
  omit_stats : Compaction.Omission.stats;
  (** the main flow's (row-6) omission trial statistics *)
}

(** Raised by {!run} right after the named phase's checkpoint was written,
    when [halt_after] asked for it — the testing hook behind
    [scanatpg run --halt-after]. *)
exception Halted of string

(** [run ?scale ?config ?metrics ?trace name] executes the full pipeline on
    a catalog circuit.  [config] defaults to {!Config.for_circuit};
    [metrics] defaults to a fresh document (either way it is returned in
    the result); [trace] (default: the null sink) receives one span per
    phase.

    Resilience (DESIGN.md §8): [budget] makes the run anytime — each phase
    winds down at its next safe point once the budget trips and the result
    is flagged [degraded].  [checkpoint] names a file that receives an
    atomically-written {!Checkpoint} after every phase and, during
    generation, after every [checkpoint_every] committed subsequences
    (default 25).  [resume] is a loaded checkpoint of the same run
    (circuit, scale, seed, chains — @raise Checkpoint.Corrupt on a
    fingerprint mismatch); completed phases are restored verbatim, so the
    resumed run's table rows and jobs-invariant counters are bit-identical
    to an uninterrupted one.  [halt_after] raises {!Halted} just after the
    named phase ([generate], [compact], [extra-detect], [baseline])
    checkpoints — an induced crash for resume tests.

    [pool], when given, supplies compaction's speculative trial domains
    from a shared {!Compaction.Spec.Pool} (the daemon's batch-level
    parallelism) instead of per-round spawns; results are identical. *)
val run :
  ?scale:Circuits.Profiles.scale ->
  ?config:Config.t ->
  ?metrics:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?budget:Obs.Budget.t ->
  ?checkpoint:string ->
  ?resume:Checkpoint.file ->
  ?checkpoint_every:int ->
  ?halt_after:string ->
  ?pool:Compaction.Spec.Pool.t ->
  string ->
  result

(** [scan_count scan seq] counts the [scan_sel = 1] vectors of a sequence. *)
val scan_count : Scanins.Scan.t -> Logicsim.Vectors.t -> int
