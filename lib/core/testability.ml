module Model = Faultmodel.Model

type verdict =
  | Testable
  | Redundant
  | Unknown

let classify ?(budget = Obs.Budget.unlimited) model ~fault ~backtrack_limit =
  match
    Atpg.Podem.run model ~fault ~depth:1 ~start:Atpg.Podem.Free_state
      ~backtrack_limit ~observe_ffs:true ~budget ()
  with
  | Atpg.Podem.Detected _ | Atpg.Podem.Latched _ -> Testable
  | Atpg.Podem.Exhausted -> Redundant
  | Atpg.Podem.Aborted -> Unknown

let partition ?(budget = Obs.Budget.unlimited) model ~backtrack_limit =
  let targets = ref [] and redundant = ref [] and unknown = ref [] in
  for fault = Model.fault_count model - 1 downto 0 do
    (* Once the budget trips every classify returns Unknown (sound: the
       fault stays targeted); skip the PODEM calls entirely. *)
    match
      if Obs.Budget.check budget then classify ~budget model ~fault ~backtrack_limit
      else Unknown
    with
    | Testable -> targets := fault :: !targets
    | Redundant -> redundant := fault :: !redundant
    | Unknown ->
      unknown := fault :: !unknown;
      targets := fault :: !targets
  done;
  ( Array.of_list !targets,
    Array.of_list !redundant,
    Array.of_list !unknown )
