(** Alias of {!Obs.Budget}, the cooperative cancellation / deadline token.

    The implementation lives in [Obs] so the layers below [core] (atpg,
    logicsim, compaction) can poll the same token without a dependency
    cycle; [Core.Budget] is the name pipeline-level code uses.  The types
    are equal, so a token created here is accepted everywhere. *)

include
  module type of Obs.Budget
    with type t = Obs.Budget.t
     and type reason = Obs.Budget.reason
