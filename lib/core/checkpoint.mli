(** Crash-safe pipeline checkpoints (DESIGN.md §8).

    A checkpoint captures the pipeline's progress either mid-generation
    (a {!Flow.cursor}) or at a phase boundary (the completed phases'
    results).  Files are versioned ([scanatpg-checkpoint/1]), carry an
    FNV-1a 64 checksum of the marshaled payload, and are written
    atomically via {!Obs.Fileio}, so an interrupted run always leaves a
    loadable file.  Resuming replays nothing that already ran: completed
    phase results (and the jobs-invariant counters they contributed) are
    restored verbatim, and a generation cursor resumes the flow with
    bit-identical results (see {!Flow.cursor}). *)

(** Results of the phases completed so far, in pipeline order: [p_compact]
    (row-6 restoration + omission), [p_ext_det], [p_baseline].  [p_flow]
    and the telemetry snapshots are always present.  [p_counters] holds the
    metrics document's counters at the boundary and [p_rstats] the
    restoration work counters, so a resumed run's final counter totals
    equal an uninterrupted run's. *)
type phased = {
  p_flow : Flow.stats;
  p_counters : (string * int) list;
  p_rstats : int * int * int;  (** restored, probes, batch_sims *)
  p_compact :
    (Logicsim.Vectors.t * Logicsim.Vectors.t * Compaction.Omission.stats)
      option;
  p_ext_det : int option;
  p_baseline : (Scanins.Scan_test.t list * int * Baseline.Gen26.result) option;
}

type stage =
  | Generating of Flow.cursor  (** mid-generation *)
  | Phased of phased  (** at a phase boundary after generation *)

type file = {
  fingerprint : string;
  stage : stage;
}

(** Raised by {!load} on unreadable, foreign, truncated or corrupted
    files. *)
exception Corrupt of string

(** Identity of the run a checkpoint belongs to: circuit, scale, seed and
    chain count.  [sim_jobs] is excluded — results are jobs-invariant, so
    a checkpoint may be resumed at a different parallelism. *)
val fingerprint :
  circuit:string ->
  scale:Circuits.Profiles.scale ->
  seed:int64 ->
  chains:int ->
  string

(** Short human name of the last completed (or in-progress) phase, for
    logs and progress messages. *)
val stage_name : stage -> string

(** [save ~path ~fingerprint stage] writes atomically: the previous file
    (if any) is replaced only once the new one is fully on disk. *)
val save : path:string -> fingerprint:string -> stage -> unit

(** @raise Corrupt when the file is not a loadable version-1 checkpoint. *)
val load : string -> file
