(** Parallel-fault sequential fault simulation.

    Faults are simulated in groups of up to 62 per native machine word: a
    signal's value across the group is a pair of bit-words [(zero, one)]
    (two-rail three-valued encoding, [X] = neither bit).  Each group carries
    its own flip-flop state words across time frames; a fault is injected by
    forcing the faulty node's output bits for the owning machine — branch
    faults were turned into node-output faults by {!Faultmodel.Model}.

    Two engines share that representation:

    - {!Event} (the default) is an event-driven (HOPE-style) selective-trace
      kernel: the fault-free machine is simulated once per frame, a group's
      words are treated as {e differences} against the good broadcast, and
      only fanout cones reached from state divergences and injection sites
      are re-evaluated through a per-level event queue built on
      {!Netlist.Levelize} data.  Since groups are independent given the good
      trace, sessions created with [jobs > 1] deal groups round-robin across
      [Domain.spawn] workers, each with its own scratch arrays and good
      machine replay; results (detection times, states, counts) are
      bit-identical to the sequential schedule.
    - {!Dense} is the original PROOFS-style kernel evaluating every gate of
      every frame for every group.  It is the cross-validation oracle and
      benchmark baseline.

    A {!t} is a *session*: it holds the good machine, every group's faulty
    state, and per-fault first-detection times.  Sequences are fed
    incrementally with {!advance} (or zero-copy views with
    {!advance_view}), which is what makes the generation flow's repeated
    "append a subsequence, then drop newly-detected faults" cheap.

    Detection is strict: a fault is detected at a frame when some primary
    output (including [scan_out]) has a binary good value and the opposite
    binary faulty value. *)

type t

type engine =
  | Dense  (** evaluate every gate for every group and frame (oracle) *)
  | Event  (** event-driven difference propagation (default) *)

(** Session telemetry, accumulated across {!advance} calls.  The simulation
    kernel counters ([frames] consumed, [gframes] (group, frame) pairs
    simulated, [events] gate evaluations in the event engine, [wakeups]
    dirty flip-flops seeded, [kills] machines masked out on detection,
    [repacks] group-repack operations) are defined per fixed repack block —
    a jobs-independent partition of the group array — so their totals are
    bit-identical at any [jobs] setting.  [toggles] and [wsa] (weighted
    switching activity: each good-machine binary toggle weighted by
    [1 + fanouts]) are only counted when the session was created with
    [~observe:true], by the session domain's good machine. *)
type stats = {
  mutable frames : int;
  mutable gframes : int;
  mutable events : int;
  mutable wakeups : int;
  mutable kills : int;
  mutable repacks : int;
  mutable toggles : int;
  mutable wsa : int;
}

(** [create model ~fault_ids] starts a session over the given target faults
    (indices into [model.faults]) at time 0.

    [good_state] (default all-[X]) initializes the flip-flop state,
    indexed like [Circuit.dffs]; [faulty_states] (default: same as the good
    state) gives a per-fault initial state, enabling sessions that continue
    from the middle of another simulation.  [engine] selects the kernel
    (default {!Event}); [jobs] (default 1) bounds the number of domains the
    event engine may schedule fault groups across; [observe] (default
    [false]) additionally counts good-machine toggle / switching activity
    into {!stats} and {!frame_toggles}.

    [budget] (default {!Obs.Budget.unlimited}) is polled once per frame:
    when it trips mid-{!advance}, fault machines freeze at the current
    frame while the session's good machine still steps through the whole
    view.  Degradation is sound — detections recorded before the trip are
    exact, and frozen faults simply remain undetected. *)
val create :
  ?good_state:Netlist.Logic.t array ->
  ?faulty_states:(int -> Netlist.Logic.t array) ->
  ?engine:engine ->
  ?jobs:int ->
  ?observe:bool ->
  ?budget:Obs.Budget.t ->
  Faultmodel.Model.t ->
  fault_ids:int array ->
  t

(** Frames consumed so far. *)
val time : t -> int

(** [advance t seq] simulates the next [Array.length seq] frames. *)
val advance : t -> Vectors.t -> unit

(** [advance_view t v] simulates the frames visible through [v] without
    materializing them. *)
val advance_view : t -> Vectors.View.t -> unit

(** First detection time of a fault (a frame index), if any.
    @raise Invalid_argument if the fault is not targeted by this session. *)
val detection_time : t -> int -> int option

val detected_count : t -> int

(** The session's telemetry record (the live record, not a copy). *)
val stats : t -> stats

(** Per-frame good-machine toggle counts; only populated when the session
    was created with [~observe:true]. *)
val frame_toggles : t -> Obs.Hist.t

(** Target faults still undetected, in target order. *)
val undetected : t -> int array

(** Current good-machine flip-flop state (fresh array). *)
val good_state : t -> Netlist.Logic.t array

(** [faulty_state t fault] is the fault's machine state (fresh array).
    Meaningful for undetected faults (detected machines stop being
    updated). *)
val faulty_state : t -> int -> Netlist.Logic.t array

(** Flip-flop indices currently holding a strict fault effect for [fault]:
    good value binary, faulty value the opposite binary. *)
val ff_effects : t -> int -> int list

(** Total number of (undetected fault, flip-flop) pairs currently holding a
    strict fault effect — a cheap word-parallel progress measure for
    simulation-based test generation. *)
val effect_bits : t -> int

(** Branch-free SWAR population count, valid for non-negative values below
    [2^62] (every group word).  Exposed for cross-validation. *)
val popcount : int -> int

(** {1 Snapshots}

    A snapshot is an immutable capture of a session's position: the good
    flip-flop state plus every captured fault's machine state, kept in
    the packed 62-faults-per-word group representation so the capture
    costs a small fraction of materializing per-fault arrays; individual
    states are unpacked only for the faults a probe session targets.
    Because {!create} copies initial states on read, a snapshot may be
    shared read-only across domains: each worker builds its own
    thread-confined probe session with {!of_snapshot} and simulates
    independently.  This is what makes speculative compaction trials
    cheap — one state capture per round, [K] concurrent probes against
    it. *)

type snapshot

(** A reusable buffer set for repeated captures.  Speculative compaction
    snapshots the same session once per round; an arena lets round [r+1]
    overwrite round [r]'s packed buffers in place instead of
    reallocating them.  {b Taking a new snapshot from an arena
    invalidates every earlier snapshot taken from it} — callers must
    finish all probes against the previous capture first (the
    speculative [map]'s join is that barrier). *)
type snapshot_arena

val arena : unit -> snapshot_arena

(** Number of captures that reused at least one arena buffer — feeds the
    [compaction.adaptive.arena_reuses] counter. *)
val arena_hits : snapshot_arena -> int

(** [snapshot t] captures the current good and per-fault states for
    [fault_ids] (default: every target of [t]).  The snapshot is
    positioned at [time t]; fault states of already-detected faults
    equal the good state.  With [arena], buffers of a previous capture
    of compatible shape are reused (see {!snapshot_arena}). *)
val snapshot : ?arena:snapshot_arena -> ?fault_ids:int array -> t -> snapshot

(** [of_snapshot snap ~fault_ids] starts a fresh session continuing from
    the snapshot's position, over a subset of the captured faults.
    @raise Invalid_argument if a fault was not captured. *)
val of_snapshot :
  ?engine:engine ->
  ?jobs:int ->
  ?budget:Obs.Budget.t ->
  snapshot ->
  fault_ids:int array ->
  t

(** {1 One-shot conveniences} *)

(** [detection_times model ~fault_ids seq] simulates [seq] from power-up and
    returns first-detection times aligned with [fault_ids] ([-1] when
    undetected). *)
val detection_times :
  ?engine:engine ->
  ?jobs:int ->
  ?budget:Obs.Budget.t ->
  Faultmodel.Model.t ->
  fault_ids:int array ->
  Vectors.t ->
  int array

val detection_times_view :
  ?engine:engine ->
  ?jobs:int ->
  ?budget:Obs.Budget.t ->
  Faultmodel.Model.t ->
  fault_ids:int array ->
  Vectors.View.t ->
  int array

(** [detects_single model ~fault ?start seq] simulates one fault, optionally
    from a [(good_state, faulty_state)] pair, and returns its detection time
    within [seq]. *)
val detects_single :
  ?engine:engine ->
  ?budget:Obs.Budget.t ->
  Faultmodel.Model.t ->
  fault:int ->
  ?start:Netlist.Logic.t array * Netlist.Logic.t array ->
  Vectors.t ->
  int option

val detects_single_view :
  ?engine:engine ->
  ?budget:Obs.Budget.t ->
  Faultmodel.Model.t ->
  fault:int ->
  ?start:Netlist.Logic.t array * Netlist.Logic.t array ->
  Vectors.View.t ->
  int option

(** {1 Fault-injection test instrumentation}

    [set_block_hook f] installs a callback invoked once per {!advance} per
    scheduled repack block with the block's canonical id, from whichever
    domain owns the block.  A hook that raises exercises the parallel
    error path: the session joins every sibling domain before re-raising
    the first error (session domain first, then spawn order).  Not for
    production use — reset with [clear_block_hook]. *)
val set_block_hook : (int -> unit) -> unit
val clear_block_hook : unit -> unit
