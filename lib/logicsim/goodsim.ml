module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Logic = Netlist.Logic
module Levelize = Netlist.Levelize

type t = {
  circuit : Circuit.t;
  order : int array;
  inputs : int array;
  outputs : int array;
  dffs : int array;
  dff_fanin : int array;
  values : Logic.t array;
  state : Logic.t array;
}

let create ?levelize c =
  let lv =
    match levelize with
    | Some lv -> lv
    | None -> Levelize.of_circuit c
  in
  let dffs = Circuit.dffs c in
  {
    circuit = c;
    order = lv.Levelize.order;
    inputs = Circuit.inputs c;
    outputs = Circuit.outputs c;
    dffs;
    dff_fanin = Array.map (fun ff -> (Circuit.node c ff).Circuit.fanins.(0)) dffs;
    values = Array.make (Circuit.node_count c) Logic.X;
    state = Array.make (Array.length dffs) Logic.X;
  }

let reset t =
  Array.fill t.state 0 (Array.length t.state) Logic.X;
  Array.fill t.values 0 (Array.length t.values) Logic.X

let set_state t s =
  if Array.length s <> Array.length t.state then
    invalid_arg "Goodsim.set_state: state length mismatch";
  Array.blit s 0 t.state 0 (Array.length s)

let state t = Array.copy t.state

let state_into t dst =
  if Array.length dst <> Array.length t.state then
    invalid_arg "Goodsim.state_into: state length mismatch";
  Array.blit t.state 0 dst 0 (Array.length t.state)

let eval_node c values id =
  let nd = Circuit.node c id in
  let f = nd.Circuit.fanins in
  match nd.Circuit.kind with
  | Gate.Buf -> values.(f.(0))
  | Gate.Not -> Logic.bnot values.(f.(0))
  | Gate.And ->
    let acc = ref values.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      acc := Logic.band !acc values.(f.(i))
    done;
    !acc
  | Gate.Nand ->
    let acc = ref values.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      acc := Logic.band !acc values.(f.(i))
    done;
    Logic.bnot !acc
  | Gate.Or ->
    let acc = ref values.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      acc := Logic.bor !acc values.(f.(i))
    done;
    !acc
  | Gate.Nor ->
    let acc = ref values.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      acc := Logic.bor !acc values.(f.(i))
    done;
    Logic.bnot !acc
  | Gate.Xor ->
    let acc = ref values.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      acc := Logic.bxor !acc values.(f.(i))
    done;
    !acc
  | Gate.Xnor ->
    let acc = ref values.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      acc := Logic.bxor !acc values.(f.(i))
    done;
    Logic.bnot !acc
  | Gate.Mux -> Logic.mux values.(f.(0)) values.(f.(1)) values.(f.(2))
  | Gate.Input | Gate.Dff -> invalid_arg "Goodsim.eval_node: source node"

let step t vec =
  if Array.length vec <> Array.length t.inputs then
    invalid_arg "Goodsim.step: vector length mismatch";
  Array.iteri (fun i id -> t.values.(id) <- vec.(i)) t.inputs;
  Array.iteri (fun k id -> t.values.(id) <- t.state.(k)) t.dffs;
  Array.iter (fun id -> t.values.(id) <- eval_node t.circuit t.values id) t.order;
  Array.iteri (fun k d -> t.state.(k) <- t.values.(d)) t.dff_fanin

let po_values t = Array.map (fun o -> t.values.(o)) t.outputs
let value t id = t.values.(id)

let run t seq =
  Array.map
    (fun vec ->
      step t vec;
      po_values t)
    seq
