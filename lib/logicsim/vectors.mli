(** Input vectors and test sequences.

    A vector assigns a three-valued value to every primary input of a
    circuit (in [Circuit.inputs] order); a sequence is an array of vectors,
    one per clock cycle.  Sequences are the universal currency of this
    project: the unified approach represents scan operations as ordinary
    vectors inside them. *)

type vector = Netlist.Logic.t array
type t = vector array

(** [parse "01x1"] builds a vector.  @raise Invalid_argument on characters
    outside [0], [1], [x], [X]. *)
val parse : string -> vector

val to_string : vector -> string

(** [random rng ~width] draws a uniformly random fully-specified vector. *)
val random : Prng.Rng.t -> width:int -> vector

val random_seq : Prng.Rng.t -> width:int -> length:int -> t

(** [fill_x rng seq] replaces every [X] with a random binary value (fresh
    arrays; [seq] is not mutated). *)
val fill_x : Prng.Rng.t -> t -> t

(** [specified_with rng v] replaces [X] entries of a single vector. *)
val specified_with : Prng.Rng.t -> vector -> vector

val concat : t -> t -> t
val copy : t -> t

(** [count seq ~position ~value] counts vectors whose [position]-th entry
    equals [value] — e.g. the number of cycles with [scan_sel = 1]. *)
val count : t -> position:int -> value:Netlist.Logic.t -> int

val pp : Format.formatter -> t -> unit

(** Zero-copy windows over a sequence.

    The compaction procedures probe thousands of suffixes and keep-mask
    selections of one base sequence; materializing each probe as a fresh
    vector array made those loops allocation-bound.  A view shares the base
    sequence's vectors and only describes which positions are visible, so
    building one is O(1) (slices) or one int-array scan (masks), and the
    simulators consume views directly ({!Faultsim.advance_view}). *)
module View : sig
  type seq := t
  type t

  val of_seq : seq -> t

  val length : t -> int

  (** [get v i] is the [i]-th visible vector (shared, not copied). *)
  val get : t -> int -> vector

  (** [slice v off len] restricts [v] to [len] positions starting at [off]
      (composable; slicing a slice stays O(1)).
      @raise Invalid_argument when the range is out of bounds. *)
  val slice : t -> int -> int -> t

  (** [masked ?limit base keep] shows the positions [i <= limit] (default:
      all) of [base] with [keep.(i) = true], in order. *)
  val masked : ?limit:int -> seq -> bool array -> t

  (** Materialize (O(1) for views covering a whole sequence). *)
  val to_seq : t -> seq
end
