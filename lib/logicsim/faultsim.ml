module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Logic = Netlist.Logic
module Levelize = Netlist.Levelize
module Model = Faultmodel.Model
module View = Vectors.View

let width = 62
let full = (1 lsl width) - 1

(* Branch-free SWAR popcount for non-negative values below 2^62 (our group
   words).  The 64-bit constants do not fit OCaml's 63-bit literals, so each
   mask is assembled from two 32-bit halves; bit 62 of [m1] lands on the
   sign bit, which is harmless under [land]. *)
let popcount x =
  let m1 = (0x55555555 lsl 32) lor 0x55555555 in
  let m2 = (0x33333333 lsl 32) lor 0x33333333 in
  let m4 = (0x0F0F0F0F lsl 32) lor 0x0F0F0F0F in
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  let x = x + (x lsr 8) in
  let x = x + (x lsr 16) in
  let x = x + (x lsr 32) in
  x land 0x7f

type engine =
  | Dense
  | Event

(* Session telemetry.  Every field except [toggles]/[wsa] is defined purely
   in terms of per-block work (see the repack-block scheme below), so the
   totals are identical at any [jobs] setting; the activity pair is counted
   by the session domain's good machine only, which makes it deterministic
   as well. *)
type stats = {
  mutable frames : int;
  mutable gframes : int;
  mutable events : int;
  mutable wakeups : int;
  mutable kills : int;
  mutable repacks : int;
  mutable toggles : int;
  mutable wsa : int;
}

let make_stats () =
  { frames = 0; gframes = 0; events = 0; wakeups = 0; kills = 0; repacks = 0;
    toggles = 0; wsa = 0 }

type group = {
  ids : int array;  (* slot -> fault id *)
  mutable active : int;  (* bitmask of undetected machines *)
  fzero : int array;  (* per dff index: state words *)
  fone : int array;
  inj_nodes : int array;  (* nodes carrying an injection in this group *)
  inj1 : int array;  (* stuck-at-1 machine masks, parallel to inj_nodes *)
  inj0 : int array;
  (* Event engine: [fzero]/[fone] are only meaningful at the [ndirty]
     indices listed in [dirty] (membership mirrored in [dmark]); every
     other flip-flop implicitly holds the good machine's state.  The dense
     engine keeps all slots marked and ignores the list, so the accessors
     below work unchanged for both. *)
  dirty : int array;
  mutable ndirty : int;
  dmark : Bytes.t;
  inj_dff : int array;  (* dff indices whose node carries an injection *)
}

(* Per-worker evaluation state.  [wz]/[wo] hold a node's absolute words only
   while [stamp] equals the current [epoch]; any other node implicitly holds
   the frame's good-value broadcast ([gw0]/[gw1]).  One epoch per
   (group, frame), so nothing is ever cleared. *)
type scratch = {
  wz : int array;
  wo : int array;
  mz : int array;  (* per-node injection masks while a group runs *)
  mo : int array;
  gw0 : int array;  (* good-value broadcast words of the current frame *)
  gw1 : int array;
  qstamp : int array;  (* epoch at which a node was last enqueued *)
  mutable epoch : int;
  queue : int array array;  (* per level: pending gate ids *)
  qlen : int array;
  touched : int array;  (* nodes stamped this epoch, for the latch walk *)
  mutable ntouched : int;
  (* Telemetry staging: zeroed when a worker starts, flushed into the
     session's [stats] after the (possibly cross-domain) merge.  Plain
     mutable ints on worker-private state keep the hot path free of any
     shared-memory traffic. *)
  mutable s_gframes : int;
  mutable s_events : int;
  mutable s_wakeups : int;
  mutable s_kills : int;
  mutable s_repacks : int;
}

type t = {
  model : Model.t;
  engine : engine;
  jobs : int;
  order : int array;
  level : int array;
  depth : int;
  inputs : int array;
  outputs : int array;
  dffs : int array;
  dff_fanin : int array;
  dff_feed_off : int array;  (* node -> CSR range into [dff_feed] *)
  dff_feed : int array;  (* dff indices latched from that node *)
  dff_index : int array;  (* node -> dff slot, -1 for non-flip-flops *)
  kinds : Gate.kind array;
  fanins : int array array;
  comb_fanouts : int array array;  (* fanouts minus flip-flops (latch step) *)
  good : Goodsim.t;
  budget : Obs.Budget.t;
  fault_ids : int array;  (* the targeted faults, in the caller's order *)
  mutable groups : group array;  (* repacking may rewrite the array *)
  group_of : int array;  (* fault id -> group index, -1 when untargeted *)
  slot_of : int array;  (* fault id -> slot in its group *)
  det_time : int array;  (* fault id -> frame, -1 undetected *)
  mutable detected : int;
  mutable time : int;
  scratch : scratch;  (* the calling domain's worker state *)
  stats : stats;
  observe : bool;  (* count good-machine toggle / WSA activity *)
  prev_good : Logic.t array;  (* last frame's good values ([||] unless observing) *)
  fanout_count : int array;  (* node -> fanout count ([||] unless observing) *)
  frame_toggles : Obs.Hist.t;  (* per-frame toggle counts (observe mode) *)
}

let make_scratch model =
  let c = model.Model.circuit in
  let n = Circuit.node_count c in
  let lv = model.Model.levelize in
  {
    wz = Array.make n 0;
    wo = Array.make n 0;
    mz = Array.make n 0;
    mo = Array.make n 0;
    gw0 = Array.make n 0;
    gw1 = Array.make n 0;
    qstamp = Array.make n 0;
    epoch = 0;
    queue = Array.map (fun cnt -> Array.make cnt 0) lv.Levelize.level_counts;
    qlen = Array.make (lv.Levelize.depth + 1) 0;
    touched = Array.make n 0;
    ntouched = 0;
    s_gframes = 0;
    s_events = 0;
    s_wakeups = 0;
    s_kills = 0;
    s_repacks = 0;
  }

let reset_sstats sc =
  sc.s_gframes <- 0;
  sc.s_events <- 0;
  sc.s_wakeups <- 0;
  sc.s_kills <- 0;
  sc.s_repacks <- 0

let flush_sstats stats (gframes, events, wakeups, kills, repacks) =
  stats.gframes <- stats.gframes + gframes;
  stats.events <- stats.events + events;
  stats.wakeups <- stats.wakeups + wakeups;
  stats.kills <- stats.kills + kills;
  stats.repacks <- stats.repacks + repacks

let read_sstats sc =
  (sc.s_gframes, sc.s_events, sc.s_wakeups, sc.s_kills, sc.s_repacks)

(* Injection tables of one word of faults: per distinct site, the
   stuck-at-1/0 machine masks, plus the dff slots among the sites. *)
let build_injections model dff_index ids =
  let inj = Hashtbl.create 16 in
  Array.iteri
    (fun slot fid ->
      let node = model.Model.fault_node.(fid) in
      let m1, m0 =
        match Hashtbl.find_opt inj node with
        | Some p -> p
        | None -> 0, 0
      in
      let bit = 1 lsl slot in
      let p =
        if model.Model.fault_stuck.(fid) then m1 lor bit, m0
        else m1, m0 lor bit
      in
      Hashtbl.replace inj node p)
    ids;
  let inj_nodes = Array.of_seq (Hashtbl.to_seq_keys inj) in
  Array.sort compare inj_nodes;
  let inj1 = Array.map (fun nd -> fst (Hashtbl.find inj nd)) inj_nodes in
  let inj0 = Array.map (fun nd -> snd (Hashtbl.find inj nd)) inj_nodes in
  let inj_dff =
    Array.of_list
      (List.filter_map
         (fun nd -> if dff_index.(nd) >= 0 then Some dff_index.(nd) else None)
         (Array.to_list inj_nodes))
  in
  inj_nodes, inj1, inj0, inj_dff

(* Test instrumentation: called once per advance per scheduled block with
   the block's canonical id, from whichever domain owns the block.  The
   fault-injection tests poison a specific block to exercise the
   cross-domain error path; production leaves the hook at its no-op. *)
let block_hook : (int -> unit) ref = ref (fun _ -> ())
let set_block_hook f = block_hook := f
let clear_block_hook () = block_hook := fun _ -> ()

let create ?good_state ?faulty_states ?(engine = Event) ?(jobs = 1)
    ?(observe = false) ?(budget = Obs.Budget.unlimited) model ~fault_ids =
  let c = model.Model.circuit in
  let dffs = Circuit.dffs c in
  let nff = Array.length dffs in
  let n = Circuit.node_count c in
  let dff_index = Array.make n (-1) in
  Array.iteri (fun k id -> dff_index.(id) <- k) dffs;
  (* CSR map: node -> dff slots it drives (several flip-flops may share a
     fanin).  The event engine's latch walks only the frame's touched nodes
     through this map instead of scanning every flip-flop. *)
  let dff_fanin =
    Array.map (fun ff -> (Circuit.node c ff).Circuit.fanins.(0)) dffs
  in
  let dff_feed_off = Array.make (n + 1) 0 in
  Array.iter
    (fun d -> dff_feed_off.(d + 1) <- dff_feed_off.(d + 1) + 1)
    dff_fanin;
  for i = 0 to n - 1 do
    dff_feed_off.(i + 1) <- dff_feed_off.(i + 1) + dff_feed_off.(i)
  done;
  let dff_feed = Array.make nff 0 in
  let fill = Array.copy dff_feed_off in
  Array.iteri
    (fun k d ->
      dff_feed.(fill.(d)) <- k;
      fill.(d) <- fill.(d) + 1)
    dff_fanin;
  let fault_total = Model.fault_count model in
  let good = Goodsim.create ~levelize:model.Model.levelize c in
  let good_state =
    match good_state with
    | Some s -> s
    | None -> Array.make nff Logic.X
  in
  Goodsim.set_state good good_state;
  let faulty_state_of =
    match faulty_states with
    | Some f -> f
    | None -> fun _ -> good_state
  in
  let ngroups = (Array.length fault_ids + width - 1) / width in
  let group_of = Array.make fault_total (-1) in
  let slot_of = Array.make fault_total (-1) in
  let groups =
    Array.init ngroups (fun gi ->
        let lo = gi * width in
        let len = min width (Array.length fault_ids - lo) in
        let ids = Array.sub fault_ids lo len in
        Array.iteri
          (fun slot fid ->
            if group_of.(fid) >= 0 then
              invalid_arg "Faultsim.create: duplicate fault id";
            group_of.(fid) <- gi;
            slot_of.(fid) <- slot)
          ids;
        let fzero = Array.make nff 0 and fone = Array.make nff 0 in
        Array.iteri
          (fun slot fid ->
            let st = faulty_state_of fid in
            let bit = 1 lsl slot in
            Array.iteri
              (fun k v ->
                match v with
                | Logic.Zero -> fzero.(k) <- fzero.(k) lor bit
                | Logic.One -> fone.(k) <- fone.(k) lor bit
                | Logic.X -> ())
              st)
          ids;
        let inj_nodes, inj1, inj0, inj_dff =
          build_injections model dff_index ids
        in
        { ids; active = (if len = width then full else (1 lsl len) - 1);
          fzero; fone; inj_nodes; inj1; inj0;
          dirty = Array.init nff (fun k -> k);
          ndirty = nff;
          dmark = Bytes.make nff '\001';
          inj_dff })
  in
  {
    model;
    engine;
    jobs = max 1 jobs;
    order = model.Model.levelize.Levelize.order;
    level = model.Model.levelize.Levelize.level;
    depth = model.Model.levelize.Levelize.depth;
    inputs = Circuit.inputs c;
    outputs = Circuit.outputs c;
    dffs;
    dff_fanin;
    dff_feed_off;
    dff_feed;
    dff_index;
    kinds = Array.map (fun nd -> nd.Circuit.kind) (Circuit.nodes c);
    fanins = Array.map (fun nd -> nd.Circuit.fanins) (Circuit.nodes c);
    comb_fanouts =
      Array.init n (fun nd ->
          Array.of_list
            (List.filter
               (fun m -> (Circuit.node c m).Circuit.kind <> Gate.Dff)
               (Array.to_list (Circuit.fanout c nd))));
    good;
    budget;
    fault_ids = Array.copy fault_ids;
    groups;
    group_of;
    slot_of;
    det_time = Array.make fault_total (-1);
    detected = 0;
    time = 0;
    scratch = make_scratch model;
    stats = make_stats ();
    observe;
    prev_good = (if observe then Array.make n Logic.X else [||]);
    fanout_count =
      (if observe then
         Array.init n (fun nd -> Array.length (Circuit.fanout c nd))
       else [||]);
    frame_toggles = Obs.Hist.create ();
  }

let time t = t.time

(* Toggle / weighted-switching activity of the good machine, counted right
   after its step.  Only the session domain calls this (spawned workers
   merely replay the good trace), so plain mutation of [t.stats] is safe
   and the totals never depend on [jobs].  A toggle is a binary-to-opposite
   transition; X transitions carry no defined switching energy.  The WSA
   weight [1 + fanouts] is the usual gate-plus-fanout capacitance proxy. *)
let count_activity t gsim =
  let prev = t.prev_good in
  let toggles = ref 0 and wsa = ref 0 in
  for nd = 0 to Array.length prev - 1 do
    let v = Goodsim.value gsim nd in
    (match prev.(nd), v with
     | Logic.Zero, Logic.One | Logic.One, Logic.Zero ->
       incr toggles;
       wsa := !wsa + 1 + t.fanout_count.(nd)
     | _ -> ());
    prev.(nd) <- v
  done;
  t.stats.toggles <- t.stats.toggles + !toggles;
  t.stats.wsa <- t.stats.wsa + !wsa;
  Obs.Hist.observe t.frame_toggles !toggles

(* ------------------------------------------------------- dense reference *)

(* The original PROOFS-style kernel: every gate of every frame is evaluated
   for every group, in levelized order.  Kept as the oracle the event-driven
   engine is cross-validated against (see test/test_logicsim.ml), and for
   benchmark comparisons. *)

(* Force the injected machines' bits at node [nd]. *)
let[@inline] apply_inj sc nd =
  let m1 = sc.mo.(nd) and m0 = sc.mz.(nd) in
  if m1 lor m0 <> 0 then begin
    sc.wz.(nd) <- sc.wz.(nd) land lnot m1 lor m0;
    sc.wo.(nd) <- sc.wo.(nd) land lnot m0 lor m1
  end

let eval_gate t sc nd =
  let f = t.fanins.(nd) in
  let wz = sc.wz and wo = sc.wo in
  match t.kinds.(nd) with
  | Gate.Buf ->
    wz.(nd) <- wz.(f.(0));
    wo.(nd) <- wo.(f.(0))
  | Gate.Not ->
    wz.(nd) <- wo.(f.(0));
    wo.(nd) <- wz.(f.(0))
  | Gate.And | Gate.Nand ->
    let z = ref wz.(f.(0)) and o = ref wo.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      z := !z lor wz.(f.(i));
      o := !o land wo.(f.(i))
    done;
    if t.kinds.(nd) = Gate.Nand then begin
      wz.(nd) <- !o;
      wo.(nd) <- !z
    end
    else begin
      wz.(nd) <- !z;
      wo.(nd) <- !o
    end
  | Gate.Or | Gate.Nor ->
    let z = ref wz.(f.(0)) and o = ref wo.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      z := !z land wz.(f.(i));
      o := !o lor wo.(f.(i))
    done;
    if t.kinds.(nd) = Gate.Nor then begin
      wz.(nd) <- !o;
      wo.(nd) <- !z
    end
    else begin
      wz.(nd) <- !z;
      wo.(nd) <- !o
    end
  | Gate.Xor | Gate.Xnor ->
    let z = ref wz.(f.(0)) and o = ref wo.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      let z2 = wz.(f.(i)) and o2 = wo.(f.(i)) in
      let no = !o land z2 lor (!z land o2) in
      let nz = !z land z2 lor (!o land o2) in
      z := nz;
      o := no
    done;
    if t.kinds.(nd) = Gate.Xnor then begin
      wz.(nd) <- !o;
      wo.(nd) <- !z
    end
    else begin
      wz.(nd) <- !z;
      wo.(nd) <- !o
    end
  | Gate.Mux ->
    let zs = wz.(f.(0)) and os = wo.(f.(0)) in
    let za = wz.(f.(1)) and oa = wo.(f.(1)) in
    let zb = wz.(f.(2)) and ob = wo.(f.(2)) in
    wo.(nd) <- zs land oa lor (os land ob) lor (oa land ob);
    wz.(nd) <- zs land za lor (os land zb) lor (za land zb)
  | Gate.Input | Gate.Dff -> ()

(* Simulate one frame for one group; [good_po] holds the frame's fault-free
   output values.  Returns nothing; detections update session state. *)
let sim_frame_dense t g vec good_po =
  let sc = t.scratch in
  sc.s_gframes <- sc.s_gframes + 1;
  (* Sources. *)
  Array.iteri
    (fun i id ->
      (match vec.(i) with
       | Logic.One ->
         sc.wo.(id) <- full;
         sc.wz.(id) <- 0
       | Logic.Zero ->
         sc.wo.(id) <- 0;
         sc.wz.(id) <- full
       | Logic.X ->
         sc.wo.(id) <- 0;
         sc.wz.(id) <- 0);
      apply_inj sc id)
    t.inputs;
  Array.iteri
    (fun k id ->
      sc.wz.(id) <- g.fzero.(k);
      sc.wo.(id) <- g.fone.(k);
      apply_inj sc id)
    t.dffs;
  (* Combinational evaluation. *)
  Array.iter
    (fun nd ->
      eval_gate t sc nd;
      apply_inj sc nd)
    t.order;
  (* Detection. *)
  let det = ref 0 in
  Array.iteri
    (fun p id ->
      match good_po.(p) with
      | Logic.One -> det := !det lor sc.wz.(id)
      | Logic.Zero -> det := !det lor sc.wo.(id)
      | Logic.X -> ())
    t.outputs;
  let det = !det land g.active in
  if det <> 0 then begin
    sc.s_kills <- sc.s_kills + popcount det;
    Array.iteri
      (fun slot fid ->
        if det land (1 lsl slot) <> 0 then begin
          t.det_time.(fid) <- t.time;
          t.detected <- t.detected + 1
        end)
      g.ids;
    g.active <- g.active land lnot det
  end;
  (* Latch. *)
  Array.iteri
    (fun k d ->
      g.fzero.(k) <- sc.wz.(d);
      g.fone.(k) <- sc.wo.(d))
    t.dff_fanin

let advance_dense t view =
  let nframes = View.length view in
  let sc = t.scratch in
  let limited = Obs.Budget.limited t.budget in
  reset_sstats sc;
  let good_pos =
    Array.init nframes (fun i ->
        Goodsim.step t.good (View.get view i);
        if t.observe then count_activity t t.good;
        Goodsim.po_values t.good)
  in
  let t0 = t.time in
  Array.iter
    (fun g ->
      if g.active <> 0 then begin
        Array.iteri
          (fun i nd ->
            sc.mo.(nd) <- g.inj1.(i);
            sc.mz.(nd) <- g.inj0.(i))
          g.inj_nodes;
        t.time <- t0;
        let fi = ref 0 in
        while
          g.active <> 0 && !fi < nframes
          && ((not limited) || Obs.Budget.check t.budget)
        do
          sim_frame_dense t g (View.get view !fi) good_pos.(!fi);
          t.time <- t.time + 1;
          incr fi
        done;
        Array.iter
          (fun nd ->
            sc.mo.(nd) <- 0;
            sc.mz.(nd) <- 0)
          g.inj_nodes
      end)
    t.groups;
  flush_sstats t.stats (read_sstats sc);
  t.time <- t0 + nframes

(* -------------------------------------------------- event-driven engine *)

(* HOPE-style selective trace over difference words.  The good machine is
   simulated once per worker; a group's frame starts from the fact that
   every node equals the good broadcast unless a fault effect reaches it.
   During an event frame [wz]/[wo] hold each rail XORed with the broadcast,
   so an untouched node reads as all-zero without any per-node tag: seeds
   and evaluated gates store only genuine divergences, the frame's touched
   nodes are reset afterwards (O(activity), never O(nodes)), and a node
   whose recomputed words collapse back to the broadcast stops the
   trace. *)

let schedule_fanouts t sc nd =
  let fos = t.comb_fanouts.(nd) in
  for i = 0 to Array.length fos - 1 do
    let m = fos.(i) in
    if sc.qstamp.(m) <> sc.epoch then begin
      sc.qstamp.(m) <- sc.epoch;
      let lvl = t.level.(m) in
      sc.queue.(lvl).(sc.qlen.(lvl)) <- m;
      sc.qlen.(lvl) <- sc.qlen.(lvl) + 1
    end
  done

(* Evaluate a scheduled gate from difference-word fanins; record and
   propagate only a genuine divergence from the good broadcast. *)
let eval_event t sc nd =
  let f = t.fanins.(nd) in
  let wz = sc.wz and wo = sc.wo and gw0 = sc.gw0 and gw1 = sc.gw1 in
  let z = ref 0 and o = ref 0 in
  (match t.kinds.(nd) with
   | Gate.Buf ->
     z := wz.(f.(0)) lxor gw0.(f.(0));
     o := wo.(f.(0)) lxor gw1.(f.(0))
   | Gate.Not ->
     z := wo.(f.(0)) lxor gw1.(f.(0));
     o := wz.(f.(0)) lxor gw0.(f.(0))
   | Gate.And | Gate.Nand ->
     z := wz.(f.(0)) lxor gw0.(f.(0));
     o := wo.(f.(0)) lxor gw1.(f.(0));
     for i = 1 to Array.length f - 1 do
       z := !z lor (wz.(f.(i)) lxor gw0.(f.(i)));
       o := !o land (wo.(f.(i)) lxor gw1.(f.(i)))
     done;
     if t.kinds.(nd) = Gate.Nand then begin
       let tmp = !z in
       z := !o;
       o := tmp
     end
   | Gate.Or | Gate.Nor ->
     z := wz.(f.(0)) lxor gw0.(f.(0));
     o := wo.(f.(0)) lxor gw1.(f.(0));
     for i = 1 to Array.length f - 1 do
       z := !z land (wz.(f.(i)) lxor gw0.(f.(i)));
       o := !o lor (wo.(f.(i)) lxor gw1.(f.(i)))
     done;
     if t.kinds.(nd) = Gate.Nor then begin
       let tmp = !z in
       z := !o;
       o := tmp
     end
   | Gate.Xor | Gate.Xnor ->
     z := wz.(f.(0)) lxor gw0.(f.(0));
     o := wo.(f.(0)) lxor gw1.(f.(0));
     for i = 1 to Array.length f - 1 do
       let z2 = wz.(f.(i)) lxor gw0.(f.(i))
       and o2 = wo.(f.(i)) lxor gw1.(f.(i)) in
       let no = !o land z2 lor (!z land o2) in
       let nz = !z land z2 lor (!o land o2) in
       z := nz;
       o := no
     done;
     if t.kinds.(nd) = Gate.Xnor then begin
       let tmp = !z in
       z := !o;
       o := tmp
     end
   | Gate.Mux ->
     let zs = wz.(f.(0)) lxor gw0.(f.(0)) and os = wo.(f.(0)) lxor gw1.(f.(0)) in
     let za = wz.(f.(1)) lxor gw0.(f.(1)) and oa = wo.(f.(1)) lxor gw1.(f.(1)) in
     let zb = wz.(f.(2)) lxor gw0.(f.(2)) and ob = wo.(f.(2)) lxor gw1.(f.(2)) in
     o := zs land oa lor (os land ob) lor (oa land ob);
     z := zs land za lor (os land zb) lor (za land zb)
   | Gate.Input | Gate.Dff -> assert false);
  let m1 = sc.mo.(nd) and m0 = sc.mz.(nd) in
  if m1 lor m0 <> 0 then begin
    z := !z land lnot m1 lor m0;
    o := !o land lnot m0 lor m1
  end;
  let zd = !z lxor gw0.(nd) and od = !o lxor gw1.(nd) in
  if zd lor od <> 0 then begin
    sc.touched.(sc.ntouched) <- nd;
    sc.ntouched <- sc.ntouched + 1;
    wz.(nd) <- zd;
    wo.(nd) <- od;
    schedule_fanouts t sc nd
  end

(* One frame of one group.  [sc.gw0]/[sc.gw1] must hold the frame's good
   broadcast.  Detections write [t.det_time] (slots are disjoint across
   groups, so concurrent workers never collide) and count into
   [detections]. *)
let sim_frame_event t sc g time detections =
  sc.epoch <- sc.epoch + 1;
  sc.ntouched <- 0;
  sc.s_gframes <- sc.s_gframes + 1;
  sc.s_wakeups <- sc.s_wakeups + g.ndirty;
  let epoch = sc.epoch in
  (* Detected machines are dead weight: masking their bits out of every
     seed (their state snaps to the good value, their injections stop
     firing) makes a group's event cone shrink as its faults retire —
     the dense kernel only stops working once all 62 are gone. *)
  let act = g.active in
  let ninj = Array.length g.inj_nodes in
  for i = 0 to ninj - 1 do
    sc.mo.(g.inj_nodes.(i)) <- g.inj1.(i) land act;
    sc.mz.(g.inj_nodes.(i)) <- g.inj0.(i) land act
  done;
  (* Seed a flip-flop whose (injected) faulty words differ from the good
     state.  [dz]/[dv] are the stored state words, already restricted to
     active machines. *)
  let seed_dff k dz dv =
    let id = t.dffs.(k) in
    let z = ref dz and o = ref dv in
    let m1 = sc.mo.(id) and m0 = sc.mz.(id) in
    if m1 lor m0 <> 0 then begin
      z := !z land lnot m1 lor m0;
      o := !o land lnot m0 lor m1
    end;
    let zd = !z lxor sc.gw0.(id) and od = !o lxor sc.gw1.(id) in
    if zd lor od <> 0 then begin
      sc.touched.(sc.ntouched) <- id;
      sc.ntouched <- sc.ntouched + 1;
      sc.wz.(id) <- zd;
      sc.wo.(id) <- od;
      schedule_fanouts t sc id
    end
  in
  (* Only flip-flops on the dirty list can differ from the good machine;
     injection sites on clean flip-flops start from the implicit good
     words. *)
  for i = 0 to g.ndirty - 1 do
    let k = g.dirty.(i) in
    let id = t.dffs.(k) in
    seed_dff k
      (g.fzero.(k) land act lor (sc.gw0.(id) land lnot act))
      (g.fone.(k) land act lor (sc.gw1.(id) land lnot act))
  done;
  for i = 0 to Array.length g.inj_dff - 1 do
    let k = g.inj_dff.(i) in
    if Bytes.unsafe_get g.dmark k = '\000' then
      seed_dff k sc.gw0.(t.dffs.(k)) sc.gw1.(t.dffs.(k))
  done;
  (* Seed: injection sites (gates self-schedule; forced sources diverge
     directly). *)
  for i = 0 to ninj - 1 do
    let nd = g.inj_nodes.(i) in
    match t.kinds.(nd) with
    | Gate.Dff -> ()  (* handled with the state seeds above *)
    | Gate.Input ->
      let m1 = sc.mo.(nd) and m0 = sc.mz.(nd) in
      let z = sc.gw0.(nd) land lnot m1 lor m0 in
      let o = sc.gw1.(nd) land lnot m0 lor m1 in
      let zd = z lxor sc.gw0.(nd) and od = o lxor sc.gw1.(nd) in
      if zd lor od <> 0 then begin
        sc.touched.(sc.ntouched) <- nd;
        sc.ntouched <- sc.ntouched + 1;
        sc.wz.(nd) <- zd;
        sc.wo.(nd) <- od;
        schedule_fanouts t sc nd
      end
    | _ ->
      if sc.qstamp.(nd) <> epoch then begin
        sc.qstamp.(nd) <- epoch;
        let lvl = t.level.(nd) in
        sc.queue.(lvl).(sc.qlen.(lvl)) <- nd;
        sc.qlen.(lvl) <- sc.qlen.(lvl) + 1
      end
  done;
  (* Propagate, level-ordered; a gate only ever schedules strictly deeper
     gates. *)
  for lvl = 1 to t.depth do
    let q = sc.queue.(lvl) in
    let len = sc.qlen.(lvl) in
    sc.s_events <- sc.s_events + len;
    for j = 0 to len - 1 do
      eval_event t sc q.(j)
    done;
    sc.qlen.(lvl) <- 0
  done;
  (* Detection, branch-free: under [land] with the opposite good rail the
     difference word equals the absolute word, and untouched outputs are
     all-zero, so every output folds in without a test. *)
  let det = ref 0 in
  for p = 0 to Array.length t.outputs - 1 do
    let id = t.outputs.(p) in
    det :=
      !det lor (sc.wz.(id) land sc.gw1.(id)) lor (sc.wo.(id) land sc.gw0.(id))
  done;
  let det = !det land g.active in
  if det <> 0 then begin
    sc.s_kills <- sc.s_kills + popcount det;
    Array.iteri
      (fun slot fid ->
        if det land (1 lsl slot) <> 0 then begin
          t.det_time.(fid) <- time;
          incr detections
        end)
      g.ids;
    g.active <- g.active land lnot det
  end;
  (* Latch: a flip-flop captures a non-good word only when its fanin was
     touched this frame, so rebuilding the dirty set from the touched nodes
     covers every divergence; everything else implicitly latches the good
     value. *)
  for i = 0 to g.ndirty - 1 do
    Bytes.unsafe_set g.dmark g.dirty.(i) '\000'
  done;
  g.ndirty <- 0;
  for i = 0 to sc.ntouched - 1 do
    let nd = sc.touched.(i) in
    for j = t.dff_feed_off.(nd) to t.dff_feed_off.(nd + 1) - 1 do
      let k = t.dff_feed.(j) in
      g.fzero.(k) <- sc.wz.(nd) lxor sc.gw0.(nd);
      g.fone.(k) <- sc.wo.(nd) lxor sc.gw1.(nd);
      Bytes.unsafe_set g.dmark k '\001';
      g.dirty.(g.ndirty) <- k;
      g.ndirty <- g.ndirty + 1
    done
  done;
  (* Reset this frame's difference words so the next (group, frame) starts
     from an all-clean array. *)
  for i = 0 to sc.ntouched - 1 do
    let nd = sc.touched.(i) in
    sc.wz.(nd) <- 0;
    sc.wo.(nd) <- 0
  done;
  for i = 0 to ninj - 1 do
    sc.mo.(g.inj_nodes.(i)) <- 0;
    sc.mz.(g.inj_nodes.(i)) <- 0
  done

(* Repack a worker's surviving machines into as few words as possible.
   Machines are independent, so word packing is invisible to every
   per-fault outcome; it only shrinks the number of group-frames the
   simulator executes once fault dropping has hollowed the words out.
   [sc] must still hold the broadcast of the frame just simulated: a
   flip-flop that is dirty for one source group but clean for another
   reads the clean faults' values off the good next-state, i.e. the
   broadcast at the flip-flop's fanin. *)
let repack t sc groups =
  let nff = Array.length t.dffs in
  let acc = ref [] in
  Array.iter
    (fun g ->
      if g.active <> 0 then
        Array.iteri
          (fun slot fid ->
            if g.active land (1 lsl slot) <> 0 then
              acc := (fid, g, slot) :: !acc)
          g.ids)
    groups;
  let live = Array.of_list (List.rev !acc) in
  let ngroups = (Array.length live + width - 1) / width in
  Array.init ngroups (fun gi ->
      let lo = gi * width in
      let len = min width (Array.length live - lo) in
      let ids = Array.init len (fun i -> let fid, _, _ = live.(lo + i) in fid) in
      let fzero = Array.make nff 0 and fone = Array.make nff 0 in
      let dirty = Array.make nff 0 in
      let dmark = Bytes.make nff '\000' in
      let ndirty = ref 0 in
      for i = 0 to len - 1 do
        let _, og, _ = live.(lo + i) in
        for j = 0 to og.ndirty - 1 do
          let k = og.dirty.(j) in
          if Bytes.get dmark k = '\000' then begin
            Bytes.set dmark k '\001';
            dirty.(!ndirty) <- k;
            incr ndirty
          end
        done
      done;
      let amask = if len = width then full else (1 lsl len) - 1 in
      for j = 0 to !ndirty - 1 do
        let k = dirty.(j) in
        let d = t.dff_fanin.(k) in
        let z = ref (if sc.gw0.(d) <> 0 then amask else 0) in
        let o = ref (if sc.gw1.(d) <> 0 then amask else 0) in
        for i = 0 to len - 1 do
          let _, og, oslot = live.(lo + i) in
          if Bytes.get og.dmark k <> '\000' then begin
            let bit = 1 lsl i in
            z := !z land lnot bit;
            o := !o land lnot bit;
            if og.fzero.(k) lsr oslot land 1 <> 0 then z := !z lor bit;
            if og.fone.(k) lsr oslot land 1 <> 0 then o := !o lor bit
          end
        done;
        fzero.(k) <- !z;
        fone.(k) <- !o
      done;
      let inj_nodes, inj1, inj0, inj_dff =
        build_injections t.model t.dff_index ids
      in
      { ids; active = amask;
        fzero; fone; inj_nodes; inj1; inj0;
        dirty; ndirty = !ndirty; dmark; inj_dff })

(* Scheduling unit for workers and repacking alike: a fixed run of up to
   [repack_block] consecutive groups.  Blocks — not individual groups — are
   dealt round-robin across domains, and a block only ever repacks within
   itself, at a trigger computed from its own machine counts.  Because the
   partition into blocks depends only on the pre-advance group order (never
   on [jobs]), each block evolves identically no matter which worker owns
   it, which is what makes every telemetry counter (and the repack schedule
   itself) bit-identical across job counts. *)
let repack_block = 8

type block = {
  bid : int;  (* canonical position for the post-merge reassembly *)
  mutable bgroups : group array;
  mutable bretired : group list;  (* reverse retirement order *)
  mutable blive : int;  (* groups in [bgroups] with active machines *)
  mutable bmachines : int;  (* live machines across the block *)
}

(* Run [blocks] over the whole view with worker-owned state.  [gsim] is the
   worker's good machine (the session's own for the calling domain, a
   replayed copy for spawned ones).  [step_all] keeps stepping the good
   machine after every group retired — required for the session machine,
   whose final state is observable.  Blocks are mutated in place; the
   caller reads them back after the domain join.  Returns the worker's
   detection count and its staged telemetry counters. *)
let run_worker t sc gsim view t0 ~blocks ~step_all =
  let nframes = View.length view in
  let n = Array.length sc.gw0 in
  reset_sstats sc;
  Array.iter (fun b -> !block_hook b.bid) blocks;
  let detections = ref 0 in
  let live = ref (Array.fold_left (fun a b -> a + b.blive) 0 blocks) in
  (* A tripped budget freezes this worker's fault machines at the current
     frame (sound: no detection is ever invented, faults merely stay
     undetected).  Only the session domain probes the clock; spawned
     workers read the atomic tripped flag, keeping the budget's non-atomic
     probe state single-domain.  The session's good machine still steps
     through every frame so its final state stays consistent. *)
  let limited = Obs.Budget.limited t.budget in
  let stopped = ref false in
  let fi = ref 0 in
  while !fi < nframes && ((!live > 0 && not !stopped) || step_all) do
    Goodsim.step gsim (View.get view !fi);
    if step_all && t.observe then count_activity t gsim;
    if limited && not !stopped
       && (if step_all then Obs.Budget.expired t.budget
           else Obs.Budget.tripped t.budget <> None)
    then stopped := true;
    if !live > 0 && not !stopped then begin
      for nd = 0 to n - 1 do
        match Goodsim.value gsim nd with
        | Logic.Zero ->
          sc.gw0.(nd) <- full;
          sc.gw1.(nd) <- 0
        | Logic.One ->
          sc.gw0.(nd) <- 0;
          sc.gw1.(nd) <- full
        | Logic.X ->
          sc.gw0.(nd) <- 0;
          sc.gw1.(nd) <- 0
      done;
      Array.iter
        (fun b ->
          if b.blive > 0 then begin
            let before = !detections in
            Array.iter
              (fun g ->
                if g.active <> 0 then begin
                  sim_frame_event t sc g (t0 + !fi) detections;
                  if g.active = 0 then begin
                    b.blive <- b.blive - 1;
                    decr live
                  end
                end)
              b.bgroups;
            b.bmachines <- b.bmachines - (!detections - before);
            (* Fault dropping hollows the words out; once half the block's
               live groups could be saved, repack its survivors into fresh
               full words. *)
            let needed = (b.bmachines + width - 1) / width in
            if b.blive > 1 && 2 * needed <= b.blive && !fi < nframes - 1
            then begin
              Array.iter
                (fun g -> if g.active = 0 then b.bretired <- g :: b.bretired)
                b.bgroups;
              let packed = repack t sc b.bgroups in
              sc.s_repacks <- sc.s_repacks + 1;
              live := !live - b.blive + Array.length packed;
              b.blive <- Array.length packed;
              b.bgroups <- packed
            end
          end)
        blocks;
    end;
    incr fi
  done;
  !detections, read_sstats sc

let advance_event t view =
  let nframes = View.length view in
  let t0 = t.time in
  let pre_retired =
    Array.of_list (List.filter (fun g -> g.active = 0) (Array.to_list t.groups))
  in
  let active =
    Array.of_list
      (List.filter (fun g -> g.active <> 0) (Array.to_list t.groups))
  in
  let nblocks = (Array.length active + repack_block - 1) / repack_block in
  let blocks =
    Array.init nblocks (fun bi ->
        let lo = bi * repack_block in
        let len = min repack_block (Array.length active - lo) in
        let bgroups = Array.sub active lo len in
        { bid = bi;
          bgroups;
          bretired = [];
          blive = len;
          bmachines =
            Array.fold_left (fun a g -> a + popcount g.active) 0 bgroups })
  in
  let jobs = min t.jobs nblocks in
  let worker_stats =
    if jobs <= 1 then begin
      let d, ws =
        run_worker t t.scratch t.good view t0 ~blocks ~step_all:true
      in
      t.detected <- t.detected + d;
      [ ws ]
    end
    else begin
      (* Blocks are independent given the good trace: deal them round-robin
         across domains.  Each spawned worker replays the good machine from
         the pre-advance state with its own scratch; detection times and
         group states land in disjoint slots, so the merged outcome is
         identical to the sequential schedule regardless of
         interleaving. *)
      let init_state = Goodsim.state t.good in
      let share w =
        let acc = ref [] in
        Array.iter (fun b -> if b.bid mod jobs = w then acc := b :: !acc) blocks;
        Array.of_list (List.rev !acc)
      in
      (* An exception in any worker (including the session domain's own
         share) must not leave sibling domains unjoined: capture each
         worker's outcome, join everything, then re-raise the first error —
         session domain first, then spawn order — with its backtrace. *)
      let spawned =
        Array.init (jobs - 1) (fun k ->
            let blocks = share (k + 1) in
            Domain.spawn (fun () ->
                match
                  let sc = make_scratch t.model in
                  let gsim =
                    Goodsim.create ~levelize:t.model.Model.levelize
                      t.model.Model.circuit
                  in
                  Goodsim.set_state gsim init_state;
                  run_worker t sc gsim view t0 ~blocks ~step_all:false
                with
                | r -> Ok r
                | exception e -> Error (e, Printexc.get_raw_backtrace ())))
      in
      let main_result =
        match
          run_worker t t.scratch t.good view t0 ~blocks:(share 0)
            ~step_all:true
        with
        | r -> Ok r
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      let results = Array.map Domain.join spawned in
      let reraise = function
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt
        | Ok _ -> ()
      in
      reraise main_result;
      Array.iter reraise results;
      let unwrap = function Ok r -> r | Error _ -> assert false in
      let d0, ws0 = unwrap main_result in
      let results = Array.map unwrap results in
      let d = Array.fold_left (fun acc (dm, _) -> acc + dm) d0 results in
      t.detected <- t.detected + d;
      ws0 :: Array.to_list (Array.map snd results)
    end
  in
  List.iter (flush_sstats t.stats) worker_stats;
  (* Reassemble in canonical block order — the merged group array (hence
     the next advance's block partition) is independent of which worker
     owned which block. *)
  t.groups <-
    Array.concat
      (Array.to_list
         (Array.map
            (fun b ->
              Array.append b.bgroups (Array.of_list (List.rev b.bretired)))
            blocks)
      @ [ pre_retired ]);
  (* Repacking may have rearranged faults across words, and faults that
     were detected out of a still-live group are no longer packed at all:
     refresh the fault -> (group, slot) maps, leaving the dropped (all
     detected) faults on the -2 sentinel. *)
  Array.iter
    (fun fid ->
      t.group_of.(fid) <- -2;
      t.slot_of.(fid) <- -1)
    t.fault_ids;
  Array.iteri
    (fun gi g ->
      Array.iteri
        (fun slot fid ->
          t.group_of.(fid) <- gi;
          t.slot_of.(fid) <- slot)
        g.ids)
    t.groups;
  t.time <- t0 + nframes

let advance_view t view =
  if View.length view > 0 then begin
    t.stats.frames <- t.stats.frames + View.length view;
    match t.engine with
    | Dense -> advance_dense t view
    | Event -> advance_event t view
  end

let advance t seq = advance_view t (View.of_seq seq)

(* -------------------------------------------------------------- queries *)

let check_target t fid =
  if fid < 0 || fid >= Array.length t.group_of || t.group_of.(fid) = -1 then
    invalid_arg "Faultsim: fault not targeted by this session"

let detection_time t fid =
  check_target t fid;
  if t.det_time.(fid) >= 0 then Some t.det_time.(fid) else None

let detected_count t = t.detected

let stats t = t.stats

let frame_toggles t = t.frame_toggles

let undetected t =
  let acc = ref [] in
  Array.iter
    (fun fid ->
      if t.det_time.(fid) < 0 then begin
        let g = t.groups.(t.group_of.(fid)) in
        if g.active land (1 lsl t.slot_of.(fid)) <> 0 then acc := fid :: !acc
      end)
    t.fault_ids;
  Array.of_list (List.rev !acc)

let good_state t = Goodsim.state t.good

(* A flip-flop off the dirty list implicitly holds the good machine's state
   (dense sessions keep every slot marked, so the guards below are no-ops
   there). *)

let faulty_state t fid =
  check_target t fid;
  let good = Goodsim.state t.good in
  if t.det_time.(fid) >= 0 then good
    (* detected machines stop being updated; their state is the good one *)
  else begin
    let g = t.groups.(t.group_of.(fid)) in
    let bit = 1 lsl t.slot_of.(fid) in
    Array.mapi
      (fun k _ ->
        if Bytes.get g.dmark k = '\000' then good.(k)
        else if g.fone.(k) land bit <> 0 then Logic.One
        else if g.fzero.(k) land bit <> 0 then Logic.Zero
        else Logic.X)
      t.dffs
  end

let ff_effects t fid =
  check_target t fid;
  if t.det_time.(fid) >= 0 then []
  else begin
  let g = t.groups.(t.group_of.(fid)) in
  let bit = 1 lsl t.slot_of.(fid) in
  let good = Goodsim.state t.good in
  let acc = ref [] in
  for k = Array.length t.dffs - 1 downto 0 do
    let effect =
      Bytes.get g.dmark k <> '\000'
      &&
      match good.(k) with
      | Logic.One -> g.fzero.(k) land bit <> 0
      | Logic.Zero -> g.fone.(k) land bit <> 0
      | Logic.X -> false
    in
    if effect then acc := k :: !acc
  done;
  !acc
  end

let effect_bits t =
  let good = Goodsim.state t.good in
  let total = ref 0 in
  Array.iter
    (fun g ->
      if g.active <> 0 then
        Array.iteri
          (fun k gv ->
            if Bytes.get g.dmark k <> '\000' then
              match gv with
              | Logic.One ->
                total := !total + popcount (g.fzero.(k) land g.active)
              | Logic.Zero ->
                total := !total + popcount (g.fone.(k) land g.active)
              | Logic.X -> ())
          good)
    t.groups;
  !total

(* ------------------------------------------------------------ snapshots *)

(* A snapshot keeps the session's faulty states in their packed group
   representation — two state words plus a dirty byte per flip-flop per
   group of up to 62 faults — so capturing costs ~1/62 of materializing
   per-fault state arrays.  Individual states are unpacked on demand when
   [of_snapshot]'s [create] reads them, i.e. only for the faults a probe
   session actually targets. *)

type snap_group = {
  sg_fzero : int array;
  sg_fone : int array;
  sg_dmark : Bytes.t;
}

type snapshot = {
  snap_model : Model.t;
  snap_good : Logic.t array;
  snap_captured : Bytes.t;  (* fault id -> '\001' when captured *)
  snap_group_of : int array;
  snap_slot_of : int array;
  snap_det : int array;  (* det_time at capture *)
  snap_groups : snap_group array;
  snap_nff : int;
}

(* A snapshot arena recycles one capture's buffers into the next: the
   per-fault index/det arrays, the good-state array, and the per-group
   packed words are all overwritten in place when their sizes still fit
   (repacking shrinks the group count; the pool keeps the high-water
   set).  Taking a new snapshot from an arena therefore invalidates the
   previous snapshot taken from it — callers must finish every probe of
   a round before capturing the next (the speculative [Spec.map] join is
   exactly that barrier). *)
type snapshot_arena = {
  mutable ar_captured : Bytes.t;
  mutable ar_group_of : int array;
  mutable ar_slot_of : int array;
  mutable ar_det : int array;
  mutable ar_good : Logic.t array;
  mutable ar_pool : snap_group array;  (* reusable group buffers *)
  mutable ar_hits : int;  (* captures that reused at least one buffer *)
}

let arena () =
  { ar_captured = Bytes.empty;
    ar_group_of = [||];
    ar_slot_of = [||];
    ar_det = [||];
    ar_good = [||];
    ar_pool = [||];
    ar_hits = 0 }

let arena_hits a = a.ar_hits

let snapshot ?arena:ar ?fault_ids t =
  let ids =
    match fault_ids with
    | Some a -> a
    | None -> t.fault_ids
  in
  let fault_total = Array.length t.group_of in
  let nff = Array.length t.dffs in
  let reused = ref false in
  let captured =
    match ar with
    | Some a when Bytes.length a.ar_captured = fault_total ->
      reused := true;
      Bytes.fill a.ar_captured 0 fault_total '\000';
      a.ar_captured
    | _ -> Bytes.make fault_total '\000'
  in
  Array.iter
    (fun fid ->
      check_target t fid;
      Bytes.set captured fid '\001')
    ids;
  let copy_into get src =
    match ar with
    | Some a when Array.length (get a) = Array.length src ->
      reused := true;
      let dst = get a in
      Array.blit src 0 dst 0 (Array.length src);
      dst
    | _ -> Array.copy src
  in
  let good =
    match ar with
    | Some a when Array.length a.ar_good = nff ->
      reused := true;
      Goodsim.state_into t.good a.ar_good;
      a.ar_good
    | _ -> good_state t
  in
  let ngroups = Array.length t.groups in
  let groups =
    Array.mapi
      (fun gi g ->
        let buf =
          match ar with
          | Some a
            when gi < Array.length a.ar_pool
                 && Array.length a.ar_pool.(gi).sg_fzero = nff ->
            reused := true;
            a.ar_pool.(gi)
          | _ ->
            { sg_fzero = Array.make nff 0;
              sg_fone = Array.make nff 0;
              sg_dmark = Bytes.make nff '\000' }
        in
        Array.blit g.fzero 0 buf.sg_fzero 0 nff;
        Array.blit g.fone 0 buf.sg_fone 0 nff;
        Bytes.blit g.dmark 0 buf.sg_dmark 0 nff;
        buf)
      t.groups
  in
  (match ar with
   | Some a ->
     a.ar_captured <- captured;
     a.ar_good <- good;
     (* Keep the high-water buffer set so a shrinking group count still
        reuses every live buffer next round. *)
     if ngroups > 0 then
       if Array.length a.ar_pool < ngroups then begin
         let pool = Array.make ngroups groups.(0) in
         Array.blit groups 0 pool 0 ngroups;
         a.ar_pool <- pool
       end
       else Array.blit groups 0 a.ar_pool 0 ngroups;
     if !reused then a.ar_hits <- a.ar_hits + 1
   | None -> ());
  let snap =
    {
      snap_model = t.model;
      snap_good = good;
      snap_captured = captured;
      snap_group_of = copy_into (fun a -> a.ar_group_of) t.group_of;
      snap_slot_of = copy_into (fun a -> a.ar_slot_of) t.slot_of;
      snap_det = copy_into (fun a -> a.ar_det) t.det_time;
      snap_groups = groups;
      snap_nff = nff;
    }
  in
  (match ar with
   | Some a ->
     a.ar_group_of <- snap.snap_group_of;
     a.ar_slot_of <- snap.snap_slot_of;
     a.ar_det <- snap.snap_det
   | None -> ());
  snap

(* Mirror of [faulty_state], reading the captured words. *)
let snapshot_state snap fid =
  if
    fid < 0
    || fid >= Bytes.length snap.snap_captured
    || Bytes.get snap.snap_captured fid = '\000'
  then invalid_arg "Faultsim.of_snapshot: fault not captured";
  if snap.snap_det.(fid) >= 0 then snap.snap_good
  else begin
    let g = snap.snap_groups.(snap.snap_group_of.(fid)) in
    let bit = 1 lsl snap.snap_slot_of.(fid) in
    Array.init snap.snap_nff (fun k ->
        if Bytes.get g.sg_dmark k = '\000' then snap.snap_good.(k)
        else if g.sg_fone.(k) land bit <> 0 then Logic.One
        else if g.sg_fzero.(k) land bit <> 0 then Logic.Zero
        else Logic.X)
  end

let of_snapshot ?engine ?jobs ?budget snap ~fault_ids =
  create ?engine ?jobs ?budget ~good_state:snap.snap_good
    ~faulty_states:(snapshot_state snap) snap.snap_model ~fault_ids

(* --------------------------------------------------------- conveniences *)

let detection_times_view ?engine ?jobs ?budget model ~fault_ids view =
  let s = create ?engine ?jobs ?budget model ~fault_ids in
  advance_view s view;
  Array.map (fun fid -> s.det_time.(fid)) fault_ids

let detection_times ?engine ?jobs ?budget model ~fault_ids seq =
  detection_times_view ?engine ?jobs ?budget model ~fault_ids (View.of_seq seq)

let detects_single_view ?engine ?budget model ~fault ?start view =
  let s =
    match start with
    | None -> create ?engine ?budget model ~fault_ids:[| fault |]
    | Some (good_state, faulty) ->
      create ?engine ?budget ~good_state ~faulty_states:(fun _ -> faulty) model
        ~fault_ids:[| fault |]
  in
  advance_view s view;
  detection_time s fault

let detects_single ?engine ?budget model ~fault ?start seq =
  detects_single_view ?engine ?budget model ~fault ?start (View.of_seq seq)
