(** Fault-free (good machine) sequential simulation.

    Levelized three-valued simulation of one machine.  The simulator owns a
    running flip-flop state (initially all [X], matching an unreset
    power-up); each {!step} applies one input vector, evaluates the
    combinational logic, exposes the frame's primary-output and node values,
    and latches the next state. *)

type t

(** [create ?levelize c] builds a simulator.  Passing a precomputed
    [levelize] (it must belong to [c]) skips the levelization — callers that
    spin up many simulators per circuit (fault-simulation workers, probe
    sessions) reuse the model's. *)
val create : ?levelize:Netlist.Levelize.t -> Netlist.Circuit.t -> t

(** Back to the all-[X] power-up state. *)
val reset : t -> unit

(** [set_state t s] forces the flip-flop state ([s] indexed like
    [Circuit.dffs]).  @raise Invalid_argument on a length mismatch. *)
val set_state : t -> Netlist.Logic.t array -> unit

(** Copy of the current flip-flop state. *)
val state : t -> Netlist.Logic.t array

(** [state_into t dst] copies the current flip-flop state into [dst]
    without allocating — the snapshot arena's reader.
    @raise Invalid_argument on a length mismatch. *)
val state_into : t -> Netlist.Logic.t array -> unit

(** [step t vec] simulates one clock cycle.  @raise Invalid_argument when
    [vec] does not cover every primary input. *)
val step : t -> Netlist.Logic.t array -> unit

(** Primary-output values of the last stepped frame (fresh array). *)
val po_values : t -> Netlist.Logic.t array

(** Value of an arbitrary node in the last stepped frame. *)
val value : t -> int -> Netlist.Logic.t

(** [run t seq] steps through [seq] and returns the per-frame primary output
    matrix.  The state carries over from the current state; call {!reset}
    first for a fresh run. *)
val run : t -> Vectors.t -> Netlist.Logic.t array array

(** [eval_node c values id] evaluates combinational gate [id] over the node
    values in [values] — shared with the ATPG implication engine.
    @raise Invalid_argument on [Input] or [Dff] nodes. *)
val eval_node : Netlist.Circuit.t -> Netlist.Logic.t array -> int -> Netlist.Logic.t
