module Circuit = Netlist.Circuit
module Logic = Netlist.Logic

(* VCD identifier codes: printable ASCII 33..126, little-endian digits. *)
let code_of_index i =
  let base = 94 in
  let buf = Buffer.create 4 in
  let rec go i =
    Buffer.add_char buf (Char.chr (33 + (i mod base)));
    if i >= base then go ((i / base) - 1)
  in
  go i;
  Buffer.contents buf

let vcd_char v =
  match v with
  | Logic.Zero -> '0'
  | Logic.One -> '1'
  | Logic.X -> 'x'

let render ?scope circuit seq nodes =
  let scope =
    match scope with
    | Some s -> s
    | None -> Circuit.name circuit
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "$date scanatpg dump $end\n";
  Buffer.add_string buf "$version scanatpg $end\n";
  Buffer.add_string buf "$timescale 1ns $end\n";
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" scope);
  let codes = List.mapi (fun i id -> id, code_of_index i) nodes in
  List.iter
    (fun (id, code) ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s $end\n" code
           (Circuit.node circuit id).Circuit.name))
    codes;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let sim = Goodsim.create circuit in
  let last = Hashtbl.create (List.length nodes) in
  Array.iteri
    (fun t vec ->
      Goodsim.step sim vec;
      let header = ref false in
      List.iter
        (fun (id, code) ->
          let v = Goodsim.value sim id in
          let changed =
            match Hashtbl.find_opt last id with
            | Some prev -> not (Logic.equal prev v)
            | None -> true
          in
          if changed then begin
            if not !header then begin
              Buffer.add_string buf (Printf.sprintf "#%d\n" t);
              header := true
            end;
            Hashtbl.replace last id v;
            Buffer.add_string buf (Printf.sprintf "%c%s\n" (vcd_char v) code)
          end)
        codes)
    seq;
  Buffer.add_string buf (Printf.sprintf "#%d\n" (Array.length seq));
  Buffer.contents buf

let dump_nodes ?scope circuit seq ~nodes =
  List.iter (fun id -> ignore (Circuit.node circuit id)) nodes;
  render ?scope circuit seq nodes

let dump ?scope circuit seq =
  let nodes = List.init (Circuit.node_count circuit) Fun.id in
  render ?scope circuit seq nodes

let write_file path ?scope circuit seq =
  Obs.Fileio.write_string path (dump ?scope circuit seq)
