module Logic = Netlist.Logic

type vector = Logic.t array
type t = vector array

let parse s = Array.init (String.length s) (fun i -> Logic.of_char s.[i])
let to_string v = String.init (Array.length v) (fun i -> Logic.to_char v.(i))

let random rng ~width =
  Array.init width (fun _ -> Logic.of_bool (Prng.Rng.bool rng))

let random_seq rng ~width ~length = Array.init length (fun _ -> random rng ~width)

let specified_with rng v =
  Array.map
    (function
      | Logic.X -> Logic.of_bool (Prng.Rng.bool rng)
      | b -> b)
    v

let fill_x rng seq = Array.map (specified_with rng) seq
let concat a b = Array.append a b
let copy seq = Array.map Array.copy seq

let count seq ~position ~value =
  Array.fold_left
    (fun acc v -> if Logic.equal v.(position) value then acc + 1 else acc)
    0 seq

let pp fmt seq =
  Array.iteri (fun i v -> Format.fprintf fmt "%4d  %s@." i (to_string v)) seq

module View = struct
  type seq = t

  type t =
    | Whole of seq
    | Slice of { base : seq; off : int; len : int }
    | Mask of { base : seq; idx : int array }

  let of_seq s = Whole s

  let length = function
    | Whole s -> Array.length s
    | Slice { len; _ } -> len
    | Mask { idx; _ } -> Array.length idx

  let get v i =
    match v with
    | Whole s -> s.(i)
    | Slice { base; off; len } ->
      if i < 0 || i >= len then invalid_arg "Vectors.View.get";
      base.(off + i)
    | Mask { base; idx } -> base.(idx.(i))

  let slice v off len =
    if off < 0 || len < 0 || off + len > length v then
      invalid_arg "Vectors.View.slice";
    match v with
    | Whole base -> Slice { base; off; len }
    | Slice s -> Slice { base = s.base; off = s.off + off; len }
    | Mask { base; idx } -> Mask { base; idx = Array.sub idx off len }

  let masked ?limit base keep =
    if Array.length keep <> Array.length base then
      invalid_arg "Vectors.View.masked: mask length mismatch";
    let hi =
      match limit with
      | Some l -> min l (Array.length base - 1)
      | None -> Array.length base - 1
    in
    let count = ref 0 in
    for i = 0 to hi do
      if keep.(i) then incr count
    done;
    let idx = Array.make !count 0 in
    let j = ref 0 in
    for i = 0 to hi do
      if keep.(i) then begin
        idx.(!j) <- i;
        incr j
      end
    done;
    Mask { base; idx }

  let to_seq v =
    match v with
    | Whole s -> s
    | _ -> Array.init (length v) (get v)
end
