(** Vector-restoration static compaction ([23], ICCD-97).

    Starting from an empty selection, faults are processed in order of
    decreasing first-detection time; whenever the restored subsequence does
    not yet detect the current fault, vectors are restored one by one,
    walking backwards from the fault's detection time, until it does.
    Vectors never restored are dropped.  Because the procedure treats the
    sequence as an ordinary non-scan test sequence, it freely drops
    [scan_sel = 1] cycles — turning complete scan operations into limited
    ones. *)

(** [run model seq targets] returns the restored subsequence (original
    vector order; a subset of [seq]'s vectors).  The result is guaranteed to
    detect every target. *)
val run :
  Faultmodel.Model.t -> Logicsim.Vectors.t -> Target.t -> Logicsim.Vectors.t
