lib/compaction/target.mli: Faultmodel Logicsim
