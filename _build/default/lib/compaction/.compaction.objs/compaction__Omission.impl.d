lib/compaction/omission.ml: Array Faultmodel List Logicsim Option Target
