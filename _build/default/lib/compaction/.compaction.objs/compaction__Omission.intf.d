lib/compaction/omission.mli: Faultmodel Logicsim Target
