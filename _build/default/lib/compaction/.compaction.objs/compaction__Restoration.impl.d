lib/compaction/restoration.ml: Array Faultmodel Fun List Logicsim Target
