lib/compaction/target.ml: Array Faultmodel List Logicsim
