lib/compaction/restoration.mli: Faultmodel Logicsim Target
