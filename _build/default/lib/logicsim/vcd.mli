(** VCD (Value Change Dump, IEEE 1364) export of a simulation run.

    [dump circuit seq] simulates the fault-free machine from power-up and
    records every node's waveform, one timestep per vector.  The output
    loads in any waveform viewer (GTKWave etc.), which is the quickest way
    to understand why a generated sequence detects — or misses — a fault.

    Three-valued signals map directly: [X] is VCD's [x]. *)

(** [dump ?scope circuit seq] renders the full VCD text.  [scope] names the
    enclosing module scope (default: the circuit name). *)
val dump : ?scope:string -> Netlist.Circuit.t -> Vectors.t -> string

(** [dump_nodes ?scope circuit seq ~nodes] restricts the dump to chosen
    node ids (plus time).  @raise Invalid_argument on an unknown id. *)
val dump_nodes :
  ?scope:string -> Netlist.Circuit.t -> Vectors.t -> nodes:int list -> string

val write_file : string -> ?scope:string -> Netlist.Circuit.t -> Vectors.t -> unit
