lib/logicsim/goodsim.mli: Netlist Vectors
