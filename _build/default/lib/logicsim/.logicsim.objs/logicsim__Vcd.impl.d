lib/logicsim/vcd.ml: Array Buffer Char Fun Goodsim Hashtbl List Netlist Printf
