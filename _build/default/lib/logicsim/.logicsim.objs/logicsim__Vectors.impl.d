lib/logicsim/vectors.ml: Array Format Netlist Prng String
