lib/logicsim/vcd.mli: Netlist Vectors
