lib/logicsim/faultsim.mli: Faultmodel Netlist Vectors
