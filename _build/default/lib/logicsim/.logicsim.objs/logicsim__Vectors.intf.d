lib/logicsim/vectors.mli: Format Netlist Prng
