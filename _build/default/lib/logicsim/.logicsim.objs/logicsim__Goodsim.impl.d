lib/logicsim/goodsim.ml: Array Netlist
