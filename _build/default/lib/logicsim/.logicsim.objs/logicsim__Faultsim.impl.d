lib/logicsim/faultsim.ml: Array Faultmodel Goodsim Hashtbl List Netlist
