module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Logic = Netlist.Logic
module Levelize = Netlist.Levelize
module Model = Faultmodel.Model

let width = 62
let full = (1 lsl width) - 1

type group = {
  ids : int array;  (* slot -> fault id *)
  mutable active : int;  (* bitmask of undetected machines *)
  fzero : int array;  (* per dff index: state words *)
  fone : int array;
  inj_nodes : int array;  (* nodes carrying an injection in this group *)
  inj1 : int array;  (* stuck-at-1 machine masks, parallel to inj_nodes *)
  inj0 : int array;
}

type t = {
  model : Model.t;
  order : int array;
  inputs : int array;
  outputs : int array;
  dffs : int array;
  dff_fanin : int array;
  kinds : Gate.kind array;
  fanins : int array array;
  good : Goodsim.t;
  groups : group array;
  group_of : int array;  (* fault id -> group index, -1 when untargeted *)
  slot_of : int array;  (* fault id -> slot in its group *)
  det_time : int array;  (* fault id -> frame, -1 undetected *)
  mutable detected : int;
  mutable time : int;
  (* scratch, node-indexed *)
  wzero : int array;
  wone : int array;
  mzero : int array;  (* per-node injection masks while a group runs *)
  mone : int array;
}

let create ?good_state ?faulty_states model ~fault_ids =
  let c = model.Model.circuit in
  let n = Circuit.node_count c in
  let dffs = Circuit.dffs c in
  let nff = Array.length dffs in
  let fault_total = Model.fault_count model in
  let good = Goodsim.create c in
  let good_state =
    match good_state with
    | Some s -> s
    | None -> Array.make nff Logic.X
  in
  Goodsim.set_state good good_state;
  let faulty_state_of =
    match faulty_states with
    | Some f -> f
    | None -> fun _ -> good_state
  in
  let ngroups = (Array.length fault_ids + width - 1) / width in
  let group_of = Array.make fault_total (-1) in
  let slot_of = Array.make fault_total (-1) in
  let groups =
    Array.init ngroups (fun gi ->
        let lo = gi * width in
        let len = min width (Array.length fault_ids - lo) in
        let ids = Array.sub fault_ids lo len in
        Array.iteri
          (fun slot fid ->
            if group_of.(fid) >= 0 then
              invalid_arg "Faultsim.create: duplicate fault id";
            group_of.(fid) <- gi;
            slot_of.(fid) <- slot)
          ids;
        let fzero = Array.make nff 0 and fone = Array.make nff 0 in
        Array.iteri
          (fun slot fid ->
            let st = faulty_state_of fid in
            let bit = 1 lsl slot in
            Array.iteri
              (fun k v ->
                match v with
                | Logic.Zero -> fzero.(k) <- fzero.(k) lor bit
                | Logic.One -> fone.(k) <- fone.(k) lor bit
                | Logic.X -> ())
              st)
          ids;
        let inj = Hashtbl.create 16 in
        Array.iteri
          (fun slot fid ->
            let node = model.Model.fault_node.(fid) in
            let m1, m0 =
              match Hashtbl.find_opt inj node with
              | Some p -> p
              | None -> 0, 0
            in
            let bit = 1 lsl slot in
            let p =
              if model.Model.fault_stuck.(fid) then m1 lor bit, m0
              else m1, m0 lor bit
            in
            Hashtbl.replace inj node p)
          ids;
        let inj_nodes = Array.of_seq (Hashtbl.to_seq_keys inj) in
        Array.sort compare inj_nodes;
        let inj1 = Array.map (fun nd -> fst (Hashtbl.find inj nd)) inj_nodes in
        let inj0 = Array.map (fun nd -> snd (Hashtbl.find inj nd)) inj_nodes in
        { ids; active = (if len = width then full else (1 lsl len) - 1);
          fzero; fone; inj_nodes; inj1; inj0 })
  in
  {
    model;
    order = model.Model.levelize.Levelize.order;
    inputs = Circuit.inputs c;
    outputs = Circuit.outputs c;
    dffs;
    dff_fanin = Array.map (fun ff -> (Circuit.node c ff).Circuit.fanins.(0)) dffs;
    kinds = Array.map (fun nd -> nd.Circuit.kind) (Circuit.nodes c);
    fanins = Array.map (fun nd -> nd.Circuit.fanins) (Circuit.nodes c);
    good;
    groups;
    group_of;
    slot_of;
    det_time = Array.make fault_total (-1);
    detected = 0;
    time = 0;
    wzero = Array.make n 0;
    wone = Array.make n 0;
    mzero = Array.make n 0;
    mone = Array.make n 0;
  }

let time t = t.time

(* Force the injected machines' bits at node [nd]. *)
let[@inline] apply_inj t nd =
  let m1 = t.mone.(nd) and m0 = t.mzero.(nd) in
  if m1 lor m0 <> 0 then begin
    t.wzero.(nd) <- t.wzero.(nd) land lnot m1 lor m0;
    t.wone.(nd) <- t.wone.(nd) land lnot m0 lor m1
  end

let eval_gate t nd =
  let f = t.fanins.(nd) in
  let wz = t.wzero and wo = t.wone in
  match t.kinds.(nd) with
  | Gate.Buf ->
    wz.(nd) <- wz.(f.(0));
    wo.(nd) <- wo.(f.(0))
  | Gate.Not ->
    wz.(nd) <- wo.(f.(0));
    wo.(nd) <- wz.(f.(0))
  | Gate.And | Gate.Nand ->
    let z = ref wz.(f.(0)) and o = ref wo.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      z := !z lor wz.(f.(i));
      o := !o land wo.(f.(i))
    done;
    if t.kinds.(nd) = Gate.Nand then begin
      wz.(nd) <- !o;
      wo.(nd) <- !z
    end
    else begin
      wz.(nd) <- !z;
      wo.(nd) <- !o
    end
  | Gate.Or | Gate.Nor ->
    let z = ref wz.(f.(0)) and o = ref wo.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      z := !z land wz.(f.(i));
      o := !o lor wo.(f.(i))
    done;
    if t.kinds.(nd) = Gate.Nor then begin
      wz.(nd) <- !o;
      wo.(nd) <- !z
    end
    else begin
      wz.(nd) <- !z;
      wo.(nd) <- !o
    end
  | Gate.Xor | Gate.Xnor ->
    let z = ref wz.(f.(0)) and o = ref wo.(f.(0)) in
    for i = 1 to Array.length f - 1 do
      let z2 = wz.(f.(i)) and o2 = wo.(f.(i)) in
      let no = !o land z2 lor (!z land o2) in
      let nz = !z land z2 lor (!o land o2) in
      z := nz;
      o := no
    done;
    if t.kinds.(nd) = Gate.Xnor then begin
      wz.(nd) <- !o;
      wo.(nd) <- !z
    end
    else begin
      wz.(nd) <- !z;
      wo.(nd) <- !o
    end
  | Gate.Mux ->
    let zs = wz.(f.(0)) and os = wo.(f.(0)) in
    let za = wz.(f.(1)) and oa = wo.(f.(1)) in
    let zb = wz.(f.(2)) and ob = wo.(f.(2)) in
    wo.(nd) <- zs land oa lor (os land ob) lor (oa land ob);
    wz.(nd) <- zs land za lor (os land zb) lor (za land zb)
  | Gate.Input | Gate.Dff -> ()

(* Simulate one frame for one group; [good_po] holds the frame's fault-free
   output values.  Returns nothing; detections update session state. *)
let sim_frame t g vec good_po =
  (* Sources. *)
  Array.iteri
    (fun i id ->
      (match vec.(i) with
       | Logic.One ->
         t.wone.(id) <- full;
         t.wzero.(id) <- 0
       | Logic.Zero ->
         t.wone.(id) <- 0;
         t.wzero.(id) <- full
       | Logic.X ->
         t.wone.(id) <- 0;
         t.wzero.(id) <- 0);
      apply_inj t id)
    t.inputs;
  Array.iteri
    (fun k id ->
      t.wzero.(id) <- g.fzero.(k);
      t.wone.(id) <- g.fone.(k);
      apply_inj t id)
    t.dffs;
  (* Combinational evaluation. *)
  Array.iter
    (fun nd ->
      eval_gate t nd;
      apply_inj t nd)
    t.order;
  (* Detection. *)
  let det = ref 0 in
  Array.iteri
    (fun p id ->
      match good_po.(p) with
      | Logic.One -> det := !det lor t.wzero.(id)
      | Logic.Zero -> det := !det lor t.wone.(id)
      | Logic.X -> ())
    t.outputs;
  let det = !det land g.active in
  if det <> 0 then begin
    Array.iteri
      (fun slot fid ->
        if det land (1 lsl slot) <> 0 then begin
          t.det_time.(fid) <- t.time;
          t.detected <- t.detected + 1
        end)
      g.ids;
    g.active <- g.active land lnot det
  end;
  (* Latch. *)
  Array.iteri
    (fun k d ->
      g.fzero.(k) <- t.wzero.(d);
      g.fone.(k) <- t.wone.(d))
    t.dff_fanin

let advance t seq =
  let nframes = Array.length seq in
  if nframes > 0 then begin
    let good_pos =
      Array.map
        (fun vec ->
          Goodsim.step t.good vec;
          Goodsim.po_values t.good)
        seq
    in
    let t0 = t.time in
    Array.iter
      (fun g ->
        if g.active <> 0 then begin
          Array.iteri
            (fun i nd ->
              t.mone.(nd) <- g.inj1.(i);
              t.mzero.(nd) <- g.inj0.(i))
            g.inj_nodes;
          t.time <- t0;
          let fi = ref 0 in
          while g.active <> 0 && !fi < nframes do
            sim_frame t g seq.(!fi) good_pos.(!fi);
            t.time <- t.time + 1;
            incr fi
          done;
          Array.iter
            (fun nd ->
              t.mone.(nd) <- 0;
              t.mzero.(nd) <- 0)
            g.inj_nodes
        end)
      t.groups;
    t.time <- t0 + nframes
  end

let check_target t fid =
  if fid < 0 || fid >= Array.length t.group_of || t.group_of.(fid) < 0 then
    invalid_arg "Faultsim: fault not targeted by this session"

let detection_time t fid =
  check_target t fid;
  if t.det_time.(fid) >= 0 then Some t.det_time.(fid) else None

let detected_count t = t.detected

let undetected t =
  let acc = ref [] in
  Array.iter
    (fun g ->
      Array.iteri
        (fun slot fid -> if g.active land (1 lsl slot) <> 0 then acc := fid :: !acc)
        g.ids)
    t.groups;
  Array.of_list (List.rev !acc)

let good_state t = Goodsim.state t.good

let faulty_state t fid =
  check_target t fid;
  let g = t.groups.(t.group_of.(fid)) in
  let bit = 1 lsl t.slot_of.(fid) in
  Array.mapi
    (fun k _ ->
      if g.fone.(k) land bit <> 0 then Logic.One
      else if g.fzero.(k) land bit <> 0 then Logic.Zero
      else Logic.X)
    t.dffs

let ff_effects t fid =
  check_target t fid;
  let g = t.groups.(t.group_of.(fid)) in
  let bit = 1 lsl t.slot_of.(fid) in
  let good = Goodsim.state t.good in
  let acc = ref [] in
  for k = Array.length t.dffs - 1 downto 0 do
    let effect =
      match good.(k) with
      | Logic.One -> g.fzero.(k) land bit <> 0
      | Logic.Zero -> g.fone.(k) land bit <> 0
      | Logic.X -> false
    in
    if effect then acc := k :: !acc
  done;
  !acc

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let effect_bits t =
  let good = Goodsim.state t.good in
  let total = ref 0 in
  Array.iter
    (fun g ->
      if g.active <> 0 then
        Array.iteri
          (fun k gv ->
            match gv with
            | Logic.One -> total := !total + popcount (g.fzero.(k) land g.active)
            | Logic.Zero -> total := !total + popcount (g.fone.(k) land g.active)
            | Logic.X -> ())
          good)
    t.groups;
  !total

let detection_times model ~fault_ids seq =
  let s = create model ~fault_ids in
  advance s seq;
  Array.map (fun fid -> s.det_time.(fid)) fault_ids

let detects_single model ~fault ?start seq =
  let s =
    match start with
    | None -> create model ~fault_ids:[| fault |]
    | Some (good_state, faulty) ->
      create ~good_state ~faulty_states:(fun _ -> faulty) model ~fault_ids:[| fault |]
  in
  advance s seq;
  detection_time s fault
