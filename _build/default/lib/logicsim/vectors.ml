module Logic = Netlist.Logic

type vector = Logic.t array
type t = vector array

let parse s = Array.init (String.length s) (fun i -> Logic.of_char s.[i])
let to_string v = String.init (Array.length v) (fun i -> Logic.to_char v.(i))

let random rng ~width =
  Array.init width (fun _ -> Logic.of_bool (Prng.Rng.bool rng))

let random_seq rng ~width ~length = Array.init length (fun _ -> random rng ~width)

let specified_with rng v =
  Array.map
    (function
      | Logic.X -> Logic.of_bool (Prng.Rng.bool rng)
      | b -> b)
    v

let fill_x rng seq = Array.map (specified_with rng) seq
let concat a b = Array.append a b
let copy seq = Array.map Array.copy seq

let count seq ~position ~value =
  Array.fold_left
    (fun acc v -> if Logic.equal v.(position) value then acc + 1 else acc)
    0 seq

let pp fmt seq =
  Array.iteri (fun i v -> Format.fprintf fmt "%4d  %s@." i (to_string v)) seq
