(** Tester program export.

    A test sequence only becomes applicable on automatic test equipment
    once every cycle also carries the expected primary-output response.
    [build] runs the fault-free machine from power-up and pairs each input
    vector with its expected outputs; [X] expectations (unknowns from the
    unreset initial state) are mask positions the tester must ignore.

    The text format is one line per cycle:
    {v
      <time> <input bits> | <expected output bits>
    v}
    with a header naming the signals — deliberately trivial to post-process
    into any vendor format. *)

type cycle = {
  inputs : Netlist.Logic.t array;
  expected : Netlist.Logic.t array;  (** [X] = masked/don't-compare *)
}

type t = private {
  circuit : Netlist.Circuit.t;
  cycles : cycle array;
}

(** [build circuit seq] simulates from the all-[X] power-up state.
    @raise Invalid_argument when a vector does not match the circuit's
    input count. *)
val build : Netlist.Circuit.t -> Logicsim.Vectors.t -> t

(** Cycles whose expected outputs are fully masked contribute nothing; this
    counts the cycles carrying at least one compare. *)
val observing_cycles : t -> int

val to_string : t -> string
val write_file : string -> t -> unit
