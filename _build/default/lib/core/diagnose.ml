module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Model = Faultmodel.Model

type candidate = {
  fault : int;
  matched : int;
  missed : int;
  extra : int;
}

(* Scalar simulation of one machine, optionally with a forced node. *)
let response model ?fault seq =
  let c = model.Model.circuit in
  let force =
    match fault with
    | None -> None
    | Some fid ->
      Some
        ( model.Model.fault_node.(fid),
          Logic.of_bool model.Model.fault_stuck.(fid) )
  in
  let lv = model.Model.levelize in
  let values = Array.make (Circuit.node_count c) Logic.X in
  let dffs = Circuit.dffs c in
  let dff_fanin = Array.map (fun ff -> (Circuit.node c ff).Circuit.fanins.(0)) dffs in
  let state = Array.make (Array.length dffs) Logic.X in
  let apply_force n =
    match force with
    | Some (fn, fv) when fn = n -> values.(n) <- fv
    | Some _ | None -> ()
  in
  Array.map
    (fun vec ->
      Array.iteri
        (fun i id ->
          values.(id) <- vec.(i);
          apply_force id)
        (Circuit.inputs c);
      Array.iteri
        (fun k id ->
          values.(id) <- state.(k);
          apply_force id)
        dffs;
      Array.iter
        (fun nd ->
          values.(nd) <- Logicsim.Goodsim.eval_node c values nd;
          apply_force nd)
        lv.Netlist.Levelize.order;
      Array.iteri (fun k d -> state.(k) <- values.(d)) dff_fanin;
      Array.map (fun o -> values.(o)) (Circuit.outputs c))
    seq

let failing_positions ~expected ~observed =
  let acc = ref [] in
  Array.iteri
    (fun t exp_row ->
      Array.iteri
        (fun j e ->
          let o = observed.(t).(j) in
          if Logic.is_binary e && Logic.is_binary o && not (Logic.equal e o)
          then acc := (t, j) :: !acc)
        exp_row)
    expected;
  List.rev !acc

module Pos = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let run model seq ~observed ?candidates () =
  let good = response model seq in
  let actual = Pos.of_list (failing_positions ~expected:good ~observed) in
  let candidates =
    match candidates with
    | Some ids -> ids
    | None ->
      (* Default candidate pool: faults the sequence detects at all. *)
      let all = Array.init (Model.fault_count model) Fun.id in
      let times = Logicsim.Faultsim.detection_times model ~fault_ids:all seq in
      Array.of_list
        (List.filteri (fun i _ -> times.(i) >= 0) (Array.to_list all))
  in
  let scored =
    Array.to_list
      (Array.map
         (fun fid ->
           let fr = response model ~fault:fid seq in
           (* Sure failures: good and faulty binary and different.
              Potential failures: good binary, faulty unknown — the device
              may or may not fail there, so they can explain an observed
              failure but are never demanded. *)
           let sure = ref Pos.empty and may = ref Pos.empty in
           Array.iteri
             (fun t row ->
               Array.iteri
                 (fun j g ->
                   let f = fr.(t).(j) in
                   if Logic.is_binary g then
                     if Logic.is_binary f then begin
                       if not (Logic.equal g f) then sure := Pos.add (t, j) !sure
                     end
                     else may := Pos.add (t, j) !may)
                 row)
             good;
           let explained = Pos.union !sure !may in
           let matched = Pos.cardinal (Pos.inter explained actual) in
           {
             fault = fid;
             matched;
             missed = Pos.cardinal actual - matched;
             extra = Pos.cardinal (Pos.diff !sure actual);
           })
         candidates)
  in
  List.stable_sort
    (fun a b -> compare (a.missed, a.extra, a.fault) (b.missed, b.extra, b.fault))
    scored

let perfect cands = List.filter (fun c -> c.missed = 0 && c.extra = 0) cands
