module Model = Faultmodel.Model

type verdict =
  | Testable
  | Redundant
  | Unknown

let classify model ~fault ~backtrack_limit =
  match
    Atpg.Podem.run model ~fault ~depth:1 ~start:Atpg.Podem.Free_state
      ~backtrack_limit ~observe_ffs:true ()
  with
  | Atpg.Podem.Detected _ | Atpg.Podem.Latched _ -> Testable
  | Atpg.Podem.Exhausted -> Redundant
  | Atpg.Podem.Aborted -> Unknown

let partition model ~backtrack_limit =
  let targets = ref [] and redundant = ref [] and unknown = ref [] in
  for fault = Model.fault_count model - 1 downto 0 do
    match classify model ~fault ~backtrack_limit with
    | Testable -> targets := fault :: !targets
    | Redundant -> redundant := fault :: !redundant
    | Unknown ->
      unknown := fault :: !unknown;
      targets := fault :: !targets
  done;
  ( Array.of_list !targets,
    Array.of_list !redundant,
    Array.of_list !unknown )
