(** Cause-effect fault diagnosis.

    Given a test sequence and the response observed on a failing device,
    rank the modeled stuck-at faults by how well their simulated responses
    explain the observation.  A candidate's {e failing positions} are the
    (cycle, output) pairs where its simulated response differs from the
    fault-free machine's binary expectation; these are compared against the
    observed failing positions.

    A candidate predicts a {e sure} failure where good and faulty values
    are both binary and differ, and a {e potential} failure where the
    faulty value is unknown (the device may fail there or not); potential
    failures can explain an observation but are never demanded.

    Ranking: candidates explaining the observation exactly come first, then
    by fewest unexplained observed failures ([missed]), then by fewest
    sure-but-not-observed failures ([extra]).  Ties keep fault-id order, so
    results are deterministic. *)

type candidate = {
  fault : int;  (** index into the model's fault list *)
  matched : int;  (** observed failing positions the fault predicts *)
  missed : int;  (** observed failures the fault does not predict *)
  extra : int;  (** predicted failures that were not observed *)
}

(** [response model ?fault seq] simulates the per-cycle primary-output
    matrix from power-up — the fault-free machine when [fault] is [None],
    the faulty machine otherwise. *)
val response :
  Faultmodel.Model.t -> ?fault:int -> Logicsim.Vectors.t -> Netlist.Logic.t array array

(** [failing_positions ~expected ~observed] lists the (cycle, output) pairs
    where a binary expectation disagrees with a binary observation.  [X]
    expectations are masked, as on the tester. *)
val failing_positions :
  expected:Netlist.Logic.t array array ->
  observed:Netlist.Logic.t array array ->
  (int * int) list

(** [run model seq ~observed ?candidates ()] scores and ranks candidate
    faults (default: every fault the sequence detects) against the observed
    response matrix. *)
val run :
  Faultmodel.Model.t ->
  Logicsim.Vectors.t ->
  observed:Netlist.Logic.t array array ->
  ?candidates:int array ->
  unit ->
  candidate list

(** Candidates that explain the observation exactly ([missed = extra = 0]). *)
val perfect : candidate list -> candidate list
