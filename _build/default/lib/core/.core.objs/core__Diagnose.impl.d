lib/core/diagnose.ml: Array Faultmodel Fun List Logicsim Netlist Set
