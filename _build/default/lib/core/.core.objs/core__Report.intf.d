lib/core/report.mli: Logicsim Pipeline Scanins
