lib/core/config.ml: Atpg Compaction
