lib/core/flow.ml: Array Atpg Compaction Config Faultmodel Fun List Logicsim Netlist Prng Scanins Testability
