lib/core/config.mli: Atpg Compaction Netlist
