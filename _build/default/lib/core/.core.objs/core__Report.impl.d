lib/core/report.ml: Array Buffer List Netlist Pipeline Printf Scanins
