lib/core/pipeline.mli: Circuits Config Flow Logicsim Scanins
