lib/core/diagnose.mli: Faultmodel Logicsim Netlist
