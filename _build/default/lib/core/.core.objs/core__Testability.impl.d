lib/core/testability.ml: Array Atpg Faultmodel
