lib/core/pipeline.ml: Array Atpg Baseline Circuits Compaction Config Faultmodel Flow Logicsim Netlist Prng Scanins Sys Translation
