lib/core/flow.mli: Atpg Compaction Config Faultmodel Logicsim
