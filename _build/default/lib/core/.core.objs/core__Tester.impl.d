lib/core/tester.ml: Array Buffer Fun List Logicsim Netlist Printf String
