lib/core/tester.mli: Logicsim Netlist
