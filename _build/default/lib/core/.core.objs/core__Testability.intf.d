lib/core/testability.mli: Faultmodel
