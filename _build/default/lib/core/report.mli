(** Paper-style rendering of results.

    The three experiment tables reproduce the column structure of the
    paper's Tables 5–7; {!sequence} renders a unified test sequence the way
    Tables 1, 3 and 4 do (one row per clock cycle, scan lines last). *)

val table5 : Pipeline.table5_row list -> string
val table6 : Pipeline.table6_row list -> string
val table7 : Pipeline.table7_row list -> string

(** [sequence scan seq] — the per-cycle table: time, original primary
    inputs, [scan_sel], [scan_inp]s. *)
val sequence : Scanins.Scan.t -> Logicsim.Vectors.t -> string

(** [scan_runs scan seq] summarizes the scan operations embedded in a
    sequence: list of [(start, length)] of maximal [scan_sel = 1] runs —
    runs shorter than [N_SV] are limited scan operations. *)
val scan_runs : Scanins.Scan.t -> Logicsim.Vectors.t -> (int * int) list

(** {1 CSV exports}

    Header line plus one line per row — for plotting and regression
    tracking. *)

val table5_csv : Pipeline.table5_row list -> string
val table6_csv : Pipeline.table6_row list -> string
val table7_csv : Pipeline.table7_row list -> string
