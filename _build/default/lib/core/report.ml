module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Scan = Scanins.Scan

let buffer_table f =
  let buf = Buffer.create 2048 in
  f buf;
  Buffer.contents buf

let table5 rows =
  buffer_table (fun buf ->
      Buffer.add_string buf
        "circ        inp  stvr  faults  detected   fcov  funct\n";
      List.iter
        (fun (r : Pipeline.table5_row) ->
          Buffer.add_string buf
            (Printf.sprintf "%-10s %4d %5d %7d %9d %6.2f %6d\n" r.Pipeline.name
               r.Pipeline.inp r.Pipeline.stvr r.Pipeline.faults
               r.Pipeline.detected r.Pipeline.fcov r.Pipeline.funct))
        rows)

let pp_len (l : Pipeline.lengths) = Printf.sprintf "%6d %6d" l.Pipeline.total l.Pipeline.scan

let table6 rows =
  buffer_table (fun buf ->
      Buffer.add_string buf
        "            | test len     | restor len   | omit len     | ext |  [26]\n";
      Buffer.add_string buf
        "circ        | total   scan | total   scan | total   scan | det |   cyc\n";
      let tot_omit = ref 0 and tot_base = ref 0 in
      List.iter
        (fun (r : Pipeline.table6_row) ->
          tot_omit := !tot_omit + r.Pipeline.omit_len.Pipeline.total;
          tot_base := !tot_base + r.Pipeline.baseline_cycles;
          Buffer.add_string buf
            (Printf.sprintf "%-10s  %s  %s  %s  %4d  %6d\n" r.Pipeline.name
               (pp_len r.Pipeline.test_len)
               (pp_len r.Pipeline.restor_len)
               (pp_len r.Pipeline.omit_len)
               r.Pipeline.ext_det r.Pipeline.baseline_cycles))
        rows;
      Buffer.add_string buf
        (Printf.sprintf "%-10s  %13s  %13s  %6d %6s  %4s  %6d\n" "total" "" ""
           !tot_omit "" "" !tot_base))

let table7 rows =
  buffer_table (fun buf ->
      Buffer.add_string buf
        "            | test len     | restor len   | omit len     |  [26]\n";
      Buffer.add_string buf
        "circ        | total   scan | total   scan | total   scan |   cyc\n";
      let tot_omit = ref 0 and tot_base = ref 0 in
      List.iter
        (fun (r : Pipeline.table7_row) ->
          tot_omit := !tot_omit + r.Pipeline.omit_len.Pipeline.total;
          tot_base := !tot_base + r.Pipeline.baseline_cycles;
          Buffer.add_string buf
            (Printf.sprintf "%-10s  %s  %s  %s  %6d\n" r.Pipeline.name
               (pp_len r.Pipeline.test_len)
               (pp_len r.Pipeline.restor_len)
               (pp_len r.Pipeline.omit_len)
               r.Pipeline.baseline_cycles))
        rows;
      Buffer.add_string buf
        (Printf.sprintf "%-10s  %13s  %13s  %6d %6s  %6d\n" "total" "" ""
           !tot_omit "" !tot_base))

let sequence scan seq =
  let c = scan.Scan.circuit in
  let inputs = Circuit.inputs c in
  let orig = scan.Scan.original_pi_count in
  buffer_table (fun buf ->
      Buffer.add_string buf "   t ";
      Array.iteri
        (fun i id ->
          if i < orig then
            Buffer.add_string buf (Printf.sprintf " %s" (Circuit.node c id).Circuit.name))
        inputs;
      Buffer.add_string buf "  scan_sel scan_inp\n";
      Array.iteri
        (fun t v ->
          Buffer.add_string buf (Printf.sprintf "%4d " t);
          for i = 0 to orig - 1 do
            Buffer.add_string buf (Printf.sprintf " %c" (Logic.to_char v.(i)))
          done;
          Buffer.add_string buf
            (Printf.sprintf "     %c    " (Logic.to_char v.(Scan.sel_position scan)));
          for ch = 0 to Array.length scan.Scan.chains - 1 do
            Buffer.add_string buf
              (Printf.sprintf "    %c"
                 (Logic.to_char v.(Scan.inp_position scan ~chain:ch)))
          done;
          Buffer.add_char buf '\n')
        seq)

let scan_runs scan seq =
  let sel = Scan.sel_position scan in
  let runs = ref [] in
  let start = ref (-1) in
  Array.iteri
    (fun t v ->
      if Logic.equal v.(sel) Logic.One then begin
        if !start < 0 then start := t
      end
      else if !start >= 0 then begin
        runs := (!start, t - !start) :: !runs;
        start := -1
      end)
    seq;
  if !start >= 0 then runs := (!start, Array.length seq - !start) :: !runs;
  List.rev !runs

let table5_csv rows =
  buffer_table (fun buf ->
      Buffer.add_string buf "circuit,inp,stvr,faults,detected,fcov,funct\n";
      List.iter
        (fun (r : Pipeline.table5_row) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%d,%d,%d,%.2f,%d\n" r.Pipeline.name
               r.Pipeline.inp r.Pipeline.stvr r.Pipeline.faults
               r.Pipeline.detected r.Pipeline.fcov r.Pipeline.funct))
        rows)

let csv_len (l : Pipeline.lengths) =
  Printf.sprintf "%d,%d" l.Pipeline.total l.Pipeline.scan

let table6_csv rows =
  buffer_table (fun buf ->
      Buffer.add_string buf
        "circuit,test_total,test_scan,restor_total,restor_scan,omit_total,\
         omit_scan,ext_det,baseline_cycles\n";
      List.iter
        (fun (r : Pipeline.table6_row) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%s,%s,%d,%d\n" r.Pipeline.name
               (csv_len r.Pipeline.test_len)
               (csv_len r.Pipeline.restor_len)
               (csv_len r.Pipeline.omit_len)
               r.Pipeline.ext_det r.Pipeline.baseline_cycles))
        rows)

let table7_csv rows =
  buffer_table (fun buf ->
      Buffer.add_string buf
        "circuit,test_total,test_scan,restor_total,restor_scan,omit_total,\
         omit_scan,baseline_cycles\n";
      List.iter
        (fun (r : Pipeline.table7_row) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%s,%s,%d\n" r.Pipeline.name
               (csv_len r.Pipeline.test_len)
               (csv_len r.Pipeline.restor_len)
               (csv_len r.Pipeline.omit_len)
               r.Pipeline.baseline_cycles))
        rows)
