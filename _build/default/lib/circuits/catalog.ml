let root_seed = 0x5CA9A7961234ABCDL

(* Per-circuit seed: the profile's salt selects a generation with low
   structural fault redundancy (chosen by an offline sweep). *)
let seed_of p =
  Int64.add root_seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int p.Profiles.salt))

let circuit ?(scale = Profiles.Quick) name =
  if name = "s27" then Iscas.s27 ()
  else begin
    let p = Profiles.find_exn name in
    Synthetic.generate ~name ~pis:p.Profiles.pis
      ~ffs:(Profiles.ffs_at scale p)
      ~gates:(Profiles.gates_at scale p)
      ~seed:(seed_of p) ()
  end

let names = "s27" :: List.map (fun p -> p.Profiles.name) Profiles.all
let is_synthetic name = name <> "s27"
