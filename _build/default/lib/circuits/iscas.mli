(** Exact embedded benchmark netlists.

    Only [s27] is small and ubiquitous enough to embed verbatim; every other
    paper circuit is substituted by {!Synthetic} (see DESIGN.md §3). *)

(** The ISCAS-89 [s27] circuit: 4 inputs, 1 output, 3 flip-flops, 10 gates. *)
val s27 : unit -> Netlist.Circuit.t

(** Raw [.bench] text of [s27]. *)
val s27_bench : string
