(** Deterministic synthetic sequential benchmark generator.

    Produces a structurally realistic sequential circuit with the requested
    interface shape: random acyclic combinational logic over the primary
    inputs and flip-flop outputs, next-state functions tapped from the logic,
    and primary outputs covering every otherwise-unobserved cone (so no logic
    is structurally untestable by construction).

    Generation is a pure function of the arguments; the same parameters
    always produce the same netlist. *)

(** Structural style knobs.  The defaults were tuned so that the generated
    circuits carry low structural fault redundancy (a few percent, like the
    real ISCAS-89 suite) — random AND/OR-heavy logic with tight reconvergence
    is otherwise ~10% redundant. *)
type style = {
  xor_percent : int;  (** share of XOR/XNOR gates (they never mask faults) *)
  inv_percent : int;  (** share of NOT/BUF *)
  fanin3_percent : int;  (** probability that an n-ary gate takes 3 inputs *)
  recency_bias : int;  (** 0 = uniform fanin picks, 1 = mild, 2 = strong *)
}

val default_style : style

(** [generate ~name ~pis ~ffs ~gates ~seed] builds a circuit with exactly
    [pis] primary inputs and [ffs] flip-flops and approximately [gates]
    combinational gates ([gates] is raised if too small to consume every
    source at least once).
    @raise Invalid_argument when [pis <= 0], [ffs < 0] or [gates <= 0]. *)
val generate :
  ?style:style ->
  name:string -> pis:int -> ffs:int -> gates:int -> seed:int64 -> unit ->
  Netlist.Circuit.t
