(** Benchmark circuit profiles.

    One profile per circuit evaluated in the paper, recording the interface
    shape the paper reports in Table 5 (number of primary inputs excluding
    the two scan inputs, number of state variables) plus the synthesis
    parameters of our substitute (gate count, seed) and a reduced "quick"
    shape for the largest circuits so that the whole table regenerates in
    minutes (see DESIGN.md §3). *)

type family =
  | Iscas89  (** s-prefixed circuits *)
  | Itc99  (** b-prefixed circuits *)

type t = {
  name : string;
  family : family;
  pis : int;  (** original primary inputs of [C] (paper's [inp] minus 2) *)
  ffs : int;  (** state variables = scan chain length *)
  gates : int;  (** synthetic gate budget at full scale *)
  quick_ffs : int;  (** flip-flops at quick scale (= [ffs] for most) *)
  quick_gates : int;
  paper_faults : int;  (** fault universe size reported by the paper *)
  salt : int;
  (** seed offset chosen (offline) to minimize structural fault redundancy
      of the synthetic substitute *)
}

type scale =
  | Quick
  | Full

(** Profiles in the order of the paper's Table 5/6 (ISCAS-89 first, then
    ITC-99). *)
val all : t list

(** Circuits appearing in the paper's Table 7 (translated test sets). *)
val table7_names : string list

(** @raise Not_found for an unknown circuit name. *)
val find_exn : string -> t

val ffs_at : scale -> t -> int
val gates_at : scale -> t -> int
