lib/circuits/iscas.mli: Netlist
