lib/circuits/synthetic.mli: Netlist
