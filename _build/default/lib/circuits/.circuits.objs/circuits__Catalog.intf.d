lib/circuits/catalog.mli: Netlist Profiles
