lib/circuits/profiles.mli:
