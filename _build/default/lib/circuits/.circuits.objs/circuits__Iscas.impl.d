lib/circuits/iscas.ml: Netlist
