lib/circuits/profiles.ml: List
