lib/circuits/catalog.ml: Int64 Iscas List Profiles Synthetic
