lib/circuits/synthetic.ml: Array Hashtbl List Netlist Printf Prng Queue
