type family =
  | Iscas89
  | Itc99

type t = {
  name : string;
  family : family;
  pis : int;
  ffs : int;
  gates : int;
  quick_ffs : int;
  quick_gates : int;
  paper_faults : int;
  salt : int;
}

type scale =
  | Quick
  | Full

let mk ?quick ?(salt = 0) family name pis ffs gates paper_faults =
  let quick_ffs, quick_gates =
    match quick with
    | Some (qf, qg) -> qf, qg
    | None -> ffs, gates
  in
  { name; family; pis; ffs; gates; quick_ffs; quick_gates; paper_faults; salt }

(* Gate budgets derive from the paper's fault counts at roughly 3.5 faults
   per gate, matching the fault density of the real ISCAS circuits. *)
let all =
  [
    mk ~salt:6 Iscas89 "s208" 11 8 76 267;
    mk Iscas89 "s298" 3 14 114 398;
    mk ~salt:9 Iscas89 "s344" 9 15 129 452;
    mk ~salt:1 Iscas89 "s382" 3 21 155 541;
    mk ~salt:4 Iscas89 "s386" 7 6 121 424;
    mk ~salt:2 Iscas89 "s400" 3 21 162 566;
    mk ~salt:4 Iscas89 "s420" 19 16 151 530;
    mk ~salt:5 Iscas89 "s444" 3 21 176 616;
    mk ~salt:5 Iscas89 "s510" 19 6 173 604;
    mk ~salt:7 Iscas89 "s526" 3 21 196 687;
    mk ~salt:3 Iscas89 "s641" 35 19 178 623;
    mk ~salt:9 Iscas89 "s820" 18 5 253 884;
    mk ~salt:6 Iscas89 "s953" 16 29 371 1299;
    mk Iscas89 "s1196" 14 18 393 1374;
    mk ~salt:9 Iscas89 "s1423" 17 74 568 1987;
    mk ~salt:3 Iscas89 "s1488" 8 6 436 1526;
    mk ~quick:(90, 700) Iscas89 "s5378" 35 179 1656 5797;
    mk ~quick:(180, 1500) Iscas89 "s35932" 35 1728 14133 49466;
    mk ~salt:8 Itc99 "b01" 3 5 48 169;
    mk ~salt:8 Itc99 "b02" 2 4 27 96;
    mk ~salt:5 Itc99 "b03" 5 30 182 636;
    mk ~salt:7 Itc99 "b04" 12 66 499 1746;
    mk ~salt:2 Itc99 "b06" 3 9 77 268;
    mk ~salt:8 Itc99 "b09" 2 28 169 592;
    mk ~salt:8 Itc99 "b10" 12 17 177 618;
    mk ~salt:2 Itc99 "b11" 8 30 364 1273;
  ]

let table7_names =
  [ "s298"; "s344"; "s382"; "s400"; "s526"; "s641"; "s820"; "s1423"; "s1488";
    "s5378"; "b01"; "b02"; "b03"; "b04"; "b06"; "b09"; "b10"; "b11" ]

let find_exn name = List.find (fun p -> p.name = name) all

let ffs_at scale p =
  match scale with
  | Quick -> p.quick_ffs
  | Full -> p.ffs

let gates_at scale p =
  match scale with
  | Quick -> p.quick_gates
  | Full -> p.gates
