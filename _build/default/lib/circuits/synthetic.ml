module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

(* Minimal growable array of signal names, kept in creation order. *)
module Dyn = struct
  type t = { mutable arr : string array; mutable len : int }

  let of_array a = { arr = Array.copy a; len = Array.length a }

  let push t s =
    if t.len = Array.length t.arr then begin
      let arr = Array.make (max 16 (2 * t.len)) "" in
      Array.blit t.arr 0 arr 0 t.len;
      t.arr <- arr
    end;
    t.arr.(t.len) <- s;
    t.len <- t.len + 1

  let get t i = t.arr.(i)
  let length t = t.len
end

type style = {
  xor_percent : int;
  inv_percent : int;
  fanin3_percent : int;
  recency_bias : int;
}

let default_style =
  { xor_percent = 20; inv_percent = 10; fanin3_percent = 6; recency_bias = 1 }

(* Weighted gate-kind menu: NAND/NOR/AND/OR core with the style's share of
   XOR/XNOR (which never mask fault effects) and inverters/buffers. *)
let pick_kind style rng =
  let r = Prng.Rng.int rng 100 in
  if r < style.xor_percent then
    if r mod 3 = 0 then Gate.Xnor else Gate.Xor
  else if r < style.xor_percent + style.inv_percent then
    if r mod 4 = 0 then Gate.Buf else Gate.Not
  else begin
    match r mod 4 with
    | 0 -> Gate.Nand
    | 1 -> Gate.Nor
    | 2 -> Gate.And
    | _ -> Gate.Or
  end

let fanin_count style rng kind =
  match Gate.arity kind with
  | Some n -> n
  | None -> if Prng.Rng.int rng 100 < style.fanin3_percent then 3 else 2

(* Recency-biased pick over already-created signals: taking the max of
   several uniform draws skews towards recent signals, which grows
   combinational depth the way real synthesized logic does; too strong a
   bias yields tight reconvergence and with it redundant faults. *)
let pick_recent style rng n =
  match style.recency_bias with
  | 0 -> Prng.Rng.int rng n
  | 1 ->
    let a = Prng.Rng.int rng n in
    if Prng.Rng.int rng 100 < 50 then a else max a (Prng.Rng.int rng n)
  | _ -> max (Prng.Rng.int rng n) (Prng.Rng.int rng n)

let generate ?(style = default_style) ~name ~pis ~ffs ~gates ~seed () =
  if pis <= 0 then invalid_arg "Synthetic.generate: pis must be positive";
  if ffs < 0 then invalid_arg "Synthetic.generate: ffs must be non-negative";
  if gates <= 0 then invalid_arg "Synthetic.generate: gates must be positive";
  (* Every PI and FF output must be consumed at least once; with an average
     of ~2.2 pins per gate we need enough gates to cover all sources. *)
  let gates = max gates ((pis + ffs) / 2 + 2) in
  let rng = Prng.Rng.of_string seed name in
  let b = Circuit.Builder.create ~name () in
  let pi_name i = Printf.sprintf "PI%d" i in
  let ff_name i = Printf.sprintf "FF%d" i in
  let g_name i = Printf.sprintf "N%d" i in
  for i = 0 to pis - 1 do
    Circuit.Builder.add_input b (pi_name i)
  done;
  let sources =
    Array.init (pis + ffs) (fun i -> if i < pis then pi_name i else ff_name (i - pis))
  in
  let avail = Dyn.of_array sources in
  let pending = Queue.create () in
  Array.iter (fun s -> Queue.add s pending) sources;
  let consumed = Hashtbl.create (2 * gates) in
  let gate_names = Array.init gates g_name in
  let choose_fanin () =
    if (not (Queue.is_empty pending)) && Prng.Rng.int rng 100 < 55 then Queue.pop pending
    else Dyn.get avail (pick_recent style rng (Dyn.length avail))
  in
  for gi = 0 to gates - 1 do
    let kind = pick_kind style rng in
    let n = fanin_count style rng kind in
    let fanins = ref [] in
    let tries = ref 0 in
    while List.length !fanins < n do
      let f = choose_fanin () in
      incr tries;
      (* Duplicate fanins degenerate the gate (XOR(a,a) is constant) and
         breed redundant faults — always resample; fall back to a linear
         scan of available signals if random picks keep colliding. *)
      if not (List.mem f !fanins) then fanins := f :: !fanins
      else if !tries > 16 then begin
        let len = Dyn.length avail in
        let k = ref 0 in
        while List.length !fanins < n && !k < len do
          let s = Dyn.get avail !k in
          if not (List.mem s !fanins) then fanins := s :: !fanins;
          incr k
        done
      end
    done;
    let fanins = List.rev !fanins in
    Circuit.Builder.add_gate b gate_names.(gi) kind fanins;
    List.iter (fun f -> Hashtbl.replace consumed f ()) fanins;
    Dyn.push avail gate_names.(gi)
  done;
  (* Any source still pending gets drained into collector OR gates so that
     no PI or FF output is dangling. *)
  let collectors = ref [] in
  let ci = ref 0 in
  while not (Queue.is_empty pending) do
    let a = Queue.pop pending in
    let b2 =
      if Queue.is_empty pending then gate_names.(Prng.Rng.int rng gates)
      else Queue.pop pending
    in
    let cname = Printf.sprintf "C%d" !ci in
    incr ci;
    Circuit.Builder.add_gate b cname Gate.Or [ a; b2 ];
    Hashtbl.replace consumed a ();
    Hashtbl.replace consumed b2 ();
    collectors := cname :: !collectors
  done;
  let all_gates = Array.append gate_names (Array.of_list (List.rev !collectors)) in
  let total_gates = Array.length all_gates in
  (* Next-state functions: prefer gates from the deeper two thirds. *)
  for fi = 0 to ffs - 1 do
    let lo = total_gates / 3 in
    let d = all_gates.(lo + Prng.Rng.int rng (max 1 (total_gates - lo))) in
    Circuit.Builder.add_gate b (ff_name fi) Gate.Dff [ d ];
    Hashtbl.replace consumed d ()
  done;
  (* Primary outputs: a handful of deliberate POs plus every gate output
     that nothing consumes, so all cones are observable. *)
  let po = Hashtbl.create 16 in
  let deliberate = max 1 (min 32 (1 + (pis / 3) + (ffs / 8))) in
  let attempts = ref 0 in
  while Hashtbl.length po < deliberate && !attempts < 20 * deliberate do
    incr attempts;
    let g = all_gates.(pick_recent style rng total_gates) in
    if not (Hashtbl.mem po g) then Hashtbl.replace po g ()
  done;
  Array.iter
    (fun g ->
      if not (Hashtbl.mem consumed g || Hashtbl.mem po g) then Hashtbl.replace po g ())
    all_gates;
  (* Deterministic output order: creation order. *)
  Array.iter (fun g -> if Hashtbl.mem po g then Circuit.Builder.add_output b g) all_gates;
  Circuit.Builder.build b
