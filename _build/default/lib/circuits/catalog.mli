(** Benchmark catalog: maps circuit names to netlists.

    [s27] resolves to the exact embedded ISCAS-89 netlist; every profiled
    circuit resolves to its deterministic synthetic substitute at the chosen
    scale. *)

(** [circuit ?scale name] builds the benchmark circuit.  [scale] defaults to
    [Profiles.Quick].
    @raise Not_found for names that are neither ["s27"] nor profiled. *)
val circuit : ?scale:Profiles.scale -> string -> Netlist.Circuit.t

(** All catalog names, ["s27"] first, then profiles in table order. *)
val names : string list

(** Whether [name] uses a synthetic substitute rather than an exact
    netlist. *)
val is_synthetic : string -> bool
