module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Levelize = Netlist.Levelize

type t = {
  base : Circuit.t;
  circuit : Circuit.t;
  levelize : Levelize.t;
  scoap : Netlist.Scoap.t;
  faults : Fault.t array;
  fault_node : int array;
  fault_stuck : bool array;
  node_of_base : int array;
  universe_size : int;
}

let branch_name c sink pin =
  Printf.sprintf "__br_%s_%d" (Circuit.node c sink).Circuit.name pin

let elaborate c =
  let b = Circuit.Builder.create ~name:(Circuit.name c) () in
  let node_name i = (Circuit.node c i).Circuit.name in
  Array.iter (fun i -> Circuit.Builder.add_input b (node_name i)) (Circuit.inputs c);
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | k ->
        let fanins =
          List.mapi
            (fun pin f ->
              if Circuit.fanout_count c f > 1 then begin
                let bn = branch_name c nd.Circuit.id pin in
                Circuit.Builder.add_gate b bn Gate.Buf [ node_name f ];
                bn
              end
              else node_name f)
            (Array.to_list nd.Circuit.fanins)
        in
        Circuit.Builder.add_gate b nd.Circuit.name k fanins)
    (Circuit.nodes c);
  Array.iter (fun o -> Circuit.Builder.add_output b (node_name o)) (Circuit.outputs c);
  Circuit.Builder.build b

let build base =
  let collapsed = Collapse.run base in
  let circuit = elaborate base in
  let node_of_base =
    Array.map
      (fun nd -> Circuit.id_of_name_exn circuit nd.Circuit.name)
      (Circuit.nodes base)
  in
  let faults = collapsed.Collapse.representatives in
  let fault_node =
    Array.map
      (fun f ->
        match f.Fault.site with
        | Fault.Stem n -> node_of_base.(n)
        | Fault.Branch { sink; pin } ->
          Circuit.id_of_name_exn circuit (branch_name base sink pin))
      faults
  in
  let fault_stuck = Array.map (fun f -> f.Fault.stuck) faults in
  {
    base;
    circuit;
    levelize = Levelize.of_circuit circuit;
    scoap = Netlist.Scoap.compute circuit;
    faults;
    fault_node;
    fault_stuck;
    node_of_base;
    universe_size = Array.length collapsed.Collapse.universe;
  }

let fault_count t = Array.length t.faults

let node_for_site t site =
  match site with
  | Fault.Stem n -> t.node_of_base.(n)
  | Fault.Branch { sink; pin } ->
    Circuit.id_of_name_exn t.circuit (branch_name t.base sink pin)
let fault_name t i = Fault.name t.base t.faults.(i)
let map_node t i = t.node_of_base.(i)
