module Circuit = Netlist.Circuit

type site =
  | Stem of int
  | Branch of {
      sink : int;
      pin : int;
    }

type t = {
  site : site;
  stuck : bool;
}

let site_key = function
  | Stem n -> n, -1
  | Branch { sink; pin } -> sink, pin

let compare a b =
  let ka = site_key a.site and kb = site_key b.site in
  match Stdlib.compare ka kb with
  | 0 -> Stdlib.compare a.stuck b.stuck
  | c -> c

let equal a b = compare a b = 0

let universe c =
  let acc = ref [] in
  let add site =
    acc := { site; stuck = true } :: { site; stuck = false } :: !acc
  in
  Array.iter
    (fun nd ->
      add (Stem nd.Circuit.id);
      Array.iteri
        (fun pin f ->
          if Circuit.fanout_count c f > 1 then
            add (Branch { sink = nd.Circuit.id; pin }))
        nd.Circuit.fanins)
    (Circuit.nodes c);
  Array.of_list (List.rev !acc)

let name c t =
  let v = if t.stuck then '1' else '0' in
  match t.site with
  | Stem n -> Printf.sprintf "%s/%c" (Circuit.node c n).Circuit.name v
  | Branch { sink; pin } ->
    Printf.sprintf "%s.in%d/%c" (Circuit.node c sink).Circuit.name pin v

let pp c fmt t = Format.pp_print_string fmt (name c t)
