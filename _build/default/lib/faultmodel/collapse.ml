module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type result = {
  universe : Fault.t array;
  class_of : int array;
  representatives : Fault.t array;
}

module Uf = struct
  let create n = Array.init n Fun.id

  let rec find t i = if t.(i) = i then i else begin
    t.(i) <- find t t.(i);
    t.(i)
  end

  (* Union keeps the smaller root so the class representative is the first
     fault in universe order. *)
  let union t a b =
    let ra = find t a and rb = find t b in
    if ra < rb then t.(rb) <- ra else if rb < ra then t.(ra) <- rb
end

let run c =
  let universe = Fault.universe c in
  let n = Array.length universe in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i f -> Hashtbl.replace index f i) universe;
  let uf = Uf.create n in
  (* The fault object carried by pin [pin] of gate [sink] at value [v]:
     a branch fault when the driver has electrical fanout > 1, the driver's
     stem fault otherwise (same line). *)
  let pin_fault sink pin v =
    let driver = (Circuit.node c sink).Circuit.fanins.(pin) in
    if Circuit.fanout_count c driver > 1 then
      { Fault.site = Fault.Branch { sink; pin }; stuck = v }
    else { Fault.site = Fault.Stem driver; stuck = v }
  in
  let idx f =
    match Hashtbl.find_opt index f with
    | Some i -> i
    | None -> invalid_arg "Collapse.run: fault outside universe"
  in
  let unify fa fb = Uf.union uf (idx fa) (idx fb) in
  Array.iter
    (fun nd ->
      let g = nd.Circuit.id in
      let stem v = { Fault.site = Fault.Stem g; stuck = v } in
      match nd.Circuit.kind with
      | Gate.Buf ->
        unify (pin_fault g 0 false) (stem false);
        unify (pin_fault g 0 true) (stem true)
      | Gate.Not ->
        unify (pin_fault g 0 false) (stem true);
        unify (pin_fault g 0 true) (stem false)
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
        let ctrl =
          match Gate.controlling nd.Circuit.kind with
          | Some Netlist.Logic.Zero -> false
          | Some Netlist.Logic.One -> true
          | Some Netlist.Logic.X | None -> assert false
        in
        let out_v = if Gate.inversion nd.Circuit.kind then not ctrl else ctrl in
        Array.iteri (fun pin _ -> unify (pin_fault g pin ctrl) (stem out_v)) nd.Circuit.fanins
      | Gate.Input | Gate.Dff | Gate.Xor | Gate.Xnor | Gate.Mux -> ())
    (Circuit.nodes c);
  let class_of = Array.make n (-1) in
  let reps = ref [] in
  let next_class = ref 0 in
  let root_class = Array.make n (-1) in
  for i = 0 to n - 1 do
    let r = Uf.find uf i in
    if root_class.(r) < 0 then begin
      root_class.(r) <- !next_class;
      incr next_class;
      reps := universe.(r) :: !reps
    end;
    class_of.(i) <- root_class.(r)
  done;
  { universe; class_of; representatives = Array.of_list (List.rev !reps) }
