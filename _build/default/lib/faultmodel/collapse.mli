(** Structural equivalence fault collapsing.

    Classic gate-local equivalences, chained through fanout-free regions:
    for a gate with controlling value [c] and output inversion [i], every
    input stuck-at-[c] is equivalent to the output stuck-at-[c XOR i];
    buffer/inverter input faults are equivalent to the corresponding output
    faults.  No equivalence is applied across XOR/XNOR/MUX gates or through
    flip-flops (a flip-flop shifts the effect in time).  Equivalence classes
    are computed by union-find; the representative of a class is its first
    member in {!Fault.universe} order. *)

type result = {
  universe : Fault.t array;  (** the uncollapsed list *)
  class_of : int array;  (** universe index -> class index *)
  representatives : Fault.t array;  (** one fault per class, in class order *)
}

val run : Netlist.Circuit.t -> result
