(** Elaborated fault-simulation model.

    The simulators inject a fault by forcing one node's output value, so
    every fault must live on a node output.  [build] inserts an explicit
    buffer node on every fanin pin whose driver has electrical fanout
    greater than one; branch faults then map to the buffer's output and stem
    faults map to the original node.  All original signal names are
    preserved (buffers get fresh [__br_*] names), inputs and outputs keep
    their order and positions. *)

type t = private {
  base : Netlist.Circuit.t;
  circuit : Netlist.Circuit.t;  (** elaborated circuit the simulators run on *)
  levelize : Netlist.Levelize.t;  (** of [circuit] *)
  scoap : Netlist.Scoap.t;  (** SCOAP measures of [circuit], for ATPG guidance *)
  faults : Fault.t array;  (** collapsed representatives, expressed on [base] *)
  fault_node : int array;  (** per fault: node id in [circuit] to force *)
  fault_stuck : bool array;
  node_of_base : int array;  (** base node id -> id in [circuit] *)
  universe_size : int;  (** uncollapsed fault count, for reporting *)
}

val build : Netlist.Circuit.t -> t

val fault_count : t -> int
val fault_name : t -> int -> string

(** Map a node id of the base circuit into the elaborated circuit. *)
val map_node : t -> int -> int

(** [node_for_site t site] is the elaborated node that carries faults at
    [site] — the stem's own node, or the branch's inserted buffer.  This
    also works for collapsed-away (non-representative) faults, e.g. to
    simulate any member of an equivalence class. *)
val node_for_site : t -> Fault.site -> int
