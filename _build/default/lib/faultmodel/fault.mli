(** Single stuck-at faults.

    A fault site is either a {e stem} (a node's output line) or a
    {e branch} (one fanin pin of one gate, when the driving stem has
    electrical fanout greater than one — a fanout-free pin is the same
    electrical line as its driver's output and gets no separate site). *)

type site =
  | Stem of int  (** node id whose output line is faulty *)
  | Branch of {
      sink : int;  (** gate whose input pin is faulty *)
      pin : int;  (** pin index into the sink's fanins *)
    }

type t = {
  site : site;
  stuck : bool;  (** the stuck-at value *)
}

val equal : t -> t -> bool
val compare : t -> t -> int

(** [universe c] enumerates the full uncollapsed fault list of [c]: two
    faults per stem (every node) and two per branch pin of every
    multi-fanout stem, in a deterministic order. *)
val universe : Netlist.Circuit.t -> t array

(** Human-readable name, e.g. ["G11/0"] or ["G9.in1/1"]. *)
val name : Netlist.Circuit.t -> t -> string

val pp : Netlist.Circuit.t -> Format.formatter -> t -> unit
