lib/faultmodel/collapse.mli: Fault Netlist
