lib/faultmodel/fault.mli: Format Netlist
