lib/faultmodel/fault.ml: Array Format List Netlist Printf Stdlib
