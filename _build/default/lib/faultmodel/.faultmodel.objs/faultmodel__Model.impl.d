lib/faultmodel/model.ml: Array Collapse Fault List Netlist Printf
