lib/faultmodel/collapse.ml: Array Fault Fun Hashtbl List Netlist
