lib/faultmodel/model.mli: Fault Netlist
