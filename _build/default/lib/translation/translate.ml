module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Scan = Scanins.Scan
module Chain = Scanins.Chain
module Scan_test = Scanins.Scan_test

(* A scan-shift vector: x on the primary inputs, scan_sel = 1, scan_inp per
   chain as directed by [feed frame chain]. *)
let shift_vectors scan ~count ~feed =
  let width = Circuit.input_count scan.Scan.circuit in
  Array.init count (fun t ->
      let v = Array.make width Logic.X in
      v.(Scan.sel_position scan) <- Logic.One;
      Array.iter
        (fun ch ->
          let j = ch.Chain.index in
          v.(Scan.inp_position scan ~chain:j) <- feed t j)
        scan.Scan.chains;
      v)

(* Scan-in of [si] (chain-position indexed, as in Scan_test): chain [j] of
   length [l] receives its deepest bit first during the last [l] of the
   [nsv] shift cycles. *)
let load_vectors scan si =
  let nsv = Scan.nsv scan in
  (* Chain-local views of the scan-in state. *)
  let per_chain =
    Array.map
      (fun ch ->
        let l = Chain.length ch in
        let offset =
          (* Chains are contiguous chunks of the flip-flop list in order. *)
          let dffs = Circuit.dffs scan.Scan.circuit in
          let first = ch.Chain.ffs.(0) in
          let rec find k = if dffs.(k) = first then k else find (k + 1) in
          find 0
        in
        Array.init l (fun p -> si.(offset + p)))
      scan.Scan.chains
  in
  shift_vectors scan ~count:nsv ~feed:(fun t j ->
      let ch = scan.Scan.chains.(j) in
      let l = Chain.length ch in
      if t < nsv - l then Logic.X
      else begin
        let i = t - (nsv - l) in
        per_chain.(j).(l - 1 - i)
      end)

let functional_vector scan pi_vec =
  let width = Circuit.input_count scan.Scan.circuit in
  let v = Array.make width Logic.X in
  Array.blit pi_vec 0 v 0 (Array.length pi_vec);
  v.(Scan.sel_position scan) <- Logic.Zero;
  v

let run_sparse scan ~tests =
  let parts =
    List.concat_map
      (fun t ->
        let load = load_vectors scan t.Scan_test.scan_in in
        let func =
          Array.to_list (Array.map (functional_vector scan) t.Scan_test.vectors)
        in
        Array.to_list load @ func)
      tests
  in
  let closeout =
    shift_vectors scan ~count:(Scan.nsv scan) ~feed:(fun _ _ -> Logic.X)
  in
  Array.append (Array.of_list parts) closeout

let run scan ~tests ~rng =
  Logicsim.Vectors.fill_x rng (run_sparse scan ~tests)
