lib/translation/translate.ml: Array List Logicsim Netlist Scanins
