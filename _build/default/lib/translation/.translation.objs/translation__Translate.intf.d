lib/translation/translate.mli: Logicsim Prng Scanins
