(** Section-3 translation: a classical scan test set becomes one unified
    test sequence.

    Each test [(SI_i, T_i)] contributes [nsv] vectors with [scan_sel = 1]
    that scan [SI_i] in (and, overlapped, scan the previous test's response
    out), followed by [T_i] applied with [scan_sel = 0]; a final complete
    scan-out closes the sequence.  The resulting length is exactly the
    tester cycle count of the source set ([Scan_test.set_cycles]), and the
    sequence detects every fault the source set detects — but, unlike the
    source set, it is now an ordinary sequence over [C_scan] that non-scan
    compaction procedures can shorten freely. *)

(** [run scan ~tests ~rng] builds the unified sequence.  Unspecified values
    (primary inputs during scan operations, [scan_inp] during functional
    cycles, don't-care [SI] bits) are filled with random binary values, as
    in the paper. *)
val run :
  Scanins.Scan.t ->
  tests:Scanins.Scan_test.t list ->
  rng:Prng.Rng.t ->
  Logicsim.Vectors.t

(** [run_sparse scan ~tests] is {!run} without the random fill: unspecified
    entries stay [X] (useful for inspecting the translation itself, as in
    the paper's Table 3). *)
val run_sparse : Scanins.Scan.t -> tests:Scanins.Scan_test.t list -> Logicsim.Vectors.t
