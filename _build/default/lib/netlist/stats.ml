type t = {
  inputs : int;
  outputs : int;
  dffs : int;
  gates : int;
  nodes : int;
  depth : int;
  pins : int;
  max_fanout : int;
  multi_fanout_stems : int;
}

let of_circuit c =
  let lv = Levelize.of_circuit c in
  let pins = ref 0 and max_fanout = ref 0 and multi = ref 0 in
  Array.iter
    (fun nd ->
      (match nd.Circuit.kind with
       | Gate.Input -> ()
       | _ -> pins := !pins + Array.length nd.Circuit.fanins);
      let fo = Circuit.fanout_count c nd.Circuit.id in
      if fo > !max_fanout then max_fanout := fo;
      if fo > 1 then incr multi)
    (Circuit.nodes c);
  {
    inputs = Circuit.input_count c;
    outputs = Circuit.output_count c;
    dffs = Circuit.dff_count c;
    gates = Circuit.gate_count c;
    nodes = Circuit.node_count c;
    depth = lv.Levelize.depth;
    pins = !pins;
    max_fanout = !max_fanout;
    multi_fanout_stems = !multi;
  }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>inputs: %d@ outputs: %d@ dffs: %d@ gates: %d@ nodes: %d@ depth: %d@ \
     pins: %d@ max fanout: %d@ multi-fanout stems: %d@]"
    s.inputs s.outputs s.dffs s.gates s.nodes s.depth s.pins s.max_fanout
    s.multi_fanout_stems
