(** Structural cones and sub-circuit extraction.

    The fan-in cone of a set of nodes is everything that can influence them;
    extracting it as a standalone combinational circuit (with the crossed
    flip-flop outputs and primary inputs as its inputs) is the standard way
    to isolate the logic relevant to one output or one fault site for
    debugging and reporting. *)

(** [fanin_cone c ~sequential roots] is the set of node ids reachable
    backwards from [roots] (inclusive).  With [sequential = false] the walk
    stops at flip-flop outputs (they are cone inputs); with
    [sequential = true] it continues through the flip-flops' data inputs.
    The result is sorted. *)
val fanin_cone : Circuit.t -> sequential:bool -> int list -> int list

(** [extract c ~roots ~name] builds the combinational fan-in cone of
    [roots] as a standalone circuit: every primary input and flip-flop
    output feeding the cone becomes a primary input (flip-flops keep their
    names), the roots become the outputs.  Node names are preserved.
    @raise Invalid_argument when [roots] is empty or contains sources. *)
val extract : Circuit.t -> roots:int list -> name:string -> Circuit.t
