(** Scalar three-valued logic.

    The simulators and the test generator manipulate signals over the
    three-valued domain [{0, 1, X}] where [X] stands for an unknown (or
    unspecified) value.  The operations below implement the standard
    pessimistic extension of Boolean operators to this domain. *)

type t =
  | Zero
  | One
  | X  (** unknown / don't-care *)

val equal : t -> t -> bool

(** [is_binary v] is [true] iff [v] is [Zero] or [One]. *)
val is_binary : t -> bool

val of_bool : bool -> t

(** [to_bool v] is [Some b] when [v] is binary and [None] for [X]. *)
val to_bool : t -> bool option

(** [of_char c] parses ['0'], ['1'], ['x'] or ['X'].
    @raise Invalid_argument on any other character. *)
val of_char : char -> t

val to_char : t -> char

val bnot : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t

(** [mux sel a b] is [a] when [sel = Zero] and [b] when [sel = One].  When
    [sel = X] the result is the common value of [a] and [b] if they agree on
    a binary value, and [X] otherwise. *)
val mux : t -> t -> t -> t

val pp : Format.formatter -> t -> unit
