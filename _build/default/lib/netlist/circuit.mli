(** Gate-level sequential netlists.

    A circuit is a flat array of named nodes.  Node [id]s are dense and
    stable; [Input] and [Dff] nodes are the sources of the combinational
    graph ([Dff] ids denote the flip-flop *outputs*, i.e. present-state
    variables), every other node is a combinational gate.  A circuit also
    records which node values are observed as primary outputs.

    Circuits are immutable once built.  Use {!Builder} to construct one;
    [Builder.build] validates arities, reference integrity and combinational
    acyclicity. *)

exception Invalid_circuit of string

type node = private {
  id : int;
  name : string;
  kind : Gate.kind;
  fanins : int array;  (** ids of driver nodes, in pin order *)
}

type t

(** {1 Construction} *)

module Builder : sig
  type circuit := t
  type t

  val create : ?name:string -> unit -> t

  (** [add_input b name] declares a primary input.  Inputs appear in the
      built circuit in declaration order. *)
  val add_input : t -> string -> unit

  (** [add_gate b name kind fanins] declares a gate (or a [Dff]) driven by
      the signals named [fanins].  Forward references are allowed: a fanin
      may be declared later.
      @raise Invalid_circuit on duplicate signal names. *)
  val add_gate : t -> string -> Gate.kind -> string list -> unit

  (** [add_output b name] marks signal [name] as a primary output.  The same
      signal may be both internal and observed.  Declaration order is kept. *)
  val add_output : t -> string -> unit

  (** Validates and freezes the circuit.
      @raise Invalid_circuit on dangling references, arity violations,
      duplicate outputs, or combinational cycles (cycles through [Dff]s are
      legal). *)
  val build : t -> circuit
end

(** {1 Accessors} *)

val name : t -> string
val node_count : t -> int

(** @raise Invalid_argument when [id] is out of range. *)
val node : t -> int -> node

val nodes : t -> node array

(** Primary input node ids, in declaration order. *)
val inputs : t -> int array

(** Observed node ids, in declaration order. *)
val outputs : t -> int array

(** Flip-flop node ids, in declaration order (this order defines the scan
    chain order used by scan insertion). *)
val dffs : t -> int array

(** [fanout c id] is the array of node ids having [id] among their fanins
    (with multiplicity collapsed; a gate appears once even if [id] feeds two
    of its pins). *)
val fanout : t -> int -> int array

(** [fanout_count c id] counts fanin *pins* driven by [id] plus one per
    primary-output observation — the electrical fanout used by the fault
    model. *)
val fanout_count : t -> int -> int

val find : t -> string -> int option

(** @raise Not_found when no signal has this name. *)
val id_of_name_exn : t -> string -> int

val is_output : t -> int -> bool
val is_input : t -> int -> bool
val is_dff : t -> int -> bool

(** {1 Derived counts} *)

val input_count : t -> int
val output_count : t -> int
val dff_count : t -> int
val gate_count : t -> int  (** nodes that are neither [Input] nor [Dff] *)

(** {1 Rewriting} *)

(** [remap c ~rename] returns a copy of [c] with every node name passed
    through [rename].  @raise Invalid_circuit if [rename] causes a clash. *)
val remap : t -> rename:(string -> string) -> t

val pp_summary : Format.formatter -> t -> unit
