let fanin_cone c ~sequential roots =
  let seen = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      let nd = Circuit.node c id in
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff -> if sequential then Array.iter visit nd.Circuit.fanins
      | _ -> Array.iter visit nd.Circuit.fanins
    end
  in
  List.iter visit roots;
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) seen [])

let extract c ~roots ~name =
  if roots = [] then invalid_arg "Cone.extract: empty roots";
  List.iter
    (fun r ->
      match (Circuit.node c r).Circuit.kind with
      | Gate.Input | Gate.Dff -> invalid_arg "Cone.extract: root is a source"
      | _ -> ())
    roots;
  let cone = fanin_cone c ~sequential:false roots in
  let b = Circuit.Builder.create ~name () in
  let node_name id = (Circuit.node c id).Circuit.name in
  (* Sources of the cone (PIs and crossed flip-flop outputs) become primary
     inputs, in original id order for determinism. *)
  List.iter
    (fun id ->
      let nd = Circuit.node c id in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> Circuit.Builder.add_input b nd.Circuit.name
      | _ -> ())
    cone;
  List.iter
    (fun id ->
      let nd = Circuit.node c id in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | k ->
        Circuit.Builder.add_gate b nd.Circuit.name k
          (List.map node_name (Array.to_list nd.Circuit.fanins)))
    cone;
  List.iter (fun r -> Circuit.Builder.add_output b (node_name r)) roots;
  Circuit.Builder.build b
