(** SCOAP testability measures (Goldstein's controllability/observability).

    [cc0]/[cc1] estimate how many input assignments/clock cycles are needed
    to drive a node to 0/1; [co] estimates the effort to observe a node at
    a primary output.  Sequential depth is handled by charging one extra
    unit across every flip-flop and iterating to a fixpoint.  All values
    saturate at {!infinite}; a node whose measure stays saturated is
    structurally uncontrollable/unobservable.

    The ATPG engine uses these as branch-ordering heuristics: pick the
    easiest input when one controlling value suffices, the hardest first
    when all inputs must be set, and extend the D-frontier through the most
    observable gate. *)

type t = private {
  cc0 : int array;  (** per node id *)
  cc1 : int array;
  co : int array;
}

val infinite : int

(** [compute c] iterates controllability forward and observability backward
    until a fixpoint (bounded by the circuit's sequential depth). *)
val compute : Circuit.t -> t

(** Effort to set node [n] to binary value [v]. *)
val cc : t -> n:int -> v:bool -> int

val pp_node : t -> Circuit.t -> Format.formatter -> int -> unit
