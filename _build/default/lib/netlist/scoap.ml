type t = {
  cc0 : int array;
  cc1 : int array;
  co : int array;
}

let infinite = 1 lsl 28

let sat_add a b = min infinite (a + b)

let sat_sum3 a b c = min infinite (min infinite (a + b) + c)

type work = {
  c : Circuit.t;
  order : int array;
  w0 : int array;
  w1 : int array;
}

(* One forward controllability pass; returns true if anything changed. *)
let cc_pass ({ c; order; w0; w1 } : work) =
  let changed = ref false in
  let update n v0 v1 =
    if v0 < w0.(n) then begin
      w0.(n) <- v0;
      changed := true
    end;
    if v1 < w1.(n) then begin
      w1.(n) <- v1;
      changed := true
    end
  in
  (* Flip-flops first: their outputs depend on the previous iteration's
     data-input values, plus one sequential unit. *)
  Array.iter
    (fun ff ->
      let d = (Circuit.node c ff).Circuit.fanins.(0) in
      update ff (sat_add w0.(d) 1) (sat_add w1.(d) 1))
    (Circuit.dffs c);
  Array.iter
    (fun n ->
      let nd = Circuit.node c n in
      let f = nd.Circuit.fanins in
      let v0, v1 =
        match nd.Circuit.kind with
        | Gate.Buf -> w0.(f.(0)), w1.(f.(0))
        | Gate.Not -> w1.(f.(0)), w0.(f.(0))
        | Gate.And | Gate.Nand ->
          let all1 = Array.fold_left (fun acc i -> sat_add acc w1.(i)) 0 f in
          let any0 = Array.fold_left (fun acc i -> min acc w0.(i)) infinite f in
          if nd.Circuit.kind = Gate.And then any0, all1 else all1, any0
        | Gate.Or | Gate.Nor ->
          let all0 = Array.fold_left (fun acc i -> sat_add acc w0.(i)) 0 f in
          let any1 = Array.fold_left (fun acc i -> min acc w1.(i)) infinite f in
          if nd.Circuit.kind = Gate.Or then all0, any1 else any1, all0
        | Gate.Xor | Gate.Xnor ->
          (* Fold pairwise: cost of parity 0 / parity 1. *)
          let p0 = ref w0.(f.(0)) and p1 = ref w1.(f.(0)) in
          for i = 1 to Array.length f - 1 do
            let q0 = w0.(f.(i)) and q1 = w1.(f.(i)) in
            let n0 = min (sat_add !p0 q0) (sat_add !p1 q1) in
            let n1 = min (sat_add !p0 q1) (sat_add !p1 q0) in
            p0 := n0;
            p1 := n1
          done;
          if nd.Circuit.kind = Gate.Xor then !p0, !p1 else !p1, !p0
        | Gate.Mux ->
          let s = f.(0) and a = f.(1) and b = f.(2) in
          ( min (sat_add w0.(s) w0.(a)) (sat_add w1.(s) w0.(b)),
            min (sat_add w0.(s) w1.(a)) (sat_add w1.(s) w1.(b)) )
        | Gate.Input | Gate.Dff -> w0.(n), w1.(n)
      in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | _ -> update n (sat_add v0 1) (sat_add v1 1))
    order;
  !changed

(* One backward observability pass over [co]; returns true on change. *)
let co_pass (c : Circuit.t) order (cc0 : int array) (cc1 : int array)
    (co : int array) =
  let changed = ref false in
  let update n v =
    if v < co.(n) then begin
      co.(n) <- v;
      changed := true
    end
  in
  Array.iter (fun o -> update o 0) (Circuit.outputs c);
  (* Flip-flops: observing the data input means observing the flip-flop
     output one cycle later. *)
  Array.iter
    (fun ff ->
      let d = (Circuit.node c ff).Circuit.fanins.(0) in
      update d (sat_add co.(ff) 1))
    (Circuit.dffs c);
  (* Gates in reverse topological order. *)
  for i = Array.length order - 1 downto 0 do
    let n = order.(i) in
    let nd = Circuit.node c n in
    let f = nd.Circuit.fanins in
    let base = co.(n) in
    if base < infinite then
      match nd.Circuit.kind with
      | Gate.Buf | Gate.Not -> update f.(0) (sat_add base 1)
      | Gate.And | Gate.Nand ->
        Array.iteri
          (fun i_pin pin ->
            let side = ref 0 in
            Array.iteri
              (fun j other -> if j <> i_pin then side := sat_add !side cc1.(other))
              f;
            update pin (sat_sum3 base !side 1))
          f
      | Gate.Or | Gate.Nor ->
        Array.iteri
          (fun i_pin pin ->
            let side = ref 0 in
            Array.iteri
              (fun j other -> if j <> i_pin then side := sat_add !side cc0.(other))
              f;
            update pin (sat_sum3 base !side 1))
          f
      | Gate.Xor | Gate.Xnor ->
        Array.iteri
          (fun i_pin pin ->
            let side = ref 0 in
            Array.iteri
              (fun j other ->
                if j <> i_pin then
                  side := sat_add !side (min cc0.(other) cc1.(other)))
              f;
            update pin (sat_sum3 base !side 1))
          f
      | Gate.Mux ->
        let s = f.(0) and a = f.(1) and b = f.(2) in
        update a (sat_sum3 base cc0.(s) 1);
        update b (sat_sum3 base cc1.(s) 1);
        (* The select is observable when the data inputs differ. *)
        let differ =
          min (sat_add cc0.(a) cc1.(b)) (sat_add cc1.(a) cc0.(b))
        in
        update s (sat_sum3 base differ 1)
      | Gate.Input | Gate.Dff -> ()
  done;
  !changed

let compute c =
  let n = Circuit.node_count c in
  let lv = Levelize.of_circuit c in
  let w0 = Array.make n infinite and w1 = Array.make n infinite in
  Array.iter
    (fun i ->
      w0.(i) <- 1;
      w1.(i) <- 1)
    (Circuit.inputs c);
  let work = { c; order = lv.Levelize.order; w0; w1 } in
  (* Fixpoint: values only decrease and are bounded, so this terminates;
     the iteration count is further capped defensively. *)
  let cap = 4 + (2 * Circuit.dff_count c) in
  let rec iterate k = if k < cap && cc_pass work then iterate (k + 1) in
  iterate 0;
  let co = Array.make n infinite in
  let rec iterate_co k =
    if k < cap && co_pass c lv.Levelize.order w0 w1 co then iterate_co (k + 1)
  in
  iterate_co 0;
  { cc0 = w0; cc1 = w1; co }

let cc t ~n ~v = if v then t.cc1.(n) else t.cc0.(n)

let pp_node t c fmt n =
  Format.fprintf fmt "%s: cc0=%d cc1=%d co=%d" (Circuit.node c n).Circuit.name
    t.cc0.(n) t.cc1.(n) t.co.(n)
