(** Gate primitives and their three-valued semantics.

    The primitive set is the ISCAS-89 [.bench] set extended with a
    three-input multiplexer, which scan insertion places in front of every
    scan flip-flop.  A [Dff] node represents the flip-flop *output* (present
    state); its single fanin is the next-state data input sampled at each
    clock. *)

type kind =
  | Input  (** primary input; no fanins *)
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Mux  (** fanins [[|sel; a; b|]]: output is [a] when [sel=0], [b] when [sel=1] *)
  | Dff  (** state element; fanin [[|d|]] is the next-state input *)

val equal_kind : kind -> kind -> bool

(** [arity k] is [Some n] when kind [k] requires exactly [n] fanins, and
    [None] for the n-ary gates ([And], [Nand], [Or], [Nor], [Xor], [Xnor])
    which accept two or more. *)
val arity : kind -> int option

(** Canonical upper-case [.bench] mnemonic ([AND], [DFF], ...). *)
val to_string : kind -> string

(** Inverse of {!to_string}, case-insensitive.  [BUFF] is accepted as an
    alias for [BUF]. *)
val of_string : string -> kind option

(** [eval k args] evaluates a combinational gate of kind [k] over
    three-valued inputs.  [Input] and [Dff] are sources and must not be
    evaluated here.
    @raise Invalid_argument on [Input], [Dff], or an arity violation. *)
val eval : kind -> Logic.t array -> Logic.t

(** [controlling k] is [Some c] when a single input at value [c] fixes the
    gate output regardless of the other inputs ([And]/[Nand]: 0, [Or]/[Nor]:
    1); [None] otherwise. *)
val controlling : kind -> Logic.t option

(** [inversion k] is [true] when the gate output inverts with respect to its
    (non-controlling) inputs: [Not], [Nand], [Nor], [Xnor]. *)
val inversion : kind -> bool

val pp_kind : Format.formatter -> kind -> unit
