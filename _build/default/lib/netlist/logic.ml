type t =
  | Zero
  | One
  | X

let equal a b =
  match a, b with
  | Zero, Zero | One, One | X, X -> true
  | (Zero | One | X), _ -> false

let is_binary = function
  | Zero | One -> true
  | X -> false

let of_bool b = if b then One else Zero

let to_bool = function
  | Zero -> Some false
  | One -> Some true
  | X -> None

let of_char = function
  | '0' -> Zero
  | '1' -> One
  | 'x' | 'X' -> X
  | c -> invalid_arg (Printf.sprintf "Logic.of_char: %C" c)

let to_char = function
  | Zero -> '0'
  | One -> '1'
  | X -> 'x'

let bnot = function
  | Zero -> One
  | One -> Zero
  | X -> X

let band a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | (One | X), (One | X) -> X

let bor a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | (Zero | X), (Zero | X) -> X

let bxor a b =
  match a, b with
  | X, _ | _, X -> X
  | Zero, Zero | One, One -> Zero
  | Zero, One | One, Zero -> One

let mux sel a b =
  match sel with
  | Zero -> a
  | One -> b
  | X ->
    (* Pessimistic: only a common binary value survives an unknown select. *)
    if equal a b && is_binary a then a else X

let pp fmt v = Format.pp_print_char fmt (to_char v)
