type kind =
  | Input
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Mux
  | Dff

let equal_kind (a : kind) (b : kind) = a = b

let arity = function
  | Input -> Some 0
  | Buf | Not | Dff -> Some 1
  | Mux -> Some 3
  | And | Nand | Or | Nor | Xor | Xnor -> None

let to_string = function
  | Input -> "INPUT"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Mux -> "MUX"
  | Dff -> "DFF"

let of_string s =
  match String.uppercase_ascii s with
  | "INPUT" -> Some Input
  | "BUF" | "BUFF" -> Some Buf
  | "NOT" -> Some Not
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "MUX" -> Some Mux
  | "DFF" -> Some Dff
  | _ -> None

let check_arity k n =
  match arity k with
  | Some a when a <> n ->
    invalid_arg
      (Printf.sprintf "Gate.eval: %s expects %d fanins, got %d" (to_string k) a n)
  | Some _ -> ()
  | None ->
    if n < 2 then
      invalid_arg
        (Printf.sprintf "Gate.eval: %s expects >= 2 fanins, got %d" (to_string k) n)

let fold_assoc op (args : Logic.t array) =
  let acc = ref args.(0) in
  for i = 1 to Array.length args - 1 do
    acc := op !acc args.(i)
  done;
  !acc

let eval k (args : Logic.t array) =
  let n = Array.length args in
  check_arity k n;
  match k with
  | Input | Dff -> invalid_arg "Gate.eval: source node"
  | Buf -> args.(0)
  | Not -> Logic.bnot args.(0)
  | And -> fold_assoc Logic.band args
  | Nand -> Logic.bnot (fold_assoc Logic.band args)
  | Or -> fold_assoc Logic.bor args
  | Nor -> Logic.bnot (fold_assoc Logic.bor args)
  | Xor -> fold_assoc Logic.bxor args
  | Xnor -> Logic.bnot (fold_assoc Logic.bxor args)
  | Mux -> Logic.mux args.(0) args.(1) args.(2)

let controlling = function
  | And | Nand -> Some Logic.Zero
  | Or | Nor -> Some Logic.One
  | Input | Buf | Not | Xor | Xnor | Mux | Dff -> None

let inversion = function
  | Not | Nand | Nor | Xnor -> true
  | Input | Buf | And | Or | Xor | Mux | Dff -> false

let pp_kind fmt k = Format.pp_print_string fmt (to_string k)
