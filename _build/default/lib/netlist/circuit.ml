exception Invalid_circuit of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_circuit s)) fmt

type node = {
  id : int;
  name : string;
  kind : Gate.kind;
  fanins : int array;
}

type t = {
  circuit_name : string;
  nodes : node array;
  inputs : int array;
  outputs : int array;
  dffs : int array;
  fanouts : int array array;
  by_name : (string, int) Hashtbl.t;
  output_set : bool array;
  pin_fanout : int array;  (* fanin pins driven + output observations *)
}

module Builder = struct
  type proto = {
    p_name : string;
    p_kind : Gate.kind;
    p_fanins : string list;
  }

  type b = {
    mutable protos : proto list;  (* reversed *)
    mutable outs : string list;  (* reversed *)
    tbl : (string, unit) Hashtbl.t;
    bname : string;
  }

  type t = b

  let create ?(name = "circuit") () =
    { protos = []; outs = []; tbl = Hashtbl.create 64; bname = name }

  let declare b name kind fanins =
    if Hashtbl.mem b.tbl name then invalid "duplicate signal %S" name;
    Hashtbl.add b.tbl name ();
    b.protos <- { p_name = name; p_kind = kind; p_fanins = fanins } :: b.protos

  let add_input b name = declare b name Gate.Input []

  let add_gate b name kind fanins =
    (match kind with
     | Gate.Input -> invalid "use add_input for %S" name
     | _ -> ());
    declare b name kind fanins

  let add_output b name = b.outs <- name :: b.outs

  let build b =
    let protos = Array.of_list (List.rev b.protos) in
    let n = Array.length protos in
    let by_name = Hashtbl.create (2 * n) in
    Array.iteri (fun i p -> Hashtbl.replace by_name p.p_name i) protos;
    let resolve ctx s =
      match Hashtbl.find_opt by_name s with
      | Some i -> i
      | None -> invalid "%s references undeclared signal %S" ctx s
    in
    let nodes =
      Array.mapi
        (fun i p ->
          let fanins = Array.of_list (List.map (resolve p.p_name) p.p_fanins) in
          let nf = Array.length fanins in
          (match Gate.arity p.p_kind with
           | Some a when a <> nf ->
             invalid "%S: %s expects %d fanins, got %d" p.p_name
               (Gate.to_string p.p_kind) a nf
           | Some _ -> ()
           | None ->
             if nf < 2 then
               invalid "%S: %s expects >= 2 fanins, got %d" p.p_name
                 (Gate.to_string p.p_kind) nf);
          { id = i; name = p.p_name; kind = p.p_kind; fanins })
        protos
    in
    let outputs =
      Array.of_list (List.rev_map (resolve "OUTPUT list") b.outs)
    in
    let output_set = Array.make n false in
    Array.iter
      (fun o ->
        if output_set.(o) then invalid "duplicate OUTPUT %S" nodes.(o).name;
        output_set.(o) <- true)
      outputs;
    let inputs, dffs =
      let ins = ref [] and ffs = ref [] in
      Array.iter
        (fun nd ->
          match nd.kind with
          | Gate.Input -> ins := nd.id :: !ins
          | Gate.Dff -> ffs := nd.id :: !ffs
          | _ -> ())
        nodes;
      Array.of_list (List.rev !ins), Array.of_list (List.rev !ffs)
    in
    (* Combinational acyclicity: DFS over fanins, treating Input/Dff as
       sources.  0 = white, 1 = on stack, 2 = done. *)
    let mark = Array.make n 0 in
    let rec visit i =
      match nodes.(i).kind with
      | Gate.Input | Gate.Dff -> ()
      | _ ->
        if mark.(i) = 1 then
          invalid "combinational cycle through %S" nodes.(i).name;
        if mark.(i) = 0 then begin
          mark.(i) <- 1;
          Array.iter visit nodes.(i).fanins;
          mark.(i) <- 2
        end
    in
    Array.iteri (fun i _ -> visit i) nodes;
    let fanout_lists = Array.make n [] in
    let pin_fanout = Array.make n 0 in
    Array.iter
      (fun nd ->
        let seen = Hashtbl.create 4 in
        Array.iter
          (fun f ->
            pin_fanout.(f) <- pin_fanout.(f) + 1;
            if not (Hashtbl.mem seen f) then begin
              Hashtbl.add seen f ();
              fanout_lists.(f) <- nd.id :: fanout_lists.(f)
            end)
          nd.fanins)
      nodes;
    Array.iter (fun o -> pin_fanout.(o) <- pin_fanout.(o) + 1) outputs;
    let fanouts =
      Array.map (fun l -> Array.of_list (List.rev l)) fanout_lists
    in
    {
      circuit_name = b.bname;
      nodes;
      inputs;
      outputs;
      dffs;
      fanouts;
      by_name;
      output_set;
      pin_fanout;
    }
end

let name c = c.circuit_name
let node_count c = Array.length c.nodes

let node c i =
  if i < 0 || i >= Array.length c.nodes then
    invalid_arg (Printf.sprintf "Circuit.node: id %d out of range" i);
  c.nodes.(i)

let nodes c = c.nodes
let inputs c = c.inputs
let outputs c = c.outputs
let dffs c = c.dffs
let fanout c i = c.fanouts.(i)
let fanout_count c i = c.pin_fanout.(i)
let find c s = Hashtbl.find_opt c.by_name s

let id_of_name_exn c s =
  match find c s with
  | Some i -> i
  | None -> raise Not_found

let is_output c i = c.output_set.(i)
let is_input c i = c.nodes.(i).kind = Gate.Input
let is_dff c i = c.nodes.(i).kind = Gate.Dff
let input_count c = Array.length c.inputs
let output_count c = Array.length c.outputs
let dff_count c = Array.length c.dffs

let gate_count c =
  Array.fold_left
    (fun acc nd ->
      match nd.kind with
      | Gate.Input | Gate.Dff -> acc
      | _ -> acc + 1)
    0 c.nodes

let remap c ~rename =
  let b = Builder.create ~name:c.circuit_name () in
  Array.iter
    (fun nd ->
      let fanins = List.map (fun f -> rename c.nodes.(f).name) (Array.to_list nd.fanins) in
      match nd.kind with
      | Gate.Input -> Builder.add_input b (rename nd.name)
      | k -> Builder.add_gate b (rename nd.name) k fanins)
    c.nodes;
  Array.iter (fun o -> Builder.add_output b (rename c.nodes.(o).name)) c.outputs;
  Builder.build b

let pp_summary fmt c =
  Format.fprintf fmt "%s: %d inputs, %d outputs, %d DFFs, %d gates (%d nodes)"
    c.circuit_name (input_count c) (output_count c) (dff_count c)
    (gate_count c) (node_count c)
