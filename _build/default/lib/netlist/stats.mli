(** Structural statistics over a circuit, used by reports and by the
    synthetic benchmark generator's self-checks. *)

type t = {
  inputs : int;
  outputs : int;
  dffs : int;
  gates : int;
  nodes : int;
  depth : int;  (** combinational depth *)
  pins : int;  (** total fanin pins of combinational gates and DFFs *)
  max_fanout : int;
  multi_fanout_stems : int;  (** nodes with electrical fanout > 1 *)
}

val of_circuit : Circuit.t -> t
val pp : Format.formatter -> t -> unit
