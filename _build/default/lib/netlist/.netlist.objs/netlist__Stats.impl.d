lib/netlist/stats.ml: Array Circuit Format Gate Levelize
