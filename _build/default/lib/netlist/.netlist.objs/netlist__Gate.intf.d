lib/netlist/gate.mli: Format Logic
