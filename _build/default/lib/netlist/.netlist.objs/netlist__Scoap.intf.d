lib/netlist/scoap.mli: Circuit Format
