lib/netlist/bench_format.ml: Array Buffer Circuit Filename Format Fun Gate List Printf String
