lib/netlist/cone.mli: Circuit
