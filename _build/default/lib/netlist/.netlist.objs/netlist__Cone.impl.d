lib/netlist/cone.ml: Array Circuit Gate Hashtbl List
