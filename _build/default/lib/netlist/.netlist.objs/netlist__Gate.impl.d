lib/netlist/gate.ml: Array Format Logic Printf String
