lib/netlist/scoap.ml: Array Circuit Format Gate Levelize
