lib/netlist/logic.ml: Format Printf
