lib/netlist/levelize.mli: Circuit
