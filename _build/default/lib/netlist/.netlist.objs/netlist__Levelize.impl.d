lib/netlist/levelize.ml: Array Circuit Fun Gate List
