(** Simulation-based test generation (greedy hill climbing).

    The family of generators the paper's "second approach" references [6-9]
    build on: no branch-and-bound search, only candidate vectors scored by
    fault simulation.  Each step proposes a pool of candidate vectors —
    biased-random ones and single-bit mutations of the previous winner —
    and commits the one that detects the most faults, breaking ties by the
    number of fault effects latched into flip-flops (progress towards a
    future detection, measured word-parallel).  The walk stops after a run
    of non-improving steps or at the vector budget.

    This engine is deliberately orthogonal to {!Podem}: it needs no
    structural analysis at all, and serves both as a coverage workhorse and
    as an experimental point of comparison for the deterministic flow. *)

type config = {
  candidates : int;  (** pool size per step *)
  stall_limit : int;  (** consecutive non-improving steps tolerated *)
  max_vectors : int;
  sel_one_percent : int;  (** probability (%) that a candidate shifts the chain *)
}

val default_config : config

(** [extend session model ~scan_sel_position ~rng cfg] grows the running
    session vector by vector and returns the committed vectors. *)
val extend :
  Logicsim.Faultsim.t ->
  Faultmodel.Model.t ->
  scan_sel_position:int ->
  rng:Prng.Rng.t ->
  config ->
  Logicsim.Vectors.t
