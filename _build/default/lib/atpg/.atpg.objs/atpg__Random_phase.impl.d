lib/atpg/random_phase.ml: Array Faultmodel List Logicsim Netlist Prng
