lib/atpg/seq_atpg.mli: Faultmodel Logicsim Netlist
