lib/atpg/simgen.mli: Faultmodel Logicsim Prng
