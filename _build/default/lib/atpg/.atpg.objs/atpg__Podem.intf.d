lib/atpg/podem.mli: Faultmodel Logicsim Netlist
