lib/atpg/random_phase.mli: Faultmodel Logicsim Prng
