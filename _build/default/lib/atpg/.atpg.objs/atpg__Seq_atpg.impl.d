lib/atpg/seq_atpg.ml: Faultmodel Netlist Podem
