lib/atpg/simgen.ml: Array Faultmodel List Logicsim Netlist Prng
