lib/atpg/scan_knowledge.mli: Logicsim Netlist Prng Scanins
