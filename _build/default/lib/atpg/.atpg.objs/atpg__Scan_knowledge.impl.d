lib/atpg/scan_knowledge.ml: Array Hashtbl Logicsim Netlist Prng Scanins
