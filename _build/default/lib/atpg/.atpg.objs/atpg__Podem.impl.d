lib/atpg/podem.ml: Array Faultmodel Hashtbl List Logicsim Netlist Stack
