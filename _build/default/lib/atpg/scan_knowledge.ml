module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Scan = Scanins.Scan
module Chain = Scanins.Chain

type t = {
  scan : Scan.t;
  position : (int * int) array;  (* dff index -> chain, position *)
  width : int;  (* inputs of C_scan *)
}

let create scan =
  let c = scan.Scan.circuit in
  let dffs = Circuit.dffs c in
  let by_node = Hashtbl.create (Array.length dffs) in
  Array.iter
    (fun ch ->
      Array.iteri
        (fun pos ff -> Hashtbl.replace by_node ff (ch.Chain.index, pos))
        ch.Chain.ffs)
    scan.Scan.chains;
  let position =
    Array.map
      (fun ff ->
        match Hashtbl.find_opt by_node ff with
        | Some cp -> cp
        | None -> invalid_arg "Scan_knowledge.create: flip-flop not on a chain")
      dffs
  in
  { scan; position; width = Circuit.input_count c }

let scan t = t.scan
let chain_position t ~dff = t.position.(dff)

(* A vector with random primary inputs and [scan_sel = 1]. *)
let shift_vector t rng =
  let v = Logicsim.Vectors.random rng ~width:t.width in
  v.(Scan.sel_position t.scan) <- Logic.One;
  v

let drain t ~rng ~dff =
  let chain_idx, pos = t.position.(dff) in
  let chain = t.scan.Scan.chains.(chain_idx) in
  (* [shifts] cycles move the effect into the last flip-flop; one more frame
     samples it on scan_out. *)
  let n = Chain.shifts_to_observe chain ~position:pos + 1 in
  Array.init n (fun _ -> shift_vector t rng)

let load t ~rng ~state =
  let nsv = Scan.nsv t.scan in
  let vecs = Array.init nsv (fun _ -> shift_vector t rng) in
  Array.iter
    (fun ch ->
      let l = Chain.length ch in
      let inp_pos = Scan.inp_position t.scan ~chain:ch.Chain.index in
      (* Feed the deepest position first; a chain shorter than [nsv] only
         cares about its last [l] frames. *)
      for i = 0 to l - 1 do
        let frame = nsv - l + i in
        let dff_node = ch.Chain.ffs.(l - 1 - i) in
        let dff_idx =
          let dffs = Circuit.dffs t.scan.Scan.circuit in
          let rec find k =
            if dffs.(k) = dff_node then k else find (k + 1)
          in
          find 0
        in
        let bit =
          match state.(dff_idx) with
          | Logic.X -> Logic.of_bool (Prng.Rng.bool rng)
          | b -> b
        in
        vecs.(frame).(inp_pos) <- bit
      done)
    t.scan.Scan.chains;
  vecs
