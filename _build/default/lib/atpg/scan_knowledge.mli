(** Functional-level knowledge of scan (Section 2 of the paper).

    Two helpers around the generic sequential ATPG:

    - {b drain}: when a fault effect is latched at chain position [p], a run
      of [N - p] vectors with [scan_sel = 1] (N the chain length) shifts it
      to [scan_out] where it is observed; remaining input bits are random.
    - {b load}: an unjustifiable required state [s] can always be reached
      with [N] vectors of [scan_sel = 1] feeding [s] into [scan_inp] deepest
      position first.

    Both produce vectors over the inputs of [C_scan] in their declared
    order. *)

type t

(** [create scan] precomputes the flip-flop-index → (chain, position)
    mapping.  Flip-flop indices refer to [Circuit.dffs scan.circuit] order,
    which the simulators preserve. *)
val create : Scanins.Scan.t -> t

val scan : t -> Scanins.Scan.t

(** [chain_position t ~dff] locates a flip-flop index on its chain. *)
val chain_position : t -> dff:int -> int * int

(** [drain t ~rng ~dff] builds the shift run that brings a fault effect
    sitting in flip-flop [dff] to that chain's [scan_out]. *)
val drain : t -> rng:Prng.Rng.t -> dff:int -> Logicsim.Vectors.t

(** [load t ~rng ~state] builds the [nsv]-cycle load of [state] (indexed by
    flip-flop index; [X] bits are fed random values). *)
val load : t -> rng:Prng.Rng.t -> state:Netlist.Logic.t array -> Logicsim.Vectors.t
