module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim

type config = {
  candidates : int;
  stall_limit : int;
  max_vectors : int;
  sel_one_percent : int;
}

let default_config =
  { candidates = 8; stall_limit = 24; max_vectors = 2048; sel_one_percent = 20 }

let biased_vector cfg ~width ~scan_sel_position rng =
  let v = Logicsim.Vectors.random rng ~width in
  v.(scan_sel_position) <-
    Logic.of_bool (Prng.Rng.int rng 100 < cfg.sel_one_percent);
  v

let mutate rng v =
  let v = Array.copy v in
  let flips = 1 + Prng.Rng.int rng 2 in
  for _ = 1 to flips do
    let i = Prng.Rng.int rng (Array.length v) in
    v.(i) <- Logic.bnot v.(i)
  done;
  v

(* Score of applying [vec] from the session's current states: detections
   weigh heaviest, then newly latched fault effects. *)
let score session model targets vec =
  let probe =
    Faultsim.create
      ~good_state:(Faultsim.good_state session)
      ~faulty_states:(Faultsim.faulty_state session)
      model ~fault_ids:targets
  in
  Faultsim.advance probe [| vec |];
  (10_000 * Faultsim.detected_count probe) + Faultsim.effect_bits probe

let extend session model ~scan_sel_position ~rng cfg =
  let width = Circuit.input_count model.Model.circuit in
  let committed = ref [] in
  let count = ref 0 in
  let stall = ref 0 in
  let previous = ref (biased_vector cfg ~width ~scan_sel_position rng) in
  let baseline_effects = ref (Faultsim.effect_bits session) in
  while !stall < cfg.stall_limit && !count < cfg.max_vectors
        && Array.length (Faultsim.undetected session) > 0 do
    let targets = Faultsim.undetected session in
    let pool =
      Array.init cfg.candidates (fun i ->
          if i < cfg.candidates / 2 then
            biased_vector cfg ~width ~scan_sel_position rng
          else mutate rng !previous)
    in
    let best = ref pool.(0) and best_score = ref min_int in
    Array.iter
      (fun vec ->
        let s = score session model targets vec in
        if s > !best_score then begin
          best_score := s;
          best := vec
        end)
      pool;
    (* Commit the winner; progress = a detection or more latched effects
       than before the step. *)
    Faultsim.advance session [| !best |];
    committed := !best :: !committed;
    incr count;
    previous := !best;
    let effects = Faultsim.effect_bits session in
    if !best_score >= 10_000 || effects > !baseline_effects then stall := 0
    else incr stall;
    baseline_effects := effects
  done;
  Array.of_list (List.rev !committed)
