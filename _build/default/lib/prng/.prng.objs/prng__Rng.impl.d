lib/prng/rng.ml: Array Char Int64 String
