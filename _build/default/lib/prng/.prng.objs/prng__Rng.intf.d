lib/prng/rng.mli:
