(** Scan-based test generation in the style of the paper's comparator [26]
    (the "second approach"): complete scan operations only, [scan_sel] held
    at 0 during functional cycles, tests of the form [(SI, T)] with [T] one
    or more primary-input vectors.

    For each undetected fault, PODEM searches with a free initial state
    (the scan-in gives full state controllability) over growing frame
    counts; every generated test is then fault-simulated under classical
    scan semantics ({!Detect}) to drop collaterally-detected faults.

    This stands in for [26] — the published heuristics are unavailable, but
    the family (complete scan operations, multi-vector [T]) is the property
    the paper's comparison exercises; see DESIGN.md §3. *)

type result = {
  tests : Scanins.Scan_test.t list;  (** in generation order *)
  detected : int array;  (** fault ids covered by [tests] *)
  undetected : int array;
}

(** [generate ?extend ?seed scan model cfg] runs the generator.  After each
    deterministic test is found, up to [extend] (default 6) random
    primary-input vectors are greedily appended to its [T] while each grows
    the test's detection count — the multi-vector functional sequences that
    give the "second approach" its edge over one-vector-per-scan tests. *)
val generate :
  ?extend:int ->
  ?seed:int64 ->
  Scanins.Scan.t ->
  Faultmodel.Model.t ->
  Atpg.Seq_atpg.config ->
  result

(** Tester cycles of a test list under complete scan operations. *)
val cycles : Scanins.Scan.t -> Scanins.Scan_test.t list -> int
