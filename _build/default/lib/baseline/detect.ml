module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Scan = Scanins.Scan
module Scan_test = Scanins.Scan_test
module Faultsim = Logicsim.Faultsim

(* Widen a test's primary-input vectors to C_scan's input space with
   scan_sel = 0 and scan_inp unspecified. *)
let widen scan vectors =
  let width = Circuit.input_count scan.Scan.circuit in
  Array.map
    (fun pi_vec ->
      let v = Array.make width Logic.X in
      Array.blit pi_vec 0 v 0 (Array.length pi_vec);
      v.(Scan.sel_position scan) <- Logic.Zero;
      v)
    vectors

let test scan model ~fault_ids t =
  if Array.length fault_ids = 0 then [||]
  else begin
    let state = t.Scan_test.scan_in in
    let session =
      Faultsim.create ~good_state:state ~faulty_states:(fun _ -> state) model
        ~fault_ids
    in
    Faultsim.advance session (widen scan t.Scan_test.vectors);
    let detected = ref [] in
    Array.iter
      (fun fid ->
        let po_hit = Faultsim.detection_time session fid <> None in
        let state_hit = (not po_hit) && Faultsim.ff_effects session fid <> [] in
        if po_hit || state_hit then detected := fid :: !detected)
      fault_ids;
    Array.of_list (List.rev !detected)
  end

let set scan model ~fault_ids tests =
  let remaining = ref fault_ids in
  let all = ref [] in
  List.iter
    (fun t ->
      if Array.length !remaining > 0 then begin
        let d = test scan model ~fault_ids:!remaining t in
        all := d :: !all;
        let dset = Hashtbl.create (Array.length d) in
        Array.iter (fun fid -> Hashtbl.replace dset fid ()) d;
        remaining :=
          Array.of_list
            (List.filter
               (fun fid -> not (Hashtbl.mem dset fid))
               (Array.to_list !remaining))
      end)
    tests;
  Array.concat (List.rev !all)
