(** Static compaction of scan test sets: reverse-order test dropping.

    Tests are examined in reverse generation order; a test is kept only if
    it detects some target fault not detected by the tests already kept.
    This is the standard test-set-level compaction available to "second
    approach" flows — it can only drop whole tests (whole complete scan
    operations), never shorten one, which is exactly the limitation the
    paper's unified representation removes. *)

(** [run scan model ~fault_ids tests] returns the kept tests in their
    original relative order. *)
val run :
  Scanins.Scan.t ->
  Faultmodel.Model.t ->
  fault_ids:int array ->
  Scanins.Scan_test.t list ->
  Scanins.Scan_test.t list
