module Circuit = Netlist.Circuit
module Logic = Netlist.Logic
module Scan = Scanins.Scan
module Scan_test = Scanins.Scan_test
module Model = Faultmodel.Model

type result = {
  tests : Scan_test.t list;
  detected : int array;
  undetected : int array;
}

let cycles scan tests = Scan_test.set_cycles ~nsv:(Scan.nsv scan) tests

(* Restrict a C_scan vector to the original primary inputs. *)
let narrow scan vectors =
  Array.map
    (fun v -> Array.sub v 0 scan.Scan.original_pi_count)
    vectors

let generate ?(extend = 6) ?(seed = 0x26BA5EL) scan model cfg =
  let rng = Prng.Rng.of_string seed (Circuit.name model.Model.circuit) in
  let nf = Model.fault_count model in
  let all_ids = Array.init nf Fun.id in
  let undet = Hashtbl.create nf in
  Array.iter (fun fid -> Hashtbl.add undet fid ()) all_ids;
  let remaining () =
    Array.of_list
      (List.filter (Hashtbl.mem undet) (Array.to_list all_ids))
  in
  let fixed = [ (Scan.sel_position scan, Logic.Zero) ] in
  (* Free-state searches get full controllability from the scan-in; deep
     unrolls add little and cost much. *)
  let cfg =
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    { cfg with Atpg.Seq_atpg.depths = take 3 cfg.Atpg.Seq_atpg.depths }
  in
  let tests = ref [] in
  Array.iter
    (fun fid ->
      if Hashtbl.mem undet fid then begin
        match Atpg.Seq_atpg.detect_free model cfg ~fault:fid ~fixed_inputs:fixed () with
        | None -> ()
        | Some (state, vectors) ->
          let t =
            { Scan_test.scan_in = state; vectors = narrow scan vectors }
          in
          let targets = remaining () in
          let hits = Detect.test scan model ~fault_ids:targets t in
          if Array.exists (fun h -> h = fid) hits then begin
            (* Greedy functional extension: keep appending a random vector
               while it buys extra detections. *)
            let npi = scan.Scan.original_pi_count in
            let rec grow t hits budget =
              if budget = 0 then t, hits
              else begin
                let v = Logicsim.Vectors.random rng ~width:npi in
                let t' =
                  { t with Scan_test.vectors = Array.append t.Scan_test.vectors [| v |] }
                in
                let hits' = Detect.test scan model ~fault_ids:targets t' in
                if Array.length hits' > Array.length hits then grow t' hits' (budget - 1)
                else t, hits
              end
            in
            let t, hits = grow t hits extend in
            tests := t :: !tests;
            Array.iter (fun h -> Hashtbl.remove undet h) hits
          end
      end)
    all_ids;
  let detected =
    Array.of_list
      (List.filter (fun fid -> not (Hashtbl.mem undet fid)) (Array.to_list all_ids))
  in
  { tests = List.rev !tests; detected; undetected = remaining () }
