let run scan model ~fault_ids tests =
  let detected = Hashtbl.create (Array.length fault_ids) in
  let kept = ref [] in
  List.iter
    (fun t ->
      let remaining =
        Array.of_list
          (List.filter
             (fun fid -> not (Hashtbl.mem detected fid))
             (Array.to_list fault_ids))
      in
      if Array.length remaining > 0 then begin
        let hits = Detect.test scan model ~fault_ids:remaining t in
        if Array.length hits > 0 then begin
          Array.iter (fun fid -> Hashtbl.replace detected fid ()) hits;
          kept := t :: !kept
        end
      end)
    (List.rev tests);
  !kept
