lib/baseline/detect.mli: Faultmodel Scanins
