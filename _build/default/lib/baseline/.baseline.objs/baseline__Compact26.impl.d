lib/baseline/compact26.ml: Array Detect Hashtbl List
