lib/baseline/compact26.mli: Faultmodel Scanins
