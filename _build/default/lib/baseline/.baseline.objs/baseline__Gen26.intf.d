lib/baseline/gen26.mli: Atpg Faultmodel Scanins
