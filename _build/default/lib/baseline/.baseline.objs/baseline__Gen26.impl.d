lib/baseline/gen26.ml: Array Atpg Detect Faultmodel Fun Hashtbl List Logicsim Netlist Prng Scanins
