lib/baseline/detect.ml: Array Hashtbl List Logicsim Netlist Scanins
