(** Detection semantics of classical scan-based tests.

    A test [(SI, T)] loads [SI] through the chain (the load is assumed
    fault-free, as in the classical combinational view), applies [T] with
    [scan_sel = 0], observes the primary outputs during every cycle of [T],
    and observes the final flip-flop state through the closing scan-out. *)

(** [test scan model ~fault_ids t] returns the subset of [fault_ids]
    detected by test [t]. *)
val test :
  Scanins.Scan.t ->
  Faultmodel.Model.t ->
  fault_ids:int array ->
  Scanins.Scan_test.t ->
  int array

(** [set scan model ~fault_ids tests] folds {!test} over a whole set. *)
val set :
  Scanins.Scan.t ->
  Faultmodel.Model.t ->
  fault_ids:int array ->
  Scanins.Scan_test.t list ->
  int array
