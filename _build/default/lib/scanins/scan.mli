(** Scan insertion: build [C_scan] from [C].

    For each flip-flop a multiplexer is placed in front of the data input;
    the select line of every mux is the new primary input [scan_sel], and
    the mux's scan-data pin is either the previous flip-flop of its chain or
    that chain's new primary input [scan_inp].  The last flip-flop of each
    chain is additionally observed as primary output [scan_out].  Flip-flops
    are chained in their declaration order (as in the paper), split into
    [chains] contiguous chunks for multi-chain designs.

    All original signal names are preserved, so a node of [C] can be looked
    up in [C_scan] by name. *)

type t = private {
  circuit : Netlist.Circuit.t;  (** the scan circuit [C_scan] *)
  original : Netlist.Circuit.t;  (** the source circuit [C] *)
  sel : int;  (** node id of [scan_sel] in [C_scan] *)
  chains : Chain.t array;
  original_pi_count : int;  (** inputs of [C_scan] before the scan inputs *)
}

(** [insert ?chains c] builds [C_scan] with the given number of scan chains
    (default 1).
    @raise Invalid_argument when [chains < 1], [chains] exceeds the
    flip-flop count, or [c] has no flip-flops. *)
val insert : ?chains:int -> Netlist.Circuit.t -> t

(** Length of the longest chain — the cost [N_SV] of one complete scan
    operation. *)
val nsv : t -> int

(** Positions (indices into [Circuit.inputs t.circuit]) of the scan inputs:
    [sel_position] then one [inp_position] per chain. *)
val sel_position : t -> int
val inp_position : t -> chain:int -> int

(** [chain_of_ff t ff] locates a flip-flop node id of [C_scan] on its chain:
    [(chain index, position)].  @raise Not_found for non-chain nodes. *)
val chain_of_ff : t -> int -> int * int

(** Names chosen for the scan signals (fresh w.r.t. the original netlist). *)
val sel_name : t -> string
val inp_name : t -> chain:int -> string
