lib/scanins/scan_test.ml: Array Format List Netlist String
