lib/scanins/scan_test.mli: Format Netlist
