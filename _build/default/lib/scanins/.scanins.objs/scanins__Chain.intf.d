lib/scanins/chain.mli:
