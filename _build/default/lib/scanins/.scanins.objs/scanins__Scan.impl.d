lib/scanins/scan.ml: Array Chain Hashtbl List Netlist Printf
