lib/scanins/scan.mli: Chain Netlist
