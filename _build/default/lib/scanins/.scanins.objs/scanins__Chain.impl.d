lib/scanins/chain.ml: Array
