module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type t = {
  circuit : Circuit.t;
  original : Circuit.t;
  sel : int;
  chains : Chain.t array;
  original_pi_count : int;
}

let fresh_name c base =
  if Circuit.find c base = None then base
  else begin
    let rec go i =
      let candidate = Printf.sprintf "%s_%d" base i in
      if Circuit.find c candidate = None then candidate else go (i + 1)
    in
    go 0
  end

let insert ?(chains = 1) c =
  let nff = Circuit.dff_count c in
  if chains < 1 then invalid_arg "Scan.insert: chains must be >= 1";
  if nff = 0 then invalid_arg "Scan.insert: circuit has no flip-flops";
  if chains > nff then invalid_arg "Scan.insert: more chains than flip-flops";
  let sel_name = fresh_name c "scan_sel" in
  let inp_names =
    Array.init chains (fun j ->
        if chains = 1 then fresh_name c "scan_inp"
        else fresh_name c (Printf.sprintf "scan_inp%d" j))
  in
  let b = Circuit.Builder.create ~name:(Circuit.name c ^ "_scan") () in
  let node_name i = (Circuit.node c i).Circuit.name in
  (* Original inputs first (preserving order), then scan_sel, then the scan
     inputs — this fixed layout is relied upon by sel/inp_position. *)
  Array.iter (fun i -> Circuit.Builder.add_input b (node_name i)) (Circuit.inputs c);
  Circuit.Builder.add_input b sel_name;
  Array.iter (fun n -> Circuit.Builder.add_input b n) inp_names;
  (* Chains: contiguous chunks of the declaration-order flip-flop list. *)
  let ffs = Circuit.dffs c in
  let chunk = (nff + chains - 1) / chains in
  let chain_ffs =
    Array.init chains (fun j ->
        let lo = j * chunk in
        let hi = min nff (lo + chunk) in
        Array.sub ffs lo (hi - lo))
  in
  let mux_name = Hashtbl.create nff in
  Array.iteri
    (fun _j cffs ->
      Array.iter
        (fun ff -> Hashtbl.replace mux_name ff (fresh_name c ("scanmux_" ^ node_name ff)))
        cffs)
    chain_ffs;
  (* Copy all nodes, redirecting each DFF's data input through its mux. *)
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff ->
        Circuit.Builder.add_gate b nd.Circuit.name Gate.Dff
          [ Hashtbl.find mux_name nd.Circuit.id ]
      | k ->
        Circuit.Builder.add_gate b nd.Circuit.name k
          (List.map node_name (Array.to_list nd.Circuit.fanins)))
    (Circuit.nodes c);
  (* The muxes: MUX(scan_sel, original_d, scan_path). *)
  Array.iteri
    (fun j cffs ->
      Array.iteri
        (fun pos ff ->
          let orig_d = node_name (Circuit.node c ff).Circuit.fanins.(0) in
          let scan_path =
            if pos = 0 then inp_names.(j) else node_name cffs.(pos - 1)
          in
          Circuit.Builder.add_gate b
            (Hashtbl.find mux_name ff)
            Gate.Mux
            [ sel_name; orig_d; scan_path ])
        cffs)
    chain_ffs;
  Array.iter (fun o -> Circuit.Builder.add_output b (node_name o)) (Circuit.outputs c);
  (* scan_out per chain: observe the last flip-flop (unless the original
     circuit already observes it). *)
  Array.iter
    (fun cffs ->
      let last = cffs.(Array.length cffs - 1) in
      if not (Circuit.is_output c last) then
        Circuit.Builder.add_output b (node_name last))
    chain_ffs;
  let circuit = Circuit.Builder.build b in
  let resolve name = Circuit.id_of_name_exn circuit name in
  let chains_meta =
    Array.mapi
      (fun j cffs ->
        {
          Chain.index = j;
          inp = resolve inp_names.(j);
          ffs = Array.map (fun ff -> resolve (node_name ff)) cffs;
        })
      chain_ffs
  in
  {
    circuit;
    original = c;
    sel = resolve sel_name;
    chains = chains_meta;
    original_pi_count = Circuit.input_count c;
  }

let nsv t = Array.fold_left (fun acc ch -> max acc (Chain.length ch)) 0 t.chains
let sel_position t = t.original_pi_count
let inp_position t ~chain = t.original_pi_count + 1 + chain

let chain_of_ff t ff =
  let found = ref None in
  Array.iter
    (fun ch ->
      if !found = None then
        match Chain.position ch ff with
        | pos -> found := Some (ch.Chain.index, pos)
        | exception Not_found -> ())
    t.chains;
  match !found with
  | Some r -> r
  | None -> raise Not_found

let sel_name t = (Circuit.node t.circuit t.sel).Circuit.name

let inp_name t ~chain =
  (Circuit.node t.circuit t.chains.(chain).Chain.inp).Circuit.name
