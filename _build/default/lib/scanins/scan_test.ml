module Logic = Netlist.Logic

type t = {
  scan_in : Logic.t array;
  vectors : Logic.t array array;
}

let test_cycles ~nsv t = Array.length t.vectors + nsv

let set_cycles ~nsv set =
  List.fold_left (fun acc t -> acc + test_cycles ~nsv t) nsv set

let scan_in_feed t =
  let n = Array.length t.scan_in in
  Array.init n (fun i -> t.scan_in.(n - 1 - i))

let pp fmt t =
  let string_of_vec v =
    String.init (Array.length v) (fun i -> Logic.to_char v.(i))
  in
  Format.fprintf fmt "@[<h>SI=%s T=%s@]" (string_of_vec t.scan_in)
    (String.concat " " (List.map string_of_vec (Array.to_list t.vectors)))
