(** Scan chain metadata.

    Positions are 0-based with position 0 adjacent to the scan input: under
    [scan_sel = 1] each clock shifts position [p]'s value into position
    [p+1], [scan_inp] into position 0, and the value of the last position is
    combinationally visible on [scan_out].  A fault effect latched at
    position [p] therefore needs [length - 1 - p] shift cycles before it is
    observable. *)

type t = {
  index : int;  (** chain number (0 for single-chain designs) *)
  inp : int;  (** node id of this chain's scan input in [C_scan] *)
  ffs : int array;  (** flip-flop node ids in shift order, position 0 first *)
}

val length : t -> int

(** Last flip-flop of the chain — the node observed as this chain's
    [scan_out]. *)
val out_node : t -> int

(** [position t ff] is the chain position of node [ff].
    @raise Not_found if [ff] is not on this chain. *)
val position : t -> int -> int

(** Shift cycles needed before a value latched at [position] reaches the
    chain's last flip-flop (0 when already there). *)
val shifts_to_observe : t -> position:int -> int
