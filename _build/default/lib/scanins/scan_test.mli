(** Classical scan-based tests [(SI, T)]: a state to scan in followed by a
    sequence of primary-input vectors applied with the chain in functional
    mode.  This is the representation produced by "first/second approach"
    generators (and by our [26]-style baseline) and consumed by the
    Section-3 translation. *)

type t = {
  scan_in : Netlist.Logic.t array;
  (** value to load at each chain position, position 0 (nearest the scan
      input) first; [X] entries are don't-cares *)
  vectors : Netlist.Logic.t array array;
  (** primary-input vectors over the original circuit's inputs, applied in
      order with [scan_sel = 0] *)
}

(** Tester cycles for one test under complete scan operations: [|T|] plus
    the [nsv] cycles of the scan operation that follows it (scan-out
    overlapped with the next test's scan-in). *)
val test_cycles : nsv:int -> t -> int

(** Cycles to apply a whole set: [nsv] to load the first test plus
    {!test_cycles} of every test — the paper's "[26] cyc" accounting. *)
val set_cycles : nsv:int -> t list -> int

(** [scan_in_feed t] is the order in which [scan_in] must be fed to
    [scan_inp]: deepest position first (i.e. [scan_in] reversed). *)
val scan_in_feed : t -> Netlist.Logic.t array

val pp : Format.formatter -> t -> unit
