type t = {
  index : int;
  inp : int;
  ffs : int array;
}

let length t = Array.length t.ffs

let out_node t = t.ffs.(Array.length t.ffs - 1)

let position t ff =
  let rec find i =
    if i >= Array.length t.ffs then raise Not_found
    else if t.ffs.(i) = ff then i
    else find (i + 1)
  in
  find 0

let shifts_to_observe t ~position = length t - 1 - position
