(* Fault diagnosis with the generated tests.

   Plays device-under-test: picks a "real" defect, simulates the failing
   device's responses to the compacted unified test sequence, and asks the
   diagnosis engine to locate the defect from the failure pattern alone.
   Equivalent faults are indistinguishable by any test, so the true fault
   is expected among the perfectly-explaining candidates. *)

module Model = Faultmodel.Model

let () =
  let c = Circuits.Iscas.s27 () in
  let scan = Scanins.Scan.insert c in
  let model = Model.build scan.Scanins.Scan.circuit in
  let sk = Atpg.Scan_knowledge.create scan in
  let cfg = Core.Config.for_circuit c in
  let flow = Core.Flow.generate cfg sk model in
  let seq = flow.Core.Flow.sequence in
  Printf.printf "test sequence: %d cycles, %.2f%% coverage\n" (Array.length seq)
    (Core.Flow.coverage flow);

  let rng = Prng.Rng.create 1861L in
  let trials = 10 in
  let located = ref 0 and ambiguous = ref 0 in
  for _ = 1 to trials do
    let truth = Prng.Rng.int rng (Model.fault_count model) in
    (* The failing device: its observed responses under the test. *)
    let observed = Core.Diagnose.response model ~fault:truth seq in
    let ranking = Core.Diagnose.run model seq ~observed () in
    let perfect = Core.Diagnose.perfect ranking in
    let hit = List.exists (fun c -> c.Core.Diagnose.fault = truth) perfect in
    Printf.printf "  defect %-12s -> %d perfect candidate(s)%s%s\n"
      (Model.fault_name model truth)
      (List.length perfect)
      (if hit then ", includes the true fault" else ", MISSED")
      (match perfect with
       | [ only ] when only.Core.Diagnose.fault = truth -> " (unique!)"
       | _ -> "");
    if hit then incr located;
    if List.length perfect > 1 then incr ambiguous
  done;
  Printf.printf
    "\nlocated the defect in %d/%d trials (%d had equivalence-class ties —\n\
     no test can distinguish faults the circuit makes equivalent).\n"
    !located trials !ambiguous
