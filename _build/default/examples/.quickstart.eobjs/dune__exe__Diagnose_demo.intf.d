examples/diagnose_demo.mli:
