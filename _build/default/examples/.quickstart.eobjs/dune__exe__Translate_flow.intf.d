examples/translate_flow.mli:
