examples/limited_scan_demo.ml: Array Atpg Circuits Compaction Core Faultmodel Hashtbl List Option Printf Scanins String
