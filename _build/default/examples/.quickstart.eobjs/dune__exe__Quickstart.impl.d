examples/quickstart.ml: Array Atpg Circuits Compaction Core Faultmodel List Netlist Printf Scanins
