examples/diagnose_demo.ml: Array Atpg Circuits Core Faultmodel List Printf Prng Scanins
