examples/limited_scan_demo.mli:
