examples/bench_file_flow.mli:
