examples/bench_file_flow.ml: Array Atpg Circuits Compaction Core Faultmodel Filename Format Netlist Printf Scanins
