examples/translate_flow.ml: Array Baseline Circuits Compaction Core Faultmodel Format List Logicsim Printf Prng Scanins Translation
