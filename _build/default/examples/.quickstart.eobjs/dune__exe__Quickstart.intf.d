examples/quickstart.mli:
