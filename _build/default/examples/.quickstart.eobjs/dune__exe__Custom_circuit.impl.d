examples/custom_circuit.ml: Array Atpg Compaction Core Faultmodel Format List Netlist Printf Scanins
