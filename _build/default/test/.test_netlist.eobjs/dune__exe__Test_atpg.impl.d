test/test_atpg.ml: Alcotest Array Atpg Circuits Faultmodel Fun Int64 List Logicsim Netlist Printf Prng QCheck2 QCheck_alcotest Scanins String
