test/test_circuits.ml: Alcotest Array Circuits Int64 List Netlist Prng QCheck2 QCheck_alcotest
