test/test_faultmodel.ml: Alcotest Array Circuits Faultmodel Int64 Logicsim Netlist Prng QCheck2 QCheck_alcotest Scanins
