test/test_core.ml: Alcotest Array Atpg Circuits Compaction Core Faultmodel List Logicsim Netlist Prng Scanins String
