test/test_logicsim.ml: Alcotest Array Circuits Faultmodel Fun Int64 List Logicsim Netlist Option Prng QCheck2 QCheck_alcotest Scanins
