test/test_scanins.mli:
