test/test_scanins.ml: Alcotest Array Circuits List Logicsim Netlist Prng QCheck2 QCheck_alcotest Scanins
