test/test_faultmodel.mli:
