test/test_diagnose.ml: Alcotest Array Circuits Core Faultmodel List Logicsim Netlist Prng Scanins String
