test/test_integration.ml: Alcotest Array Atpg Circuits Compaction Core Faultmodel List Logicsim Netlist Prng Scanins String
