test/test_translation.ml: Alcotest Array Baseline Circuits Faultmodel Fun List Logicsim Netlist Prng QCheck2 QCheck_alcotest Scanins String Translation
