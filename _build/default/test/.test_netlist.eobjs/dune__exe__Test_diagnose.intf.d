test/test_diagnose.mli:
