test/test_compaction.ml: Alcotest Array Circuits Compaction Faultmodel Fun Int64 Logicsim Netlist Prng QCheck2 QCheck_alcotest Scanins
