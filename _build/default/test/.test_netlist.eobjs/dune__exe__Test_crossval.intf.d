test/test_crossval.mli:
