test/test_crossval.ml: Alcotest Array Atpg Circuits Compaction Core Faultmodel Fun Hashtbl Int64 List Logicsim Netlist Option Prng QCheck2 QCheck_alcotest Scanins
