test/test_logicsim.mli:
