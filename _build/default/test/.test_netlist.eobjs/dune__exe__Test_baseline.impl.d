test/test_baseline.ml: Alcotest Array Atpg Baseline Circuits Faultmodel Fun Hashtbl List Logicsim Netlist Prng Scanins
