test/test_translation.mli:
