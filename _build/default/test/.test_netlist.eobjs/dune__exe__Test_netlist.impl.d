test/test_netlist.ml: Alcotest Array Circuits Int64 List Logicsim Netlist Prng QCheck2 QCheck_alcotest Scanins
