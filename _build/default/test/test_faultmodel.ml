(* Fault universe enumeration, equivalence collapsing rules, and the
   elaborated simulation model. *)

module C = Netlist.Circuit
module G = Netlist.Gate
module L = Netlist.Logic
module F = Faultmodel.Fault
module Collapse = Faultmodel.Collapse
module Model = Faultmodel.Model

(* A chain with a fanout point:  a -> inv -> g (AND with b), stem a also
   feeds h (OR with b).  a has electrical fanout 2. *)
let fanout_circuit () =
  let b = C.Builder.create ~name:"fan" () in
  C.Builder.add_input b "a";
  C.Builder.add_input b "b";
  C.Builder.add_gate b "inv" G.Not [ "a" ];
  C.Builder.add_gate b "g" G.And [ "inv"; "b" ];
  C.Builder.add_gate b "h" G.Or [ "a"; "b" ];
  C.Builder.add_output b "g";
  C.Builder.add_output b "h";
  C.Builder.build b

(* ------------------------------------------------------------ universe *)

let test_universe_counts () =
  let c = fanout_circuit () in
  let u = F.universe c in
  (* Stems: 5 nodes x 2.  Branches: a fans out to inv and h (plus nothing
     else); b fans out to g and h.  Both stems have fanout 2, so each of
     their 2+2 sink pins gets 2 faults: 8.  g and inv have fanout 1 (one
     observation or one pin). *)
  let stems = Array.length (C.nodes c) * 2 in
  Alcotest.(check int) "universe" (stems + 8) (Array.length u)

let test_universe_po_observation_counts_as_fanout () =
  (* g is observed as PO and feeds nothing else: fanout_count 1, no branch.
     In fanout_circuit, h is PO-observed only: also fanout 1. *)
  let c = fanout_circuit () in
  let g = C.id_of_name_exn c "g" in
  Alcotest.(check int) "g fanout" 1 (C.fanout_count c g);
  let a = C.id_of_name_exn c "a" in
  Alcotest.(check int) "a fanout" 2 (C.fanout_count c a)

let test_fault_names () =
  let c = fanout_circuit () in
  let g = C.id_of_name_exn c "g" in
  Alcotest.(check string) "stem" "g/1"
    (F.name c { F.site = F.Stem g; stuck = true });
  Alcotest.(check string) "branch" "g.in0/0"
    (F.name c { F.site = F.Branch { sink = g; pin = 0 }; stuck = false })

(* ------------------------------------------------------------ collapse *)

let class_of_fault (r : Collapse.result) f =
  let idx = ref (-1) in
  Array.iteri (fun i u -> if F.equal u f then idx := i) r.Collapse.universe;
  if !idx < 0 then Alcotest.fail "fault not in universe";
  r.Collapse.class_of.(!idx)

let test_collapse_inverter () =
  (* Fanout-free: inv input is a's stem; inv in-0 ≡ out-1, in-1 ≡ out-0
     does NOT apply here because a has fanout 2 → branch fault objects. *)
  let c = fanout_circuit () in
  let r = Collapse.run c in
  let inv = C.id_of_name_exn c "inv" in
  (* Branch a->inv pin0 stuck-0 ≡ inv stem stuck-1. *)
  let branch0 = { F.site = F.Branch { sink = inv; pin = 0 }; stuck = false } in
  let stem1 = { F.site = F.Stem inv; stuck = true } in
  Alcotest.(check int) "not: in/0 = out/1" (class_of_fault r stem1)
    (class_of_fault r branch0)

let test_collapse_and_gate () =
  let c = fanout_circuit () in
  let r = Collapse.run c in
  let g = C.id_of_name_exn c "g" in
  let inv = C.id_of_name_exn c "inv" in
  (* inv feeds only g: pin fault = inv stem fault; AND input sa0 ≡ output
     sa0. *)
  let inv_sa0 = { F.site = F.Stem inv; stuck = false } in
  let g_sa0 = { F.site = F.Stem g; stuck = false } in
  Alcotest.(check int) "and: in/0 = out/0" (class_of_fault r g_sa0)
    (class_of_fault r inv_sa0);
  (* ...and therefore also ≡ the inverter's input sa1 (branch of a). *)
  let a_branch_sa1 = { F.site = F.Branch { sink = inv; pin = 0 }; stuck = true } in
  Alcotest.(check int) "chained through inverter" (class_of_fault r g_sa0)
    (class_of_fault r a_branch_sa1)

let test_collapse_or_gate () =
  let c = fanout_circuit () in
  let r = Collapse.run c in
  let h = C.id_of_name_exn c "h" in
  let h_in0_sa1 = { F.site = F.Branch { sink = h; pin = 0 }; stuck = true } in
  let h_sa1 = { F.site = F.Stem h; stuck = true } in
  Alcotest.(check int) "or: in/1 = out/1" (class_of_fault r h_sa1)
    (class_of_fault r h_in0_sa1)

let test_collapse_reduces () =
  let c = Circuits.Iscas.s27 () in
  let r = Collapse.run c in
  Alcotest.(check bool) "fewer classes" true
    (Array.length r.Collapse.representatives < Array.length r.Collapse.universe);
  (* Every class id is in range and every representative's class maps to
     itself. *)
  Array.iter
    (fun cls ->
      Alcotest.(check bool) "class in range" true
        (cls >= 0 && cls < Array.length r.Collapse.representatives))
    r.Collapse.class_of

let test_collapse_no_cross_dff () =
  (* DFF input and output faults stay separate classes. *)
  let b = C.Builder.create ~name:"dffc" () in
  C.Builder.add_input b "a";
  C.Builder.add_gate b "q" G.Dff [ "inv" ];
  C.Builder.add_gate b "inv" G.Not [ "a" ];
  C.Builder.add_gate b "o" G.Buf [ "q" ];
  C.Builder.add_output b "o";
  let c = C.Builder.build b in
  let r = Collapse.run c in
  let q = C.id_of_name_exn c "q" and inv = C.id_of_name_exn c "inv" in
  Alcotest.(check bool) "dff in/out distinct" true
    (class_of_fault r { F.site = F.Stem inv; stuck = false }
     <> class_of_fault r { F.site = F.Stem q; stuck = false })

(* --------------------------------------------------------------- model *)

let test_model_mapping () =
  let c = fanout_circuit () in
  let m = Model.build c in
  Alcotest.(check int) "universe recorded" 18 m.Model.universe_size;
  (* Elaboration adds one buffer per branch pin of a multi-fanout stem:
     a -> inv, a -> h, b -> g, b -> h: 4 buffers. *)
  Alcotest.(check int) "elaborated nodes" (C.node_count c + 4)
    (C.node_count m.Model.circuit);
  (* Every fault maps to a valid node and original names survive. *)
  Array.iteri
    (fun i node ->
      ignore (C.node m.Model.circuit node);
      ignore (Model.fault_name m i))
    m.Model.fault_node;
  Array.iter
    (fun nd ->
      Alcotest.(check bool) "name kept" true
        (C.find m.Model.circuit nd.C.name <> None))
    (C.nodes c)

let test_model_branch_nodes_are_bufs () =
  let c = fanout_circuit () in
  let m = Model.build c in
  Array.iteri
    (fun i f ->
      match f.F.site with
      | F.Branch _ ->
        let nd = C.node m.Model.circuit m.Model.fault_node.(i) in
        Alcotest.(check bool) "branch -> buf" true (nd.C.kind = G.Buf)
      | F.Stem _ -> ())
    m.Model.faults

let test_model_functional_equivalence () =
  (* The elaborated circuit computes the same outputs as the base. *)
  let c = Circuits.Catalog.circuit "b02" in
  let scan = Scanins.Scan.insert c in
  let base = scan.Scanins.Scan.circuit in
  let m = Model.build base in
  let rng = Prng.Rng.create 5L in
  let seq =
    Logicsim.Vectors.random_seq rng ~width:(C.input_count base) ~length:100
  in
  let ob = Logicsim.Goodsim.run (Logicsim.Goodsim.create base) seq in
  let oe = Logicsim.Goodsim.run (Logicsim.Goodsim.create m.Model.circuit) seq in
  Array.iteri
    (fun i vb ->
      Array.iteri
        (fun j v ->
          if not (L.equal v oe.(i).(j)) then Alcotest.fail "PO mismatch")
        vb)
    ob

let test_model_map_node () =
  let c = fanout_circuit () in
  let m = Model.build c in
  Array.iter
    (fun nd ->
      let mapped = Model.map_node m nd.C.id in
      Alcotest.(check string) "same name" nd.C.name
        (C.node m.Model.circuit mapped).C.name)
    (C.nodes c)

let prop_collapse_classes_sound =
  (* On random circuits: representative count = max class + 1, classes
     total, and collapsing never mixes stuck values at the same site
     (a site's sa0 and sa1 are never equivalent). *)
  QCheck2.Test.make ~name:"collapse classes are well-formed" ~count:20
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let c =
        Circuits.Synthetic.generate ~name:"t" ~pis:4 ~ffs:5 ~gates:40
          ~seed:(Int64.of_int seed) ()
      in
      let r = Collapse.run c in
      let nclasses = Array.length r.Collapse.representatives in
      let max_cls = Array.fold_left max (-1) r.Collapse.class_of in
      let ok_shape = nclasses = max_cls + 1 in
      let ok_values =
        Array.for_all
          (fun f ->
            let f' = { f with F.stuck = not f.F.stuck } in
            let idx g =
              let r' = ref (-1) in
              Array.iteri (fun i u -> if F.equal u g then r' := i) r.Collapse.universe;
              !r'
            in
            r.Collapse.class_of.(idx f) <> r.Collapse.class_of.(idx f'))
          r.Collapse.universe
      in
      ok_shape && ok_values)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faultmodel"
    [
      ( "universe",
        [
          Alcotest.test_case "counts" `Quick test_universe_counts;
          Alcotest.test_case "fanout accounting" `Quick
            test_universe_po_observation_counts_as_fanout;
          Alcotest.test_case "names" `Quick test_fault_names;
        ] );
      ( "collapse",
        [
          Alcotest.test_case "inverter rule" `Quick test_collapse_inverter;
          Alcotest.test_case "and rule + chaining" `Quick test_collapse_and_gate;
          Alcotest.test_case "or rule" `Quick test_collapse_or_gate;
          Alcotest.test_case "reduces universe" `Quick test_collapse_reduces;
          Alcotest.test_case "no collapsing across DFFs" `Quick
            test_collapse_no_cross_dff;
          q prop_collapse_classes_sound;
        ] );
      ( "model",
        [
          Alcotest.test_case "fault mapping" `Quick test_model_mapping;
          Alcotest.test_case "branch nodes are buffers" `Quick
            test_model_branch_nodes_are_bufs;
          Alcotest.test_case "functional equivalence" `Quick
            test_model_functional_equivalence;
          Alcotest.test_case "map_node" `Quick test_model_map_node;
        ] );
    ]
