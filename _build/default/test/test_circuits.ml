(* Tests for the benchmark catalog: the deterministic RNG, the synthetic
   generator's structural guarantees, and the profile table. *)

module C = Netlist.Circuit
module P = Circuits.Profiles

(* ---------------------------------------------------------------- Rng *)

let test_rng_deterministic () =
  let a = Prng.Rng.create 99L and b = Prng.Rng.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Rng.next a) (Prng.Rng.next b)
  done

let test_rng_int_bounds () =
  let rng = Prng.Rng.create 1L in
  for _ = 1 to 10_000 do
    let v = Prng.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Prng.Rng.int rng 0))

let test_rng_labels_independent () =
  let a = Prng.Rng.of_string 5L "alpha" and b = Prng.Rng.of_string 5L "beta" in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Rng.next a = Prng.Rng.next b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_rng_split () =
  let parent = Prng.Rng.create 3L in
  let child = Prng.Rng.split parent in
  Alcotest.(check bool) "child differs from parent" true
    (Prng.Rng.next child <> Prng.Rng.next parent)

let test_rng_choose () =
  let rng = Prng.Rng.create 4L in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Prng.Rng.choose rng arr in
    Alcotest.(check bool) "member" true (Array.exists (fun x -> x = v) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Prng.Rng.choose rng [||]))

(* ---------------------------------------------------------- Synthetic *)

let gen ?(pis = 5) ?(ffs = 8) ?(gates = 60) ?(seed = 11L) () =
  Circuits.Synthetic.generate ~name:"t" ~pis ~ffs ~gates ~seed ()

let test_synth_shape () =
  let c = gen () in
  Alcotest.(check int) "pis" 5 (C.input_count c);
  Alcotest.(check int) "ffs" 8 (C.dff_count c);
  Alcotest.(check bool) "gates >= requested" true (C.gate_count c >= 60);
  Alcotest.(check bool) "has outputs" true (C.output_count c >= 1)

let test_synth_deterministic () =
  let a = Netlist.Bench_format.to_string (gen ()) in
  let b = Netlist.Bench_format.to_string (gen ()) in
  Alcotest.(check string) "same netlist" a b

let test_synth_seed_sensitivity () =
  let a = Netlist.Bench_format.to_string (gen ~seed:1L ()) in
  let b = Netlist.Bench_format.to_string (gen ~seed:2L ()) in
  Alcotest.(check bool) "different netlists" true (a <> b)

let test_synth_all_sources_used () =
  let c = gen ~pis:9 ~ffs:13 () in
  Array.iter
    (fun i ->
      if Array.length (C.fanout c i) = 0 && not (C.is_output c i) then
        Alcotest.failf "dangling source %s" (C.node c i).C.name)
    (C.inputs c);
  Array.iter
    (fun i ->
      if Array.length (C.fanout c i) = 0 && not (C.is_output c i) then
        Alcotest.failf "dangling flip-flop %s" (C.node c i).C.name)
    (C.dffs c)

let test_synth_all_gates_observable_or_consumed () =
  let c = gen () in
  Array.iter
    (fun nd ->
      match nd.C.kind with
      | Netlist.Gate.Input | Netlist.Gate.Dff -> ()
      | _ ->
        if Array.length (C.fanout c nd.C.id) = 0 && not (C.is_output c nd.C.id)
        then Alcotest.failf "dead gate %s" nd.C.name)
    (C.nodes c)

let test_synth_min_gates_raised () =
  (* Too few gates for the sources: the generator must raise the budget
     rather than leave sources dangling. *)
  let c = Circuits.Synthetic.generate ~name:"t" ~pis:30 ~ffs:30 ~gates:3 ~seed:7L () in
  Alcotest.(check bool) "raised" true (C.gate_count c >= 17)

let test_synth_invalid_args () =
  let inv f = Alcotest.(check bool) "rejects" true
      (match f () with exception Invalid_argument _ -> true | _ -> false) in
  inv (fun () -> Circuits.Synthetic.generate ~name:"t" ~pis:0 ~ffs:1 ~gates:5 ~seed:1L ());
  inv (fun () -> Circuits.Synthetic.generate ~name:"t" ~pis:1 ~ffs:(-1) ~gates:5 ~seed:1L ());
  inv (fun () -> Circuits.Synthetic.generate ~name:"t" ~pis:1 ~ffs:1 ~gates:0 ~seed:1L ())

let prop_synth_no_duplicate_fanins =
  QCheck2.Test.make ~name:"gates never repeat a fanin" ~count:15
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let c = gen ~seed:(Int64.of_int seed) () in
      Array.for_all
        (fun nd ->
          let l = Array.to_list nd.C.fanins in
          List.length l = List.length (List.sort_uniq compare l))
        (C.nodes c))

let prop_synth_valid =
  (* The builder validates acyclicity etc.; generation must never raise. *)
  QCheck2.Test.make ~name:"generator always builds a valid circuit" ~count:25
    QCheck2.Gen.(triple (int_range 1 8) (int_range 0 20) (int_range 4 120))
    (fun (pis, ffs, gates) ->
      let c = Circuits.Synthetic.generate ~name:"t" ~pis ~ffs ~gates ~seed:5L () in
      C.node_count c > 0)

(* ------------------------------------------------------------ Catalog *)

let test_catalog_names () =
  Alcotest.(check bool) "s27 present" true (List.mem "s27" Circuits.Catalog.names);
  Alcotest.(check int) "27 circuits" 27 (List.length Circuits.Catalog.names)

let test_catalog_s27_exact () =
  let c = Circuits.Catalog.circuit "s27" in
  Alcotest.(check int) "gates" 10 (C.gate_count c);
  Alcotest.(check bool) "not synthetic" false (Circuits.Catalog.is_synthetic "s27")

let test_catalog_profile_shapes () =
  List.iter
    (fun p ->
      let c = Circuits.Catalog.circuit p.P.name in
      Alcotest.(check int) (p.P.name ^ " pis") p.P.pis (C.input_count c);
      Alcotest.(check int) (p.P.name ^ " ffs") (P.ffs_at P.Quick p) (C.dff_count c))
    (List.filter (fun p -> P.gates_at P.Quick p <= 200) P.all)

let test_catalog_unknown () =
  Alcotest.(check bool) "raises" true
    (match Circuits.Catalog.circuit "nope" with
     | exception Not_found -> true
     | _ -> false)

let test_profiles_table7_subset () =
  List.iter
    (fun n ->
      Alcotest.(check bool) n true (List.exists (fun p -> p.P.name = n) P.all))
    P.table7_names

let test_profiles_scales () =
  let p = P.find_exn "s5378" in
  Alcotest.(check bool) "quick smaller" true (P.ffs_at P.Quick p < P.ffs_at P.Full p);
  let q = P.find_exn "s298" in
  Alcotest.(check int) "same when unscaled" (P.ffs_at P.Quick q) (P.ffs_at P.Full q)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "circuits"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "label independence" `Quick test_rng_labels_independent;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "choose" `Quick test_rng_choose;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "interface shape" `Quick test_synth_shape;
          Alcotest.test_case "deterministic" `Quick test_synth_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_synth_seed_sensitivity;
          Alcotest.test_case "sources consumed" `Quick test_synth_all_sources_used;
          Alcotest.test_case "no dead gates" `Quick test_synth_all_gates_observable_or_consumed;
          Alcotest.test_case "gate budget raised" `Quick test_synth_min_gates_raised;
          Alcotest.test_case "invalid arguments" `Quick test_synth_invalid_args;
          q prop_synth_no_duplicate_fanins;
          q prop_synth_valid;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "names" `Quick test_catalog_names;
          Alcotest.test_case "s27 exact" `Quick test_catalog_s27_exact;
          Alcotest.test_case "profile shapes" `Quick test_catalog_profile_shapes;
          Alcotest.test_case "unknown circuit" `Quick test_catalog_unknown;
          Alcotest.test_case "table7 subset" `Quick test_profiles_table7_subset;
          Alcotest.test_case "scales" `Quick test_profiles_scales;
        ] );
    ]
