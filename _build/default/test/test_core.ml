(* Core flow, testability pruning, report rendering and configuration. *)

module C = Netlist.Circuit
module G = Netlist.Gate
module L = Netlist.Logic
module Model = Faultmodel.Model

let setup name =
  let scan = Scanins.Scan.insert (Circuits.Catalog.circuit name) in
  scan, Model.build scan.Scanins.Scan.circuit

(* --------------------------------------------------------- testability *)

let test_testability_s27_all_testable () =
  let _, m = setup "s27" in
  let targets, redundant, unknown =
    Core.Testability.partition m ~backtrack_limit:2000
  in
  Alcotest.(check int) "no redundancy in s27_scan" 0 (Array.length redundant);
  Alcotest.(check int) "no unknowns" 0 (Array.length unknown);
  Alcotest.(check int) "all targeted" (Model.fault_count m) (Array.length targets)

let test_testability_finds_redundancy () =
  (* OR(a, AND(a,b)) — AND output stuck-at-0 is masked. *)
  let b = C.Builder.create ~name:"red" () in
  C.Builder.add_input b "a";
  C.Builder.add_input b "b";
  C.Builder.add_gate b "q" G.Dff [ "o" ];
  C.Builder.add_gate b "g" G.And [ "a"; "b" ];
  C.Builder.add_gate b "o" G.Or [ "a"; "g" ];
  C.Builder.add_output b "o";
  let m = Model.build (C.Builder.build b) in
  let _, redundant, _ = Core.Testability.partition m ~backtrack_limit:5000 in
  Alcotest.(check bool) "found redundancy" true (Array.length redundant > 0);
  (* Every proven-redundant fault really has no test: brute-force all 4
     input combinations from all 2 states, observing o and q'. *)
  Array.iter
    (fun fid ->
      let detected = ref false in
      for st = 0 to 1 do
        for a = 0 to 1 do
          for bv = 0 to 1 do
            let state = [| L.of_bool (st = 1) |] in
            let vec = [| L.of_bool (a = 1); L.of_bool (bv = 1) |] in
            let s =
              Logicsim.Faultsim.create ~good_state:state
                ~faulty_states:(fun _ -> state)
                m ~fault_ids:[| fid |]
            in
            Logicsim.Faultsim.advance s [| vec |];
            if
              Logicsim.Faultsim.detection_time s fid <> None
              || Logicsim.Faultsim.ff_effects s fid <> []
            then detected := true
          done
        done
      done;
      if !detected then
        Alcotest.failf "fault %s wrongly proven redundant" (Model.fault_name m fid))
    redundant

(* ---------------------------------------------------------------- flow *)

let test_flow_s27_full_coverage () =
  let scan, m = setup "s27" in
  let sk = Atpg.Scan_knowledge.create scan in
  let cfg = Core.Config.for_circuit scan.Scanins.Scan.original in
  let flow = Core.Flow.generate cfg sk m in
  Alcotest.(check int) "universe" 58 flow.Core.Flow.universe;
  Alcotest.(check int) "full coverage" flow.Core.Flow.targeted flow.Core.Flow.detected;
  Alcotest.(check (float 0.001)) "100%" 100.0 (Core.Flow.coverage flow);
  (* The sequence is fully specified. *)
  Array.iter
    (fun v -> Array.iter (fun b -> Alcotest.(check bool) "binary" true (L.is_binary b)) v)
    flow.Core.Flow.sequence;
  (* Detection accounting adds up. *)
  Alcotest.(check int) "attribution"
    flow.Core.Flow.detected
    (flow.Core.Flow.by_random + flow.Core.Flow.by_atpg + flow.Core.Flow.by_drain
     + flow.Core.Flow.by_justify);
  (* Targets carry consistent detection times. *)
  let t = flow.Core.Flow.targets in
  Alcotest.(check int) "target count" flow.Core.Flow.detected
    (Compaction.Target.count t);
  Array.iteri
    (fun i fid ->
      match Logicsim.Faultsim.detects_single m ~fault:fid flow.Core.Flow.sequence with
      | Some time -> Alcotest.(check int) "det time" time t.Compaction.Target.det_times.(i)
      | None -> Alcotest.fail "target not detected by sequence")
    t.Compaction.Target.fault_ids

let test_flow_without_random_phase () =
  let scan, m = setup "s27" in
  let sk = Atpg.Scan_knowledge.create scan in
  let cfg =
    { (Core.Config.for_circuit scan.Scanins.Scan.original) with
      Core.Config.random_phase = None }
  in
  let flow = Core.Flow.generate cfg sk m in
  Alcotest.(check int) "no random detections" 0 flow.Core.Flow.by_random;
  Alcotest.(check bool) "still near-full" true (Core.Flow.coverage flow > 95.0)

let test_flow_deterministic () =
  let scan, m = setup "s27" in
  let sk = Atpg.Scan_knowledge.create scan in
  let cfg = Core.Config.for_circuit scan.Scanins.Scan.original in
  let a = (Core.Flow.generate cfg sk m).Core.Flow.sequence in
  let b = (Core.Flow.generate cfg sk m).Core.Flow.sequence in
  Alcotest.(check int) "same length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i v ->
      Array.iteri
        (fun j x ->
          if not (L.equal x b.(i).(j)) then Alcotest.fail "nondeterministic")
        v)
    a

let test_flow_seed_changes_sequence () =
  let scan, m = setup "s27" in
  let sk = Atpg.Scan_knowledge.create scan in
  let base = Core.Config.for_circuit scan.Scanins.Scan.original in
  let a = (Core.Flow.generate base sk m).Core.Flow.sequence in
  let b =
    (Core.Flow.generate { base with Core.Config.seed = 999L } sk m).Core.Flow.sequence
  in
  let same =
    Array.length a = Array.length b
    && Array.for_all2 (fun v w -> Array.for_all2 L.equal v w) a b
  in
  Alcotest.(check bool) "different seed, different sequence" false same

(* -------------------------------------------------------------- report *)

let test_report_sequence_rendering () =
  let scan, _ = setup "s27" in
  let seq = [| Logicsim.Vectors.parse "010100"; Logicsim.Vectors.parse "1111x1" |] in
  let s = Core.Report.sequence scan seq in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 4 = "   t");
  (* Two data rows. *)
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "rows" 3 (List.length lines)

let test_report_scan_runs () =
  let scan, _ = setup "s27" in
  let mk sel =
    let v = Array.make 6 L.Zero in
    v.(4) <- sel;
    v
  in
  let seq = [| mk L.One; mk L.One; mk L.Zero; mk L.One; mk L.Zero; mk L.One |] in
  Alcotest.(check (list (pair int int))) "runs" [ (0, 2); (3, 1); (5, 1) ]
    (Core.Report.scan_runs scan seq)

let test_report_tables_render () =
  let row5 =
    { Core.Pipeline.name = "x"; inp = 5; stvr = 3; faults = 10; detected = 9;
      fcov = 90.0; funct = 1 }
  in
  let len = { Core.Pipeline.total = 10; scan = 4 } in
  let row6 =
    { Core.Pipeline.name = "x"; test_len = len; restor_len = len; omit_len = len;
      ext_det = 0; baseline_cycles = 42 }
  in
  let row7 =
    { Core.Pipeline.name = "x"; test_len = len; restor_len = len; omit_len = len;
      baseline_cycles = 42 }
  in
  let t5 = Core.Report.table5 [ row5 ] in
  let t6 = Core.Report.table6 [ row6 ] in
  let t7 = Core.Report.table7 [ row7 ] in
  List.iter
    (fun (s, frag) ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("contains " ^ frag) true (contains s frag))
    [ (t5, "90.00"); (t6, "42"); (t6, "total"); (t7, "42") ]

(* -------------------------------------------------------------- tester *)

let test_tester_expected_responses () =
  let scan, m = setup "s27" in
  let rng = Prng.Rng.create 71L in
  let seq =
    Logicsim.Vectors.random_seq rng
      ~width:(C.input_count m.Model.circuit) ~length:40
  in
  let program = Core.Tester.build scan.Scanins.Scan.circuit seq in
  Alcotest.(check int) "one cycle per vector" 40
    (Array.length program.Core.Tester.cycles);
  (* Expected responses must equal an independent good simulation. *)
  let sim = Logicsim.Goodsim.create scan.Scanins.Scan.circuit in
  Array.iteri
    (fun t cy ->
      Logicsim.Goodsim.step sim seq.(t);
      let po = Logicsim.Goodsim.po_values sim in
      Array.iteri
        (fun j v ->
          if not (L.equal v cy.Core.Tester.expected.(j)) then
            Alcotest.failf "cycle %d output %d" t j)
        po)
    program.Core.Tester.cycles;
  Alcotest.(check bool) "some cycles observe" true
    (Core.Tester.observing_cycles program > 10)

let test_tester_rendering () =
  let scan, m = setup "s27" in
  ignore m;
  let seq = [| Logicsim.Vectors.parse "010100" |] in
  let program = Core.Tester.build scan.Scanins.Scan.circuit seq in
  let text = Core.Tester.to_string program in
  let lines = String.split_on_char '\n' (String.trim text) in
  (* 4 header lines + 1 cycle. *)
  Alcotest.(check int) "lines" 5 (List.length lines);
  Alcotest.(check bool) "has separator" true
    (String.contains (List.nth lines 4) '|')

(* -------------------------------------------------------------- config *)

let test_config_for_circuit () =
  let c = Circuits.Catalog.circuit "s298" in
  let cfg = Core.Config.for_circuit c in
  Alcotest.(check bool) "depths non-empty" true
    (cfg.Core.Config.atpg.Atpg.Seq_atpg.depths <> []);
  Alcotest.(check int) "one chain default" 1 cfg.Core.Config.chains

let () =
  Alcotest.run "core"
    [
      ( "testability",
        [
          Alcotest.test_case "s27 all testable" `Quick test_testability_s27_all_testable;
          Alcotest.test_case "proves real redundancy" `Quick
            test_testability_finds_redundancy;
        ] );
      ( "flow",
        [
          Alcotest.test_case "s27 full coverage" `Quick test_flow_s27_full_coverage;
          Alcotest.test_case "no random phase" `Quick test_flow_without_random_phase;
          Alcotest.test_case "deterministic" `Quick test_flow_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_flow_seed_changes_sequence;
        ] );
      ( "report",
        [
          Alcotest.test_case "sequence rendering" `Quick test_report_sequence_rendering;
          Alcotest.test_case "scan runs" `Quick test_report_scan_runs;
          Alcotest.test_case "tables render" `Quick test_report_tables_render;
        ] );
      ( "csv",
        [
          Alcotest.test_case "table csv exports" `Quick (fun () ->
              let row5 =
                { Core.Pipeline.name = "c1"; inp = 5; stvr = 3; faults = 10;
                  detected = 9; fcov = 90.0; funct = 1 }
              in
              let len = { Core.Pipeline.total = 10; scan = 4 } in
              let row6 =
                { Core.Pipeline.name = "c1"; test_len = len; restor_len = len;
                  omit_len = len; ext_det = 2; baseline_cycles = 42 }
              in
              let row7 =
                { Core.Pipeline.name = "c1"; test_len = len; restor_len = len;
                  omit_len = len; baseline_cycles = 42 }
              in
              let lines s = String.split_on_char '\n' (String.trim s) in
              Alcotest.(check int) "t5 lines" 2
                (List.length (lines (Core.Report.table5_csv [ row5 ])));
              Alcotest.(check string) "t5 row" "c1,5,3,10,9,90.00,1"
                (List.nth (lines (Core.Report.table5_csv [ row5 ])) 1);
              Alcotest.(check string) "t6 row" "c1,10,4,10,4,10,4,2,42"
                (List.nth (lines (Core.Report.table6_csv [ row6 ])) 1);
              Alcotest.(check string) "t7 row" "c1,10,4,10,4,10,4,42"
                (List.nth (lines (Core.Report.table7_csv [ row7 ])) 1));
        ] );
      ( "tester",
        [
          Alcotest.test_case "expected responses" `Quick
            test_tester_expected_responses;
          Alcotest.test_case "rendering" `Quick test_tester_rendering;
        ] );
      ( "config",
        [ Alcotest.test_case "for_circuit" `Quick test_config_for_circuit ] );
    ]
