(* Section-3 translation: the translated sequence must have exactly the
   source set's tester cycle count, the right scan_sel structure, and —
   the paper's guarantee — detect every fault the source set detects. *)

module C = Netlist.Circuit
module L = Netlist.Logic
module Model = Faultmodel.Model
module Scan = Scanins.Scan
module Scan_test = Scanins.Scan_test
module Translate = Translation.Translate
module Vectors = Logicsim.Vectors

let mk_test si t_rows =
  {
    Scan_test.scan_in = Vectors.parse si;
    vectors = Array.of_list (List.map Vectors.parse t_rows);
  }

let s27 () = Scan.insert (Circuits.Iscas.s27 ())

let paper_table2 () =
  (* The paper's Table 2 test set for s27_scan. *)
  [
    mk_test "011" [ "0000" ];
    mk_test "011" [ "1101" ];
    mk_test "000" [ "1010" ];
    mk_test "110" [ "0100"; "0111"; "1001" ];
  ]

let test_length_equals_cycles () =
  let scan = s27 () in
  let tests = paper_table2 () in
  let seq = Translate.run_sparse scan ~tests in
  Alcotest.(check int) "length = cycle count"
    (Scan_test.set_cycles ~nsv:(Scan.nsv scan) tests)
    (Array.length seq);
  (* Paper Table 3 has 21 rows for this set. *)
  Alcotest.(check int) "21 rows like Table 3" 21 (Array.length seq)

let test_sel_structure () =
  (* scan_sel pattern: 3 ones, 1 zero, 3 ones, 1 zero, 3 ones, 1 zero,
     3 ones, 3 zeros, 3 ones (final scan-out). *)
  let scan = s27 () in
  let seq = Translate.run_sparse scan ~tests:(paper_table2 ()) in
  let sel = Scan.sel_position scan in
  let pattern = String.init (Array.length seq) (fun t -> L.to_char seq.(t).(sel)) in
  Alcotest.(check string) "sel pattern" "111011101110111000111" pattern

let test_scan_in_values () =
  (* First load: SI=011 must be fed reversed (1,1,0) — paper Table 3 rows
     0-2 show scan_inp = 1,1,0. *)
  let scan = s27 () in
  let seq = Translate.run_sparse scan ~tests:(paper_table2 ()) in
  let inp = Scan.inp_position scan ~chain:0 in
  Alcotest.(check string) "feed order" "110"
    (String.init 3 (fun t -> L.to_char seq.(t).(inp)))

let test_functional_vectors_copied () =
  let scan = s27 () in
  let seq = Translate.run_sparse scan ~tests:(paper_table2 ()) in
  (* Row 3 is T1 = 0000 with scan_sel = 0 (Table 3). *)
  let row3 = String.init 4 (fun i -> L.to_char seq.(3).(i)) in
  Alcotest.(check string) "T1" "0000" row3;
  Alcotest.(check bool) "sel low" true (L.equal seq.(3).(Scan.sel_position scan) L.Zero)

let test_fill_specifies_everything () =
  let scan = s27 () in
  let rng = Prng.Rng.create 33L in
  let seq = Translate.run scan ~tests:(paper_table2 ()) ~rng in
  Array.iter
    (fun v -> Array.iter (fun b -> Alcotest.(check bool) "binary" true (L.is_binary b)) v)
    seq

let test_translation_preserves_detection () =
  (* The paper's guarantee: the translated sequence detects everything the
     source set detects. *)
  let scan = s27 () in
  let m = Model.build scan.Scan.circuit in
  let all = Array.init (Model.fault_count m) Fun.id in
  let tests = paper_table2 () in
  let detected_by_set = Baseline.Detect.set scan m ~fault_ids:all tests in
  Alcotest.(check bool) "set detects something" true
    (Array.length detected_by_set > 20);
  let rng = Prng.Rng.create 34L in
  let seq = Translate.run scan ~tests ~rng in
  let times = Logicsim.Faultsim.detection_times m ~fault_ids:detected_by_set seq in
  Array.iteri
    (fun i t ->
      if t < 0 then
        Alcotest.failf "translation lost %s"
          (Model.fault_name m detected_by_set.(i)))
    times

let test_translation_multichain () =
  let c = Circuits.Catalog.circuit "s298" in
  let scan = Scan.insert ~chains:2 c in
  let m = Model.build scan.Scan.circuit in
  let nff = C.dff_count c in
  let rng = Prng.Rng.create 35L in
  let tests =
    [
      { Scan_test.scan_in = Array.init nff (fun k -> L.of_bool (k mod 2 = 0));
        vectors = [| Logicsim.Vectors.random rng ~width:3 |] };
    ]
  in
  let seq = Translate.run scan ~tests ~rng in
  Alcotest.(check int) "cycles" (Scan_test.set_cycles ~nsv:(Scan.nsv scan) tests)
    (Array.length seq);
  (* Simulate the load part: state after nsv cycles equals scan_in. *)
  let sim = Logicsim.Goodsim.create scan.Scan.circuit in
  Array.iteri (fun t v -> if t < Scan.nsv scan then Logicsim.Goodsim.step sim v) seq;
  let got = Logicsim.Goodsim.state sim in
  Array.iteri
    (fun k want ->
      if not (L.equal got.(k) want) then Alcotest.failf "ff %d wrong" k)
    (List.hd tests).Scan_test.scan_in;
  ignore m

let prop_translation_cycles =
  QCheck2.Test.make ~name:"translated length always equals set cycles" ~count:30
    QCheck2.Gen.(
      list_size (int_range 1 6)
        (pair
           (string_size ~gen:(oneofl [ '0'; '1'; 'x' ]) (return 3))
           (list_size (int_range 1 4)
              (string_size ~gen:(oneofl [ '0'; '1' ]) (return 4)))))
    (fun specs ->
      let scan = s27 () in
      let tests = List.map (fun (si, rows) -> mk_test si rows) specs in
      let seq = Translate.run_sparse scan ~tests in
      Array.length seq = Scan_test.set_cycles ~nsv:(Scan.nsv scan) tests)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "translation"
    [
      ( "structure",
        [
          Alcotest.test_case "length = cycles (Table 3)" `Quick test_length_equals_cycles;
          Alcotest.test_case "scan_sel pattern" `Quick test_sel_structure;
          Alcotest.test_case "scan-in feed order" `Quick test_scan_in_values;
          Alcotest.test_case "functional vectors" `Quick test_functional_vectors_copied;
          Alcotest.test_case "random fill" `Quick test_fill_specifies_everything;
          q prop_translation_cycles;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "detection preserved" `Quick
            test_translation_preserves_detection;
          Alcotest.test_case "multichain" `Quick test_translation_multichain;
        ] );
    ]
