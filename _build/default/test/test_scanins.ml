(* Scan insertion and classical scan-test representation: structure of
   C_scan, chain shift semantics checked by simulation, multi-chain
   insertion, tester cycle accounting. *)

module C = Netlist.Circuit
module L = Netlist.Logic
module Scan = Scanins.Scan
module Chain = Scanins.Chain
module Scan_test = Scanins.Scan_test

let s27_scan () = Scan.insert (Circuits.Iscas.s27 ())

(* ----------------------------------------------------------- structure *)

let test_insert_structure () =
  let s = s27_scan () in
  let cs = s.Scan.circuit in
  Alcotest.(check int) "inputs +2" 6 (C.input_count cs);
  Alcotest.(check int) "outputs +1" 2 (C.output_count cs);
  Alcotest.(check int) "same dffs" 3 (C.dff_count cs);
  Alcotest.(check int) "one mux per ff" (10 + 3) (C.gate_count cs);
  Alcotest.(check int) "nsv" 3 (Scan.nsv s);
  Alcotest.(check string) "sel name" "scan_sel" (Scan.sel_name s);
  Alcotest.(check string) "inp name" "scan_inp" (Scan.inp_name s ~chain:0)

let test_insert_positions () =
  let s = s27_scan () in
  Alcotest.(check int) "sel after orig PIs" 4 (Scan.sel_position s);
  Alcotest.(check int) "inp after sel" 5 (Scan.inp_position s ~chain:0)

let test_insert_preserves_names () =
  let s = s27_scan () in
  Array.iter
    (fun nd ->
      Alcotest.(check bool) ("kept " ^ nd.C.name) true
        (C.find s.Scan.circuit nd.C.name <> None))
    (C.nodes s.Scan.original)

let test_insert_chain_order () =
  (* Chain order must follow declaration order of the flip-flops. *)
  let s = s27_scan () in
  let names =
    Array.to_list
      (Array.map
         (fun ff -> (C.node s.Scan.circuit ff).C.name)
         s.Scan.chains.(0).Chain.ffs)
  in
  Alcotest.(check (list string)) "order" [ "G5"; "G6"; "G7" ] names

let test_insert_errors () =
  let inv f =
    Alcotest.(check bool) "rejects" true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  let c = Circuits.Iscas.s27 () in
  inv (fun () -> Scan.insert ~chains:0 c);
  inv (fun () -> Scan.insert ~chains:4 c);
  let comb =
    Netlist.Bench_format.parse_string ~name:"comb" "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n"
  in
  inv (fun () -> Scan.insert comb)

let test_insert_name_clash () =
  (* A design already using "scan_sel" forces a fresh name. *)
  let b = C.Builder.create ~name:"clash" () in
  C.Builder.add_input b "scan_sel";
  C.Builder.add_gate b "q" Netlist.Gate.Dff [ "d" ];
  C.Builder.add_gate b "d" Netlist.Gate.Not [ "q" ];
  C.Builder.add_gate b "o" Netlist.Gate.And [ "scan_sel"; "q" ];
  C.Builder.add_output b "o";
  let s = Scan.insert (C.Builder.build b) in
  Alcotest.(check bool) "fresh sel name" true (Scan.sel_name s <> "scan_sel")

(* ----------------------------------------- shift semantics (simulation) *)

let functional_mode_vector s ~sel ~inp =
  let cs = s.Scan.circuit in
  let v = Array.make (C.input_count cs) L.Zero in
  v.(Scan.sel_position s) <- sel;
  v.(Scan.inp_position s ~chain:0) <- inp;
  v

let test_shift_behaviour () =
  let s = s27_scan () in
  let sim = Logicsim.Goodsim.create s.Scan.circuit in
  (* Shift 1,0,1 in: state must become [1;0;1] along the chain. *)
  List.iter
    (fun bit -> Logicsim.Goodsim.step sim (functional_mode_vector s ~sel:L.One ~inp:bit))
    [ L.One; L.Zero; L.One ];
  (* Chain position p of the state: dffs order = chain order here. *)
  let st = Logicsim.Goodsim.state sim in
  Alcotest.(check bool) "pos0 = last fed" true (L.equal st.(0) L.One);
  Alcotest.(check bool) "pos1" true (L.equal st.(1) L.Zero);
  Alcotest.(check bool) "pos2 = first fed" true (L.equal st.(2) L.One)

let test_scan_out_observes_last_ff () =
  let s = s27_scan () in
  let sim = Logicsim.Goodsim.create s.Scan.circuit in
  (* Load all ones, then check scan_out over successive shifts of zeros. *)
  for _ = 1 to 3 do
    Logicsim.Goodsim.step sim (functional_mode_vector s ~sel:L.One ~inp:L.One)
  done;
  let out_node = Chain.out_node s.Scan.chains.(0) in
  (* scan_out equals the last flip-flop's current value each cycle. *)
  Logicsim.Goodsim.step sim (functional_mode_vector s ~sel:L.One ~inp:L.Zero);
  Alcotest.(check bool) "sees 1" true
    (L.equal (Logicsim.Goodsim.value sim out_node) L.One)

let test_functional_mode_matches_original () =
  (* With scan_sel = 0, C_scan behaves exactly like C. *)
  let c = Circuits.Iscas.s27 () in
  let s = Scan.insert c in
  let rng = Prng.Rng.create 77L in
  let sim_c = Logicsim.Goodsim.create c in
  let sim_s = Logicsim.Goodsim.create s.Scan.circuit in
  for _ = 1 to 100 do
    let pi = Logicsim.Vectors.random rng ~width:4 in
    let wide = Array.make 6 L.Zero in
    Array.blit pi 0 wide 0 4;
    wide.(4) <- L.Zero;
    wide.(5) <- L.of_bool (Prng.Rng.bool rng);
    Logicsim.Goodsim.step sim_c pi;
    Logicsim.Goodsim.step sim_s wide;
    let o_c = Logicsim.Goodsim.po_values sim_c in
    let o_s = Logicsim.Goodsim.po_values sim_s in
    (* First output of C_scan is G17, same as C's only output. *)
    Alcotest.(check bool) "same PO" true (L.equal o_c.(0) o_s.(0))
  done

(* ---------------------------------------------------------- multichain *)

let test_multichain_structure () =
  let c = Circuits.Catalog.circuit "s298" in
  let s = Scan.insert ~chains:3 c in
  Alcotest.(check int) "three chains" 3 (Array.length s.Scan.chains);
  let total =
    Array.fold_left (fun acc ch -> acc + Chain.length ch) 0 s.Scan.chains
  in
  Alcotest.(check int) "all ffs chained" (C.dff_count c) total;
  Alcotest.(check int) "nsv = longest chain" 5 (Scan.nsv s);
  Alcotest.(check int) "inputs +1+3" (3 + 1 + 3) (C.input_count s.Scan.circuit)

let test_chain_positions () =
  let s = s27_scan () in
  let ch = s.Scan.chains.(0) in
  Array.iteri
    (fun pos ff ->
      Alcotest.(check int) "position" pos (Chain.position ch ff);
      let c, p = Scan.chain_of_ff s ff in
      Alcotest.(check int) "chain idx" 0 c;
      Alcotest.(check int) "chain pos" pos p)
    ch.Chain.ffs;
  Alcotest.(check int) "shifts from pos0" 2 (Chain.shifts_to_observe ch ~position:0);
  Alcotest.(check int) "shifts from last" 0 (Chain.shifts_to_observe ch ~position:2)

(* ----------------------------------------------------------- scan_test *)

let test_cycles_math () =
  let t1 = { Scan_test.scan_in = [| L.One; L.Zero; L.One |]; vectors = [| [| L.One |] |] } in
  let t2 = { Scan_test.scan_in = [| L.X; L.X; L.X |];
             vectors = [| [| L.Zero |]; [| L.One |] |] } in
  Alcotest.(check int) "one test" (1 + 3) (Scan_test.test_cycles ~nsv:3 t1);
  (* Paper accounting: nsv + sum(|T_i| + nsv). *)
  Alcotest.(check int) "set" (3 + (1 + 3) + (2 + 3)) (Scan_test.set_cycles ~nsv:3 [ t1; t2 ])

let test_scan_in_feed_reversed () =
  let t = { Scan_test.scan_in = [| L.Zero; L.One; L.X |]; vectors = [||] } in
  let feed = Scan_test.scan_in_feed t in
  Alcotest.(check bool) "deepest first" true
    (L.equal feed.(0) L.X && L.equal feed.(1) L.One && L.equal feed.(2) L.Zero)

let prop_load_establishes_state =
  (* Feeding scan_in_feed through the chain leaves exactly scan_in in the
     flip-flops — the core identity the translation relies on. *)
  QCheck2.Test.make ~name:"scan load establishes the target state" ~count:50
    QCheck2.Gen.(array_size (return 3) (oneofl [ L.Zero; L.One ]))
    (fun target ->
      let s = s27_scan () in
      let sim = Logicsim.Goodsim.create s.Scan.circuit in
      let t = { Scan_test.scan_in = target; vectors = [||] } in
      Array.iter
        (fun bit ->
          Logicsim.Goodsim.step sim (functional_mode_vector s ~sel:L.One ~inp:bit))
        (Scan_test.scan_in_feed t);
      let st = Logicsim.Goodsim.state sim in
      Array.for_all2 L.equal st target)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "scanins"
    [
      ( "insertion",
        [
          Alcotest.test_case "structure" `Quick test_insert_structure;
          Alcotest.test_case "input positions" `Quick test_insert_positions;
          Alcotest.test_case "names preserved" `Quick test_insert_preserves_names;
          Alcotest.test_case "chain order" `Quick test_insert_chain_order;
          Alcotest.test_case "errors" `Quick test_insert_errors;
          Alcotest.test_case "name clash" `Quick test_insert_name_clash;
        ] );
      ( "shift semantics",
        [
          Alcotest.test_case "shift in" `Quick test_shift_behaviour;
          Alcotest.test_case "scan_out" `Quick test_scan_out_observes_last_ff;
          Alcotest.test_case "functional mode = original" `Quick
            test_functional_mode_matches_original;
          q prop_load_establishes_state;
        ] );
      ( "multichain",
        [
          Alcotest.test_case "structure" `Quick test_multichain_structure;
          Alcotest.test_case "positions" `Quick test_chain_positions;
        ] );
      ( "scan_test",
        [
          Alcotest.test_case "cycle accounting" `Quick test_cycles_math;
          Alcotest.test_case "feed reversal" `Quick test_scan_in_feed_reversed;
        ] );
    ]
