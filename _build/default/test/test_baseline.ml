(* The [26]-style baseline: classical detection semantics, generation
   validity, and test-set compaction. *)

module C = Netlist.Circuit
module L = Netlist.Logic
module Model = Faultmodel.Model
module Scan = Scanins.Scan
module Scan_test = Scanins.Scan_test
module Vectors = Logicsim.Vectors

let setup name =
  let scan = Scan.insert (Circuits.Catalog.circuit name) in
  scan, Model.build scan.Scan.circuit

(* -------------------------------------------------------------- detect *)

let test_detect_observes_final_state () =
  (* Craft a test whose only observation is the scanned-out final state:
     on s27, load a state, apply one vector, check a state-only fault. *)
  let scan, m = setup "s27" in
  let all = Array.init (Model.fault_count m) Fun.id in
  let rng = Prng.Rng.create 41L in
  (* Random tests detect a decent share of faults under classical
     semantics. *)
  let t =
    {
      Scan_test.scan_in = Array.init 3 (fun _ -> L.of_bool (Prng.Rng.bool rng));
      vectors = [| Vectors.random rng ~width:4 |];
    }
  in
  let hits = Baseline.Detect.test scan m ~fault_ids:all t in
  Alcotest.(check bool) "detects some" true (Array.length hits > 0);
  (* Every reported hit must be justified: PO difference during T or a
     final-state difference. *)
  Array.iter
    (fun fid ->
      let session =
        Logicsim.Faultsim.create ~good_state:t.Scan_test.scan_in
          ~faulty_states:(fun _ -> t.Scan_test.scan_in)
          m ~fault_ids:[| fid |]
      in
      let wide =
        Array.map
          (fun pi ->
            let v = Array.make (C.input_count m.Model.circuit) L.X in
            Array.blit pi 0 v 0 4;
            v.(Scan.sel_position scan) <- L.Zero;
            v)
          t.Scan_test.vectors
      in
      Logicsim.Faultsim.advance session wide;
      let po = Logicsim.Faultsim.detection_time session fid <> None in
      let state = Logicsim.Faultsim.ff_effects session fid <> [] in
      Alcotest.(check bool) "justified hit" true (po || state))
    hits

let test_detect_set_folds () =
  let scan, m = setup "s27" in
  let all = Array.init (Model.fault_count m) Fun.id in
  let rng = Prng.Rng.create 42L in
  let mk () =
    {
      Scan_test.scan_in = Array.init 3 (fun _ -> L.of_bool (Prng.Rng.bool rng));
      vectors = [| Vectors.random rng ~width:4; Vectors.random rng ~width:4 |];
    }
  in
  let tests = [ mk (); mk (); mk () ] in
  let total = Baseline.Detect.set scan m ~fault_ids:all tests in
  let union =
    List.fold_left
      (fun acc t ->
        Array.iter (fun fid -> Hashtbl.replace acc fid ()) (Baseline.Detect.test scan m ~fault_ids:all t);
        acc)
      (Hashtbl.create 64) tests
  in
  Alcotest.(check int) "set = union of tests" (Hashtbl.length union) (Array.length total)

(* ------------------------------------------------------------ generate *)

let test_generate_s27 () =
  let scan, m = setup "s27" in
  let r = Baseline.Gen26.generate scan m Atpg.Seq_atpg.default_config in
  Alcotest.(check bool) "tests found" true (List.length r.Baseline.Gen26.tests > 0);
  Alcotest.(check bool) "detects most" true
    (Array.length r.Baseline.Gen26.detected > 40);
  Alcotest.(check int) "partition" (Model.fault_count m)
    (Array.length r.Baseline.Gen26.detected + Array.length r.Baseline.Gen26.undetected);
  (* Every generated test's vectors are over the original inputs. *)
  List.iter
    (fun t ->
      Array.iter
        (fun v -> Alcotest.(check int) "narrow vectors" 4 (Array.length v))
        t.Scan_test.vectors;
      Alcotest.(check int) "scan_in width" 3 (Array.length t.Scan_test.scan_in))
    r.Baseline.Gen26.tests;
  (* The set really detects what it claims, under classical semantics. *)
  let redetect =
    Baseline.Detect.set scan m ~fault_ids:r.Baseline.Gen26.detected
      r.Baseline.Gen26.tests
  in
  Alcotest.(check int) "claims honored" (Array.length r.Baseline.Gen26.detected)
    (Array.length redetect)

let test_cycles_accounting () =
  let scan, _ = setup "s27" in
  let t1 = { Scan_test.scan_in = Array.make 3 L.Zero; vectors = [| Array.make 4 L.Zero |] } in
  Alcotest.(check int) "cycles" (3 + (1 + 3)) (Baseline.Gen26.cycles scan [ t1 ]);
  Alcotest.(check int) "empty set" 3 (Baseline.Gen26.cycles scan [])

(* ------------------------------------------------------------- compact *)

let test_compact_keeps_coverage () =
  let scan, m = setup "s27" in
  let r = Baseline.Gen26.generate scan m Atpg.Seq_atpg.default_config in
  let kept =
    Baseline.Compact26.run scan m ~fault_ids:r.Baseline.Gen26.detected
      r.Baseline.Gen26.tests
  in
  Alcotest.(check bool) "no more tests" true
    (List.length kept <= List.length r.Baseline.Gen26.tests);
  let redetect =
    Baseline.Detect.set scan m ~fault_ids:r.Baseline.Gen26.detected kept
  in
  Alcotest.(check int) "coverage preserved" (Array.length r.Baseline.Gen26.detected)
    (Array.length redetect);
  Alcotest.(check bool) "cycles reduced or equal" true
    (Baseline.Gen26.cycles scan kept <= Baseline.Gen26.cycles scan r.Baseline.Gen26.tests)

let test_compact_preserves_order () =
  let scan, m = setup "s27" in
  let r = Baseline.Gen26.generate scan m Atpg.Seq_atpg.default_config in
  let kept =
    Baseline.Compact26.run scan m ~fault_ids:r.Baseline.Gen26.detected
      r.Baseline.Gen26.tests
  in
  (* kept must be a subsequence of the original list. *)
  let rec is_sub sub full =
    match sub, full with
    | [], _ -> true
    | _, [] -> false
    | s :: srest, f :: frest ->
      if s == f then is_sub srest frest else is_sub sub frest
  in
  Alcotest.(check bool) "subsequence" true (is_sub kept r.Baseline.Gen26.tests)

let () =
  Alcotest.run "baseline"
    [
      ( "detect",
        [
          Alcotest.test_case "hits are justified" `Quick test_detect_observes_final_state;
          Alcotest.test_case "set folds tests" `Quick test_detect_set_folds;
        ] );
      ( "generate",
        [
          Alcotest.test_case "s27 generation" `Quick test_generate_s27;
          Alcotest.test_case "cycle accounting" `Quick test_cycles_accounting;
        ] );
      ( "compact",
        [
          Alcotest.test_case "keeps coverage" `Quick test_compact_keeps_coverage;
          Alcotest.test_case "preserves order" `Quick test_compact_preserves_order;
        ] );
    ]
