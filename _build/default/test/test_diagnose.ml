(* Diagnosis and VCD export: responses, failing-position extraction,
   ranking soundness (the injected fault always explains its own
   observation perfectly), and the waveform dump format. *)

module C = Netlist.Circuit
module L = Netlist.Logic
module Model = Faultmodel.Model
module Vectors = Logicsim.Vectors

let setup () =
  let scan = Scanins.Scan.insert (Circuits.Iscas.s27 ()) in
  scan, Model.build scan.Scanins.Scan.circuit

let test_sequence model =
  let rng = Prng.Rng.create 61L in
  Vectors.random_seq rng ~width:(C.input_count model.Model.circuit) ~length:120

(* ------------------------------------------------------------ response *)

let test_response_good_matches_goodsim () =
  let _, m = setup () in
  let seq = test_sequence m in
  let got = Core.Diagnose.response m seq in
  let sim = Logicsim.Goodsim.create m.Model.circuit in
  let want = Logicsim.Goodsim.run sim seq in
  Array.iteri
    (fun t row ->
      Array.iteri
        (fun j v ->
          if not (L.equal v want.(t).(j)) then Alcotest.failf "cycle %d" t)
        row)
    got

let test_response_faulty_consistent_with_faultsim () =
  (* The scalar faulty response disagrees with the good response exactly
     when the parallel fault simulator reports a detection. *)
  let _, m = setup () in
  let seq = test_sequence m in
  let good = Core.Diagnose.response m seq in
  for fid = 0 to Model.fault_count m - 1 do
    let faulty = Core.Diagnose.response m ~fault:fid seq in
    let first_strict = ref None in
    Array.iteri
      (fun t row ->
        Array.iteri
          (fun j g ->
            let f = faulty.(t).(j) in
            if
              !first_strict = None && L.is_binary g && L.is_binary f
              && not (L.equal g f)
            then first_strict := Some t)
          row)
      good;
    let sim_time = Logicsim.Faultsim.detects_single m ~fault:fid seq in
    if !first_strict <> sim_time then
      Alcotest.failf "fault %s: scalar %s vs parallel %s"
        (Model.fault_name m fid)
        (match !first_strict with Some t -> string_of_int t | None -> "-")
        (match sim_time with Some t -> string_of_int t | None -> "-")
  done

(* ----------------------------------------------------------- diagnosis *)

let test_failing_positions_masking () =
  let expected = [| [| L.One; L.X |]; [| L.Zero; L.One |] |] in
  let observed = [| [| L.Zero; L.One |]; [| L.Zero; L.Zero |] |] in
  Alcotest.(check (list (pair int int)))
    "masked X ignored"
    [ (0, 0); (1, 1) ]
    (Core.Diagnose.failing_positions ~expected ~observed)

let test_injected_fault_ranks_perfectly () =
  let _, m = setup () in
  let seq = test_sequence m in
  let rng = Prng.Rng.create 62L in
  for _ = 1 to 8 do
    let truth = Prng.Rng.int rng (Model.fault_count m) in
    let observed = Core.Diagnose.response m ~fault:truth seq in
    let ranking = Core.Diagnose.run m seq ~observed () in
    let perfect = Core.Diagnose.perfect ranking in
    (* The true fault must explain its own observation exactly — provided
       the sequence detects it at all. *)
    if Logicsim.Faultsim.detects_single m ~fault:truth seq <> None then begin
      Alcotest.(check bool) "true fault is perfect" true
        (List.exists (fun c -> c.Core.Diagnose.fault = truth) perfect);
      (* And the ranking puts a perfect candidate on top. *)
      match ranking with
      | top :: _ ->
        Alcotest.(check int) "no missed failures at rank 1" 0
          top.Core.Diagnose.missed
      | [] -> Alcotest.fail "empty ranking"
    end
  done

let test_healthy_device_diagnoses_clean () =
  let _, m = setup () in
  let seq = test_sequence m in
  let observed = Core.Diagnose.response m seq in
  let ranking = Core.Diagnose.run m seq ~observed () in
  (* No failures observed: candidates with zero predicted failures would be
     perfect, but every detected fault predicts at least one — so nobody
     may claim a match, and everyone's "extra" is positive. *)
  List.iter
    (fun c ->
      Alcotest.(check int) "no matched failures" 0 c.Core.Diagnose.matched;
      Alcotest.(check bool) "predicts unobserved failures" true
        (c.Core.Diagnose.extra > 0))
    ranking

let test_candidate_restriction () =
  let _, m = setup () in
  let seq = test_sequence m in
  let observed = Core.Diagnose.response m ~fault:0 seq in
  let ranking = Core.Diagnose.run m seq ~observed ~candidates:[| 0; 1; 2 |] () in
  Alcotest.(check int) "three candidates" 3 (List.length ranking)

(* ----------------------------------------------------------------- vcd *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_vcd_structure () =
  let c = Circuits.Iscas.s27 () in
  let rng = Prng.Rng.create 63L in
  let seq = Vectors.random_seq rng ~width:4 ~length:10 in
  let text = Logicsim.Vcd.dump c seq in
  List.iter
    (fun frag -> Alcotest.(check bool) frag true (contains text frag))
    [ "$timescale"; "$scope module s27"; "$var wire 1"; "$enddefinitions";
      "#0"; "#10"; "G17" ];
  (* Every node is declared. *)
  Array.iter
    (fun nd ->
      Alcotest.(check bool) nd.C.name true (contains text (" " ^ nd.C.name ^ " $end")))
    (C.nodes c)

let test_vcd_node_subset () =
  let c = Circuits.Iscas.s27 () in
  let rng = Prng.Rng.create 64L in
  let seq = Vectors.random_seq rng ~width:4 ~length:5 in
  let g17 = C.id_of_name_exn c "G17" in
  let text = Logicsim.Vcd.dump_nodes c seq ~nodes:[ g17 ] in
  Alcotest.(check bool) "has G17" true (contains text "G17");
  Alcotest.(check bool) "no G5" false (contains text "G5");
  Alcotest.(check bool) "rejects bad id" true
    (match Logicsim.Vcd.dump_nodes c seq ~nodes:[ 999 ] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_vcd_change_compression () =
  (* Constant inputs: after time 0, no value-change lines for them. *)
  let c = Circuits.Iscas.s27 () in
  let seq = Array.make 6 (Vectors.parse "0101") in
  let g0 = C.id_of_name_exn c "G0" in
  let text = Logicsim.Vcd.dump_nodes c seq ~nodes:[ g0 ] in
  (* One declaration, one initial value at #0, then silence. *)
  let changes =
    List.filter
      (fun l -> String.length l > 0 && (l.[0] = '0' || l.[0] = '1' || l.[0] = 'x'))
      (String.split_on_char '\n' text)
  in
  Alcotest.(check int) "single change" 1 (List.length changes)

let () =
  Alcotest.run "diagnose"
    [
      ( "response",
        [
          Alcotest.test_case "good = goodsim" `Quick test_response_good_matches_goodsim;
          Alcotest.test_case "faulty = faultsim" `Quick
            test_response_faulty_consistent_with_faultsim;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "failing positions/masking" `Quick
            test_failing_positions_masking;
          Alcotest.test_case "injected fault perfect" `Quick
            test_injected_fault_ranks_perfectly;
          Alcotest.test_case "healthy device" `Quick test_healthy_device_diagnoses_clean;
          Alcotest.test_case "candidate restriction" `Quick test_candidate_restriction;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "structure" `Quick test_vcd_structure;
          Alcotest.test_case "node subset" `Quick test_vcd_node_subset;
          Alcotest.test_case "change compression" `Quick test_vcd_change_compression;
        ] );
    ]
