bench/main.mli:
