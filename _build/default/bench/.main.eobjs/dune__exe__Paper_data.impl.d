bench/paper_data.ml: List
