(* The paper's reported numbers (Pomeranz & Reddy, DATE 2003, Tables 5-7),
   embedded for side-by-side "paper vs measured" reporting.  [cyc26 = None]
   renders as NA, as in the paper. *)

type t5 = {
  name : string;
  inp : int;
  stvr : int;
  faults : int;
  detected : int;
  fcov : float;
  funct : int;
}

type t6 = {
  name : string;
  test_total : int;
  test_scan : int;
  restor_total : int;
  restor_scan : int;
  omit_total : int;
  omit_scan : int;
  ext_det : int;
  cyc26 : int option;
}

type t7 = {
  name : string;
  test_total : int;
  test_scan : int;
  restor_total : int;
  restor_scan : int;
  omit_total : int;
  omit_scan : int;
  cyc26 : int;
}

let table5 =
  [
    { name = "s208"; inp = 13; stvr = 8; faults = 267; detected = 266; fcov = 99.63; funct = 0 };
    { name = "s298"; inp = 5; stvr = 14; faults = 398; detected = 398; fcov = 100.0; funct = 3 };
    { name = "s344"; inp = 11; stvr = 15; faults = 452; detected = 452; fcov = 100.0; funct = 0 };
    { name = "s382"; inp = 5; stvr = 21; faults = 541; detected = 535; fcov = 98.89; funct = 6 };
    { name = "s386"; inp = 9; stvr = 6; faults = 424; detected = 424; fcov = 100.0; funct = 0 };
    { name = "s400"; inp = 5; stvr = 21; faults = 566; detected = 555; fcov = 98.06; funct = 6 };
    { name = "s420"; inp = 21; stvr = 16; faults = 530; detected = 523; fcov = 98.68; funct = 3 };
    { name = "s444"; inp = 5; stvr = 21; faults = 616; detected = 598; fcov = 97.08; funct = 12 };
    { name = "s510"; inp = 21; stvr = 6; faults = 604; detected = 603; fcov = 99.83; funct = 0 };
    { name = "s526"; inp = 5; stvr = 21; faults = 687; detected = 673; fcov = 97.96; funct = 20 };
    { name = "s641"; inp = 37; stvr = 19; faults = 623; detected = 619; fcov = 99.36; funct = 0 };
    { name = "s820"; inp = 20; stvr = 5; faults = 884; detected = 868; fcov = 98.19; funct = 0 };
    { name = "s953"; inp = 18; stvr = 29; faults = 1299; detected = 1298; fcov = 99.92; funct = 30 };
    { name = "s1196"; inp = 16; stvr = 18; faults = 1374; detected = 1368; fcov = 99.56; funct = 5 };
    { name = "s1423"; inp = 19; stvr = 74; faults = 1987; detected = 1947; fcov = 97.99; funct = 34 };
    { name = "s1488"; inp = 10; stvr = 6; faults = 1526; detected = 1525; fcov = 99.93; funct = 0 };
    { name = "s5378"; inp = 37; stvr = 179; faults = 5797; detected = 5381; fcov = 92.82; funct = 42 };
    { name = "s35932"; inp = 37; stvr = 1728; faults = 49466; detected = 42847; fcov = 86.62; funct = 3 };
    { name = "b01"; inp = 5; stvr = 5; faults = 169; detected = 169; fcov = 100.0; funct = 0 };
    { name = "b02"; inp = 4; stvr = 4; faults = 96; detected = 96; fcov = 100.0; funct = 0 };
    { name = "b03"; inp = 7; stvr = 30; faults = 636; detected = 633; fcov = 99.53; funct = 35 };
    { name = "b04"; inp = 14; stvr = 66; faults = 1746; detected = 1743; fcov = 99.83; funct = 28 };
    { name = "b06"; inp = 5; stvr = 9; faults = 268; detected = 268; fcov = 100.0; funct = 0 };
    { name = "b09"; inp = 4; stvr = 28; faults = 592; detected = 587; fcov = 99.16; funct = 35 };
    { name = "b10"; inp = 14; stvr = 17; faults = 618; detected = 617; fcov = 99.84; funct = 6 };
    { name = "b11"; inp = 10; stvr = 30; faults = 1273; detected = 1254; fcov = 98.51; funct = 22 };
  ]

let table6 =
  [
    { name = "s208"; test_total = 194; test_scan = 128; restor_total = 155; restor_scan = 105; omit_total = 140; omit_scan = 94; ext_det = 0; cyc26 = None };
    { name = "s298"; test_total = 215; test_scan = 90; restor_total = 177; restor_scan = 63; omit_total = 161; omit_scan = 55; ext_det = 0; cyc26 = Some 218 };
    { name = "s344"; test_total = 161; test_scan = 89; restor_total = 105; restor_scan = 56; omit_total = 85; omit_scan = 48; ext_det = 0; cyc26 = Some 98 };
    { name = "s382"; test_total = 811; test_scan = 149; restor_total = 551; restor_scan = 118; omit_total = 378; omit_scan = 89; ext_det = 3; cyc26 = Some 619 };
    { name = "s386"; test_total = 324; test_scan = 157; restor_total = 247; restor_scan = 121; omit_total = 216; omit_scan = 108; ext_det = 0; cyc26 = None };
    { name = "s400"; test_total = 766; test_scan = 154; restor_total = 561; restor_scan = 119; omit_total = 396; omit_scan = 102; ext_det = 2; cyc26 = Some 587 };
    { name = "s420"; test_total = 1353; test_scan = 1238; restor_total = 550; restor_scan = 479; omit_total = 408; omit_scan = 363; ext_det = 0; cyc26 = None };
    { name = "s444"; test_total = 750; test_scan = 286; restor_total = 480; restor_scan = 185; omit_total = 450; omit_scan = 175; ext_det = 2; cyc26 = None };
    { name = "s510"; test_total = 278; test_scan = 159; restor_total = 237; restor_scan = 128; omit_total = 210; omit_scan = 123; ext_det = 0; cyc26 = None };
    { name = "s526"; test_total = 1727; test_scan = 703; restor_total = 969; restor_scan = 414; omit_total = 726; omit_scan = 316; ext_det = 2; cyc26 = Some 1091 };
    { name = "s641"; test_total = 605; test_scan = 451; restor_total = 255; restor_scan = 179; omit_total = 239; omit_scan = 173; ext_det = 0; cyc26 = Some 302 };
    { name = "s820"; test_total = 550; test_scan = 283; restor_total = 443; restor_scan = 229; omit_total = 347; omit_scan = 183; ext_det = 4; cyc26 = Some 367 };
    { name = "s953"; test_total = 1029; test_scan = 826; restor_total = 448; restor_scan = 289; omit_total = 329; omit_scan = 210; ext_det = 0; cyc26 = None };
    { name = "s1196"; test_total = 928; test_scan = 613; restor_total = 295; restor_scan = 179; omit_total = 262; omit_scan = 155; ext_det = 0; cyc26 = None };
    { name = "s1423"; test_total = 3148; test_scan = 2360; restor_total = 1229; restor_scan = 1011; omit_total = 1127; omit_scan = 953; ext_det = 6; cyc26 = Some 1816 };
    { name = "s1488"; test_total = 548; test_scan = 280; restor_total = 470; restor_scan = 235; omit_total = 416; omit_scan = 211; ext_det = 0; cyc26 = Some 416 };
    { name = "s5378"; test_total = 5381; test_scan = 4594; restor_total = 2858; restor_scan = 2601; omit_total = 2721; omit_scan = 2487; ext_det = 57; cyc26 = Some 18585 };
    { name = "s35932"; test_total = 634; test_scan = 518; restor_total = 634; restor_scan = 518; omit_total = 634; omit_scan = 518; ext_det = 0; cyc26 = Some 3561 };
    { name = "b01"; test_total = 192; test_scan = 79; restor_total = 123; restor_scan = 49; omit_total = 89; omit_scan = 37; ext_det = 0; cyc26 = Some 61 };
    { name = "b02"; test_total = 110; test_scan = 37; restor_total = 73; restor_scan = 24; omit_total = 52; omit_scan = 17; ext_det = 0; cyc26 = Some 35 };
    { name = "b03"; test_total = 1311; test_scan = 1152; restor_total = 405; restor_scan = 336; omit_total = 347; omit_scan = 288; ext_det = 0; cyc26 = Some 588 };
    { name = "b04"; test_total = 1770; test_scan = 1465; restor_total = 860; restor_scan = 671; omit_total = 715; omit_scan = 606; ext_det = 0; cyc26 = Some 1066 };
    { name = "b06"; test_total = 140; test_scan = 41; restor_total = 110; restor_scan = 34; omit_total = 72; omit_scan = 28; ext_det = 0; cyc26 = Some 64 };
    { name = "b09"; test_total = 2026; test_scan = 1842; restor_total = 789; restor_scan = 699; omit_total = 716; omit_scan = 635; ext_det = 0; cyc26 = Some 573 };
    { name = "b10"; test_total = 959; test_scan = 741; restor_total = 378; restor_scan = 272; omit_total = 330; omit_scan = 252; ext_det = 0; cyc26 = Some 427 };
    { name = "b11"; test_total = 1797; test_scan = 1337; restor_total = 1047; restor_scan = 758; omit_total = 789; omit_scan = 584; ext_det = 1; cyc26 = Some 986 };
  ]

let table7 =
  [
    { name = "s298"; test_total = 218; test_scan = 140; restor_total = 190; restor_scan = 112; omit_total = 172; omit_scan = 101; cyc26 = 218 };
    { name = "s344"; test_total = 98; test_scan = 60; restor_total = 65; restor_scan = 28; omit_total = 65; omit_scan = 28; cyc26 = 98 };
    { name = "s382"; test_total = 619; test_scan = 231; restor_total = 534; restor_scan = 147; omit_total = 483; omit_scan = 125; cyc26 = 619 };
    { name = "s400"; test_total = 587; test_scan = 231; restor_total = 455; restor_scan = 173; omit_total = 364; omit_scan = 148; cyc26 = 587 };
    { name = "s526"; test_total = 1091; test_scan = 546; restor_total = 870; restor_scan = 446; omit_total = 798; omit_scan = 387; cyc26 = 1091 };
    { name = "s641"; test_total = 302; test_scan = 209; restor_total = 240; restor_scan = 161; omit_total = 190; omit_scan = 137; cyc26 = 302 };
    { name = "s820"; test_total = 367; test_scan = 90; restor_total = 350; restor_scan = 85; omit_total = 327; omit_scan = 78; cyc26 = 367 };
    { name = "s1423"; test_total = 1816; test_scan = 888; restor_total = 1402; restor_scan = 800; omit_total = 1318; omit_scan = 775; cyc26 = 1816 };
    { name = "s1488"; test_total = 416; test_scan = 120; restor_total = 385; restor_scan = 105; omit_total = 359; omit_scan = 97; cyc26 = 416 };
    { name = "s5378"; test_total = 18585; test_scan = 17900; restor_total = 11959; restor_scan = 11832; omit_total = 11626; omit_scan = 11501; cyc26 = 18585 };
    { name = "b01"; test_total = 61; test_scan = 10; restor_total = 56; restor_scan = 9; omit_total = 56; omit_scan = 9; cyc26 = 61 };
    { name = "b02"; test_total = 35; test_scan = 12; restor_total = 34; restor_scan = 11; omit_total = 33; omit_scan = 10; cyc26 = 35 };
    { name = "b03"; test_total = 588; test_scan = 480; restor_total = 421; restor_scan = 345; omit_total = 366; omit_scan = 307; cyc26 = 588 };
    { name = "b04"; test_total = 1066; test_scan = 924; restor_total = 708; restor_scan = 570; omit_total = 671; omit_scan = 540; cyc26 = 1066 };
    { name = "b06"; test_total = 64; test_scan = 36; restor_total = 62; restor_scan = 34; omit_total = 60; omit_scan = 33; cyc26 = 64 };
    { name = "b09"; test_total = 573; test_scan = 364; restor_total = 438; restor_scan = 242; omit_total = 405; omit_scan = 211; cyc26 = 573 };
    { name = "b10"; test_total = 427; test_scan = 306; restor_total = 346; restor_scan = 226; omit_total = 323; omit_scan = 204; cyc26 = 427 };
    { name = "b11"; test_total = 986; test_scan = 480; restor_total = 681; restor_scan = 354; omit_total = 662; omit_scan = 339; cyc26 = 986 };
  ]

let find5 name = List.find_opt (fun (r : t5) -> r.name = name) table5
let find6 name = List.find_opt (fun (r : t6) -> r.name = name) table6
let find7 name = List.find_opt (fun (r : t7) -> r.name = name) table7
