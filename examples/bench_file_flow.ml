(* Working from .bench files: export a catalog circuit, parse it back, run
   the unified flow on it, and write a tester program with expected
   responses — the round trip a user with their own netlists would take. *)

let () =
  let dir = Filename.get_temp_dir_name () in
  let bench_path = Filename.concat dir "scanatpg_demo.bench" in
  let tester_path = Filename.concat dir "scanatpg_demo.tester" in

  (* Export a synthetic benchmark as .bench text. *)
  let original = Circuits.Catalog.circuit "b02" in
  Netlist.Bench_format.write_file bench_path original;
  Printf.printf "wrote %s:\n%s\n" bench_path
    (Netlist.Bench_format.to_string original);

  (* Parse it back; the circuit must be structurally identical. *)
  let c = Netlist.Bench_format.parse_file bench_path in
  assert (Netlist.Circuit.node_count c = Netlist.Circuit.node_count original);
  Format.printf "parsed back: %a@." Netlist.Circuit.pp_summary c;

  (* Full flow: scan insertion, generation, compaction. *)
  let scan = Scanins.Scan.insert c in
  let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
  let sk = Atpg.Scan_knowledge.create scan in
  let cfg = Core.Config.for_circuit c in
  let flow = Core.Flow.generate cfg sk model in
  let restored =
    Compaction.Restoration.run model flow.Core.Flow.sequence flow.Core.Flow.targets
  in
  let targets =
    Compaction.Target.compute model restored
      ~fault_ids:flow.Core.Flow.targets.Compaction.Target.fault_ids
  in
  let compacted, _, _ =
    Compaction.Omission.run model restored targets cfg.Core.Config.omission
  in
  Printf.printf "\ncoverage %.2f%%; %d -> %d cycles after compaction\n"
    (Core.Flow.coverage flow)
    (Array.length flow.Core.Flow.sequence)
    (Array.length compacted);

  (* Tester program: stimulus plus expected responses with X masks. *)
  let program = Core.Tester.build scan.Scanins.Scan.circuit compacted in
  Core.Tester.write_file tester_path program;
  Printf.printf "\ntester program (%d cycles, %d observing) -> %s\n"
    (Array.length compacted)
    (Core.Tester.observing_cycles program)
    tester_path;
  print_string (Core.Tester.to_string program)
