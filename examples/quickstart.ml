(* Quickstart: the paper's running example on the real ISCAS-89 s27.

   Reproduces the shape of Tables 1 and 4: generate a unified test sequence
   for s27_scan (scan_sel / scan_inp are ordinary inputs, so limited scan
   operations appear on their own), then compact it with the non-scan
   procedures (restoration, then omission) and show what happened to the
   scan operations. *)

module Pipeline = Core.Pipeline
module Report = Core.Report

let show_runs scan label seq =
  let nsv = Scanins.Scan.nsv scan in
  let runs = Report.scan_runs scan seq in
  Printf.printf "%s: %d vectors, %d scan cycles, scan runs:" label
    (Array.length seq)
    (Pipeline.scan_count scan seq);
  List.iter
    (fun (t, len) ->
      Printf.printf " [t=%d len=%d%s]" t len
        (if len < nsv then " limited" else ""))
    runs;
  print_newline ()

let () =
  let c = Circuits.Iscas.s27 () in
  let scan = Scanins.Scan.insert c in
  let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
  let sk = Atpg.Scan_knowledge.create scan in
  let cfg = Core.Config.for_circuit c in

  Printf.printf "circuit: %s -> %s (N_SV = %d)\n"
    (Netlist.Circuit.name c)
    (Netlist.Circuit.name scan.Scanins.Scan.circuit)
    (Scanins.Scan.nsv scan);

  (* Section 2: unified test generation. *)
  let flow = Core.Flow.generate cfg sk model in
  Printf.printf "\nfault coverage: %d/%d (%.2f%%)\n" flow.Core.Flow.detected
    flow.Core.Flow.targeted (Core.Flow.coverage flow);
  print_endline "\ngenerated test sequence (cf. paper Table 1):";
  print_string (Report.sequence scan flow.Core.Flow.sequence);

  (* Section 4: static compaction with non-scan procedures. *)
  let restored =
    Compaction.Restoration.run model flow.Core.Flow.sequence flow.Core.Flow.targets
  in
  let targets_r =
    Compaction.Target.compute model restored
      ~fault_ids:flow.Core.Flow.targets.Compaction.Target.fault_ids
  in
  let compacted, _, _ =
    Compaction.Omission.run model restored targets_r cfg.Core.Config.omission
  in
  print_endline "\ncompacted test sequence (cf. paper Table 4):";
  print_string (Report.sequence scan compacted);

  print_newline ();
  show_runs scan "generated" flow.Core.Flow.sequence;
  show_runs scan "restored " restored;
  show_runs scan "compacted" compacted;
  Printf.printf
    "\nevery scan operation above shorter than N_SV=%d is a limited scan —\n\
     the compaction procedures created them without any scan-specific logic.\n"
    (Scanins.Scan.nsv scan)
