(* Section 3 of the paper: translate a classical scan test set into one
   unified sequence, then compact it.

   A "second approach" baseline generator produces tests (SI, T) with
   complete scan operations (cf. paper Table 2); the translation writes them
   as one sequence over C_scan with explicit scan_sel / scan_inp values
   (cf. Table 3).  Non-scan compaction then shortens the translated
   sequence below the source set's tester cycles — the paper's Table 7
   story. *)

let () =
  let c = Circuits.Iscas.s27 () in
  let scan = Scanins.Scan.insert c in
  let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
  let cfg = Core.Config.for_circuit c in

  (* Generate a classical scan test set. *)
  let base = Baseline.Gen26.generate scan model cfg.Core.Config.atpg in
  let tests =
    Baseline.Compact26.run scan model ~fault_ids:base.Baseline.Gen26.detected
      base.Baseline.Gen26.tests
  in
  Printf.printf "scan test set (cf. paper Table 2): %d tests, %d faults\n"
    (List.length tests)
    (Array.length base.Baseline.Gen26.detected);
  List.iteri
    (fun i t -> Format.printf "  %2d: %a@." (i + 1) Scanins.Scan_test.pp t)
    tests;
  let cycles = Baseline.Gen26.cycles scan tests in
  Printf.printf "tester cycles under complete scan operations: %d\n\n" cycles;

  (* Translate (kept sparse to show the structure, as in Table 3). *)
  let sparse = Translation.Translate.run_sparse scan ~tests in
  print_endline "translated sequence, unspecified values kept (cf. Table 3):";
  print_string (Core.Report.sequence scan sparse);
  assert (Array.length sparse = cycles);
  Printf.printf "\ntranslated length = %d = source set cycles (by construction)\n"
    (Array.length sparse);

  (* Random-fill and compact. *)
  let rng = Prng.Rng.create 2003L in
  let seq = Logicsim.Vectors.fill_x rng sparse in
  let targets =
    Compaction.Target.compute model seq ~fault_ids:base.Baseline.Gen26.detected
  in
  let restored = Compaction.Restoration.run model seq targets in
  let targets_r =
    Compaction.Target.compute model restored
      ~fault_ids:targets.Compaction.Target.fault_ids
  in
  let compacted, _, _ =
    Compaction.Omission.run model restored targets_r cfg.Core.Config.omission
  in
  Printf.printf
    "\nafter restoration: %d vectors; after omission: %d vectors (source: %d)\n"
    (Array.length restored) (Array.length compacted) cycles;
  Printf.printf
    "the same faults are detected in %d instead of %d tester cycles.\n"
    (Array.length compacted) cycles
