(* Limited scan operations at work, plus multiple scan chains.

   Runs the unified flow on the s298 substitute with one and with two scan
   chains, and prints a histogram of scan-operation lengths before and
   after compaction: compaction converts complete scan operations (length
   N_SV) into limited ones and deletes shift cycles outright — the paper's
   central mechanism. *)

module Pipeline = Core.Pipeline

let histogram scan seq =
  let runs = Core.Report.scan_runs scan seq in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (_, len) ->
      Hashtbl.replace tbl len (1 + Option.value ~default:0 (Hashtbl.find_opt tbl len)))
    runs;
  let lens = List.sort_uniq compare (List.map snd runs) in
  String.concat ", "
    (List.map (fun l -> Printf.sprintf "%dx len=%d" (Hashtbl.find tbl l) l) lens)

let run_with_chains name chains =
  let c = Circuits.Catalog.circuit name in
  let scan = Scanins.Scan.insert ~chains c in
  let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
  let sk = Atpg.Scan_knowledge.create scan in
  let cfg = { (Core.Config.for_circuit c) with Core.Config.chains } in
  let flow = Core.Flow.generate cfg sk model in
  let restored =
    Compaction.Restoration.run model flow.Core.Flow.sequence flow.Core.Flow.targets
  in
  let targets_r =
    Compaction.Target.compute model restored
      ~fault_ids:flow.Core.Flow.targets.Compaction.Target.fault_ids
  in
  let compacted, _, _ =
    Compaction.Omission.run model restored targets_r cfg.Core.Config.omission
  in
  Printf.printf "\n=== %s with %d scan chain(s), N_SV = %d ===\n" name chains
    (Scanins.Scan.nsv scan);
  Printf.printf "coverage: %.2f%%  (%d/%d faults)\n" (Core.Flow.coverage flow)
    flow.Core.Flow.detected flow.Core.Flow.targeted;
  Printf.printf "generated: %4d vectors (%d scan)  scan ops: %s\n"
    (Array.length flow.Core.Flow.sequence)
    (Pipeline.scan_count scan flow.Core.Flow.sequence)
    (histogram scan flow.Core.Flow.sequence);
  Printf.printf "compacted: %4d vectors (%d scan)  scan ops: %s\n"
    (Array.length compacted)
    (Pipeline.scan_count scan compacted)
    (histogram scan compacted)

let () =
  run_with_chains "s298" 1;
  run_with_chains "s298" 2;
  print_newline ();
  print_endline
    "Shorter chains shrink N_SV, and compaction still trims scan runs below\n\
     the complete-scan length — limited scan falls out of treating scan_sel\n\
     as just another primary input."
