(* Using the library on your own design.

   Builds a small sequential circuit (a 4-bit LFSR-style state machine with
   a comparator output) through the Circuit.Builder API, inserts a scan
   chain, and runs the full unified flow: fault universe, generation,
   compaction, tester-cycle accounting. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

let build_design () =
  let b = Circuit.Builder.create ~name:"lfsr4" () in
  (* Inputs: enable, serial data, compare reference (2 bits). *)
  List.iter (Circuit.Builder.add_input b) [ "en"; "din"; "r0"; "r1" ];
  (* 4-bit state register. *)
  Circuit.Builder.add_gate b "q0" Gate.Dff [ "n0" ];
  Circuit.Builder.add_gate b "q1" Gate.Dff [ "n1" ];
  Circuit.Builder.add_gate b "q2" Gate.Dff [ "n2" ];
  Circuit.Builder.add_gate b "q3" Gate.Dff [ "n3" ];
  (* Feedback polynomial x^4 + x^3 + 1, gated by en, with serial input. *)
  Circuit.Builder.add_gate b "fb" Gate.Xor [ "q3"; "q2" ];
  Circuit.Builder.add_gate b "fb_en" Gate.And [ "fb"; "en" ];
  Circuit.Builder.add_gate b "inj" Gate.Xor [ "fb_en"; "din" ];
  Circuit.Builder.add_gate b "n0" Gate.Buf [ "inj" ];
  Circuit.Builder.add_gate b "n1" Gate.Buf [ "q0" ];
  Circuit.Builder.add_gate b "n2" Gate.Buf [ "q1" ];
  Circuit.Builder.add_gate b "n3" Gate.Buf [ "q2" ];
  (* Comparator: flag when the low bits match the reference. *)
  Circuit.Builder.add_gate b "m0" Gate.Xnor [ "q0"; "r0" ];
  Circuit.Builder.add_gate b "m1" Gate.Xnor [ "q1"; "r1" ];
  Circuit.Builder.add_gate b "match_" Gate.And [ "m0"; "m1" ];
  Circuit.Builder.add_output b "match_";
  Circuit.Builder.add_output b "q3";
  Circuit.Builder.build b

let () =
  let c = build_design () in
  Format.printf "%a@." Circuit.pp_summary c;
  print_endline "\nnetlist (.bench):";
  print_string (Netlist.Bench_format.to_string c);

  let scan = Scanins.Scan.insert c in
  let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
  Printf.printf "\nafter scan insertion: %d faults (collapsed from %d)\n"
    (Faultmodel.Model.fault_count model)
    model.Faultmodel.Model.universe_size;

  let cfg = Core.Config.for_circuit c in
  let sk = Atpg.Scan_knowledge.create scan in
  let flow = Core.Flow.generate cfg sk model in
  Printf.printf "coverage: %.2f%% with a %d-cycle sequence\n"
    (Core.Flow.coverage flow)
    (Array.length flow.Core.Flow.sequence);

  let restored =
    Compaction.Restoration.run model flow.Core.Flow.sequence flow.Core.Flow.targets
  in
  let targets_r =
    Compaction.Target.compute model restored
      ~fault_ids:flow.Core.Flow.targets.Compaction.Target.fault_ids
  in
  let compacted, _, _ =
    Compaction.Omission.run model restored targets_r cfg.Core.Config.omission
  in
  Printf.printf "after compaction: %d cycles (%d of them scan)\n"
    (Array.length compacted)
    (Core.Pipeline.scan_count scan compacted);
  print_endline "\ncompacted sequence:";
  print_string (Core.Report.sequence scan compacted)
