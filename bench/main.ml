(* Benchmark harness: regenerates every table of the paper's evaluation
   (Tables 5, 6 and 7), prints paper-vs-measured comparisons, runs the
   ablation studies called out in DESIGN.md, and times the core kernels
   with Bechamel (one Test.make per table plus the hot primitives).

   Usage:
     dune exec bench/main.exe                       # everything, quick scale
     dune exec bench/main.exe -- --circuits s27,s298
     dune exec bench/main.exe -- --tables 5,6      # subset of tables
     dune exec bench/main.exe -- --scale full      # faithful circuit sizes
     dune exec bench/main.exe -- --no-ablation --no-kernels
     dune exec bench/main.exe -- --jobs 4          # parallel circuits
     dune exec bench/main.exe -- --multicore-gate --min-omission-speedup 1.5
                                                   # CI speedup gate only *)

let default_circuits =
  [ "s27"; "s208"; "s298"; "s344"; "s382"; "s386"; "s400"; "s420"; "s444";
    "s510"; "s526"; "s641"; "s820"; "s953"; "s1196"; "s1423"; "s1488";
    "s5378"; "s35932"; "b01"; "b02"; "b03"; "b04"; "b06"; "b09"; "b10"; "b11" ]

type options = {
  mutable circuits : string list;
  mutable scale : Circuits.Profiles.scale;
  mutable tables : int list;
  mutable ablation : bool;
  mutable kernels : bool;
  mutable jobs : int;
  mutable json : string;
  mutable json3 : string;
  mutable json4 : string;
  mutable json5 : string;
  mutable json6 : string;
  mutable multicore_gate : bool;
  mutable min_omission_speedup : float;
  mutable fleet_gate : bool;
  mutable min_fleet_speedup : float;
}

let parse_args () =
  let o =
    {
      circuits = default_circuits;
      scale = Circuits.Profiles.Quick;
      tables = [ 5; 6; 7 ];
      ablation = true;
      kernels = true;
      jobs = max 1 (min 8 (Domain.recommended_domain_count () - 1));
      json = "BENCH_2.json";
      json3 = "BENCH_3.json";
      json4 = "BENCH_4.json";
      json5 = "BENCH_5.json";
      json6 = "BENCH_6.json";
      multicore_gate = false;
      min_omission_speedup = 0.0;
      fleet_gate = false;
      min_fleet_speedup = 0.0;
    }
  in
  let rec go = function
    | [] -> ()
    | "--circuits" :: v :: rest ->
      o.circuits <- String.split_on_char ',' v;
      go rest
    | "--scale" :: "full" :: rest ->
      o.scale <- Circuits.Profiles.Full;
      go rest
    | "--scale" :: "quick" :: rest ->
      o.scale <- Circuits.Profiles.Quick;
      go rest
    | "--tables" :: v :: rest ->
      o.tables <- List.map int_of_string (String.split_on_char ',' v);
      go rest
    | "--no-ablation" :: rest ->
      o.ablation <- false;
      go rest
    | "--no-kernels" :: rest ->
      o.kernels <- false;
      go rest
    | "--jobs" :: v :: rest ->
      o.jobs <- max 1 (int_of_string v);
      go rest
    | "--json" :: v :: rest ->
      o.json <- v;
      go rest
    | "--json3" :: v :: rest ->
      o.json3 <- v;
      go rest
    | "--json4" :: v :: rest ->
      o.json4 <- v;
      go rest
    | "--json5" :: v :: rest ->
      o.json5 <- v;
      go rest
    | "--multicore-gate" :: rest ->
      o.multicore_gate <- true;
      go rest
    | "--min-omission-speedup" :: v :: rest ->
      o.min_omission_speedup <- float_of_string v;
      go rest
    | "--json6" :: v :: rest ->
      o.json6 <- v;
      go rest
    | "--fleet-gate" :: rest ->
      o.fleet_gate <- true;
      go rest
    | "--min-fleet-speedup" :: v :: rest ->
      o.min_fleet_speedup <- float_of_string v;
      go rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  o

(* ------------------------------------------------- parallel circuit map *)

let parallel_map ~jobs f xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f xs.(i));
        loop ()
      end
    in
    loop ()
  in
  let domains = Array.init (min jobs n) (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> failwith "parallel_map: missing result")
       results)

(* --------------------------------------------------------- comparisons *)

let ratio a b = if b = 0 then nan else float_of_int a /. float_of_int b

let compare5 (rows : Core.Pipeline.table5_row list) =
  print_endline "--- Table 5: paper vs measured (fault coverage) ---";
  print_endline
    "circ        paper:faults  fcov  funct | ours:faults  fcov  funct";
  List.iter
    (fun (r : Core.Pipeline.table5_row) ->
      match Paper_data.find5 r.Core.Pipeline.name with
      | None ->
        Printf.printf "%-10s %12s %6s %5s | %11d %6.2f %5d\n" r.Core.Pipeline.name
          "-" "-" "-" r.Core.Pipeline.faults r.Core.Pipeline.fcov
          r.Core.Pipeline.funct
      | Some p ->
        Printf.printf "%-10s %12d %6.2f %5d | %11d %6.2f %5d\n"
          r.Core.Pipeline.name p.Paper_data.faults p.Paper_data.fcov
          p.Paper_data.funct r.Core.Pipeline.faults r.Core.Pipeline.fcov
          r.Core.Pipeline.funct)
    rows;
  print_newline ()

let compare6 (rows : Core.Pipeline.table6_row list) =
  print_endline
    "--- Table 6: paper vs measured (compaction vs complete-scan baseline) ---";
  print_endline
    "circ        paper: omit/test  omit<cyc26 | ours: omit/test  omit<cyc26";
  List.iter
    (fun (r : Core.Pipeline.table6_row) ->
      let ours_ratio =
        ratio r.Core.Pipeline.omit_len.Core.Pipeline.total
          r.Core.Pipeline.test_len.Core.Pipeline.total
      in
      let ours_win =
        r.Core.Pipeline.omit_len.Core.Pipeline.total < r.Core.Pipeline.baseline_cycles
      in
      match Paper_data.find6 r.Core.Pipeline.name with
      | None ->
        Printf.printf "%-10s %17s %11s | %15.2f %11b\n" r.Core.Pipeline.name "-"
          "-" ours_ratio ours_win
      | Some p ->
        let paper_ratio = ratio p.Paper_data.omit_total p.Paper_data.test_total in
        let paper_win =
          match p.Paper_data.cyc26 with
          | Some c -> Printf.sprintf "%b" (p.Paper_data.omit_total < c)
          | None -> "NA"
        in
        Printf.printf "%-10s %17.2f %11s | %15.2f %11b\n" r.Core.Pipeline.name
          paper_ratio paper_win ours_ratio ours_win)
    rows;
  print_newline ()

let compare7 (rows : Core.Pipeline.table7_row list) =
  print_endline "--- Table 7: paper vs measured (translated test sets) ---";
  print_endline "circ        paper: omit/cyc26 | ours: omit/cyc26";
  List.iter
    (fun (r : Core.Pipeline.table7_row) ->
      let ours =
        ratio r.Core.Pipeline.omit_len.Core.Pipeline.total
          r.Core.Pipeline.baseline_cycles
      in
      match Paper_data.find7 r.Core.Pipeline.name with
      | None -> Printf.printf "%-10s %17s | %15.2f\n" r.Core.Pipeline.name "-" ours
      | Some p ->
        Printf.printf "%-10s %17.2f | %15.2f\n" r.Core.Pipeline.name
          (ratio p.Paper_data.omit_total p.Paper_data.cyc26)
          ours)
    rows;
  print_newline ()

(* ------------------------------------------------------------ ablation *)

let ablation_circuits = [ "s27"; "s298"; "b01" ]

let compact_with cfg model seq targets ~restor ~omit =
  let seq, targets =
    if restor then begin
      let r = Compaction.Restoration.run model seq targets in
      let t =
        Compaction.Target.compute model r
          ~fault_ids:targets.Compaction.Target.fault_ids
      in
      r, t
    end
    else seq, targets
  in
  if omit then
    let s, _, _ =
      Compaction.Omission.run model seq targets cfg.Core.Config.omission
    in
    s
  else seq

let ablation_compaction_order () =
  print_endline "--- Ablation: compaction procedure choice ---";
  print_endline "circ        none  omit-only  restor-only  restor+omit";
  List.iter
    (fun name ->
      let c = Circuits.Catalog.circuit name in
      let cfg = Core.Config.for_circuit c in
      let scan = Scanins.Scan.insert c in
      let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
      let sk = Atpg.Scan_knowledge.create scan in
      let flow = Core.Flow.generate cfg sk model in
      let seq = flow.Core.Flow.sequence and targets = flow.Core.Flow.targets in
      let l ~restor ~omit =
        Array.length (compact_with cfg model seq targets ~restor ~omit)
      in
      Printf.printf "%-10s %5d %10d %12d %12d\n" name (Array.length seq)
        (l ~restor:false ~omit:true)
        (l ~restor:true ~omit:false)
        (l ~restor:true ~omit:true))
    ablation_circuits;
  print_newline ()

let ablation_scan_knowledge () =
  print_endline
    "--- Ablation: scan functional knowledge (drain / justification) ---";
  print_endline "circ        full-flow   no-drain   no-justify   neither";
  List.iter
    (fun name ->
      let c = Circuits.Catalog.circuit name in
      let scan = Scanins.Scan.insert c in
      let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
      let sk = Atpg.Scan_knowledge.create scan in
      let cov ~drain ~justify =
        let cfg =
          { (Core.Config.for_circuit c) with
            Core.Config.use_drain = drain;
            use_justify = justify;
            random_phase = None (* isolate the deterministic engine *) }
        in
        Core.Flow.coverage (Core.Flow.generate cfg sk model)
      in
      Printf.printf "%-10s %9.2f %10.2f %12.2f %9.2f\n" name
        (cov ~drain:true ~justify:true)
        (cov ~drain:false ~justify:true)
        (cov ~drain:true ~justify:false)
        (cov ~drain:false ~justify:false))
    ablation_circuits;
  print_newline ()

let ablation_chains () =
  print_endline "--- Ablation: number of scan chains ---";
  print_endline "circ        chains  N_SV  compacted  baseline-cycles";
  List.iter
    (fun name ->
      List.iter
        (fun chains ->
          let c = Circuits.Catalog.circuit name in
          if chains <= Netlist.Circuit.dff_count c then begin
            let cfg = { (Core.Config.for_circuit c) with Core.Config.chains } in
            let r = Core.Pipeline.run ~config:cfg name in
            Printf.printf "%-10s %6d %5d %10d %16d\n" name chains
              (Scanins.Scan.nsv (Scanins.Scan.insert ~chains c))
              r.Core.Pipeline.row6.Core.Pipeline.omit_len.Core.Pipeline.total
              r.Core.Pipeline.row6.Core.Pipeline.baseline_cycles
          end)
        [ 1; 2; 4 ])
    [ "s298"; "b01" ];
  print_newline ()

let ablation_random_phase () =
  print_endline "--- Ablation: randomized opening phase ---";
  print_endline "circ        with-random: len cov | without: len cov";
  List.iter
    (fun name ->
      let c = Circuits.Catalog.circuit name in
      let scan = Scanins.Scan.insert c in
      let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
      let sk = Atpg.Scan_knowledge.create scan in
      let run random_phase =
        let cfg = { (Core.Config.for_circuit c) with Core.Config.random_phase } in
        let f = Core.Flow.generate cfg sk model in
        Array.length f.Core.Flow.sequence, Core.Flow.coverage f
      in
      let lw, cw = run (Some Atpg.Random_phase.default_config) in
      let lo, co = run None in
      Printf.printf "%-10s %16d %6.2f | %12d %6.2f\n" name lw cw lo co)
    ablation_circuits;
  print_newline ()

let ablation_atpg_depth () =
  print_endline "--- Ablation: ATPG frame-depth budget (random phase off) ---";
  print_endline "circ        max-depth  coverage  sequence";
  List.iter
    (fun name ->
      let c = Circuits.Catalog.circuit name in
      let scan = Scanins.Scan.insert c in
      let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
      let sk = Atpg.Scan_knowledge.create scan in
      List.iter
        (fun d ->
          let depths = List.filter (fun x -> x <= d) [ 1; 2; 3; 5; 8 ] in
          let cfg =
            { (Core.Config.for_circuit c) with
              Core.Config.random_phase = None;
              atpg = { Atpg.Seq_atpg.depths; backtrack_limit = 120 } }
          in
          let f = Core.Flow.generate cfg sk model in
          Printf.printf "%-10s %9d %9.2f %9d\n" name d (Core.Flow.coverage f)
            (Array.length f.Core.Flow.sequence))
        [ 1; 2; 5; 8 ])
    [ "s298" ];
  print_newline ()

(* ------------------------------------------- engine comparison (tentpole) *)

(* Dense (full-evaluation) vs event-driven Faultsim.advance on the two
   largest quick-scale profiles.  Also the acceptance check that both
   engines agree on every detection time. *)

type engine_row = {
  eb_circuit : string;
  eb_frames : int;
  eb_faults : int;
  eb_detected : int;
  eb_dense_s : float;
  eb_event_s : float;
  eb_speedup : float;
  eb_par_jobs : int;
  eb_event_par_s : float;
}

let compare_circuits = [ "s5378"; "s35932" ]

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Obs.Clock.now_ns () in
    f ();
    best := min !best (Obs.Clock.to_s (Obs.Clock.elapsed_ns t0))
  done;
  !best

let faultsim_compare ~scale =
  print_endline "--- Faultsim.advance: dense vs event-driven engine ---";
  print_endline
    "circ        faults  frames   dense(s)  event(s)  speedup  par(s) jobs";
  let rows =
    List.map
      (fun name ->
        let c = Circuits.Catalog.circuit ~scale name in
        let scan = Scanins.Scan.insert c in
        let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
        let rng = Prng.Rng.create 42L in
        let width = Netlist.Circuit.input_count scan.Scanins.Scan.circuit in
        let frames = 96 in
        let seq = Logicsim.Vectors.random_seq rng ~width ~length:frames in
        let ids = Array.init (Faultmodel.Model.fault_count model) Fun.id in
        let run engine jobs =
          Logicsim.Faultsim.detection_times ~engine ~jobs model ~fault_ids:ids
            seq
        in
        let dense_times = ref [||] and event_times = ref [||] in
        let dense_s =
          best_of 3 (fun () -> dense_times := run Logicsim.Faultsim.Dense 1)
        in
        let event_s =
          best_of 3 (fun () -> event_times := run Logicsim.Faultsim.Event 1)
        in
        let par_jobs = max 2 (min 8 (Domain.recommended_domain_count () - 1)) in
        let par_times = ref [||] in
        let event_par_s =
          best_of 3 (fun () ->
              par_times := run Logicsim.Faultsim.Event par_jobs)
        in
        if !dense_times <> !event_times || !dense_times <> !par_times then
          failwith
            (Printf.sprintf
               "engine disagreement on %s: event/parallel detection times \
                differ from dense"
               name);
        let detected =
          Array.fold_left (fun a t -> if t >= 0 then a + 1 else a) 0 !dense_times
        in
        Printf.printf "%-10s %7d %7d %9.3f %9.3f %8.2fx %7.3f %4d\n%!" name
          (Array.length ids) frames dense_s event_s (dense_s /. event_s)
          event_par_s par_jobs;
        {
          eb_circuit = name;
          eb_frames = frames;
          eb_faults = Array.length ids;
          eb_detected = detected;
          eb_dense_s = dense_s;
          eb_event_s = event_s;
          eb_speedup = dense_s /. event_s;
          eb_par_jobs = par_jobs;
          eb_event_par_s = event_par_s;
        })
      compare_circuits
  in
  print_newline ();
  rows

(* -------------------- speculative compaction comparison (BENCH_3.json) *)

(* Sequential (compact_jobs=1) vs speculative (compact_jobs=4) static
   compaction on the two largest quick-scale profiles.  Also the acceptance
   check that both kernels agree: byte-identical sequences and identical
   omission stats at any jobs (DESIGN.md §10).  On a single-core host the
   speculative figures include the full dispatch overhead without any
   parallel payoff — the recorded numbers are honest, not projected. *)

type compaction_row = {
  cb_circuit : string;
  cb_frames : int;
  cb_faults : int;
  cb_omitted_len : int;
  cb_spec_jobs : int;
  cb_omit_seq_s : float;
  cb_omit_spec_s : float;
  cb_rest_seq_s : float;
  cb_rest_spec_s : float;
}

let compaction_compare ~scale =
  print_endline
    "--- Static compaction: sequential vs speculative (DESIGN.md \xc2\xa710) ---";
  print_endline
    "circ        faults  frames  omit1(s)  omitK(s)  speedup  rest1(s)  restK(s)  jobs";
  let spec_jobs = 4 in
  let seq_key s =
    String.concat "\n" (Array.to_list (Array.map Logicsim.Vectors.to_string s))
  in
  let rows =
    List.map
      (fun name ->
        let c = Circuits.Catalog.circuit ~scale name in
        let scan = Scanins.Scan.insert c in
        let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
        let rng = Prng.Rng.create 42L in
        let width = Netlist.Circuit.input_count scan.Scanins.Scan.circuit in
        let frames = 120 in
        let seq = Logicsim.Vectors.random_seq rng ~width ~length:frames in
        let ids = Array.init (Faultmodel.Model.fault_count model) Fun.id in
        let targets = Compaction.Target.compute model seq ~fault_ids:ids in
        let omit jobs =
          let cfg = { Compaction.Omission.default_config with jobs } in
          let s, _, st = Compaction.Omission.run model seq targets cfg in
          s, st
        in
        let o1 = ref None and ok = ref None in
        let omit_seq_s = best_of 2 (fun () -> o1 := Some (omit 1)) in
        let omit_spec_s = best_of 2 (fun () -> ok := Some (omit spec_jobs)) in
        let s1, st1 = Option.get !o1 and sk, stk = Option.get !ok in
        if seq_key s1 <> seq_key sk || st1 <> stk then
          failwith
            (Printf.sprintf
               "speculative omission disagreement on %s: compact_jobs=%d \
                diverges from the sequential kernel"
               name spec_jobs);
        let rest jobs = Compaction.Restoration.run ~jobs model seq targets in
        let r1 = ref [||] and rk = ref [||] in
        let rest_seq_s = best_of 2 (fun () -> r1 := rest 1) in
        let rest_spec_s = best_of 2 (fun () -> rk := rest spec_jobs) in
        if seq_key !r1 <> seq_key !rk then
          failwith
            (Printf.sprintf "speculative restoration disagreement on %s" name);
        Printf.printf "%-10s %7d %7d %9.3f %9.3f %8.2fx %9.3f %9.3f %5d\n%!"
          name (Array.length ids) frames omit_seq_s omit_spec_s
          (omit_seq_s /. omit_spec_s)
          rest_seq_s rest_spec_s spec_jobs;
        {
          cb_circuit = name;
          cb_frames = frames;
          cb_faults = Array.length ids;
          cb_omitted_len = Array.length s1;
          cb_spec_jobs = spec_jobs;
          cb_omit_seq_s = omit_seq_s;
          cb_omit_spec_s = omit_spec_s;
          cb_rest_seq_s = rest_seq_s;
          cb_rest_spec_s = rest_spec_s;
        })
      compare_circuits
  in
  print_newline ();
  rows

(* ---------------------------------------------------- server round-trip *)

(* Cold vs warm-cache latency of one `generate` request through the
   daemon, and pipelined request throughput at 1 and 2 worker domains.
   All numbers are end-to-end (socket, framing, parsing, compute) against
   an in-process daemon on a Unix socket; honest single-core latencies,
   not a load-balancer fantasy. *)

type server_bench = {
  sb_circuit : string;
  sb_cold_ms : float;
  sb_warm_ms : float;
  sb_rps_jobs1 : float;
  sb_hi_jobs : int;
  sb_rps_hi : float;
  sb_trial_pool : int;
}

let with_bench_daemon ?(trial_pool = 0) ~jobs f =
  let sock = Filename.temp_file "scanatpg_bench" ".sock" in
  let addr = Server.Daemon.Unix_sock sock in
  let cfg =
    {
      (Server.Daemon.default_config addr) with
      Server.Daemon.jobs;
      trial_pool;
      queue_depth = 64;
      install_signals = false;
      verbose = false;
    }
  in
  let d = Domain.spawn (fun () -> Server.Daemon.run cfg) in
  let rec wait_up n =
    if n > 250 then failwith "bench daemon did not come up"
    else
      match Server.Client.connect addr with
      | c -> Server.Client.close c
      | exception Unix.Unix_error _ ->
        Unix.sleepf 0.02;
        wait_up (n + 1)
  in
  wait_up 0;
  let r = f addr in
  (let c = Server.Client.connect addr in
   ignore (Server.Client.call c {|{"op":"shutdown"}|});
   Server.Client.close c);
  ignore (Domain.join d);
  (try Sys.remove sock with Sys_error _ -> ());
  r

let server_gen_req ~scale name =
  Printf.sprintf
    {|{"op":"generate","circuit":"%s","seed":77,"scale":"%s","sequence":false}|}
    name
    (match scale with Circuits.Profiles.Quick -> "quick" | _ -> "full")

let time_call c req =
  let t = Obs.Clock.now_ns () in
  ignore (Server.Client.call c req);
  Obs.Clock.to_s (Obs.Clock.elapsed_ns t)

(* N identical warm requests written back-to-back on one connection, then
   N responses read back: the daemon pipeline is the only variable. *)
let pipelined_rps addr req n =
  let c = Server.Client.connect addr in
  Fun.protect
    ~finally:(fun () -> Server.Client.close c)
    (fun () ->
      ignore (Server.Client.call c req);
      let fd = Server.Client.fd c in
      let t = Obs.Clock.now_ns () in
      for _ = 1 to n do
        Server.Protocol.write_frame fd req
      done;
      for _ = 1 to n do
        ignore (Server.Protocol.read_frame fd)
      done;
      float_of_int n /. Obs.Clock.to_s (Obs.Clock.elapsed_ns t))

let server_roundtrip ?(hi_jobs = 2) ?(trial_pool = 0) ~scale () =
  print_endline "--- server round-trip (cold vs warm cache, req/s) ---";
  let circuits = [ "s27"; "s298" ] in
  let rows =
    List.map
      (fun name ->
        let req = server_gen_req ~scale name in
        (* Scale the sample counts to the cold latency: a circuit whose
           generate takes seconds would otherwise spend minutes here for
           no extra statistical power. *)
        let cold_ms, warm_ms, slow =
          with_bench_daemon ~jobs:1 (fun addr ->
              let c = Server.Client.connect addr in
              Fun.protect
                ~finally:(fun () -> Server.Client.close c)
                (fun () ->
                  let cold = time_call c req in
                  let slow = cold > 0.1 in
                  let reps = if slow then 3 else 10 in
                  let acc = ref 0.0 in
                  for _ = 1 to reps do
                    acc := !acc +. time_call c req
                  done;
                  cold *. 1e3, !acc /. float_of_int reps *. 1e3, slow))
        in
        let rps jobs =
          with_bench_daemon ~jobs ~trial_pool (fun addr ->
              pipelined_rps addr req (if slow then 4 else 32))
        in
        let rps1 = rps 1 in
        let rps_hi = rps hi_jobs in
        Printf.printf
          "  %-8s cold %8.2f ms   warm %8.2f ms (%.1fx)   %7.1f req/s @1  \
           %7.1f req/s @%d\n\
           %!"
          name cold_ms warm_ms
          (cold_ms /. warm_ms)
          rps1 rps_hi hi_jobs;
        {
          sb_circuit = name;
          sb_cold_ms = cold_ms;
          sb_warm_ms = warm_ms;
          sb_rps_jobs1 = rps1;
          sb_hi_jobs = hi_jobs;
          sb_rps_hi = rps_hi;
          sb_trial_pool = trial_pool;
        })
      circuits
  in
  print_newline ();
  rows

(* ------------------------------------------------------------ fleet gate *)

let fleet_shard_main socket =
  Server.Daemon.run
    {
      (Server.Daemon.default_config (Server.Daemon.Unix_sock socket)) with
      Server.Daemon.queue_depth = 256;
      install_signals = false;
      verbose = false;
    }

let with_bench_router ~shards ~result_cache_capacity f =
  let sock = Filename.temp_file "scanatpg_fleet" ".sock" in
  let addr = Server.Daemon.Unix_sock sock in
  let cfg =
    {
      (Fleet.Router.default_config addr ~shards
         ~launcher:(Fleet.Shard.Inproc fleet_shard_main))
      with
      Fleet.Router.result_cache_capacity;
      install_signals = false;
      verbose = false;
    }
  in
  let d = Domain.spawn (fun () -> Fleet.Router.run cfg) in
  let rec wait_up n =
    if n > 250 then failwith "bench router did not come up"
    else
      match Server.Client.connect addr with
      | c -> Server.Client.close c
      | exception Unix.Unix_error _ ->
        Unix.sleepf 0.02;
        wait_up (n + 1)
  in
  wait_up 0;
  let r = f addr in
  (let c = Server.Client.connect addr in
   ignore (Server.Client.call c {|{"op":"shutdown"}|});
   Server.Client.close c);
  let code = Domain.join d in
  if code <> 0 then failwith "bench router exited non-zero";
  (try Sys.remove sock with Sys_error _ -> ());
  r

(* Shard-balanced cold workload.  Every request carries the same s208
   netlist as explicit .bench text, distinguished only by a trailing
   comment line: the compute cost is identical for every variant while
   the content hash — and therefore the shard — differs.  Variants are
   picked greedily until every one of [shards] shards owns [per_shard]
   of them, so the 4-shard run is not at the mercy of catalog-name hash
   luck.  Distinct seeds per variant defeat the result cache, keeping
   the throughput measurement genuinely cold. *)
let fleet_workload ~shards ~per_shard ~seeds =
  let base =
    Netlist.Bench_format.to_string
      (Circuits.Catalog.circuit ~scale:Circuits.Profiles.Quick "s208")
  in
  let counts = Array.make shards 0 in
  let picked = ref [] in
  let npicked = ref 0 in
  let k = ref 0 in
  while !npicked < shards * per_shard do
    let text = Printf.sprintf "%s# shard-balance variant %d\n" base !k in
    let key =
      Server.Cache.key_of (Server.Protocol.Bench text)
        ~scale:Circuits.Profiles.Quick ~chains:1
    in
    let h = Server.Cache.fnv1a64 key in
    let s =
      Int64.to_int
        (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int shards))
    in
    if counts.(s) < per_shard then begin
      counts.(s) <- counts.(s) + 1;
      incr npicked;
      picked := text :: !picked
    end;
    incr k
  done;
  let id = ref 0 in
  List.concat_map
    (fun text ->
      List.map
        (fun seed ->
          incr id;
          Obs.Json.to_string
            (Obs.Json.Obj
               [ "id", Obs.Json.Int !id;
                 "op", Obs.Json.Str "generate";
                 "bench", Obs.Json.Str text;
                 "seed", Obs.Json.Int seed;
                 "sequence", Obs.Json.Bool false ]))
        seeds)
    (List.rev !picked)

(* One pipelined pass: write the whole stream, collect responses by id
   on a reader domain (the ids are pre-stamped 1..n, so two passes of
   the same stream are directly comparable for byte identity). *)
let fleet_pass addr reqs =
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  let c = Server.Client.connect addr in
  Fun.protect
    ~finally:(fun () -> Server.Client.close c)
    (fun () ->
      let fd = Server.Client.fd c in
      let responses = Array.make n "" in
      let t = Obs.Clock.now_ns () in
      let reader =
        Domain.spawn (fun () ->
            let rec go got =
              if got = n then ()
              else
                match Server.Protocol.read_frame fd with
                | Some p ->
                  (match Fleet.Result_cache.split_id p with
                  | Some (id, _) when id >= 1 && id <= n ->
                    responses.(id - 1) <- p
                  | _ -> ());
                  go (got + 1)
                | None -> ()
            in
            go 0)
      in
      Array.iter (fun p -> Server.Protocol.write_frame fd p) arr;
      Domain.join reader;
      let wall = Obs.Clock.to_s (Obs.Clock.elapsed_ns t) in
      responses, wall)

let fleet_all_ok responses =
  Array.for_all
    (fun p ->
      match Option.bind (Obs.Json.member "status" (Obs.Json.parse p))
              Obs.Json.get_str with
      | Some "ok" -> true
      | _ -> false
      | exception Obs.Json.Parse_error _ -> false)
    responses

type fleet_row = {
  fb_shards : int;
  fb_cold_wall_s : float;
  fb_cold_rps : float;
  fb_warm_wall_s : float;
  fb_warm_rps : float;
  fb_hit_rate : float;
  fb_byte_identical : bool;
  fb_all_ok : bool;
}

let fleet_topology ~shards reqs =
  let n = List.length reqs in
  with_bench_router ~shards ~result_cache_capacity:(2 * n) (fun addr ->
      let cold, cold_wall = fleet_pass addr reqs in
      (* two warm passes: a hit-rate sweep, not a single lucky lookup *)
      let warm1, warm_wall = fleet_pass addr reqs in
      let warm2, _ = fleet_pass addr reqs in
      let stats =
        let c = Server.Client.connect addr in
        Fun.protect
          ~finally:(fun () -> Server.Client.close c)
          (fun () -> Server.Client.call c {|{"id":1,"op":"stats"}|})
      in
      let counter name =
        match
          Option.bind
            (Option.bind
               (Obs.Json.member "counters" (Obs.Json.parse stats))
               (Obs.Json.member name))
            Obs.Json.get_int
        with
        | Some v -> v
        | None -> 0
      in
      let hits = counter "server.result_hit" in
      let misses = counter "server.result_miss" in
      let hit_rate =
        (* of the two warm passes: the cold pass misses by design *)
        float_of_int hits /. float_of_int (max 1 (2 * n))
      in
      ignore misses;
      {
        fb_shards = shards;
        fb_cold_wall_s = cold_wall;
        fb_cold_rps = float_of_int n /. cold_wall;
        fb_warm_wall_s = warm_wall;
        fb_warm_rps = float_of_int n /. warm_wall;
        fb_hit_rate = hit_rate;
        fb_byte_identical = cold = warm1 && warm1 = warm2;
        fb_all_ok =
          fleet_all_ok cold && fleet_all_ok warm1 && fleet_all_ok warm2;
      })

(* ----------------------------------------------------- bechamel kernels *)

let kernels () =
  let open Bechamel in
  (* note: Bechamel.Toolkit is deliberately not opened — it contains a
     [Compaction] measure module that would shadow our library. *)
  print_endline "--- Bechamel kernel timings ---";
  (* Shared fixtures, built once. *)
  let c = Circuits.Iscas.s27 () in
  let scan = Scanins.Scan.insert c in
  let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
  let sk = Atpg.Scan_knowledge.create scan in
  let cfg = Core.Config.for_circuit c in
  let rng = Prng.Rng.create 7L in
  let width = Netlist.Circuit.input_count scan.Scanins.Scan.circuit in
  let seq = Logicsim.Vectors.random_seq rng ~width ~length:128 in
  let ids = Array.init (Faultmodel.Model.fault_count model) Fun.id in
  let flow = Core.Flow.generate cfg sk model in
  let base = Baseline.Gen26.generate scan model cfg.Core.Config.atpg in
  let tests =
    Baseline.Compact26.run scan model ~fault_ids:base.Baseline.Gen26.detected
      base.Baseline.Gen26.tests
  in
  let test_table5 =
    Test.make ~name:"table5: unified generation (s27)"
      (Staged.stage (fun () -> ignore (Core.Flow.generate cfg sk model)))
  in
  let test_table6 =
    Test.make ~name:"table6: restoration+omission (s27)"
      (Staged.stage (fun () ->
           let r =
             Compaction.Restoration.run model flow.Core.Flow.sequence
               flow.Core.Flow.targets
           in
           let t =
             Compaction.Target.compute model r
               ~fault_ids:flow.Core.Flow.targets.Compaction.Target.fault_ids
           in
           ignore (Compaction.Omission.run model r t cfg.Core.Config.omission)))
  in
  let test_table7 =
    Test.make ~name:"table7: translate+compact (s27)"
      (Staged.stage (fun () ->
           let rng = Prng.Rng.create 13L in
           let t7 = Translation.Translate.run scan ~tests ~rng in
           let tg =
             Compaction.Target.compute model t7
               ~fault_ids:base.Baseline.Gen26.detected
           in
           ignore (Compaction.Restoration.run model t7 tg)))
  in
  let test_goodsim =
    Test.make ~name:"goodsim: 128 frames (s27_scan)"
      (Staged.stage
         (let sim = Logicsim.Goodsim.create model.Faultmodel.Model.circuit in
          fun () -> ignore (Logicsim.Goodsim.run sim seq)))
  in
  let test_faultsim =
    Test.make ~name:"faultsim: 58 faults x 128 frames (s27_scan)"
      (Staged.stage (fun () ->
           ignore (Logicsim.Faultsim.detection_times model ~fault_ids:ids seq)))
  in
  let test_obs_null =
    (* Acceptance check for the no-op sink: a span + two counter bumps on
       the disabled tracer must stay in the nanosecond range so leaving
       instrumentation compiled into the hot loops is free. *)
    Test.make ~name:"obs: null-sink span + 2 counters"
      (Staged.stage
         (let m = Obs.Metrics.create () in
          let cs = Obs.Metrics.counters m in
          fun () ->
            Obs.Trace.with_span Obs.Trace.null "k" (fun () ->
                Obs.Counters.add cs "a" 1;
                Obs.Counters.add cs "b" 2)))
  in
  let test_podem =
    Test.make ~name:"podem: depth 3, one fault (s27_scan)"
      (Staged.stage (fun () ->
           ignore
             (Atpg.Podem.run model ~fault:0 ~depth:3
                ~start:Atpg.Podem.Free_state ~backtrack_limit:100 ())))
  in
  let grouped =
    Test.make_grouped ~name:"scanatpg"
      [ test_table5; test_table6; test_table7; test_goodsim; test_faultsim;
        test_podem; test_obs_null ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg_b =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg_b instances grouped in
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = benchmark () in
  let collected = ref [] in
  List.iter
    (fun tbl ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols_result -> rows := (name, ols_result) :: !rows)
        tbl;
      List.iter
        (fun (name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
            Printf.printf "%-48s %12.3f ms/run\n" name (est /. 1e6);
            collected := (name, est) :: !collected
          | Some [] | None -> Printf.printf "%-48s (no estimate)\n" name)
        (List.sort compare !rows))
    results;
  print_newline ();
  List.rev !collected

(* --------------------------------------------------------- JSON output *)

(* Machine-readable benchmark record (schema: EXPERIMENTS.md §"BENCH_*.json
   schema").  Hand-rolled writer — the repo deliberately has no JSON
   dependency. *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let metrics_json (m : Obs.Metrics.t) =
  let phases =
    String.concat ", "
      (List.map
         (fun (name, s) -> Printf.sprintf "\"%s\": %.6f" (json_escape name) s)
         (Obs.Metrics.phases m))
  in
  let counters =
    String.concat ", "
      (List.map
         (fun (name, v) -> Printf.sprintf "\"%s\": %d" (json_escape name) v)
         (Obs.Counters.to_alist (Obs.Metrics.counters m)))
  in
  let histograms =
    String.concat ", "
      (List.map
         (fun (name, h) ->
           Printf.sprintf
             "\"%s\": {\"count\": %d, \"sum\": %d, \"p50\": %d, \"p90\": %d, \
              \"p99\": %d}"
             (json_escape name) (Obs.Hist.count h) (Obs.Hist.sum h)
             (Obs.Hist.percentile h 0.50)
             (Obs.Hist.percentile h 0.90)
             (Obs.Hist.percentile h 0.99))
         (Obs.Metrics.hists m))
  in
  Printf.sprintf "\"phases\": {%s}, \"counters\": {%s}, \"histograms\": {%s}"
    phases counters histograms

let write_bench_json path ~scale ~jobs ~total_wall_s ~pipelines ~engines
    ~kernel_rows =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let seq f xs = String.concat ",\n" (List.map f xs) in
  add "{\n";
  add "  \"schema\": \"scanatpg-bench/2\",\n";
  add "  \"scale\": \"%s\",\n" (json_escape scale);
  add "  \"jobs\": %d,\n" jobs;
  add "  \"total_wall_s\": %.3f,\n" total_wall_s;
  add "  \"pipelines\": [\n%s\n  ],\n"
    (seq
       (fun ((r : Core.Pipeline.result), wall) ->
         Printf.sprintf
           "    {\"circuit\": \"%s\", \"wall_s\": %.3f, \"targeted\": %d, \
            \"detected\": %d, \"coverage\": %.2f, \"test_len\": %d, \
            \"omit_len\": %d, \"baseline_cycles\": %d, %s}"
           (json_escape r.Core.Pipeline.circuit)
           wall r.Core.Pipeline.row5.Core.Pipeline.faults
           r.Core.Pipeline.row5.Core.Pipeline.detected
           r.Core.Pipeline.row5.Core.Pipeline.fcov
           r.Core.Pipeline.row6.Core.Pipeline.test_len.Core.Pipeline.total
           r.Core.Pipeline.row6.Core.Pipeline.omit_len.Core.Pipeline.total
           r.Core.Pipeline.row6.Core.Pipeline.baseline_cycles
           (metrics_json r.Core.Pipeline.metrics))
       pipelines);
  add "  \"faultsim\": [\n%s\n  ],\n"
    (seq
       (fun e ->
         Printf.sprintf
           "    {\"circuit\": \"%s\", \"frames\": %d, \"faults\": %d, \
            \"detected\": %d, \"dense_s\": %.6f, \"event_s\": %.6f, \
            \"event_speedup\": %.3f, \"parallel_jobs\": %d, \
            \"event_parallel_s\": %.6f}"
           (json_escape e.eb_circuit) e.eb_frames e.eb_faults e.eb_detected
           e.eb_dense_s e.eb_event_s e.eb_speedup e.eb_par_jobs
           e.eb_event_par_s)
       engines);
  add "  \"kernels\": [\n%s\n  ]\n"
    (seq
       (fun (name, ns) ->
         Printf.sprintf "    {\"name\": \"%s\", \"ns_per_run\": %.1f}"
           (json_escape name) ns)
       kernel_rows);
  add "}\n";
  Obs.Fileio.write_string path (Buffer.contents b);
  Printf.printf "wrote %s\n%!" path

let write_bench3_json path ~scale ~rows =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"scanatpg-bench/3\",\n";
  add "  \"scale\": \"%s\",\n" (json_escape scale);
  add "  \"compaction\": [\n%s\n  ]\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    {\"circuit\": \"%s\", \"frames\": %d, \"faults\": %d, \
               \"omitted_len\": %d, \"speculative_jobs\": %d, \
               \"omission_sequential_s\": %.6f, \
               \"omission_speculative_s\": %.6f, \
               \"omission_speedup\": %.3f, \
               \"restoration_sequential_s\": %.6f, \
               \"restoration_speculative_s\": %.6f}"
              (json_escape r.cb_circuit) r.cb_frames r.cb_faults
              r.cb_omitted_len r.cb_spec_jobs r.cb_omit_seq_s r.cb_omit_spec_s
              (r.cb_omit_seq_s /. r.cb_omit_spec_s)
              r.cb_rest_seq_s r.cb_rest_spec_s)
          rows));
  add "}\n";
  Obs.Fileio.write_string path (Buffer.contents b);
  Printf.printf "wrote %s\n%!" path

let write_bench4_json path ~scale ~rows =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"scanatpg-bench/4\",\n";
  add "  \"scale\": \"%s\",\n" (json_escape scale);
  add "  \"server\": [\n%s\n  ]\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    {\"circuit\": \"%s\", \"cold_ms\": %.3f, \"warm_ms\": \
               %.3f, \"warm_speedup\": %.3f, \"rps_jobs1\": %.1f, \
               \"rps_jobs2\": %.1f}"
              (json_escape r.sb_circuit) r.sb_cold_ms r.sb_warm_ms
              (r.sb_cold_ms /. r.sb_warm_ms)
              r.sb_rps_jobs1 r.sb_rps_hi)
          rows));
  add "}\n";
  Obs.Fileio.write_string path (Buffer.contents b);
  Printf.printf "wrote %s\n%!" path

(* BENCH_5: the multicore speedup gate (schema scanatpg-bench/5).  Written
   by `--multicore-gate`, consumed by the CI bench job: [omission_speedup]
   is sequential-vs-speculative wall time at [speculative_jobs] on the
   runner's real cores, and [best_omission_speedup] is what the
   [--min-omission-speedup] gate is judged on.  [cores] records
   [Domain.recommended_domain_count] so a baseline from a differently
   sized runner is recognisable. *)
let write_bench5_json path ~scale ~cores ~gate ~compaction ~server =
  let best =
    List.fold_left
      (fun a r -> Float.max a (r.cb_omit_seq_s /. r.cb_omit_spec_s))
      0.0 compaction
  in
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"scanatpg-bench/5\",\n";
  add "  \"scale\": \"%s\",\n" (json_escape scale);
  add "  \"cores\": %d,\n" cores;
  add "  \"gate_min_omission_speedup\": %.2f,\n" gate;
  add "  \"best_omission_speedup\": %.3f,\n" best;
  add "  \"compaction\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    {\"circuit\": \"%s\", \"frames\": %d, \"faults\": %d, \
               \"omitted_len\": %d, \"speculative_jobs\": %d, \
               \"omission_sequential_s\": %.6f, \
               \"omission_speculative_s\": %.6f, \
               \"omission_speedup\": %.3f, \
               \"restoration_sequential_s\": %.6f, \
               \"restoration_speculative_s\": %.6f, \
               \"restoration_speedup\": %.3f}"
              (json_escape r.cb_circuit) r.cb_frames r.cb_faults
              r.cb_omitted_len r.cb_spec_jobs r.cb_omit_seq_s r.cb_omit_spec_s
              (r.cb_omit_seq_s /. r.cb_omit_spec_s)
              r.cb_rest_seq_s r.cb_rest_spec_s
              (r.cb_rest_seq_s /. r.cb_rest_spec_s))
          compaction));
  add "  \"server\": [\n%s\n  ]\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    {\"circuit\": \"%s\", \"cold_ms\": %.3f, \"warm_ms\": \
               %.3f, \"warm_speedup\": %.3f, \"rps_jobs1\": %.1f, \
               \"hi_jobs\": %d, \"rps_hi\": %.1f, \"rps_speedup\": %.3f, \
               \"trial_pool\": %d}"
              (json_escape r.sb_circuit) r.sb_cold_ms r.sb_warm_ms
              (r.sb_cold_ms /. r.sb_warm_ms)
              r.sb_rps_jobs1 r.sb_hi_jobs r.sb_rps_hi
              (r.sb_rps_hi /. r.sb_rps_jobs1)
              r.sb_trial_pool)
          server));
  add "}\n";
  Obs.Fileio.write_string path (Buffer.contents b);
  Printf.printf "wrote %s\n%!" path;
  best

(* BENCH_6: the fleet gate (schema scanatpg-bench/6).  Written by
   `--fleet-gate`, consumed by the CI bench job: [fleet_speedup] is
   cold-stream throughput at 4 shards over 1 shard on the runner's real
   cores, [warm_hit_rate] is the result-cache hit rate over the two
   warm passes, and [byte_identical] asserts cached == computed.  The
   hit-rate and byte-identity gates are machine-independent; the
   speedup gate only means something on a multi-core runner. *)
let write_bench6_json path ~scale ~cores ~gate ~requests ~workload ~rows =
  let find shards =
    List.find_opt (fun r -> r.fb_shards = shards) rows
  in
  let speedup =
    match find 1, find 4 with
    | Some r1, Some r4 -> r4.fb_cold_rps /. r1.fb_cold_rps
    | _ -> 0.0
  in
  let hit_rate =
    List.fold_left (fun a r -> Float.min a r.fb_hit_rate) 1.0 rows
  in
  let ident = List.for_all (fun r -> r.fb_byte_identical) rows in
  let all_ok = List.for_all (fun r -> r.fb_all_ok) rows in
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"scanatpg-bench/6\",\n";
  add "  \"scale\": \"%s\",\n" (json_escape scale);
  add "  \"cores\": %d,\n" cores;
  add "  \"gate_min_fleet_speedup\": %.2f,\n" gate;
  add "  \"requests\": %d,\n" requests;
  add "  \"workload\": \"%s\",\n" (json_escape workload);
  add "  \"fleet_speedup\": %.3f,\n" speedup;
  add "  \"warm_hit_rate\": %.4f,\n" hit_rate;
  add "  \"byte_identical\": %b,\n" ident;
  add "  \"all_ok\": %b,\n" all_ok;
  add "  \"fleet\": [\n%s\n  ]\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    {\"shards\": %d, \"cold_wall_s\": %.6f, \"cold_rps\": \
               %.3f, \"warm_wall_s\": %.6f, \"warm_rps\": %.3f, \
               \"warm_hit_rate\": %.4f, \"byte_identical\": %b, \
               \"all_ok\": %b}"
              r.fb_shards r.fb_cold_wall_s r.fb_cold_rps r.fb_warm_wall_s
              r.fb_warm_rps r.fb_hit_rate r.fb_byte_identical r.fb_all_ok)
          rows));
  add "}\n";
  Obs.Fileio.write_string path (Buffer.contents b);
  Printf.printf "wrote %s\n%!" path;
  speedup, hit_rate, ident, all_ok

(* The CI fleet-gate entry point: a shard-balanced cold stream through a
   1-shard and a 4-shard router (throughput ratio is the speedup), then
   two warm passes of the same stream per topology (result-cache sweep).
   Hit-rate and byte-identity failures are hard errors anywhere; the
   speedup floor is opt-in via --min-fleet-speedup because it needs real
   cores. *)
let run_fleet_gate o =
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "scanatpg bench --fleet-gate: %d recommended domains\n\n%!" cores;
  let per_shard = 2 and seeds = [ 1; 2; 3 ] in
  let reqs = fleet_workload ~shards:4 ~per_shard ~seeds in
  let n = List.length reqs in
  let workload =
    Printf.sprintf
      "s208 x %d content-hash-balanced bench variants x %d seeds"
      (4 * per_shard) (List.length seeds)
  in
  Printf.printf "  workload: %s (%d requests)\n%!" workload n;
  let rows =
    List.map
      (fun shards ->
        let r = fleet_topology ~shards reqs in
        Printf.printf
          "  %d shard(s): cold %6.2fs (%6.2f req/s)   warm %6.3fs \
           (%7.1f req/s)   hit-rate %.2f   identical %b\n%!"
          shards r.fb_cold_wall_s r.fb_cold_rps r.fb_warm_wall_s
          r.fb_warm_rps r.fb_hit_rate r.fb_byte_identical;
        r)
      [ 1; 4 ]
  in
  let speedup, hit_rate, ident, all_ok =
    write_bench6_json o.json6 ~scale:"quick" ~cores
      ~gate:o.min_fleet_speedup ~requests:n ~workload ~rows
  in
  if not all_ok then begin
    Printf.eprintf "FAIL: a fleet request did not come back ok\n%!";
    exit 5
  end;
  if not ident then begin
    Printf.eprintf
      "FAIL: a memoized response differed from the computed one\n%!";
    exit 5
  end;
  if hit_rate < 0.9 then begin
    Printf.eprintf
      "FAIL: warm result-cache hit rate %.2f is under the 0.90 gate\n%!"
      hit_rate;
    exit 5
  end;
  if o.min_fleet_speedup > 0.0 && speedup < o.min_fleet_speedup then begin
    Printf.eprintf
      "FAIL: 4-shard fleet speedup %.2fx is under the %.2fx gate (%d \
       cores)\n%!"
      speedup o.min_fleet_speedup cores;
    exit 5
  end;
  Printf.printf
    "fleet gate: speedup %.2fx (gate %.2fx), warm hit-rate %.2f, cached \
     == computed\n%!"
    speedup o.min_fleet_speedup hit_rate

(* ----------------------------------------------------------------- main *)

(* The CI bench-gate entry point: only the two multicore kernels run —
   speculative compaction at jobs 1 vs 4 and daemon round-trips at
   server-jobs 1 vs 4 through a shared 4-domain trial pool — and the run
   fails (exit 5) when the best omission speedup lands under the
   [--min-omission-speedup] floor.  Tables, ablations and Bechamel are
   skipped so the job stays minutes, not tens of minutes. *)
let run_multicore_gate o =
  let cores = Domain.recommended_domain_count () in
  let scale_name =
    match o.scale with Circuits.Profiles.Quick -> "quick" | _ -> "full"
  in
  Printf.printf
    "scanatpg bench --multicore-gate: scale=%s, %d recommended domains\n\n%!"
    scale_name cores;
  let compaction = compaction_compare ~scale:o.scale in
  let server = server_roundtrip ~scale:o.scale ~hi_jobs:4 ~trial_pool:4 () in
  let best =
    write_bench5_json o.json5 ~scale:scale_name ~cores
      ~gate:o.min_omission_speedup ~compaction ~server
  in
  if o.min_omission_speedup > 0.0 && best < o.min_omission_speedup then begin
    Printf.eprintf
      "FAIL: best omission speedup %.2fx is under the %.2fx gate (%d cores)\n%!"
      best o.min_omission_speedup cores;
    exit 5
  end;
  Printf.printf "multicore gate: best omission speedup %.2fx (gate %.2fx)\n%!"
    best o.min_omission_speedup

let () =
  let o = parse_args () in
  if o.multicore_gate || o.fleet_gate then begin
    if o.multicore_gate then run_multicore_gate o;
    if o.fleet_gate then run_fleet_gate o;
    exit 0
  end;
  Printf.printf
    "scanatpg bench: %d circuits, scale=%s, jobs=%d\n\
     (synthetic substitutes for all benchmarks except s27 -- see DESIGN.md)\n\n%!"
    (List.length o.circuits)
    (match o.scale with Circuits.Profiles.Quick -> "quick" | _ -> "full")
    o.jobs;
  let t0 = Obs.Clock.now_ns () in
  let timed_results =
    parallel_map ~jobs:o.jobs
      (fun name ->
        let metrics = Obs.Metrics.create () in
        let t = Obs.Clock.now_ns () in
        let r = Core.Pipeline.run ~scale:o.scale ~metrics name in
        let wall = Obs.Clock.to_s (Obs.Clock.elapsed_ns t) in
        Printf.printf "  %-8s done in %.1fs\n%!" name wall;
        r, wall)
      o.circuits
  in
  let results = List.map fst timed_results in
  Printf.printf "all pipelines done in %.1fs\n\n%!"
    (Obs.Clock.to_s (Obs.Clock.elapsed_ns t0));
  if List.mem 5 o.tables then begin
    print_endline "=== Table 5 (measured) ===";
    print_string (Core.Report.table5 (List.map (fun r -> r.Core.Pipeline.row5) results));
    print_newline ();
    compare5 (List.map (fun r -> r.Core.Pipeline.row5) results)
  end;
  if List.mem 6 o.tables then begin
    print_endline "=== Table 6 (measured) ===";
    print_string (Core.Report.table6 (List.map (fun r -> r.Core.Pipeline.row6) results));
    print_newline ();
    compare6 (List.map (fun r -> r.Core.Pipeline.row6) results)
  end;
  if List.mem 7 o.tables then begin
    print_endline "=== Table 7 (measured) ===";
    let rows7 = List.filter_map (fun r -> r.Core.Pipeline.row7) results in
    print_string (Core.Report.table7 rows7);
    print_newline ();
    compare7 rows7
  end;
  if o.ablation then begin
    ablation_compaction_order ();
    ablation_scan_knowledge ();
    ablation_random_phase ();
    ablation_atpg_depth ();
    ablation_chains ()
  end;
  let engines = if o.kernels then faultsim_compare ~scale:o.scale else [] in
  let compaction_rows =
    if o.kernels then compaction_compare ~scale:o.scale else []
  in
  let server_rows =
    if o.kernels then server_roundtrip ~scale:o.scale () else []
  in
  let kernel_rows = if o.kernels then kernels () else [] in
  let scale_name =
    match o.scale with Circuits.Profiles.Quick -> "quick" | _ -> "full"
  in
  write_bench_json o.json ~scale:scale_name ~jobs:o.jobs
    ~total_wall_s:(Obs.Clock.to_s (Obs.Clock.elapsed_ns t0))
    ~pipelines:timed_results ~engines ~kernel_rows;
  if compaction_rows <> [] then
    write_bench3_json o.json3 ~scale:scale_name ~rows:compaction_rows;
  if server_rows <> [] then
    write_bench4_json o.json4 ~scale:scale_name ~rows:server_rows
