(* Cross-validation properties over randomly generated circuits.

   Independent implementations are checked against each other on inputs
   neither was tuned for: the scalar reference evaluator vs the levelized
   simulator, the parallel fault simulator vs single-fault runs, scan-mode
   equivalence, and — semantically — fault collapsing: two faults in one
   equivalence class must produce identical machines. *)

module C = Netlist.Circuit
module G = Netlist.Gate
module L = Netlist.Logic
module F = Faultmodel.Fault
module Model = Faultmodel.Model
module Vectors = Logicsim.Vectors

let gen_circuit seed =
  Circuits.Synthetic.generate ~name:"xv" ~pis:4 ~ffs:6 ~gates:45
    ~seed:(Int64.of_int seed) ()

(* Scalar simulation with an optional forced node: the reference machine
   for everything below. *)
let forced_response ?force c seq =
  let lv = Netlist.Levelize.of_circuit c in
  let values = Array.make (C.node_count c) L.X in
  let dffs = C.dffs c in
  let dff_fanin = Array.map (fun ff -> (C.node c ff).C.fanins.(0)) dffs in
  let state = Array.make (Array.length dffs) L.X in
  let apply n =
    match force with
    | Some (fn, fv) when fn = n -> values.(n) <- fv
    | Some _ | None -> ()
  in
  Array.map
    (fun vec ->
      Array.iteri
        (fun i id ->
          values.(id) <- vec.(i);
          apply id)
        (C.inputs c);
      Array.iteri
        (fun k id ->
          values.(id) <- state.(k);
          apply id)
        dffs;
      Array.iter
        (fun nd ->
          values.(nd) <- Logicsim.Goodsim.eval_node c values nd;
          apply nd)
        lv.Netlist.Levelize.order;
      Array.iteri (fun k d -> state.(k) <- values.(d)) dff_fanin;
      Array.map (fun o -> values.(o)) (C.outputs c))
    seq

let same_matrix a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun r1 r2 -> Array.for_all2 L.equal r1 r2) a b

(* ------------------------------------------------------------ properties *)

let prop_goodsim_matches_reference =
  QCheck2.Test.make ~name:"goodsim = scalar reference on random circuits"
    ~count:15
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let c = gen_circuit seed in
      let rng = Prng.Rng.create (Int64.of_int (seed + 1)) in
      let seq = Vectors.random_seq rng ~width:(C.input_count c) ~length:30 in
      let sim = Logicsim.Goodsim.create c in
      same_matrix (Logicsim.Goodsim.run sim seq) (forced_response c seq))

let prop_scan_functional_equivalence =
  QCheck2.Test.make
    ~name:"C_scan with scan_sel=0 behaves like C (random circuits)" ~count:15
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let c = gen_circuit seed in
      let scan = Scanins.Scan.insert c in
      let cs = scan.Scanins.Scan.circuit in
      let rng = Prng.Rng.create (Int64.of_int (seed + 2)) in
      let npi = C.input_count c in
      let seq = Vectors.random_seq rng ~width:npi ~length:30 in
      let widened =
        Array.map
          (fun v ->
            let w = Array.make (C.input_count cs) L.Zero in
            Array.blit v 0 w 0 npi;
            w.(Scanins.Scan.sel_position scan) <- L.Zero;
            w.(Scanins.Scan.inp_position scan ~chain:0)
              <- L.of_bool (Prng.Rng.bool rng);
            w)
          seq
      in
      let oc = forced_response c seq in
      let os = forced_response cs widened in
      (* The original outputs come first in C_scan's output list. *)
      Array.for_all2
        (fun r1 r2 ->
          Array.for_all2 L.equal r1 (Array.sub r2 0 (Array.length r1)))
        oc os)

let prop_parallel_equals_serial =
  QCheck2.Test.make ~name:"parallel faultsim = serial (random circuits)"
    ~count:8
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let c = gen_circuit seed in
      let scan = Scanins.Scan.insert c in
      let m = Model.build scan.Scanins.Scan.circuit in
      let rng = Prng.Rng.create (Int64.of_int (seed + 3)) in
      let seq =
        Vectors.random_seq rng
          ~width:(C.input_count m.Model.circuit) ~length:40
      in
      let ids = Array.init (Model.fault_count m) Fun.id in
      let par = Logicsim.Faultsim.detection_times m ~fault_ids:ids seq in
      Array.for_all
        (fun fid ->
          let ser =
            match Logicsim.Faultsim.detects_single m ~fault:fid seq with
            | Some t -> t
            | None -> -1
          in
          par.(fid) = ser)
        ids)

let prop_event_equals_dense =
  (* The event-driven engine against the dense PROOFS-style oracle:
     identical detection times for every fault, and identical surviving
     machine state (flip-flop words and strict effects) for every
     undetected fault.  The sequence ends in a scan-shift suffix and the
     event session advances in two chunks, covering continuation and
     mid-run repacking. *)
  QCheck2.Test.make ~name:"event engine = dense oracle (random circuits)"
    ~count:10
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let c = gen_circuit seed in
      let scan = Scanins.Scan.insert c in
      let cs = scan.Scanins.Scan.circuit in
      let m = Model.build cs in
      let rng = Prng.Rng.create (Int64.of_int (seed + 6)) in
      let seq = Vectors.random_seq rng ~width:(C.input_count cs) ~length:40 in
      let sel = Scanins.Scan.sel_position scan in
      Array.iteri (fun i v -> if i >= 30 then v.(sel) <- L.One) seq;
      let ids = Array.init (Model.fault_count m) Fun.id in
      let module FS = Logicsim.Faultsim in
      let dense = FS.create ~engine:FS.Dense m ~fault_ids:ids in
      let event = FS.create ~engine:FS.Event m ~fault_ids:ids in
      FS.advance dense seq;
      FS.advance event (Array.sub seq 0 17);
      FS.advance event (Array.sub seq 17 23);
      Array.for_all
        (fun fid ->
          FS.detection_time dense fid = FS.detection_time event fid
          && (FS.detection_time dense fid <> None
             || FS.faulty_state dense fid = FS.faulty_state event fid
                && FS.ff_effects dense fid = FS.ff_effects event fid))
        ids)

let prop_jobs_deterministic =
  (* Domain-parallel group scheduling must be invisible in the results. *)
  QCheck2.Test.make ~name:"jobs > 1 gives identical detection times" ~count:6
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let c = gen_circuit seed in
      let scan = Scanins.Scan.insert c in
      let m = Model.build scan.Scanins.Scan.circuit in
      let rng = Prng.Rng.create (Int64.of_int (seed + 7)) in
      let seq =
        Vectors.random_seq rng
          ~width:(C.input_count m.Model.circuit) ~length:40
      in
      let ids = Array.init (Model.fault_count m) Fun.id in
      Logicsim.Faultsim.detection_times m ~fault_ids:ids seq
      = Logicsim.Faultsim.detection_times ~jobs:3 m ~fault_ids:ids seq)

let prop_collapse_is_semantic =
  (* Two faults in one equivalence class produce the same faulty machine:
     identical output matrices on random stimuli. *)
  QCheck2.Test.make ~name:"equivalence classes are semantically equivalent"
    ~count:8
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let c = gen_circuit seed in
      let scan = Scanins.Scan.insert c in
      let base = scan.Scanins.Scan.circuit in
      let m = Model.build base in
      let collapsed = Faultmodel.Collapse.run base in
      let rng = Prng.Rng.create (Int64.of_int (seed + 4)) in
      let seq =
        Vectors.random_seq rng
          ~width:(C.input_count m.Model.circuit) ~length:25
      in
      (* Group universe faults by class. *)
      let by_class = Hashtbl.create 64 in
      Array.iteri
        (fun i f ->
          let cls = collapsed.Faultmodel.Collapse.class_of.(i) in
          Hashtbl.replace by_class cls
            (f :: Option.value ~default:[] (Hashtbl.find_opt by_class cls)))
        collapsed.Faultmodel.Collapse.universe;
      let ok = ref true in
      Hashtbl.iter
        (fun _ members ->
          match members with
          | first :: (_ :: _ as rest) when !ok ->
            let resp (f : F.t) =
              let node = Model.node_for_site m f.F.site in
              forced_response ~force:(node, L.of_bool f.F.stuck)
                m.Model.circuit seq
            in
            let r0 = resp first in
            List.iter (fun f -> if not (same_matrix r0 (resp f)) then ok := false) rest
          | _ -> ())
        by_class;
      !ok)

let prop_flow_targets_hold =
  (* The full generation flow's bookkeeping is honest on random circuits:
     every target is detected by the final sequence at its recorded time. *)
  QCheck2.Test.make ~name:"flow detection times verified by simulation"
    ~count:4
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let c = gen_circuit seed in
      let scan = Scanins.Scan.insert c in
      let m = Model.build scan.Scanins.Scan.circuit in
      let sk = Atpg.Scan_knowledge.create scan in
      let cfg =
        { (Core.Config.for_circuit c) with
          Core.Config.atpg = { Atpg.Seq_atpg.depths = [ 1; 2; 4 ]; backtrack_limit = 60 } }
      in
      let flow = Core.Flow.generate cfg sk m in
      let t = flow.Core.Flow.targets in
      Array.for_all2
        (fun fid dt ->
          Logicsim.Faultsim.detects_single m ~fault:fid flow.Core.Flow.sequence
          = Some dt)
        t.Compaction.Target.fault_ids t.Compaction.Target.det_times)

let prop_telemetry_invisible =
  (* Turning every telemetry knob on — metrics document, live tracer,
     activity observation — must not change what the flow and the
     compaction procedures compute. *)
  QCheck2.Test.make ~name:"telemetry on vs off gives identical results"
    ~count:4
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let c = gen_circuit seed in
      let scan = Scanins.Scan.insert c in
      let m = Model.build scan.Scanins.Scan.circuit in
      let sk = Atpg.Scan_knowledge.create scan in
      let base =
        { (Core.Config.for_circuit c) with
          Core.Config.atpg =
            { Atpg.Seq_atpg.depths = [ 1; 2; 4 ]; backtrack_limit = 60 } }
      in
      let run ~telemetry =
        let cfg = { base with Core.Config.observe = telemetry } in
        let flow =
          if telemetry then
            let metrics = Obs.Metrics.create () in
            let trace = Obs.Trace.create () in
            Obs.Metrics.timed metrics ~trace "generate" (fun () ->
                Core.Flow.generate ~metrics cfg sk m)
          else Core.Flow.generate cfg sk m
        in
        let restored =
          Compaction.Restoration.run m flow.Core.Flow.sequence
            flow.Core.Flow.targets
        in
        let t =
          Compaction.Target.compute m restored
            ~fault_ids:flow.Core.Flow.targets.Compaction.Target.fault_ids
        in
        let omitted, _, _ =
          Compaction.Omission.run m restored t cfg.Core.Config.omission
        in
        flow.Core.Flow.sequence, restored, omitted
      in
      run ~telemetry:true = run ~telemetry:false)

let prop_metrics_jobs_invariant =
  (* The flow's merged telemetry — every counter and histogram — must be
     bit-identical at any simulation job count, not just the results. *)
  QCheck2.Test.make ~name:"flow metrics identical at sim_jobs 1 vs 3"
    ~count:4
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let c = gen_circuit seed in
      let scan = Scanins.Scan.insert c in
      let m = Model.build scan.Scanins.Scan.circuit in
      let sk = Atpg.Scan_knowledge.create scan in
      let run jobs =
        let cfg =
          Core.Config.with_sim_jobs jobs
            { (Core.Config.for_circuit c) with
              Core.Config.observe = true;
              atpg =
                { Atpg.Seq_atpg.depths = [ 1; 2; 4 ]; backtrack_limit = 60 } }
        in
        let metrics = Obs.Metrics.create () in
        ignore (Core.Flow.generate ~metrics cfg sk m);
        ( Obs.Counters.to_alist (Obs.Metrics.counters metrics),
          List.map
            (fun (n, h) -> n, Obs.Hist.count h, Obs.Hist.sum h, Obs.Hist.buckets h)
            (Obs.Metrics.hists metrics) )
      in
      run 1 = run 3)

let prop_restoration_subset_random_circuits =
  QCheck2.Test.make ~name:"restoration preserves targets on random circuits"
    ~count:5
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let c = gen_circuit seed in
      let scan = Scanins.Scan.insert c in
      let m = Model.build scan.Scanins.Scan.circuit in
      let rng = Prng.Rng.create (Int64.of_int (seed + 5)) in
      let seq =
        Vectors.random_seq rng
          ~width:(C.input_count m.Model.circuit) ~length:120
      in
      let ids = Array.init (Model.fault_count m) Fun.id in
      let targets = Compaction.Target.compute m seq ~fault_ids:ids in
      let restored = Compaction.Restoration.run m seq targets in
      Array.length restored <= Array.length seq
      && Compaction.Target.detected_by m restored targets)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "crossval"
    [
      ( "simulation",
        [ q prop_goodsim_matches_reference; q prop_scan_functional_equivalence;
          q prop_parallel_equals_serial; q prop_event_equals_dense;
          q prop_jobs_deterministic ] );
      ( "faults", [ q prop_collapse_is_semantic ] );
      ( "flow", [ q prop_flow_targets_hold ] );
      ( "telemetry",
        [ q prop_telemetry_invisible; q prop_metrics_jobs_invariant ] );
      ( "compaction", [ q prop_restoration_subset_random_circuits ] );
    ]
