(* Chaos hardening (DESIGN.md #13): deterministic failpoints, worker
   crash containment, connection deadlines, per-connection caps and the
   idempotent retrying batch client. *)

module P = Server.Protocol
module F = Obs.Failpoint
module J = Obs.Json

(* ---------------------------------------------------------- failpoints *)

let test_spec_parsing () =
  let fp = F.create () in
  let bad spec =
    match F.configure fp spec with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.failf "expected Invalid_argument for %S" spec
  in
  bad "worker";
  bad "worker=explode";
  bad "worker=error@2";
  bad "worker=error@nan";
  bad "worker=error#-1";
  bad "worker=delay:soon";
  bad "seed=abc";
  bad "=error";
  (match F.configure F.null "worker=error" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "null registry must refuse configuration");
  F.configure fp "seed=42; worker=crash@0.03; cache.compile=error#1";
  Alcotest.(check string)
    "describe round-trips (seed excluded)"
    "worker=crash@0.03;cache.compile=error#1" (F.describe fp);
  Alcotest.(check bool) "active" true (F.active fp);
  F.configure fp "off";
  Alcotest.(check string) "off clears" "off" (F.describe fp);
  Alcotest.(check bool) "inactive" false (F.active fp);
  F.configure fp "worker=delay:2@0.5;worker=error";
  Alcotest.(check string) "later entry wins per site" "worker=error"
    (F.describe fp)

let fired_indices fp site n =
  let hits = ref [] in
  for i = 0 to n - 1 do
    match F.hit fp site with
    | () -> ()
    | exception F.Injected _ -> hits := i :: !hits
  done;
  List.rev !hits

let test_draw_determinism () =
  (* same seed and spec => the same draw indices fire, registry to
     registry; a different seed fires a different schedule *)
  let mk seed =
    let fp = F.create () in
    F.configure fp (Printf.sprintf "seed=%d;site=error@0.2" seed);
    fp
  in
  let a = fired_indices (mk 7) "site" 1000 in
  let b = fired_indices (mk 7) "site" 1000 in
  Alcotest.(check (list int)) "same seed, same schedule" a b;
  let k = List.length a in
  Alcotest.(check bool)
    (Printf.sprintf "plausible fire count for p=0.2 (got %d)" k)
    true
    (k > 100 && k < 320);
  let c = fired_indices (mk 8) "site" 1000 in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c)

let test_max_fires () =
  let fp = F.create () in
  F.configure fp "site=error#2";
  let fired = fired_indices fp "site" 10 in
  Alcotest.(check (list int)) "exactly the first two draws" [ 0; 1 ] fired;
  Alcotest.(check (list (pair string int))) "fires reported" [ ("site", 2) ]
    (F.fires fp)

let test_null_and_misses () =
  F.hit F.null "anything";
  Alcotest.(check bool) "null disabled" false (F.enabled F.null);
  let fp = F.create () in
  F.hit fp "unconfigured";
  F.configure fp "other=crash";
  F.hit fp "unconfigured";
  F.configure fp "other=delay:1";
  (* a delay site returns normally *)
  F.hit fp "other"

(* ------------------------------------------------------------- service *)

let test_compile_injection_leaves_cache_clean () =
  let fp = F.create () in
  F.configure fp "cache.compile=error#1";
  let svc = Server.Service.create ~failpoint:fp () in
  let req =
    P.request_of_string {|{"id":1,"op":"generate","circuit":"s27","seed":3}|}
  in
  let p1, m1 = Server.Service.execute svc ~budget:(Obs.Budget.create ()) req in
  Alcotest.(check string) "typed internal_error" "internal_error"
    m1.Server.Service.status;
  (match J.member "status" (J.parse p1) with
  | Some (J.Str s) ->
    Alcotest.(check string) "payload status" "internal_error" s
  | _ -> Alcotest.fail "payload has no status");
  (* the failed compile left the cache unchanged: the retry recompiles
     and succeeds *)
  let _, m2 = Server.Service.execute svc ~budget:(Obs.Budget.create ()) req in
  Alcotest.(check string) "retry recovers" "ok" m2.Server.Service.status;
  Alcotest.(check string) "retry was a recompile" "miss"
    m2.Server.Service.cache

(* -------------------------------------------------------------- daemon *)

let with_daemon ?(jobs = 1) ?(queue_depth = 8) ?(max_inflight = 64)
    ?idle_timeout_s ?read_deadline_s ?chaos f =
  let sock = Filename.temp_file "scanatpg_chaos" ".sock" in
  let addr = Server.Daemon.Unix_sock sock in
  let cfg =
    {
      (Server.Daemon.default_config addr) with
      Server.Daemon.jobs;
      queue_depth;
      max_inflight;
      idle_timeout_s;
      read_deadline_s;
      chaos;
      install_signals = false;
      verbose = false;
    }
  in
  let d = Domain.spawn (fun () -> Server.Daemon.run cfg) in
  let rec wait_up n =
    if n > 250 then Alcotest.fail "daemon did not come up"
    else
      match Server.Client.connect addr with
      | c -> Server.Client.close c
      | exception Unix.Unix_error _ ->
        Unix.sleepf 0.02;
        wait_up (n + 1)
  in
  wait_up 0;
  let result =
    try f addr
    with e ->
      (try
         let c = Server.Client.connect addr in
         ignore (Server.Client.call c {|{"id":9999,"op":"shutdown"}|});
         Server.Client.close c
       with _ -> ());
      ignore (Domain.join d);
      raise e
  in
  let c = Server.Client.connect addr in
  ignore (Server.Client.call c {|{"id":9999,"op":"shutdown"}|});
  Server.Client.close c;
  let code = Domain.join d in
  Alcotest.(check int) "daemon drained with exit 0" 0 code;
  result

let counter addr name =
  let c = Server.Client.connect addr in
  Fun.protect
    ~finally:(fun () -> Server.Client.close c)
    (fun () ->
      let resp = Server.Client.call c {|{"id":900,"op":"stats"}|} in
      match J.member "counters" (J.parse resp) with
      | Some cs -> (
        match J.member name cs with Some (J.Int n) -> n | _ -> 0)
      | None -> 0)

let status_of payload =
  match J.member "status" (J.parse payload) with
  | Some (J.Str s) -> s
  | _ -> Alcotest.failf "no status in %s" payload

let test_worker_crash_contained () =
  (* an injected worker death must yield a typed response and a daemon
     that keeps serving and drains cleanly — never a dead domain *)
  with_daemon ~chaos:"worker=crash#1" (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let r1 =
            Server.Client.call c {|{"id":1,"op":"generate","circuit":"s27"}|}
          in
          Alcotest.(check string) "crash becomes internal_error"
            "internal_error" (status_of r1);
          (match J.member "id" (J.parse r1) with
          | Some (J.Int id) -> Alcotest.(check int) "echoes id" 1 id
          | _ -> Alcotest.fail "no id");
          let r2 =
            Server.Client.call c {|{"id":2,"op":"generate","circuit":"s27"}|}
          in
          Alcotest.(check string) "worker still serving" "ok" (status_of r2));
      Alcotest.(check int) "restart counted" 1
        (counter addr "server.worker_restarts"))

let test_queue_injection_is_typed () =
  with_daemon ~chaos:"queue=error#1" (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let r1 =
            Server.Client.call c {|{"id":1,"op":"generate","circuit":"s27"}|}
          in
          Alcotest.(check string) "queue fault is typed" "internal_error"
            (status_of r1);
          let r2 =
            Server.Client.call c {|{"id":2,"op":"generate","circuit":"s27"}|}
          in
          Alcotest.(check string) "next request fine" "ok" (status_of r2)))

let test_chaos_op_runtime () =
  with_daemon (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let call s = Server.Client.call c s in
          let r = call {|{"id":1,"op":"chaos"}|} in
          Alcotest.(check string) "query ok" "ok" (status_of r);
          (match J.member "active" (J.parse r) with
          | Some (J.Str s) -> Alcotest.(check string) "starts off" "off" s
          | _ -> Alcotest.fail "no active field");
          let r =
            call {|{"id":2,"op":"chaos","spec":"worker=delay:1@0.5"}|}
          in
          Alcotest.(check string) "arm ok" "ok" (status_of r);
          (match J.member "active" (J.parse r) with
          | Some (J.Str s) ->
            Alcotest.(check string) "armed" "worker=delay:1@0.5" s
          | _ -> Alcotest.fail "no active field");
          let r = call {|{"id":3,"op":"chaos","spec":"off"}|} in
          (match J.member "active" (J.parse r) with
          | Some (J.Str s) -> Alcotest.(check string) "cleared" "off" s
          | _ -> Alcotest.fail "no active field");
          let r = call {|{"id":4,"op":"chaos","spec":"worker=frob"}|} in
          Alcotest.(check string) "bad spec is a typed error" "error"
            (status_of r)))

let test_per_conn_inflight_cap () =
  with_daemon ~max_inflight:0 (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let r =
            Server.Client.call c {|{"id":1,"op":"generate","circuit":"s27"}|}
          in
          Alcotest.(check string) "capped connection gets overloaded"
            "overloaded" (status_of r);
          (* admin ops bypass the queue and the cap *)
          let r = Server.Client.call c {|{"id":2,"op":"ping"}|} in
          Alcotest.(check string) "ping unaffected" "ok" (status_of r));
      Alcotest.(check int) "rejection counted" 1
        (counter addr "server.rejected"))

let test_idle_timeout () =
  with_daemon ~idle_timeout_s:0.2 (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let r = Server.Client.call c {|{"id":1,"op":"ping"}|} in
          Alcotest.(check string) "live connection works" "ok" (status_of r);
          Unix.sleepf 0.8;
          match Server.Client.call c {|{"id":2,"op":"ping"}|} with
          | exception _ -> ()
          | _ -> Alcotest.fail "idle connection should have been closed");
      Alcotest.(check bool) "idle close counted" true
        (counter addr "server.conn_idle_closed" >= 1))

let test_read_deadline_cuts_slowloris () =
  with_daemon ~read_deadline_s:0.2 (fun addr ->
      let sock =
        match addr with
        | Server.Daemon.Unix_sock p -> p
        | _ -> assert false
      in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX sock);
          (* announce a 10-byte frame, never send the payload *)
          let hdr = Bytes.of_string "\x00\x00\x00\x0a" in
          ignore (Unix.write fd hdr 0 4);
          Unix.sleepf 0.8;
          (* the daemon must have hung up on us *)
          let buf = Bytes.create 1 in
          let closed =
            match Unix.read fd buf 0 1 with
            | 0 -> true
            | _ -> false
            | exception Unix.Unix_error _ -> true
          in
          Alcotest.(check bool) "stalled connection cut" true closed);
      Alcotest.(check bool) "abort counted" true
        (counter addr "server.conn_aborted" >= 1);
      Alcotest.(check bool) "mid-frame stall is a bad request" true
        (counter addr "server.bad_request" >= 1))

let test_midframe_disconnect_accounted () =
  with_daemon (fun addr ->
      let sock =
        match addr with
        | Server.Daemon.Unix_sock p -> p
        | _ -> assert false
      in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      (* two bytes of a header, then vanish *)
      ignore (Unix.write fd (Bytes.of_string "\x00\x00") 0 2);
      Unix.close fd;
      (* let the accept loop observe the EOF *)
      let rec wait n =
        if n = 0 then ()
        else if counter addr "server.conn_aborted" >= 1 then ()
        else begin
          Unix.sleepf 0.05;
          wait (n - 1)
        end
      in
      wait 40;
      Alcotest.(check bool) "mid-frame EOF counted as bad request" true
        (counter addr "server.bad_request" >= 1);
      Alcotest.(check bool) "and as a connection abort" true
        (counter addr "server.conn_aborted" >= 1))

(* ----------------------------------------------------- retrying client *)

let batch ?retries ?backoff_ms addr lines =
  let input = Filename.temp_file "scanatpg_chaos" ".jsonl" in
  let output = Filename.temp_file "scanatpg_chaos" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove input with Sys_error _ -> ());
      try Sys.remove output with Sys_error _ -> ())
    (fun () ->
      Obs.Fileio.write_string input (String.concat "\n" lines ^ "\n");
      Server.Client.run_batch ~addr ~input ~output ?retries ?backoff_ms ())

let test_retried_batch_byte_identical () =
  (* an injected single connection kill at the writer: the plain client
     loses every in-flight response; the retrying client reconnects,
     replays the unanswered requests, and its payloads are byte-identical
     to an uninterrupted run (idempotency, DESIGN.md §10) *)
  let lines =
    [
      {|{"op":"generate","circuit":"s27","seed":77}|};
      {|{"op":"generate","circuit":"s298","seed":5}|};
      {|{"op":"generate","circuit":"s27","seed":99}|};
    ]
  in
  let payloads outcomes =
    List.map
      (fun o ->
        ( o.Server.Client.id,
          o.Server.Client.status,
          Option.value ~default:"" o.Server.Client.payload ))
      outcomes
  in
  let clean = with_daemon (fun addr -> payloads (batch addr lines)) in
  List.iter
    (fun (_, status, _) -> Alcotest.(check string) "clean ok" "ok" status)
    clean;
  let retried =
    with_daemon ~chaos:"writer=error#1" (fun addr ->
        payloads (batch ~retries:4 ~backoff_ms:10 addr lines))
  in
  List.iter2
    (fun (id1, s1, p1) (id2, s2, p2) ->
      Alcotest.(check int) "same id" id1 id2;
      Alcotest.(check string) "retried run all ok" s1 s2;
      Alcotest.(check string) "byte-identical payload" p1 p2)
    clean retried;
  (* without retries the same fault loses every response on the killed
     connection *)
  let lost =
    with_daemon ~chaos:"writer=error#1" (fun addr ->
        payloads (batch addr lines))
  in
  Alcotest.(check bool) "plain client reports losses" true
    (List.exists (fun (_, s, _) -> s = "lost") lost)

let () =
  Alcotest.run "chaos"
    [
      ( "failpoint",
        [
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "draw determinism" `Quick test_draw_determinism;
          Alcotest.test_case "max fires" `Quick test_max_fires;
          Alcotest.test_case "null and misses" `Quick test_null_and_misses;
        ] );
      ( "service",
        [
          Alcotest.test_case "compile injection" `Quick
            test_compile_injection_leaves_cache_clean;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "worker crash contained" `Quick
            test_worker_crash_contained;
          Alcotest.test_case "queue injection typed" `Quick
            test_queue_injection_is_typed;
          Alcotest.test_case "chaos op at runtime" `Quick test_chaos_op_runtime;
          Alcotest.test_case "per-connection cap" `Quick
            test_per_conn_inflight_cap;
          Alcotest.test_case "idle timeout" `Quick test_idle_timeout;
          Alcotest.test_case "read deadline" `Quick
            test_read_deadline_cuts_slowloris;
          Alcotest.test_case "mid-frame disconnect" `Quick
            test_midframe_disconnect_accounted;
        ] );
      ( "retry",
        [
          Alcotest.test_case "retried batch byte-identical" `Quick
            test_retried_batch_byte_identical;
        ] );
    ]
