(* ATPG tests: every PODEM product is validated by fault simulation (the
   engine and the simulator are implemented independently, so agreement is
   strong evidence of correctness), plus the scan-knowledge helpers. *)

module C = Netlist.Circuit
module L = Netlist.Logic
module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim
module Vectors = Logicsim.Vectors
module Podem = Atpg.Podem
module Seq_atpg = Atpg.Seq_atpg
module Sk = Atpg.Scan_knowledge

let setup name =
  let scan = Scanins.Scan.insert (Circuits.Catalog.circuit name) in
  scan, Model.build scan.Scanins.Scan.circuit

let allx m = Array.make (C.dff_count m.Model.circuit) L.X

(* ----------------------------------------------------- PODEM validity *)

let test_podem_tests_are_valid () =
  (* Every test PODEM finds on s27_scan must be confirmed by the fault
     simulator (with X left in place and after random fill). *)
  let _, m = setup "s27" in
  let rng = Prng.Rng.create 31L in
  let found = ref 0 in
  for fid = 0 to Model.fault_count m - 1 do
    let rec try_depth = function
      | [] -> ()
      | d :: rest ->
        (match
           Podem.run m ~fault:fid ~depth:d
             ~start:(Podem.From_state { good = allx m; faulty = allx m })
             ~backtrack_limit:100 ()
         with
         | Podem.Detected { vectors; required_state } ->
           incr found;
           Alcotest.(check bool) "no state demanded" true (required_state = None);
           (match Faultsim.detects_single m ~fault:fid vectors with
            | Some _ -> ()
            | None ->
              Alcotest.failf "unverified test for %s" (Model.fault_name m fid));
           (* Random fill may only help. *)
           let filled = Vectors.fill_x rng vectors in
           (match Faultsim.detects_single m ~fault:fid filled with
            | Some _ -> ()
            | None -> Alcotest.failf "fill_x broke %s" (Model.fault_name m fid))
         | Podem.Latched _ -> Alcotest.fail "latched without observe_ffs"
         | Podem.Aborted | Podem.Exhausted -> try_depth rest)
    in
    try_depth [ 1; 2; 3; 5 ]
  done;
  Alcotest.(check bool) "most faults get tests" true (!found > 40)

let test_podem_latched_is_real () =
  (* In observe_ffs mode, a Latched result must leave a strict fault effect
     in the reported flip-flop. *)
  let _, m = setup "s27" in
  let latched = ref 0 in
  for fid = 0 to Model.fault_count m - 1 do
    match
      Podem.run m ~fault:fid ~depth:3
        ~start:(Podem.From_state { good = allx m; faulty = allx m })
        ~backtrack_limit:100 ~observe_ffs:true ()
    with
    | Podem.Latched { vectors; dff; _ } ->
      incr latched;
      let s = Faultsim.create m ~fault_ids:[| fid |] in
      Faultsim.advance s vectors;
      let effects = Faultsim.ff_effects s fid in
      if not (List.mem dff effects) then
        Alcotest.failf "fault %s: effect not in dff %d (effects at %s)"
          (Model.fault_name m fid) dff
          (String.concat "," (List.map string_of_int effects))
    | _ -> ()
  done;
  Alcotest.(check bool) "some latches happen" true (!latched > 0)

let test_podem_free_state_reports_state () =
  let _, m = setup "s27" in
  let checked = ref 0 in
  for fid = 0 to min 30 (Model.fault_count m - 1) do
    match
      Podem.run m ~fault:fid ~depth:2 ~start:Podem.Free_state ~backtrack_limit:100 ()
    with
    | Podem.Detected { vectors; required_state = Some state } ->
      incr checked;
      (* Starting both machines in the demanded state must detect. *)
      (match
         Faultsim.detects_single m ~fault:fid ~start:(state, state) vectors
       with
      | Some _ -> ()
      | None -> Alcotest.failf "free-state test invalid for %s" (Model.fault_name m fid))
    | _ -> ()
  done;
  Alcotest.(check bool) "some free-state tests" true (!checked > 5)

let test_podem_fixed_inputs_respected () =
  let scan, m = setup "s27" in
  let sel = Scanins.Scan.sel_position scan in
  for fid = 0 to min 40 (Model.fault_count m - 1) do
    match
      Podem.run m ~fault:fid ~depth:3 ~start:Podem.Free_state ~backtrack_limit:100
        ~fixed_inputs:[ (sel, L.Zero) ] ()
    with
    | Podem.Detected { vectors; _ } ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) "sel held 0" true (L.equal v.(sel) L.Zero))
        vectors
    | _ -> ()
  done

let test_podem_redundant_fault_exhausts () =
  (* OR(a, AND(a, b)): the AND's b-input stuck-at-0 is masked — classic
     redundancy.  PODEM must prove Exhausted, not Abort. *)
  let b = C.Builder.create ~name:"red" () in
  C.Builder.add_input b "a";
  C.Builder.add_input b "b";
  C.Builder.add_gate b "q" Netlist.Gate.Dff [ "o" ];
  C.Builder.add_gate b "g" Netlist.Gate.And [ "a"; "b" ];
  C.Builder.add_gate b "o" Netlist.Gate.Or [ "a"; "g" ];
  C.Builder.add_output b "o";
  let c = C.Builder.build b in
  let m = Model.build c in
  (* g stuck-at-0 needs a=1,b=1 to activate, but then the OR output is 1
     anyway: unobservable.  Collapsing folds g/0 into its class
     representative b/0 (AND input sa0 = output sa0, and b's pin is b's
     stem), so that is the fault to look up. *)
  let fid = ref (-1) in
  Array.iteri
    (fun i f ->
      match f.Faultmodel.Fault.site with
      | Faultmodel.Fault.Stem n
        when (C.node c n).C.name = "b" && not f.Faultmodel.Fault.stuck -> fid := i
      | _ -> ())
    m.Model.faults;
  Alcotest.(check bool) "found" true (!fid >= 0);
  (match
     Podem.run m ~fault:!fid ~depth:1 ~start:Podem.Free_state
       ~backtrack_limit:10_000 ~observe_ffs:true ()
   with
  | Podem.Exhausted -> ()
  | Podem.Detected _ | Podem.Latched _ -> Alcotest.fail "redundant fault detected?!"
  | Podem.Aborted -> Alcotest.fail "should exhaust, not abort")

(* ------------------------------------------------------ Seq_atpg driver *)

let test_seq_atpg_detect_coverage () =
  let _, m = setup "s27" in
  let cfg = Seq_atpg.default_config in
  let hits = ref 0 in
  for fid = 0 to Model.fault_count m - 1 do
    match Seq_atpg.detect m cfg ~fault:fid ~good:(allx m) ~faulty:(allx m) () with
    | Some vecs ->
      incr hits;
      Alcotest.(check bool) "verified" true
        (Faultsim.detects_single m ~fault:fid vecs <> None)
    | None -> ()
  done;
  Alcotest.(check bool) "high hit rate" true (!hits >= 45)

let test_seq_atpg_latch_subsumes () =
  let _, m = setup "s27" in
  let cfg = Seq_atpg.default_config in
  for fid = 0 to Model.fault_count m - 1 do
    let direct = Seq_atpg.detect m cfg ~fault:fid ~good:(allx m) ~faulty:(allx m) () in
    let latch = Seq_atpg.detect_latch m cfg ~fault:fid ~good:(allx m) ~faulty:(allx m) () in
    if direct <> None && latch = None then
      Alcotest.failf "latch mode lost %s" (Model.fault_name m fid)
  done

(* -------------------------------------------------------- scan knowledge *)

let test_drain_lengths () =
  let scan, _ = setup "s27" in
  let sk = Sk.create scan in
  let rng = Prng.Rng.create 17L in
  (* dff index 0 is chain position 0: 2 shifts + 1 observe = 3 vectors. *)
  Alcotest.(check int) "pos0" 3 (Array.length (Sk.drain sk ~rng ~dff:0));
  Alcotest.(check int) "pos2" 1 (Array.length (Sk.drain sk ~rng ~dff:2));
  let scan_sel = Scanins.Scan.sel_position scan in
  Array.iter
    (fun v -> Alcotest.(check bool) "sel=1" true (L.equal v.(scan_sel) L.One))
    (Sk.drain sk ~rng ~dff:0)

let test_drain_detects_latched_effect () =
  (* End-to-end: find Latched PODEM results, append the drain, check the
     fault is detected by simulation.  Faults sitting on the scan path
     itself (e.g. scan_sel stuck-at-0) can defeat the shift in the faulty
     machine — the flow handles those by verification + fallback — so the
     drain is only required to work for the overwhelming majority. *)
  let scan, m = setup "s298" in
  let sk = Sk.create scan in
  let rng = Prng.Rng.create 18L in
  let cfg = Seq_atpg.default_config in
  let exercised = ref 0 and ok = ref 0 in
  for fid = 0 to Model.fault_count m - 1 do
    if !exercised < 25 then begin
      match Seq_atpg.detect_latch m cfg ~fault:fid ~good:(allx m) ~faulty:(allx m) () with
      | Some (`Latched (vecs, dff)) ->
        incr exercised;
        let full = Array.append (Vectors.fill_x rng vecs) (Sk.drain sk ~rng ~dff) in
        (match Faultsim.detects_single m ~fault:fid full with
         | Some _ -> incr ok
         | None -> ())
      | _ -> ()
    end
  done;
  Alcotest.(check bool) "drains exercised" true (!exercised >= 10);
  Alcotest.(check bool)
    (Printf.sprintf "most drains verified (%d/%d)" !ok !exercised)
    true
    (float_of_int !ok >= 0.8 *. float_of_int !exercised)

let test_load_establishes_state () =
  let scan, m = setup "s298" in
  let sk = Sk.create scan in
  let rng = Prng.Rng.create 19L in
  let nff = C.dff_count m.Model.circuit in
  let prng = Prng.Rng.create 20L in
  for _ = 1 to 20 do
    let state =
      Array.init nff (fun _ ->
          match Prng.Rng.int prng 3 with
          | 0 -> L.Zero
          | 1 -> L.One
          | _ -> L.X)
    in
    let load = Sk.load sk ~rng ~state in
    Alcotest.(check int) "nsv vectors" (Scanins.Scan.nsv scan) (Array.length load);
    let sim = Logicsim.Goodsim.create m.Model.circuit in
    Array.iter (Logicsim.Goodsim.step sim) load;
    let got = Logicsim.Goodsim.state sim in
    Array.iteri
      (fun k want ->
        if L.is_binary want && not (L.equal got.(k) want) then
          Alcotest.failf "ff %d: wanted %c got %c" k (L.to_char want)
            (L.to_char got.(k)))
      state
  done

let test_load_multichain () =
  let c = Circuits.Catalog.circuit "s298" in
  let scan = Scanins.Scan.insert ~chains:3 c in
  let m = Model.build scan.Scanins.Scan.circuit in
  let sk = Sk.create scan in
  let rng = Prng.Rng.create 21L in
  let nff = C.dff_count m.Model.circuit in
  let state = Array.init nff (fun k -> L.of_bool (k mod 2 = 0)) in
  let load = Sk.load sk ~rng ~state in
  Alcotest.(check int) "nsv = longest chain" (Scanins.Scan.nsv scan)
    (Array.length load);
  let sim = Logicsim.Goodsim.create m.Model.circuit in
  Array.iter (Logicsim.Goodsim.step sim) load;
  let got = Logicsim.Goodsim.state sim in
  Array.iteri
    (fun k want ->
      if not (L.equal got.(k) want) then Alcotest.failf "ff %d wrong" k)
    state

let test_chain_position_mapping () =
  let scan, _ = setup "s27" in
  let sk = Sk.create scan in
  Alcotest.(check (pair int int)) "dff0" (0, 0) (Sk.chain_position sk ~dff:0);
  Alcotest.(check (pair int int)) "dff2" (0, 2) (Sk.chain_position sk ~dff:2)

(* -------------------------------------------------------------- simgen *)

let test_simgen_coverage () =
  (* The simulation-based generator alone reaches solid coverage on s27. *)
  let scan, m = setup "s27" in
  let ids = Array.init (Model.fault_count m) Fun.id in
  let session = Faultsim.create m ~fault_ids:ids in
  let rng = Prng.Rng.create 23L in
  let vecs =
    Atpg.Simgen.extend session m
      ~scan_sel_position:(Scanins.Scan.sel_position scan)
      ~rng Atpg.Simgen.default_config
  in
  Alcotest.(check int) "session advanced" (Array.length vecs)
    (Faultsim.time session);
  let cov =
    float_of_int (Faultsim.detected_count session)
    /. float_of_int (Array.length ids)
  in
  Alcotest.(check bool) "coverage > 80%" true (cov > 0.8);
  (* Replay reproduces the detections exactly. *)
  let replay = Faultsim.detection_times m ~fault_ids:ids vecs in
  let n = Array.fold_left (fun a t -> if t >= 0 then a + 1 else a) 0 replay in
  Alcotest.(check int) "replay" (Faultsim.detected_count session) n

let test_simgen_deterministic () =
  let scan, m = setup "s27" in
  let run () =
    let ids = Array.init (Model.fault_count m) Fun.id in
    let session = Faultsim.create m ~fault_ids:ids in
    Atpg.Simgen.extend session m
      ~scan_sel_position:(Scanins.Scan.sel_position scan)
      ~rng:(Prng.Rng.create 24L) Atpg.Simgen.default_config
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same length" (Array.length a) (Array.length b)

let test_effect_bits_consistent () =
  (* effect_bits equals the sum over undetected faults of |ff_effects|. *)
  let _, m = setup "s27" in
  let ids = Array.init (Model.fault_count m) Fun.id in
  let session = Faultsim.create m ~fault_ids:ids in
  let rng = Prng.Rng.create 25L in
  Faultsim.advance session
    (Logicsim.Vectors.random_seq rng
       ~width:(C.input_count m.Model.circuit) ~length:7);
  let by_enum =
    Array.fold_left
      (fun acc fid -> acc + List.length (Faultsim.ff_effects session fid))
      0 (Faultsim.undetected session)
  in
  Alcotest.(check int) "word-parallel = enumeration" by_enum
    (Faultsim.effect_bits session)

(* --------------------------------------------------------- random phase *)

let test_random_phase_detects_and_extends () =
  let scan, m = setup "s27" in
  let ids = Array.init (Model.fault_count m) Fun.id in
  let session = Faultsim.create m ~fault_ids:ids in
  let rng = Prng.Rng.create 22L in
  let vecs =
    Atpg.Random_phase.run session m
      ~scan_sel_position:(Scanins.Scan.sel_position scan)
      ~rng Atpg.Random_phase.default_config
  in
  Alcotest.(check int) "session advanced" (Array.length vecs) (Faultsim.time session);
  Alcotest.(check bool) "progress" true (Faultsim.detected_count session > 30);
  (* Replaying the returned vectors reproduces the detections exactly. *)
  let replay = Faultsim.detection_times m ~fault_ids:ids vecs in
  let replay_count = Array.fold_left (fun a t -> if t >= 0 then a + 1 else a) 0 replay in
  Alcotest.(check int) "replay matches" (Faultsim.detected_count session) replay_count

let prop_seq_atpg_from_random_states =
  (* From arbitrary reachable states, any test found is simulator-valid. *)
  QCheck2.Test.make ~name:"detect from mid-sequence states is valid" ~count:10
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      let _, m = setup "s27" in
      let rng = Prng.Rng.create (Int64.of_int seed) in
      let width = C.input_count m.Model.circuit in
      let warmup = Vectors.random_seq rng ~width ~length:15 in
      let ids = Array.init (Model.fault_count m) Fun.id in
      let s = Faultsim.create m ~fault_ids:ids in
      Faultsim.advance s warmup;
      let good = Faultsim.good_state s in
      Array.for_all
        (fun fid ->
          match
            Seq_atpg.detect m Seq_atpg.default_config ~fault:fid ~good
              ~faulty:(Faultsim.faulty_state s fid) ()
          with
          | Some vecs ->
            Faultsim.detects_single m ~fault:fid
              ~start:(good, Faultsim.faulty_state s fid)
              vecs
            <> None
          | None -> true)
        (Faultsim.undetected s))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "atpg"
    [
      ( "podem",
        [
          Alcotest.test_case "tests verified by simulation" `Quick
            test_podem_tests_are_valid;
          Alcotest.test_case "latched results hold" `Quick test_podem_latched_is_real;
          Alcotest.test_case "free-state reports state" `Quick
            test_podem_free_state_reports_state;
          Alcotest.test_case "fixed inputs respected" `Quick
            test_podem_fixed_inputs_respected;
          Alcotest.test_case "redundant fault exhausts" `Quick
            test_podem_redundant_fault_exhausts;
        ] );
      ( "seq_atpg",
        [
          Alcotest.test_case "coverage on s27" `Quick test_seq_atpg_detect_coverage;
          Alcotest.test_case "latch mode subsumes direct" `Quick
            test_seq_atpg_latch_subsumes;
          q prop_seq_atpg_from_random_states;
        ] );
      ( "scan knowledge",
        [
          Alcotest.test_case "drain lengths" `Quick test_drain_lengths;
          Alcotest.test_case "drain detects" `Quick test_drain_detects_latched_effect;
          Alcotest.test_case "load establishes state" `Quick test_load_establishes_state;
          Alcotest.test_case "load multichain" `Quick test_load_multichain;
          Alcotest.test_case "chain positions" `Quick test_chain_position_mapping;
        ] );
      ( "simgen",
        [
          Alcotest.test_case "coverage" `Quick test_simgen_coverage;
          Alcotest.test_case "deterministic" `Quick test_simgen_deterministic;
          Alcotest.test_case "effect_bits" `Quick test_effect_bits_consistent;
        ] );
      ( "random phase",
        [
          Alcotest.test_case "detects and extends" `Quick
            test_random_phase_detects_and_extends;
        ] );
    ]
