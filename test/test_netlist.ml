(* Unit and property tests for the netlist substrate: three-valued logic,
   gate semantics, the circuit builder's validation, levelization and the
   .bench reader/writer. *)

module L = Netlist.Logic
module G = Netlist.Gate
module C = Netlist.Circuit

let logic = Alcotest.testable L.pp L.equal

(* ------------------------------------------------------------ Logic *)

let all3 = [ L.Zero; L.One; L.X ]

let test_logic_not () =
  Alcotest.check logic "not 0" L.One (L.bnot L.Zero);
  Alcotest.check logic "not 1" L.Zero (L.bnot L.One);
  Alcotest.check logic "not x" L.X (L.bnot L.X)

let test_logic_and () =
  Alcotest.check logic "0&x" L.Zero (L.band L.Zero L.X);
  Alcotest.check logic "x&0" L.Zero (L.band L.X L.Zero);
  Alcotest.check logic "1&1" L.One (L.band L.One L.One);
  Alcotest.check logic "1&x" L.X (L.band L.One L.X);
  Alcotest.check logic "x&x" L.X (L.band L.X L.X)

let test_logic_or () =
  Alcotest.check logic "1|x" L.One (L.bor L.One L.X);
  Alcotest.check logic "0|0" L.Zero (L.bor L.Zero L.Zero);
  Alcotest.check logic "0|x" L.X (L.bor L.Zero L.X)

let test_logic_xor () =
  Alcotest.check logic "1^1" L.Zero (L.bxor L.One L.One);
  Alcotest.check logic "1^0" L.One (L.bxor L.One L.Zero);
  Alcotest.check logic "x^0" L.X (L.bxor L.X L.Zero);
  Alcotest.check logic "1^x" L.X (L.bxor L.One L.X)

let test_logic_mux () =
  (* Binary select picks the right input. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.check logic "sel=0" a (L.mux L.Zero a b);
          Alcotest.check logic "sel=1" b (L.mux L.One a b))
        all3)
    all3;
  (* Unknown select: common binary value survives, otherwise X. *)
  Alcotest.check logic "x-sel same" L.One (L.mux L.X L.One L.One);
  Alcotest.check logic "x-sel diff" L.X (L.mux L.X L.One L.Zero);
  Alcotest.check logic "x-sel with x" L.X (L.mux L.X L.X L.X)

let test_logic_chars () =
  List.iter
    (fun v -> Alcotest.check logic "roundtrip" v (L.of_char (L.to_char v)))
    all3;
  Alcotest.check_raises "bad char" (Invalid_argument "Logic.of_char: '?'")
    (fun () -> ignore (L.of_char '?'))

(* De Morgan over the three-valued domain. *)
let prop_demorgan =
  let arb = QCheck2.Gen.oneofl all3 in
  QCheck2.Test.make ~name:"three-valued De Morgan" ~count:200
    QCheck2.Gen.(pair arb arb)
    (fun (a, b) ->
      L.equal (L.bnot (L.band a b)) (L.bor (L.bnot a) (L.bnot b))
      && L.equal (L.bnot (L.bor a b)) (L.band (L.bnot a) (L.bnot b)))

(* X is the information order's bottom: refining an X input never flips a
   binary output. *)
let prop_monotone =
  let arb = QCheck2.Gen.oneofl all3 in
  QCheck2.Test.make ~name:"binary results are stable under X refinement"
    ~count:500
    QCheck2.Gen.(pair arb (oneofl [ `And; `Or; `Xor ]))
    (fun (a, op) ->
      let f x y =
        match op with
        | `And -> L.band x y
        | `Or -> L.bor x y
        | `Xor -> L.bxor x y
      in
      let out_with_x = f a L.X in
      (not (L.is_binary out_with_x))
      || List.for_all
           (fun refinement -> L.equal (f a refinement) out_with_x)
           [ L.Zero; L.One ])

(* ------------------------------------------------------------- Gate *)

let test_gate_eval () =
  Alcotest.check logic "nand(1,1)" L.Zero (G.eval G.Nand [| L.One; L.One |]);
  Alcotest.check logic "nand(0,x)" L.One (G.eval G.Nand [| L.Zero; L.X |]);
  Alcotest.check logic "nor(0,0)" L.One (G.eval G.Nor [| L.Zero; L.Zero |]);
  Alcotest.check logic "xnor(1,0)" L.Zero (G.eval G.Xnor [| L.One; L.Zero |]);
  Alcotest.check logic "3-and" L.X (G.eval G.And [| L.One; L.X; L.One |]);
  Alcotest.check logic "3-xor" L.One (G.eval G.Xor [| L.One; L.One; L.One |]);
  Alcotest.check logic "buf" L.X (G.eval G.Buf [| L.X |]);
  Alcotest.check logic "mux" L.One (G.eval G.Mux [| L.One; L.Zero; L.One |])

let test_gate_arity_errors () =
  Alcotest.check_raises "not/2"
    (Invalid_argument "Gate.eval: NOT expects 1 fanins, got 2") (fun () ->
      ignore (G.eval G.Not [| L.One; L.One |]));
  Alcotest.check_raises "and/1"
    (Invalid_argument "Gate.eval: AND expects >= 2 fanins, got 1") (fun () ->
      ignore (G.eval G.And [| L.One |]))

let test_gate_names () =
  List.iter
    (fun k ->
      match G.of_string (G.to_string k) with
      | Some k' -> Alcotest.(check bool) "roundtrip" true (G.equal_kind k k')
      | None -> Alcotest.fail "kind did not roundtrip")
    [ G.Input; G.Buf; G.Not; G.And; G.Nand; G.Or; G.Nor; G.Xor; G.Xnor; G.Mux; G.Dff ];
  Alcotest.(check bool) "BUFF alias" true (G.of_string "buff" = Some G.Buf);
  Alcotest.(check bool) "unknown" true (G.of_string "FOO" = None)

let test_gate_meta () =
  Alcotest.(check bool) "and ctrl" true (G.controlling G.And = Some L.Zero);
  Alcotest.(check bool) "nor ctrl" true (G.controlling G.Nor = Some L.One);
  Alcotest.(check bool) "xor ctrl" true (G.controlling G.Xor = None);
  Alcotest.(check bool) "nand inv" true (G.inversion G.Nand);
  Alcotest.(check bool) "or not inv" false (G.inversion G.Or)

(* ---------------------------------------------------------- Builder *)

let tiny () =
  let b = C.Builder.create ~name:"tiny" () in
  C.Builder.add_input b "a";
  C.Builder.add_input b "b";
  C.Builder.add_gate b "q" G.Dff [ "d" ];
  C.Builder.add_gate b "d" G.And [ "a"; "q" ];
  C.Builder.add_gate b "o" G.Nor [ "b"; "q" ];
  C.Builder.add_output b "o";
  C.Builder.build b

let test_builder_basic () =
  let c = tiny () in
  Alcotest.(check int) "inputs" 2 (C.input_count c);
  Alcotest.(check int) "outputs" 1 (C.output_count c);
  Alcotest.(check int) "dffs" 1 (C.dff_count c);
  Alcotest.(check int) "gates" 2 (C.gate_count c);
  Alcotest.(check int) "nodes" 5 (C.node_count c);
  let q = C.id_of_name_exn c "q" in
  Alcotest.(check bool) "is_dff" true (C.is_dff c q);
  Alcotest.(check bool) "not output" false (C.is_output c q);
  (* q fans out to d and o. *)
  Alcotest.(check int) "fanout" 2 (Array.length (C.fanout c q));
  Alcotest.(check int) "pin fanout" 2 (C.fanout_count c q)

let expect_invalid f =
  match f () with
  | exception C.Invalid_circuit _ -> ()
  | _ -> Alcotest.fail "expected Invalid_circuit"

let test_builder_duplicate () =
  expect_invalid (fun () ->
      let b = C.Builder.create () in
      C.Builder.add_input b "a";
      C.Builder.add_input b "a";
      C.Builder.build b)

let test_builder_dangling () =
  expect_invalid (fun () ->
      let b = C.Builder.create () in
      C.Builder.add_input b "a";
      C.Builder.add_gate b "g" G.Not [ "nope" ];
      C.Builder.build b)

let test_builder_bad_output () =
  expect_invalid (fun () ->
      let b = C.Builder.create () in
      C.Builder.add_input b "a";
      C.Builder.add_output b "zz";
      C.Builder.build b)

let test_builder_arity () =
  expect_invalid (fun () ->
      let b = C.Builder.create () in
      C.Builder.add_input b "a";
      C.Builder.add_gate b "g" G.Mux [ "a"; "a" ];
      C.Builder.build b)

let test_builder_comb_cycle () =
  expect_invalid (fun () ->
      let b = C.Builder.create () in
      C.Builder.add_input b "a";
      C.Builder.add_gate b "g1" G.And [ "a"; "g2" ];
      C.Builder.add_gate b "g2" G.Or [ "a"; "g1" ];
      C.Builder.build b)

let test_builder_dff_cycle_ok () =
  (* Cycles through flip-flops are sequential feedback, not an error. *)
  let c = tiny () in
  Alcotest.(check string) "name" "tiny" (C.name c)

let test_remap () =
  let c = C.remap (tiny ()) ~rename:(fun s -> "p_" ^ s) in
  Alcotest.(check bool) "renamed" true (C.find c "p_q" <> None);
  Alcotest.(check bool) "old gone" true (C.find c "q" = None);
  Alcotest.(check int) "same size" 5 (C.node_count c)

(* --------------------------------------------------------- Levelize *)

let test_levelize () =
  let c = tiny () in
  let lv = Netlist.Levelize.of_circuit c in
  Alcotest.(check int) "two gates ordered" 2 (Array.length lv.Netlist.Levelize.order);
  let a = C.id_of_name_exn c "a" and q = C.id_of_name_exn c "q" in
  let d = C.id_of_name_exn c "d" in
  Alcotest.(check int) "source level" 0 lv.Netlist.Levelize.level.(a);
  Alcotest.(check int) "dff level" 0 lv.Netlist.Levelize.level.(q);
  Alcotest.(check int) "gate level" 1 lv.Netlist.Levelize.level.(d)

let test_levelize_order_valid () =
  (* Every gate appears after all of its combinational fanins. *)
  let c = Circuits.Catalog.circuit "s298" in
  let lv = Netlist.Levelize.of_circuit c in
  let seen = Array.make (C.node_count c) false in
  Array.iter (fun i -> seen.(i) <- true) (C.inputs c);
  Array.iter (fun i -> seen.(i) <- true) (C.dffs c);
  Array.iter
    (fun i ->
      Array.iter
        (fun f ->
          if not seen.(f) then
            Alcotest.failf "node %d evaluated before fanin %d" i f)
        (C.node c i).C.fanins;
      seen.(i) <- true)
    lv.Netlist.Levelize.order

(* ------------------------------------------------------------- Cone *)

let test_cone_membership () =
  let c = Circuits.Iscas.s27 () in
  let id = C.id_of_name_exn c in
  (* G17 = NOT(G11); combinational cone stops at FF outputs and PIs. *)
  let cone = Netlist.Cone.fanin_cone c ~sequential:false [ id "G17" ] in
  let names = List.map (fun i -> (C.node c i).C.name) cone in
  List.iter
    (fun n -> Alcotest.(check bool) ("has " ^ n) true (List.mem n names))
    [ "G17"; "G11"; "G9"; "G5"; "G15"; "G16" ];
  Alcotest.(check bool) "stops at FF (no G10)" false (List.mem "G10" names);
  (* The sequential cone crosses flip-flops and reaches everything. *)
  let seq_cone = Netlist.Cone.fanin_cone c ~sequential:true [ id "G17" ] in
  Alcotest.(check bool) "sequential cone bigger" true
    (List.length seq_cone > List.length cone)

let test_cone_extract_consistent () =
  (* Extracted cone computes the same value as the full circuit, given the
     cone-input values observed in the full simulation. *)
  let c = Circuits.Iscas.s27 () in
  let root = C.id_of_name_exn c "G17" in
  let sub = Netlist.Cone.extract c ~roots:[ root ] ~name:"g17_cone" in
  Alcotest.(check int) "one output" 1 (C.output_count sub);
  let rng = Prng.Rng.create 91L in
  let sim = Logicsim.Goodsim.create c in
  let sub_sim = Logicsim.Goodsim.create sub in
  for _ = 1 to 50 do
    Logicsim.Goodsim.step sim (Logicsim.Vectors.random rng ~width:4);
    let sub_in =
      Array.map
        (fun i ->
          Logicsim.Goodsim.value sim (C.id_of_name_exn c (C.node sub i).C.name))
        (C.inputs sub)
    in
    Logicsim.Goodsim.step sub_sim sub_in;
    Alcotest.(check bool) "same root value" true
      (L.equal (Logicsim.Goodsim.value sim root)
         (Logicsim.Goodsim.po_values sub_sim).(0))
  done

let test_cone_extract_errors () =
  let c = Circuits.Iscas.s27 () in
  let inv f =
    Alcotest.(check bool) "rejects" true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  inv (fun () -> Netlist.Cone.extract c ~roots:[] ~name:"x");
  inv (fun () ->
      Netlist.Cone.extract c ~roots:[ C.id_of_name_exn c "G0" ] ~name:"x")

(* ------------------------------------------------------------ Scoap *)

let test_scoap_basic () =
  (* o = AND(a, b): cc1(o) = cc1(a)+cc1(b)+1 = 3; cc0(o) = min+1 = 2. *)
  let b = C.Builder.create ~name:"sc" () in
  C.Builder.add_input b "a";
  C.Builder.add_input b "b";
  C.Builder.add_gate b "o" G.And [ "a"; "b" ];
  C.Builder.add_output b "o";
  let c = C.Builder.build b in
  let t = Netlist.Scoap.compute c in
  let o = C.id_of_name_exn c "o" in
  let a = C.id_of_name_exn c "a" in
  Alcotest.(check int) "cc1 o" 3 t.Netlist.Scoap.cc1.(o);
  Alcotest.(check int) "cc0 o" 2 t.Netlist.Scoap.cc0.(o);
  Alcotest.(check int) "co o" 0 t.Netlist.Scoap.co.(o);
  (* Observing a requires b = 1: co(a) = co(o) + cc1(b) + 1 = 2. *)
  Alcotest.(check int) "co a" 2 t.Netlist.Scoap.co.(a)

let test_scoap_sequential () =
  (* A flip-flop adds one unit of sequential depth per crossing. *)
  let b = C.Builder.create ~name:"sq" () in
  C.Builder.add_input b "a";
  C.Builder.add_gate b "q" G.Dff [ "a" ];
  C.Builder.add_gate b "o" G.Buf [ "q" ];
  C.Builder.add_output b "o";
  let c = C.Builder.build b in
  let t = Netlist.Scoap.compute c in
  let q = C.id_of_name_exn c "q" in
  let a = C.id_of_name_exn c "a" in
  Alcotest.(check int) "cc1 q = cc1 a + 1" (t.Netlist.Scoap.cc1.(a) + 1)
    t.Netlist.Scoap.cc1.(q);
  Alcotest.(check int) "co a crosses ff" 2 t.Netlist.Scoap.co.(a)

let test_scoap_unobservable () =
  (* A flip-flop feeding nothing keeps infinite observability. *)
  let b = C.Builder.create ~name:"dead" () in
  C.Builder.add_input b "a";
  C.Builder.add_gate b "q" G.Dff [ "a" ];
  C.Builder.add_gate b "o" G.Buf [ "a" ];
  C.Builder.add_output b "o";
  let c = C.Builder.build b in
  let t = Netlist.Scoap.compute c in
  let q = C.id_of_name_exn c "q" in
  Alcotest.(check int) "co q infinite" Netlist.Scoap.infinite
    t.Netlist.Scoap.co.(q)

let test_scoap_scan_makes_s27_finite () =
  (* Raw s27 has no reset: some states are unreachable from power-up and
     their SCOAP measures are legitimately infinite (e.g. G7 can never
     become 0 without scan).  After scan insertion every flip-flop is
     controllable through the chain and observable through scan_out, so
     every measure must be finite — exactly the property the paper's
     approach builds on. *)
  let raw = Circuits.Iscas.s27 () in
  let t_raw = Netlist.Scoap.compute raw in
  Alcotest.(check bool) "raw s27 has infinite measures" true
    (Array.exists (fun v -> v >= Netlist.Scoap.infinite) t_raw.Netlist.Scoap.cc1);
  let scan = (Scanins.Scan.insert raw).Scanins.Scan.circuit in
  let t = Netlist.Scoap.compute scan in
  Array.iter
    (fun nd ->
      let n = nd.C.id in
      if t.Netlist.Scoap.cc0.(n) >= Netlist.Scoap.infinite
         || t.Netlist.Scoap.cc1.(n) >= Netlist.Scoap.infinite
         || t.Netlist.Scoap.co.(n) >= Netlist.Scoap.infinite
      then Alcotest.failf "node %s not testable in s27_scan" nd.C.name)
    (C.nodes scan)

(* ------------------------------------------------------ Bench format *)

let test_bench_roundtrip_s27 () =
  let c = Circuits.Iscas.s27 () in
  let c2 = Netlist.Bench_format.parse_string ~name:"s27"
      (Netlist.Bench_format.to_string c) in
  Alcotest.(check int) "nodes" (C.node_count c) (C.node_count c2);
  Alcotest.(check int) "inputs" (C.input_count c) (C.input_count c2);
  Alcotest.(check int) "dffs" (C.dff_count c) (C.dff_count c2);
  (* Same fanins per name. *)
  Array.iter
    (fun nd ->
      let nd2 = C.node c2 (C.id_of_name_exn c2 nd.C.name) in
      Alcotest.(check bool) "kind" true (G.equal_kind nd.C.kind nd2.C.kind);
      let names c nd =
        Array.to_list (Array.map (fun f -> (C.node c f).C.name) nd.C.fanins)
      in
      Alcotest.(check (list string)) "fanins" (names c nd) (names c2 nd2))
    (C.nodes c)

let test_bench_parse_errors () =
  let expect_parse_error s =
    match Netlist.Bench_format.parse_string ~name:"t" s with
    | exception Netlist.Bench_format.Parse_error e ->
      Alcotest.(check bool) "line is 1-based" true (e.line >= 1);
      Alcotest.(check bool) "col is 1-based" true (e.col >= 1);
      Alcotest.(check bool) "message set" true (String.length e.message > 0)
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect_parse_error "INPUT(a";
  expect_parse_error "g = FOO(a)";
  expect_parse_error "g = ";
  expect_parse_error "INPUT(a, b)";
  expect_parse_error "= AND(a, b)";
  (* The error pinpoints the offending token in the raw source line. *)
  let expect ~line ~col ~token s =
    match Netlist.Bench_format.parse_string ~name:"t" s with
    | exception Netlist.Bench_format.Parse_error e ->
      Alcotest.(check int) "line" line e.line;
      Alcotest.(check int) "col" col e.col;
      Alcotest.(check string) "token" token e.token
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect ~line:2 ~col:5 ~token:"NOPE" "INPUT(a)\nb = NOPE(a)\n";
  expect ~line:3 ~col:3 ~token:"WIRE" "INPUT(a)\nOUTPUT(b)\n  WIRE(a)\n";
  expect ~line:1 ~col:1 ~token:"INPUT" "INPUT(a, b)\n";
  expect ~line:2 ~col:5 ~token:"INPUT" "INPUT(a)\nb = INPUT(a)\n"

let test_bench_comments_and_blank () =
  let c =
    Netlist.Bench_format.parse_string ~name:"t"
      "# a comment\n\nINPUT(a)  # trailing\n\nOUTPUT(g)\ng = NOT(a)\n"
  in
  Alcotest.(check int) "one gate" 1 (C.gate_count c)

let prop_bench_roundtrip =
  (* Random synthetic circuits survive the .bench writer/parser. *)
  QCheck2.Test.make ~name:"bench roundtrip preserves structure" ~count:20
    QCheck2.Gen.(pair (int_range 1 5) (int_range 5 40))
    (fun (pis, gates) ->
      let c =
        Circuits.Synthetic.generate ~name:"prop" ~pis ~ffs:3 ~gates
          ~seed:(Int64.of_int (pis * 1000 + gates)) ()
      in
      let c2 =
        Netlist.Bench_format.parse_string ~name:"prop"
          (Netlist.Bench_format.to_string c)
      in
      C.node_count c = C.node_count c2
      && C.gate_count c = C.gate_count c2
      && C.output_count c = C.output_count c2)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "netlist"
    [
      ( "logic",
        [
          Alcotest.test_case "not" `Quick test_logic_not;
          Alcotest.test_case "and" `Quick test_logic_and;
          Alcotest.test_case "or" `Quick test_logic_or;
          Alcotest.test_case "xor" `Quick test_logic_xor;
          Alcotest.test_case "mux" `Quick test_logic_mux;
          Alcotest.test_case "chars" `Quick test_logic_chars;
          q prop_demorgan;
          q prop_monotone;
        ] );
      ( "gate",
        [
          Alcotest.test_case "eval" `Quick test_gate_eval;
          Alcotest.test_case "arity errors" `Quick test_gate_arity_errors;
          Alcotest.test_case "names" `Quick test_gate_names;
          Alcotest.test_case "controlling/inversion" `Quick test_gate_meta;
        ] );
      ( "builder",
        [
          Alcotest.test_case "basic accessors" `Quick test_builder_basic;
          Alcotest.test_case "duplicate signal" `Quick test_builder_duplicate;
          Alcotest.test_case "dangling fanin" `Quick test_builder_dangling;
          Alcotest.test_case "dangling output" `Quick test_builder_bad_output;
          Alcotest.test_case "mux arity" `Quick test_builder_arity;
          Alcotest.test_case "combinational cycle" `Quick test_builder_comb_cycle;
          Alcotest.test_case "dff cycle allowed" `Quick test_builder_dff_cycle_ok;
          Alcotest.test_case "remap" `Quick test_remap;
        ] );
      ( "levelize",
        [
          Alcotest.test_case "levels" `Quick test_levelize;
          Alcotest.test_case "order respects fanins" `Quick test_levelize_order_valid;
        ] );
      ( "cone",
        [
          Alcotest.test_case "membership" `Quick test_cone_membership;
          Alcotest.test_case "extraction consistent" `Quick
            test_cone_extract_consistent;
          Alcotest.test_case "errors" `Quick test_cone_extract_errors;
        ] );
      ( "scoap",
        [
          Alcotest.test_case "combinational formulas" `Quick test_scoap_basic;
          Alcotest.test_case "sequential depth" `Quick test_scoap_sequential;
          Alcotest.test_case "unobservable node" `Quick test_scoap_unobservable;
          Alcotest.test_case "scan insertion makes s27 finite" `Quick
            test_scoap_scan_makes_s27_finite;
        ] );
      ( "bench format",
        [
          Alcotest.test_case "s27 roundtrip" `Quick test_bench_roundtrip_s27;
          Alcotest.test_case "parse errors" `Quick test_bench_parse_errors;
          Alcotest.test_case "comments/blank lines" `Quick test_bench_comments_and_blank;
          q prop_bench_roundtrip;
        ] );
    ]
