(* Fleet layer: result-cache mechanics, canonical request rendering,
   and the sharding router — shard-count invariance, memoized-response
   byte identity, bypass ops, crash-and-retry (DESIGN.md §15). *)

module P = Server.Protocol
module J = Obs.Json
module RC = Fleet.Result_cache

(* -------------------------------------------------------- result cache *)

let test_split_splice_id () =
  let body = {|,"op":"generate","status":"ok","n":3}|} in
  (match RC.split_id ({|{"id":42|} ^ body) with
  | Some (id, suffix) ->
    Alcotest.(check int) "id" 42 id;
    Alcotest.(check string) "suffix" body suffix;
    Alcotest.(check string) "splice restamps"
      ({|{"id":7|} ^ body)
      (RC.splice_id ~id:7 suffix)
  | None -> Alcotest.fail "expected a split");
  (match RC.split_id ({|{"id":-3|} ^ body) with
  | Some (id, _) -> Alcotest.(check int) "negative id" (-3) id
  | None -> Alcotest.fail "expected a split on negative id");
  Alcotest.(check bool) "no id prefix" true
    (RC.split_id {|{"op":"ping"}|} = None);
  Alcotest.(check bool) "id not a number" true
    (RC.split_id {|{"id":x}|} = None)

let test_result_cache_lru () =
  let c = RC.create ~capacity:2 in
  RC.add c ~key:"a" ~suffix:"A";
  RC.add c ~key:"b" ~suffix:"B";
  Alcotest.(check (option string)) "a cached" (Some "A") (RC.find c ~key:"a");
  (* a is now most-recent; inserting c evicts b *)
  RC.add c ~key:"c" ~suffix:"C";
  Alcotest.(check (option string)) "b evicted" None (RC.find c ~key:"b");
  Alcotest.(check (option string)) "a survives" (Some "A") (RC.find c ~key:"a");
  Alcotest.(check (option string)) "c cached" (Some "C") (RC.find c ~key:"c");
  (* duplicate insert keeps the first payload *)
  RC.add c ~key:"a" ~suffix:"A2";
  Alcotest.(check (option string)) "dedup keeps first" (Some "A")
    (RC.find c ~key:"a");
  let s = RC.stats c in
  Alcotest.(check int) "evictions" 1 s.RC.evictions;
  Alcotest.(check int) "insertions" 3 s.RC.insertions;
  Alcotest.(check int) "entries" 2 (RC.length c)

(* ----------------------------------------------- canonical re-rendering *)

let canon ?drop_jobs line =
  P.canonical_of_request ?drop_jobs (P.request_of_string line)

let test_canonical_roundtrip () =
  (* the canonical form must re-parse to an equal canonical form: it is
     what the router sends to shards in place of the client's bytes *)
  let lines =
    [ {|{"op":"generate","circuit":"s27","seed":5,"chains":2}|};
      {|{"op":"generate","circuit":"s27","seed":5,"compact":false}|};
      {|{"op":"table","circuit":"s344","scale":"full"}|};
      {|{"op":"compact","circuit":"s27","vectors":["0101011"]}|};
      {|{"op":"ping"}|} ]
  in
  List.iter
    (fun line ->
      let c1 = canon line in
      Alcotest.(check string) ("fixpoint: " ^ line) c1 (canon c1))
    lines

let test_canonical_drop_jobs_key () =
  (* parallelism knobs must not split the result-cache key: the purity
     contract makes their payloads byte-identical *)
  let a = {|{"op":"generate","circuit":"s27","seed":5}|} in
  let b = {|{"op":"generate","circuit":"s27","seed":5,"sim_jobs":4,"compact_jobs":2}|} in
  Alcotest.(check string) "jobs knobs dropped from key"
    (canon ~drop_jobs:true a) (canon ~drop_jobs:true b);
  Alcotest.(check bool) "but kept in the dispatch body" true
    (canon a <> canon b);
  (* anything payload-affecting must stay in the key *)
  let c = {|{"op":"generate","circuit":"s27","seed":6}|} in
  Alcotest.(check bool) "seed still splits the key" true
    (canon ~drop_jobs:true a <> canon ~drop_jobs:true c)

(* -------------------------------------------------------------- router *)

let shard_main socket =
  Server.Daemon.run
    {
      (Server.Daemon.default_config (Server.Daemon.Unix_sock socket)) with
      Server.Daemon.install_signals = false;
      verbose = false;
    }

let with_router ?(shards = 2) ?(result_cache_capacity = 256) ?chaos f =
  let sock = Filename.temp_file "scanatpg_fleet" ".sock" in
  let addr = Server.Daemon.Unix_sock sock in
  let cfg =
    {
      (Fleet.Router.default_config addr ~shards
         ~launcher:(Fleet.Shard.Inproc shard_main))
      with
      Fleet.Router.result_cache_capacity;
      chaos;
      drain_grace_s = 10.0;
      install_signals = false;
      verbose = false;
    }
  in
  let d = Domain.spawn (fun () -> Fleet.Router.run cfg) in
  let rec wait_up n =
    if n > 250 then Alcotest.fail "router did not come up"
    else
      match Server.Client.connect addr with
      | c -> Server.Client.close c
      | exception Unix.Unix_error _ ->
        Unix.sleepf 0.02;
        wait_up (n + 1)
  in
  wait_up 0;
  let shutdown () =
    try
      let c = Server.Client.connect addr in
      ignore (Server.Client.call c {|{"id":9999,"op":"shutdown"}|});
      Server.Client.close c
    with _ -> ()
  in
  let result =
    try f addr
    with e ->
      shutdown ();
      ignore (Domain.join d);
      raise e
  in
  shutdown ();
  let code = Domain.join d in
  Alcotest.(check int) "router drained with exit 0" 0 code;
  result

let write_jsonl path lines =
  Obs.Fileio.write_string path (String.concat "\n" lines ^ "\n")

let batch ?(retries = 0) addr lines =
  let input = Filename.temp_file "scanatpg_fleet" ".jsonl" in
  let output = Filename.temp_file "scanatpg_fleet" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove input with Sys_error _ -> ());
      try Sys.remove output with Sys_error _ -> ())
    (fun () ->
      write_jsonl input lines;
      let outcomes =
        Server.Client.run_batch ~addr ~input ~output ~retries ~backoff_ms:20
          ()
      in
      List.map
        (fun o ->
          ( o.Server.Client.status,
            Option.value ~default:"" o.Server.Client.payload ))
        outcomes)

let counter resp name =
  match
    Option.bind
      (Option.bind (J.member "counters" (J.parse resp)) (J.member name))
      J.get_int
  with
  | Some v -> v
  | None -> 0

let router_stats addr =
  let c = Server.Client.connect addr in
  Fun.protect
    ~finally:(fun () -> Server.Client.close c)
    (fun () -> Server.Client.call c {|{"id":1,"op":"stats"}|})

let is_stats payload =
  match J.member "op" (J.parse payload) with
  | Some (J.Str "stats") -> true
  | _ -> false

let test_router_roundtrip () =
  with_router ~shards:1 (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          Alcotest.(check string) "ping inline"
            {|{"id":1,"op":"ping","status":"ok"}|}
            (Server.Client.call c {|{"id":1,"op":"ping"}|});
          let resp =
            Server.Client.call c
              {|{"id":2,"op":"generate","circuit":"s27","seed":77}|}
          in
          match J.member "status" (J.parse resp) with
          | Some (J.Str "ok") -> ()
          | _ -> Alcotest.fail ("expected ok: " ^ resp)))

let stream =
  [ {|{"op":"generate","circuit":"s27","seed":77}|};
    {|{"op":"stats"}|};
    {|{"op":"generate","circuit":"s298","seed":5}|};
    {|{"op":"table","circuit":"s27"}|};
    {|{"op":"generate","circuit":"s27","seed":77,"sim_jobs":2}|};
    {|{"op":"generate","circuit":"s27","seed":99}|} ]

let test_router_shard_count_invariance () =
  (* the same stream through 1 shard and 4 shards must produce
     byte-identical compute payloads; stats snapshots live router state
     and is the one op excluded (same exclusion as the daemon's
     jobs-invariance test) *)
  let run shards = with_router ~shards (fun addr -> batch addr stream) in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check int) "all answered" (List.length stream)
    (List.length r1);
  List.iter
    (fun (status, _) -> Alcotest.(check string) "status ok" "ok" status)
    (r1 @ r4);
  let compute r = List.filter (fun (_, p) -> not (is_stats p)) r in
  List.iter2
    (fun (_, p1) (_, p4) ->
      Alcotest.(check string) "payload identical across shard counts" p1 p4)
    (compute r1) (compute r4)

let test_router_result_cache_hit () =
  with_router ~shards:2 (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let req id =
            Printf.sprintf
              {|{"id":%d,"op":"generate","circuit":"s27","seed":77}|} id
          in
          (* sequential calls: the second is answered from the result
             cache and must be byte-identical to the computed first
             (modulo the client id it is re-addressed to) *)
          let r1 = Server.Client.call c (req 10) in
          let r2 = Server.Client.call c (req 20) in
          (* a jobs-knob variant shares the key by purity *)
          let r3 =
            Server.Client.call c
              {|{"id":30,"op":"generate","circuit":"s27","seed":77,"sim_jobs":2}|}
          in
          let suffix r =
            match RC.split_id r with
            | Some (_, s) -> s
            | None -> Alcotest.fail ("no id prefix: " ^ r)
          in
          Alcotest.(check string) "cached == computed" (suffix r1)
            (suffix r2);
          Alcotest.(check string) "jobs variant shares the entry"
            (suffix r1) (suffix r3);
          let stats = router_stats addr in
          Alcotest.(check int) "two hits" 2
            (counter stats "server.result_hit");
          Alcotest.(check int) "one miss" 1
            (counter stats "server.result_miss")))

let test_router_bypass_ops () =
  (* ping is answered inline, stats snapshots live state, chaos mutates
     it: none may touch the result cache *)
  with_router ~shards:1 (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          ignore (Server.Client.call c {|{"id":1,"op":"ping"}|});
          ignore (Server.Client.call c {|{"id":2,"op":"ping"}|});
          ignore (Server.Client.call c {|{"id":3,"op":"stats"}|});
          ignore (Server.Client.call c {|{"id":4,"op":"chaos","spec":"off"}|});
          ignore (Server.Client.call c {|{"id":5,"op":"chaos","spec":"off"}|});
          let stats = router_stats addr in
          Alcotest.(check int) "no result-cache hits" 0
            (counter stats "server.result_hit");
          Alcotest.(check int) "no result-cache misses" 0
            (counter stats "server.result_miss")))

let test_router_result_cache_eviction () =
  (* capacity 1: alternating keys never hit *)
  with_router ~shards:1 ~result_cache_capacity:1 (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let a id =
            Printf.sprintf {|{"id":%d,"op":"table","circuit":"s27"}|} id
          in
          let b id =
            Printf.sprintf {|{"id":%d,"op":"table","circuit":"s298"}|} id
          in
          ignore (Server.Client.call c (a 1));
          ignore (Server.Client.call c (b 2));
          ignore (Server.Client.call c (a 3));
          ignore (Server.Client.call c (b 4));
          let stats = router_stats addr in
          Alcotest.(check int) "every lookup missed" 4
            (counter stats "server.result_miss");
          Alcotest.(check int) "capacity-1 thrash" 0
            (counter stats "server.result_hit")))

let test_router_shard_crash_typed_outcomes () =
  (* kill the dispatch target once: the request is redispatched after
     the restart and the client still sees exactly one ok response *)
  with_router ~shards:2 ~chaos:"seed=11;shard=crash#1" (fun addr ->
      let outcomes =
        batch addr
          [ {|{"op":"generate","circuit":"s27","seed":77}|};
            {|{"op":"generate","circuit":"s298","seed":5}|} ]
      in
      Alcotest.(check int) "both answered" 2 (List.length outcomes);
      List.iter
        (fun (status, _) ->
          Alcotest.(check string) "typed ok outcome" "ok" status)
        outcomes;
      let stats = router_stats addr in
      Alcotest.(check int) "the kill fired" 1
        (counter stats "router.shard_kills"))

let test_router_retried_equals_clean () =
  (* a writer fault poisons the client connection mid-batch; a retrying
     client reconnects to the ROUTER and replays only the unanswered
     requests — the final payloads must be byte-identical to an
     undisturbed run (satellite of the PR 7 retried-vs-clean diff,
     routed topology) *)
  let lines =
    [ {|{"op":"generate","circuit":"s27","seed":77}|};
      {|{"op":"table","circuit":"s27"}|};
      {|{"op":"generate","circuit":"s298","seed":5}|} ]
  in
  let payloads r = List.map snd r in
  let clean = with_router ~shards:2 (fun addr -> batch addr lines) in
  let retried =
    with_router ~shards:2 ~chaos:"seed=3;writer=error#1" (fun addr ->
        batch ~retries:3 addr lines)
  in
  List.iter
    (fun (status, _) -> Alcotest.(check string) "clean ok" "ok" status)
    (clean @ retried);
  List.iter2
    (fun p1 p2 ->
      Alcotest.(check string) "retried == clean through router" p1 p2)
    (payloads clean) (payloads retried)

(* ------------------------------------------------------------- loadgen *)

let test_loadgen_pick_deterministic () =
  let draws seed = List.init 64 (fun i -> Fleet.Loadgen.pick ~seed ~n:3 i) in
  Alcotest.(check (list int)) "same seed replays" (draws 7) (draws 7);
  Alcotest.(check bool) "in range" true
    (List.for_all (fun d -> d >= 0 && d < 3) (draws 7));
  Alcotest.(check bool) "seed changes the mix" true (draws 7 <> draws 8)

let test_loadgen_against_router () =
  with_router ~shards:1 (fun addr ->
      let r =
        Fleet.Loadgen.run ~addr
          ~templates:
            [ {|{"op":"ping"}|}; {|{"op":"table","circuit":"s27"}|} ]
          ~rate:50.0 ~duration_s:0.4 ~seed:3 ()
      in
      Alcotest.(check int) "sent the whole schedule" 20 r.Fleet.Loadgen.sent;
      Alcotest.(check int) "no losses" 0 r.Fleet.Loadgen.lost;
      Alcotest.(check int) "all completed" 20 r.Fleet.Loadgen.completed;
      let ok =
        try List.assoc "ok" r.Fleet.Loadgen.by_status with Not_found -> 0
      in
      Alcotest.(check int) "all ok" 20 ok;
      Alcotest.(check bool) "p99 >= p50" true
        (r.Fleet.Loadgen.p99_ms >= r.Fleet.Loadgen.p50_ms))

(* ---------------------------------------------------------------- main *)

let () =
  Alcotest.run "fleet"
    [
      ( "result_cache",
        [
          Alcotest.test_case "split/splice id" `Quick test_split_splice_id;
          Alcotest.test_case "lru + dedup" `Quick test_result_cache_lru;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "roundtrip fixpoint" `Quick
            test_canonical_roundtrip;
          Alcotest.test_case "drop_jobs key" `Quick
            test_canonical_drop_jobs_key;
        ] );
      ( "router",
        [
          Alcotest.test_case "roundtrip" `Quick test_router_roundtrip;
          Alcotest.test_case "shard-count invariance" `Quick
            test_router_shard_count_invariance;
          Alcotest.test_case "result-cache hit byte-identity" `Quick
            test_router_result_cache_hit;
          Alcotest.test_case "bypass ops" `Quick test_router_bypass_ops;
          Alcotest.test_case "result-cache eviction" `Quick
            test_router_result_cache_eviction;
          Alcotest.test_case "shard crash, typed outcomes" `Quick
            test_router_shard_crash_typed_outcomes;
          Alcotest.test_case "retried == clean (routed)" `Quick
            test_router_retried_equals_clean;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "deterministic pick" `Quick
            test_loadgen_pick_deterministic;
          Alcotest.test_case "open-loop run" `Quick
            test_loadgen_against_router;
        ] );
    ]
