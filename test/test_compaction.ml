(* Static compaction: both procedures must preserve detection of every
   target fault, only ever shorten the sequence, and keep bookkeeping
   (detection times) consistent. *)

module C = Netlist.Circuit
module L = Netlist.Logic
module Model = Faultmodel.Model
module Faultsim = Logicsim.Faultsim
module Vectors = Logicsim.Vectors
module Target = Compaction.Target

let s27_model () =
  Model.build (Scanins.Scan.insert (Circuits.Iscas.s27 ())).Scanins.Scan.circuit

let random_setup seed len =
  let m = s27_model () in
  let rng = Prng.Rng.create (Int64.of_int seed) in
  let seq = Vectors.random_seq rng ~width:(C.input_count m.Model.circuit) ~length:len in
  let ids = Array.init (Model.fault_count m) Fun.id in
  let targets = Target.compute m seq ~fault_ids:ids in
  m, seq, targets

(* -------------------------------------------------------------- target *)

let test_target_compute () =
  let m, seq, targets = random_setup 1 150 in
  Alcotest.(check bool) "some detected" true (Target.count targets > 40);
  (* Detection times are consistent with single-fault simulation. *)
  Array.iteri
    (fun i fid ->
      match Faultsim.detects_single m ~fault:fid seq with
      | Some t -> Alcotest.(check int) "time" t targets.Target.det_times.(i)
      | None -> Alcotest.fail "target not detected")
    targets.Target.fault_ids

let test_target_detected_by () =
  let m, seq, targets = random_setup 2 150 in
  Alcotest.(check bool) "full seq detects" true (Target.detected_by m seq targets);
  Alcotest.(check bool) "empty seq does not" true
    (Target.count targets = 0 || not (Target.detected_by m [||] targets))

(* ---------------------------------------------------------- restoration *)

let is_subsequence sub seq =
  (* Each vector of [sub] appears in [seq] in order (by physical equality of
     content). *)
  let n = Array.length seq in
  let rec go i j =
    if i >= Array.length sub then true
    else if j >= n then false
    else if sub.(i) = seq.(j) then go (i + 1) (j + 1)
    else go i (j + 1)
  in
  go 0 0

let test_restoration_preserves_targets () =
  let m, seq, targets = random_setup 3 200 in
  let restored = Compaction.Restoration.run m seq targets in
  Alcotest.(check bool) "no longer" true (Array.length restored <= Array.length seq);
  Alcotest.(check bool) "subsequence" true (is_subsequence restored seq);
  Alcotest.(check bool) "all targets kept" true (Target.detected_by m restored targets)

let test_restoration_drops_useless_tail () =
  (* Append pure-X junk after the last detection: restoration must drop it. *)
  let m, seq, targets = random_setup 4 120 in
  let width = C.input_count m.Model.circuit in
  let junk = Array.make 50 (Array.make width L.Zero) in
  let padded = Array.append seq junk in
  let targets_p = Target.compute m padded ~fault_ids:targets.Target.fault_ids in
  let restored = Compaction.Restoration.run m padded targets_p in
  Alcotest.(check bool) "shorter than padded" true
    (Array.length restored < Array.length padded);
  Alcotest.(check bool) "targets kept" true (Target.detected_by m restored targets_p)

let test_restoration_empty_targets () =
  let m, seq, _ = random_setup 5 50 in
  let empty = { Target.fault_ids = [||]; det_times = [||] } in
  let restored = Compaction.Restoration.run m seq empty in
  Alcotest.(check int) "empty result" 0 (Array.length restored)

(* ------------------------------------------------------------- omission *)

let test_omission_preserves_targets () =
  let m, seq, targets = random_setup 6 200 in
  let compacted, targets', _ =
    Compaction.Omission.run m seq targets Compaction.Omission.default_config
  in
  Alcotest.(check bool) "no longer" true
    (Array.length compacted <= Array.length seq);
  Alcotest.(check bool) "targets kept" true (Target.detected_by m compacted targets);
  (* Updated detection times are correct. *)
  Array.iteri
    (fun i fid ->
      match Faultsim.detects_single m ~fault:fid compacted with
      | Some t -> Alcotest.(check int) "updated time" t targets'.Target.det_times.(i)
      | None -> Alcotest.fail "target lost")
    targets'.Target.fault_ids

let test_omission_after_restoration () =
  (* The paper's pipeline: restoration then omission; omission must still
     find vectors to drop and never break the targets. *)
  let m, seq, targets = random_setup 7 250 in
  let restored = Compaction.Restoration.run m seq targets in
  let targets_r = Target.compute m restored ~fault_ids:targets.Target.fault_ids in
  let compacted, _, _ =
    Compaction.Omission.run m restored targets_r Compaction.Omission.default_config
  in
  Alcotest.(check bool) "pipeline monotone" true
    (Array.length compacted <= Array.length restored);
  Alcotest.(check bool) "targets kept" true (Target.detected_by m compacted targets_r)

let test_omission_trial_budget () =
  let m, seq, targets = random_setup 8 200 in
  let cfg = { Compaction.Omission.default_config with max_trials = Some 10 } in
  let compacted, _, _ = Compaction.Omission.run m seq targets cfg in
  (* Ten trials at a maximum chunk of 16 vectors each bound the removal. *)
  Alcotest.(check bool) "bounded removal" true
    (Array.length seq - Array.length compacted <= 10 * 16);
  Alcotest.(check bool) "targets kept" true (Target.detected_by m compacted targets)

let test_omission_single_pass () =
  let m, seq, targets = random_setup 9 150 in
  let cfg = { Compaction.Omission.default_config with max_passes = 1 } in
  let one, _, _ = Compaction.Omission.run m seq targets cfg in
  let full, _, _ = Compaction.Omission.run m seq targets Compaction.Omission.default_config in
  Alcotest.(check bool) "more passes never longer" true
    (Array.length full <= Array.length one)

let prop_compaction_preserves_coverage =
  QCheck2.Test.make ~name:"restoration+omission preserve every target" ~count:8
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 60 160))
    (fun (seed, len) ->
      let m, seq, targets = random_setup seed len in
      let restored = Compaction.Restoration.run m seq targets in
      let tr = Target.compute m restored ~fault_ids:targets.Target.fault_ids in
      Target.count tr = Target.count targets
      &&
      let compacted, _, _ =
        Compaction.Omission.run m restored tr Compaction.Omission.default_config
      in
      Target.detected_by m compacted targets
      && Array.length compacted <= Array.length restored
      && Array.length restored <= Array.length seq)

let prop_scan_cycles_never_grow =
  (* Compaction operating on C_scan sequences can only reduce the number of
     scan_sel = 1 cycles. *)
  QCheck2.Test.make ~name:"scan cycles never grow under compaction" ~count:6
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      let scan = Scanins.Scan.insert (Circuits.Iscas.s27 ()) in
      let m = Model.build scan.Scanins.Scan.circuit in
      let rng = Prng.Rng.create (Int64.of_int seed) in
      let seq =
        Vectors.random_seq rng ~width:(C.input_count m.Model.circuit) ~length:150
      in
      let ids = Array.init (Model.fault_count m) Fun.id in
      let targets = Target.compute m seq ~fault_ids:ids in
      let restored = Compaction.Restoration.run m seq targets in
      let sel = Scanins.Scan.sel_position scan in
      Vectors.count restored ~position:sel ~value:L.One
      <= Vectors.count seq ~position:sel ~value:L.One)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "compaction"
    [
      ( "target",
        [
          Alcotest.test_case "compute" `Quick test_target_compute;
          Alcotest.test_case "detected_by" `Quick test_target_detected_by;
        ] );
      ( "restoration",
        [
          Alcotest.test_case "preserves targets" `Quick
            test_restoration_preserves_targets;
          Alcotest.test_case "drops useless tail" `Quick
            test_restoration_drops_useless_tail;
          Alcotest.test_case "empty targets" `Quick test_restoration_empty_targets;
        ] );
      ( "omission",
        [
          Alcotest.test_case "preserves targets" `Quick test_omission_preserves_targets;
          Alcotest.test_case "after restoration" `Quick test_omission_after_restoration;
          Alcotest.test_case "trial budget" `Quick test_omission_trial_budget;
          Alcotest.test_case "pass count" `Quick test_omission_single_pass;
        ] );
      ( "properties",
        [ q prop_compaction_preserves_coverage; q prop_scan_cycles_never_grow ] );
    ]
