(* Resilience layer (DESIGN.md §8): budget tokens, atomic file writes,
   checkpoint files, resume determinism at every interruption point,
   degraded (budget-tripped) runs, and parallel-domain failure handling. *)

module L = Netlist.Logic
module Faultsim = Logicsim.Faultsim
module Budget = Obs.Budget
module Checkpoint = Core.Checkpoint

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "scanatpg_test_%d_%s" (Unix.getpid ()) name)

(* -------------------------------------------------------------- budget *)

let test_budget_unlimited () =
  let b = Budget.unlimited in
  Alcotest.(check bool) "not limited" false (Budget.limited b);
  for _ = 1 to 1000 do
    Alcotest.(check bool) "check passes" true (Budget.check b)
  done;
  Alcotest.(check bool) "never expired" false (Budget.expired b);
  Alcotest.(check bool) "never tripped" true (Budget.tripped b = None)

let test_budget_backtracks () =
  let b = Budget.create ~max_backtracks:10 () in
  Alcotest.(check bool) "limited" true (Budget.limited b);
  Budget.add_backtracks b 10;
  Alcotest.(check bool) "at ceiling still ok" true (Budget.check b);
  Budget.add_backtracks b 1;
  Alcotest.(check int) "counted" 11 (Budget.backtracks b);
  Alcotest.(check bool) "over ceiling fails" false (Budget.check b);
  Alcotest.(check bool) "reason recorded" true
    (Budget.tripped b = Some Budget.Backtracks);
  (* A second, independent token is unaffected. *)
  let b2 = Budget.create ~max_backtracks:10 () in
  Alcotest.(check bool) "fresh token ok" true (Budget.check b2)

let test_budget_deadline_zero () =
  let b = Budget.create ~deadline_s:0.0 () in
  Alcotest.(check bool) "first safe point trips" true (Budget.expired b);
  Alcotest.(check bool) "reason is deadline" true
    (Budget.tripped b = Some Budget.Deadline);
  Alcotest.(check bool) "stays tripped" true (Budget.expired b)

let test_budget_trip_sticky () =
  let b = Budget.create ~deadline_s:3600.0 () in
  Alcotest.(check bool) "initially ok" true (Budget.check b);
  Budget.trip b Budget.Backtracks;
  Alcotest.(check bool) "manually tripped" false (Budget.check b);
  (* First writer wins: a later deadline trip cannot change the reason. *)
  Budget.trip b Budget.Deadline;
  Alcotest.(check bool) "first reason kept" true
    (Budget.tripped b = Some Budget.Backtracks)

(* -------------------------------------------------------------- fileio *)

let test_fileio_atomic_write () =
  let path = tmp "fileio.txt" in
  let dir = Filename.dirname path in
  let siblings () =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f >= String.length (Filename.basename path)
           && String.sub f 0 (String.length (Filename.basename path))
              = Filename.basename path)
  in
  Obs.Fileio.write_string path "hello\n";
  let ic = open_in path in
  let got = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "content" "hello\n" got;
  Alcotest.(check (list string)) "no temp residue" [ Filename.basename path ]
    (siblings ());
  (* Overwrite is atomic too: the old content is fully replaced. *)
  Obs.Fileio.write_string path "v2\n";
  let ic = open_in path in
  let got = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "replaced" "v2\n" got;
  Sys.remove path

let test_fileio_failed_write_keeps_old () =
  let path = tmp "fileio_fail.txt" in
  Obs.Fileio.write_string path "original";
  (try
     Obs.Fileio.write path (fun _ -> failwith "boom");
     Alcotest.fail "expected the writer to raise"
   with Failure _ -> ());
  let ic = open_in path in
  let got = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "old content intact" "original" got;
  Sys.remove path

(* ---------------------------------------------------------- checkpoint *)

let sample_cursor () =
  {
    Core.Flow.c_target_ids = [| 0; 1; 2 |];
    c_pruned_redundant = 1;
    c_next_fault = 2;
    c_segments = [ [| [| L.One; L.Zero |] |] ];
    c_rng_state = 0xDEADBEEFL;
    c_by_random = 1;
    c_by_atpg = 1;
    c_by_drain = 0;
    c_by_justify = 0;
    c_aborted = [];
    c_atpg_calls = 3;
    c_atpg_decisions = 17;
    c_atpg_backtracks = 2;
  }

let test_checkpoint_roundtrip () =
  let path = tmp "ck_roundtrip" in
  let fp =
    Checkpoint.fingerprint ~circuit:"s27" ~scale:Circuits.Profiles.Quick
      ~seed:42L ~chains:1
  in
  let stage = Checkpoint.Generating (sample_cursor ()) in
  Checkpoint.save ~path ~fingerprint:fp stage;
  let f = Checkpoint.load path in
  Alcotest.(check string) "fingerprint" fp f.Checkpoint.fingerprint;
  Alcotest.(check string) "stage name" "generating"
    (Checkpoint.stage_name f.Checkpoint.stage);
  (match f.Checkpoint.stage with
   | Checkpoint.Generating c ->
     Alcotest.(check int) "cursor next fault" 2 c.Core.Flow.c_next_fault;
     Alcotest.(check bool) "cursor rng" true (c.Core.Flow.c_rng_state = 0xDEADBEEFL)
   | Checkpoint.Phased _ -> Alcotest.fail "wrong stage");
  Sys.remove path

let test_checkpoint_corrupt () =
  let expect_corrupt what path =
    match Checkpoint.load path with
    | _ -> Alcotest.failf "%s: expected Corrupt" what
    | exception Checkpoint.Corrupt _ -> ()
  in
  let path = tmp "ck_corrupt" in
  (* Missing file. *)
  if Sys.file_exists path then Sys.remove path;
  expect_corrupt "missing" path;
  (* Truncated / garbage. *)
  Obs.Fileio.write_string path "garbage";
  expect_corrupt "garbage" path;
  (* Wrong magic on an otherwise plausible file. *)
  Obs.Fileio.write_string path "not-a-checkpoint/9\n0000000000000000\n";
  expect_corrupt "magic" path;
  (* Flip one payload byte of a valid file: checksum must catch it. *)
  let fp =
    Checkpoint.fingerprint ~circuit:"s27" ~scale:Circuits.Profiles.Quick
      ~seed:42L ~chains:1
  in
  Checkpoint.save ~path ~fingerprint:fp
    (Checkpoint.Generating (sample_cursor ()));
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string raw in
  let i = Bytes.length b - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
  Obs.Fileio.write_string path (Bytes.to_string b);
  expect_corrupt "bitflip" path;
  Sys.remove path

let test_checkpoint_fingerprint_parts () =
  let fp ~circuit ~scale ~seed ~chains =
    Checkpoint.fingerprint ~circuit ~scale ~seed ~chains
  in
  let base = fp ~circuit:"s27" ~scale:Circuits.Profiles.Quick ~seed:1L ~chains:1 in
  Alcotest.(check bool) "circuit matters" true
    (base <> fp ~circuit:"s298" ~scale:Circuits.Profiles.Quick ~seed:1L ~chains:1);
  Alcotest.(check bool) "scale matters" true
    (base <> fp ~circuit:"s27" ~scale:Circuits.Profiles.Full ~seed:1L ~chains:1);
  Alcotest.(check bool) "seed matters" true
    (base <> fp ~circuit:"s27" ~scale:Circuits.Profiles.Quick ~seed:2L ~chains:1);
  Alcotest.(check bool) "chains matter" true
    (base <> fp ~circuit:"s27" ~scale:Circuits.Profiles.Quick ~seed:1L ~chains:2)

(* ------------------------------------------------- flow resume (cursors) *)

let seq_to_string seq =
  String.concat "\n" (Array.to_list (Array.map Logicsim.Vectors.to_string seq))

let flow_setup ?(random_phase = true) ~jobs name =
  let c = Circuits.Catalog.circuit name in
  let scan = Scanins.Scan.insert c in
  let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
  let cfg = Core.Config.with_sim_jobs jobs (Core.Config.for_circuit c) in
  let cfg =
    if random_phase then cfg else { cfg with Core.Config.random_phase = None }
  in
  let sk = Atpg.Scan_knowledge.create scan in
  cfg, sk, model

let counters_alist m =
  List.sort compare (Obs.Counters.to_alist (Obs.Metrics.counters m))

let check_flow_equal what (a : Core.Flow.stats) (b : Core.Flow.stats) =
  Alcotest.(check string)
    (what ^ ": sequence") (seq_to_string a.sequence) (seq_to_string b.sequence);
  Alcotest.(check int) (what ^ ": detected") a.detected b.detected;
  Alcotest.(check int) (what ^ ": by_random") a.by_random b.by_random;
  Alcotest.(check int) (what ^ ": by_atpg") a.by_atpg b.by_atpg;
  Alcotest.(check int) (what ^ ": by_drain") a.by_drain b.by_drain;
  Alcotest.(check int) (what ^ ": by_justify") a.by_justify b.by_justify;
  Alcotest.(check (array int))
    (what ^ ": undetected") a.undetected b.undetected;
  Alcotest.(check (array int))
    (what ^ ": aborted") a.aborted_faults b.aborted_faults

(* Run the flow once collecting a cursor at every fault boundary, then
   resume from EVERY cursor and demand bit-identical stats, sequence and
   jobs-invariant counters. *)
let flow_resume_determinism ~jobs name () =
  (* The random phase alone detects everything in the smallest circuits;
     disable it so generation actually commits per-fault subsequences and
     produces mid-generation cursors. *)
  let cfg, sk, model = flow_setup ~random_phase:false ~jobs name in
  let cursors = ref [] in
  let ref_metrics = Obs.Metrics.create () in
  let reference =
    Core.Flow.generate ~metrics:ref_metrics ~checkpoint_every:1
      ~on_checkpoint:(fun c -> cursors := c :: !cursors)
      cfg sk model
  in
  let cursors = List.rev !cursors in
  Alcotest.(check bool) "captured mid-generation cursors" true
    (List.length cursors > 0);
  List.iteri
    (fun i cursor ->
      let m = Obs.Metrics.create () in
      let resumed = Core.Flow.generate ~metrics:m ~resume:cursor cfg sk model in
      let what = Printf.sprintf "%s jobs=%d cursor#%d" name jobs i in
      check_flow_equal what reference resumed;
      Alcotest.(check (list (pair string int)))
        (what ^ ": counters") (counters_alist ref_metrics) (counters_alist m))
    cursors

(* ------------------------------------------- pipeline resume (boundaries) *)

let pipeline_config ~jobs name =
  let c = Circuits.Catalog.circuit name in
  Core.Config.with_sim_jobs jobs (Core.Config.for_circuit c)

let check_result_equal what (a : Core.Pipeline.result) (b : Core.Pipeline.result) =
  Alcotest.(check bool) (what ^ ": row5") true (a.row5 = b.row5);
  Alcotest.(check bool) (what ^ ": row6") true (a.row6 = b.row6);
  Alcotest.(check bool) (what ^ ": row7") true (a.row7 = b.row7);
  Alcotest.(check bool) (what ^ ": not degraded") false
    (a.degraded || b.degraded);
  Alcotest.(check (list (pair string int)))
    (what ^ ": counters") (counters_alist a.metrics) (counters_alist b.metrics)

let pipeline_resume_determinism ~jobs name () =
  let reference =
    Core.Pipeline.run ~config:(pipeline_config ~jobs:1 name) name
  in
  List.iter
    (fun phase ->
      let path = tmp (Printf.sprintf "ck_%s_%s_%d" name phase jobs) in
      if Sys.file_exists path then Sys.remove path;
      (match
         Core.Pipeline.run
           ~config:(pipeline_config ~jobs name)
           ~checkpoint:path ~halt_after:phase name
       with
       | _ -> Alcotest.failf "halt_after %s did not halt" phase
       | exception Core.Pipeline.Halted p ->
         Alcotest.(check string) "halted at requested phase" phase p);
      let resumed =
        Core.Pipeline.run
          ~config:(pipeline_config ~jobs name)
          ~checkpoint:path ~resume:(Checkpoint.load path) name
      in
      check_result_equal
        (Printf.sprintf "%s jobs=%d resume@%s" name jobs phase)
        reference resumed;
      Sys.remove path)
    [ "generate"; "compact"; "extra-detect"; "baseline" ]

let test_pipeline_resume_wrong_fingerprint () =
  let path = tmp "ck_wrong_fp" in
  (match
     Core.Pipeline.run ~config:(pipeline_config ~jobs:1 "s27") ~checkpoint:path
       ~halt_after:"generate" "s27"
   with
  | _ -> Alcotest.fail "expected Halted"
  | exception Core.Pipeline.Halted _ -> ());
  let f = Checkpoint.load path in
  (* Same checkpoint, different run (seed differs): must be rejected. *)
  let cfg = { (pipeline_config ~jobs:1 "s27") with Core.Config.seed = 999L } in
  (match Core.Pipeline.run ~config:cfg ~resume:f "s27" with
  | _ -> Alcotest.fail "fingerprint mismatch accepted"
  | exception Checkpoint.Corrupt _ -> ());
  Sys.remove path

(* ------------------------------------------------------- degraded runs *)

let test_pipeline_degraded_deadline () =
  let budget = Budget.create ~deadline_s:0.0 () in
  let r = Core.Pipeline.run ~config:(pipeline_config ~jobs:1 "s27") ~budget "s27" in
  Alcotest.(check bool) "degraded" true r.Core.Pipeline.degraded;
  Alcotest.(check bool) "budget tripped" true (Budget.tripped budget <> None);
  (* The result is still well-formed: rows rendered, stats consistent. *)
  Alcotest.(check bool) "row rendering works" true
    (String.length (Core.Report.table5 [ r.Core.Pipeline.row5 ]) > 0);
  let f = r.Core.Pipeline.flow in
  Alcotest.(check bool) "detected <= targeted" true
    (f.Core.Flow.detected <= f.Core.Flow.targeted);
  (* The trip point is recorded in telemetry. *)
  let tripped_counters =
    List.filter
      (fun (k, _) -> String.length k > 15 && String.sub k 0 15 = "budget.tripped.")
      (counters_alist r.Core.Pipeline.metrics)
  in
  Alcotest.(check bool) "budget.tripped.<phase> counter" true
    (List.length tripped_counters = 1)

let test_flow_degraded_aborts_are_sound () =
  (* A tiny backtrack ceiling forces aborted faults on s298; every aborted
     fault must still be listed undetected (degradation never fabricates a
     detection), and the flow must terminate. *)
  let cfg, sk, model = flow_setup ~jobs:1 "s298" in
  let budget = Budget.create ~max_backtracks:1 () in
  let s = Core.Flow.generate ~budget cfg sk model in
  let undet = Array.to_list s.Core.Flow.undetected in
  Array.iter
    (fun fid ->
      Alcotest.(check bool) "aborted fault is undetected" true
        (List.mem fid undet))
    s.Core.Flow.aborted_faults;
  Alcotest.(check bool) "accounting holds" true
    (s.Core.Flow.detected + Array.length s.Core.Flow.undetected
     = s.Core.Flow.targeted)

(* -------------------------------------- parallel-domain failure handling *)

exception Poison of int

let test_faultsim_worker_failure_propagates () =
  (* s5378 (quick) has thousands of faults, so the session spans several
     repack blocks; poisoning block 1 kills a spawned worker domain at
     jobs=3.  The error must surface on the calling domain (after every
     domain was joined) instead of hanging or vanishing. *)
  let c = Circuits.Catalog.circuit "s5378" in
  let scan = Scanins.Scan.insert c in
  let model = Faultmodel.Model.build scan.Scanins.Scan.circuit in
  let nf = Faultmodel.Model.fault_count model in
  Alcotest.(check bool) "enough faults for two blocks" true (nf > 496);
  let width =
    Array.length (Netlist.Circuit.inputs scan.Scanins.Scan.circuit)
  in
  let seq = Array.init 3 (fun _ -> Array.make width L.Zero) in
  let run () =
    let s =
      Faultsim.create ~jobs:3 model ~fault_ids:(Array.init nf Fun.id)
    in
    Faultsim.advance s seq
  in
  Faultsim.set_block_hook (fun bid -> if bid = 1 then raise (Poison bid));
  Fun.protect
    ~finally:(fun () -> Faultsim.clear_block_hook ())
    (fun () ->
      match run () with
      | () -> Alcotest.fail "poisoned worker error was swallowed"
      | exception Poison 1 -> ());
  (* With the hook cleared the same session runs normally. *)
  run ()

let test_faultsim_sequential_failure_propagates () =
  let cfg, _, model = flow_setup ~jobs:1 "s27" in
  ignore cfg;
  let nf = Faultmodel.Model.fault_count model in
  let width =
    Array.length (Netlist.Circuit.inputs model.Faultmodel.Model.circuit)
  in
  let seq = [| Array.make width L.Zero |] in
  Faultsim.set_block_hook (fun bid -> if bid = 0 then raise (Poison bid));
  Fun.protect
    ~finally:(fun () -> Faultsim.clear_block_hook ())
    (fun () ->
      let s = Faultsim.create ~jobs:1 model ~fault_ids:(Array.init nf Fun.id) in
      match Faultsim.advance s seq with
      | () -> Alcotest.fail "poisoned block error was swallowed"
      | exception Poison 0 -> ())

(* ----------------------------------------------------------------- run *)

let () =
  Alcotest.run "resilience"
    [
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "backtrack ceiling" `Quick test_budget_backtracks;
          Alcotest.test_case "zero deadline" `Quick test_budget_deadline_zero;
          Alcotest.test_case "trip is sticky" `Quick test_budget_trip_sticky;
        ] );
      ( "fileio",
        [
          Alcotest.test_case "atomic write" `Quick test_fileio_atomic_write;
          Alcotest.test_case "failed write keeps old file" `Quick
            test_fileio_failed_write_keeps_old;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_checkpoint_corrupt;
          Alcotest.test_case "fingerprint parts" `Quick
            test_checkpoint_fingerprint_parts;
        ] );
      ( "resume",
        [
          Alcotest.test_case "flow cursors s27 jobs=1" `Quick
            (flow_resume_determinism ~jobs:1 "s27");
          Alcotest.test_case "flow cursors s27 jobs=3" `Quick
            (flow_resume_determinism ~jobs:3 "s27");
          Alcotest.test_case "pipeline boundaries s27 jobs=1" `Quick
            (pipeline_resume_determinism ~jobs:1 "s27");
          Alcotest.test_case "pipeline boundaries s27 jobs=3" `Quick
            (pipeline_resume_determinism ~jobs:3 "s27");
          Alcotest.test_case "fingerprint mismatch rejected" `Quick
            test_pipeline_resume_wrong_fingerprint;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "pipeline under zero deadline" `Quick
            test_pipeline_degraded_deadline;
          Alcotest.test_case "flow abort soundness" `Quick
            test_flow_degraded_aborts_are_sound;
        ] );
      ( "domains",
        [
          Alcotest.test_case "worker failure propagates (jobs=3)" `Quick
            test_faultsim_worker_failure_propagates;
          Alcotest.test_case "sequential failure propagates" `Quick
            test_faultsim_sequential_failure_propagates;
        ] );
    ]
