(* Unit tests for the obs telemetry library: clock monotonicity, counter
   and histogram merge semantics, span nesting, and the metrics document's
   JSON serialization. *)

let test_clock_monotonic () =
  let t0 = Obs.Clock.now_ns () in
  let acc = ref 0 in
  for i = 1 to 1000 do
    acc := !acc + i
  done;
  ignore !acc;
  let dt = Obs.Clock.elapsed_ns t0 in
  Alcotest.(check bool) "elapsed non-negative" true (dt >= 0);
  Alcotest.(check bool) "never jumps back" true
    (Obs.Clock.now_ns () >= t0);
  Alcotest.(check (float 1e-9)) "to_s" 1.5 (Obs.Clock.to_s 1_500_000_000)

let test_counters () =
  let c = Obs.Counters.create () in
  Alcotest.(check int) "absent reads 0" 0 (Obs.Counters.get c "x");
  Obs.Counters.add c "x" 3;
  Obs.Counters.add c "x" 4;
  Obs.Counters.add c "a" 1;
  Alcotest.(check int) "accumulates" 7 (Obs.Counters.get c "x");
  Alcotest.(check (list (pair string int)))
    "to_alist sorted by name"
    [ "a", 1; "x", 7 ]
    (Obs.Counters.to_alist c)

let test_counters_merge () =
  let a = Obs.Counters.create () and b = Obs.Counters.create () in
  Obs.Counters.add a "x" 2;
  Obs.Counters.add b "x" 5;
  Obs.Counters.add b "y" 1;
  Obs.Counters.merge_into ~src:b ~dst:a;
  Alcotest.(check (list (pair string int)))
    "merge adds name-wise"
    [ "x", 7; "y", 1 ]
    (Obs.Counters.to_alist a);
  (* src untouched *)
  Alcotest.(check int) "src unchanged" 5 (Obs.Counters.get b "x")

let test_hist_buckets () =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.observe h) [ 0; 1; 2; 3; 4; 100 ];
  Alcotest.(check int) "count" 6 (Obs.Hist.count h);
  Alcotest.(check int) "sum" 110 (Obs.Hist.sum h);
  (* 0 -> bucket 0; 1 -> [1,1]; 2,3 -> [2,3]; 4 -> [4,7]; 100 -> [64,127] *)
  Alcotest.(check (list (pair int int)))
    "power-of-two buckets"
    [ 0, 1; 1, 1; 3, 2; 7, 1; 127, 1 ]
    (Obs.Hist.buckets h)

let test_hist_merge_order_independent () =
  let obs = [ 5; 0; 17; 17; 1; 300; 2 ] in
  let one = Obs.Hist.create () in
  List.iter (Obs.Hist.observe one) obs;
  let merged = Obs.Hist.create () in
  List.iter
    (fun v ->
      let part = Obs.Hist.create () in
      Obs.Hist.observe part v;
      Obs.Hist.merge_into ~src:part ~dst:merged)
    (List.rev obs);
  Alcotest.(check (list (pair int int)))
    "merge of singletons = direct observation"
    (Obs.Hist.buckets one) (Obs.Hist.buckets merged);
  Alcotest.(check int) "sum preserved" (Obs.Hist.sum one) (Obs.Hist.sum merged)

let test_hist_percentile () =
  let h = Obs.Hist.create () in
  Alcotest.(check int) "empty is 0" 0 (Obs.Hist.percentile h 0.5);
  List.iter (Obs.Hist.observe h) [ 1; 1; 1; 1; 2; 2; 4; 8; 100; 1000 ];
  (* rank ceil(0.5*10)=5 lands in bucket [2,3] -> upper bound 3 *)
  Alcotest.(check int) "p50" 3 (Obs.Hist.percentile h 0.5);
  (* rank 9 is the 100 observation, bucket [64,127] *)
  Alcotest.(check int) "p90" 127 (Obs.Hist.percentile h 0.9);
  (* rank 10 is the 1000 observation, bucket [512,1023] *)
  Alcotest.(check int) "p99" 1023 (Obs.Hist.percentile h 0.99);
  Alcotest.(check int) "q clamped low = min bucket" 1 (Obs.Hist.percentile h (-1.0));
  Alcotest.(check int) "q clamped high = max bucket" 1023 (Obs.Hist.percentile h 2.0);
  let z = Obs.Hist.create () in
  Obs.Hist.observe z 0;
  Alcotest.(check int) "all-zero observations" 0 (Obs.Hist.percentile z 0.99)

(* The documented error bound: the reported percentile is an upper bound
   on the true order statistic, within its power-of-two bucket — i.e.
   true <= reported <= 2*true - 1 for true >= 1 (exact for 0). *)
let prop_hist_percentile_bound =
  QCheck2.Test.make ~count:300 ~name:"hist percentile within bucket width"
    QCheck2.Gen.(list_size (int_range 1 50) (int_bound 1_000_000))
    (fun values ->
      let h = Obs.Hist.create () in
      List.iter (Obs.Hist.observe h) values;
      let sorted = List.sort compare values in
      let n = List.length values in
      List.for_all
        (fun q ->
          let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
          let true_v = List.nth sorted (rank - 1) in
          let r = Obs.Hist.percentile h q in
          if true_v = 0 then r = 0 else true_v <= r && r <= (2 * true_v) - 1)
        [ 0.5; 0.9; 0.99 ])

let test_trace_null_sink () =
  Alcotest.(check bool) "null disabled" false (Obs.Trace.enabled Obs.Trace.null);
  let r = Obs.Trace.with_span Obs.Trace.null "k" (fun () -> 41 + 1) in
  Alcotest.(check int) "null with_span is the thunk" 42 r;
  Alcotest.(check int) "null records nothing" 0
    (List.length (Obs.Trace.spans Obs.Trace.null))

let test_trace_nesting () =
  let t = Obs.Trace.create () in
  Alcotest.(check bool) "live enabled" true (Obs.Trace.enabled t);
  let r =
    Obs.Trace.with_span t "outer" (fun () ->
        let a = Obs.Trace.with_span t "inner1" (fun () -> 1) in
        let b = Obs.Trace.with_span t "inner2" (fun () -> 2) in
        a + b)
  in
  Alcotest.(check int) "result threaded" 3 r;
  let spans = Obs.Trace.spans t in
  Alcotest.(check (list string)) "completion order"
    [ "inner1"; "inner2"; "outer" ]
    (List.map (fun s -> s.Obs.Trace.name) spans);
  let find n = List.find (fun s -> s.Obs.Trace.name = n) spans in
  let outer = find "outer" in
  Alcotest.(check int) "outer at top level" 0 outer.Obs.Trace.parent;
  List.iter
    (fun n ->
      let s = find n in
      Alcotest.(check int)
        (n ^ " nested under outer")
        outer.Obs.Trace.id s.Obs.Trace.parent;
      Alcotest.(check bool)
        (n ^ " inside outer interval")
        true
        (s.Obs.Trace.start_ns >= outer.Obs.Trace.start_ns
        && s.Obs.Trace.stop_ns <= outer.Obs.Trace.stop_ns))
    [ "inner1"; "inner2" ]

let test_trace_closes_on_raise () =
  let t = Obs.Trace.create () in
  (try Obs.Trace.with_span t "boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  match Obs.Trace.spans t with
  | [ s ] ->
    Alcotest.(check string) "span recorded despite raise" "boom"
      s.Obs.Trace.name;
    Alcotest.(check bool) "closed" true (s.Obs.Trace.stop_ns >= s.Obs.Trace.start_ns)
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let test_trace_merge () =
  let mk names =
    let t = Obs.Trace.create () in
    List.iter (fun n -> Obs.Trace.with_span t n (fun () -> ())) names;
    t
  in
  let dst = Obs.Trace.create () in
  Obs.Trace.with_span dst "root" (fun () -> ());
  let src = mk [ "a"; "b" ] in
  Obs.Trace.merge_into ~src ~parent:1 ~dst ();
  let spans = Obs.Trace.spans dst in
  Alcotest.(check (list string)) "appended in order" [ "root"; "a"; "b" ]
    (List.map (fun s -> s.Obs.Trace.name) spans);
  let find n = List.find (fun s -> s.Obs.Trace.name = n) spans in
  Alcotest.(check int) "ids offset past dst" 2 (find "a").Obs.Trace.id;
  Alcotest.(check int) "reparented under root" 1 (find "a").Obs.Trace.parent;
  Alcotest.(check int) "src untouched" 2 (List.length (Obs.Trace.spans src));
  (* a second merge of another collector lands in fresh id space *)
  Obs.Trace.merge_into ~src:(mk [ "c" ]) ~dst ();
  Alcotest.(check int) "second merge offset" 4
    (List.find (fun s -> s.Obs.Trace.name = "c") (Obs.Trace.spans dst)).Obs.Trace.id;
  (* null endpoints are no-ops *)
  Obs.Trace.merge_into ~src:Obs.Trace.null ~dst ();
  Obs.Trace.merge_into ~src ~dst:Obs.Trace.null ();
  Alcotest.(check int) "null merges change nothing" 4
    (List.length (Obs.Trace.spans dst))

let test_trace_chrome_export () =
  let t = Obs.Trace.create () in
  Obs.Trace.with_span t "outer \"quoted\"" (fun () ->
      Obs.Trace.with_span t
        ~attrs:[ ("k\\ey", "line1\nline2") ]
        "inner\\slash"
        (fun () -> ()));
  let s = Obs.Trace.chrome_string t in
  (* The export must survive hostile span names: parse it back. *)
  match Obs.Json.parse s with
  | Obs.Json.Arr events ->
    Alcotest.(check int) "one event per span" 2 (List.length events);
    List.iter
      (fun e ->
        List.iter
          (fun field ->
            Alcotest.(check bool)
              (field ^ " present") true
              (Obs.Json.member field e <> None))
          [ "name"; "ph"; "ts"; "dur"; "pid"; "tid" ];
        Alcotest.(check (option string)) "complete event" (Some "X")
          (Option.bind (Obs.Json.member "ph" e) Obs.Json.get_str))
      events;
    let names =
      List.filter_map
        (fun e -> Option.bind (Obs.Json.member "name" e) Obs.Json.get_str)
        events
    in
    Alcotest.(check bool) "escaped name roundtrips" true
      (List.mem "outer \"quoted\"" names && List.mem "inner\\slash" names);
    let attr =
      List.find_map
        (fun e ->
          Option.bind (Obs.Json.member "args" e) (Obs.Json.member "k\\ey"))
        events
    in
    Alcotest.(check bool) "attr value roundtrips" true
      (attr = Some (Obs.Json.Str "line1\nline2"))
  | _ -> Alcotest.fail "chrome export is not a JSON array"

let test_metrics_phases () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add_phase m "generate" 1.0;
  Obs.Metrics.add_phase m "restore" 0.5;
  Obs.Metrics.add_phase m "generate" 0.25;
  Alcotest.(check (list (pair string (float 1e-9))))
    "first-seen order, repeated names accumulate"
    [ "generate", 1.25; "restore", 0.5 ]
    (Obs.Metrics.phases m)

let test_metrics_timed () =
  let m = Obs.Metrics.create () in
  let trace = Obs.Trace.create () in
  let r = Obs.Metrics.timed m ~trace "work" (fun () -> 7) in
  Alcotest.(check int) "result" 7 r;
  (match Obs.Metrics.phases m with
  | [ ("work", s) ] -> Alcotest.(check bool) "duration >= 0" true (s >= 0.)
  | l -> Alcotest.failf "expected one phase, got %d" (List.length l));
  Alcotest.(check (list string)) "span emitted" [ "work" ]
    (List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.spans trace))

let test_metrics_merge () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.add_phase a "p" 1.0;
  Obs.Metrics.add_phase b "p" 2.0;
  Obs.Metrics.add_phase b "q" 3.0;
  Obs.Counters.add (Obs.Metrics.counters b) "c" 4;
  let h = Obs.Hist.create () in
  Obs.Hist.observe h 9;
  Obs.Metrics.add_hist b "h" h;
  Obs.Metrics.merge_into ~src:b ~dst:a;
  Alcotest.(check (list (pair string (float 1e-9))))
    "phases merged" [ "p", 3.0; "q", 3.0 ] (Obs.Metrics.phases a);
  Alcotest.(check int) "counters merged" 4
    (Obs.Counters.get (Obs.Metrics.counters a) "c");
  (match Obs.Metrics.hists a with
  | [ ("h", h') ] -> Alcotest.(check int) "hist merged" 9 (Obs.Hist.sum h')
  | l -> Alcotest.failf "expected one hist, got %d" (List.length l))

let test_metrics_json () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add_phase m "gen\"erate" 0.125;
  Obs.Counters.add (Obs.Metrics.counters m) "sim.frames" 64;
  let j = Obs.Metrics.to_json m in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length j && (String.sub j i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "schema tag" true (has "\"scanatpg-metrics/1\"");
  Alcotest.(check bool) "escaped phase name" true (has "gen\\\"erate");
  Alcotest.(check bool) "counter present" true (has "\"sim.frames\": 64")

let test_metrics_observe_and_percentiles () =
  let m = Obs.Metrics.create () in
  List.iter (Obs.Metrics.observe m "lat") [ 1; 2; 4; 8; 100 ];
  (match Obs.Metrics.hists m with
  | [ ("lat", h) ] -> Alcotest.(check int) "observe creates and fills" 5 (Obs.Hist.count h)
  | l -> Alcotest.failf "expected one hist, got %d" (List.length l));
  let j = Obs.Json.parse (Obs.Metrics.to_json m) in
  let lat = Option.bind (Obs.Json.member "histograms" j) (Obs.Json.member "lat") in
  let field name =
    Option.bind (Option.bind lat (Obs.Json.member name)) Obs.Json.get_int
  in
  Alcotest.(check (option int)) "p50 in document" (Some 7) (field "p50");
  Alcotest.(check (option int)) "p99 in document" (Some 127) (field "p99")

(* Every exposition line must be a bare [name{labels} value] sample —
   the same lint bin/check.sh applies with grep. *)
let test_metrics_prometheus () =
  let m = Obs.Metrics.create () in
  Obs.Counters.add (Obs.Metrics.counters m) "weird\"name\\x" 3;
  Obs.Metrics.add_phase m "generate" 0.25;
  List.iter (Obs.Metrics.observe m "server.e2e_ns") [ 5; 9; 1000 ];
  let text = Obs.Metrics.to_prometheus m in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check bool) "ends with newline" true
    (match List.rev lines with "" :: _ -> true | _ -> false);
  let samples = List.filter (fun l -> l <> "") lines in
  Alcotest.(check bool) "non-empty" true (samples <> []);
  List.iter
    (fun line ->
      let sp =
        (* exactly one separating space: label values are escaped, so no
           raw space can appear before the value *)
        match String.rindex_opt line ' ' with
        | Some i -> i
        | None -> Alcotest.failf "no value separator in %S" line
      in
      let metric = String.sub line 0 sp in
      let value = String.sub line (sp + 1) (String.length line - sp - 1) in
      Alcotest.(check bool)
        (Printf.sprintf "value parses in %S" line)
        true
        (float_of_string_opt value <> None);
      let name_end =
        match String.index_opt metric '{' with
        | Some i -> i
        | None -> String.length metric
      in
      Alcotest.(check bool)
        (Printf.sprintf "metric name [a-z_] in %S" line)
        true
        (name_end > 0
        && String.for_all
             (fun c -> (c >= 'a' && c <= 'z') || c = '_')
             (String.sub metric 0 name_end));
      if name_end < String.length metric then
        Alcotest.(check bool)
          (Printf.sprintf "labels close in %S" line)
          true
          (metric.[String.length metric - 1] = '}'))
    samples;
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length text && (String.sub text i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "label escaping" true
    (has "scanatpg_counter{name=\"weird\\\"name\\\\x\"} 3");
  Alcotest.(check bool) "+Inf bucket" true (has "le=\"+Inf\"} 3");
  Alcotest.(check bool) "quantile samples" true
    (has "scanatpg_hist{name=\"server.e2e_ns\",quantile=\"0.99\"}")

let test_files () =
  let dir = Filename.temp_file "obs" "" in
  Sys.remove dir;
  let mpath = dir ^ ".json" and tpath = dir ^ ".jsonl" in
  let m = Obs.Metrics.create () in
  Obs.Metrics.add_phase m "p" 0.5;
  Obs.Metrics.write_file m mpath;
  let t = Obs.Trace.create () in
  ignore (Obs.Trace.with_span t "a" (fun () -> ()));
  ignore (Obs.Trace.with_span t "b" (fun () -> ()));
  Obs.Trace.write_jsonl t tpath;
  let lines path =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  Alcotest.(check bool) "metrics file non-empty" true (lines mpath <> []);
  Alcotest.(check int) "one jsonl line per span" 2 (List.length (lines tpath));
  Sys.remove mpath;
  Sys.remove tpath

(* ------------------------------------------------------------- json *)

let test_json_escape_control_chars () =
  (* Every control character must leave as an escape, never raw. *)
  for c = 0 to 0x1F do
    let s = Printf.sprintf "a%cb" (Char.chr c) in
    let e = Obs.Json.escape s in
    Alcotest.(check bool)
      (Printf.sprintf "U+%04x escaped" c)
      true
      (String.for_all (fun ch -> Char.code ch >= 0x20) e)
  done;
  Alcotest.(check string) "quote" "\"a\\u0000b\"" (Obs.Json.quote "a\000b")

let test_json_float_rejects_non_finite () =
  List.iter
    (fun f ->
      match Obs.Json.float f with
      | _ -> Alcotest.failf "accepted %f" f
      | exception Obs.Json.Non_finite _ -> ())
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  Alcotest.(check string) "finite ok" "1.5" (Obs.Json.float 1.5);
  (match Obs.Json.to_string (Obs.Json.Float Float.nan) with
   | _ -> Alcotest.fail "to_string accepted NaN"
   | exception Obs.Json.Non_finite _ -> ())

let test_json_parse_basics () =
  let open Obs.Json in
  Alcotest.(check bool) "null" true (parse "null" = Null);
  Alcotest.(check bool) "int" true (parse " -42 " = Int (-42));
  Alcotest.(check bool) "float" true (parse "2.5e1" = Float 25.0);
  Alcotest.(check bool) "nested" true
    (parse "{\"a\":[1,true,\"x\"],\"b\":{}}"
     = Obj [ "a", Arr [ Int 1; Bool true; Str "x" ]; "b", Obj [] ]);
  Alcotest.(check bool) "unicode escape" true
    (parse "\"\\u0041\\u00e9\"" = Str "A\xc3\xa9");
  List.iter
    (fun bad ->
      match parse bad with
      | _ -> Alcotest.failf "accepted %S" bad
      | exception Parse_error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\"}"; "nul"; "1 2"; "\"\n\""; "\"unterminated" ]

(* QCheck: every generated document survives an emit/parse roundtrip.
   Floats are drawn from finite doubles only (non-finite ones are the
   typed-error case tested above); 17-digit emission makes them exact. *)
let json_value_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [ return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) int;
        map
          (fun f ->
            Obs.Json.Float (if Float.is_finite f then f else 0.5))
          float;
        map (fun s -> Obs.Json.Str s) string ]
  in
  sized (fun size ->
      fix
        (fun self size ->
          if size <= 0 then scalar
          else
            frequency
              [ 3, scalar;
                1,
                map (fun xs -> Obs.Json.Arr xs)
                  (list_size (int_bound 4) (self (size / 2)));
                1,
                map (fun fields -> Obs.Json.Obj fields)
                  (list_size (int_bound 4)
                     (pair (small_string ?gen:None) (self (size / 2)))) ])
        (min size 12))

let prop_json_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"json emit/parse roundtrip"
    json_value_gen (fun v ->
      Obs.Json.parse (Obs.Json.to_string v) = v)

let prop_json_string_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"json string escape roundtrip"
    QCheck2.Gen.string (fun s ->
      (* arbitrary bytes, including control characters and quotes *)
      Obs.Json.parse (Obs.Json.quote s) = Obs.Json.Str s)

let () =
  Alcotest.run "obs"
    [
      ( "clock", [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "counters",
        [ Alcotest.test_case "add/get/to_alist" `Quick test_counters;
          Alcotest.test_case "merge" `Quick test_counters_merge ] );
      ( "hist",
        [ Alcotest.test_case "buckets" `Quick test_hist_buckets;
          Alcotest.test_case "merge order-independent" `Quick
            test_hist_merge_order_independent;
          Alcotest.test_case "percentile" `Quick test_hist_percentile;
          QCheck_alcotest.to_alcotest prop_hist_percentile_bound ] );
      ( "trace",
        [ Alcotest.test_case "null sink" `Quick test_trace_null_sink;
          Alcotest.test_case "nesting" `Quick test_trace_nesting;
          Alcotest.test_case "closes on raise" `Quick test_trace_closes_on_raise;
          Alcotest.test_case "merge" `Quick test_trace_merge;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_export
        ] );
      ( "metrics",
        [ Alcotest.test_case "phase accumulation" `Quick test_metrics_phases;
          Alcotest.test_case "timed" `Quick test_metrics_timed;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
          Alcotest.test_case "json" `Quick test_metrics_json;
          Alcotest.test_case "observe and percentiles" `Quick
            test_metrics_observe_and_percentiles;
          Alcotest.test_case "prometheus exposition" `Quick
            test_metrics_prometheus;
          Alcotest.test_case "file output" `Quick test_files ] );
      ( "json",
        [ Alcotest.test_case "control chars escaped" `Quick
            test_json_escape_control_chars;
          Alcotest.test_case "non-finite floats rejected" `Quick
            test_json_float_rejects_non_finite;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_string_roundtrip ] );
    ]
