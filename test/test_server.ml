(* Service daemon: framing, request parsing, cache determinism, admission
   control and graceful drain (DESIGN.md #11). *)

module P = Server.Protocol
module J = Obs.Json

(* ------------------------------------------------------------- framing *)

let test_decoder_split_reads () =
  let payload = {|{"id":1,"op":"ping"}|} in
  let frame = P.encode_frame payload in
  let d = P.decoder () in
  (* one byte at a time: the frame must reassemble exactly once *)
  String.iteri
    (fun i c ->
      Alcotest.(check (option string))
        (Printf.sprintf "no frame before byte %d" i)
        None (P.next d);
      P.feed d (Bytes.make 1 c) 0 1)
    frame;
  Alcotest.(check (option string)) "frame complete" (Some payload) (P.next d);
  Alcotest.(check (option string)) "buffer drained" None (P.next d)

let test_decoder_coalesced_frames () =
  (* several frames arriving in one read must all pop, in order *)
  let payloads = [ "a"; {|{"op":"stats"}|}; ""; String.make 5000 'x' ] in
  let blob = String.concat "" (List.map P.encode_frame payloads) in
  let d = P.decoder () in
  P.feed d (Bytes.of_string blob) 0 (String.length blob);
  List.iter
    (fun p -> Alcotest.(check (option string)) "frame" (Some p) (P.next d))
    payloads;
  Alcotest.(check (option string)) "drained" None (P.next d)

let test_decoder_oversized_frame () =
  let d = P.decoder ~max_frame:64 () in
  (* announce 65 bytes: must raise on the header alone, before any payload *)
  let hdr = Bytes.of_string "\x00\x00\x00\x41" in
  P.feed d hdr 0 4;
  (match P.next d with
  | exception P.Frame_too_large { announced; max } ->
    Alcotest.(check int) "announced" 65 announced;
    Alcotest.(check int) "max" 64 max
  | _ -> Alcotest.fail "expected Frame_too_large");
  (* exactly at the limit is fine *)
  let d = P.decoder ~max_frame:64 () in
  let p = String.make 64 'y' in
  let f = P.encode_frame p in
  P.feed d (Bytes.of_string f) 0 (String.length f);
  Alcotest.(check (option string)) "at limit ok" (Some p) (P.next d)

let test_read_frame_exact () =
  (* Regression: two frames written back-to-back arrive in one kernel
     segment; read_frame must not consume bytes past the first frame
     (an over-reading implementation silently drops the second). *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let p1 = {|{"id":1}|} and p2 = {|{"id":2,"pad":"zzzz"}|} in
      let blob = P.encode_frame p1 ^ P.encode_frame p2 in
      let bl = Bytes.of_string blob in
      let n = Unix.write a bl 0 (Bytes.length bl) in
      Alcotest.(check int) "wrote blob" (Bytes.length bl) n;
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      Alcotest.(check (option string)) "frame 1" (Some p1) (P.read_frame b);
      Alcotest.(check (option string)) "frame 2" (Some p2) (P.read_frame b);
      Alcotest.(check (option string)) "clean EOF" None (P.read_frame b))

let test_read_frame_truncated () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let frame = P.encode_frame "hello" in
      let cut = String.length frame - 2 in
      let n = Unix.write_substring a frame 0 cut in
      Alcotest.(check int) "wrote partial" cut n;
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match P.read_frame b with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected mid-frame EOF failure")

let test_decoder_pending () =
  (* [pending] exposes the bytes stuck beyond the last complete frame —
     what the daemon checks at EOF to tell a clean hangup from a death
     mid-frame *)
  let d = P.decoder () in
  Alcotest.(check int) "empty" 0 (P.pending d);
  let frame = P.encode_frame "hello" in
  let cut = String.length frame - 2 in
  P.feed d (Bytes.of_string frame) 0 cut;
  Alcotest.(check (option string)) "incomplete" None (P.next d);
  Alcotest.(check int) "partial bytes pending" cut (P.pending d);
  P.feed d (Bytes.of_string frame) cut 2;
  Alcotest.(check (option string)) "completes" (Some "hello") (P.next d);
  Alcotest.(check int) "drained" 0 (P.pending d)

let test_frame_io_under_signals () =
  (* a 1 MiB frame through a socketpair while SIGALRM fires every 2ms:
     write_frame/read_frame must absorb EINTR and short writes/reads and
     deliver the frame intact *)
  let prev = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let timer v = { Unix.it_interval = v; it_value = v } in
  ignore (Unix.setitimer Unix.ITIMER_REAL (timer 0.002));
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL (timer 0.0));
      ignore (Sys.signal Sys.sigalrm prev))
    (fun () ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close a with Unix.Unix_error _ -> ());
          try Unix.close b with Unix.Unix_error _ -> ())
        (fun () ->
          let payload =
            String.init (1 lsl 20) (fun i ->
                Char.chr (((i * 131) + (i lsr 8)) land 0xFF))
          in
          (* the writer outpaces a reader that drains slowly, forcing
             short writes on the way *)
          let writer =
            Domain.spawn (fun () ->
                P.write_frame a payload;
                try Unix.shutdown a Unix.SHUTDOWN_SEND
                with Unix.Unix_error _ -> ())
          in
          let got = P.read_frame b in
          Domain.join writer;
          match got with
          | Some p ->
            Alcotest.(check bool) "1 MiB frame intact" true (p = payload)
          | None -> Alcotest.fail "no frame received"))

(* ----------------------------------------------------------- requests *)

let test_request_parsing () =
  let r = P.request_of_string {|{"id":7,"op":"generate","circuit":"s27"}|} in
  Alcotest.(check int) "id" 7 r.P.id;
  (match r.P.op with
  | P.Generate { c; compact; return_sequence } ->
    Alcotest.(check bool) "compact default" true compact;
    Alcotest.(check bool) "sequence default" true return_sequence;
    Alcotest.(check int) "chains default" 1 c.P.chains;
    (match c.P.src with
    | P.Catalog name -> Alcotest.(check string) "name" "s27" name
    | P.Bench _ -> Alcotest.fail "expected catalog source")
  | _ -> Alcotest.fail "expected generate");
  let r = P.request_of_string {|{"op":"ping"}|} in
  Alcotest.(check int) "missing id defaults to 0" 0 r.P.id;
  let bad s =
    match P.request_of_string s with
    | exception P.Bad_request _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "expected Bad_request for %s" s)
  in
  bad {|not json|};
  bad {|{"id":1}|};
  bad {|{"op":"frobnicate"}|};
  bad {|{"op":"generate"}|};
  bad {|{"op":"generate","circuit":"s27","bench":"INPUT(a)"}|};
  bad {|{"op":"compact","circuit":"s27"}|};
  bad {|{"op":"generate","circuit":"s27","scale":"huge"}|}

(* ------------------------------------------------- service determinism *)

let compile_phase_s svc =
  let m = Server.Service.metrics_snapshot svc in
  match List.assoc_opt "server.compile" (Obs.Metrics.phases m) with
  | Some s -> s
  | None -> Alcotest.fail "server.compile phase missing"

let counter svc name =
  let m = Server.Service.metrics_snapshot svc in
  Obs.Counters.get (Obs.Metrics.counters m) name

let test_cache_hit_determinism () =
  let svc = Server.Service.create ~cache_capacity:4 () in
  let req =
    P.request_of_string {|{"id":5,"op":"generate","circuit":"s27","seed":42}|}
  in
  let p1, m1 =
    Server.Service.execute svc ~budget:(Obs.Budget.create ()) req
  in
  Alcotest.(check string) "cold miss" "miss" m1.Server.Service.cache;
  Alcotest.(check int) "one miss" 1 (counter svc "server.cache_miss");
  let compile_cold = compile_phase_s svc in
  let p2, m2 =
    Server.Service.execute svc ~budget:(Obs.Budget.create ()) req
  in
  Alcotest.(check string) "warm hit" "hit" m2.Server.Service.cache;
  Alcotest.(check int) "one hit" 1 (counter svc "server.cache_hit");
  Alcotest.(check string) "byte-identical response" p1 p2;
  (* the warm request must not recompile: the compile phase timer is
     untouched by the second execution *)
  Alcotest.(check (float 0.0)) "no recompile" compile_cold (compile_phase_s svc);
  (* both were ok and report the same circuit *)
  Alcotest.(check string) "status" "ok" m2.Server.Service.status;
  match J.member "status" (J.parse p1) with
  | Some (J.Str s) -> Alcotest.(check string) "payload status" "ok" s
  | _ -> Alcotest.fail "payload has no status"

let test_cache_eviction () =
  let cache = Server.Cache.create ~capacity:2 in
  let compiled_stub key =
    (* eviction only exercises the LRU list, never the payload *)
    ignore key;
    let c = Circuits.Catalog.circuit ~scale:Circuits.Profiles.Quick "s27" in
    let scan = Scanins.Scan.insert c in
    {
      Server.Cache.circuit = c;
      scan;
      model = Faultmodel.Model.build scan.Scanins.Scan.circuit;
      sk = Atpg.Scan_knowledge.create scan;
    }
  in
  let compiles = ref 0 in
  let get key =
    snd
      (Server.Cache.find_or_compile cache ~key ~compile:(fun () ->
           incr compiles;
           compiled_stub key))
  in
  Alcotest.(check bool) "a miss" true (get "a" = `Miss);
  Alcotest.(check bool) "b miss" true (get "b" = `Miss);
  Alcotest.(check bool) "a hit" true (get "a" = `Hit);
  Alcotest.(check bool) "c miss evicts b" true (get "c" = `Miss);
  Alcotest.(check bool) "b evicted" true (get "b" = `Miss);
  Alcotest.(check int) "length capped" 2 (Server.Cache.length cache);
  Alcotest.(check int) "compile count" 4 !compiles

let test_bad_requests_are_typed () =
  let svc = Server.Service.create () in
  let run s =
    let payload, meta =
      Server.Service.execute svc ~budget:(Obs.Budget.create ())
        (P.request_of_string s)
    in
    (payload, meta.Server.Service.status)
  in
  let payload, status = run {|{"id":3,"op":"generate","circuit":"nosuch"}|} in
  Alcotest.(check string) "unknown circuit is an error" "error" status;
  (match J.member "id" (J.parse payload) with
  | Some (J.Int id) -> Alcotest.(check int) "error echoes id" 3 id
  | _ -> Alcotest.fail "error payload has no id");
  let _, status =
    run {|{"id":4,"op":"generate","bench":"this is not a netlist"}|}
  in
  Alcotest.(check string) "bench parse error is an error" "error" status;
  let _, status = run {|{"id":5,"op":"table","bench":"INPUT(a)"}|} in
  Alcotest.(check string) "table over bench is an error" "error" status;
  Alcotest.(check int) "typed errors counted" 3
    (counter svc "server.bad_request")

(* -------------------------------------------------------------- daemon *)

let temp_sock () =
  let path = Filename.temp_file "scanatpg_srv" ".sock" in
  (* listen_socket unlinks and rebinds the path *)
  path

let with_daemon ?(jobs = 1) ?(queue_depth = 8) ?access_log ?slow_ms
    ?(drain_grace_s = 10.0) f =
  let sock = temp_sock () in
  let addr = Server.Daemon.Unix_sock sock in
  let cfg =
    {
      (Server.Daemon.default_config addr) with
      Server.Daemon.jobs;
      queue_depth;
      access_log;
      slow_ms;
      drain_grace_s;
      install_signals = false;
      verbose = false;
    }
  in
  let d = Domain.spawn (fun () -> Server.Daemon.run cfg) in
  let rec wait_up n =
    if n > 250 then Alcotest.fail "daemon did not come up"
    else
      match Server.Client.connect addr with
      | c -> Server.Client.close c
      | exception Unix.Unix_error _ ->
        Unix.sleepf 0.02;
        wait_up (n + 1)
  in
  wait_up 0;
  let result =
    try f addr
    with e ->
      (* drain the daemon even on test failure so the domain joins *)
      (try
         let c = Server.Client.connect addr in
         ignore (Server.Client.call c {|{"id":9999,"op":"shutdown"}|});
         Server.Client.close c
       with _ -> ());
      ignore (Domain.join d);
      raise e
  in
  let c = Server.Client.connect addr in
  ignore (Server.Client.call c {|{"id":9999,"op":"shutdown"}|});
  Server.Client.close c;
  let code = Domain.join d in
  Alcotest.(check int) "daemon drained with exit 0" 0 code;
  result

let write_jsonl path lines =
  Obs.Fileio.write_string path (String.concat "\n" lines ^ "\n")

let batch addr lines =
  let input = Filename.temp_file "scanatpg_batch" ".jsonl" in
  let output = Filename.temp_file "scanatpg_batch" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove input with Sys_error _ -> ());
      try Sys.remove output with Sys_error _ -> ())
    (fun () ->
      write_jsonl input lines;
      let outcomes = Server.Client.run_batch ~addr ~input ~output () in
      List.map
        (fun o ->
          (o.Server.Client.status, Option.value ~default:"" o.Server.Client.payload))
        outcomes)

let gen_s27 = {|{"op":"generate","circuit":"s27","seed":77}|}

let test_daemon_roundtrip () =
  with_daemon (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let resp = Server.Client.call c {|{"id":1,"op":"ping"}|} in
          Alcotest.(check string) "ping" {|{"id":1,"op":"ping","status":"ok"}|}
            resp))

let test_daemon_jobs_determinism () =
  (* the same replay must produce byte-identical compute payloads whether
     the daemon runs one worker or two.  A stats request rides along: it
     snapshots live timing state, so it is the one op excluded from the
     byte-identity comparison (DESIGN.md §10). *)
  let lines =
    [ gen_s27; {|{"op":"stats"}|};
      {|{"op":"generate","circuit":"s298","seed":5}|}; gen_s27;
      {|{"op":"generate","circuit":"s27","seed":99,"compact_jobs":2}|} ]
  in
  let is_stats payload =
    match J.member "op" (J.parse payload) with
    | Some (J.Str "stats") -> true
    | _ -> false
  in
  let run jobs = with_daemon ~jobs (fun addr -> batch addr lines) in
  let r1 = run 1 and r2 = run 2 in
  Alcotest.(check int) "all answered (jobs 1)" (List.length lines)
    (List.length r1);
  List.iter
    (fun (status, _) -> Alcotest.(check string) "status ok" "ok" status)
    (r1 @ r2);
  let compute r = List.filter (fun (_, p) -> not (is_stats p)) r in
  let c1 = compute r1 and c2 = compute r2 in
  Alcotest.(check int) "stats filtered" (List.length lines - 1)
    (List.length c1);
  List.iter2
    (fun (_, p1) (_, p2) ->
      Alcotest.(check string) "payload identical across jobs" p1 p2)
    c1 c2

let test_daemon_bad_request_echoes_id () =
  (* A semantically invalid request (here: compact without "vectors")
     must be answered under the sender's id, or a pipelining client
     cannot correlate the failure and reports it lost. *)
  with_daemon (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let resp =
            Server.Client.call c {|{"id":7,"op":"compact","circuit":"s27"}|}
          in
          let j = J.parse resp in
          (match J.member "id" j with
          | Some (J.Int id) -> Alcotest.(check int) "echoes id" 7 id
          | _ -> Alcotest.fail "no id");
          match J.member "status" j with
          | Some (J.Str s) -> Alcotest.(check string) "typed error" "error" s
          | _ -> Alcotest.fail "no status"))

let test_daemon_admission_control () =
  (* queue depth 0: every compute request is answered overloaded, typed,
     while admin ops stay served *)
  with_daemon ~queue_depth:0 (fun addr ->
      let c = Server.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let resp = Server.Client.call c {|{"id":2,"op":"generate","circuit":"s27"}|} in
          let j = J.parse resp in
          (match J.member "status" j with
          | Some (J.Str s) -> Alcotest.(check string) "overloaded" "overloaded" s
          | _ -> Alcotest.fail "no status");
          (match J.member "id" j with
          | Some (J.Int id) -> Alcotest.(check int) "echoes id" 2 id
          | _ -> Alcotest.fail "no id");
          let stats = Server.Client.call c {|{"id":3,"op":"stats"}|} in
          match J.member "counters" (J.parse stats) with
          | Some counters -> (
            match J.member "server.rejected" counters with
            | Some (J.Int n) -> Alcotest.(check int) "rejected counted" 1 n
            | _ -> Alcotest.fail "server.rejected missing")
          | None -> Alcotest.fail "stats has no counters"))

let test_daemon_drain_access_log () =
  let log = Filename.temp_file "scanatpg_acc" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      let outcomes =
        with_daemon ~access_log:log (fun addr ->
            batch addr [ {|{"op":"ping"}|}; gen_s27 ])
      in
      List.iter
        (fun (status, _) -> Alcotest.(check string) "ok" "ok" status)
        outcomes;
      let ic = open_in log in
      let lines = ref [] in
      (try
         while true do
           let l = input_line ic in
           if String.trim l <> "" then lines := l :: !lines
         done
       with End_of_file -> close_in_noerr ic);
      (* ping + generate + the shutdown issued by with_daemon, plus the
         probe connections; every line must parse and carry the schema *)
      Alcotest.(check bool)
        (Printf.sprintf "at least 3 entries (got %d)" (List.length !lines))
        true
        (List.length !lines >= 3);
      List.iter
        (fun l ->
          let j = J.parse l in
          List.iter
            (fun field ->
              match J.member field j with
              | Some _ -> ()
              | None -> Alcotest.fail (Printf.sprintf "missing %s in %s" field l))
            [ "id"; "op"; "circuit"; "status"; "cache"; "peer"; "trace_id";
              "queue_wait_ns"; "service_ns"; "bytes_in"; "bytes_out" ])
        !lines)

let read_log path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let l = input_line ic in
       if String.trim l <> "" then lines := l :: !lines
     done
   with End_of_file -> close_in_noerr ic);
  List.rev_map J.parse !lines

(* Access-log entry for request [id], or fail. *)
let log_entry entries id =
  match
    List.find_opt
      (fun j -> match J.member "id" j with Some (J.Int i) -> i = id | _ -> false)
      entries
  with
  | Some j -> j
  | None -> Alcotest.failf "no access-log entry for id %d" id

let trace_id_of entry =
  match J.member "trace_id" entry with
  | Some (J.Str s) -> s
  | _ -> Alcotest.fail "entry has no trace_id"

let test_daemon_trace_ids () =
  (* trace ids are deterministic per connection: c<cid>-r<n> with n
     counting that connection's requests — unique across the daemon,
     stable under interleaving with other connections *)
  let log = Filename.temp_file "scanatpg_acc" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      with_daemon ~access_log:log (fun addr ->
          let a = Server.Client.connect addr in
          let b = Server.Client.connect addr in
          Fun.protect
            ~finally:(fun () ->
              Server.Client.close a;
              Server.Client.close b)
            (fun () ->
              ignore (Server.Client.call a {|{"id":101,"op":"ping"}|});
              ignore (Server.Client.call a {|{"id":102,"op":"ping"}|});
              ignore (Server.Client.call b {|{"id":201,"op":"ping"}|});
              ignore (Server.Client.call a {|{"id":103,"op":"ping"}|})));
      let entries = read_log log in
      let parse tid =
        try Scanf.sscanf tid "c%d-r%d%!" (fun c r -> (c, r))
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          Alcotest.failf "malformed trace id %S" tid
      in
      let id n = parse (trace_id_of (log_entry entries n)) in
      let c1, r1 = id 101 and c2, r2 = id 102 and c3, r3 = id 103 in
      let cb, rb = id 201 in
      Alcotest.(check int) "same connection, same cid" c1 c2;
      Alcotest.(check int) "same connection, same cid (3rd)" c1 c3;
      Alcotest.(check (list int)) "request counter increments" [ 1; 2; 3 ]
        [ r1; r2; r3 ];
      Alcotest.(check bool) "other connection has a distinct cid" true
        (cb <> c1);
      Alcotest.(check int) "other connection counts from 1" 1 rb;
      (* no slow threshold configured: no span trees in the log *)
      List.iter
        (fun e ->
          match J.member "spans" e with
          | None -> ()
          | Some _ -> Alcotest.fail "spans present without --slow-ms")
        entries)

let test_daemon_slow_request_logs_spans () =
  (* --slow-ms 0: every compute request is over threshold, so its access
     log line must carry the full span tree *)
  let log = Filename.temp_file "scanatpg_acc" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      with_daemon ~access_log:log ~slow_ms:0 (fun addr ->
          let outcomes =
            batch addr [ {|{"id":11,"op":"generate","circuit":"s27","seed":7}|} ]
          in
          List.iter
            (fun (status, _) -> Alcotest.(check string) "ok" "ok" status)
            outcomes);
      let entry = log_entry (read_log log) 11 in
      let spans =
        match J.member "spans" entry with
        | Some s -> s
        | None -> Alcotest.fail "slow request logged without spans"
      in
      (* the tree is rooted at the request span, op recorded in its attrs *)
      match spans with
      | J.Arr (root :: _) -> (
        (match J.member "name" root with
        | Some (J.Str n) -> Alcotest.(check string) "root span" "request" n
        | _ -> Alcotest.fail "root span has no name");
        match J.member "children" root with
        | Some (J.Arr (_ :: _)) -> ()
        | _ -> Alcotest.fail "request span has no child phases")
      | _ -> Alcotest.fail "spans is not a non-empty array")

let () =
  Alcotest.run "server"
    [
      ( "framing",
        [
          Alcotest.test_case "split reads" `Quick test_decoder_split_reads;
          Alcotest.test_case "coalesced frames" `Quick
            test_decoder_coalesced_frames;
          Alcotest.test_case "oversized frame" `Quick
            test_decoder_oversized_frame;
          Alcotest.test_case "read_frame exact" `Quick test_read_frame_exact;
          Alcotest.test_case "read_frame truncated" `Quick
            test_read_frame_truncated;
          Alcotest.test_case "decoder pending" `Quick test_decoder_pending;
          Alcotest.test_case "frame io under signals" `Quick
            test_frame_io_under_signals;
        ] );
      ( "requests",
        [ Alcotest.test_case "parsing" `Quick test_request_parsing ] );
      ( "service",
        [
          Alcotest.test_case "cache hit determinism" `Quick
            test_cache_hit_determinism;
          Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
          Alcotest.test_case "typed errors" `Quick test_bad_requests_are_typed;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "roundtrip" `Quick test_daemon_roundtrip;
          Alcotest.test_case "bad request echoes id" `Quick
            test_daemon_bad_request_echoes_id;
          Alcotest.test_case "jobs determinism" `Quick
            test_daemon_jobs_determinism;
          Alcotest.test_case "admission control" `Quick
            test_daemon_admission_control;
          Alcotest.test_case "drain access log" `Quick
            test_daemon_drain_access_log;
          Alcotest.test_case "trace ids per connection" `Quick
            test_daemon_trace_ids;
          Alcotest.test_case "slow request logs spans" `Quick
            test_daemon_slow_request_logs_spans;
        ] );
    ]
