(* Speculative domain-parallel compaction (DESIGN.md §10): omission and
   restoration must produce byte-identical sequences and jobs-invariant
   counters at any [compact_jobs] — including under a tripped budget and
   across a kill-and-resume checkpoint — with only the
   compaction.speculative.* dispatch counters reflecting the actual
   parallelism. *)

module C = Netlist.Circuit
module Model = Faultmodel.Model
module Vectors = Logicsim.Vectors
module Target = Compaction.Target
module Omission = Compaction.Omission
module Restoration = Compaction.Restoration
module Spec = Compaction.Spec
module Budget = Obs.Budget
module Checkpoint = Core.Checkpoint

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "scanatpg_spec_%d_%s" (Unix.getpid ()) name)

let s27_model () =
  Model.build (Scanins.Scan.insert (Circuits.Iscas.s27 ())).Scanins.Scan.circuit

let random_setup seed len =
  let m = s27_model () in
  let rng = Prng.Rng.create (Int64.of_int seed) in
  let seq =
    Vectors.random_seq rng ~width:(C.input_count m.Model.circuit) ~length:len
  in
  let ids = Array.init (Model.fault_count m) Fun.id in
  let targets = Target.compute m seq ~fault_ids:ids in
  m, seq, targets

let seq_to_string seq =
  String.concat "\n" (Array.to_list (Array.map Vectors.to_string seq))

let spec_invariant (s : Spec.counters) =
  s.Spec.dispatched = s.Spec.committed + s.Spec.discarded
  && s.Spec.revalidated <= s.Spec.committed

(* ------------------------------------------------------------- Spec.map *)

let test_spec_map_order () =
  let expected = Array.init 23 (fun k -> k * k) in
  Alcotest.(check (array int)) "jobs=1" expected (Spec.map ~jobs:1 23 (fun k -> k * k));
  Alcotest.(check (array int)) "jobs=3" expected (Spec.map ~jobs:3 23 (fun k -> k * k));
  Alcotest.(check (array int)) "jobs>n" expected (Spec.map ~jobs:64 23 (fun k -> k * k));
  Alcotest.(check (array int)) "empty" [||] (Spec.map ~jobs:3 0 (fun k -> k))

exception Poison of int

let test_spec_map_error () =
  (* A failing evaluation must surface on the calling domain after every
     worker was joined — at any jobs. *)
  List.iter
    (fun jobs ->
      match Spec.map ~jobs 8 (fun k -> if k = 5 then raise (Poison k) else k) with
      | _ -> Alcotest.failf "jobs=%d: poison swallowed" jobs
      | exception Poison 5 -> ())
    [ 1; 3 ]

(* ------------------------------------------------------------- omission *)

let run_omission ?budget ~jobs ?max_trials (m, seq, targets) =
  let cfg = { Omission.default_config with jobs; max_trials } in
  let spec = Spec.make () in
  let seq', targets', stats = Omission.run ?budget ~spec m seq targets cfg in
  seq', targets', stats, spec

let check_omission_invariant what ?budget_of ?max_trials setup =
  let budget () = Option.map (fun f -> f ()) budget_of in
  let s1, t1, st1, spec1 = run_omission ?budget:(budget ()) ~jobs:1 ?max_trials setup in
  let s3, t3, st3, spec3 = run_omission ?budget:(budget ()) ~jobs:3 ?max_trials setup in
  Alcotest.(check string) (what ^ ": sequence") (seq_to_string s1) (seq_to_string s3);
  Alcotest.(check (array int))
    (what ^ ": det times") t1.Target.det_times t3.Target.det_times;
  Alcotest.(check bool) (what ^ ": stats") true (st1 = st3);
  Alcotest.(check int) (what ^ ": no dispatch at jobs=1") 0 spec1.Spec.dispatched;
  Alcotest.(check bool) (what ^ ": spec invariant") true (spec_invariant spec3)

let test_omission_jobs_invariant () =
  check_omission_invariant "plain" (random_setup 11 180)

let test_omission_trial_budget_invariant () =
  check_omission_invariant "max_trials" ~max_trials:25 (random_setup 12 180)

let test_omission_tripped_budget_invariant () =
  (* A zero deadline trips at the first safe point on both sides; the
     degraded result must still be jobs-invariant. *)
  check_omission_invariant "tripped"
    ~budget_of:(fun () -> Budget.create ~deadline_s:0.0 ())
    (random_setup 13 180)

let test_omission_dispatches () =
  (* On a sequence long enough to form multi-trial rounds, jobs=3 must
     actually speculate. *)
  let _, _, _, spec = run_omission ~jobs:3 (random_setup 14 180) in
  Alcotest.(check bool) "dispatched > 0" true (spec.Spec.dispatched > 0)

let prop_omission_jobs_invariant =
  QCheck2.Test.make ~name:"omission byte-identical at compact_jobs 1 vs 3"
    ~count:6
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 60 160))
    (fun (seed, len) ->
      let setup = random_setup seed len in
      let s1, t1, st1, _ = run_omission ~jobs:1 setup in
      let s3, t3, st3, spec3 = run_omission ~jobs:3 setup in
      seq_to_string s1 = seq_to_string s3
      && t1.Target.det_times = t3.Target.det_times
      && st1 = st3
      && spec_invariant spec3)

(* ---------------------------------------------------------- restoration *)

let run_restoration ?budget ~jobs (m, seq, targets) =
  let stats = Restoration.make_stats () in
  let spec = Spec.make () in
  let restored = Restoration.run ~stats ?budget ~jobs ~spec m seq targets in
  restored, stats, spec

let check_restoration_invariant what ?budget_of setup =
  let budget () = Option.map (fun f -> f ()) budget_of in
  let s1, st1, spec1 = run_restoration ?budget:(budget ()) ~jobs:1 setup in
  let s3, st3, spec3 = run_restoration ?budget:(budget ()) ~jobs:3 setup in
  Alcotest.(check string) (what ^ ": sequence") (seq_to_string s1) (seq_to_string s3);
  (* Restoration's wave structure is fixed independently of jobs, so even
     the speculative counters are jobs-invariant. *)
  Alcotest.(check bool) (what ^ ": stats") true (st1 = st3);
  Alcotest.(check bool) (what ^ ": spec counters") true (spec1 = spec3);
  Alcotest.(check bool) (what ^ ": spec invariant") true (spec_invariant spec3)

let test_restoration_jobs_invariant () =
  check_restoration_invariant "plain" (random_setup 21 200)

let test_restoration_tripped_budget_invariant () =
  check_restoration_invariant "tripped"
    ~budget_of:(fun () -> Budget.create ~deadline_s:0.0 ())
    (random_setup 22 200)

let prop_restoration_jobs_invariant =
  QCheck2.Test.make ~name:"restoration byte-identical at compact_jobs 1 vs 3"
    ~count:6
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 60 160))
    (fun (seed, len) ->
      let setup = random_setup seed len in
      let s1, st1, spec1 = run_restoration ~jobs:1 setup in
      let s3, st3, spec3 = run_restoration ~jobs:3 setup in
      seq_to_string s1 = seq_to_string s3 && st1 = st3 && spec1 = spec3)

(* ---------------------------------------------- pipeline, kill-and-resume *)

let pipeline_config ~compact_jobs name =
  let c = Circuits.Catalog.circuit name in
  Core.Config.with_compact_jobs compact_jobs (Core.Config.for_circuit c)

let counters_alist_no_spec m =
  List.filter
    (fun (k, _) ->
      not (String.starts_with ~prefix:"compaction.speculative." k))
    (List.sort compare (Obs.Counters.to_alist (Obs.Metrics.counters m)))

let check_result_equal what (a : Core.Pipeline.result) (b : Core.Pipeline.result) =
  Alcotest.(check bool) (what ^ ": row5") true (a.row5 = b.row5);
  Alcotest.(check bool) (what ^ ": row6") true (a.row6 = b.row6);
  Alcotest.(check bool) (what ^ ": row7") true (a.row7 = b.row7);
  Alcotest.(check (list (pair string int)))
    (what ^ ": counters sans speculative")
    (counters_alist_no_spec a.metrics)
    (counters_alist_no_spec b.metrics)

(* Kill right after generate, resume with compact_jobs=3: the speculative
   compaction of the resumed run must reproduce the uninterrupted
   sequential run bit for bit (rows, lengths, every jobs-invariant
   counter). *)
let test_pipeline_resume_speculative () =
  let reference =
    Core.Pipeline.run ~config:(pipeline_config ~compact_jobs:1 "s27") "s27"
  in
  List.iter
    (fun compact_jobs ->
      let path = tmp (Printf.sprintf "ck_spec_%d" compact_jobs) in
      if Sys.file_exists path then Sys.remove path;
      (match
         Core.Pipeline.run
           ~config:(pipeline_config ~compact_jobs "s27")
           ~checkpoint:path ~halt_after:"generate" "s27"
       with
       | _ -> Alcotest.fail "halt_after generate did not halt"
       | exception Core.Pipeline.Halted p ->
         Alcotest.(check string) "halted at generate" "generate" p);
      let resumed =
        Core.Pipeline.run
          ~config:(pipeline_config ~compact_jobs "s27")
          ~checkpoint:path ~resume:(Checkpoint.load path) "s27"
      in
      check_result_equal
        (Printf.sprintf "resume compact_jobs=%d" compact_jobs)
        reference resumed;
      Sys.remove path)
    [ 1; 3 ]

let test_pipeline_speculative_counters_recorded () =
  (* The pipeline folds the dispatch counters into the metrics document. *)
  let r = Core.Pipeline.run ~config:(pipeline_config ~compact_jobs:3 "s27") "s27" in
  let c = Obs.Metrics.counters r.Core.Pipeline.metrics in
  let dispatched = Obs.Counters.get c "compaction.speculative.dispatched" in
  let committed = Obs.Counters.get c "compaction.speculative.committed" in
  let discarded = Obs.Counters.get c "compaction.speculative.discarded" in
  Alcotest.(check bool) "dispatched > 0" true (dispatched > 0);
  Alcotest.(check int) "dispatch accounted" dispatched (committed + discarded)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "speculative"
    [
      ( "spec-map",
        [
          Alcotest.test_case "deterministic order" `Quick test_spec_map_order;
          Alcotest.test_case "error propagation" `Quick test_spec_map_error;
        ] );
      ( "omission",
        [
          Alcotest.test_case "jobs invariant" `Quick test_omission_jobs_invariant;
          Alcotest.test_case "trial budget invariant" `Quick
            test_omission_trial_budget_invariant;
          Alcotest.test_case "tripped budget invariant" `Quick
            test_omission_tripped_budget_invariant;
          Alcotest.test_case "actually dispatches" `Quick test_omission_dispatches;
        ] );
      ( "restoration",
        [
          Alcotest.test_case "jobs invariant" `Quick test_restoration_jobs_invariant;
          Alcotest.test_case "tripped budget invariant" `Quick
            test_restoration_tripped_budget_invariant;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "kill-and-resume with speculation" `Quick
            test_pipeline_resume_speculative;
          Alcotest.test_case "dispatch counters recorded" `Quick
            test_pipeline_speculative_counters_recorded;
        ] );
      ( "properties",
        [ q prop_omission_jobs_invariant; q prop_restoration_jobs_invariant ] );
    ]
