(* Speculative domain-parallel compaction (DESIGN.md §10): omission and
   restoration must produce byte-identical sequences and jobs-invariant
   counters at any [compact_jobs] — including under a tripped budget and
   across a kill-and-resume checkpoint — with only the
   compaction.speculative.* dispatch counters reflecting the actual
   parallelism. *)

module C = Netlist.Circuit
module Model = Faultmodel.Model
module Vectors = Logicsim.Vectors
module Target = Compaction.Target
module Omission = Compaction.Omission
module Restoration = Compaction.Restoration
module Spec = Compaction.Spec
module Budget = Obs.Budget
module Checkpoint = Core.Checkpoint

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "scanatpg_spec_%d_%s" (Unix.getpid ()) name)

let s27_model () =
  Model.build (Scanins.Scan.insert (Circuits.Iscas.s27 ())).Scanins.Scan.circuit

let random_setup seed len =
  let m = s27_model () in
  let rng = Prng.Rng.create (Int64.of_int seed) in
  let seq =
    Vectors.random_seq rng ~width:(C.input_count m.Model.circuit) ~length:len
  in
  let ids = Array.init (Model.fault_count m) Fun.id in
  let targets = Target.compute m seq ~fault_ids:ids in
  m, seq, targets

let seq_to_string seq =
  String.concat "\n" (Array.to_list (Array.map Vectors.to_string seq))

let spec_invariant (s : Spec.counters) =
  s.Spec.dispatched = s.Spec.committed + s.Spec.discarded
  && s.Spec.revalidated <= s.Spec.committed

(* ------------------------------------------------------------- Spec.map *)

let test_spec_map_order () =
  let expected = Array.init 23 (fun k -> k * k) in
  Alcotest.(check (array int)) "jobs=1" expected (Spec.map ~jobs:1 23 (fun k -> k * k));
  Alcotest.(check (array int)) "jobs=3" expected (Spec.map ~jobs:3 23 (fun k -> k * k));
  Alcotest.(check (array int)) "jobs>n" expected (Spec.map ~jobs:64 23 (fun k -> k * k));
  Alcotest.(check (array int)) "empty" [||] (Spec.map ~jobs:3 0 (fun k -> k))

exception Poison of int

let test_spec_map_error () =
  (* A failing evaluation must surface on the calling domain after every
     worker was joined — at any jobs. *)
  List.iter
    (fun jobs ->
      match Spec.map ~jobs 8 (fun k -> if k = 5 then raise (Poison k) else k) with
      | _ -> Alcotest.failf "jobs=%d: poison swallowed" jobs
      | exception Poison 5 -> ())
    [ 1; 3 ]

(* ------------------------------------------------------------- omission *)

let run_omission ?budget ~jobs ?max_trials (m, seq, targets) =
  let cfg = { Omission.default_config with jobs; max_trials } in
  let spec = Spec.make () in
  let seq', targets', stats = Omission.run ?budget ~spec m seq targets cfg in
  seq', targets', stats, spec

let check_omission_invariant what ?budget_of ?max_trials setup =
  let budget () = Option.map (fun f -> f ()) budget_of in
  let s1, t1, st1, spec1 = run_omission ?budget:(budget ()) ~jobs:1 ?max_trials setup in
  let s3, t3, st3, spec3 = run_omission ?budget:(budget ()) ~jobs:3 ?max_trials setup in
  Alcotest.(check string) (what ^ ": sequence") (seq_to_string s1) (seq_to_string s3);
  Alcotest.(check (array int))
    (what ^ ": det times") t1.Target.det_times t3.Target.det_times;
  Alcotest.(check bool) (what ^ ": stats") true (st1 = st3);
  Alcotest.(check int) (what ^ ": no dispatch at jobs=1") 0 spec1.Spec.dispatched;
  Alcotest.(check bool) (what ^ ": spec invariant") true (spec_invariant spec3)

let test_omission_jobs_invariant () =
  check_omission_invariant "plain" (random_setup 11 180)

let test_omission_trial_budget_invariant () =
  check_omission_invariant "max_trials" ~max_trials:25 (random_setup 12 180)

let test_omission_tripped_budget_invariant () =
  (* A zero deadline trips at the first safe point on both sides; the
     degraded result must still be jobs-invariant. *)
  check_omission_invariant "tripped"
    ~budget_of:(fun () -> Budget.create ~deadline_s:0.0 ())
    (random_setup 13 180)

let test_omission_dispatches () =
  (* On a sequence long enough to form multi-trial rounds, jobs=3 must
     actually speculate. *)
  let _, _, _, spec = run_omission ~jobs:3 (random_setup 14 180) in
  Alcotest.(check bool) "dispatched > 0" true (spec.Spec.dispatched > 0)

let prop_omission_jobs_invariant =
  QCheck2.Test.make ~name:"omission byte-identical at compact_jobs 1 vs 3"
    ~count:6
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 60 160))
    (fun (seed, len) ->
      let setup = random_setup seed len in
      let s1, t1, st1, _ = run_omission ~jobs:1 setup in
      let s3, t3, st3, spec3 = run_omission ~jobs:3 setup in
      seq_to_string s1 = seq_to_string s3
      && t1.Target.det_times = t3.Target.det_times
      && st1 = st3
      && spec_invariant spec3)

(* ---------------------------------------------------------- restoration *)

let run_restoration ?budget ?pool ?adaptive ~jobs (m, seq, targets) =
  let stats = Restoration.make_stats () in
  let spec = Spec.make () in
  let restored =
    Restoration.run ~stats ?budget ~jobs ~spec ?adaptive ?pool m seq targets
  in
  restored, stats, spec

let check_restoration_invariant what ?budget_of setup =
  let budget () = Option.map (fun f -> f ()) budget_of in
  let s1, st1, spec1 = run_restoration ?budget:(budget ()) ~jobs:1 setup in
  let s3, st3, spec3 = run_restoration ?budget:(budget ()) ~jobs:3 setup in
  Alcotest.(check string) (what ^ ": sequence") (seq_to_string s1) (seq_to_string s3);
  (* Restoration's wave structure is fixed independently of jobs, so even
     the speculative counters are jobs-invariant. *)
  Alcotest.(check bool) (what ^ ": stats") true (st1 = st3);
  Alcotest.(check bool) (what ^ ": spec counters") true (spec1 = spec3);
  Alcotest.(check bool) (what ^ ": spec invariant") true (spec_invariant spec3)

let test_restoration_jobs_invariant () =
  check_restoration_invariant "plain" (random_setup 21 200)

let test_restoration_tripped_budget_invariant () =
  check_restoration_invariant "tripped"
    ~budget_of:(fun () -> Budget.create ~deadline_s:0.0 ())
    (random_setup 22 200)

let prop_restoration_jobs_invariant =
  QCheck2.Test.make ~name:"restoration byte-identical at compact_jobs 1 vs 3"
    ~count:6
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 60 160))
    (fun (seed, len) ->
      let setup = random_setup seed len in
      let s1, st1, spec1 = run_restoration ~jobs:1 setup in
      let s3, st3, spec3 = run_restoration ~jobs:3 setup in
      seq_to_string s1 = seq_to_string s3 && st1 = st3 && spec1 = spec3)

(* ------------------------------------------------------- adaptive width *)

let run_omission_adaptive ?pool ~jobs ~adaptive (m, seq, targets) =
  let cfg = { Omission.default_config with jobs; adaptive } in
  let spec = Spec.make () in
  let ad = Spec.make_adaptive () in
  let seq', targets', stats =
    Omission.run ~spec ~adaptive:ad ?pool m seq targets cfg
  in
  seq', targets', stats, spec, ad

let test_adaptive_byte_identity () =
  (* The width trajectory may differ with the controller on or off and at
     any compact_jobs; the sequence, detection times and jobs-invariant
     stats may not. *)
  let setup = random_setup 31 180 in
  let s_ref, t_ref, st_ref, _, _ =
    run_omission_adaptive ~jobs:1 ~adaptive:false setup
  in
  List.iter
    (fun (jobs, adaptive) ->
      let s, t, st, _, _ = run_omission_adaptive ~jobs ~adaptive setup in
      let what = Printf.sprintf "jobs=%d adaptive=%b" jobs adaptive in
      Alcotest.(check string)
        (what ^ ": sequence") (seq_to_string s_ref) (seq_to_string s);
      Alcotest.(check (array int))
        (what ^ ": det times") t_ref.Target.det_times t.Target.det_times;
      Alcotest.(check bool) (what ^ ": stats") true (st_ref = st))
    [ (1, true); (2, true); (4, true); (4, false) ]

let test_adaptive_shrinks_and_rewidens () =
  (* Scan seeds until the controller demonstrably shrank on an early
     acceptance (at jobs=2 an acceptance at slot 0 forces width 1) and
     re-widened after a rejection streak, with width reductions actually
     saving dispatches.  Every scanned seed must stay byte-identical to
     the sequential run — the trajectory is telemetry, never semantics. *)
  let shrunk = ref false and widened = ref false and saved = ref false in
  let seed = ref 100 in
  while (not (!shrunk && !widened && !saved)) && !seed < 140 do
    let setup = random_setup !seed 180 in
    let s1, _, st1, _, _ = run_omission_adaptive ~jobs:1 ~adaptive:true setup in
    List.iter
      (fun jobs ->
        let sk, _, stk, _, ad = run_omission_adaptive ~jobs ~adaptive:true setup in
        Alcotest.(check string)
          (Printf.sprintf "seed %d jobs %d: sequence" !seed jobs)
          (seq_to_string s1) (seq_to_string sk);
        Alcotest.(check bool)
          (Printf.sprintf "seed %d jobs %d: stats" !seed jobs)
          true (st1 = stk);
        if ad.Spec.shrinks > 0 then shrunk := true;
        if ad.Spec.widens > 0 then widened := true;
        if ad.Spec.trials_saved > 0 then saved := true)
      [ 2; 4 ];
    incr seed
  done;
  Alcotest.(check bool) "controller shrank at least once" true !shrunk;
  Alcotest.(check bool) "controller re-widened at least once" true !widened;
  Alcotest.(check bool) "reduced widths saved dispatches" true !saved

let test_adaptive_off_is_inert () =
  (* With the controller off the full width is dispatched every round:
     no shrinks, no widens, nothing saved.  The arena still recycles its
     snapshot buffers — that reuse is unconditional. *)
  let _, _, st, _, ad =
    run_omission_adaptive ~jobs:4 ~adaptive:false (random_setup 32 180)
  in
  Alcotest.(check int) "no shrinks" 0 ad.Spec.shrinks;
  Alcotest.(check int) "no widens" 0 ad.Spec.widens;
  Alcotest.(check int) "no trials saved" 0 ad.Spec.trials_saved;
  Alcotest.(check bool) "multi-round run reused the arena" true
    (st.Omission.trials <= 1 || ad.Spec.arena_reuses > 0)

let test_restoration_replay_skip () =
  (* The keep-generation guard: a wave member whose keep mask did not
     move since its trial was frozen commits without replaying the
     assumed-rejected prefix — and the result is still byte-identical. *)
  let setup = random_setup 21 200 in
  let s1, st1, _ = run_restoration ~jobs:1 setup in
  let ad = Spec.make_adaptive () in
  let s3, st3, _ = run_restoration ~jobs:3 ~adaptive:ad setup in
  Alcotest.(check string) "sequence" (seq_to_string s1) (seq_to_string s3);
  Alcotest.(check bool) "stats" true (st1 = st3);
  Alcotest.(check bool) "replays skipped" true (ad.Spec.replay_skipped > 0)

(* ------------------------------------------------------------ trial pool *)

let test_pool_map_order_and_errors () =
  let pool = Spec.Pool.create ~size:3 in
  Fun.protect
    ~finally:(fun () -> Spec.Pool.shutdown pool)
    (fun () ->
      let expected = Array.init 23 (fun k -> k * k) in
      Alcotest.(check (array int))
        "pooled jobs=3" expected
        (Spec.map ~pool ~jobs:3 23 (fun k -> k * k));
      Alcotest.(check (array int))
        "jobs=1 stays sequential" expected
        (Spec.map ~pool ~jobs:1 23 (fun k -> k * k));
      (match
         Spec.map ~pool ~jobs:3 8 (fun k -> if k = 5 then raise (Poison k) else k)
       with
       | _ -> Alcotest.fail "pooled poison swallowed"
       | exception Poison 5 -> ());
      (* A failed submission must not kill the workers: the pool keeps
         serving afterwards. *)
      Alcotest.(check (array int))
        "pool alive after error" expected
        (Spec.map ~pool ~jobs:3 23 (fun k -> k * k)))

let test_pool_concurrent_submitters () =
  (* Several domains funnel submissions through one pool at once — the
     daemon's shape, where every worker shares the trial pool.  Each
     submitter must get its own complete, ordered results. *)
  let pool = Spec.Pool.create ~size:3 in
  Fun.protect
    ~finally:(fun () -> Spec.Pool.shutdown pool)
    (fun () ->
      let expected = Array.init 40 (fun k -> (k * 7) + 1) in
      let submit () = Spec.map ~pool ~jobs:3 40 (fun k -> (k * 7) + 1) in
      let ds = Array.init 4 (fun _ -> Domain.spawn submit) in
      Array.iter
        (fun d ->
          Alcotest.(check (array int)) "concurrent submitter" expected
            (Domain.join d))
        ds)

let test_pool_omission_equivalence () =
  (* Omission through a shared pool, twice through the same pool (the
     daemon reuses it across requests), vs the spawn-per-round path. *)
  let setup = random_setup 41 180 in
  let s_spawn, _, st_spawn, _, _ =
    run_omission_adaptive ~jobs:4 ~adaptive:true setup
  in
  let pool = Spec.Pool.create ~size:4 in
  Fun.protect
    ~finally:(fun () -> Spec.Pool.shutdown pool)
    (fun () ->
      for round = 1 to 2 do
        let s_pool, _, st_pool, _, _ =
          run_omission_adaptive ~pool ~jobs:4 ~adaptive:true setup
        in
        Alcotest.(check string)
          (Printf.sprintf "pooled sequence (round %d)" round)
          (seq_to_string s_spawn) (seq_to_string s_pool);
        Alcotest.(check bool)
          (Printf.sprintf "pooled stats (round %d)" round)
          true (st_spawn = st_pool)
      done)

let test_pool_restoration_equivalence () =
  let setup = random_setup 42 200 in
  let s_spawn, st_spawn, _ = run_restoration ~jobs:3 setup in
  let pool = Spec.Pool.create ~size:3 in
  Fun.protect
    ~finally:(fun () -> Spec.Pool.shutdown pool)
    (fun () ->
      let s_pool, st_pool, _ = run_restoration ~pool ~jobs:3 setup in
      Alcotest.(check string)
        "pooled sequence" (seq_to_string s_spawn) (seq_to_string s_pool);
      Alcotest.(check bool) "pooled stats" true (st_spawn = st_pool))

(* ---------------------------------------------- pipeline, kill-and-resume *)

let pipeline_config ~compact_jobs name =
  let c = Circuits.Catalog.circuit name in
  Core.Config.with_compact_jobs compact_jobs (Core.Config.for_circuit c)

let counters_alist_no_spec m =
  (* Both jobs-dependent families out: speculative dispatch accounting and
     the adaptive-width schedule telemetry. *)
  List.filter
    (fun (k, _) ->
      not
        (String.starts_with ~prefix:"compaction.speculative." k
        || String.starts_with ~prefix:"compaction.adaptive." k))
    (List.sort compare (Obs.Counters.to_alist (Obs.Metrics.counters m)))

let check_result_equal what (a : Core.Pipeline.result) (b : Core.Pipeline.result) =
  Alcotest.(check bool) (what ^ ": row5") true (a.row5 = b.row5);
  Alcotest.(check bool) (what ^ ": row6") true (a.row6 = b.row6);
  Alcotest.(check bool) (what ^ ": row7") true (a.row7 = b.row7);
  Alcotest.(check (list (pair string int)))
    (what ^ ": counters sans speculative")
    (counters_alist_no_spec a.metrics)
    (counters_alist_no_spec b.metrics)

(* Kill right after generate, resume with compact_jobs=3: the speculative
   compaction of the resumed run must reproduce the uninterrupted
   sequential run bit for bit (rows, lengths, every jobs-invariant
   counter). *)
let test_pipeline_resume_speculative () =
  let reference =
    Core.Pipeline.run ~config:(pipeline_config ~compact_jobs:1 "s27") "s27"
  in
  List.iter
    (fun compact_jobs ->
      let path = tmp (Printf.sprintf "ck_spec_%d" compact_jobs) in
      if Sys.file_exists path then Sys.remove path;
      (match
         Core.Pipeline.run
           ~config:(pipeline_config ~compact_jobs "s27")
           ~checkpoint:path ~halt_after:"generate" "s27"
       with
       | _ -> Alcotest.fail "halt_after generate did not halt"
       | exception Core.Pipeline.Halted p ->
         Alcotest.(check string) "halted at generate" "generate" p);
      let resumed =
        Core.Pipeline.run
          ~config:(pipeline_config ~compact_jobs "s27")
          ~checkpoint:path ~resume:(Checkpoint.load path) "s27"
      in
      check_result_equal
        (Printf.sprintf "resume compact_jobs=%d" compact_jobs)
        reference resumed;
      Sys.remove path)
    [ 1; 3 ]

let test_pipeline_speculative_counters_recorded () =
  (* The pipeline folds the dispatch counters into the metrics document. *)
  let r = Core.Pipeline.run ~config:(pipeline_config ~compact_jobs:3 "s27") "s27" in
  let c = Obs.Metrics.counters r.Core.Pipeline.metrics in
  let dispatched = Obs.Counters.get c "compaction.speculative.dispatched" in
  let committed = Obs.Counters.get c "compaction.speculative.committed" in
  let discarded = Obs.Counters.get c "compaction.speculative.discarded" in
  Alcotest.(check bool) "dispatched > 0" true (dispatched > 0);
  Alcotest.(check int) "dispatch accounted" dispatched (committed + discarded);
  (* The adaptive-width family rides along in the same document. *)
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true
        (List.mem_assoc k (Obs.Counters.to_alist c)))
    [ "compaction.adaptive.shrinks"; "compaction.adaptive.widens";
      "compaction.adaptive.trials_saved"; "compaction.adaptive.arena_reuses";
      "compaction.adaptive.replay_skipped" ]

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "speculative"
    [
      ( "spec-map",
        [
          Alcotest.test_case "deterministic order" `Quick test_spec_map_order;
          Alcotest.test_case "error propagation" `Quick test_spec_map_error;
        ] );
      ( "omission",
        [
          Alcotest.test_case "jobs invariant" `Quick test_omission_jobs_invariant;
          Alcotest.test_case "trial budget invariant" `Quick
            test_omission_trial_budget_invariant;
          Alcotest.test_case "tripped budget invariant" `Quick
            test_omission_tripped_budget_invariant;
          Alcotest.test_case "actually dispatches" `Quick test_omission_dispatches;
        ] );
      ( "restoration",
        [
          Alcotest.test_case "jobs invariant" `Quick test_restoration_jobs_invariant;
          Alcotest.test_case "tripped budget invariant" `Quick
            test_restoration_tripped_budget_invariant;
          Alcotest.test_case "replay skip on unchanged keep mask" `Quick
            test_restoration_replay_skip;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "byte identity across trajectories" `Quick
            test_adaptive_byte_identity;
          Alcotest.test_case "shrinks and re-widens" `Quick
            test_adaptive_shrinks_and_rewidens;
          Alcotest.test_case "off is inert" `Quick test_adaptive_off_is_inert;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map order and errors" `Quick
            test_pool_map_order_and_errors;
          Alcotest.test_case "concurrent submitters" `Quick
            test_pool_concurrent_submitters;
          Alcotest.test_case "omission equivalence" `Quick
            test_pool_omission_equivalence;
          Alcotest.test_case "restoration equivalence" `Quick
            test_pool_restoration_equivalence;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "kill-and-resume with speculation" `Quick
            test_pipeline_resume_speculative;
          Alcotest.test_case "dispatch counters recorded" `Quick
            test_pipeline_speculative_counters_recorded;
        ] );
      ( "properties",
        [ q prop_omission_jobs_invariant; q prop_restoration_jobs_invariant ] );
    ]
