(* End-to-end pipeline invariants on small circuits: the relations between
   the paper's table columns must hold by construction. *)

module L = Netlist.Logic
module Model = Faultmodel.Model

let check_result (r : Core.Pipeline.result) =
  let open Core.Pipeline in
  (* Table 5 consistency. *)
  Alcotest.(check bool) "fcov in range" true (r.row5.fcov >= 0.0 && r.row5.fcov <= 100.0);
  Alcotest.(check bool) "detected <= faults" true (r.row5.detected <= r.row5.faults);
  Alcotest.(check bool) "funct <= detected" true (r.row5.funct <= r.row5.detected);
  (* Table 6 monotonicity: generation >= restoration >= omission. *)
  Alcotest.(check bool) "restor <= test" true
    (r.row6.restor_len.total <= r.row6.test_len.total);
  Alcotest.(check bool) "omit <= restor" true
    (r.row6.omit_len.total <= r.row6.restor_len.total);
  Alcotest.(check bool) "scan <= total (gen)" true
    (r.row6.test_len.scan <= r.row6.test_len.total);
  Alcotest.(check bool) "scan <= total (omit)" true
    (r.row6.omit_len.scan <= r.row6.omit_len.total);
  Alcotest.(check bool) "scan monotone" true
    (r.row6.omit_len.scan <= r.row6.test_len.scan);
  (* Table 7, when present. *)
  match r.row7 with
  | None -> ()
  | Some row7 ->
    (* Translated length equals the baseline's cycle count by construction. *)
    Alcotest.(check int) "t7 len = [26] cycles" row7.baseline_cycles
      row7.test_len.total;
    Alcotest.(check int) "same cycles in both tables" r.row6.baseline_cycles
      row7.baseline_cycles;
    Alcotest.(check bool) "t7 restor <= t7 test" true
      (row7.restor_len.total <= row7.test_len.total);
    Alcotest.(check bool) "t7 omit <= t7 restor" true
      (row7.omit_len.total <= row7.restor_len.total)

let test_pipeline_s27 () =
  let r = Core.Pipeline.run "s27" in
  check_result r;
  Alcotest.(check (float 0.01)) "s27 full coverage" 100.0 r.Core.Pipeline.row5.fcov;
  Alcotest.(check bool) "has table7" true (r.Core.Pipeline.row7 <> None)

let test_pipeline_b02 () =
  let r = Core.Pipeline.run "b02" in
  check_result r;
  Alcotest.(check bool) "good coverage" true (r.Core.Pipeline.row5.fcov > 95.0);
  (* The headline claim: compacted unified sequence beats the complete-scan
     baseline's tester cycles. *)
  Alcotest.(check bool) "beats baseline" true
    (r.Core.Pipeline.row6.omit_len.Core.Pipeline.total
     < r.Core.Pipeline.row6.baseline_cycles)

let test_pipeline_compacted_sequence_valid () =
  (* Re-derive the compacted sequence and check it still detects every
     fault the generated sequence detected. *)
  let name = "b01" in
  let c = Circuits.Catalog.circuit name in
  let cfg = Core.Config.for_circuit c in
  let scan = Scanins.Scan.insert c in
  let model = Model.build scan.Scanins.Scan.circuit in
  let sk = Atpg.Scan_knowledge.create scan in
  let flow = Core.Flow.generate cfg sk model in
  let restored =
    Compaction.Restoration.run model flow.Core.Flow.sequence flow.Core.Flow.targets
  in
  let tr =
    Compaction.Target.compute model restored
      ~fault_ids:flow.Core.Flow.targets.Compaction.Target.fault_ids
  in
  let compacted, _, _ =
    Compaction.Omission.run model restored tr cfg.Core.Config.omission
  in
  Alcotest.(check bool) "coverage preserved" true
    (Compaction.Target.detected_by model compacted flow.Core.Flow.targets)

let test_pipeline_multichain_runs () =
  let cfg = { (Core.Config.for_circuit (Circuits.Catalog.circuit "s27")) with
              Core.Config.chains = 3 } in
  let r = Core.Pipeline.run ~config:cfg "s27" in
  check_result r;
  Alcotest.(check bool) "coverage still full" true
    (r.Core.Pipeline.row5.fcov > 99.0)

let test_cli_sequence_file_roundtrip () =
  (* The CLI writes sequences as 01x lines; parsing them back must be
     lossless (exercised via the Vectors API the CLI uses). *)
  let rng = Prng.Rng.create 55L in
  let seq = Logicsim.Vectors.random_seq rng ~width:6 ~length:20 in
  let text =
    String.concat "\n" (Array.to_list (Array.map Logicsim.Vectors.to_string seq))
  in
  let back =
    Array.of_list (List.map Logicsim.Vectors.parse (String.split_on_char '\n' text))
  in
  Alcotest.(check int) "length" (Array.length seq) (Array.length back);
  Array.iteri
    (fun i v ->
      Array.iteri
        (fun j x -> Alcotest.(check bool) "bit" true (L.equal x back.(i).(j)))
        v)
    seq

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "s27 end to end" `Slow test_pipeline_s27;
          Alcotest.test_case "b02 end to end" `Slow test_pipeline_b02;
          Alcotest.test_case "compacted sequence valid" `Slow
            test_pipeline_compacted_sequence_valid;
          Alcotest.test_case "multichain" `Slow test_pipeline_multichain_runs;
        ] );
      ( "io",
        [ Alcotest.test_case "sequence file roundtrip" `Quick
            test_cli_sequence_file_roundtrip ] );
    ]
