(* Simulator tests: vectors, good-machine semantics, and the parallel fault
   simulator checked against exhaustive single-fault runs. *)

module C = Netlist.Circuit
module G = Netlist.Gate
module L = Netlist.Logic
module Goodsim = Logicsim.Goodsim
module Faultsim = Logicsim.Faultsim
module Vectors = Logicsim.Vectors
module Model = Faultmodel.Model

(* ------------------------------------------------------------- vectors *)

let test_vectors_parse_print () =
  let v = Vectors.parse "01x1X0" in
  Alcotest.(check string) "roundtrip" "01x1x0" (Vectors.to_string v);
  Alcotest.(check bool) "parse x" true (L.equal v.(2) L.X)

let test_vectors_fill_x () =
  let rng = Prng.Rng.create 9L in
  let seq = [| Vectors.parse "x0x"; Vectors.parse "1xx" |] in
  let filled = Vectors.fill_x rng seq in
  Array.iter
    (fun v -> Array.iter (fun b -> Alcotest.(check bool) "binary" true (L.is_binary b)) v)
    filled;
  (* Specified bits survive. *)
  Alcotest.(check bool) "kept 0" true (L.equal filled.(0).(1) L.Zero);
  Alcotest.(check bool) "kept 1" true (L.equal filled.(1).(0) L.One);
  (* Input not mutated. *)
  Alcotest.(check bool) "pure" true (L.equal seq.(0).(0) L.X)

let test_vectors_count () =
  let seq = [| Vectors.parse "10"; Vectors.parse "11"; Vectors.parse "0x" |] in
  Alcotest.(check int) "count ones at 0" 2 (Vectors.count seq ~position:0 ~value:L.One);
  Alcotest.(check int) "count x at 1" 1 (Vectors.count seq ~position:1 ~value:L.X)

let prop_fill_x_refines =
  QCheck2.Test.make ~name:"fill_x only refines X positions" ~count:100
    QCheck2.Gen.(
      pair (int_range 0 1000)
        (list_size (int_range 1 10)
           (string_size ~gen:(oneofl [ '0'; '1'; 'x' ]) (return 6))))
    (fun (seed, rows) ->
      let seq = Array.of_list (List.map Vectors.parse rows) in
      let filled = Vectors.fill_x (Prng.Rng.create (Int64.of_int seed)) seq in
      Array.for_all2
        (fun v f ->
          Array.for_all2
            (fun a b -> if L.is_binary a then L.equal a b else L.is_binary b)
            v f)
        seq filled)

(* ------------------------------------------------------------- goodsim *)

(* d = a AND q;  q' = d;  o = a XOR q. *)
let toy () =
  let b = C.Builder.create ~name:"toy" () in
  C.Builder.add_input b "a";
  C.Builder.add_gate b "q" G.Dff [ "d" ];
  C.Builder.add_gate b "d" G.And [ "a"; "q" ];
  C.Builder.add_gate b "o" G.Xor [ "a"; "q" ];
  C.Builder.add_output b "o";
  C.Builder.build b

let test_goodsim_xstate () =
  let sim = Goodsim.create (toy ()) in
  (* Power-up X: with a=0, AND gives 0, XOR gives X. *)
  Goodsim.step sim [| L.Zero |];
  Alcotest.(check bool) "o = x" true (L.equal (Goodsim.po_values sim).(0) L.X);
  (* But state resolved to 0 by the AND. *)
  Alcotest.(check bool) "q' = 0" true (L.equal (Goodsim.state sim).(0) L.Zero);
  Goodsim.step sim [| L.One |];
  Alcotest.(check bool) "o = 1" true (L.equal (Goodsim.po_values sim).(0) L.One)

let test_goodsim_set_state () =
  let sim = Goodsim.create (toy ()) in
  Goodsim.set_state sim [| L.One |];
  Goodsim.step sim [| L.One |];
  Alcotest.(check bool) "xor(1,1)=0" true (L.equal (Goodsim.po_values sim).(0) L.Zero);
  Alcotest.(check bool) "and(1,1)=1" true (L.equal (Goodsim.state sim).(0) L.One);
  Goodsim.reset sim;
  Goodsim.step sim [| L.One |];
  Alcotest.(check bool) "back to x" true (L.equal (Goodsim.po_values sim).(0) L.X)

let test_goodsim_vector_width () =
  let sim = Goodsim.create (toy ()) in
  Alcotest.(check bool) "rejects" true
    (match Goodsim.step sim [| L.One; L.One |] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_goodsim_run_collects () =
  let sim = Goodsim.create (toy ()) in
  let out = Goodsim.run sim [| [| L.Zero |]; [| L.One |]; [| L.One |] |] in
  Alcotest.(check int) "three frames" 3 (Array.length out);
  Alcotest.(check bool) "frame1" true (L.equal out.(1).(0) L.One);
  (* q was 0 after frame 0 (AND with 0), 0 after frame 1; frame2: 1 xor 0. *)
  Alcotest.(check bool) "frame2" true (L.equal out.(2).(0) L.One)

(* exhaustive two-frame truth check of s27 against a reference evaluator *)
let test_goodsim_matches_gate_eval () =
  let c = Circuits.Iscas.s27 () in
  let lv = Netlist.Levelize.of_circuit c in
  let reference state vec =
    let values = Array.make (C.node_count c) L.X in
    Array.iteri (fun i id -> values.(id) <- vec.(i)) (C.inputs c);
    Array.iteri (fun k id -> values.(id) <- state.(k)) (C.dffs c);
    Array.iter
      (fun id ->
        let nd = C.node c id in
        values.(id) <- G.eval nd.C.kind (Array.map (fun f -> values.(f)) nd.C.fanins))
      lv.Netlist.Levelize.order;
    values
  in
  let rng = Prng.Rng.create 123L in
  let sim = Goodsim.create c in
  for _ = 1 to 200 do
    let vec = Vectors.random rng ~width:4 in
    let expected = reference (Goodsim.state sim) vec in
    Goodsim.step sim vec;
    Array.iteri
      (fun id v ->
        if not (L.equal v (Goodsim.value sim id)) then
          Alcotest.failf "node %d differs" id)
      expected
  done

(* ------------------------------------------------------------ faultsim *)

let s27_model () = Model.build (Scanins.Scan.insert (Circuits.Iscas.s27 ())).Scanins.Scan.circuit

let test_faultsim_parallel_equals_serial () =
  let m = s27_model () in
  let rng = Prng.Rng.create 2L in
  let width = C.input_count m.Model.circuit in
  let seq = Vectors.random_seq rng ~width ~length:120 in
  let ids = Array.init (Model.fault_count m) Fun.id in
  let par = Faultsim.detection_times m ~fault_ids:ids seq in
  Array.iteri
    (fun i fid ->
      let ser =
        match Faultsim.detects_single m ~fault:fid seq with
        | Some t -> t
        | None -> -1
      in
      if par.(i) <> ser then
        Alcotest.failf "fault %s: parallel %d serial %d" (Model.fault_name m fid)
          par.(i) ser)
    ids

let test_faultsim_incremental_equals_batch () =
  let m = s27_model () in
  let rng = Prng.Rng.create 3L in
  let width = C.input_count m.Model.circuit in
  let seq = Vectors.random_seq rng ~width ~length:90 in
  let ids = Array.init (Model.fault_count m) Fun.id in
  let batch = Faultsim.detection_times m ~fault_ids:ids seq in
  let s = Faultsim.create m ~fault_ids:ids in
  Faultsim.advance s (Array.sub seq 0 30);
  Faultsim.advance s (Array.sub seq 30 25);
  Faultsim.advance s (Array.sub seq 55 35);
  Alcotest.(check int) "time" 90 (Faultsim.time s);
  Array.iteri
    (fun i fid ->
      let inc = match Faultsim.detection_time s fid with Some t -> t | None -> -1 in
      Alcotest.(check int) (Model.fault_name m fid) batch.(i) inc)
    ids

let test_faultsim_detection_is_strict () =
  (* With all-X inputs nothing can be strictly detected. *)
  let m = s27_model () in
  let width = C.input_count m.Model.circuit in
  let seq = Array.make 20 (Array.make width L.X) in
  let ids = Array.init (Model.fault_count m) Fun.id in
  let times = Faultsim.detection_times m ~fault_ids:ids seq in
  Array.iter (fun t -> Alcotest.(check int) "undetected" (-1) t) times

let test_faultsim_injected_stuck_line () =
  (* A stuck-at-1 on scan_sel: shifting differs from functional mode, so a
     sequence exercising functional mode should detect it. *)
  let scan = Scanins.Scan.insert (Circuits.Iscas.s27 ()) in
  let m = Model.build scan.Scanins.Scan.circuit in
  let sel = scan.Scanins.Scan.sel in
  let fid = ref (-1) in
  Array.iteri
    (fun i f ->
      match f.Faultmodel.Fault.site with
      | Faultmodel.Fault.Stem n when n = sel && f.Faultmodel.Fault.stuck -> fid := i
      | _ -> ())
    m.Model.faults;
  Alcotest.(check bool) "fault exists" true (!fid >= 0);
  let rng = Prng.Rng.create 4L in
  let seq = Vectors.random_seq rng ~width:(C.input_count m.Model.circuit) ~length:100 in
  Alcotest.(check bool) "detected" true
    (Faultsim.detects_single m ~fault:!fid seq <> None)

let test_faultsim_states_and_effects () =
  let m = s27_model () in
  let ids = Array.init (Model.fault_count m) Fun.id in
  let s = Faultsim.create m ~fault_ids:ids in
  let rng = Prng.Rng.create 8L in
  Faultsim.advance s (Vectors.random_seq rng ~width:(C.input_count m.Model.circuit) ~length:10);
  let good = Faultsim.good_state s in
  Array.iter
    (fun fid ->
      if Faultsim.detection_time s fid = None then begin
        let faulty = Faultsim.faulty_state s fid in
        Alcotest.(check int) "state width" (Array.length good) (Array.length faulty);
        (* ff_effects are exactly the strict differences. *)
        let expected =
          List.filter
            (fun k ->
              L.is_binary good.(k) && L.is_binary faulty.(k)
              && not (L.equal good.(k) faulty.(k)))
            (List.init (Array.length good) Fun.id)
        in
        Alcotest.(check (list int)) "effects" expected (Faultsim.ff_effects s fid)
      end)
    ids

let test_popcount_matches_reference () =
  let reference x =
    let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
    go 0 x
  in
  Alcotest.(check int) "zero" 0 (Faultsim.popcount 0);
  Alcotest.(check int) "one" 1 (Faultsim.popcount 1);
  Alcotest.(check int) "full width" 62 (Faultsim.popcount ((1 lsl 62) - 1));
  let rng = Prng.Rng.create 77L in
  for _ = 1 to 1000 do
    let x = Int64.to_int (Prng.Rng.next rng) land ((1 lsl 62) - 1) in
    Alcotest.(check int) "random word" (reference x) (Faultsim.popcount x)
  done

let test_view_slice_and_mask () =
  let module V = Vectors.View in
  (* Position i holds One at odd i. *)
  let seq = Array.init 10 (fun i -> [| (if i mod 2 = 0 then L.Zero else L.One) |]) in
  let v = V.of_seq seq in
  Alcotest.(check int) "whole length" 10 (V.length v);
  let s2 = V.slice (V.slice v 2 6) 1 3 in
  (* positions 3, 4, 5 of the base *)
  Alcotest.(check int) "nested slice length" 3 (V.length s2);
  Alcotest.(check bool) "slice shares vectors" true (V.get s2 0 == seq.(3));
  Alcotest.(check bool) "slice content" true (L.equal (V.get s2 1).(0) L.Zero);
  let keep = Array.init 10 (fun i -> i mod 3 = 0) in
  (* keeps 0, 3, 6, 9 *)
  let mv = V.masked seq keep in
  Alcotest.(check int) "mask length" 4 (V.length mv);
  let mseq = V.to_seq mv in
  Alcotest.(check bool) "mask picks position 3" true (L.equal mseq.(1).(0) L.One);
  Alcotest.(check int) "mask + inclusive limit" 2
    (V.length (V.masked ~limit:5 seq keep));
  Alcotest.(check bool) "slice of mask" true
    (L.equal (V.get (V.slice mv 2 2) 1).(0) L.One)

let test_view_advance_equals_array_advance () =
  (* Feeding a slice view must equal feeding the materialized sub-array. *)
  let m = s27_model () in
  let width = C.input_count m.Model.circuit in
  let rng = Prng.Rng.create 21L in
  let seq = Vectors.random_seq rng ~width ~length:30 in
  let ids = Array.init (Model.fault_count m) Fun.id in
  let sub = Array.sub seq 5 20 in
  let t_arr = Faultsim.detection_times m ~fault_ids:ids sub in
  let t_view =
    Faultsim.detection_times_view m ~fault_ids:ids
      (Vectors.View.slice (Vectors.View.of_seq seq) 5 20)
  in
  Array.iteri
    (fun i tv -> Alcotest.(check int) "same detection time" t_arr.(i) tv)
    t_view

let test_faultsim_untargeted_fault_errors () =
  let m = s27_model () in
  let s = Faultsim.create m ~fault_ids:[| 0; 1 |] in
  Alcotest.(check bool) "raises" true
    (match Faultsim.detection_time s 5 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let prop_start_state_continuation =
  (* Simulating [p @ q] in one go equals simulating q from the states
     reached after p — the identity the omission trials rely on. *)
  QCheck2.Test.make ~name:"mid-sequence continuation is exact" ~count:30
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let m = s27_model () in
      let rng = Prng.Rng.create (Int64.of_int seed) in
      let width = C.input_count m.Model.circuit in
      let p = Vectors.random_seq rng ~width ~length:20 in
      let q = Vectors.random_seq rng ~width ~length:20 in
      let ids = Array.init (Model.fault_count m) Fun.id in
      let whole = Faultsim.create m ~fault_ids:ids in
      Faultsim.advance whole (Array.append p q);
      let first = Faultsim.create m ~fault_ids:ids in
      Faultsim.advance first p;
      let undetected_after_p = Faultsim.undetected first in
      let cont =
        Faultsim.create
          ~good_state:(Faultsim.good_state first)
          ~faulty_states:(Faultsim.faulty_state first)
          m ~fault_ids:undetected_after_p
      in
      Faultsim.advance cont q;
      Array.for_all
        (fun fid ->
          let w = Faultsim.detection_time whole fid in
          let c' =
            match Faultsim.detection_time first fid with
            | Some t -> Some t
            | None ->
              Option.map (fun t -> t + 20) (Faultsim.detection_time cont fid)
          in
          w = c')
        ids)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "logicsim"
    [
      ( "vectors",
        [
          Alcotest.test_case "parse/print" `Quick test_vectors_parse_print;
          Alcotest.test_case "fill_x" `Quick test_vectors_fill_x;
          Alcotest.test_case "count" `Quick test_vectors_count;
          q prop_fill_x_refines;
        ] );
      ( "goodsim",
        [
          Alcotest.test_case "x-state power-up" `Quick test_goodsim_xstate;
          Alcotest.test_case "set_state/reset" `Quick test_goodsim_set_state;
          Alcotest.test_case "width check" `Quick test_goodsim_vector_width;
          Alcotest.test_case "run" `Quick test_goodsim_run_collects;
          Alcotest.test_case "matches reference evaluator" `Quick
            test_goodsim_matches_gate_eval;
        ] );
      ( "faultsim",
        [
          Alcotest.test_case "parallel = serial" `Quick
            test_faultsim_parallel_equals_serial;
          Alcotest.test_case "incremental = batch" `Quick
            test_faultsim_incremental_equals_batch;
          Alcotest.test_case "strict detection" `Quick
            test_faultsim_detection_is_strict;
          Alcotest.test_case "scan_sel stuck detected" `Quick
            test_faultsim_injected_stuck_line;
          Alcotest.test_case "states and effects" `Quick
            test_faultsim_states_and_effects;
          Alcotest.test_case "popcount" `Quick test_popcount_matches_reference;
          Alcotest.test_case "view slice/mask" `Quick test_view_slice_and_mask;
          Alcotest.test_case "view advance = array advance" `Quick
            test_view_advance_equals_array_advance;
          Alcotest.test_case "untargeted fault" `Quick
            test_faultsim_untargeted_fault_errors;
          q prop_start_state_continuation;
        ] );
    ]
